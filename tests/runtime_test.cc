/**
 * @file
 * Tests for the runtime library: runtime-typed buffers (mp_malloc),
 * mixed-precision binary I/O (mp_fread/mp_fwrite) and type dispatch.
 */

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/buffer.h"
#include "runtime/dispatch.h"
#include "runtime/half.h"
#include "runtime/ladder.h"
#include "runtime/mp_io.h"
#include "support/logging.h"

namespace {

using namespace hpcmixp::runtime;

TEST(Precision, ByteSizesAndNames)
{
    EXPECT_EQ(byteSize(Precision::BFloat16), 2u);
    EXPECT_EQ(byteSize(Precision::Float16), 2u);
    EXPECT_EQ(byteSize(Precision::Float32), 4u);
    EXPECT_EQ(byteSize(Precision::Float64), 8u);
    EXPECT_EQ(precisionName(Precision::BFloat16), "bfloat16");
    EXPECT_EQ(precisionName(Precision::Float16), "half");
    EXPECT_EQ(precisionName(Precision::Float32), "float");
    EXPECT_EQ(precisionName(Precision::Float64), "double");
    EXPECT_EQ(precisionOf<BFloat16>(), Precision::BFloat16);
    EXPECT_EQ(precisionOf<Half>(), Precision::Float16);
    EXPECT_EQ(precisionOf<float>(), Precision::Float32);
    EXPECT_EQ(precisionOf<double>(), Precision::Float64);
}

/**
 * Pins the enum ordering contract the search layer leans on: a lower
 * enumerator value means a lower precision, where "lower" is ordered
 * by significand width (bfloat16 < half < float < double). This
 * resolves the precision.h open question in favor of accuracy order,
 * not range or storage-size order — bfloat16 and half tie on bytes
 * but must not tie on rank.
 */
TEST(Precision, OrderingContractTracksSignificandWidth)
{
    EXPECT_LT(static_cast<int>(Precision::BFloat16),
              static_cast<int>(Precision::Float16));
    EXPECT_LT(static_cast<int>(Precision::Float16),
              static_cast<int>(Precision::Float32));
    EXPECT_LT(static_cast<int>(Precision::Float32),
              static_cast<int>(Precision::Float64));
    EXPECT_LT(significandBits(Precision::BFloat16),
              significandBits(Precision::Float16));
    EXPECT_LT(significandBits(Precision::Float16),
              significandBits(Precision::Float32));
    EXPECT_LT(significandBits(Precision::Float32),
              significandBits(Precision::Float64));
    // Byte size is NOT a precision order: the two 16-bit formats tie.
    EXPECT_EQ(byteSize(Precision::BFloat16),
              byteSize(Precision::Float16));
}

TEST(Ladder, DefaultIsTwoTierAndDescribesCompatibly)
{
    PrecisionLadder ladder;
    EXPECT_EQ(ladder.rungs(), 2u);
    EXPECT_EQ(ladder.maxLevel(), 1u);
    EXPECT_EQ(ladder.at(0), Precision::Float64);
    EXPECT_EQ(ladder.at(1), Precision::Float32);
    // Must match the historical MemoFingerprint default so two-tier
    // memo segments and checkpoints stay loadable.
    EXPECT_EQ(ladder.describe(), "f64:f32");
    EXPECT_EQ(PrecisionLadder::parse("double,float"), ladder);
}

TEST(Ladder, ParsesThreeRungSpecsAndAliases)
{
    PrecisionLadder half = PrecisionLadder::parse("double,float,half");
    EXPECT_EQ(half.maxLevel(), 2u);
    EXPECT_EQ(half.at(2), Precision::Float16);
    EXPECT_EQ(half.describe(), "f64:f32:f16");
    EXPECT_EQ(PrecisionLadder::parse("f64,f32,fp16"), half);

    PrecisionLadder bf16 =
        PrecisionLadder::parse("double,float,bf16");
    EXPECT_EQ(bf16.at(2), Precision::BFloat16);
    EXPECT_EQ(bf16.describe(), "f64:f32:bf16");
    EXPECT_EQ(PrecisionLadder::parse("double,single,bfloat16"), bf16);
}

TEST(Ladder, RejectsNonDescendingOrUnknownSpecs)
{
    using hpcmixp::support::FatalError;
    EXPECT_THROW(PrecisionLadder::parse("float,double"), FatalError);
    EXPECT_THROW(PrecisionLadder::parse("double,half,float"),
                 FatalError);
    EXPECT_THROW(PrecisionLadder::parse("double,double"), FatalError);
    EXPECT_THROW(PrecisionLadder::parse("double,fp8"), FatalError);
    EXPECT_THROW(PrecisionLadder::parse(""), FatalError);
}

/**
 * Every non-NaN binary16 pattern must survive the widen-to-float /
 * round-back cycle bit-for-bit (float holds all half values
 * exactly); NaN patterns must stay NaN (payloads may canonicalize).
 */
TEST(HalfTest, ExhaustiveWidenRoundTrip)
{
    for (std::uint32_t b = 0; b < 0x10000u; ++b) {
        Half h = Half::fromBits(static_cast<std::uint16_t>(b));
        float widened = static_cast<float>(h);
        Half back(widened);
        bool isNan = ((b >> 10) & 0x1fu) == 0x1fu && (b & 0x3ffu);
        if (isNan) {
            EXPECT_TRUE(std::isnan(widened)) << "bits " << b;
            EXPECT_TRUE(std::isnan(static_cast<float>(back)))
                << "bits " << b;
        } else {
            EXPECT_EQ(back.bits, b) << "bits " << b;
        }
    }
}

TEST(HalfTest, ExhaustiveBf16WidenRoundTrip)
{
    for (std::uint32_t b = 0; b < 0x10000u; ++b) {
        BFloat16 v = BFloat16::fromBits(static_cast<std::uint16_t>(b));
        float widened = static_cast<float>(v);
        BFloat16 back(widened);
        bool isNan = ((b >> 7) & 0xffu) == 0xffu && (b & 0x7fu);
        if (isNan) {
            EXPECT_TRUE(std::isnan(widened)) << "bits " << b;
            EXPECT_TRUE(std::isnan(static_cast<float>(back)))
                << "bits " << b;
        } else {
            EXPECT_EQ(back.bits, b) << "bits " << b;
        }
    }
}

TEST(HalfTest, RoundsToNearestEven)
{
    // 1 + 2^-11 is exactly halfway between 1 and 1 + 2^-10: the tie
    // goes to the even mantissa, 1.0.
    EXPECT_EQ(static_cast<float>(Half(1.0f + 0x1p-11f)), 1.0f);
    // 1 + 3*2^-11 ties between odd 1 + 2^-10 and even 1 + 2^-9.
    EXPECT_EQ(static_cast<float>(Half(1.0f + 3 * 0x1p-11f)),
              1.0f + 0x1p-9f);
    // bfloat16: halfway between 1 and 1 + 2^-7 rounds to even 1.0.
    EXPECT_EQ(static_cast<float>(BFloat16(1.0f + 0x1p-8f)), 1.0f);
    EXPECT_EQ(static_cast<float>(BFloat16(1.0f + 3 * 0x1p-8f)),
              1.0f + 0x1p-6f);
}

TEST(HalfTest, SubnormalsRoundCorrectly)
{
    // 2^-24 is the smallest binary16 subnormal.
    EXPECT_EQ(static_cast<float>(Half(0x1p-24f)), 0x1p-24f);
    EXPECT_EQ(Half(0x1p-24f).bits, 0x0001u);
    // Halfway between 0 and 2^-24 underflows to the even side, +0.
    EXPECT_EQ(Half(0x1p-25f).bits, 0x0000u);
    // Anything past halfway rounds up into the subnormal range.
    EXPECT_EQ(Half(1.5f * 0x1p-25f).bits, 0x0001u);
    // Largest subnormal, then the smallest normal.
    EXPECT_EQ(static_cast<float>(Half::fromBits(0x03ffu)),
              0x3ffp-24f);
    EXPECT_EQ(static_cast<float>(Half::fromBits(0x0400u)), 0x1p-14f);
}

/**
 * Narrowing values beyond the 16-bit format's range must overflow to
 * infinity (never wrap or saturate silently), and NaN / Inf inputs
 * must stay NaN / Inf — the quality comparator depends on the fused
 * ErrorStats seeing those poisoned outputs.
 */
TEST(HalfTest, OverflowOnNarrowProducesInfinity)
{
    EXPECT_EQ(static_cast<float>(Half(65504.0f)), 65504.0f); // max
    EXPECT_TRUE(std::isinf(static_cast<float>(Half(65520.0f))));
    EXPECT_TRUE(std::isinf(static_cast<float>(Half(-1e6f))));
    EXPECT_LT(static_cast<float>(Half(-1e6f)), 0.0f);
    // double -> half goes through float; hugely out of range stays Inf.
    EXPECT_TRUE(std::isinf(static_cast<float>(Half(1e300))));

    // bfloat16 keeps float range: float max survives, but a value
    // that rounds past it overflows to Inf.
    EXPECT_FALSE(std::isinf(static_cast<float>(BFloat16(0x1.fep127f))));
    EXPECT_TRUE(std::isinf(static_cast<float>(
        BFloat16(std::numeric_limits<float>::max()))));
    EXPECT_TRUE(std::isinf(static_cast<float>(BFloat16(1e300))));

    // NaN / Inf propagate through a narrow.
    float qnan = std::numeric_limits<float>::quiet_NaN();
    float inf = std::numeric_limits<float>::infinity();
    EXPECT_TRUE(std::isnan(static_cast<float>(Half(qnan))));
    EXPECT_TRUE(std::isnan(static_cast<float>(BFloat16(qnan))));
    EXPECT_TRUE(std::isinf(static_cast<float>(Half(inf))));
    EXPECT_TRUE(std::isinf(static_cast<float>(BFloat16(inf))));
    EXPECT_GT(static_cast<float>(Half(inf)), 0.0f);
}

TEST(HalfTest, CompoundAssignRoundsOnStore)
{
    Half h(1.0f);
    h += 0x1p-11f; // rounds back to 1.0 (tie to even)
    EXPECT_EQ(static_cast<float>(h), 1.0f);
    h += 0x1p-10f;
    EXPECT_EQ(static_cast<float>(h), 1.0f + 0x1p-10f);

    BFloat16 b(256.0f);
    b *= 0.5f;
    EXPECT_EQ(static_cast<float>(b), 128.0f);
    b += 0.25f; // 128.25 is below bf16 resolution at 128
    EXPECT_EQ(static_cast<float>(b), 128.0f);
}

TEST(BufferTest, AllocatesZeroFilled)
{
    Buffer b(8, Precision::Float32);
    EXPECT_EQ(b.size(), 8u);
    EXPECT_EQ(b.bytes(), 32u);
    for (std::size_t i = 0; i < b.size(); ++i)
        EXPECT_EQ(b.loadDouble(i), 0.0);
}

TEST(BufferTest, SinglePrecisionHalvesFootprint)
{
    Buffer d(1000, Precision::Float64);
    Buffer f(1000, Precision::Float32);
    EXPECT_EQ(f.bytes() * 2, d.bytes());
}

TEST(BufferTest, TypedViewsMatchPrecision)
{
    Buffer b(4, Precision::Float64);
    auto view = b.as<double>();
    view[2] = 2.5;
    EXPECT_DOUBLE_EQ(b.loadDouble(2), 2.5);
}

TEST(BufferTest, FromDoublesRoundsToFloat)
{
    std::vector<double> data{0.1, 0.2, 1.0 / 3.0};
    Buffer f = Buffer::fromDoubles(data, Precision::Float32);
    Buffer d = Buffer::fromDoubles(data, Precision::Float64);
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_EQ(f.loadDouble(i),
                  static_cast<double>(static_cast<float>(data[i])));
        EXPECT_EQ(d.loadDouble(i), data[i]);
    }
}

TEST(BufferTest, ToDoublesRoundTripsWiden)
{
    std::vector<double> data{1.0, 2.0, 3.0};
    Buffer b = Buffer::fromDoubles(data, Precision::Float64);
    EXPECT_EQ(b.toDoubles(), data);
}

TEST(BufferTest, StoreDoubleConvertsAtWrite)
{
    Buffer f(1, Precision::Float32);
    f.storeDouble(0, 1.0 / 3.0);
    EXPECT_EQ(f.loadDouble(0),
              static_cast<double>(static_cast<float>(1.0 / 3.0)));
}

TEST(BufferDeathTest, MismatchedTypedAccessPanics)
{
    Buffer f(4, Precision::Float32);
    EXPECT_DEATH((void)f.as<double>(), "typed access");
}

TEST(BufferDeathTest, OutOfRangeAccessPanics)
{
    Buffer b(2, Precision::Float64);
    EXPECT_DEATH((void)b.loadDouble(2), "out of range");
}

TEST(MpIo, WriteDoubleReadIntoFloatConverts)
{
    std::vector<double> data{0.5, 1.5, 1.0 / 3.0};
    Buffer source = Buffer::fromDoubles(data, Precision::Float64);
    std::stringstream stream;
    mpFwrite(source, Precision::Float64, stream);

    Buffer dest(3, Precision::Float32);
    mpFread(dest, Precision::Float64, stream);
    for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_EQ(dest.loadDouble(i),
                  static_cast<double>(static_cast<float>(data[i])));
}

TEST(MpIo, WriteFloatDiskFormatFromDoubleBuffer)
{
    std::vector<double> data{0.25, 0.125};
    Buffer source = Buffer::fromDoubles(data, Precision::Float64);
    std::stringstream stream;
    mpFwrite(source, Precision::Float32, stream);
    EXPECT_EQ(stream.str().size(), 2 * sizeof(float));

    Buffer dest(2, Precision::Float64);
    mpFread(dest, Precision::Float32, stream);
    EXPECT_EQ(dest.toDoubles(), data); // exactly representable
}

TEST(MpIo, ShortReadIsFatal)
{
    std::stringstream stream;
    stream.write("abcd", 4);
    Buffer dest(4, Precision::Float64);
    EXPECT_THROW(mpFread(dest, Precision::Float64, stream),
                 hpcmixp::support::FatalError);
}

TEST(MpIo, FileRoundTrip)
{
    namespace fs = std::filesystem;
    std::string path =
        (fs::temp_directory_path() / "hpcmixp_io_test.bin").string();
    std::vector<double> data{3.0, -2.5, 0.0625};
    Buffer source = Buffer::fromDoubles(data, Precision::Float32);
    mpWriteFile(source, Precision::Float64, path);
    Buffer loaded =
        mpReadFile(path, Precision::Float64, 3, Precision::Float32);
    EXPECT_EQ(loaded.toDoubles(), source.toDoubles());
    fs::remove(path);
    EXPECT_THROW(
        mpReadFile("/no/such/file", Precision::Float64, 1,
                   Precision::Float64),
        hpcmixp::support::FatalError);
}

TEST(Dispatch, Dispatch1SelectsMatchingType)
{
    auto kind = dispatch1(Precision::Float32, [](auto tag) {
        using T = typename decltype(tag)::type;
        return precisionOf<T>();
    });
    EXPECT_EQ(kind, Precision::Float32);
    kind = dispatch1(Precision::Float64, [](auto tag) {
        using T = typename decltype(tag)::type;
        return precisionOf<T>();
    });
    EXPECT_EQ(kind, Precision::Float64);
}

constexpr Precision kAllPrecisions[] = {
    Precision::BFloat16,
    Precision::Float16,
    Precision::Float32,
    Precision::Float64,
};

TEST(Dispatch, Dispatch2CoversAll16Combinations)
{
    for (auto a : kAllPrecisions) {
        for (auto b : kAllPrecisions) {
            auto got = dispatch2(a, b, [](auto ta, auto tb) {
                using A = typename decltype(ta)::type;
                using B = typename decltype(tb)::type;
                return std::pair{precisionOf<A>(), precisionOf<B>()};
            });
            EXPECT_EQ(got.first, a);
            EXPECT_EQ(got.second, b);
        }
    }
}

TEST(Dispatch, PromotionInsideDispatchMatchesCxxRules)
{
    auto sum = dispatch2(
        Precision::Float32, Precision::Float64, [](auto ta, auto tb) {
            using A = typename decltype(ta)::type;
            using B = typename decltype(tb)::type;
            A x = A(0.1f);
            B y = B(0.2);
            return sizeof(x + y);
        });
    EXPECT_EQ(sum, sizeof(double));
}

TEST(Dispatch, Dispatch4Covers256Combinations)
{
    int count = 0;
    for (auto a : kAllPrecisions)
        for (auto b : kAllPrecisions)
            for (auto c : kAllPrecisions)
                for (auto d : kAllPrecisions)
                    dispatch4(a, b, c, d,
                              [&](auto, auto, auto, auto) { ++count; });
    EXPECT_EQ(count, 256);
}

TEST(BufferTest, HalfLaneQuartersDoubleFootprint)
{
    Buffer d(1000, Precision::Float64);
    Buffer h(1000, Precision::Float16);
    Buffer b(1000, Precision::BFloat16);
    EXPECT_EQ(h.bytes() * 4, d.bytes());
    EXPECT_EQ(b.bytes(), h.bytes());
}

TEST(BufferTest, HalfLanesConvertOnStoreAndLoad)
{
    std::vector<double> data{1.0, 1.0 / 3.0, 65504.0, 1e6, -2.5};
    Buffer h = Buffer::fromDoubles(data, Precision::Float16);
    Buffer b = Buffer::fromDoubles(data, Precision::BFloat16);
    for (std::size_t i = 0; i < data.size(); ++i) {
        float f = static_cast<float>(data[i]);
        EXPECT_EQ(h.loadDouble(i),
                  static_cast<double>(static_cast<float>(Half(f))))
            << i;
        EXPECT_EQ(b.loadDouble(i),
                  static_cast<double>(static_cast<float>(BFloat16(f))))
            << i;
    }
    // 1e6 exceeds binary16 range: the stored lane reads back as Inf.
    EXPECT_TRUE(std::isinf(h.loadDouble(3)));
    EXPECT_FALSE(std::isinf(b.loadDouble(3)));

    Buffer w(1, Precision::Float16);
    w.storeDouble(0, 1.0 / 3.0);
    auto view = w.as<Half>();
    EXPECT_EQ(view[0].bits, Half(1.0f / 3.0f).bits);
}

TEST(MpIo, HalfLaneFileRoundTrip)
{
    namespace fs = std::filesystem;
    std::string path =
        (fs::temp_directory_path() / "hpcmixp_io_half.bin").string();
    std::vector<double> data{0.5, -0.25, 1.0 / 3.0, 1024.0};
    Buffer source = Buffer::fromDoubles(data, Precision::Float16);
    mpWriteFile(source, Precision::Float64, path);
    Buffer loaded =
        mpReadFile(path, Precision::Float64, 4, Precision::Float16);
    EXPECT_EQ(loaded.toDoubles(), source.toDoubles());
    fs::remove(path);
}

} // namespace
