/**
 * @file
 * Tests for the runtime library: runtime-typed buffers (mp_malloc),
 * mixed-precision binary I/O (mp_fread/mp_fwrite) and type dispatch.
 */

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/buffer.h"
#include "runtime/dispatch.h"
#include "runtime/mp_io.h"
#include "support/logging.h"

namespace {

using namespace hpcmixp::runtime;

TEST(Precision, ByteSizesAndNames)
{
    EXPECT_EQ(byteSize(Precision::Float32), 4u);
    EXPECT_EQ(byteSize(Precision::Float64), 8u);
    EXPECT_EQ(precisionName(Precision::Float32), "float");
    EXPECT_EQ(precisionName(Precision::Float64), "double");
    EXPECT_EQ(precisionOf<float>(), Precision::Float32);
    EXPECT_EQ(precisionOf<double>(), Precision::Float64);
}

TEST(BufferTest, AllocatesZeroFilled)
{
    Buffer b(8, Precision::Float32);
    EXPECT_EQ(b.size(), 8u);
    EXPECT_EQ(b.bytes(), 32u);
    for (std::size_t i = 0; i < b.size(); ++i)
        EXPECT_EQ(b.loadDouble(i), 0.0);
}

TEST(BufferTest, SinglePrecisionHalvesFootprint)
{
    Buffer d(1000, Precision::Float64);
    Buffer f(1000, Precision::Float32);
    EXPECT_EQ(f.bytes() * 2, d.bytes());
}

TEST(BufferTest, TypedViewsMatchPrecision)
{
    Buffer b(4, Precision::Float64);
    auto view = b.as<double>();
    view[2] = 2.5;
    EXPECT_DOUBLE_EQ(b.loadDouble(2), 2.5);
}

TEST(BufferTest, FromDoublesRoundsToFloat)
{
    std::vector<double> data{0.1, 0.2, 1.0 / 3.0};
    Buffer f = Buffer::fromDoubles(data, Precision::Float32);
    Buffer d = Buffer::fromDoubles(data, Precision::Float64);
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_EQ(f.loadDouble(i),
                  static_cast<double>(static_cast<float>(data[i])));
        EXPECT_EQ(d.loadDouble(i), data[i]);
    }
}

TEST(BufferTest, ToDoublesRoundTripsWiden)
{
    std::vector<double> data{1.0, 2.0, 3.0};
    Buffer b = Buffer::fromDoubles(data, Precision::Float64);
    EXPECT_EQ(b.toDoubles(), data);
}

TEST(BufferTest, StoreDoubleConvertsAtWrite)
{
    Buffer f(1, Precision::Float32);
    f.storeDouble(0, 1.0 / 3.0);
    EXPECT_EQ(f.loadDouble(0),
              static_cast<double>(static_cast<float>(1.0 / 3.0)));
}

TEST(BufferDeathTest, MismatchedTypedAccessPanics)
{
    Buffer f(4, Precision::Float32);
    EXPECT_DEATH((void)f.as<double>(), "typed access");
}

TEST(BufferDeathTest, OutOfRangeAccessPanics)
{
    Buffer b(2, Precision::Float64);
    EXPECT_DEATH((void)b.loadDouble(2), "out of range");
}

TEST(MpIo, WriteDoubleReadIntoFloatConverts)
{
    std::vector<double> data{0.5, 1.5, 1.0 / 3.0};
    Buffer source = Buffer::fromDoubles(data, Precision::Float64);
    std::stringstream stream;
    mpFwrite(source, Precision::Float64, stream);

    Buffer dest(3, Precision::Float32);
    mpFread(dest, Precision::Float64, stream);
    for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_EQ(dest.loadDouble(i),
                  static_cast<double>(static_cast<float>(data[i])));
}

TEST(MpIo, WriteFloatDiskFormatFromDoubleBuffer)
{
    std::vector<double> data{0.25, 0.125};
    Buffer source = Buffer::fromDoubles(data, Precision::Float64);
    std::stringstream stream;
    mpFwrite(source, Precision::Float32, stream);
    EXPECT_EQ(stream.str().size(), 2 * sizeof(float));

    Buffer dest(2, Precision::Float64);
    mpFread(dest, Precision::Float32, stream);
    EXPECT_EQ(dest.toDoubles(), data); // exactly representable
}

TEST(MpIo, ShortReadIsFatal)
{
    std::stringstream stream;
    stream.write("abcd", 4);
    Buffer dest(4, Precision::Float64);
    EXPECT_THROW(mpFread(dest, Precision::Float64, stream),
                 hpcmixp::support::FatalError);
}

TEST(MpIo, FileRoundTrip)
{
    namespace fs = std::filesystem;
    std::string path =
        (fs::temp_directory_path() / "hpcmixp_io_test.bin").string();
    std::vector<double> data{3.0, -2.5, 0.0625};
    Buffer source = Buffer::fromDoubles(data, Precision::Float32);
    mpWriteFile(source, Precision::Float64, path);
    Buffer loaded =
        mpReadFile(path, Precision::Float64, 3, Precision::Float32);
    EXPECT_EQ(loaded.toDoubles(), source.toDoubles());
    fs::remove(path);
    EXPECT_THROW(
        mpReadFile("/no/such/file", Precision::Float64, 1,
                   Precision::Float64),
        hpcmixp::support::FatalError);
}

TEST(Dispatch, Dispatch1SelectsMatchingType)
{
    auto kind = dispatch1(Precision::Float32, [](auto tag) {
        using T = typename decltype(tag)::type;
        return precisionOf<T>();
    });
    EXPECT_EQ(kind, Precision::Float32);
    kind = dispatch1(Precision::Float64, [](auto tag) {
        using T = typename decltype(tag)::type;
        return precisionOf<T>();
    });
    EXPECT_EQ(kind, Precision::Float64);
}

TEST(Dispatch, Dispatch2CoversAllFourCombinations)
{
    for (auto a : {Precision::Float32, Precision::Float64}) {
        for (auto b : {Precision::Float32, Precision::Float64}) {
            auto got = dispatch2(a, b, [](auto ta, auto tb) {
                using A = typename decltype(ta)::type;
                using B = typename decltype(tb)::type;
                return std::pair{precisionOf<A>(), precisionOf<B>()};
            });
            EXPECT_EQ(got.first, a);
            EXPECT_EQ(got.second, b);
        }
    }
}

TEST(Dispatch, PromotionInsideDispatchMatchesCxxRules)
{
    auto sum = dispatch2(
        Precision::Float32, Precision::Float64, [](auto ta, auto tb) {
            using A = typename decltype(ta)::type;
            using B = typename decltype(tb)::type;
            A x = A(0.1f);
            B y = B(0.2);
            return sizeof(x + y);
        });
    EXPECT_EQ(sum, sizeof(double));
}

TEST(Dispatch, Dispatch4Covers16Combinations)
{
    int count = 0;
    for (auto a : {Precision::Float32, Precision::Float64})
        for (auto b : {Precision::Float32, Precision::Float64})
            for (auto c : {Precision::Float32, Precision::Float64})
                for (auto d : {Precision::Float32, Precision::Float64})
                    dispatch4(a, b, c, d,
                              [&](auto, auto, auto, auto) { ++count; });
    EXPECT_EQ(count, 16);
}

} // namespace
