/**
 * @file
 * Tests for the core tuning layer: cluster/variable problems, compile
 * failures for cluster-splitting configurations, precision-map
 * derivation and structure trees.
 */

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "benchmarks/registry.h"
#include "core/tuner.h"
#include "search/genetic.h"

namespace {

using namespace hpcmixp;
using core::BenchmarkTuner;
using core::TunerOptions;
using search::Config;
using search::EvalStatus;

TunerOptions
fastOptions(double threshold = 1e-6)
{
    TunerOptions opt;
    opt.threshold = threshold;
    opt.searchReps = 1;
    opt.finalReps = 3;
    opt.budget = {200, 0.0};
    return opt;
}

std::unique_ptr<benchmarks::Benchmark>
make(const std::string& name)
{
    return benchmarks::BenchmarkRegistry::instance().create(name);
}

TEST(Tuner, ReportsComplexityOfHydro1d)
{
    auto bench = make("hydro-1d");
    BenchmarkTuner tuner(*bench, fastOptions());
    EXPECT_EQ(tuner.variableCount(), 8u); // 4 globals + 4 params
    EXPECT_EQ(tuner.clusterCount(), 4u);  // global/param pairs unify
    EXPECT_GT(tuner.baselineSeconds(), 0.0);
}

TEST(Tuner, PrecisionMapFollowsClusterBindKeys)
{
    auto bench = make("hydro-1d");
    BenchmarkTuner tuner(*bench, fastOptions());

    // Find the cluster containing the "y" knob and lower only it.
    const auto& program = bench->programModel();
    auto yVar = program.findVariable("y");
    std::size_t yCluster = tuner.clusters().clusterOf(yVar);

    Config cfg(tuner.clusterCount());
    cfg.set(yCluster);
    auto pm = tuner.precisionMapFor(cfg);
    EXPECT_EQ(pm.get("y"), runtime::Precision::Float32);
    EXPECT_EQ(pm.get("x"), runtime::Precision::Float64);
    EXPECT_EQ(pm.get("coef"), runtime::Precision::Float64);
}

TEST(Tuner, BaselineClusterConfigPassesWithUnitSpeedup)
{
    auto bench = make("tridiag");
    BenchmarkTuner tuner(*bench, fastOptions());
    auto eval =
        tuner.evaluateClusterConfig(Config(tuner.clusterCount()), 5);
    EXPECT_EQ(eval.status, EvalStatus::Pass);
    EXPECT_DOUBLE_EQ(eval.qualityLoss, 0.0);
    // Identical code re-timed: the ratio is 1 up to scheduler noise,
    // which is unbounded on a contended machine — assert only sanity.
    EXPECT_TRUE(std::isfinite(eval.speedup));
    EXPECT_GT(eval.speedup, 0.0);
}

TEST(Tuner, SplittingAClusterIsACompileFailure)
{
    auto bench = make("hydro-1d");
    BenchmarkTuner tuner(*bench, fastOptions());
    auto& problem = tuner.variableProblem();

    // Lower exactly one member of a multi-variable cluster.
    std::size_t multi = 0;
    bool found = false;
    for (std::size_t c = 0; c < tuner.clusterCount(); ++c) {
        if (tuner.clusters().members(c).size() > 1) {
            multi = c;
            found = true;
            break;
        }
    }
    ASSERT_TRUE(found);
    model::VarId member = tuner.clusters().members(multi).front();

    // Variable sites are the ascending real-variable ids.
    auto reals = bench->programModel().realVariables();
    std::size_t site = static_cast<std::size_t>(
        std::find(reals.begin(), reals.end(), member) - reals.begin());

    Config cfg(problem.siteCount());
    cfg.set(site);
    auto eval = problem.evaluate(cfg);
    EXPECT_EQ(eval.status, EvalStatus::CompileFail);
}

TEST(Tuner, UniformVariableConfigExecutes)
{
    auto bench = make("hydro-1d");
    BenchmarkTuner tuner(*bench, fastOptions(1.0));
    auto& problem = tuner.variableProblem();
    Config all = Config::allLowered(problem.siteCount());
    auto eval = problem.evaluate(all);
    EXPECT_NE(eval.status, EvalStatus::CompileFail);
}

TEST(Tuner, ToClusterConfigReducesVariableConfig)
{
    auto bench = make("iccg");
    BenchmarkTuner tuner(*bench, fastOptions());
    Config varCfg = Config::allLowered(tuner.variableCount());
    Config clusterCfg = tuner.toClusterConfig(varCfg);
    EXPECT_EQ(clusterCfg.size(), tuner.clusterCount());
    EXPECT_EQ(clusterCfg.count(), tuner.clusterCount());
}

TEST(Tuner, StructureTreeCoversAllSites)
{
    auto bench = make("blackscholes");
    BenchmarkTuner tuner(*bench, fastOptions());
    const auto* root = tuner.variableProblem().structure();
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->sites.size(), tuner.variableCount());
    std::set<std::size_t> seen(root->sites.begin(), root->sites.end());
    EXPECT_EQ(seen.size(), tuner.variableCount());
    // main / BlkSchlsEqEuroNoDiv / CNDF under the one module.
    ASSERT_EQ(root->children.size(), 1u);
    EXPECT_EQ(root->children[0].children.size(), 3u);
}

TEST(Tuner, DeltaDebugTunesAKernel)
{
    auto bench = make("eos");
    BenchmarkTuner tuner(*bench, fastOptions(1e-3));
    auto outcome = tuner.tune("DD");
    EXPECT_GE(outcome.search.evaluated, 1u);
    EXPECT_FALSE(outcome.search.timedOut);
    EXPECT_TRUE(outcome.search.foundImprovement);
    EXPECT_TRUE(std::isfinite(outcome.finalSpeedup));
    EXPECT_LE(outcome.finalQualityLoss, 1e-3);
}

TEST(Tuner, GeneticTuneStaysWithinItsIterationBudget)
{
    // GA decisions mix a fixed seed with *measured* runtimes, so the
    // discovered configuration may vary run to run — but the strict
    // termination criterion bounds the work (paper Section V).
    auto bench = make("gen-lin-recur");
    BenchmarkTuner tuner(*bench, fastOptions(1e-3));
    auto outcome = tuner.tune("GA");
    search::GaOptions defaults;
    EXPECT_LE(outcome.search.evaluated,
              defaults.population * defaults.generations);
    EXPECT_LE(outcome.finalQualityLoss, 1e-3);
}

TEST(Tuner, ImpossibleThresholdYieldsBaseline)
{
    auto bench = make("banded-lin-eq");
    BenchmarkTuner tuner(*bench, fastOptions(0.0));
    auto outcome = tuner.tune("DD");
    // Nothing but the baseline can have exactly zero loss here... but
    // cold clusters may pass with zero loss; either way the quality
    // constraint must hold.
    EXPECT_LE(outcome.finalQualityLoss, 0.0);
}

} // namespace
