/**
 * @file
 * Soundness-in-practice of the certified verdicts.
 *
 *  - Property: a cluster certified safe through level L never
 *    produces a verification FAIL when run at any rung 1..L, alone or
 *    composed with the other certified clusters, across 10 seeds of
 *    randomized rung assignments.
 *  - Profiler cross-check: one double-precision run of every
 *    benchmark with range recording on; every statically derived
 *    interval must contain the observed per-bind-key range.
 */

#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "benchmarks/benchmark.h"
#include "benchmarks/registry.h"
#include "runtime/profiler.h"
#include "typeforge/absint.h"
#include "typeforge/clustering.h"
#include "verify/comparator.h"

namespace {

using namespace hpcmixp;
using benchmarks::PrecisionMap;
using typeforge::AbsintOptions;

/** Bind keys of every variable in @p cluster. */
std::vector<std::string>
clusterKeys(const model::ProgramModel& model,
            const typeforge::ClusterSet& clusters, std::size_t cluster)
{
    std::vector<std::string> keys;
    for (const auto& var : model.variables())
        if (!var.bindKey.empty() &&
            clusters.clusterOf(var.id) == cluster)
            keys.push_back(var.bindKey);
    return keys;
}

class Certified : public ::testing::TestWithParam<std::string> {};

TEST_P(Certified, SafeThroughRungsNeverFailVerification)
{
    auto bench =
        benchmarks::BenchmarkRegistry::instance().create(GetParam());
    const auto& model = bench->programModel();
    auto clusters = typeforge::analyze(model);
    AbsintOptions options; // 4-rung ladder, threshold 1e-6
    auto abs = typeforge::interpret(model, clusters, options);

    std::vector<const typeforge::ClusterCaps*> certified;
    for (const auto& cc : abs.clusters)
        if (cc.certified && cc.safeThrough >= 1 &&
            !clusterKeys(model, clusters, cc.cluster).empty())
            certified.push_back(&cc);
    if (certified.empty())
        GTEST_SKIP() << "no certified clusters with bind keys";

    auto reference = bench->run(PrecisionMap{});
    verify::OutputComparator cmp(bench->qualityMetric(),
                                 options.threshold);

    // Each certified cluster alone, at every rung it is certified
    // safe through.
    for (const auto* cc : certified) {
        for (std::size_t rung = 1; rung <= cc->safeThrough; ++rung) {
            PrecisionMap pm;
            for (const auto& key :
                 clusterKeys(model, clusters, cc->cluster))
                pm.set(key, options.ladder.at(rung));
            auto verdict =
                cmp.verify(reference.values, bench->run(pm).values);
            EXPECT_TRUE(verdict.passed)
                << GetParam() << " cluster " << cc->cluster
                << " rung " << rung << ": certified safe but loss "
                << verdict.loss << " > " << options.threshold;
        }
    }

    // Ten seeds of random certified-rung compositions: every
    // certified cluster at an independently drawn rung within its
    // safe-through range, everything else at double.
    for (std::uint32_t seed = 0; seed < 10; ++seed) {
        std::mt19937 rng(seed);
        PrecisionMap pm;
        for (const auto* cc : certified) {
            std::uniform_int_distribution<std::size_t> pick(
                0, cc->safeThrough);
            std::size_t rung = pick(rng);
            if (rung == 0)
                continue; // double is the reference rung
            for (const auto& key :
                 clusterKeys(model, clusters, cc->cluster))
                pm.set(key, options.ladder.at(rung));
        }
        auto verdict =
            cmp.verify(reference.values, bench->run(pm).values);
        EXPECT_TRUE(verdict.passed)
            << GetParam() << " seed " << seed
            << ": certified composition failed with loss "
            << verdict.loss;
    }
}

TEST_P(Certified, StaticIntervalsContainObservedRanges)
{
    auto bench =
        benchmarks::BenchmarkRegistry::instance().create(GetParam());
    const auto& model = bench->programModel();
    auto clusters = typeforge::analyze(model);
    auto abs = typeforge::interpret(model, clusters);

    auto& profiler = runtime::Profiler::instance();
    profiler.resetRanges();
    profiler.setRangeRecording(true);
    bench->run(PrecisionMap{}); // reference rung observes the inputs
    profiler.setRangeRecording(false);

    std::vector<typeforge::ObservedRange> observed;
    for (const auto& [site, stats] : profiler.allRanges())
        observed.push_back({site, stats.lo, stats.hi});
    profiler.resetRanges();
    // srad synthesizes its image inside the timed region and binds no
    // cached inputs; everything else records at least one site.
    if (observed.empty())
        GTEST_SKIP() << "no bound inputs to record";

    auto violations =
        typeforge::crossCheckRanges(model, abs, observed);
    for (const auto& v : violations)
        ADD_FAILURE() << GetParam() << " bind key '" << v.bindKey
                      << "': observed [" << v.observedLo << ", "
                      << v.observedHi << "] escapes static ["
                      << v.staticLo << ", " << v.staticHi << "]";
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, Certified,
    ::testing::ValuesIn(
        benchmarks::BenchmarkRegistry::instance().names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
        std::string name = info.param;
        for (char& c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
