/**
 * @file
 * Tests for cache-racing portfolio search: the deterministic winner
 * rule, cooperative cancellation, the portfolio-vs-single equivalence
 * property (a warm shared memo never changes a strategy's committed
 * trajectory, only its execution count), and the tuner/harness entry
 * points.
 */

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "benchmarks/registry.h"
#include "core/tuner.h"
#include "search/combinational.h"
#include "search/delta_debug.h"
#include "search/driver.h"
#include "search/genetic.h"
#include "search/memo_store.h"
#include "search/portfolio.h"

namespace {

using namespace hpcmixp::search;
namespace benchmarks = hpcmixp::benchmarks;
namespace core = hpcmixp::core;

std::string
freshDir(const std::string& name)
{
    std::string dir = ::testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

/** Deterministic thread-safe problem that counts raw executions. */
class CountingProblem : public SearchProblem {
  public:
    explicit CountingProblem(std::size_t sites) : sites_(sites) {}

    std::size_t siteCount() const override { return sites_; }

    Evaluation
    evaluate(const Config& config) override
    {
        ++rawCalls_;
        Evaluation eval;
        eval.status = config.test(0) ? EvalStatus::QualityFail
                                     : EvalStatus::Pass;
        eval.qualityLoss = eval.passed() ? 0.0 : 1.0;
        eval.speedup =
            1.0 + 0.1 * static_cast<double>(config.count());
        eval.runtimeSeconds = 1.0;
        return eval;
    }

    std::atomic<int> rawCalls_{0};

  private:
    std::size_t sites_;
};

const std::vector<std::string> kClusterCodes = {"CB", "DD", "GA"};

MemoFingerprint
testFingerprint(std::size_t sites)
{
    MemoFingerprint fp;
    fp.benchmark = "counting";
    fp.inputSignature = 42;
    fp.metric = "MAE";
    fp.threshold = 1e-6;
    fp.sites = sites;
    return fp;
}

SearchResult
improved(double speedup, Config best)
{
    SearchResult r;
    r.foundImprovement = true;
    r.bestEvaluation.speedup = speedup;
    r.best = std::move(best);
    return r;
}

// --- winner rule -----------------------------------------------------

TEST(Portfolio, WinnerRuleIsDeterministic)
{
    SearchResult baseline; // no improvement
    Config a = Config::withLowered(4, {1});
    Config b = Config::withLowered(4, {2});

    // An improvement beats none; none never beats none (entrant order).
    EXPECT_TRUE(betterSearchResult(improved(1.1, a), baseline));
    EXPECT_FALSE(betterSearchResult(baseline, improved(1.1, a)));
    EXPECT_FALSE(betterSearchResult(baseline, baseline));

    // Higher speedup wins.
    EXPECT_TRUE(
        betterSearchResult(improved(1.5, a), improved(1.2, b)));
    EXPECT_FALSE(
        betterSearchResult(improved(1.2, b), improved(1.5, a)));

    // Equal speedups: the lexicographically smaller bitmask wins,
    // independent of which finished first.
    SearchResult left = improved(1.5, a);  // "0100"
    SearchResult right = improved(1.5, b); // "0010"
    EXPECT_TRUE(betterSearchResult(right, left));
    EXPECT_FALSE(betterSearchResult(left, right));
    // Identical results: neither beats the other (entrant order).
    EXPECT_FALSE(betterSearchResult(left, left));
}

// --- cancellation ----------------------------------------------------

TEST(Portfolio, PresetCancelFlagStopsSearchBeforeExecuting)
{
    CountingProblem problem(4);
    CombinationalSearch cb;
    SearchRunOptions run;
    auto cancel = std::make_shared<std::atomic<bool>>(true);
    run.cancel = cancel;
    auto result = runSearch(problem, cb, {100, 0.0}, run);
    EXPECT_TRUE(result.timedOut);
    EXPECT_EQ(result.evaluated, 0u);
    EXPECT_EQ(problem.rawCalls_.load(), 0);
    // Cancellation is cooperative best-so-far: the baseline answer.
    EXPECT_FALSE(result.foundImprovement);
}

// --- portfolio runs --------------------------------------------------

TEST(Portfolio, BestModePicksNoWorseThanAnySingleStrategy)
{
    // Solo reference runs, one fresh problem each.
    std::map<std::string, SearchResult> solo;
    for (const auto& code : kClusterCodes) {
        CountingProblem problem(4);
        solo[code] = runSearch(problem, code, {200, 0.0});
    }

    CountingProblem shared(4);
    std::vector<PortfolioEntrant> entrants;
    for (const auto& code : kClusterCodes) {
        PortfolioEntrant entrant;
        entrant.code = code;
        entrant.problem = &shared;
        entrants.push_back(std::move(entrant));
    }
    PortfolioOptions options;
    options.budget = {200, 0.0};
    PortfolioResult result = runPortfolio(entrants, options);

    ASSERT_EQ(result.results.size(), kClusterCodes.size());
    ASSERT_LT(result.winner, result.results.size());
    const SearchResult& winner = result.results[result.winner];
    EXPECT_TRUE(winner.foundImprovement);
    for (const auto& [code, single] : solo) {
        EXPECT_GE(winner.bestEvaluation.speedup,
                  single.bestEvaluation.speedup)
            << "portfolio winner is worse than solo " << code;
    }
    // The per-entrant results match their solo counterparts: the
    // problem is deterministic and nothing was shared between them.
    for (std::size_t i = 0; i < entrants.size(); ++i) {
        EXPECT_EQ(result.results[i].best,
                  solo[entrants[i].code].best);
        EXPECT_EQ(result.results[i].evaluated,
                  solo[entrants[i].code].evaluated);
    }
}

TEST(Portfolio, SharedMemoPreservesTrajectoriesAndSavesWork)
{
    // The equivalence property: with a shared (then warm) memo table,
    // every strategy still commits exactly the evaluations of its solo
    // run — same best, same speedup — only the split between executed
    // and memo-hit changes.
    std::map<std::string, SearchResult> solo;
    for (const auto& code : kClusterCodes) {
        CountingProblem problem(4);
        solo[code] = runSearch(problem, code, {200, 0.0});
    }

    auto runShared = [&](std::shared_ptr<MemoTable> memo,
                         CountingProblem& problem) {
        std::vector<PortfolioEntrant> entrants;
        for (const auto& code : kClusterCodes) {
            PortfolioEntrant entrant;
            entrant.code = code;
            entrant.problem = &problem;
            entrant.run.fingerprint = memo->fingerprint();
            entrant.run.memo = memo;
            entrants.push_back(std::move(entrant));
        }
        PortfolioOptions options;
        options.budget = {200, 0.0};
        return runPortfolio(entrants, options);
    };

    std::string path = ::testing::TempDir() + "portfolio_memo.log";
    std::remove(path.c_str());
    MemoFingerprint fp = testFingerprint(4);

    // Cold portfolio: entrants deduplicate against each other live.
    CountingProblem cold(4);
    PortfolioResult coldRun =
        runShared(std::make_shared<MemoTable>(path, fp), cold);
    std::size_t soloExecutions = 0;
    for (std::size_t i = 0; i < kClusterCodes.size(); ++i) {
        const SearchResult& entrant = coldRun.results[i];
        const SearchResult& reference = solo[kClusterCodes[i]];
        EXPECT_EQ(entrant.best, reference.best);
        EXPECT_DOUBLE_EQ(entrant.bestEvaluation.speedup,
                         reference.bestEvaluation.speedup);
        // Every solo execution became an execution or a memo hit.
        EXPECT_EQ(entrant.evaluated + entrant.memoHits,
                  reference.evaluated);
        soloExecutions += reference.evaluated;
    }
    // Sharing cannot execute more than the solo runs did combined.
    EXPECT_LE(cold.rawCalls_.load(),
              static_cast<int>(soloExecutions));

    // Warm portfolio from the reopened segment: zero executions.
    CountingProblem warm(4);
    PortfolioResult warmRun =
        runShared(std::make_shared<MemoTable>(path, fp), warm);
    EXPECT_EQ(warm.rawCalls_.load(), 0);
    for (std::size_t i = 0; i < kClusterCodes.size(); ++i) {
        const SearchResult& entrant = warmRun.results[i];
        EXPECT_EQ(entrant.evaluated, 0u);
        EXPECT_EQ(entrant.best, solo[kClusterCodes[i]].best);
    }
    EXPECT_EQ(warmRun.results[warmRun.winner].best,
              coldRun.results[coldRun.winner].best);
}

TEST(Portfolio, RaceModeFinishesAndPicksAWinner)
{
    CountingProblem problem(4);
    std::vector<PortfolioEntrant> entrants;
    for (const auto& code : kClusterCodes) {
        PortfolioEntrant entrant;
        entrant.code = code;
        entrant.problem = &problem;
        entrants.push_back(std::move(entrant));
    }
    PortfolioOptions options;
    options.mode = PortfolioMode::Race;
    options.budget = {200, 0.0};
    PortfolioResult result = runPortfolio(entrants, options);
    ASSERT_EQ(result.results.size(), kClusterCodes.size());
    // Whatever got cancelled, the winner holds a real improvement:
    // at least one entrant finished cleanly before raising the flag.
    EXPECT_TRUE(result.results[result.winner].foundImprovement);
    EXPECT_GT(result.results[result.winner].bestEvaluation.speedup,
              1.0);
}

TEST(Portfolio, SerialFallbackMatchesConcurrentResults)
{
    auto run = [](std::size_t workers) {
        CountingProblem problem(4);
        std::vector<PortfolioEntrant> entrants;
        for (const auto& code : kClusterCodes) {
            PortfolioEntrant entrant;
            entrant.code = code;
            entrant.problem = &problem;
            entrants.push_back(std::move(entrant));
        }
        PortfolioOptions options;
        options.workers = workers;
        options.budget = {200, 0.0};
        return runPortfolio(entrants, options);
    };
    PortfolioResult serial = run(1);
    PortfolioResult parallel = run(3);
    EXPECT_EQ(serial.winner, parallel.winner);
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
        EXPECT_EQ(serial.results[i].best, parallel.results[i].best);
        EXPECT_EQ(serial.results[i].evaluated,
                  parallel.results[i].evaluated);
    }
}

// --- tuner entry point ----------------------------------------------

core::TunerOptions
fastOptions()
{
    core::TunerOptions opt;
    opt.threshold = 1e-2;
    opt.searchReps = 1;
    opt.finalReps = 3;
    opt.budget = {200, 0.0};
    return opt;
}

TEST(Portfolio, TunerPortfolioBeatsNoSingleStrategy)
{
    auto bench =
        benchmarks::BenchmarkRegistry::instance().create("hydro-1d");
    std::string dir = freshDir("portfolio_tuner_store/");
    core::TunerOptions options = fastOptions();
    options.memoStore = std::make_shared<MemoStore>(dir);

    core::BenchmarkTuner tuner(*bench, options);
    core::PortfolioOutcome outcome = tuner.tunePortfolio(
        {"CB", "DD", "GA"}, PortfolioMode::Best, 2);

    ASSERT_EQ(outcome.portfolio.results.size(), 3u);
    EXPECT_FALSE(outcome.winnerCode.empty());
    EXPECT_EQ(outcome.clusterConfig.size(), tuner.clusterCount());
    const SearchResult& winner =
        outcome.portfolio.results[outcome.portfolio.winner];
    for (const SearchResult& entrant : outcome.portfolio.results)
        EXPECT_GE(winner.bestEvaluation.speedup,
                  entrant.bestEvaluation.speedup);
    EXPECT_GT(outcome.totalEvaluated, 0u);

    // Warm rerun from the same store directory: a fresh tuner (new
    // baseline, same inputs → same fingerprint) re-executes nothing
    // during search — every query is a memo hit. (Measured speedups
    // carry timing noise, so the warm *winner* may legitimately
    // differ; the trajectory-equality property is pinned down by the
    // deterministic search-layer tests above.)
    core::TunerOptions warmOptions = fastOptions();
    warmOptions.memoStore = std::make_shared<MemoStore>(dir);
    core::BenchmarkTuner warmTuner(*bench, warmOptions);
    core::PortfolioOutcome warm = warmTuner.tunePortfolio(
        {"CB", "DD", "GA"}, PortfolioMode::Best, 2);
    EXPECT_EQ(warm.totalEvaluated, 0u);
    EXPECT_GT(warm.totalMemoHits, 0u);
}

TEST(Portfolio, VariableLevelWinnerReducesToClusterConfig)
{
    auto bench =
        benchmarks::BenchmarkRegistry::instance().create("hydro-1d");
    core::BenchmarkTuner tuner(*bench, fastOptions());
    // CM searches at variable granularity; the outcome must still be
    // a cluster-level configuration.
    core::PortfolioOutcome outcome =
        tuner.tunePortfolio({"CM"}, PortfolioMode::Best, 1);
    EXPECT_EQ(outcome.winnerCode, "CM");
    EXPECT_EQ(outcome.clusterConfig.size(), tuner.clusterCount());
}

} // namespace
