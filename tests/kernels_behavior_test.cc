/**
 * @file
 * Numerical-behaviour tests for individual benchmarks: the
 * precision-sensitivity structure each program was designed around.
 * All assertions compare exact floating-point results (no timing).
 */

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "benchmarks/benchmark.h"
#include "benchmarks/registry.h"
#include "verify/metrics.h"

namespace {

using namespace hpcmixp;
using benchmarks::Benchmark;
using benchmarks::PrecisionMap;
using runtime::Precision;

std::unique_ptr<Benchmark>
make(const std::string& name)
{
    return benchmarks::BenchmarkRegistry::instance().create(name);
}

double
maeBetween(const std::vector<double>& a, const std::vector<double>& b)
{
    verify::MeanAbsoluteError mae;
    return mae.compute(a, b);
}

/** Loss of lowering exactly the given knobs. */
double
lossOf(const Benchmark& bench, std::initializer_list<const char*> knobs)
{
    auto ref = bench.run(PrecisionMap{});
    PrecisionMap pm;
    for (const char* k : knobs)
        pm.set(k, Precision::Float32);
    auto low = bench.run(pm);
    return maeBetween(ref.values, low.values);
}

TEST(KernelBehavior, InnerprodAccumulatorDominatesError)
{
    auto bench = make("innerprod");
    double arraysOnly = lossOf(*bench, {"x", "z"});
    double accumulatorOnly = lossOf(*bench, {"q"});
    EXPECT_GT(accumulatorOnly, arraysOnly)
        << "accumulating 100k products in binary32 must hurt more "
           "than rounding the inputs";
}

TEST(KernelBehavior, TridiagContractionBoundsError)
{
    auto bench = make("tridiag");
    double loss = lossOf(*bench, {"x", "y", "z"});
    EXPECT_TRUE(std::isfinite(loss));
    // |z| < 0.05 makes the recurrence strongly contracting.
    EXPECT_LT(loss, 1e-7);
}

TEST(KernelBehavior, LoweringASingleInputYieldsPartialError)
{
    auto bench = make("hydro-1d");
    double one = lossOf(*bench, {"y"});
    double all = lossOf(*bench, {"x", "y", "z", "coef"});
    EXPECT_GT(one, 0.0);
    EXPECT_GT(all, one * 0.5)
        << "full conversion cannot be drastically cleaner than a "
           "partial one";
}

TEST(KernelBehavior, PlanckianOutputsBothSeries)
{
    auto bench = make("planckian");
    auto out = bench->run(PrecisionMap{});
    EXPECT_EQ(out.values.size() % 2, 0u);
    // w values (first half) are finite and non-negative.
    for (std::size_t i = 0; i < out.values.size() / 2; ++i) {
        ASSERT_TRUE(std::isfinite(out.values[i]));
        ASSERT_GE(out.values[i], 0.0);
    }
}

TEST(KernelBehavior, EosCoefficientOnlyLoweringIsMild)
{
    auto bench = make("eos");
    double coefOnly = lossOf(*bench, {"coef"});
    double all = lossOf(*bench, {"x", "u", "yz", "coef"});
    EXPECT_TRUE(std::isfinite(coefOnly));
    EXPECT_LE(coefOnly, all * 10 + 1e-12);
}

TEST(AppBehavior, SradCoefficientClusterIsSafeImageIsNot)
{
    auto bench = make("srad");
    double coefLoss = lossOf(*bench, {"coef"});
    EXPECT_TRUE(std::isfinite(coefLoss));
    EXPECT_LT(coefLoss, 1e-3);

    double imageLoss = lossOf(*bench, {"image"});
    EXPECT_TRUE(std::isnan(imageLoss))
        << "exp() of the raw image must overflow binary32";
}

TEST(AppBehavior, CfdStaysStableUnderFullConversion)
{
    auto bench = make("cfd");
    double loss = lossOf(
        *bench, {"variables", "fluxes", "step_factors", "normals"});
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_LT(loss, 1e-5);
}

TEST(AppBehavior, CfdNormalsOnlyLoweringIsMilder)
{
    auto bench = make("cfd");
    double normalsOnly = lossOf(*bench, {"normals"});
    double all = lossOf(
        *bench, {"variables", "fluxes", "step_factors", "normals"});
    EXPECT_LE(normalsOnly, all + 1e-15);
}

TEST(AppBehavior, KmeansFeaturesOnlyKeepsAssignments)
{
    auto bench = make("kmeans");
    auto ref = bench->run(PrecisionMap{});
    PrecisionMap pm;
    pm.set("features", Precision::Float32);
    auto low = bench->run(pm);
    verify::MisclassificationRate mcr;
    EXPECT_EQ(mcr.compute(ref.values, low.values), 0.0);
}

TEST(AppBehavior, BlackscholesOutputOnlyLoweringIsPureRounding)
{
    auto bench = make("blackscholes");
    double pricesOnly = lossOf(*bench, {"prices"});
    // One rounding of values <= ~1.2: bounded by half an ulp step.
    EXPECT_GT(pricesOnly, 0.0);
    EXPECT_LT(pricesOnly, 1e-7);
    double formula = lossOf(*bench, {"locals", "cndf"});
    EXPECT_GT(formula, pricesOnly)
        << "computing the formula in binary32 must lose more than "
           "rounding its binary64 result once";
}

TEST(AppBehavior, HpccgScalarAccumulatorLoweringIsMeasurable)
{
    auto bench = make("hpccg");
    double scalarsOnly = lossOf(*bench, {"scalars"});
    EXPECT_TRUE(std::isfinite(scalarsOnly));
    EXPECT_GT(scalarsOnly, 0.0);
}

TEST(AppBehavior, LavamdChargeOnlyLoweringIsMilderThanPositions)
{
    auto bench = make("lavamd");
    double chargeOnly = lossOf(*bench, {"qv"});
    double positions = lossOf(*bench, {"rv"});
    EXPECT_GT(positions, 0.0);
    EXPECT_GT(chargeOnly, 0.0);
    // Positions feed the exponential; charges only scale linearly.
    EXPECT_LT(chargeOnly, positions * 50);
}

TEST(AppBehavior, HotspotPowerOnlyLoweringIsTiny)
{
    auto bench = make("hotspot");
    double powerOnly = lossOf(*bench, {"power"});
    double tempToo = lossOf(*bench, {"temp", "power"});
    EXPECT_TRUE(std::isfinite(powerOnly));
    EXPECT_LT(powerOnly, 1e-6);
    EXPECT_TRUE(std::isfinite(tempToo));
}

} // namespace
