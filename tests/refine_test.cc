/**
 * @file
 * Tests for iterative-refinement recovery (--refine) and the ladder
 * compatibility of checkpoints: a half-precision configuration that
 * fails the quality gate unrefined must pass with refinement on, a
 * diverging refinement must surface as RuntimeFail (never a hang),
 * and a two-tier checkpoint must be recoverably rejected by a
 * three-rung campaign.
 */

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "benchmarks/benchmark.h"
#include "benchmarks/registry.h"
#include "core/tuner.h"
#include "runtime/ladder.h"
#include "search/context.h"
#include "support/logging.h"

namespace {

using namespace hpcmixp;
using core::BenchmarkTuner;
using core::TunerOptions;
using search::Config;
using search::EvalStatus;

std::unique_ptr<benchmarks::Benchmark>
make(const std::string& name)
{
    return benchmarks::BenchmarkRegistry::instance().create(name);
}

TunerOptions
ladderOptions(const std::string& spec, bool refine,
              double threshold = 1e-8)
{
    TunerOptions opt;
    opt.threshold = threshold;
    opt.searchReps = 1;
    opt.finalReps = 3;
    opt.budget = {200, 0.0};
    opt.ladder = runtime::PrecisionLadder::parse(spec);
    opt.refine = refine;
    return opt;
}

/** All clusters at ladder level @p level. */
Config
uniformConfig(const BenchmarkTuner& tuner, std::uint8_t level)
{
    Config cfg(tuner.clusterCount());
    for (std::size_t c = 0; c < tuner.clusterCount(); ++c)
        cfg.setLevel(c, level);
    return cfg;
}

/**
 * The headline recovery scenario: tridiag with every cluster at the
 * half rung fails a 1e-8 quality gate unrefined, and passes it once
 * iterative refinement corrects the low-precision solution against
 * the double-precision residual.
 */
TEST(Refine, FailingHalfConfigPassesWithRefinementOn)
{
    auto plainBench = make("tridiag");
    BenchmarkTuner plain(*plainBench,
                         ladderOptions("double,float,half", false));
    auto unrefined =
        plain.evaluateClusterConfig(uniformConfig(plain, 2), 1);
    ASSERT_EQ(unrefined.status, EvalStatus::QualityFail)
        << "half tridiag must fail 1e-8 unrefined, or this test "
           "guards nothing (loss "
        << unrefined.qualityLoss << ")";

    auto refinedBench = make("tridiag");
    BenchmarkTuner refined(*refinedBench,
                           ladderOptions("double,float,half", true));
    auto eval =
        refined.evaluateClusterConfig(uniformConfig(refined, 2), 1);
    EXPECT_EQ(eval.status, EvalStatus::Pass);
    EXPECT_LT(eval.qualityLoss, 1e-8);
}

/** The bfloat16 rung recovers the same way. */
TEST(Refine, FailingBf16ConfigPassesWithRefinementOn)
{
    auto plainBench = make("tridiag");
    BenchmarkTuner plain(*plainBench,
                         ladderOptions("double,float,bf16", false));
    auto unrefined =
        plain.evaluateClusterConfig(uniformConfig(plain, 2), 1);
    ASSERT_EQ(unrefined.status, EvalStatus::QualityFail);

    auto refinedBench = make("tridiag");
    BenchmarkTuner refined(*refinedBench,
                           ladderOptions("double,float,bf16", true));
    auto eval =
        refined.evaluateClusterConfig(uniformConfig(refined, 2), 1);
    EXPECT_EQ(eval.status, EvalStatus::Pass);
    EXPECT_LT(eval.qualityLoss, 1e-8);
}

/** The baseline configuration is never routed through refinement:
 *  with --refine=on it still passes with exactly zero loss. */
TEST(Refine, BaselineIsNeverRefined)
{
    auto bench = make("tridiag");
    BenchmarkTuner tuner(*bench,
                         ladderOptions("double,float,half", true));
    auto eval =
        tuner.evaluateClusterConfig(Config(tuner.clusterCount()), 1);
    EXPECT_EQ(eval.status, EvalStatus::Pass);
    EXPECT_DOUBLE_EQ(eval.qualityLoss, 0.0);
}

/**
 * Divergence at the benchmark layer: an unreachable target residual
 * must throw RefineDiverged within the iteration cap — a bounded
 * loop, never a hang.
 */
TEST(Refine, UnreachableTargetThrowsRefineDiverged)
{
    auto bench = make("tridiag");
    ASSERT_TRUE(bench->supportsRefinement());

    benchmarks::PrecisionMap pm;
    pm.set("x", runtime::Precision::Float16);
    pm.set("y", runtime::Precision::Float16);
    pm.set("z", runtime::Precision::Float16);
    benchmarks::RunPlan plan = bench->prepare(pm);
    runtime::RunWorkspace ws;

    benchmarks::RefineControl control;
    control.targetResidual = 0.0; // exact zero: unreachable
    control.maxIterations = 8;
    EXPECT_THROW(bench->executeRefined(plan, ws, control),
                 benchmarks::RefineDiverged);
}

/** A benchmark without a refinement hook reports so, and the default
 *  executeRefined refuses to pretend otherwise. */
TEST(Refine, KernelsWithoutResidualHookDeclineRefinement)
{
    auto bench = make("hydro-1d");
    EXPECT_FALSE(bench->supportsRefinement());

    benchmarks::PrecisionMap pm;
    benchmarks::RunPlan plan = bench->prepare(pm);
    runtime::RunWorkspace ws;
    EXPECT_THROW(
        bench->executeRefined(plan, ws, benchmarks::RefineControl{}),
        hpcmixp::support::FatalError);
}

/**
 * Divergence at the tuner layer: an impossible quality threshold
 * drives the target residual below anything the correction loop can
 * reach; the RefineDiverged must land in the tuner's evaluation as
 * an ordinary RuntimeFail (memoizable, retryable), not an escape.
 */
TEST(Refine, TunerMapsDivergenceToRuntimeFail)
{
    auto bench = make("tridiag");
    BenchmarkTuner tuner(
        *bench, ladderOptions("double,float,half", true, 1e-300));
    auto eval =
        tuner.evaluateClusterConfig(uniformConfig(tuner, 2), 1);
    EXPECT_EQ(eval.status, EvalStatus::RuntimeFail);
    EXPECT_TRUE(std::isnan(eval.qualityLoss));
}

/**
 * The ladder (and the refinement flag) are part of the evaluation-
 * function identity: fingerprints taken under different ladders must
 * differ, and the default two-tier fingerprint must keep the exact
 * historical spelling so pre-ladder memo segments stay addressable.
 */
TEST(Refine, FingerprintCarriesLadderAndRefinementMarker)
{
    auto twoTier = make("tridiag");
    BenchmarkTuner two(*twoTier,
                       ladderOptions("double,float", false));
    auto threeRung = make("tridiag");
    BenchmarkTuner three(*threeRung,
                         ladderOptions("double,float,half", false));
    auto refined = make("tridiag");
    BenchmarkTuner ir(*refined,
                      ladderOptions("double,float,half", true));

    using search::Granularity;
    EXPECT_EQ(two.fingerprint(Granularity::Cluster).ladder,
              "f64:f32");
    EXPECT_EQ(three.fingerprint(Granularity::Cluster).ladder,
              "f64:f32:f16");
    EXPECT_EQ(ir.fingerprint(Granularity::Cluster).ladder,
              "f64:f32:f16+ir");
}

/**
 * A checkpoint written by a two-tier campaign presented to a
 * three-rung campaign of the same benchmark must be rejected with
 * the *recoverable* CheckpointMismatch (the driver then restarts the
 * search from scratch), never imported and never a crash.
 */
TEST(Refine, TwoTierCheckpointIsRecoverablyRejectedByThreeRung)
{
    auto sourceBench = make("tridiag");
    BenchmarkTuner source(*sourceBench,
                          ladderOptions("double,float", false));
    search::SearchContext sourceCtx(source.searchClusterProblem(),
                                    {100, 0.0});
    sourceCtx.setFingerprint(
        source.fingerprint(search::Granularity::Cluster));
    sourceCtx.evaluate(
        Config::withLowered(source.clusterCount(), {0}));
    auto checkpoint = sourceCtx.exportCache();
    ASSERT_TRUE(checkpoint.has("fingerprint"));

    auto targetBench = make("tridiag");
    BenchmarkTuner target(*targetBench,
                          ladderOptions("double,float,half", false));
    search::SearchContext targetCtx(target.searchClusterProblem(),
                                    {100, 0.0});
    targetCtx.setFingerprint(
        target.fingerprint(search::Granularity::Cluster));
    EXPECT_THROW(targetCtx.importCache(checkpoint),
                 search::CheckpointMismatch);
    EXPECT_FALSE(targetCtx.isCached(
        Config::withLowered(target.clusterCount(), {0})));

    // The same checkpoint is still welcome in a two-tier context.
    search::SearchContext backCtx(source.searchClusterProblem(),
                                  {100, 0.0});
    backCtx.setFingerprint(
        source.fingerprint(search::Granularity::Cluster));
    backCtx.importCache(checkpoint);
    EXPECT_TRUE(backCtx.isCached(
        Config::withLowered(source.clusterCount(), {0})));
}

} // namespace
