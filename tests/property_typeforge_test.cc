/**
 * @file
 * Property-based tests for the type-dependence analysis: randomized
 * program models validated against a brute-force transitive-closure
 * reference implementation.
 */

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "model/program_model.h"
#include "support/rng.h"
#include "typeforge/clustering.h"

namespace {

using namespace hpcmixp::model;
using namespace hpcmixp::typeforge;
using hpcmixp::support::Pcg32;

struct RandomModel {
    ProgramModel program{"random"};
    std::vector<VarId> reals;
};

RandomModel
buildRandom(std::uint64_t seed)
{
    Pcg32 rng(seed);
    RandomModel rm;
    ModuleId mod = rm.program.addModule("random.c");
    std::size_t functions = 1 + rng.nextBounded(3);
    std::vector<FunctionId> fns;
    for (std::size_t f = 0; f < functions; ++f)
        fns.push_back(
            rm.program.addFunction(mod, "f" + std::to_string(f)));

    std::size_t vars = 4 + rng.nextBounded(20);
    for (std::size_t v = 0; v < vars; ++v) {
        TypeInfo type;
        double roll = rng.nextDouble();
        if (roll < 0.5)
            type = realPointer();
        else if (roll < 0.85)
            type = realScalar();
        else
            type = integerScalar();
        FunctionId fn = fns[rng.nextBounded(
            static_cast<std::uint32_t>(fns.size()))];
        VarId id = rm.program.addVariable(
            fn, "v" + std::to_string(v), type);
        if (type.base == BaseType::Real)
            rm.reals.push_back(id);
    }

    std::size_t edges = rng.nextBounded(30);
    std::size_t total = rm.program.variables().size();
    for (std::size_t e = 0; e < edges; ++e) {
        auto a = static_cast<VarId>(rng.nextBounded(
            static_cast<std::uint32_t>(total)));
        auto b = static_cast<VarId>(rng.nextBounded(
            static_cast<std::uint32_t>(total)));
        switch (rng.nextBounded(4)) {
          case 0:
            rm.program.addAssign(a, b);
            break;
          case 1:
            rm.program.addCallBind(a, b);
            break;
          case 2:
            rm.program.addAddressOf(a, b);
            break;
          default:
            rm.program.addSameType(a, b);
            break;
        }
    }
    return rm;
}

/** O(V^3) reference: repeated relaxation over the unification edges. */
std::vector<std::set<VarId>>
referenceClusters(const ProgramModel& program)
{
    auto reals = program.realVariables();
    std::map<VarId, std::size_t> index;
    for (std::size_t i = 0; i < reals.size(); ++i)
        index[reals[i]] = i;

    // Each variable starts in its own group; merge until fixpoint.
    std::vector<std::size_t> group(reals.size());
    for (std::size_t i = 0; i < group.size(); ++i)
        group[i] = i;

    auto unifies = [&](const Dependence& dep) {
        const auto& a = program.variable(dep.a);
        const auto& b = program.variable(dep.b);
        if (a.type.base != BaseType::Real ||
            b.type.base != BaseType::Real)
            return false;
        if (dep.kind == DependenceKind::AddressOf ||
            dep.kind == DependenceKind::SameType)
            return true;
        return a.type.isPointer() && b.type.isPointer();
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto& dep : program.dependences()) {
            if (!unifies(dep))
                continue;
            std::size_t ga = group[index.at(dep.a)];
            std::size_t gb = group[index.at(dep.b)];
            if (ga == gb)
                continue;
            for (auto& g : group)
                if (g == gb)
                    g = ga;
            changed = true;
        }
    }

    std::map<std::size_t, std::set<VarId>> bucket;
    for (std::size_t i = 0; i < reals.size(); ++i)
        bucket[group[i]].insert(reals[i]);
    std::vector<std::set<VarId>> out;
    for (auto& [g, members] : bucket)
        out.push_back(std::move(members));
    return out;
}

class TypeforgeProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TypeforgeProperty, MatchesBruteForceReference)
{
    RandomModel rm = buildRandom(GetParam());
    ClusterSet set = analyze(rm.program);

    auto reference = referenceClusters(rm.program);
    std::set<std::set<VarId>> expected(reference.begin(),
                                       reference.end());
    std::set<std::set<VarId>> got;
    for (std::size_t c = 0; c < set.clusterCount(); ++c)
        got.insert(std::set<VarId>(set.members(c).begin(),
                                   set.members(c).end()));
    EXPECT_EQ(got, expected);
}

TEST_P(TypeforgeProperty, ClustersPartitionTheRealVariables)
{
    RandomModel rm = buildRandom(GetParam());
    ClusterSet set = analyze(rm.program);

    std::set<VarId> covered;
    for (std::size_t c = 0; c < set.clusterCount(); ++c) {
        for (VarId v : set.members(c)) {
            EXPECT_TRUE(covered.insert(v).second)
                << "variable " << v << " in two clusters";
            EXPECT_EQ(set.clusterOf(v), c);
        }
    }
    std::set<VarId> reals(rm.reals.begin(), rm.reals.end());
    EXPECT_EQ(covered, reals);
}

TEST_P(TypeforgeProperty, AnalysisIsDeterministic)
{
    RandomModel rm = buildRandom(GetParam());
    ClusterSet a = analyze(rm.program);
    ClusterSet b = analyze(rm.program);
    ASSERT_EQ(a.clusterCount(), b.clusterCount());
    for (std::size_t c = 0; c < a.clusterCount(); ++c)
        EXPECT_EQ(a.members(c), b.members(c));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TypeforgeProperty,
                         ::testing::Values(7u, 17u, 27u, 37u, 47u,
                                           57u, 67u, 77u, 87u, 97u));

} // namespace
