/**
 * @file
 * Tests for the mini-C Typeforge frontend: lexing, parsing, dependence
 * extraction, and the end-to-end Listing-1 reproduction from source
 * text.
 */

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "support/logging.h"
#include "typeforge/clustering.h"
#include "typeforge/frontend/parser.h"
#include "typeforge/frontend/token.h"
#include "typeforge/report.h"

namespace {

using namespace hpcmixp;
using namespace hpcmixp::typeforge;
using namespace hpcmixp::typeforge::frontend;

// ---- lexer ------------------------------------------------------------

TEST(Lexer, TokenizesIdentifiersNumbersPuncts)
{
    auto tokens = lex("foo bar42 3.5e-2 += ; (");
    ASSERT_EQ(tokens.size(), 7u); // incl End
    EXPECT_EQ(tokens[0].kind, TokenKind::Identifier);
    EXPECT_EQ(tokens[0].text, "foo");
    EXPECT_EQ(tokens[1].text, "bar42");
    EXPECT_EQ(tokens[2].kind, TokenKind::Number);
    EXPECT_EQ(tokens[2].text, "3.5e-2");
    EXPECT_TRUE(tokens[3].isPunct("+="));
    EXPECT_TRUE(tokens[4].isPunct(";"));
    EXPECT_TRUE(tokens[5].isPunct("("));
    EXPECT_EQ(tokens[6].kind, TokenKind::End);
}

TEST(Lexer, SkipsCommentsAndPreprocessor)
{
    auto tokens = lex("#include <stdio.h>\n"
                      "// line comment\n"
                      "a /* block\n comment */ b\n");
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[0].text, "a");
    EXPECT_EQ(tokens[1].text, "b");
    EXPECT_EQ(tokens[1].line, 4);
}

TEST(Lexer, TracksLineNumbers)
{
    auto tokens = lex("a\nb\n\nc");
    EXPECT_EQ(tokens[0].line, 1);
    EXPECT_EQ(tokens[1].line, 2);
    EXPECT_EQ(tokens[2].line, 4);
}

TEST(Lexer, StringAndCharLiterals)
{
    auto tokens = lex("\"hello \\\" world\" 'x'");
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[0].kind, TokenKind::String);
    EXPECT_EQ(tokens[1].kind, TokenKind::String);
}

TEST(Lexer, ErrorsAreFatal)
{
    EXPECT_THROW(lex("/* unterminated"), support::FatalError);
    EXPECT_THROW(lex("\"unterminated"), support::FatalError);
    EXPECT_THROW(lex("a $ b"), support::FatalError);
}

// ---- parser: Listing 1 -------------------------------------------------

const char* kListing1 = R"(
void vect_mult(int n, double *input, double *inout, double ratio) {
    double res;
    for (int i = 0; i < n; i++) {
        res += ratio * input[i];
    }
    *inout += res;
}

void foo() {
    double arr[10];
    init(10, arr);
    double val = init_scalar();
    double scale = init_scalar();
    vect_mult(10, arr, &val, scale);
}
)";

TEST(Frontend, Listing1PartitionsExactlyAsThePaper)
{
    model::ProgramModel m = parseProgram(kListing1, "listing1.c");
    ClusterSet set = analyze(m);

    EXPECT_EQ(set.variableCount(), 7u);
    EXPECT_EQ(set.clusterCount(), 5u);

    auto names = clusterNames(m, set);
    std::set<std::set<std::string>> got;
    for (const auto& cluster : names)
        got.insert(
            std::set<std::string>(cluster.begin(), cluster.end()));
    std::set<std::set<std::string>> expected{
        {"foo::arr", "vect_mult::input"},
        {"foo::val", "vect_mult::inout"},
        {"foo::scale"},
        {"vect_mult::ratio"},
        {"vect_mult::res"}};
    EXPECT_EQ(got, expected);
}

TEST(Frontend, Listing1Structure)
{
    model::ProgramModel m = parseProgram(kListing1, "listing1.c");
    ASSERT_EQ(m.functions().size(), 2u);
    EXPECT_EQ(m.functions()[0].name, "vect_mult");
    EXPECT_EQ(m.functions()[1].name, "foo");
    // n and i are integers: not part of the tuning space.
    EXPECT_EQ(m.realVariables().size(), 7u);
}

// ---- parser: Listing 2 (runtime-library motivation code) ---------------

const char* kListing2 = R"(
void performComputation(double *data, int elements);

void foo(double **ptr, int elements) {
    double *fd = fopen("input.bin", "rb");
    int allocationSize = sizeof(double) * elements;
    *ptr = (double*) malloc(allocationSize);
    fread(*ptr, sizeof(double), elements, fd);
    fclose(fd);
    performComputation(*ptr, elements);
    fwrite(*ptr, sizeof(double), elements, fd);
    fclose(fd);
    return;
}
)";

TEST(Frontend, Listing2ParsesWithExternalCalls)
{
    model::ProgramModel m = parseProgram(kListing2, "listing2.c");
    // ptr, fd and performComputation's data parameter are Real.
    EXPECT_GE(m.realVariables().size(), 3u);
    // fopen/malloc/fread are external: no constraints recorded from
    // them, and the parse must simply succeed.
    ClusterSet set = analyze(m);
    EXPECT_GE(set.clusterCount(), 2u);
}

// ---- dependence extraction specifics ------------------------------------

TEST(Frontend, PointerAssignmentUnifies)
{
    auto m = parseProgram("double *pool;\n"
                          "double *x;\n"
                          "double *y;\n"
                          "void setup(int n) {\n"
                          "    x = pool;\n"
                          "    y = pool + n;\n"
                          "}\n",
                          "t.c");
    ClusterSet set = analyze(m);
    EXPECT_EQ(set.clusterCount(), 1u);
}

TEST(Frontend, ScalarAssignmentDoesNotUnify)
{
    auto m = parseProgram("void f() {\n"
                          "    double a;\n"
                          "    double b = 1.0;\n"
                          "    a = b;\n"
                          "}\n",
                          "t.c");
    ClusterSet set = analyze(m);
    EXPECT_EQ(set.clusterCount(), 2u);
}

TEST(Frontend, ReturnValueFlowUnifiesPointers)
{
    auto m = parseProgram("double *buffer;\n"
                          "double* get_buffer() { return buffer; }\n"
                          "void f() {\n"
                          "    double *local = get_buffer();\n"
                          "}\n",
                          "t.c");
    ClusterSet set = analyze(m);
    // buffer and local unify through the return edge.
    EXPECT_EQ(set.clusterOf(m.findVariable("buffer")),
              set.clusterOf(m.findVariable("local")));
}

TEST(Frontend, AddressOfLocalIntoPointerVariable)
{
    auto m = parseProgram("void f() {\n"
                          "    double v;\n"
                          "    double *p = &v;\n"
                          "}\n",
                          "t.c");
    ClusterSet set = analyze(m);
    EXPECT_EQ(set.clusterCount(), 1u);
}

TEST(Frontend, CallBindThroughPrototype)
{
    auto m = parseProgram("void kernel(double *data);\n"
                          "double *field;\n"
                          "void drive() { kernel(field); }\n",
                          "t.c");
    ClusterSet set = analyze(m);
    EXPECT_EQ(set.clusterOf(m.findVariable("field")),
              set.clusterOf(m.findVariable("data")));
}

TEST(Frontend, IntegerVariablesAreNotTunable)
{
    auto m = parseProgram("int counter;\n"
                          "unsigned long big;\n"
                          "double real_one;\n",
                          "t.c");
    EXPECT_EQ(m.realVariables().size(), 1u);
}

TEST(Frontend, ControlFlowIsConsumed)
{
    auto m = parseProgram(
        "void f(int n) {\n"
        "    double acc = 0.0;\n"
        "    for (int i = 0; i < n; i++) {\n"
        "        if (i % 2 == 0) { acc += 1.0; } else acc -= 1.0;\n"
        "    }\n"
        "    while (n > 0) { n--; }\n"
        "    do { n++; } while (n < 3);\n"
        "    int k = n > 2 ? 1 : 0;\n"
        "}\n",
        "t.c");
    EXPECT_EQ(m.realVariables().size(), 1u);
}

TEST(Frontend, PointerArithmeticKeepsRoot)
{
    auto m = parseProgram("double *base;\n"
                          "void f(int off) {\n"
                          "    double *view = base + 2 * off;\n"
                          "}\n",
                          "t.c");
    ClusterSet set = analyze(m);
    EXPECT_EQ(set.clusterCount(), 1u);
}

TEST(Frontend, ElementAccessIsScalarLevel)
{
    auto m = parseProgram("double *a;\n"
                          "double *b;\n"
                          "void f(int i) { a[i] = b[i]; }\n",
                          "t.c");
    ClusterSet set = analyze(m);
    // Element copy does not force the arrays into one cluster.
    EXPECT_EQ(set.clusterCount(), 2u);
}

TEST(Frontend, AggregateInitializersAndSizeof)
{
    auto m = parseProgram(
        "double coef[3] = {0.1, 0.2, 0.3};\n"
        "void f() { int s = sizeof(double) + sizeof coef; }\n",
        "t.c");
    EXPECT_EQ(m.realVariables().size(), 1u);
}

TEST(Frontend, StaticGlobalsAndMultipleDeclarators)
{
    auto m = parseProgram("static double x[100], *y, z;\n", "t.c");
    EXPECT_EQ(m.realVariables().size(), 3u);
    EXPECT_TRUE(
        m.variable(m.findVariable("x")).type.isPointer());
    EXPECT_TRUE(
        m.variable(m.findVariable("y")).type.isPointer());
    EXPECT_FALSE(
        m.variable(m.findVariable("z")).type.isPointer());
}

TEST(Frontend, ShadowingUsesInnermostScope)
{
    auto m = parseProgram("double g;\n"
                          "void f() {\n"
                          "    double *g;\n"
                          "    double *h = g;\n" // binds to local g
                          "}\n",
                          "t.c");
    ClusterSet set = analyze(m);
    auto localG = m.findVariable("f", "g");
    auto h = m.findVariable("f", "h");
    EXPECT_EQ(set.clusterOf(localG), set.clusterOf(h));
    // Global g stays alone.
    EXPECT_EQ(set.clusterCount(), 2u);
}

TEST(Frontend, SyntaxErrorsAreFatalWithLineInfo)
{
    try {
        parseProgram("void f( {\n}", "bad.c");
        FAIL() << "expected FatalError";
    } catch (const support::FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("line"),
                  std::string::npos);
    }
    EXPECT_THROW(parseProgram("double x", "bad.c"),
                 support::FatalError);
    EXPECT_THROW(parseProgram("void f() { return 1.0 }\n", "bad.c"),
                 support::FatalError);
    EXPECT_THROW(parseProgramFile("/no/such/file.c"),
                 support::FatalError);
}

TEST(Frontend, FrontendModelMatchesBuilderModelOnListing1)
{
    // The frontend-derived model and a hand-built model must agree on
    // the partitioning (cross-validation of both construction paths).
    model::ProgramModel parsed = parseProgram(kListing1, "x.c");

    model::ProgramModel built("x.c");
    auto mod = built.addModule("x.c");
    auto vm = built.addFunction(mod, "vect_mult");
    auto input = built.addParameter(vm, "input", model::realPointer());
    auto inout = built.addParameter(vm, "inout", model::realPointer());
    auto ratio = built.addParameter(vm, "ratio", model::realScalar());
    auto res = built.addVariable(vm, "res", model::realScalar());
    auto foo = built.addFunction(mod, "foo");
    auto arr = built.addVariable(foo, "arr", model::realPointer());
    auto val = built.addVariable(foo, "val", model::realScalar());
    built.addVariable(foo, "scale", model::realScalar());
    built.addCallBind(arr, input);
    built.addAddressOf(val, inout);
    built.addAssign(res, ratio);

    auto a = analyze(parsed);
    auto b = analyze(built);
    EXPECT_EQ(a.clusterCount(), b.clusterCount());
    EXPECT_EQ(a.variableCount(), b.variableCount());
}

} // namespace
