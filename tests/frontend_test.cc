/**
 * @file
 * Tests for the mini-C Typeforge frontend: lexing, parsing, dependence
 * extraction, and the end-to-end Listing-1 reproduction from source
 * text.
 */

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "support/logging.h"
#include "typeforge/clustering.h"
#include "typeforge/frontend/parser.h"
#include "typeforge/frontend/token.h"
#include "typeforge/report.h"

namespace {

using namespace hpcmixp;
using namespace hpcmixp::typeforge;
using namespace hpcmixp::typeforge::frontend;

/** Parse source that must be well-formed; returns just the model. */
model::ProgramModel
parseOk(const std::string& source, const std::string& name)
{
    ParseResult result = parseProgram(source, name);
    EXPECT_TRUE(result.ok())
        << "unexpected diagnostic: "
        << (result.diagnostics.empty()
                ? std::string("none")
                : result.diagnostics.front().message);
    return std::move(result.model);
}

// ---- lexer ------------------------------------------------------------

TEST(Lexer, TokenizesIdentifiersNumbersPuncts)
{
    auto tokens = lex("foo bar42 3.5e-2 += ; (");
    ASSERT_EQ(tokens.size(), 7u); // incl End
    EXPECT_EQ(tokens[0].kind, TokenKind::Identifier);
    EXPECT_EQ(tokens[0].text, "foo");
    EXPECT_EQ(tokens[1].text, "bar42");
    EXPECT_EQ(tokens[2].kind, TokenKind::Number);
    EXPECT_EQ(tokens[2].text, "3.5e-2");
    EXPECT_TRUE(tokens[3].isPunct("+="));
    EXPECT_TRUE(tokens[4].isPunct(";"));
    EXPECT_TRUE(tokens[5].isPunct("("));
    EXPECT_EQ(tokens[6].kind, TokenKind::End);
}

TEST(Lexer, SkipsCommentsAndPreprocessor)
{
    auto tokens = lex("#include <stdio.h>\n"
                      "// line comment\n"
                      "a /* block\n comment */ b\n");
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[0].text, "a");
    EXPECT_EQ(tokens[1].text, "b");
    EXPECT_EQ(tokens[1].line, 4);
}

TEST(Lexer, TracksLineNumbers)
{
    auto tokens = lex("a\nb\n\nc");
    EXPECT_EQ(tokens[0].line, 1);
    EXPECT_EQ(tokens[1].line, 2);
    EXPECT_EQ(tokens[2].line, 4);
}

TEST(Lexer, StringAndCharLiterals)
{
    auto tokens = lex("\"hello \\\" world\" 'x'");
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[0].kind, TokenKind::String);
    EXPECT_EQ(tokens[1].kind, TokenKind::String);
}

TEST(Lexer, ErrorsAreFatal)
{
    EXPECT_THROW(lex("/* unterminated"), support::FatalError);
    EXPECT_THROW(lex("\"unterminated"), support::FatalError);
    EXPECT_THROW(lex("a $ b"), support::FatalError);
}

// ---- parser: Listing 1 -------------------------------------------------

const char* kListing1 = R"(
void vect_mult(int n, double *input, double *inout, double ratio) {
    double res;
    for (int i = 0; i < n; i++) {
        res += ratio * input[i];
    }
    *inout += res;
}

void foo() {
    double arr[10];
    init(10, arr);
    double val = init_scalar();
    double scale = init_scalar();
    vect_mult(10, arr, &val, scale);
}
)";

TEST(Frontend, Listing1PartitionsExactlyAsThePaper)
{
    model::ProgramModel m = parseOk(kListing1, "listing1.c");
    ClusterSet set = analyze(m);

    EXPECT_EQ(set.variableCount(), 7u);
    EXPECT_EQ(set.clusterCount(), 5u);

    auto names = clusterNames(m, set);
    std::set<std::set<std::string>> got;
    for (const auto& cluster : names)
        got.insert(
            std::set<std::string>(cluster.begin(), cluster.end()));
    std::set<std::set<std::string>> expected{
        {"foo::arr", "vect_mult::input"},
        {"foo::val", "vect_mult::inout"},
        {"foo::scale"},
        {"vect_mult::ratio"},
        {"vect_mult::res"}};
    EXPECT_EQ(got, expected);
}

TEST(Frontend, Listing1Structure)
{
    model::ProgramModel m = parseOk(kListing1, "listing1.c");
    ASSERT_EQ(m.functions().size(), 2u);
    EXPECT_EQ(m.functions()[0].name, "vect_mult");
    EXPECT_EQ(m.functions()[1].name, "foo");
    // n and i are integers: not part of the tuning space.
    EXPECT_EQ(m.realVariables().size(), 7u);
}

// ---- parser: Listing 2 (runtime-library motivation code) ---------------

const char* kListing2 = R"(
void performComputation(double *data, int elements);

void foo(double **ptr, int elements) {
    double *fd = fopen("input.bin", "rb");
    int allocationSize = sizeof(double) * elements;
    *ptr = (double*) malloc(allocationSize);
    fread(*ptr, sizeof(double), elements, fd);
    fclose(fd);
    performComputation(*ptr, elements);
    fwrite(*ptr, sizeof(double), elements, fd);
    fclose(fd);
    return;
}
)";

TEST(Frontend, Listing2ParsesWithExternalCalls)
{
    model::ProgramModel m = parseOk(kListing2, "listing2.c");
    // ptr, fd and performComputation's data parameter are Real.
    EXPECT_GE(m.realVariables().size(), 3u);
    // fopen/malloc/fread are external: no constraints recorded from
    // them, and the parse must simply succeed.
    ClusterSet set = analyze(m);
    EXPECT_GE(set.clusterCount(), 2u);
}

// ---- dependence extraction specifics ------------------------------------

TEST(Frontend, PointerAssignmentUnifies)
{
    auto m = parseOk("double *pool;\n"
                          "double *x;\n"
                          "double *y;\n"
                          "void setup(int n) {\n"
                          "    x = pool;\n"
                          "    y = pool + n;\n"
                          "}\n",
                          "t.c");
    ClusterSet set = analyze(m);
    EXPECT_EQ(set.clusterCount(), 1u);
}

TEST(Frontend, ScalarAssignmentDoesNotUnify)
{
    auto m = parseOk("void f() {\n"
                          "    double a;\n"
                          "    double b = 1.0;\n"
                          "    a = b;\n"
                          "}\n",
                          "t.c");
    ClusterSet set = analyze(m);
    EXPECT_EQ(set.clusterCount(), 2u);
}

TEST(Frontend, ReturnValueFlowUnifiesPointers)
{
    auto m = parseOk("double *buffer;\n"
                          "double* get_buffer() { return buffer; }\n"
                          "void f() {\n"
                          "    double *local = get_buffer();\n"
                          "}\n",
                          "t.c");
    ClusterSet set = analyze(m);
    // buffer and local unify through the return edge.
    EXPECT_EQ(set.clusterOf(m.findVariable("buffer")),
              set.clusterOf(m.findVariable("local")));
}

TEST(Frontend, AddressOfLocalIntoPointerVariable)
{
    auto m = parseOk("void f() {\n"
                          "    double v;\n"
                          "    double *p = &v;\n"
                          "}\n",
                          "t.c");
    ClusterSet set = analyze(m);
    EXPECT_EQ(set.clusterCount(), 1u);
}

TEST(Frontend, CallBindThroughPrototype)
{
    auto m = parseOk("void kernel(double *data);\n"
                          "double *field;\n"
                          "void drive() { kernel(field); }\n",
                          "t.c");
    ClusterSet set = analyze(m);
    EXPECT_EQ(set.clusterOf(m.findVariable("field")),
              set.clusterOf(m.findVariable("data")));
}

TEST(Frontend, IntegerVariablesAreNotTunable)
{
    auto m = parseOk("int counter;\n"
                          "unsigned long big;\n"
                          "double real_one;\n",
                          "t.c");
    EXPECT_EQ(m.realVariables().size(), 1u);
}

TEST(Frontend, ControlFlowIsConsumed)
{
    auto m = parseOk(
        "void f(int n) {\n"
        "    double acc = 0.0;\n"
        "    for (int i = 0; i < n; i++) {\n"
        "        if (i % 2 == 0) { acc += 1.0; } else acc -= 1.0;\n"
        "    }\n"
        "    while (n > 0) { n--; }\n"
        "    do { n++; } while (n < 3);\n"
        "    int k = n > 2 ? 1 : 0;\n"
        "}\n",
        "t.c");
    EXPECT_EQ(m.realVariables().size(), 1u);
}

TEST(Frontend, PointerArithmeticKeepsRoot)
{
    auto m = parseOk("double *base;\n"
                          "void f(int off) {\n"
                          "    double *view = base + 2 * off;\n"
                          "}\n",
                          "t.c");
    ClusterSet set = analyze(m);
    EXPECT_EQ(set.clusterCount(), 1u);
}

TEST(Frontend, ElementAccessIsScalarLevel)
{
    auto m = parseOk("double *a;\n"
                          "double *b;\n"
                          "void f(int i) { a[i] = b[i]; }\n",
                          "t.c");
    ClusterSet set = analyze(m);
    // Element copy does not force the arrays into one cluster.
    EXPECT_EQ(set.clusterCount(), 2u);
}

TEST(Frontend, AggregateInitializersAndSizeof)
{
    auto m = parseOk(
        "double coef[3] = {0.1, 0.2, 0.3};\n"
        "void f() { int s = sizeof(double) + sizeof coef; }\n",
        "t.c");
    EXPECT_EQ(m.realVariables().size(), 1u);
}

TEST(Frontend, StaticGlobalsAndMultipleDeclarators)
{
    auto m = parseOk("static double x[100], *y, z;\n", "t.c");
    EXPECT_EQ(m.realVariables().size(), 3u);
    EXPECT_TRUE(
        m.variable(m.findVariable("x")).type.isPointer());
    EXPECT_TRUE(
        m.variable(m.findVariable("y")).type.isPointer());
    EXPECT_FALSE(
        m.variable(m.findVariable("z")).type.isPointer());
}

TEST(Frontend, ShadowingUsesInnermostScope)
{
    auto m = parseOk("double g;\n"
                          "void f() {\n"
                          "    double *g;\n"
                          "    double *h = g;\n" // binds to local g
                          "}\n",
                          "t.c");
    ClusterSet set = analyze(m);
    auto localG = m.findVariable("f", "g");
    auto h = m.findVariable("f", "h");
    EXPECT_EQ(set.clusterOf(localG), set.clusterOf(h));
    // Global g stays alone.
    EXPECT_EQ(set.clusterCount(), 2u);
}

TEST(Frontend, SyntaxErrorsBecomeDiagnosticsWithPositions)
{
    ParseResult bad = parseProgram("void f( {\n}", "bad.c");
    ASSERT_FALSE(bad.ok());
    EXPECT_GE(bad.diagnostics.front().line, 1);
    EXPECT_GE(bad.diagnostics.front().column, 1);

    EXPECT_FALSE(parseProgram("double x", "bad.c").ok());
    EXPECT_FALSE(
        parseProgram("void f() { return 1.0 }\n", "bad.c").ok());

    // The file entry point keeps the fatal contract.
    EXPECT_THROW(parseProgramFile("/no/such/file.c"),
                 support::FatalError);
}

TEST(Frontend, UnterminatedBlockIsRecoverable)
{
    ParseResult r = parseProgram("double g;\n"
                                 "void f() {\n"
                                 "    double a = 1.0;\n",
                                 "bad.c");
    ASSERT_EQ(r.diagnostics.size(), 1u);
    EXPECT_NE(r.diagnostics[0].message.find("unterminated"),
              std::string::npos);
    // Everything before the missing '}' still landed in the model.
    EXPECT_EQ(r.model.realVariables().size(), 2u);
}

TEST(Frontend, UnknownTypeIsRecoverable)
{
    ParseResult r = parseProgram("floatt x;\n"
                                 "double y;\n",
                                 "bad.c");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.diagnostics[0].line, 1);
    // Recovery resumes at the next declaration.
    EXPECT_EQ(r.model.realVariables().size(), 1u);
    EXPECT_EQ(r.model.variable(r.model.findVariable("y")).name, "y");
}

TEST(Frontend, BadCallArityIsDiagnosed)
{
    ParseResult r = parseProgram(
        "void scale(double *v, double s) {}\n"
        "double *data;\n"
        "void f() { scale(data); }\n",
        "bad.c");
    ASSERT_EQ(r.diagnostics.size(), 1u);
    EXPECT_EQ(r.diagnostics[0].line, 3);
    EXPECT_NE(r.diagnostics[0].message.find("expected 2"),
              std::string::npos);
    // The binding of the arguments that were passed still happens.
    ClusterSet set = analyze(r.model);
    EXPECT_EQ(set.clusterOf(r.model.findVariable("data")),
              set.clusterOf(r.model.findVariable("v")));
}

TEST(Frontend, BadStatementRecoversWithinFunction)
{
    ParseResult r = parseProgram("void f() {\n"
                                 "    double a = 1.0;\n"
                                 "    a = = 2.0;\n"
                                 "    double b = 3.0;\n"
                                 "}\n"
                                 "double tail;\n",
                                 "bad.c");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.diagnostics[0].line, 3);
    // a, b, and the trailing global all survive the bad statement.
    EXPECT_EQ(r.model.realVariables().size(), 3u);
}

TEST(Frontend, LexicalErrorsBecomeDiagnostics)
{
    EXPECT_FALSE(parseProgram("/* unterminated", "bad.c").ok());
    EXPECT_FALSE(parseProgram("a $ b", "bad.c").ok());
}

// ---- dataflow fact inference -------------------------------------------

TEST(Frontend, InfersAccumulatorAndLoopCarried)
{
    auto m = parseOk(kListing1, "listing1.c");
    auto res = m.findVariable("vect_mult", "res");
    EXPECT_TRUE(m.hasFact(res, model::DataflowFact::Accumulator));
    EXPECT_TRUE(m.hasFact(res, model::DataflowFact::LoopCarried));
    EXPECT_TRUE(m.dataflowAnalyzed());
    // ratio is read-only inside the loop: not an accumulator.
    auto ratio = m.findVariable("vect_mult", "ratio");
    EXPECT_FALSE(m.hasFact(ratio, model::DataflowFact::Accumulator));
}

TEST(Frontend, InfersExplicitSelfRecurrence)
{
    auto m = parseOk("void f(int n) {\n"
                     "    double s = 0.0;\n"
                     "    double t = 1.0;\n"
                     "    for (int i = 0; i < n; i++) {\n"
                     "        s = s + t;\n"
                     "        t = t * 0.5;\n"
                     "    }\n"
                     "}\n",
                     "t.c");
    auto s = m.findVariable("f", "s");
    auto t = m.findVariable("f", "t");
    EXPECT_TRUE(m.hasFact(s, model::DataflowFact::Accumulator));
    EXPECT_TRUE(m.hasFact(s, model::DataflowFact::LoopCarried));
    // t feeds itself multiplicatively: loop-carried, not accumulator.
    EXPECT_FALSE(m.hasFact(t, model::DataflowFact::Accumulator));
    EXPECT_TRUE(m.hasFact(t, model::DataflowFact::LoopCarried));
}

TEST(Frontend, InfersCancellationAndDivisor)
{
    auto m = parseOk("double num;\n"
                     "double den;\n"
                     "double *field;\n"
                     "void f(int i) {\n"
                     "    double d = num - field[i];\n"
                     "    double q = d / den;\n"
                     "}\n",
                     "t.c");
    EXPECT_TRUE(m.hasFact(m.findVariable("num"),
                          model::DataflowFact::Cancellation));
    EXPECT_TRUE(m.hasFact(m.findVariable("field"),
                          model::DataflowFact::Cancellation));
    EXPECT_TRUE(m.hasFact(m.findVariable("den"),
                          model::DataflowFact::Divisor));
    EXPECT_FALSE(m.hasFact(m.findVariable("f", "q"),
                           model::DataflowFact::Divisor));
}

TEST(Frontend, InfersBranchCompareAndLiteralInit)
{
    auto m = parseOk("void f(double tol) {\n"
                     "    double eps = 1.0e-9;\n"
                     "    double x = init_scalar();\n"
                     "    if (tol < 0.5) { x = 1.0; }\n"
                     "}\n",
                     "t.c");
    EXPECT_TRUE(m.hasFact(m.findVariable("f", "tol"),
                          model::DataflowFact::BranchCompare));
    EXPECT_TRUE(m.hasFact(m.findVariable("f", "eps"),
                          model::DataflowFact::LiteralInit));
    // x is written from a call, so not literal-only.
    EXPECT_FALSE(m.hasFact(m.findVariable("f", "x"),
                           model::DataflowFact::LiteralInit));
}

TEST(Frontend, AddressTakenVariablesAreNotLiteralInit)
{
    auto m = parseOk("void f() {\n"
                     "    double v = 0.0;\n"
                     "    init_scalar(&v);\n"
                     "}\n",
                     "t.c");
    EXPECT_FALSE(m.hasFact(m.findVariable("f", "v"),
                           model::DataflowFact::LiteralInit));
}

TEST(Frontend, ArrayElementUpdatesAreNotAccumulators)
{
    auto m = parseOk("void f(double *out, double *in, int n) {\n"
                     "    for (int i = 0; i < n; i++) {\n"
                     "        out[i] += in[i];\n"
                     "    }\n"
                     "}\n",
                     "t.c");
    EXPECT_FALSE(m.hasFact(m.findVariable("f", "out"),
                           model::DataflowFact::Accumulator));
}

TEST(Frontend, RangeAnnotationsSeedTheModel)
{
    auto m = parseOk("void f(double *x, double s) {\n"
                     "    __range(x, 0.0, 0.05);\n"
                     "    __range(s, -1.5, 2.5e0);\n"
                     "}\n",
                     "t.c");
    auto rx = m.range(m.findVariable("f", "x"));
    ASSERT_TRUE(rx.known);
    EXPECT_DOUBLE_EQ(rx.lo, 0.0);
    EXPECT_DOUBLE_EQ(rx.hi, 0.05);
    auto rs = m.range(m.findVariable("f", "s"));
    ASSERT_TRUE(rs.known);
    EXPECT_DOUBLE_EQ(rs.lo, -1.5);
    EXPECT_DOUBLE_EQ(rs.hi, 2.5);
}

TEST(Frontend, RangeBoundsFoldLiteralArithmetic)
{
    auto m = parseOk("void f(double v) {\n"
                     "    __range(v, 0.0, 1.0 / 4.0);\n"
                     "}\n",
                     "t.c");
    auto r = m.range(m.findVariable("f", "v"));
    ASSERT_TRUE(r.known);
    EXPECT_DOUBLE_EQ(r.hi, 0.25);
}

TEST(Frontend, OpaqueAnnotationMarksTheVariable)
{
    auto m = parseOk("void f(double *buf) {\n"
                     "    __opaque(buf);\n"
                     "}\n",
                     "t.c");
    EXPECT_TRUE(m.isOpaque(m.findVariable("f", "buf")));
}

TEST(Frontend, MalformedAnnotationsReportDiagnostics)
{
    // Out-of-order bounds.
    EXPECT_FALSE(parseProgram("void f(double v) {\n"
                              "    __range(v, 2.0, 1.0);\n"
                              "}\n",
                              "bad.c")
                     .ok());
    // Non-literal bound.
    EXPECT_FALSE(parseProgram("void f(double v, double w) {\n"
                              "    __range(v, 0.0, w);\n"
                              "}\n",
                              "bad.c")
                     .ok());
    // Wrong arity.
    EXPECT_FALSE(parseProgram("void f(double v) {\n"
                              "    __opaque(v, 1.0);\n"
                              "}\n",
                              "bad.c")
                     .ok());
    // Unknown target still recovers and keeps parsing.
    auto result = parseProgram("void f(double v) {\n"
                               "    __range(mystery, 0.0, 1.0);\n"
                               "    v = 1.0;\n"
                               "}\n",
                               "bad.c");
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.model.findVariable("f", "v"),
              model::kInvalidId);
}

TEST(Frontend, FrontendModelMatchesBuilderModelOnListing1)
{
    // The frontend-derived model and a hand-built model must agree on
    // the partitioning (cross-validation of both construction paths).
    model::ProgramModel parsed = parseOk(kListing1, "x.c");

    model::ProgramModel built("x.c");
    auto mod = built.addModule("x.c");
    auto vm = built.addFunction(mod, "vect_mult");
    auto input = built.addParameter(vm, "input", model::realPointer());
    auto inout = built.addParameter(vm, "inout", model::realPointer());
    auto ratio = built.addParameter(vm, "ratio", model::realScalar());
    auto res = built.addVariable(vm, "res", model::realScalar());
    auto foo = built.addFunction(mod, "foo");
    auto arr = built.addVariable(foo, "arr", model::realPointer());
    auto val = built.addVariable(foo, "val", model::realScalar());
    built.addVariable(foo, "scale", model::realScalar());
    built.addCallBind(arr, input);
    built.addAddressOf(val, inout);
    built.addAssign(res, ratio);

    auto a = analyze(parsed);
    auto b = analyze(built);
    EXPECT_EQ(a.clusterCount(), b.clusterCount());
    EXPECT_EQ(a.variableCount(), b.variableCount());
}

} // namespace
