/**
 * @file
 * Tests for the benchmark suite: every kernel and application must run
 * at baseline, be deterministic, expose a well-formed program model,
 * and respond to precision lowering in the expected direction.
 */

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "benchmarks/benchmark.h"
#include "benchmarks/registry.h"
#include "model/bind_keys.h"
#include "support/logging.h"
#include "typeforge/clustering.h"
#include "verify/metrics.h"

namespace {

using hpcmixp::benchmarks::Benchmark;
using hpcmixp::benchmarks::BenchmarkRegistry;
using hpcmixp::benchmarks::PrecisionMap;
using hpcmixp::runtime::Precision;

std::unique_ptr<Benchmark>
make(const std::string& name)
{
    return BenchmarkRegistry::instance().create(name);
}

/** Lower every bound knob of a benchmark to single precision. */
PrecisionMap
allSingle(const Benchmark& bench)
{
    PrecisionMap pm;
    for (const auto& var : bench.programModel().variables())
        if (!var.bindKey.empty())
            pm.set(var.bindKey, Precision::Float32);
    return pm;
}

bool
allFinite(const std::vector<double>& values)
{
    for (double v : values)
        if (!std::isfinite(v))
            return false;
    return true;
}

class AllBenchmarks : public ::testing::TestWithParam<std::string> {};

TEST_P(AllBenchmarks, BaselineRunsAndIsFinite)
{
    auto bench = make(GetParam());
    auto out = bench->run(PrecisionMap{});
    ASSERT_FALSE(out.values.empty());
    EXPECT_TRUE(allFinite(out.values))
        << GetParam() << " baseline produced non-finite output";
}

TEST_P(AllBenchmarks, BaselineIsDeterministic)
{
    auto bench = make(GetParam());
    auto a = bench->run(PrecisionMap{});
    auto b = bench->run(PrecisionMap{});
    ASSERT_EQ(a.values.size(), b.values.size());
    for (std::size_t i = 0; i < a.values.size(); ++i)
        ASSERT_EQ(a.values[i], b.values[i]) << "at index " << i;
}

TEST_P(AllBenchmarks, SinglePrecisionRunProducesOutput)
{
    auto bench = make(GetParam());
    auto out = bench->run(allSingle(*bench));
    EXPECT_FALSE(out.values.empty());
}

TEST_P(AllBenchmarks, ModelHasTunableVariablesAndClusters)
{
    auto bench = make(GetParam());
    auto clusters = hpcmixp::typeforge::analyze(bench->programModel());
    EXPECT_GE(clusters.variableCount(), 2u);
    EXPECT_GE(clusters.clusterCount(), 1u);
    EXPECT_LE(clusters.clusterCount(), clusters.variableCount());
}

TEST_P(AllBenchmarks, EveryBindKeyLiesInOneCluster)
{
    auto bench = make(GetParam());
    const auto& program = bench->programModel();
    auto clusters = hpcmixp::typeforge::analyze(program);
    std::map<std::string, std::size_t> keyCluster;
    for (const auto& var : program.variables()) {
        if (var.bindKey.empty() ||
            var.type.base != hpcmixp::model::BaseType::Real)
            continue;
        std::size_t c = clusters.clusterOf(var.id);
        auto [it, inserted] = keyCluster.emplace(var.bindKey, c);
        EXPECT_TRUE(inserted || it->second == c)
            << "bind key " << var.bindKey << " spans clusters";
    }
    EXPECT_FALSE(keyCluster.empty())
        << GetParam() << " has no runtime knobs";
}

TEST_P(AllBenchmarks, QualityMetricIsRegistered)
{
    auto bench = make(GetParam());
    EXPECT_TRUE(hpcmixp::verify::MetricRegistry::instance().has(
        bench->qualityMetric()));
}

INSTANTIATE_TEST_SUITE_P(
    Suite, AllBenchmarks,
    ::testing::ValuesIn(BenchmarkRegistry::instance().names()),
    [](const auto& info) {
        std::string name = info.param;
        for (auto& c : name)
            if (c == '-')
                c = '_';
        return name;
    });

class KernelsOnly : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelsOnly, SinglePrecisionOutputStaysFiniteAndClose)
{
    auto bench = make(GetParam());
    auto ref = bench->run(PrecisionMap{});
    auto low = bench->run(allSingle(*bench));
    ASSERT_EQ(ref.values.size(), low.values.size());
    hpcmixp::verify::MeanAbsoluteError mae;
    double loss = mae.compute(ref.values, low.values);
    EXPECT_TRUE(std::isfinite(loss));
    // Kernel data is scaled so full single precision stays within a
    // loose 1e-4 bound (the interesting thresholds are far tighter).
    EXPECT_LT(loss, 1e-4) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Suite, KernelsOnly,
    ::testing::ValuesIn(BenchmarkRegistry::instance().kernelNames()),
    [](const auto& info) {
        std::string name = info.param;
        for (auto& c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(BenchmarkRegistry, HasTenKernelsAndSevenApplications)
{
    auto& reg = BenchmarkRegistry::instance();
    EXPECT_EQ(reg.kernelNames().size(), 10u);
    EXPECT_EQ(reg.applicationNames().size(), 7u);
    EXPECT_EQ(reg.names().size(), 17u);
}

TEST(BenchmarkRegistry, UnknownNameIsFatal)
{
    EXPECT_THROW(BenchmarkRegistry::instance().create("no-such"),
                 hpcmixp::support::FatalError);
}

TEST(Srad, SinglePrecisionImageDestroysOutput)
{
    auto bench = make("srad");
    PrecisionMap pm;
    pm.set("image", Precision::Float32);
    pm.set("grads", Precision::Float32);
    auto out = bench->run(pm);
    bool anyNaN = false;
    for (double v : out.values)
        anyNaN = anyNaN || std::isnan(v);
    EXPECT_TRUE(anyNaN)
        << "srad should overflow binary32 into NaN (paper Table IV)";
}

TEST(Kmeans, SinglePrecisionKeepsAssignmentsIdentical)
{
    auto bench = make("kmeans");
    auto ref = bench->run(PrecisionMap{});
    auto low = bench->run(allSingle(*bench));
    hpcmixp::verify::MisclassificationRate mcr;
    EXPECT_EQ(mcr.compute(ref.values, low.values), 0.0);
}

TEST(Hotspot, SinglePrecisionErrorIsTiny)
{
    auto bench = make("hotspot");
    auto ref = bench->run(PrecisionMap{});
    auto low = bench->run(allSingle(*bench));
    hpcmixp::verify::MeanAbsoluteError mae;
    double loss = mae.compute(ref.values, low.values);
    // Dissipative iteration: rounding does not accumulate.
    EXPECT_LT(loss, 1e-6);
}

TEST(PrecisionMapTest, UndeclaredKeyWarnsOnceAndNamesTheOwner)
{
    // Ensure the "any key declared" gate is open even when this test
    // runs before every model-building test.
    hpcmixp::model::declareBindKey("pmwarn_declared");

    PrecisionMap pm;
    pm.setOwner("pmwarn-probe");
    testing::internal::CaptureStderr();
    (void)pm.get("pmwarn_typo");
    (void)pm.get("pmwarn_typo"); // second query: already warned
    (void)pm.get("pmwarn_declared"); // declared: never warns
    std::string err = testing::internal::GetCapturedStderr();

    EXPECT_NE(err.find("pmwarn_typo"), std::string::npos) << err;
    EXPECT_NE(err.find("pmwarn-probe"), std::string::npos)
        << "warning should name the owning benchmark: " << err;
    EXPECT_EQ(err.find("pmwarn_typo"), err.rfind("pmwarn_typo"))
        << "undeclared-key warning must fire once per key: " << err;
    EXPECT_EQ(err.find("pmwarn_declared"), std::string::npos) << err;
}

} // namespace
