/**
 * @file
 * Unit tests for the support substrate: strings, RNG, timing protocol,
 * CLI parsing, tables, env knobs, logging, thread pool.
 */

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/cli.h"
#include "support/env.h"
#include "support/logging.h"
#include "support/retry.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/string_util.h"
#include "support/table.h"
#include "support/thread_pool.h"
#include "support/timer.h"

namespace {

using namespace hpcmixp::support;

// ---- string_util ----------------------------------------------------

TEST(StringUtil, TrimRemovesSurroundingWhitespace)
{
    EXPECT_EQ(trim("  a b \t\n"), "a b");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \t "), "");
    EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtil, SplitKeepsEmptyFields)
{
    auto parts = split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, SplitWhitespaceDropsEmptyTokens)
{
    auto parts = splitWhitespace("  a \t b\nc ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(StringUtil, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("--flag", "--"));
    EXPECT_FALSE(startsWith("-", "--"));
    EXPECT_TRUE(endsWith("file.cc", ".cc"));
    EXPECT_FALSE(endsWith("cc", "file.cc"));
}

TEST(StringUtil, JoinAndToLower)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(toLower("MiXeD"), "mixed");
}

TEST(StringUtil, ParseDoubleAcceptsScientific)
{
    EXPECT_DOUBLE_EQ(parseDouble("1e-8", "t"), 1e-8);
    EXPECT_DOUBLE_EQ(parseDouble(" 2.5 ", "t"), 2.5);
    EXPECT_THROW(parseDouble("1x", "t"), FatalError);
    EXPECT_THROW(parseDouble("", "t"), FatalError);
}

TEST(StringUtil, ParseLongRejectsTrailingGarbage)
{
    EXPECT_EQ(parseLong("42", "t"), 42);
    EXPECT_THROW(parseLong("42.5", "t"), FatalError);
}

TEST(StringUtil, SciCompactSpecialCases)
{
    EXPECT_EQ(sciCompact(0.0), "0");
    EXPECT_EQ(sciCompact(std::nan("")), "NaN");
    EXPECT_EQ(sciCompact(1.1e-7), "1.10e-07");
}

// ---- rng --------------------------------------------------------------

TEST(Rng, Pcg32IsDeterministicPerSeed)
{
    Pcg32 a(7), b(7), c(8);
    for (int i = 0; i < 100; ++i) {
        auto va = a.nextU32();
        EXPECT_EQ(va, b.nextU32());
    }
    bool anyDiff = false;
    Pcg32 a2(7);
    for (int i = 0; i < 100; ++i)
        anyDiff |= (a2.nextU32() != c.nextU32());
    EXPECT_TRUE(anyDiff);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Pcg32 rng(123);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, NextBoundedNeverExceedsBound)
{
    Pcg32 rng(9);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.nextBounded(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u) << "all residues should appear";
    EXPECT_EQ(rng.nextBounded(0), 0u);
}

TEST(Rng, UniformRespectsRange)
{
    Pcg32 rng(5);
    for (int i = 0; i < 500; ++i) {
        double v = rng.uniform(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, NormalHasRoughlyZeroMeanUnitVariance)
{
    Pcg32 rng(31);
    double sum = 0, sum2 = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = rng.normal();
        sum += v;
        sum2 += v * v;
    }
    double mean = sum / n;
    double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, ChanceExtremes)
{
    Pcg32 rng(77);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

// ---- timer ------------------------------------------------------------

TEST(Timer, TrimmedMeanDropsBestAndWorst)
{
    EXPECT_DOUBLE_EQ(trimmedMean({1.0, 100.0, 2.0, 3.0, 0.5}),
                     (1.0 + 2.0 + 3.0) / 3.0);
    EXPECT_DOUBLE_EQ(trimmedMean({4.0}), 4.0);
    EXPECT_DOUBLE_EQ(trimmedMean({4.0, 6.0}), 5.0);
}

TEST(Timer, RepeatTimedRunsExactly)
{
    int calls = 0;
    auto result = repeatTimed([&] { ++calls; }, 5);
    EXPECT_EQ(calls, 5);
    EXPECT_EQ(result.samples.size(), 5u);
    EXPECT_LE(result.minSeconds, result.meanSeconds);
    EXPECT_LE(result.meanSeconds, result.maxSeconds);
}

TEST(Timer, WallTimerAdvances)
{
    WallTimer t;
    volatile double x = 0;
    for (int i = 0; i < 100000; ++i)
        x = x + 1.0;
    EXPECT_GT(t.seconds(), 0.0);
}

// ---- cli --------------------------------------------------------------

TEST(Cli, ParsesFlagFormsAndPositionals)
{
    const char* argv[] = {"prog", "--a", "1", "--b=two",
                          "pos1", "--flag", "--c=3.5", "pos2"};
    CommandLine cl(8, argv);
    EXPECT_EQ(cl.getLong("a", 0), 1);
    EXPECT_EQ(cl.getString("b", ""), "two");
    EXPECT_TRUE(cl.getBool("flag", false));
    EXPECT_DOUBLE_EQ(cl.getDouble("c", 0.0), 3.5);
    ASSERT_EQ(cl.positional().size(), 2u);
    EXPECT_EQ(cl.positional()[0], "pos1");
    EXPECT_EQ(cl.positional()[1], "pos2");
    EXPECT_EQ(cl.getString("missing", "dflt"), "dflt");
}

TEST(Cli, BoolValueSpellings)
{
    const char* argv[] = {"p", "--x=yes", "--y=0", "--z=TRUE"};
    CommandLine cl(4, argv);
    EXPECT_TRUE(cl.getBool("x", false));
    EXPECT_FALSE(cl.getBool("y", true));
    EXPECT_TRUE(cl.getBool("z", false));
}

// ---- table ------------------------------------------------------------

TEST(Table, AlignsColumnsAndCountsRows)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "2.5"});
    EXPECT_EQ(t.rowCount(), 2u);
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("| name "), std::string::npos);
    EXPECT_NE(s.find("| longer "), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, CellFormatting)
{
    EXPECT_EQ(Table::cell(1.23456, 2), "1.23");
    EXPECT_EQ(Table::cell(static_cast<long>(42)), "42");
    EXPECT_EQ(Table::cell(std::nan(""), 2), "NaN");
}

// ---- env --------------------------------------------------------------

TEST(Env, QuickModeFollowsVariable)
{
    // tests run with HPCMIXP_QUICK=1 (see tests/CMakeLists.txt)
    EXPECT_TRUE(quickMode());
    EXPECT_EQ(envString("HPCMIXP_NO_SUCH_VAR", "dflt"), "dflt");
    EXPECT_EQ(envLong("HPCMIXP_NO_SUCH_VAR", 7), 7);
}

// ---- logging ----------------------------------------------------------

TEST(Logging, FatalThrowsWithMessage)
{
    try {
        fatal("boom");
        FAIL() << "fatal must throw";
    } catch (const FatalError& e) {
        EXPECT_STREQ(e.what(), "boom");
    }
}

TEST(Logging, StrCatConcatenatesMixedTypes)
{
    EXPECT_EQ(strCat("x=", 3, ", y=", 1.5), "x=3, y=1.5");
}

// ---- thread pool -------------------------------------------------------

TEST(ThreadPool, RunsAllJobs)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 64; ++i)
        futs.push_back(pool.submit([&] { ++count; }));
    for (auto& f : futs)
        f.get();
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 16; ++i)
        pool.submit([&] { ++count; });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.workerCount(), 1u);
}

TEST(ThreadPool, DrainShutdownRunsQueuedJobs)
{
    ThreadPool pool(1);
    std::atomic<int> count{0};
    std::atomic<bool> started{false};
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();

    // The single worker blocks on the gate, so the next 8 jobs are
    // guaranteed to still be queued when shutdown begins.
    pool.submit([&, opened] {
        started = true;
        opened.wait();
        ++count;
    });
    while (!started)
        std::this_thread::yield();
    for (int i = 0; i < 8; ++i)
        pool.submit([&] { ++count; });

    std::thread releaser([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        gate.set_value();
    });
    pool.shutdown(ThreadPool::Shutdown::Drain);
    releaser.join();

    EXPECT_EQ(count.load(), 9); // every queued job still ran
    EXPECT_EQ(pool.cancelledCount(), 0u);
    EXPECT_EQ(pool.workerCount(), 0u);
}

TEST(ThreadPool, CancelShutdownDropsQueuedJobsAndBreaksFutures)
{
    ThreadPool pool(1);
    std::atomic<int> count{0};
    std::atomic<bool> started{false};
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();

    auto running = pool.submit([&, opened] {
        started = true;
        opened.wait();
        ++count;
    });
    while (!started)
        std::this_thread::yield();
    std::vector<std::future<void>> queued;
    for (int i = 0; i < 8; ++i)
        queued.push_back(pool.submit([&] { ++count; }));

    std::thread releaser([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        gate.set_value();
    });
    pool.shutdown(ThreadPool::Shutdown::Cancel);
    releaser.join();

    // The in-flight job always completes; the queued ones were
    // dropped and their futures broken rather than left hanging.
    EXPECT_EQ(count.load(), 1);
    EXPECT_EQ(pool.cancelledCount(), 8u);
    running.get();
    for (auto& f : queued)
        EXPECT_THROW(f.get(), std::future_error);
}

TEST(ThreadPool, ShutdownIsIdempotent)
{
    ThreadPool pool(2);
    pool.submit([] {}).get();
    pool.shutdown(ThreadPool::Shutdown::Drain);
    pool.shutdown(ThreadPool::Shutdown::Cancel); // no-op after the first
    EXPECT_EQ(pool.workerCount(), 0u);
    EXPECT_EQ(pool.cancelledCount(), 0u);
}

TEST(ThreadPool, DefaultsToStealScheduling)
{
    ThreadPool pool(2);
    EXPECT_EQ(pool.scheduling(), ThreadPool::Scheduling::Steal);
    ThreadPool fifo(2, ThreadPool::Scheduling::Fifo);
    EXPECT_EQ(fifo.scheduling(), ThreadPool::Scheduling::Fifo);
    EXPECT_EQ(fifo.stealCount(), 0u);
}

TEST(ThreadPool, FifoModeRunsAllJobsWithoutSteals)
{
    ThreadPool pool(4, ThreadPool::Scheduling::Fifo);
    std::atomic<int> count{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 64; ++i)
        futs.push_back(pool.submit([&] { ++count; }));
    for (auto& f : futs)
        f.get();
    EXPECT_EQ(count.load(), 64);
    EXPECT_EQ(pool.stealCount(), 0u);
}

TEST(ThreadPool, UnevenLoadTriggersSteals)
{
    // Two workers, round-robin dealing: worker 0's deque gets every
    // even-indexed job. Job 0 blocks worker 0 on the gate, so worker 1
    // must steal from worker 0's deque to drain the rest.
    ThreadPool pool(2);
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    std::atomic<int> count{0};

    std::vector<std::future<void>> futs;
    futs.push_back(pool.submit([&, opened] {
        opened.wait();
        ++count;
    }));
    for (int i = 0; i < 31; ++i)
        futs.push_back(pool.submit([&] { ++count; }));

    // The thief drains every runnable job while the owner is blocked.
    WallTimer timer;
    while (count.load() < 31 && timer.seconds() < 10.0)
        std::this_thread::yield();
    EXPECT_EQ(count.load(), 31);
    EXPECT_GT(pool.stealCount(), 0u);

    gate.set_value();
    for (auto& f : futs)
        f.get();
    EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, StealModeDrainShutdownRunsQueuedJobs)
{
    ThreadPool pool(1);
    std::atomic<int> count{0};
    std::atomic<bool> started{false};
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();

    pool.submit([&, opened] {
        started = true;
        opened.wait();
        ++count;
    });
    while (!started)
        std::this_thread::yield();
    for (int i = 0; i < 8; ++i)
        pool.submit([&] { ++count; });

    std::thread releaser([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        gate.set_value();
    });
    pool.shutdown(ThreadPool::Shutdown::Drain);
    releaser.join();

    EXPECT_EQ(count.load(), 9);
    EXPECT_EQ(pool.cancelledCount(), 0u);
}

TEST(ThreadPool, StealModeCancelDropsQueuedJobsFromEveryDeque)
{
    ThreadPool pool(2);
    std::atomic<int> startedCount{0};
    std::atomic<int> count{0};
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();

    // Block both workers so every further submit stays queued in one
    // of the per-worker deques.
    std::vector<std::future<void>> running;
    for (int i = 0; i < 2; ++i)
        running.push_back(pool.submit([&, opened] {
            ++startedCount;
            opened.wait();
            ++count;
        }));
    while (startedCount.load() < 2)
        std::this_thread::yield();
    std::vector<std::future<void>> queued;
    for (int i = 0; i < 8; ++i)
        queued.push_back(pool.submit([&] { ++count; }));

    std::thread releaser([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        gate.set_value();
    });
    pool.shutdown(ThreadPool::Shutdown::Cancel);
    releaser.join();

    EXPECT_EQ(count.load(), 2);
    EXPECT_EQ(pool.cancelledCount(), 8u);
    for (auto& f : running)
        f.get();
    for (auto& f : queued)
        EXPECT_THROW(f.get(), std::future_error);
}


// ---- stats --------------------------------------------------------------

TEST(Stats, MeanMedianStddev)
{
    std::vector<double> odd{3.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(mean(odd), 2.0);
    EXPECT_DOUBLE_EQ(median(odd), 2.0);
    std::vector<double> even{4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(median(even), 2.5);
    // stddev of {2,4,4,4,5,5,7,9} (population 2) -> sample ~2.138
    std::vector<double> s{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_NEAR(stddev(s), 2.13809, 1e-4);
    EXPECT_DOUBLE_EQ(stddev({42.0}), 0.0);
}

TEST(Stats, SummarizeCoversExtremes)
{
    auto stats = summarize({5.0, 1.0, 3.0});
    EXPECT_EQ(stats.count, 3u);
    EXPECT_DOUBLE_EQ(stats.min, 1.0);
    EXPECT_DOUBLE_EQ(stats.max, 5.0);
    EXPECT_DOUBLE_EQ(stats.mean, 3.0);
    EXPECT_DOUBLE_EQ(stats.median, 3.0);
}

TEST(Stats, EmptySamplesAreFatal)
{
    EXPECT_THROW(mean({}), FatalError);
    EXPECT_THROW(median({}), FatalError);
    EXPECT_THROW(summarize({}), FatalError);
    EXPECT_DOUBLE_EQ(stddev({}), 0.0);
}

// ---- retry/backoff ---------------------------------------------------

TEST(Backoff, GrowsExponentiallyWithinJitterBounds)
{
    BackoffPolicy policy;
    policy.initialSeconds = 0.010;
    policy.multiplier = 2.0;
    policy.maxSeconds = 10.0;
    policy.jitterFraction = 0.1;
    Pcg32 rng(1);
    for (std::size_t attempt = 0; attempt < 6; ++attempt) {
        double base = 0.010 * std::pow(2.0, double(attempt));
        double d = backoffDelaySeconds(policy, attempt, rng);
        EXPECT_GE(d, base * 0.9);
        EXPECT_LE(d, base * 1.1);
    }
}

TEST(Backoff, DelayIsCappedAtMaxSeconds)
{
    BackoffPolicy policy;
    policy.initialSeconds = 0.010;
    policy.multiplier = 10.0;
    policy.maxSeconds = 0.050;
    policy.jitterFraction = 0.0;
    Pcg32 rng(1);
    EXPECT_DOUBLE_EQ(backoffDelaySeconds(policy, 0, rng), 0.010);
    EXPECT_DOUBLE_EQ(backoffDelaySeconds(policy, 1, rng), 0.050);
    EXPECT_DOUBLE_EQ(backoffDelaySeconds(policy, 9, rng), 0.050);
}

TEST(Backoff, JitterIsDeterministicPerSeed)
{
    BackoffPolicy policy;
    Pcg32 a(42), b(42);
    for (std::size_t attempt = 0; attempt < 8; ++attempt)
        EXPECT_DOUBLE_EQ(backoffDelaySeconds(policy, attempt, a),
                         backoffDelaySeconds(policy, attempt, b));
}

TEST(Backoff, SleepForSecondsIgnoresNonPositive)
{
    WallTimer timer;
    sleepForSeconds(0.0);
    sleepForSeconds(-1.0);
    EXPECT_LT(timer.seconds(), 0.05);
}

} // namespace
