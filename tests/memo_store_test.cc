/**
 * @file
 * Tests for the persistent cross-run evaluation memo-cache: crash-safe
 * append-log recovery, fingerprint addressing and invalidation,
 * concurrent publish/lookup, and the warm-rerun guarantee (a repeated
 * search re-executes nothing and commits the same trajectory).
 */

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "search/combinational.h"
#include "search/driver.h"
#include "search/memo_store.h"
#include "support/json.h"
#include "support/logging.h"
#include "support/memo_log.h"

namespace {

using namespace hpcmixp::search;
using hpcmixp::support::AppendLog;
using hpcmixp::support::FatalError;
using hpcmixp::support::fnv1a64;
using hpcmixp::support::json::Value;

std::string
scratchPath(const std::string& name)
{
    return ::testing::TempDir() + name;
}

/** Fresh scratch path: any leftover from a previous run is removed. */
std::string
freshPath(const std::string& name)
{
    std::string path = scratchPath(name);
    std::remove(path.c_str());
    return path;
}

std::string
freshDir(const std::string& name)
{
    std::string dir = scratchPath(name);
    std::filesystem::remove_all(dir);
    return dir;
}

/** Deterministic problem that counts raw executions. */
class CountingProblem : public SearchProblem {
  public:
    explicit CountingProblem(std::size_t sites) : sites_(sites) {}

    std::size_t siteCount() const override { return sites_; }

    Evaluation
    evaluate(const Config& config) override
    {
        ++rawCalls_;
        Evaluation eval;
        eval.status = config.test(0) ? EvalStatus::QualityFail
                                     : EvalStatus::Pass;
        eval.qualityLoss = eval.passed() ? 0.0 : 1.0;
        eval.speedup =
            1.0 + 0.1 * static_cast<double>(config.count());
        eval.runtimeSeconds = 1.0;
        return eval;
    }

    std::atomic<int> rawCalls_{0};

  private:
    std::size_t sites_;
};

MemoFingerprint
testFingerprint(std::size_t sites)
{
    MemoFingerprint fp;
    fp.benchmark = "counting";
    fp.inputSignature = 0x1234abcdu;
    fp.metric = "MAE";
    fp.threshold = 1e-6;
    fp.sites = sites;
    return fp;
}

Evaluation
passEval(double speedup)
{
    Evaluation eval;
    eval.status = EvalStatus::Pass;
    eval.speedup = speedup;
    eval.qualityLoss = 1e-9;
    eval.runtimeSeconds = 0.5;
    return eval;
}

/** Order-independent view of an exportCache() snapshot. */
std::vector<std::string>
canonicalCache(const Value& cache)
{
    std::vector<std::string> dumps;
    for (const auto& e : cache.at("evaluations").items())
        dumps.push_back(e.dump());
    std::sort(dumps.begin(), dumps.end());
    return dumps;
}

// --- AppendLog -------------------------------------------------------

TEST(AppendLog, RoundTripsRecordsAcrossReopen)
{
    std::string path = freshPath("append_roundtrip.log");
    {
        AppendLog log(path, "header v1");
        EXPECT_TRUE(log.records().empty());
        EXPECT_FALSE(log.reset());
        log.append("alpha");
        log.append("beta gamma");
    }
    AppendLog reopened(path, "header v1");
    EXPECT_FALSE(reopened.reset());
    EXPECT_EQ(reopened.truncatedBytes(), 0u);
    ASSERT_EQ(reopened.records().size(), 2u);
    EXPECT_EQ(reopened.records()[0], "alpha");
    EXPECT_EQ(reopened.records()[1], "beta gamma");
}

TEST(AppendLog, TruncatesPartialTrailingRecord)
{
    std::string path = freshPath("append_partial.log");
    {
        AppendLog log(path, "header v1");
        log.append("alpha");
        log.append("beta");
    }
    // Simulate a crash mid-append: a record with no terminating
    // newline (and therefore no durable checksum) trails the file.
    auto durable = std::filesystem::file_size(path);
    {
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << "deadbeef gam"; // no '\n'
    }
    ASSERT_GT(std::filesystem::file_size(path), durable);

    AppendLog recovered(path, "header v1");
    EXPECT_FALSE(recovered.reset());
    EXPECT_GT(recovered.truncatedBytes(), 0u);
    ASSERT_EQ(recovered.records().size(), 2u);
    EXPECT_EQ(recovered.records()[1], "beta");
    // The file itself was truncated back to the durable prefix, so
    // the next append produces a well-formed log.
    EXPECT_EQ(std::filesystem::file_size(path), durable);
}

TEST(AppendLog, DropsRecordWithCorruptChecksum)
{
    std::string path = freshPath("append_corrupt.log");
    {
        AppendLog log(path, "header v1");
        log.append("alpha");
        log.append("beta");
    }
    // Flip a byte inside the *last* record's payload.
    {
        std::fstream io(path, std::ios::in | std::ios::out |
                                  std::ios::binary);
        io.seekp(-3, std::ios::end);
        io.put('X');
    }
    AppendLog recovered(path, "header v1");
    ASSERT_EQ(recovered.records().size(), 1u);
    EXPECT_EQ(recovered.records()[0], "alpha");
}

TEST(AppendLog, HeaderMismatchResetsTheFile)
{
    std::string path = freshPath("append_header.log");
    {
        AppendLog log(path, "fingerprint A");
        log.append("stale");
    }
    AppendLog fresh(path, "fingerprint B");
    EXPECT_TRUE(fresh.reset());
    EXPECT_TRUE(fresh.records().empty());
    fresh.append("new");

    AppendLog reopened(path, "fingerprint B");
    EXPECT_FALSE(reopened.reset());
    ASSERT_EQ(reopened.records().size(), 1u);
    EXPECT_EQ(reopened.records()[0], "new");
}

// --- MemoFingerprint -------------------------------------------------

TEST(MemoFingerprint, HashSeparatesEveryField)
{
    MemoFingerprint base = testFingerprint(4);
    for (auto mutate : std::vector<void (*)(MemoFingerprint&)>{
             [](MemoFingerprint& f) { f.benchmark = "other"; },
             [](MemoFingerprint& f) { f.inputSignature ^= 1; },
             [](MemoFingerprint& f) { f.metric = "MSE"; },
             [](MemoFingerprint& f) { f.threshold *= 2; },
             [](MemoFingerprint& f) { f.sites += 1; },
             [](MemoFingerprint& f) { f.ladder = "f64:f32:f16"; }}) {
        MemoFingerprint changed = base;
        mutate(changed);
        EXPECT_NE(changed, base);
        EXPECT_NE(changed.hash(), base.hash());
        EXPECT_NE(changed.describe(), base.describe());
    }
}

TEST(MemoFingerprint, JsonRoundTripIsExact)
{
    MemoFingerprint fp = testFingerprint(7);
    // A signature above 2^53 would lose bits through a double; the
    // JSON path must carry all 64.
    fp.inputSignature = 0xfedcba9876543210ull;
    fp.threshold = 0.1; // not exactly representable
    auto back = MemoFingerprint::fromJson(fp.toJson());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, fp);
    EXPECT_FALSE(
        MemoFingerprint::fromJson(Value::array()).has_value());
}

// --- MemoTable -------------------------------------------------------

TEST(MemoTable, PublishLookupRoundTripsAcrossReopen)
{
    std::string path = freshPath("memo_roundtrip.log");
    MemoFingerprint fp = testFingerprint(4);
    Config cfg = Config::withLowered(4, {1, 3});

    Evaluation eval = passEval(1.25);
    eval.runtimeSeconds = 0.123456789012345; // exercise hexfloat
    {
        MemoTable table(path, fp);
        EXPECT_EQ(table.size(), 0u);
        EXPECT_FALSE(table.lookup(cfg.toString()).has_value());
        EXPECT_TRUE(table.publish(cfg.toString(), eval));
        // First publisher wins; repeats are no-ops.
        EXPECT_FALSE(table.publish(cfg.toString(), passEval(9.9)));
        EXPECT_EQ(table.size(), 1u);
    }
    MemoTable reopened(path, fp);
    EXPECT_FALSE(reopened.invalidated());
    ASSERT_EQ(reopened.size(), 1u);
    auto hit = reopened.lookup(cfg.toString());
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->status, EvalStatus::Pass);
    EXPECT_EQ(hit->speedup, eval.speedup);
    EXPECT_EQ(hit->runtimeSeconds, eval.runtimeSeconds);
    EXPECT_EQ(hit->qualityLoss, eval.qualityLoss);
}

TEST(MemoTable, EntriesSnapshotsEveryPublishedPair)
{
    std::string path = freshPath("memo_entries.log");
    MemoTable table(path, testFingerprint(4));
    EXPECT_TRUE(table.entries().empty());

    std::vector<std::string> keys;
    for (std::size_t i = 0; i < 8; ++i) {
        Config cfg = Config::withLowered(4, {i % 4});
        cfg.set((i + 1) % 4, i >= 4);
        std::string key = cfg.toString();
        if (table.publish(key, passEval(1.0 + 0.1 * i)))
            keys.push_back(key);
    }

    auto all = table.entries();
    ASSERT_EQ(all.size(), keys.size());
    std::vector<std::string> seen;
    for (const auto& [key, eval] : all) {
        seen.push_back(key);
        EXPECT_EQ(eval.status, EvalStatus::Pass);
        auto hit = table.lookup(key);
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(hit->speedup, eval.speedup);
    }
    std::sort(seen.begin(), seen.end());
    std::sort(keys.begin(), keys.end());
    EXPECT_EQ(seen, keys);
}

TEST(MemoTable, NaNQualityLossRoundTrips)
{
    std::string path = freshPath("memo_nan.log");
    MemoFingerprint fp = testFingerprint(2);
    Evaluation eval;
    eval.status = EvalStatus::QualityFail;
    eval.speedup = 1.5;
    eval.qualityLoss = std::numeric_limits<double>::quiet_NaN();
    {
        MemoTable table(path, fp);
        EXPECT_TRUE(table.publish("01", eval));
    }
    MemoTable reopened(path, fp);
    auto hit = reopened.lookup("01");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->status, EvalStatus::QualityFail);
    EXPECT_TRUE(std::isnan(hit->qualityLoss));
}

TEST(MemoTable, CompileFailuresAreNeverPublished)
{
    std::string path = freshPath("memo_compilefail.log");
    MemoTable table(path, testFingerprint(2));
    Evaluation fail;
    fail.status = EvalStatus::CompileFail;
    EXPECT_FALSE(table.publish("10", fail));
    EXPECT_EQ(table.size(), 0u);
    EXPECT_FALSE(table.lookup("10").has_value());
}

TEST(MemoTable, FingerprintChangeInvalidatesTheSegment)
{
    std::string path = freshPath("memo_invalidate.log");
    {
        MemoTable table(path, testFingerprint(4));
        table.publish("0101", passEval(2.0));
    }
    // Same file, different threshold: the stale entries must not be
    // consulted and the segment restarts.
    MemoFingerprint changed = testFingerprint(4);
    changed.threshold = 1e-3;
    MemoTable fresh(path, changed);
    EXPECT_TRUE(fresh.invalidated());
    EXPECT_EQ(fresh.size(), 0u);
    EXPECT_FALSE(fresh.lookup("0101").has_value());
}

TEST(MemoTable, KillMidAppendRecoversDurablePrefix)
{
    std::string path = freshPath("memo_kill.log");
    MemoFingerprint fp = testFingerprint(4);
    {
        MemoTable table(path, fp);
        table.publish("0001", passEval(1.1));
        table.publish("0010", passEval(1.2));
    }
    // A kill mid-append leaves a torn record at the tail.
    {
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << "00abcdef 0100 pass 0x1p-1";
    }
    MemoTable recovered(path, fp);
    EXPECT_GT(recovered.truncatedBytes(), 0u);
    EXPECT_EQ(recovered.size(), 2u);
    EXPECT_TRUE(recovered.lookup("0001").has_value());
    EXPECT_TRUE(recovered.lookup("0010").has_value());
    EXPECT_FALSE(recovered.lookup("0100").has_value());
    // And the table keeps working after recovery.
    EXPECT_TRUE(recovered.publish("0100", passEval(1.3)));
    MemoTable reopened(path, fp);
    EXPECT_EQ(reopened.size(), 3u);
}

TEST(MemoTable, ConcurrentPublishAndLookupAreSafe)
{
    // Runs under `ctest -L parallel` (TSan job): writers race on the
    // same keys while readers poll, exercising shard mutexes and the
    // append mutex together.
    std::string path = freshPath("memo_concurrent.log");
    MemoFingerprint fp = testFingerprint(8);
    MemoTable table(path, fp);

    constexpr int kThreads = 4;
    constexpr int kKeys = 64;
    std::atomic<int> published{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads * 2);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&table, &published, t] {
            for (int k = 0; k < kKeys; ++k) {
                Config cfg(8);
                for (int b = 0; b < 6; ++b)
                    cfg.set(static_cast<std::size_t>(b),
                            ((k >> b) & 1) != 0);
                double speedup = 1.0 + 0.01 * k + 0.0 * t;
                if (table.publish(cfg.toString(), passEval(speedup)))
                    ++published;
            }
        });
        threads.emplace_back([&table] {
            for (int k = 0; k < kKeys; ++k) {
                Config cfg(8);
                for (int b = 0; b < 6; ++b)
                    cfg.set(static_cast<std::size_t>(b),
                            ((k >> b) & 1) != 0);
                auto hit = table.lookup(cfg.toString());
                if (hit) {
                    EXPECT_EQ(hit->status, EvalStatus::Pass);
                }
            }
        });
    }
    for (auto& thread : threads)
        thread.join();

    // Exactly one writer won each key.
    EXPECT_EQ(published.load(), kKeys);
    EXPECT_EQ(table.size(), static_cast<std::size_t>(kKeys));
    MemoTable reopened(path, fp);
    EXPECT_EQ(reopened.size(), static_cast<std::size_t>(kKeys));
}

// --- SearchContext integration --------------------------------------

TEST(MemoSearch, WarmRerunExecutesNothing)
{
    std::string path = freshPath("memo_warm.log");
    MemoFingerprint fp = testFingerprint(4);
    CombinationalSearch cb;

    // Cold run: everything executes, everything is published.
    CountingProblem cold(4);
    SearchRunOptions run;
    run.fingerprint = fp;
    run.memo = std::make_shared<MemoTable>(path, fp);
    auto coldResult = runSearch(cold, cb, {100, 0.0}, run);
    EXPECT_EQ(coldResult.evaluated, 15u);
    EXPECT_EQ(coldResult.memoHits, 0u);
    EXPECT_EQ(cold.rawCalls_.load(), 15);

    // Warm run in a "new process": fresh problem, table reopened from
    // disk. Zero executions, all memo hits, identical answer.
    CountingProblem warm(4);
    SearchRunOptions rerun;
    rerun.fingerprint = fp;
    rerun.memo = std::make_shared<MemoTable>(path, fp);
    auto warmResult = runSearch(warm, cb, {100, 0.0}, rerun);
    EXPECT_EQ(warmResult.evaluated, 0u);
    EXPECT_EQ(warmResult.memoHits, 15u);
    EXPECT_EQ(warm.rawCalls_.load(), 0);
    EXPECT_EQ(warmResult.best, coldResult.best);
    EXPECT_DOUBLE_EQ(warmResult.bestEvaluation.speedup,
                     coldResult.bestEvaluation.speedup);
}

TEST(MemoSearch, WarmCacheDoesNotChangeCommittedTrajectory)
{
    // The warm context's evaluation cache must be byte-identical to
    // the cold one's: memo hits commit the same evaluations, only the
    // EV accounting differs.
    std::string path = freshPath("memo_trajectory.log");
    MemoFingerprint fp = testFingerprint(4);
    CombinationalSearch cb;

    auto exportRun = [&](std::shared_ptr<MemoTable> memo,
                         CountingProblem& problem) {
        SearchContext ctx(problem, {100, 0.0});
        ctx.setFingerprint(fp);
        if (memo)
            ctx.setMemo(memo);
        cb.run(ctx);
        return ctx.exportCache();
    };

    CountingProblem cold(4);
    Value coldCache =
        exportRun(std::make_shared<MemoTable>(path, fp), cold);
    CountingProblem warm(4);
    Value warmCache =
        exportRun(std::make_shared<MemoTable>(path, fp), warm);
    EXPECT_EQ(warm.rawCalls_.load(), 0);
    EXPECT_EQ(canonicalCache(warmCache), canonicalCache(coldCache));
}

TEST(MemoSearch, BatchEvaluationMixesMemoHitsAndFreshWork)
{
    std::string path = freshPath("memo_batch.log");
    MemoFingerprint fp = testFingerprint(4);
    auto memo = std::make_shared<MemoTable>(path, fp);
    memo->publish(Config::withLowered(4, {1}).toString(),
                  passEval(1.1));
    memo->publish(Config::withLowered(4, {2}).toString(),
                  passEval(1.1));

    CountingProblem problem(4);
    SearchContext ctx(problem, {100, 0.0});
    ctx.setFingerprint(fp);
    ctx.setMemo(memo);
    ctx.setSearchJobs(4);
    std::vector<Config> batch = {
        Config::withLowered(4, {1}),    // memo hit
        Config::withLowered(4, {2}),    // memo hit
        Config::withLowered(4, {3}),    // fresh
        Config::withLowered(4, {1}),    // in-batch duplicate of a hit
        Config::withLowered(4, {1, 2}), // fresh
    };
    ctx.evaluateBatch(batch);
    EXPECT_EQ(ctx.memoHitCount(), 2u);
    EXPECT_EQ(ctx.cacheHitCount(), 1u);
    EXPECT_EQ(ctx.evaluatedCount(), 2u);
    EXPECT_EQ(problem.rawCalls_.load(), 2);
    // The fresh work was published back for the next run.
    EXPECT_EQ(memo->size(), 4u);
}

TEST(MemoSearch, SeedFromCheckpointMigratesOldCampaigns)
{
    CountingProblem problem(4);
    SearchContext ctx(problem, {100, 0.0});
    ctx.evaluate(Config::withLowered(4, {1}));
    ctx.evaluate(Config::withLowered(4, {1, 2}));
    Value checkpoint = ctx.exportCache();

    std::string path = freshPath("memo_seed.log");
    MemoFingerprint fp = testFingerprint(4);
    MemoTable table(path, fp);
    EXPECT_EQ(table.seedFromCheckpoint(checkpoint), 2u);
    EXPECT_EQ(table.size(), 2u);
    // Re-seeding is idempotent.
    EXPECT_EQ(table.seedFromCheckpoint(checkpoint), 0u);

    // A checkpoint of a different problem shape publishes nothing.
    CountingProblem other(6);
    SearchContext otherCtx(other, {100, 0.0});
    otherCtx.evaluate(Config::withLowered(6, {0, 5}));
    EXPECT_EQ(table.seedFromCheckpoint(otherCtx.exportCache()), 0u);
}

TEST(MemoSearch, ImportCacheFeedsAttachedMemo)
{
    CountingProblem problem(4);
    SearchContext source(problem, {100, 0.0});
    source.evaluate(Config::withLowered(4, {2}));
    Value checkpoint = source.exportCache();

    std::string path = freshPath("memo_import.log");
    MemoFingerprint fp = testFingerprint(4);
    auto memo = std::make_shared<MemoTable>(path, fp);
    SearchContext restored(problem, {100, 0.0});
    restored.setFingerprint(fp);
    restored.setMemo(memo);
    restored.importCache(checkpoint);
    EXPECT_EQ(memo->size(), 1u);
}

// --- checkpoint fingerprint validation ------------------------------

TEST(MemoCheckpoint, MismatchedFingerprintIsRecoverablyRejected)
{
    CountingProblem problem(4);
    MemoFingerprint fp = testFingerprint(4);

    SearchContext source(problem, {100, 0.0});
    source.setFingerprint(fp);
    source.evaluate(Config::withLowered(4, {1}));
    Value checkpoint = source.exportCache();
    ASSERT_TRUE(checkpoint.has("fingerprint"));

    // Same shape, different threshold: rejected *recoverably*, before
    // anything lands in the cache.
    MemoFingerprint other = fp;
    other.threshold = 1e-2;
    SearchContext target(problem, {100, 0.0});
    target.setFingerprint(other);
    EXPECT_THROW(target.importCache(checkpoint), CheckpointMismatch);
    EXPECT_FALSE(target.isCached(Config::withLowered(4, {1})));

    // Matching fingerprints import normally.
    SearchContext match(problem, {100, 0.0});
    match.setFingerprint(fp);
    match.importCache(checkpoint);
    EXPECT_TRUE(match.isCached(Config::withLowered(4, {1})));

    // A site-count mismatch is still the fatal shape error.
    CountingProblem narrow(2);
    SearchContext shaped(narrow, {100, 0.0});
    shaped.setFingerprint(testFingerprint(2));
    EXPECT_THROW(shaped.importCache(checkpoint), FatalError);
}

TEST(MemoCheckpoint, RunSearchIgnoresStaleFingerprintCheckpoint)
{
    CountingProblem problem(4);
    MemoFingerprint fp = testFingerprint(4);
    SearchContext source(problem, {100, 0.0});
    source.setFingerprint(fp);
    source.evaluate(Config::withLowered(4, {1}));
    Value checkpoint = source.exportCache();

    // The driver treats the stale checkpoint like a missing one: the
    // search starts fresh instead of dying.
    MemoFingerprint other = fp;
    other.benchmark = "renamed";
    CombinationalSearch cb;
    SearchRunOptions run;
    run.fingerprint = other;
    run.initialCache = checkpoint;
    CountingProblem fresh(4);
    auto result = runSearch(fresh, cb, {100, 0.0}, run);
    EXPECT_FALSE(result.timedOut);
    EXPECT_EQ(result.evaluated, 15u);
    EXPECT_EQ(result.cacheHits, 0u);
}

// --- MemoStore -------------------------------------------------------

TEST(MemoStore, SharesOneTablePerFingerprint)
{
    std::string dir = freshDir("memo_store_share/");
    MemoStore store(dir);
    MemoFingerprint fp = testFingerprint(4);
    auto a = store.table(fp);
    auto b = store.table(fp);
    EXPECT_EQ(a.get(), b.get());

    MemoFingerprint other = testFingerprint(4);
    other.metric = "MSE";
    auto c = store.table(other);
    EXPECT_NE(a.get(), c.get());

    a->publish("0011", passEval(1.5));
    // A second store over the same directory sees the published entry.
    MemoStore reopened(dir);
    EXPECT_TRUE(reopened.table(fp)->lookup("0011").has_value());
    EXPECT_FALSE(reopened.table(other)->lookup("0011").has_value());
}

} // namespace
