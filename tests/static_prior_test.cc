/**
 * @file
 * StaticPrior semantics and its effect on every search strategy:
 * Off is trajectory-identical to a plain search, On never evaluates a
 * pinned site and seeds the GA, Strict rejects violating configs
 * without executing them, and the hierarchical traversal visits
 * high-score groups first.
 */

#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "search/driver.h"
#include "search/prior.h"
#include "search/strategy.h"
#include "support/logging.h"

namespace {

using namespace hpcmixp::search;

/** Deterministic problem that records every raw evaluation in order.
 *  Only safe for serial contexts (searchJobs == 1, the default). */
class RecordingProblem : public SearchProblem {
  public:
    using PassFn = std::function<bool(const Config&)>;

    RecordingProblem(std::size_t sites, PassFn pass)
        : sites_(sites), pass_(std::move(pass))
    {
    }

    void setStructure(StructureNode tree)
    {
        tree_ = std::move(tree);
        hasTree_ = true;
    }

    std::size_t siteCount() const override { return sites_; }

    Evaluation
    evaluate(const Config& config) override
    {
        evaluated_.push_back(config);
        Evaluation eval;
        eval.speedup = 1.0 + 0.1 * static_cast<double>(config.count());
        eval.runtimeSeconds = 1.0 / eval.speedup;
        if (pass_(config)) {
            eval.status = EvalStatus::Pass;
        } else {
            eval.status = EvalStatus::QualityFail;
            eval.qualityLoss = 1.0;
        }
        return eval;
    }

    const StructureNode* structure() const override
    {
        return hasTree_ ? &tree_ : nullptr;
    }

    const std::vector<Config>& evaluated() const { return evaluated_; }

  private:
    std::size_t sites_;
    PassFn pass_;
    StructureNode tree_;
    bool hasTree_ = false;
    std::vector<Config> evaluated_;
};

/** root -> two functions -> per-site leaves, over 4 sites. */
StructureNode
fourSiteTree()
{
    StructureNode root{"root", {0, 1, 2, 3}, {}};
    StructureNode fa{"fa", {0, 1}, {}};
    StructureNode fb{"fb", {2, 3}, {}};
    fa.children = {StructureNode{"a0", {0}, {}},
                   StructureNode{"a1", {1}, {}}};
    fb.children = {StructureNode{"b2", {2}, {}},
                   StructureNode{"b3", {3}, {}}};
    root.children = {std::move(fa), std::move(fb)};
    return root;
}

/** Site 2 is precision-sensitive; everything else lowers freely. */
bool
passUnlessSite2(const Config& c)
{
    return !c.test(2);
}

RecordingProblem
fourSiteProblem()
{
    RecordingProblem problem(4, passUnlessSite2);
    problem.setStructure(fourSiteTree());
    return problem;
}

/** The prior mixp-lint would derive: site 2 KeepDouble, 0/1 safe. */
StaticPrior
fourSitePrior(PriorMode mode)
{
    return StaticPrior(mode, {false, false, true, false},
                       {true, true, false, false}, {0, 0, 5, 2});
}

std::vector<std::string>
allCodes()
{
    return {"CB", "CM", "DD", "GA", "HR", "HC"};
}

// ---- StaticPrior unit behaviour ----------------------------------------

TEST(StaticPrior, DefaultIsAbsent)
{
    StaticPrior prior;
    EXPECT_FALSE(prior.enabled());
    EXPECT_FALSE(prior.strict());
    EXPECT_EQ(prior.siteCount(), 0u);
}

TEST(StaticPrior, AccessorsReflectTheVerdicts)
{
    StaticPrior prior(PriorMode::On, {false, true, false, false},
                      {true, false, false, false}, {1, 5, 0, 2});
    EXPECT_TRUE(prior.enabled());
    EXPECT_FALSE(prior.strict());
    EXPECT_EQ(prior.pinnedCount(), 1u);
    EXPECT_TRUE(prior.pinned(1));
    EXPECT_EQ(prior.freeSites(),
              (std::vector<std::size_t>{0, 2, 3}));
    EXPECT_EQ(prior.seedConfig(), Config::withLowered(4, {0}));
    EXPECT_TRUE(prior.violates(Config::withLowered(4, {1})));
    EXPECT_FALSE(prior.violates(Config::withLowered(4, {0, 2})));
    EXPECT_EQ(prior.clamped(Config::withLowered(4, {0, 1, 3})),
              Config::withLowered(4, {0, 3}));
    EXPECT_EQ(prior.groupScore({0, 3}), 3);
    EXPECT_EQ(prior.groupScore({}), 0);
}

TEST(StaticPrior, SeedNeverLowersAPinnedSite)
{
    // A contradictory verdict pair (pinned *and* narrow) resolves in
    // favour of the pin.
    StaticPrior prior(PriorMode::On, {true, false}, {true, true},
                      {5, 0});
    EXPECT_EQ(prior.seedConfig(), Config::withLowered(2, {1}));
}

TEST(StaticPrior, ModeNamesRoundTrip)
{
    for (PriorMode mode :
         {PriorMode::Off, PriorMode::On, PriorMode::Strict})
        EXPECT_EQ(parsePriorMode(priorModeName(mode)), mode);
}

TEST(StaticPrior, UnknownModeSpellingIsAUserError)
{
    EXPECT_THROW((void)parsePriorMode("auto"),
                 hpcmixp::support::FatalError);
}

// ---- Off mode: bit-identical trajectories ------------------------------

TEST(StaticPrior, OffModeIsTrajectoryIdenticalOnEveryStrategy)
{
    for (const std::string& code : allCodes()) {
        RecordingProblem plain = fourSiteProblem();
        SearchResult without =
            runSearch(plain, code, SearchBudget{10000, 0.0});

        RecordingProblem primed = fourSiteProblem();
        SearchRunOptions run;
        run.prior = fourSitePrior(PriorMode::Off);
        SearchResult with =
            runSearch(primed, code, SearchBudget{10000, 0.0}, run);

        EXPECT_EQ(plain.evaluated(), primed.evaluated())
            << code << ": Off prior changed the evaluation sequence";
        EXPECT_EQ(without.evaluated, with.evaluated) << code;
        EXPECT_EQ(without.best, with.best) << code;
    }
}

// ---- On mode: pruning, seeding, ordering -------------------------------

TEST(StaticPrior, OnModeNeverEvaluatesAPinnedSite)
{
    for (const std::string& code : allCodes()) {
        RecordingProblem problem = fourSiteProblem();
        SearchRunOptions run;
        run.prior = fourSitePrior(PriorMode::On);
        SearchResult result =
            runSearch(problem, code, SearchBudget{10000, 0.0}, run);

        for (const Config& cfg : problem.evaluated())
            EXPECT_FALSE(cfg.test(2))
                << code << " evaluated pinned site: " << cfg.toString();
        EXPECT_FALSE(result.best.test(2)) << code;
    }
}

TEST(StaticPrior, OnModeSeedsTheGeneticPopulation)
{
    RecordingProblem problem = fourSiteProblem();
    SearchRunOptions run;
    run.prior = fourSitePrior(PriorMode::On);
    runSearch(problem, "GA", SearchBudget{10000, 0.0}, run);

    Config seed = run.prior.seedConfig();
    bool found = false;
    for (const Config& cfg : problem.evaluated())
        found = found || cfg == seed;
    EXPECT_TRUE(found) << "GA never evaluated the SafeToNarrow seed";
}

TEST(StaticPrior, HierarchicalVisitsHighScoreGroupsFirst)
{
    // No pins — only the ordering signal. Root fails (it lowers the
    // sensitive site 2), so level two enumerates both functions; the
    // prior's scores put fb {2,3} (score 7) ahead of fa {0,1}.
    RecordingProblem problem = fourSiteProblem();
    SearchRunOptions run;
    run.prior = StaticPrior(PriorMode::On, {false, false, false, false},
                            {false, false, false, false}, {0, 0, 5, 2});
    runSearch(problem, "HR", SearchBudget{10000, 0.0}, run);

    const auto& seq = problem.evaluated();
    ASSERT_GE(seq.size(), 3u);
    EXPECT_EQ(seq[0], Config::withLowered(4, {0, 1, 2, 3}));
    EXPECT_EQ(seq[1], Config::withLowered(4, {2, 3}));
    EXPECT_EQ(seq[2], Config::withLowered(4, {0, 1}));
}

// ---- Strict mode -------------------------------------------------------

TEST(StaticPrior, StrictRejectsViolationsWithoutExecuting)
{
    RecordingProblem problem = fourSiteProblem();
    SearchContext ctx(problem, SearchBudget{10000, 0.0});
    ctx.setPrior(fourSitePrior(PriorMode::Strict));

    const Evaluation& eval =
        ctx.evaluate(Config::withLowered(4, {0, 2}));
    EXPECT_EQ(eval.status, EvalStatus::CompileFail);
    EXPECT_TRUE(problem.evaluated().empty())
        << "violating config must not reach the problem";
    EXPECT_EQ(ctx.evaluatedCount(), 0u);
    EXPECT_EQ(ctx.compileFailCount(), 1u);

    // Conforming configurations still execute normally.
    const Evaluation& ok = ctx.evaluate(Config::withLowered(4, {0}));
    EXPECT_TRUE(ok.passed());
    EXPECT_EQ(ctx.evaluatedCount(), 1u);
}

TEST(StaticPriorDeathTest, SiteCountMismatchPanics)
{
    RecordingProblem problem = fourSiteProblem();
    SearchContext ctx(problem, SearchBudget{10000, 0.0});
    EXPECT_DEATH(ctx.setPrior(StaticPrior(PriorMode::On, {false},
                                          {false}, {0})),
                 "site count");
}

} // namespace
