/**
 * @file
 * Sandbox-execution tests (DESIGN.md §13): fork containment of
 * genuinely crashing / hanging / SIGSEGVing configurations, real
 * kill-on-deadline, shared-memory result-arena integrity, fd/zombie
 * hygiene, memo-cache publication rules, and trajectory identity
 * between in-process and forked evaluation.
 *
 * Carries the `sandbox` ctest label (and not `parallel`: fork and
 * TSan do not mix).
 */

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/tuner.h"
#include "search/driver.h"
#include "search/fault.h"
#include "search/memo_store.h"
#include "support/logging.h"
#include "support/shm_arena.h"
#include "support/string_util.h"
#include "support/subprocess.h"
#include "support/timer.h"
#include "support/worker_pool.h"

namespace {

using namespace hpcmixp;
using search::Config;
using search::EvalStatus;
using support::ChildExit;
using support::ChildOutcome;
using support::IsolationMode;
using support::ShmArena;

// ---- runInFork ---------------------------------------------------------

TEST(RunInFork, CleanBodyExitsClean)
{
    ChildOutcome out = support::runInFork([] {}, 0.0);
    EXPECT_EQ(out.exit, ChildExit::Clean);
    EXPECT_EQ(out.detail, 0);
    EXPECT_GE(out.wallSeconds, 0.0);
}

TEST(RunInFork, NonzeroExitIsClassifiedWithCode)
{
    ChildOutcome out = support::runInFork([] { ::_exit(3); }, 0.0);
    EXPECT_EQ(out.exit, ChildExit::NonZeroExit);
    EXPECT_EQ(out.detail, 3);
}

TEST(RunInFork, ThrowingBodyUsesTheThrewExitCode)
{
    ChildOutcome out = support::runInFork(
        [] { throw std::runtime_error("boom"); }, 0.0);
    EXPECT_EQ(out.exit, ChildExit::NonZeroExit);
    EXPECT_EQ(out.detail, support::kChildBodyThrew);
}

TEST(RunInFork, AbortingBodyIsContained)
{
    ChildOutcome out = support::runInFork([] { std::abort(); }, 0.0);
    // Sanitizer runtimes may intercept the abort and _exit nonzero
    // instead; either way the death is contained and classified.
    EXPECT_TRUE(out.exit == ChildExit::Signaled ||
                out.exit == ChildExit::NonZeroExit)
        << support::childExitName(out.exit);
}

TEST(RunInFork, SegvIsContained)
{
    ChildOutcome out = support::runInFork(
        [] { search::executeRawFault(search::RawFault::Segv); }, 0.0);
    EXPECT_TRUE(out.exit == ChildExit::Signaled ||
                out.exit == ChildExit::NonZeroExit)
        << support::childExitName(out.exit);
}

TEST(RunInFork, GenuineSpinHangIsKilledOnDeadline)
{
    support::WallTimer timer;
    ChildOutcome out = support::runInFork(
        [] { search::executeRawFault(search::RawFault::Hang); }, 0.25);
    EXPECT_EQ(out.exit, ChildExit::KilledOnDeadline);
    EXPECT_GE(out.wallSeconds, 0.25);
    // The kill is prompt: nowhere near a blocking wait.
    EXPECT_LT(timer.seconds(), 10.0);
}

TEST(RunInFork, DeadlineWaitDoesNotBusyPoll)
{
    // The parent's deadline wait sleeps in ppoll() on a pidfd (or a
    // widely backed-off WNOHANG loop on ancient kernels) — waiting for
    // a slow child must not burn parent CPU.
    struct rusage before{}, after{};
    ASSERT_EQ(::getrusage(RUSAGE_SELF, &before), 0);
    ChildOutcome out = support::runInFork(
        [] {
            std::this_thread::sleep_for(std::chrono::milliseconds(350));
        },
        5.0);
    ASSERT_EQ(::getrusage(RUSAGE_SELF, &after), 0);
    EXPECT_EQ(out.exit, ChildExit::Clean);
    auto cpuSeconds = [](const rusage& r) {
        return r.ru_utime.tv_sec + r.ru_stime.tv_sec +
               (r.ru_utime.tv_usec + r.ru_stime.tv_usec) * 1e-6;
    };
    // The child slept 350ms; the parent's own CPU over the wait stays
    // far below that (generous bound for loaded CI machines).
    EXPECT_LT(cpuSeconds(after) - cpuSeconds(before), 0.1);
}

// ---- ShmArena ----------------------------------------------------------

TEST(ShmArenaTest, RoundTripsAPayload)
{
    ShmArena arena(64);
    EXPECT_EQ(arena.capacity(), 64u);
    EXPECT_FALSE(arena.committed());
    EXPECT_EQ(arena.payloadSize(), 0u);

    double values[4] = {1.0, -2.5, 3.25, 1e-300};
    arena.commit(values, sizeof values);
    EXPECT_TRUE(arena.committed());
    EXPECT_EQ(arena.payloadSize(), sizeof values);

    double back[4] = {};
    ASSERT_TRUE(arena.read(back, sizeof back));
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(back[i], values[i]);
}

TEST(ShmArenaTest, UncommittedArenaReadsFalse)
{
    ShmArena arena(16);
    double out = 0.0;
    EXPECT_FALSE(arena.read(&out, sizeof out));
}

TEST(ShmArenaTest, SizeMismatchReadsFalse)
{
    ShmArena arena(16);
    double v = 7.0;
    arena.commit(&v, sizeof v);
    float small = 0.0f;
    EXPECT_FALSE(arena.read(&small, sizeof small));
}

TEST(ShmArenaTest, TornPayloadFailsTheChecksum)
{
    ShmArena arena(32);
    double values[2] = {42.0, 43.0};
    arena.commit(values, sizeof values);
    ASSERT_TRUE(arena.committed());
    // Simulate a child dying mid-write after the state flip would
    // have been observed: flip one payload byte.
    static_cast<unsigned char*>(arena.payload())[3] ^= 0xff;
    EXPECT_FALSE(arena.committed());
    double back[2];
    EXPECT_FALSE(arena.read(back, sizeof back));
}

TEST(ShmArenaTest, ResetClearsACommit)
{
    ShmArena arena(8);
    double v = 1.0;
    arena.commit(&v, sizeof v);
    arena.reset();
    EXPECT_FALSE(arena.committed());
}

TEST(ShmArenaTest, ChildCommitIsVisibleAfterReap)
{
    ShmArena arena(sizeof(double));
    ChildOutcome out = support::runInFork(
        [&arena] {
            double v = 6.5;
            arena.commit(&v, sizeof v);
        },
        0.0);
    ASSERT_EQ(out.exit, ChildExit::Clean);
    double back = 0.0;
    ASSERT_TRUE(arena.read(&back, sizeof back));
    EXPECT_EQ(back, 6.5);
}

TEST(ShmArenaTest, KilledChildLeavesNoCommit)
{
    ShmArena arena(sizeof(double));
    ChildOutcome out = support::runInFork(
        [&arena] {
            search::executeRawFault(search::RawFault::Hang);
        },
        0.2);
    EXPECT_EQ(out.exit, ChildExit::KilledOnDeadline);
    EXPECT_FALSE(arena.committed());
}

// ---- Tuner-level sandbox ----------------------------------------------

/**
 * Two-cluster benchmark whose `data` cluster misbehaves on demand
 * when lowered; `aux` lowering perturbs the output past any sane
 * threshold (deterministic quality fail), so the only passing
 * improvement is data-only — which forces a timing-independent winner
 * for trajectory-identity checks.
 */
class RawHostileBenchmark final : public benchmarks::Benchmark {
  public:
    enum class Mode { Clean, Abort, Segv, Spin, Exit3, Throw };

    explicit RawHostileBenchmark(Mode mode)
        : mode_(mode), model_("rawhostile")
    {
        using namespace model;
        ModuleId m = model_.addModule("rawhostile.c");
        FunctionId f = model_.addFunction(m, "f");
        model_.addVariable(f, "data", realPointer(), "data");
        model_.addVariable(f, "aux", realPointer(), "aux");
    }

    std::string name() const override { return "rawhostile"; }
    std::string description() const override
    {
        return "sandbox containment benchmark";
    }
    bool isKernel() const override { return true; }

    const model::ProgramModel& programModel() const override
    {
        return model_;
    }

    benchmarks::RunOutput
    run(const benchmarks::PrecisionMap& pm) const override
    {
        bool dataLowered =
            pm.get("data") == runtime::Precision::Float32;
        bool auxLowered =
            pm.get("aux") == runtime::Precision::Float32;
        if (dataLowered) {
            switch (mode_) {
              case Mode::Abort:
                std::abort();
              case Mode::Segv:
                search::executeRawFault(search::RawFault::Segv);
                break;
              case Mode::Spin:
                search::executeRawFault(search::RawFault::Hang);
                break;
              case Mode::Exit3:
                ::_exit(3);
              case Mode::Throw:
                throw std::runtime_error("hostile throw");
              case Mode::Clean:
                break;
            }
        }
        benchmarks::RunOutput out;
        out.values.assign(64, 1.0);
        if (dataLowered)
            out.values[0] += 1e-9; // tiny, below threshold
        if (auxLowered)
            out.values[0] += 1.0; // deterministic quality fail
        return out;
    }

  private:
    Mode mode_;
    model::ProgramModel model_;
};

core::TunerOptions
sandboxOptions()
{
    core::TunerOptions opt;
    opt.metric = "MAE";
    opt.threshold = 1e-6;
    opt.searchReps = 1;
    opt.finalReps = 3;
    opt.budget = {200, 0.0};
    opt.isolation = IsolationMode::Fork;
    opt.resilience.maxAttempts = 2;
    opt.resilience.sleepBetweenRetries = false;
    return opt;
}

std::size_t
dataCluster(const core::BenchmarkTuner& tuner,
            const benchmarks::Benchmark& bench)
{
    return tuner.clusters().clusterOf(
        bench.programModel().findVariable("data"));
}

TEST(SandboxTuner, SegvIsContainedAndQuarantined)
{
    RawHostileBenchmark bench(RawHostileBenchmark::Mode::Segv);
    core::BenchmarkTuner tuner(bench, sandboxOptions());
    Config cfg(tuner.clusterCount());
    cfg.set(dataCluster(tuner, bench));

    auto eval = tuner.evaluateClusterConfig(cfg, 1);
    EXPECT_EQ(eval.status, EvalStatus::RuntimeFail);
    EXPECT_TRUE(std::isnan(eval.qualityLoss));
    EXPECT_FALSE(eval.memoizable);

    auto stats = tuner.sandboxStats();
    EXPECT_EQ(stats.forks, 1u);
    // ASan converts the SEGV into a nonzero exit; bare builds die by
    // signal. Both are containment.
    EXPECT_EQ(stats.signaled + stats.nonZeroExits, 1u);
}

TEST(SandboxTuner, AbortingCampaignCompletesWithValidWinner)
{
    RawHostileBenchmark bench(RawHostileBenchmark::Mode::Abort);
    core::BenchmarkTuner tuner(bench, sandboxOptions());
    auto outcome = tuner.tune("DD");

    // The crashing cluster is quarantined, the search finishes, and
    // the winner avoids it.
    EXPECT_GT(outcome.search.quarantined, 0u);
    EXPECT_FALSE(outcome.clusterConfig.test(dataCluster(tuner, bench)));
    EXPECT_LE(outcome.finalQualityLoss, 1e-6);
    auto stats = tuner.sandboxStats();
    EXPECT_GT(stats.signaled + stats.nonZeroExits, 0u);
}

TEST(SandboxTuner, NonzeroExitQuarantines)
{
    RawHostileBenchmark bench(RawHostileBenchmark::Mode::Exit3);
    core::BenchmarkTuner tuner(bench, sandboxOptions());
    auto outcome = tuner.tune("DD");

    EXPECT_GT(outcome.search.quarantined, 0u);
    EXPECT_FALSE(outcome.clusterConfig.test(dataCluster(tuner, bench)));
    auto stats = tuner.sandboxStats();
    EXPECT_GT(stats.nonZeroExits, 0u);
    EXPECT_EQ(stats.killedOnDeadline, 0u);
}

TEST(SandboxTuner, GenuineHangIsKilledOnDeadline)
{
    RawHostileBenchmark bench(RawHostileBenchmark::Mode::Spin);
    core::TunerOptions opt = sandboxOptions();
    opt.resilience.deadlineSeconds = 0.25;
    core::BenchmarkTuner tuner(bench, opt);
    auto outcome = tuner.tune("DD");

    // The spin-looping configuration genuinely hung children; the
    // parent killed and reaped each attempt, counted the misses, and
    // the campaign still produced a quality-clean winner.
    EXPECT_GT(outcome.search.deadlineMisses, 0u);
    EXPECT_GT(outcome.search.quarantined, 0u);
    EXPECT_FALSE(outcome.clusterConfig.test(dataCluster(tuner, bench)));
    EXPECT_LE(outcome.finalQualityLoss, 1e-6);
    auto stats = tuner.sandboxStats();
    EXPECT_GT(stats.killedOnDeadline, 0u);
    EXPECT_EQ(stats.killedOnDeadline, outcome.search.deadlineMisses);
}

TEST(SandboxTuner, ThrowMatchesInProcessClassification)
{
    RawHostileBenchmark bench(RawHostileBenchmark::Mode::Throw);
    core::BenchmarkTuner tuner(bench, sandboxOptions());
    Config cfg(tuner.clusterCount());
    cfg.set(dataCluster(tuner, bench));

    auto eval = tuner.evaluateClusterConfig(cfg, 1);
    // A contained C++ exception classifies exactly like the
    // in-process catch: RuntimeFail, NaN loss — and stays memoizable.
    EXPECT_EQ(eval.status, EvalStatus::RuntimeFail);
    EXPECT_TRUE(std::isnan(eval.qualityLoss));
    EXPECT_TRUE(eval.memoizable);
    EXPECT_EQ(tuner.sandboxStats().nonZeroExits, 1u);
}

TEST(SandboxTuner, CrashLoopCutoffStopsForking)
{
    RawHostileBenchmark bench(RawHostileBenchmark::Mode::Abort);
    core::TunerOptions opt = sandboxOptions();
    opt.isolationMaxCrashes = 3;
    core::BenchmarkTuner tuner(bench, opt);

    Config toxic(tuner.clusterCount());
    toxic.set(dataCluster(tuner, bench));
    for (int i = 0; i < 10; ++i) {
        auto eval = tuner.evaluateClusterConfig(toxic, 1);
        EXPECT_EQ(eval.status, EvalStatus::RuntimeFail);
    }
    auto stats = tuner.sandboxStats();
    EXPECT_EQ(stats.forks, 3u);
    EXPECT_EQ(stats.crashedChildren(), 3u);
    EXPECT_EQ(stats.fastFailed, 7u);
}

/** /proc/self/fd entry count (excluding the iteration itself is not
 *  needed: both samples are taken the same way). */
std::size_t
openFdCount()
{
    std::size_t n = 0;
    for ([[maybe_unused]] const auto& e :
         std::filesystem::directory_iterator("/proc/self/fd"))
        ++n;
    return n;
}

TEST(SandboxTuner, HundredEvalsLeakNoFdsOrZombies)
{
    RawHostileBenchmark bench(RawHostileBenchmark::Mode::Exit3);
    core::BenchmarkTuner tuner(bench, sandboxOptions());
    Config clean(tuner.clusterCount());
    Config toxic(tuner.clusterCount());
    toxic.set(dataCluster(tuner, bench));

    const std::size_t before = openFdCount();
    for (int i = 0; i < 50; ++i) {
        (void)tuner.evaluateClusterConfig(clean, 1);
        (void)tuner.evaluateClusterConfig(toxic, 1);
    }
    EXPECT_EQ(openFdCount(), before);
    EXPECT_EQ(tuner.sandboxStats().forks, 100u);

    // Every child was reaped: no zombies left for anyone to collect.
    int status = 0;
    pid_t reaped = ::waitpid(-1, &status, WNOHANG);
    EXPECT_EQ(reaped, -1);
    EXPECT_EQ(errno, ECHILD);
}

/** Shared scratch for trajectory comparisons: the per-config cache
 *  snapshot reduced to its timing-independent fields. */
std::set<std::string>
cacheSnapshot(const support::json::Value& cache)
{
    std::set<std::string> entries;
    for (const auto& e : cache.at("evaluations").items()) {
        double loss = e.at("quality_loss").isNull()
                          ? -1.0
                          : e.at("quality_loss").asNumber();
        entries.insert(support::strCat(e.at("config").asString(), "|",
                                       e.at("status").asString(), "|",
                                       loss));
    }
    return entries;
}

TEST(SandboxTuner, ForkAndInProcessAreTrajectoryIdentical)
{
    auto campaign = [](IsolationMode isolation,
                       support::json::Value& cache) {
        RawHostileBenchmark bench(RawHostileBenchmark::Mode::Clean);
        core::TunerOptions opt = sandboxOptions();
        opt.isolation = isolation;
        opt.checkpointEvery = 1;
        opt.checkpointSink = [&cache](const support::json::Value& v) {
            cache = v;
        };
        core::BenchmarkTuner tuner(bench, opt);
        return tuner.tune("DD");
    };

    support::json::Value forkCache, inprocCache;
    auto forked = campaign(IsolationMode::Fork, forkCache);
    auto inproc = campaign(IsolationMode::None, inprocCache);

    // Same EV, same winner, same cache contents (configs, statuses,
    // quality losses — bit-identical arithmetic either side of the
    // fork). Speedups are wall-clock and excluded by construction.
    EXPECT_EQ(forked.search.evaluated, inproc.search.evaluated);
    EXPECT_EQ(forked.search.cacheHits, inproc.search.cacheHits);
    EXPECT_EQ(forked.search.compileFailures,
              inproc.search.compileFailures);
    EXPECT_EQ(forked.clusterConfig, inproc.clusterConfig);
    EXPECT_EQ(forked.search.best, inproc.search.best);
    EXPECT_DOUBLE_EQ(forked.finalQualityLoss, inproc.finalQualityLoss);
    EXPECT_EQ(cacheSnapshot(forkCache), cacheSnapshot(inprocCache));

    // And the sandbox really ran: every evaluation forked cleanly.
    // (No assertion on spawn overhead magnitude — CI machines vary.)
    support::json::Value cache;
    RawHostileBenchmark bench(RawHostileBenchmark::Mode::Clean);
    core::BenchmarkTuner tuner(bench, sandboxOptions());
    (void)tuner.evaluateClusterConfig(Config(tuner.clusterCount()), 1);
    EXPECT_EQ(tuner.sandboxStats().cleanExits, 1u);
}

TEST(SandboxTuner, BatchParallelForkMatchesSerialFork)
{
    auto campaign = [](std::size_t jobs) {
        RawHostileBenchmark bench(RawHostileBenchmark::Mode::Clean);
        core::TunerOptions opt = sandboxOptions();
        opt.searchJobs = jobs;
        core::BenchmarkTuner tuner(bench, opt);
        return tuner.tune("DD");
    };
    auto serial = campaign(1);
    auto parallel = campaign(4);
    EXPECT_EQ(parallel.search.evaluated, serial.search.evaluated);
    EXPECT_EQ(parallel.search.best, serial.search.best);
    EXPECT_EQ(parallel.clusterConfig, serial.clusterConfig);
}

// ---- WorkerPool --------------------------------------------------------

/** Echo-or-misbehave handler: doubles the int job; negative jobs
 *  throw, kMagicExit _exit()s, kMagicSpin spins forever. */
constexpr int kMagicExit = 1000001;
constexpr int kMagicSpin = 1000002;

support::WorkerPool::Handler
hostileHandler()
{
    return [](const void* job, std::size_t jobSize, void* result,
              std::size_t resultCapacity) -> std::size_t {
        int v = 0;
        EXPECT_EQ(jobSize, sizeof v);
        EXPECT_GE(resultCapacity, sizeof v);
        std::memcpy(&v, job, sizeof v);
        if (v < 0)
            throw std::runtime_error("hostile job");
        if (v == kMagicExit)
            ::_exit(5);
        if (v == kMagicSpin)
            search::executeRawFault(search::RawFault::Hang);
        v *= 2;
        std::memcpy(result, &v, sizeof v);
        return sizeof v;
    };
}

support::PoolOutcome
runInt(support::WorkerPool& pool, int job, int& result,
       double deadline = 0.0)
{
    return pool.run(&job, sizeof job, &result, sizeof result, deadline);
}

TEST(WorkerPoolTest, DispatchesJobsToPersistentWorkers)
{
    support::WorkerPool pool(2, sizeof(int), sizeof(int),
                             hostileHandler());
    for (int i = 1; i <= 10; ++i) {
        int result = 0;
        support::PoolOutcome out = runInt(pool, i, result);
        EXPECT_EQ(out.exit, ChildExit::Clean);
        ASSERT_TRUE(out.resultValid);
        EXPECT_EQ(result, 2 * i);
        EXPECT_GE(out.wallSeconds, 0.0);
    }
    support::WorkerPoolStats stats = pool.stats();
    // Ten jobs, two forks: the whole point of the pool.
    EXPECT_EQ(stats.forks, 2u);
    EXPECT_EQ(stats.dispatched, 10u);
    EXPECT_EQ(stats.respawns, 0u);
}

TEST(WorkerPoolTest, ThrowingHandlerIsContainedInWorker)
{
    support::WorkerPool pool(1, sizeof(int), sizeof(int),
                             hostileHandler());
    int result = 0;
    support::PoolOutcome out = runInt(pool, -1, result);
    EXPECT_EQ(out.exit, ChildExit::NonZeroExit);
    EXPECT_EQ(out.detail, support::kChildBodyThrew);
    EXPECT_FALSE(out.resultValid);

    // The worker contained the exception and kept serving: the next
    // job runs on the same child, no re-fork.
    out = runInt(pool, 21, result);
    EXPECT_EQ(out.exit, ChildExit::Clean);
    EXPECT_EQ(result, 42);
    EXPECT_EQ(pool.stats().forks, 1u);
    EXPECT_EQ(pool.stats().respawns, 0u);
}

TEST(WorkerPoolTest, DyingWorkerIsReapedClassifiedAndReforked)
{
    support::WorkerPool pool(1, sizeof(int), sizeof(int),
                             hostileHandler());
    int result = 0;
    support::PoolOutcome out = runInt(pool, kMagicExit, result);
    EXPECT_EQ(out.exit, ChildExit::NonZeroExit);
    EXPECT_EQ(out.detail, 5);
    EXPECT_FALSE(out.resultValid);

    // The corpse was reaped and a fresh worker forked onto the same
    // rings and doorbells.
    out = runInt(pool, 4, result);
    EXPECT_EQ(out.exit, ChildExit::Clean);
    EXPECT_EQ(result, 8);
    EXPECT_EQ(pool.stats().forks, 2u);
    EXPECT_EQ(pool.stats().respawns, 1u);
}

TEST(WorkerPoolTest, SpinningHandlerIsKilledOnDeadline)
{
    support::WorkerPool pool(1, sizeof(int), sizeof(int),
                             hostileHandler());
    int result = 0;
    support::WallTimer timer;
    support::PoolOutcome out = runInt(pool, kMagicSpin, result, 0.25);
    EXPECT_EQ(out.exit, ChildExit::KilledOnDeadline);
    EXPECT_EQ(out.detail, SIGKILL);
    EXPECT_GE(out.wallSeconds, 0.25);
    EXPECT_LT(timer.seconds(), 10.0);

    out = runInt(pool, 3, result);
    EXPECT_EQ(out.exit, ChildExit::Clean);
    EXPECT_EQ(result, 6);
    EXPECT_EQ(pool.stats().respawns, 1u);
}

TEST(WorkerPoolTest, SigkilledIdleWorkerIsDetectedOnNextDispatch)
{
    support::WorkerPool pool(1, sizeof(int), sizeof(int),
                             hostileHandler());
    int result = 0;
    ASSERT_EQ(runInt(pool, 1, result).exit, ChildExit::Clean);

    std::vector<pid_t> pids = pool.workerPids();
    ASSERT_EQ(pids.size(), 1u);
    ASSERT_GT(pids[0], 0);
    ASSERT_EQ(::kill(pids[0], SIGKILL), 0);

    // The next dispatch lands on the corpse, classifies the death and
    // re-forks; the one after runs on the replacement.
    support::PoolOutcome out = runInt(pool, 2, result);
    EXPECT_EQ(out.exit, ChildExit::Signaled);
    EXPECT_EQ(out.detail, SIGKILL);
    out = runInt(pool, 5, result);
    EXPECT_EQ(out.exit, ChildExit::Clean);
    EXPECT_EQ(result, 10);
    EXPECT_EQ(pool.stats().respawns, 1u);
    EXPECT_NE(pool.workerPids()[0], pids[0]);
}

TEST(WorkerPoolTest, PoolLifecycleLeaksNoFdsOrZombies)
{
    const std::size_t before = openFdCount();
    {
        support::WorkerPool pool(3, sizeof(int), sizeof(int),
                                 hostileHandler());
        EXPECT_GT(openFdCount(), before); // rings + doorbells live
        int result = 0;
        for (int i = 0; i < 6; ++i)
            EXPECT_EQ(runInt(pool, i + 1, result).exit,
                      ChildExit::Clean);
        (void)runInt(pool, kMagicExit, result); // force one respawn
    }
    // Destruction stops the workers, reaps every child and closes
    // every descriptor.
    EXPECT_EQ(openFdCount(), before);
    int status = 0;
    EXPECT_EQ(::waitpid(-1, &status, WNOHANG), -1);
    EXPECT_EQ(errno, ECHILD);
}

// ---- Tuner-level pool isolation ----------------------------------------

core::TunerOptions
poolOptions()
{
    core::TunerOptions opt = sandboxOptions();
    opt.isolation = IsolationMode::Pool;
    return opt;
}

TEST(PoolTuner, SegvIsContainedAndWorkerRespawned)
{
    RawHostileBenchmark bench(RawHostileBenchmark::Mode::Segv);
    core::BenchmarkTuner tuner(bench, poolOptions());
    Config cfg(tuner.clusterCount());
    cfg.set(dataCluster(tuner, bench));

    auto eval = tuner.evaluateClusterConfig(cfg, 1);
    EXPECT_EQ(eval.status, EvalStatus::RuntimeFail);
    EXPECT_TRUE(std::isnan(eval.qualityLoss));
    EXPECT_FALSE(eval.memoizable);

    auto stats = tuner.sandboxStats();
    EXPECT_EQ(stats.signaled + stats.nonZeroExits, 1u);
    EXPECT_EQ(stats.workerRespawns, 1u);
    EXPECT_EQ(stats.poolDispatches, 1u);
}

TEST(PoolTuner, AbortingCampaignCompletesWithValidWinner)
{
    RawHostileBenchmark bench(RawHostileBenchmark::Mode::Abort);
    core::BenchmarkTuner tuner(bench, poolOptions());
    auto outcome = tuner.tune("DD");

    EXPECT_GT(outcome.search.quarantined, 0u);
    EXPECT_FALSE(outcome.clusterConfig.test(dataCluster(tuner, bench)));
    EXPECT_LE(outcome.finalQualityLoss, 1e-6);
    auto stats = tuner.sandboxStats();
    EXPECT_GT(stats.signaled + stats.nonZeroExits, 0u);
    EXPECT_GT(stats.workerRespawns, 0u);
}

TEST(PoolTuner, GenuineHangIsKilledOnDeadline)
{
    RawHostileBenchmark bench(RawHostileBenchmark::Mode::Spin);
    core::TunerOptions opt = poolOptions();
    opt.resilience.deadlineSeconds = 0.25;
    core::BenchmarkTuner tuner(bench, opt);
    auto outcome = tuner.tune("DD");

    EXPECT_GT(outcome.search.deadlineMisses, 0u);
    EXPECT_GT(outcome.search.quarantined, 0u);
    EXPECT_FALSE(outcome.clusterConfig.test(dataCluster(tuner, bench)));
    EXPECT_LE(outcome.finalQualityLoss, 1e-6);
    auto stats = tuner.sandboxStats();
    EXPECT_GT(stats.killedOnDeadline, 0u);
    EXPECT_EQ(stats.killedOnDeadline, outcome.search.deadlineMisses);
}

TEST(PoolTuner, ThrowIsContainedWithoutKillingTheWorker)
{
    RawHostileBenchmark bench(RawHostileBenchmark::Mode::Throw);
    core::BenchmarkTuner tuner(bench, poolOptions());
    Config cfg(tuner.clusterCount());
    cfg.set(dataCluster(tuner, bench));

    auto eval = tuner.evaluateClusterConfig(cfg, 1);
    EXPECT_EQ(eval.status, EvalStatus::RuntimeFail);
    EXPECT_TRUE(std::isnan(eval.qualityLoss));
    EXPECT_TRUE(eval.memoizable);
    auto stats = tuner.sandboxStats();
    EXPECT_EQ(stats.nonZeroExits, 1u);
    EXPECT_EQ(stats.workerRespawns, 0u);
}

TEST(PoolTuner, TwoHundredEvalsLeakNoFdsOrZombies)
{
    const std::size_t preTuner = openFdCount();
    {
        RawHostileBenchmark bench(RawHostileBenchmark::Mode::Exit3);
        core::BenchmarkTuner tuner(bench, poolOptions());
        Config clean(tuner.clusterCount());
        Config toxic(tuner.clusterCount());
        toxic.set(dataCluster(tuner, bench));

        // The pool's rings and doorbells are paid once, up front; the
        // fd count stays campaign-constant across 200 dispatches even
        // though half of them kill the worker and force a re-fork.
        const std::size_t during = openFdCount();
        EXPECT_GT(during, preTuner);
        for (int i = 0; i < 100; ++i) {
            (void)tuner.evaluateClusterConfig(clean, 1);
            (void)tuner.evaluateClusterConfig(toxic, 1);
        }
        EXPECT_EQ(openFdCount(), during);
        auto stats = tuner.sandboxStats();
        EXPECT_EQ(stats.poolDispatches, 200u);
        EXPECT_EQ(stats.workerRespawns, 100u);
        EXPECT_EQ(stats.cleanExits, 100u);
        EXPECT_EQ(stats.nonZeroExits, 100u);
    }
    // Tuner gone: descriptors returned, every child reaped.
    EXPECT_EQ(openFdCount(), preTuner);
    int status = 0;
    EXPECT_EQ(::waitpid(-1, &status, WNOHANG), -1);
    EXPECT_EQ(errno, ECHILD);
}

TEST(PoolTuner, PoolAndForkAreTrajectoryIdentical)
{
    auto campaign = [](IsolationMode isolation,
                       support::json::Value& cache) {
        RawHostileBenchmark bench(RawHostileBenchmark::Mode::Clean);
        core::TunerOptions opt = sandboxOptions();
        opt.isolation = isolation;
        opt.checkpointEvery = 1;
        opt.checkpointSink = [&cache](const support::json::Value& v) {
            cache = v;
        };
        core::BenchmarkTuner tuner(bench, opt);
        return tuner.tune("DD");
    };

    support::json::Value poolCache, forkCache;
    auto pooled = campaign(IsolationMode::Pool, poolCache);
    auto forked = campaign(IsolationMode::Fork, forkCache);

    // Bit-identical trajectories: the pool path publishes the same
    // evaluations (configs, statuses, losses) the per-attempt fork
    // path does, so the search walks the same line.
    EXPECT_EQ(pooled.search.evaluated, forked.search.evaluated);
    EXPECT_EQ(pooled.search.cacheHits, forked.search.cacheHits);
    EXPECT_EQ(pooled.search.compileFailures,
              forked.search.compileFailures);
    EXPECT_EQ(pooled.clusterConfig, forked.clusterConfig);
    EXPECT_EQ(pooled.search.best, forked.search.best);
    EXPECT_DOUBLE_EQ(pooled.finalQualityLoss, forked.finalQualityLoss);
    EXPECT_EQ(cacheSnapshot(poolCache), cacheSnapshot(forkCache));
}

TEST(PoolTuner, SurvivesMidCampaignWorkerSigkill)
{
    auto forkCampaign = [] {
        RawHostileBenchmark bench(RawHostileBenchmark::Mode::Clean);
        core::BenchmarkTuner tuner(bench, sandboxOptions());
        return tuner.tune("DD");
    };
    auto forked = forkCampaign();

    RawHostileBenchmark bench(RawHostileBenchmark::Mode::Clean);
    core::BenchmarkTuner tuner(bench, poolOptions());
    std::vector<pid_t> pids = tuner.poolWorkerPids();
    ASSERT_FALSE(pids.empty());
    ASSERT_GT(pids[0], 0);
    ASSERT_EQ(::kill(pids[0], SIGKILL), 0);

    auto pooled = tuner.tune("DD");

    // The murdered worker costs exactly one classified failure, which
    // the resilience layer retries on the re-forked replacement — the
    // campaign's trajectory is otherwise identical to fork isolation.
    EXPECT_EQ(pooled.search.evaluated, forked.search.evaluated);
    EXPECT_EQ(pooled.search.cacheHits, forked.search.cacheHits);
    EXPECT_EQ(pooled.clusterConfig, forked.clusterConfig);
    EXPECT_EQ(pooled.search.best, forked.search.best);
    EXPECT_EQ(pooled.search.retries, forked.search.retries + 1);
    EXPECT_EQ(pooled.search.quarantined, forked.search.quarantined);
    auto stats = tuner.sandboxStats();
    EXPECT_GE(stats.workerRespawns, 1u);
    EXPECT_EQ(stats.signaled, 1u);
}

TEST(PoolTuner, CrashLoopCutoffStopsDispatching)
{
    RawHostileBenchmark bench(RawHostileBenchmark::Mode::Abort);
    core::TunerOptions opt = poolOptions();
    opt.isolationMaxCrashes = 3;
    core::BenchmarkTuner tuner(bench, opt);

    Config toxic(tuner.clusterCount());
    toxic.set(dataCluster(tuner, bench));
    for (int i = 0; i < 10; ++i) {
        auto eval = tuner.evaluateClusterConfig(toxic, 1);
        EXPECT_EQ(eval.status, EvalStatus::RuntimeFail);
    }
    auto stats = tuner.sandboxStats();
    EXPECT_EQ(stats.poolDispatches, 3u);
    EXPECT_EQ(stats.crashedChildren(), 3u);
    EXPECT_EQ(stats.fastFailed, 7u);
}

// ---- Memo-cache publication rules -------------------------------------

class TempDir {
  public:
    explicit TempDir(const std::string& tag)
        : path_(std::filesystem::temp_directory_path() /
                (tag + std::to_string(::getpid())))
    {
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }
    std::string string() const { return path_.string(); }

  private:
    std::filesystem::path path_;
};

TEST(SandboxMemo, PublishesOnlyCleanChildResults)
{
    TempDir dir("hpcmixp_sandbox_memo_");
    RawHostileBenchmark bench(RawHostileBenchmark::Mode::Segv);
    core::TunerOptions opt = sandboxOptions();
    opt.memoStore = std::make_shared<search::MemoStore>(dir.string());
    core::BenchmarkTuner tuner(bench, opt);
    auto outcome = tuner.tune("DD");
    EXPECT_GT(outcome.search.quarantined, 0u);

    auto table = opt.memoStore->table(
        tuner.fingerprint(search::Granularity::Cluster));
    auto entries = table->entries();
    EXPECT_GT(entries.size(), 0u);
    std::string toxicKey;
    {
        Config toxic(tuner.clusterCount());
        toxic.set(dataCluster(tuner, bench));
        toxicKey = toxic.toString();
    }
    for (const auto& [key, eval] : entries) {
        // Crashed children never reach the memo: every published
        // entry is a clean (ran-and-verified) result, and the
        // SIGSEGVing configuration in particular is absent even
        // though the search quarantined (and cached) it in-run.
        EXPECT_NE(eval.status, EvalStatus::RuntimeFail) << key;
        EXPECT_NE(key, toxicKey);
    }
}

// ---- Raw fault injection legality -------------------------------------

TEST(RawFaults, RejectedWithoutSandboxAsRecoverableError)
{
    search::FaultPlan plan;
    plan.rawCrashRate = 0.5;
    ASSERT_FALSE(plan.sandboxed);
    RawHostileBenchmark bench(RawHostileBenchmark::Mode::Clean);
    core::TunerOptions opt = sandboxOptions();
    opt.isolation = IsolationMode::None;
    opt.faultPlan = plan;
    EXPECT_THROW(core::BenchmarkTuner(bench, opt),
                 support::FatalError);
}

TEST(RawFaults, RawHangWithoutDeadlineIsRejected)
{
    RawHostileBenchmark bench(RawHostileBenchmark::Mode::Clean);
    core::TunerOptions opt = sandboxOptions();
    opt.faultPlan.rawHangRate = 0.5;
    opt.resilience.deadlineSeconds = 0.0;
    EXPECT_THROW(core::BenchmarkTuner(bench, opt),
                 support::FatalError);
}

TEST(RawFaults, InjectedCrashesAreContainedDeterministically)
{
    auto countersFor = [](std::uint64_t seed) {
        RawHostileBenchmark bench(RawHostileBenchmark::Mode::Clean);
        core::TunerOptions opt = sandboxOptions();
        opt.faultPlan.rawCrashRate = 0.4;
        opt.faultPlan.seed = seed;
        core::BenchmarkTuner tuner(bench, opt);
        auto outcome = tuner.tune("DD");
        return std::make_tuple(outcome.search.evaluated,
                               outcome.search.retries,
                               outcome.search.quarantined,
                               tuner.sandboxStats().signaled +
                                   tuner.sandboxStats().nonZeroExits);
    };
    auto a = countersFor(99);
    auto b = countersFor(99);
    EXPECT_EQ(a, b);
    EXPECT_GT(std::get<3>(a), 0u);
}

/**
 * The satellite property test: with the same seed and a single
 * nonzero rate r, `hangRate = r` (simulated in-process stall) and
 * `rawHangRate = r` (genuine spin loop killed by the parent) fire on
 * exactly the same (configuration, attempt) draws — so the campaign
 * counters (EV, deadline misses, retries as the backoff input,
 * quarantines) must be identical between isolation modes.
 */
TEST(RawFaults, SimulatedAndForkedHangCountersMatch)
{
    struct Counters {
        std::size_t evaluated, deadlineMisses, retries, quarantined;
        bool operator==(const Counters&) const = default;
    };
    auto campaign = [](bool forked) {
        RawHostileBenchmark bench(RawHostileBenchmark::Mode::Clean);
        core::TunerOptions opt = sandboxOptions();
        opt.resilience.deadlineSeconds = 0.2;
        opt.faultPlan.seed = 77;
        if (forked) {
            opt.isolation = IsolationMode::Fork;
            opt.faultPlan.rawHangRate = 0.6;
        } else {
            opt.isolation = IsolationMode::None;
            opt.faultPlan.hangRate = 0.6;
            opt.faultPlan.hangSeconds = 0.4; // well past the deadline
        }
        core::BenchmarkTuner tuner(bench, opt);
        auto outcome = tuner.tune("DD");
        return Counters{outcome.search.evaluated,
                        outcome.search.deadlineMisses,
                        outcome.search.retries,
                        outcome.search.quarantined};
    };
    Counters simulated = campaign(false);
    Counters forked = campaign(true);
    EXPECT_GT(simulated.deadlineMisses, 0u);
    EXPECT_EQ(forked, simulated);
}

} // namespace
