/**
 * @file
 * Property-based tests for the verification metrics over randomized
 * vectors: mathematical identities and orderings that must hold for
 * any input.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "support/rng.h"
#include "verify/metrics.h"

namespace {

using namespace hpcmixp::verify;
using hpcmixp::support::Pcg32;

struct Vectors {
    std::vector<double> ref;
    std::vector<double> test;
};

Vectors
randomVectors(std::uint64_t seed, std::size_t n)
{
    Pcg32 rng(seed);
    Vectors v;
    v.ref.resize(n);
    v.test.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        v.ref[i] = rng.uniform(-10.0, 10.0);
        v.test[i] = v.ref[i] + rng.uniform(-0.5, 0.5);
    }
    return v;
}

class MetricProperty : public ::testing::TestWithParam<std::uint64_t> {
  protected:
    Vectors v_ = randomVectors(GetParam(), 257);
};

TEST_P(MetricProperty, IdentityGivesZeroLoss)
{
    auto& reg = MetricRegistry::instance();
    for (const char* name : {"MAE", "MSE", "RMSE", "R2", "MCR"}) {
        const Metric& m = reg.get(name);
        EXPECT_NEAR(m.loss(v_.ref, v_.ref), 0.0, 1e-12) << name;
    }
}

TEST_P(MetricProperty, RmseDominatesMae)
{
    MeanAbsoluteError mae;
    RootMeanSquareError rmse;
    EXPECT_GE(rmse.compute(v_.ref, v_.test) + 1e-15,
              mae.compute(v_.ref, v_.test));
}

TEST_P(MetricProperty, RmseSquaredIsMse)
{
    MeanSquareError mse;
    RootMeanSquareError rmse;
    double r = rmse.compute(v_.ref, v_.test);
    EXPECT_NEAR(r * r, mse.compute(v_.ref, v_.test),
                1e-12 * (1.0 + r * r));
}

TEST_P(MetricProperty, R2NeverExceedsOne)
{
    CoefficientOfDetermination r2;
    EXPECT_LE(r2.compute(v_.ref, v_.test), 1.0 + 1e-12);
    EXPECT_GE(r2.loss(v_.ref, v_.test), -1e-12);
}

TEST_P(MetricProperty, McrIsAProperFraction)
{
    MisclassificationRate mcr;
    double v = mcr.compute(v_.ref, v_.test);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
}

TEST_P(MetricProperty, MaeIsSymmetricInDifferenceSign)
{
    MeanAbsoluteError mae;
    std::vector<double> flipped(v_.ref.size());
    for (std::size_t i = 0; i < v_.ref.size(); ++i)
        flipped[i] = 2.0 * v_.ref[i] - v_.test[i]; // mirror around ref
    EXPECT_NEAR(mae.compute(v_.ref, v_.test),
                mae.compute(v_.ref, flipped), 1e-12);
}

TEST_P(MetricProperty, MaeScalesLinearly)
{
    MeanAbsoluteError mae;
    std::vector<double> ref2(v_.ref.size());
    std::vector<double> test2(v_.test.size());
    for (std::size_t i = 0; i < v_.ref.size(); ++i) {
        ref2[i] = 3.0 * v_.ref[i];
        test2[i] = 3.0 * v_.test[i];
    }
    EXPECT_NEAR(mae.compute(ref2, test2),
                3.0 * mae.compute(v_.ref, v_.test), 1e-9);
}

TEST_P(MetricProperty, WorseningOnePointNeverImprovesMae)
{
    MeanAbsoluteError mae;
    double before = mae.compute(v_.ref, v_.test);
    std::vector<double> worse = v_.test;
    // Push the first element further from the reference.
    worse[0] += (worse[0] >= v_.ref[0]) ? 1.0 : -1.0;
    EXPECT_GE(mae.compute(v_.ref, worse), before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u,
                                           66u, 77u, 88u));

} // namespace
