/**
 * @file
 * Property-based tests for the verification metrics over randomized
 * vectors: mathematical identities and orderings that must hold for
 * any input.
 */

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/half.h"
#include "support/rng.h"
#include "verify/metrics.h"

namespace {

using namespace hpcmixp::verify;
using hpcmixp::support::Pcg32;

struct Vectors {
    std::vector<double> ref;
    std::vector<double> test;
};

Vectors
randomVectors(std::uint64_t seed, std::size_t n)
{
    Pcg32 rng(seed);
    Vectors v;
    v.ref.resize(n);
    v.test.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        v.ref[i] = rng.uniform(-10.0, 10.0);
        v.test[i] = v.ref[i] + rng.uniform(-0.5, 0.5);
    }
    return v;
}

class MetricProperty : public ::testing::TestWithParam<std::uint64_t> {
  protected:
    Vectors v_ = randomVectors(GetParam(), 257);
};

TEST_P(MetricProperty, IdentityGivesZeroLoss)
{
    auto& reg = MetricRegistry::instance();
    for (const char* name : {"MAE", "MSE", "RMSE", "R2", "MCR"}) {
        const Metric& m = reg.get(name);
        EXPECT_NEAR(m.loss(v_.ref, v_.ref), 0.0, 1e-12) << name;
    }
}

TEST_P(MetricProperty, RmseDominatesMae)
{
    MeanAbsoluteError mae;
    RootMeanSquareError rmse;
    EXPECT_GE(rmse.compute(v_.ref, v_.test) + 1e-15,
              mae.compute(v_.ref, v_.test));
}

TEST_P(MetricProperty, RmseSquaredIsMse)
{
    MeanSquareError mse;
    RootMeanSquareError rmse;
    double r = rmse.compute(v_.ref, v_.test);
    EXPECT_NEAR(r * r, mse.compute(v_.ref, v_.test),
                1e-12 * (1.0 + r * r));
}

TEST_P(MetricProperty, R2NeverExceedsOne)
{
    CoefficientOfDetermination r2;
    EXPECT_LE(r2.compute(v_.ref, v_.test), 1.0 + 1e-12);
    EXPECT_GE(r2.loss(v_.ref, v_.test), -1e-12);
}

TEST_P(MetricProperty, McrIsAProperFraction)
{
    MisclassificationRate mcr;
    double v = mcr.compute(v_.ref, v_.test);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
}

TEST_P(MetricProperty, MaeIsSymmetricInDifferenceSign)
{
    MeanAbsoluteError mae;
    std::vector<double> flipped(v_.ref.size());
    for (std::size_t i = 0; i < v_.ref.size(); ++i)
        flipped[i] = 2.0 * v_.ref[i] - v_.test[i]; // mirror around ref
    EXPECT_NEAR(mae.compute(v_.ref, v_.test),
                mae.compute(v_.ref, flipped), 1e-12);
}

TEST_P(MetricProperty, MaeScalesLinearly)
{
    MeanAbsoluteError mae;
    std::vector<double> ref2(v_.ref.size());
    std::vector<double> test2(v_.test.size());
    for (std::size_t i = 0; i < v_.ref.size(); ++i) {
        ref2[i] = 3.0 * v_.ref[i];
        test2[i] = 3.0 * v_.test[i];
    }
    EXPECT_NEAR(mae.compute(ref2, test2),
                3.0 * mae.compute(v_.ref, v_.test), 1e-9);
}

TEST_P(MetricProperty, WorseningOnePointNeverImprovesMae)
{
    MeanAbsoluteError mae;
    double before = mae.compute(v_.ref, v_.test);
    std::vector<double> worse = v_.test;
    // Push the first element further from the reference.
    worse[0] += (worse[0] >= v_.ref[0]) ? 1.0 : -1.0;
    EXPECT_GE(mae.compute(v_.ref, worse), before);
}

/**
 * The fused single-pass ErrorStats must agree with every individual
 * metric when the test vector is a 16-bit degradation of the
 * reference — the exact shape a half / bfloat16 ladder rung produces.
 */
TEST_P(MetricProperty, FusedStatsMatchMetricsOnHalfDegradedOutput)
{
    using hpcmixp::runtime::BFloat16;
    using hpcmixp::runtime::Half;
    for (int format = 0; format < 2; ++format) {
        std::vector<double> narrowed(v_.ref.size());
        for (std::size_t i = 0; i < v_.ref.size(); ++i) {
            float f = static_cast<float>(v_.ref[i]);
            narrowed[i] = format == 0
                              ? static_cast<float>(Half(f))
                              : static_cast<float>(BFloat16(f));
        }
        ErrorStats stats = computeErrorStats(v_.ref, narrowed);
        EXPECT_EQ(stats.n, v_.ref.size());
        EXPECT_DOUBLE_EQ(
            stats.mae(),
            MeanAbsoluteError().compute(v_.ref, narrowed));
        EXPECT_DOUBLE_EQ(
            stats.mse(), MeanSquareError().compute(v_.ref, narrowed));
        EXPECT_DOUBLE_EQ(
            stats.rmse(),
            RootMeanSquareError().compute(v_.ref, narrowed));
        EXPECT_NEAR(stats.r2(),
                    CoefficientOfDetermination().compute(v_.ref,
                                                         narrowed),
                    1e-9);
        EXPECT_DOUBLE_EQ(
            stats.mcr(),
            MisclassificationRate().compute(v_.ref, narrowed));
        // A 16-bit rounding of values in [-10, 10] is small but not
        // free: the loss must be positive yet bounded by the format's
        // ulp at the largest magnitude (2^-8 for half, 2^-5 for bf16).
        EXPECT_GT(stats.mae(), 0.0);
        EXPECT_LT(stats.mae(), format == 0 ? 0x1p-8 : 0x1p-5);
    }
}

/**
 * Overflow-on-narrow poisoning: when a ladder rung overflows a value
 * to infinity (binary16 tops out at 65504), the fused stats must go
 * non-finite so the comparator can never accept the run.
 */
TEST_P(MetricProperty, FusedStatsPropagateNarrowOverflowAndNan)
{
    using hpcmixp::runtime::Half;
    std::vector<double> ref = v_.ref;
    ref[3] = 70000.0; // beyond binary16 range
    std::vector<double> narrowed(ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
        narrowed[i] = static_cast<float>(
            Half(static_cast<float>(ref[i])));
    ASSERT_TRUE(std::isinf(narrowed[3]));

    ErrorStats overflow = computeErrorStats(ref, narrowed);
    EXPECT_TRUE(std::isinf(overflow.mae()) ||
                std::isnan(overflow.mae()));
    EXPECT_FALSE(overflow.rmse() < 1.0); // NaN/Inf never compares below

    std::vector<double> poisoned = v_.test;
    poisoned[5] = std::numeric_limits<double>::quiet_NaN();
    ErrorStats nan = computeErrorStats(v_.ref, poisoned);
    EXPECT_TRUE(std::isnan(nan.mae()));
    EXPECT_TRUE(std::isnan(nan.rmse()));
    EXPECT_FALSE(nan.r2() >= 1.0 - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u,
                                           66u, 77u, 88u));

} // namespace
