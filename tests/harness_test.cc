/**
 * @file
 * Tests for the YAML-driven harness: configuration parsing against the
 * Listing-4 schema, the analysis plugin registry, and job execution.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "benchmarks/registry.h"
#include "harness/harness.h"
#include "search/context.h"
#include "support/json.h"
#include "support/logging.h"

namespace {

using namespace hpcmixp;
using namespace hpcmixp::harness;
using hpcmixp::support::FatalError;

const char* kGoodConfig = R"(
kmeans:
  build_dir: 'kmeans'
  build: ['make']
  clean: ['make clean']
  analysis:
    floatsmith:
      name: 'floatSmith'
      extra_args:
        algorithm: 'ddebug'
  output:
    option: '-o'
    name: 'outputFile.bin'
  metric: 'MCR'
  bin: 'kmeans'
  copy: ['kmeans', 'kdd_bin']
  args: '-i kdd_bin -k 5 -n 5'
tridiag:
  threshold: 1e-3
  analysis:
    ga:
      name: 'floatsmith'
      extra_args:
        algorithm: 'genetic'
)";

TEST(HarnessConfig, ParsesListing4Schema)
{
    auto jobs = parseConfig(support::yaml::parse(kGoodConfig));
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].benchmark, "kmeans");
    EXPECT_EQ(jobs[0].analysis, "floatSmith");
    EXPECT_EQ(jobs[0].metric, "MCR");
    EXPECT_EQ(jobs[0].extraArgs.at("algorithm"), "ddebug");
    EXPECT_DOUBLE_EQ(jobs[0].threshold, 1e-6); // default
    EXPECT_EQ(jobs[1].benchmark, "tridiag");
    EXPECT_DOUBLE_EQ(jobs[1].threshold, 1e-3);
    EXPECT_EQ(jobs[1].extraArgs.at("algorithm"), "genetic");
}

TEST(HarnessConfig, RejectsUnknownBenchmark)
{
    EXPECT_THROW(parseConfig(support::yaml::parse(
                     "nosuch:\n  analysis:\n    a:\n      name: 'x'\n")),
                 FatalError);
}

TEST(HarnessConfig, RejectsUnknownClause)
{
    EXPECT_THROW(
        parseConfig(support::yaml::parse(
            "tridiag:\n  bogus: 1\n  analysis:\n    a:\n"
            "      name: 'floatsmith'\n")),
        FatalError);
}

TEST(HarnessConfig, RejectsMissingAnalysis)
{
    EXPECT_THROW(parseConfig(support::yaml::parse(
                     "tridiag:\n  metric: 'MAE'\n")),
                 FatalError);
}

TEST(HarnessConfig, RejectsUnknownMetricAndAnalysis)
{
    EXPECT_THROW(parseConfig(support::yaml::parse(
                     "tridiag:\n  metric: 'BOGUS'\n  analysis:\n"
                     "    a:\n      name: 'floatsmith'\n")),
                 FatalError);
    EXPECT_THROW(parseConfig(support::yaml::parse(
                     "tridiag:\n  analysis:\n    a:\n"
                     "      name: 'nosuch'\n")),
                 FatalError);
}

TEST(HarnessConfig, RejectsEmptyDocument)
{
    EXPECT_THROW(parseConfig(support::yaml::parse("")), FatalError);
}

TEST(AnalysisRegistryTest, BuiltinsPresent)
{
    auto& reg = AnalysisRegistry::instance();
    EXPECT_TRUE(reg.has("floatsmith"));
    EXPECT_TRUE(reg.has("FloatSmith")); // case-insensitive
    EXPECT_TRUE(reg.has("singleprecision"));
    EXPECT_THROW(reg.create("nosuch"), FatalError);
}

TEST(AnalysisRegistryTest, AlgorithmSpellings)
{
    EXPECT_EQ(FloatsmithAnalysis::algorithmCode("ddebug"), "DD");
    EXPECT_EQ(FloatsmithAnalysis::algorithmCode("DD"), "DD");
    EXPECT_EQ(FloatsmithAnalysis::algorithmCode("genetic"), "GA");
    EXPECT_EQ(FloatsmithAnalysis::algorithmCode("combinational"),
              "CB");
    EXPECT_EQ(FloatsmithAnalysis::algorithmCode("compositional"),
              "CM");
    EXPECT_EQ(FloatsmithAnalysis::algorithmCode("hierarchical"), "HR");
    EXPECT_EQ(FloatsmithAnalysis::algorithmCode(
                  "hierarchical-compositional"),
              "HC");
    EXPECT_THROW(FloatsmithAnalysis::algorithmCode("bogus"),
                 FatalError);
}

TEST(HarnessRun, ExecutesJobsAndPrintsResults)
{
    auto jobs = parseConfig(support::yaml::parse(
        "tridiag:\n  threshold: 1e-3\n  analysis:\n    fs:\n"
        "      name: 'floatsmith'\n      extra_args:\n"
        "        algorithm: 'ddebug'\n"
        "iccg:\n  analysis:\n    sp:\n"
        "      name: 'singleprecision'\n"));
    HarnessOptions options;
    options.tuner.searchReps = 1;
    options.tuner.finalReps = 3;
    options.tuner.budget = {100, 0.0};
    auto results = runJobs(jobs, options);
    ASSERT_EQ(results.size(), 2u);
    for (const auto& r : results) {
        EXPECT_TRUE(r.error.empty()) << r.error;
        EXPECT_GT(r.result.speedup, 0.0);
    }
    EXPECT_EQ(results[0].result.detail, "DD");
    EXPECT_EQ(results[1].result.analysis, "singleprecision");
    EXPECT_EQ(results[1].result.evaluated, 1u);

    std::ostringstream os;
    printResults(os, results);
    EXPECT_NE(os.str().find("tridiag"), std::string::npos);
    EXPECT_NE(os.str().find("singleprecision"), std::string::npos);
}

TEST(HarnessRun, ParallelJobsProduceSameStructure)
{
    auto jobs = parseConfig(support::yaml::parse(
        "tridiag:\n  threshold: 1e-3\n  analysis:\n    a:\n"
        "      name: 'singleprecision'\n"
        "iccg:\n  threshold: 1e-3\n  analysis:\n    b:\n"
        "      name: 'singleprecision'\n"));
    HarnessOptions options;
    options.tuner.searchReps = 1;
    options.tuner.finalReps = 3;
    options.jobs = 2;
    auto results = runJobs(jobs, options);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].spec.benchmark, "tridiag");
    EXPECT_EQ(results[1].spec.benchmark, "iccg");
    for (const auto& r : results)
        EXPECT_TRUE(r.error.empty()) << r.error;
}


TEST(HarnessRun, GaParametersFlowFromExtraArgs)
{
    auto jobs = parseConfig(support::yaml::parse(
        "tridiag:\n  threshold: 1e-3\n  analysis:\n    ga:\n"
        "      name: 'floatsmith'\n      extra_args:\n"
        "        algorithm: 'genetic'\n        population: '4'\n"
        "        generations: '2'\n        seed: '7'\n"));
    HarnessOptions options;
    options.tuner.searchReps = 1;
    options.tuner.finalReps = 3;
    auto results = runJobs(jobs, options);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].error.empty()) << results[0].error;
    // population 4 x generations 2 caps the evaluations.
    EXPECT_LE(results[0].result.evaluated, 8u);
}

TEST(HarnessRun, BadGaParameterIsReportedAsJobError)
{
    auto jobs = parseConfig(support::yaml::parse(
        "tridiag:\n  analysis:\n    ga:\n"
        "      name: 'floatsmith'\n      extra_args:\n"
        "        algorithm: 'genetic'\n        population: '-3'\n"));
    HarnessOptions options;
    options.tuner.searchReps = 1;
    auto results = runJobs(jobs, options);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].error.empty());
}

TEST(HarnessRun, JsonReportContainsEveryJob)
{
    auto jobs = parseConfig(support::yaml::parse(
        "tridiag:\n  threshold: 1e-3\n  analysis:\n    sp:\n"
        "      name: 'singleprecision'\n"));
    HarnessOptions options;
    options.tuner.searchReps = 1;
    options.tuner.finalReps = 3;
    auto results = runJobs(jobs, options);
    auto json = resultsToJson(results);
    ASSERT_EQ(json.items().size(), 1u);
    const auto& entry = json.items()[0];
    EXPECT_EQ(entry.at("benchmark").asString(), "tridiag");
    EXPECT_EQ(entry.at("algorithm").asString(), "all-binary32");
    EXPECT_FALSE(entry.has("error"));
    // The dump parses back (interchange round trip).
    auto reparsed = support::json::parse(json.dump(2));
    EXPECT_EQ(reparsed.items().size(), 1u);
}


/** Analysis that throws something that is not a std::exception. */
class ThrowIntAnalysis : public Analysis {
  public:
    std::string name() const override { return "throwint"; }
    AnalysisResult
    analyze(const benchmarks::Benchmark&, const core::TunerOptions&,
            const ExtraArgs&) override
    {
        throw 42;
    }
};

TEST(HarnessRun, NonStandardExceptionIsContainedInJobError)
{
    if (!AnalysisRegistry::instance().has("throwint"))
        AnalysisRegistry::instance().add("throwint", [] {
            return std::make_unique<ThrowIntAnalysis>();
        });
    auto jobs = parseConfig(support::yaml::parse(
        "tridiag:\n  threshold: 1e-3\n  analysis:\n    boom:\n"
        "      name: 'throwint'\n"
        "iccg:\n  threshold: 1e-3\n  analysis:\n    sp:\n"
        "      name: 'singleprecision'\n"));
    HarnessOptions options;
    options.tuner.searchReps = 1;
    options.tuner.finalReps = 3;
    options.jobs = 2; // the pool must survive the rogue job
    auto results = runJobs(jobs, options);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].error,
              "job failed with a non-standard exception");
    EXPECT_TRUE(results[1].error.empty()) << results[1].error;
    EXPECT_GT(results[1].result.speedup, 0.0);
}

/** Unique scratch path under gtest's temporary directory. */
std::string
scratchFile(const char* name)
{
    std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

TEST(HarnessCheckpoint, CampaignCheckpointRestoresCompletedJobs)
{
    const char* kTwoJobs =
        "tridiag:\n  threshold: 1e-3\n  analysis:\n    sp:\n"
        "      name: 'singleprecision'\n"
        "iccg:\n  threshold: 1e-3\n  analysis:\n    sp:\n"
        "      name: 'singleprecision'\n";
    auto jobs = parseConfig(support::yaml::parse(kTwoJobs));
    std::string path = scratchFile("hpcmixp_campaign.ckpt.json");

    HarnessOptions options;
    options.tuner.searchReps = 1;
    options.tuner.finalReps = 3;
    options.checkpointPath = path;
    auto first = runJobs(jobs, options);
    ASSERT_EQ(first.size(), 2u);
    for (const auto& r : first) {
        EXPECT_TRUE(r.error.empty()) << r.error;
        EXPECT_FALSE(r.restored);
    }

    // The checkpoint file records both completed jobs.
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream text;
    text << in.rdbuf();
    auto doc = support::json::parse(text.str());
    EXPECT_EQ(doc.at("completed").keys().size(), 2u);
    EXPECT_EQ(doc.at("caches").keys().size(), 0u);

    // Resuming re-runs nothing and reproduces the results table.
    HarnessOptions resumeOptions = options;
    resumeOptions.resumePath = path;
    auto second = runJobs(jobs, resumeOptions);
    ASSERT_EQ(second.size(), 2u);
    for (std::size_t i = 0; i < second.size(); ++i) {
        EXPECT_TRUE(second[i].restored);
        EXPECT_DOUBLE_EQ(second[i].result.speedup,
                         first[i].result.speedup);
        EXPECT_EQ(second[i].result.configuration,
                  first[i].result.configuration);
    }
    std::remove(path.c_str());
}

TEST(HarnessCheckpoint, PartialResumeRunsOnlyUnfinishedJobs)
{
    std::string path = scratchFile("hpcmixp_partial.ckpt.json");
    HarnessOptions options;
    options.tuner.searchReps = 1;
    options.tuner.finalReps = 3;
    options.checkpointPath = path;

    // Phase 1: a campaign that only got through its first job.
    auto shortJobs = parseConfig(support::yaml::parse(
        "tridiag:\n  threshold: 1e-3\n  analysis:\n    sp:\n"
        "      name: 'singleprecision'\n"));
    auto first = runJobs(shortJobs, options);
    ASSERT_EQ(first.size(), 1u);
    ASSERT_TRUE(first[0].error.empty()) << first[0].error;

    // Phase 2: the full campaign resumes; job 0 is restored, the
    // newly added job runs fresh.
    auto fullJobs = parseConfig(support::yaml::parse(
        "tridiag:\n  threshold: 1e-3\n  analysis:\n    sp:\n"
        "      name: 'singleprecision'\n"
        "iccg:\n  threshold: 1e-3\n  analysis:\n    sp:\n"
        "      name: 'singleprecision'\n"));
    HarnessOptions resumeOptions = options;
    resumeOptions.resumePath = path;
    auto second = runJobs(fullJobs, resumeOptions);
    ASSERT_EQ(second.size(), 2u);
    EXPECT_TRUE(second[0].restored);
    EXPECT_DOUBLE_EQ(second[0].result.speedup,
                     first[0].result.speedup);
    EXPECT_FALSE(second[1].restored);
    EXPECT_TRUE(second[1].error.empty()) << second[1].error;
    std::remove(path.c_str());
}

TEST(HarnessCheckpoint, PartialSearchCacheResumesWithCacheHits)
{
    // Fabricate the checkpoint of a campaign that was killed while
    // searching tridiag: no completed jobs, but the search cache
    // already holds evaluations DD is certain to query again.
    auto benchmark =
        benchmarks::BenchmarkRegistry::instance().create("tridiag");
    core::TunerOptions tunerOptions;
    tunerOptions.searchReps = 1;
    tunerOptions.finalReps = 3;
    tunerOptions.threshold = 1e-3;
    core::BenchmarkTuner tuner(*benchmark, tunerOptions);
    search::SearchContext ctx(tuner.searchClusterProblem(),
                              {1000, 0.0});
    ctx.evaluate(search::Config(tuner.clusterCount()));
    ctx.evaluate(search::Config::allLowered(tuner.clusterCount()));

    using support::json::Value;
    Value root = Value::object();
    root.set("version", Value::number(1));
    root.set("completed", Value::object());
    Value caches = Value::object();
    caches.set("0:tridiag/floatsmith", ctx.exportCache());
    root.set("caches", std::move(caches));
    std::string path = scratchFile("hpcmixp_cache.ckpt.json");
    {
        std::ofstream out(path);
        ASSERT_TRUE(out.good());
        out << root.dump(2) << '\n';
    }

    auto jobs = parseConfig(support::yaml::parse(
        "tridiag:\n  threshold: 1e-3\n  analysis:\n    fs:\n"
        "      name: 'floatsmith'\n      extra_args:\n"
        "        algorithm: 'ddebug'\n"));
    HarnessOptions options;
    options.tuner.searchReps = 1;
    options.tuner.finalReps = 3;
    options.tuner.budget = {1000, 0.0};
    options.resumePath = path;
    auto results = runJobs(jobs, options);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].error.empty()) << results[0].error;
    EXPECT_FALSE(results[0].restored); // resumed, not restored whole
    EXPECT_GT(results[0].result.cacheHits, 0u);
    std::remove(path.c_str());
}

TEST(HarnessMemo, WarmCampaignRerunExecutesNothing)
{
    std::string dir = ::testing::TempDir() + "harness_memo_store";
    std::filesystem::remove_all(dir);

    auto jobs = parseConfig(support::yaml::parse(
        "tridiag:\n  threshold: 1e-3\n  analysis:\n    fs:\n"
        "      name: 'floatsmith'\n      extra_args:\n"
        "        algorithm: 'ddebug'\n"));
    HarnessOptions options;
    options.tuner.searchReps = 1;
    options.tuner.finalReps = 3;
    options.tuner.budget = {100, 0.0};
    options.memoCacheDir = dir;

    auto cold = runJobs(jobs, options);
    ASSERT_EQ(cold.size(), 1u);
    ASSERT_TRUE(cold[0].error.empty()) << cold[0].error;
    EXPECT_GT(cold[0].result.evaluated, 0u);
    EXPECT_EQ(cold[0].result.memoHits, 0u);

    // Same campaign, new process (new store handle over the same
    // directory): every search query is a cross-run memo hit.
    auto warm = runJobs(jobs, options);
    ASSERT_TRUE(warm[0].error.empty()) << warm[0].error;
    EXPECT_EQ(warm[0].result.evaluated, 0u);
    EXPECT_EQ(warm[0].result.memoHits, cold[0].result.evaluated);
    EXPECT_EQ(warm[0].result.configuration,
              cold[0].result.configuration);

    // The two hit kinds land in separate table columns and JSON keys.
    std::ostringstream os;
    printResults(os, warm);
    EXPECT_NE(os.str().find("memo"), std::string::npos);
    auto json = resultsToJson(warm);
    ASSERT_EQ(json.items().size(), 1u);
    const auto& entry = json.items()[0];
    EXPECT_EQ(entry.at("memo_hits").asLong(),
              static_cast<long>(warm[0].result.memoHits));
    EXPECT_TRUE(entry.has("cache_hits"));
    std::filesystem::remove_all(dir);
}

TEST(HarnessPortfolio, OverrideRacesStrategiesPerBenchmark)
{
    std::string dir = ::testing::TempDir() + "harness_portfolio_store";
    std::filesystem::remove_all(dir);

    // The configured analysis is ignored under --portfolio; the memo
    // store dedups the entrants against each other.
    auto jobs = parseConfig(support::yaml::parse(
        "tridiag:\n  threshold: 1e-3\n  analysis:\n    fs:\n"
        "      name: 'floatsmith'\n      extra_args:\n"
        "        algorithm: 'ddebug'\n"));
    HarnessOptions options;
    options.tuner.searchReps = 1;
    options.tuner.finalReps = 3;
    options.tuner.budget = {100, 0.0};
    options.memoCacheDir = dir;
    options.portfolio = true;
    auto results = runJobs(jobs, options);
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].error.empty()) << results[0].error;
    EXPECT_EQ(results[0].result.analysis, "portfolio");
    EXPECT_NE(results[0].result.detail.find("winner:"),
              std::string::npos);
    EXPECT_GT(results[0].result.evaluated, 0u);
    std::filesystem::remove_all(dir);
}

TEST(HarnessPortfolio, AnalysisIsDirectlyConfigurable)
{
    auto jobs = parseConfig(support::yaml::parse(
        "tridiag:\n  threshold: 1e-3\n  analysis:\n    pf:\n"
        "      name: 'portfolio'\n      extra_args:\n"
        "        strategies: 'ddebug,genetic'\n"
        "        mode: 'race'\n"
        "        workers: '2'\n"));
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].analysis, "portfolio");
    HarnessOptions options;
    options.tuner.searchReps = 1;
    options.tuner.finalReps = 3;
    options.tuner.budget = {100, 0.0};
    auto results = runJobs(jobs, options);
    ASSERT_TRUE(results[0].error.empty()) << results[0].error;
    EXPECT_EQ(results[0].result.analysis, "portfolio");
}

TEST(HarnessRun, PrecimoniousAnalysisReportsCompileFailures)
{
    auto jobs = parseConfig(support::yaml::parse(
        "lavamd:\n  threshold: 1e-8\n  analysis:\n    prec:\n"
        "      name: 'precimonious'\n"));
    HarnessOptions options;
    options.tuner.searchReps = 1;
    options.tuner.finalReps = 3;
    options.tuner.budget = {200, 0.0};
    auto results = runJobs(jobs, options);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].error.empty()) << results[0].error;
    EXPECT_EQ(results[0].result.analysis, "precimonious");
    // Cluster-blind DD must waste attempts on invalid configurations.
    EXPECT_GT(results[0].result.compileFailures, 0u);
}

} // namespace
