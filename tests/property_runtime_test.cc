/**
 * @file
 * Property-based tests for the runtime library: buffer and I/O
 * round-trips over randomized sizes, contents and precision pairs,
 * plus the float-rounding contract.
 */

#include <cmath>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/buffer.h"
#include "runtime/mp_io.h"
#include "support/rng.h"

namespace {

using namespace hpcmixp::runtime;
using hpcmixp::support::Pcg32;

class RuntimeProperty : public ::testing::TestWithParam<std::uint64_t> {
  protected:
    std::vector<double>
    randomData()
    {
        Pcg32 rng(GetParam());
        std::vector<double> data(1 + rng.nextBounded(500));
        for (auto& v : data)
            v = rng.uniform(-1e6, 1e6);
        return data;
    }
};

TEST_P(RuntimeProperty, DoubleBufferRoundTripsExactly)
{
    auto data = randomData();
    Buffer b = Buffer::fromDoubles(data, Precision::Float64);
    EXPECT_EQ(b.toDoubles(), data);
}

TEST_P(RuntimeProperty, FloatBufferAppliesOneRounding)
{
    auto data = randomData();
    Buffer b = Buffer::fromDoubles(data, Precision::Float32);
    auto out = b.toDoubles();
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_EQ(out[i],
                  static_cast<double>(static_cast<float>(data[i])));
        // Round-tripping a second time is idempotent.
        EXPECT_EQ(out[i], static_cast<double>(static_cast<float>(
                              out[i])));
    }
}

TEST_P(RuntimeProperty, MpIoRoundTripsAcrossAllPrecisionPairs)
{
    auto data = randomData();
    for (auto memType : {Precision::Float32, Precision::Float64}) {
        for (auto diskType :
             {Precision::Float32, Precision::Float64}) {
            Buffer src = Buffer::fromDoubles(data, memType);
            std::stringstream stream;
            mpFwrite(src, diskType, stream);
            EXPECT_EQ(stream.str().size(),
                      data.size() * byteSize(diskType));

            Buffer dst(data.size(), memType);
            mpFread(dst, diskType, stream);
            // Writing at diskType and reading back into the same
            // memory precision loses nothing beyond the declared
            // precisions: the composition is idempotent.
            auto a = src.toDoubles();
            auto b = dst.toDoubles();
            for (std::size_t i = 0; i < data.size(); ++i) {
                double expected = a[i];
                if (diskType == Precision::Float32)
                    expected = static_cast<double>(
                        static_cast<float>(expected));
                if (memType == Precision::Float32)
                    expected = static_cast<double>(
                        static_cast<float>(expected));
                EXPECT_EQ(b[i], expected);
            }
        }
    }
}

TEST_P(RuntimeProperty, StoreLoadConsistency)
{
    auto data = randomData();
    for (auto p : {Precision::Float32, Precision::Float64}) {
        Buffer b(data.size(), p);
        for (std::size_t i = 0; i < data.size(); ++i)
            b.storeDouble(i, data[i]);
        Buffer c = Buffer::fromDoubles(data, p);
        EXPECT_EQ(b.toDoubles(), c.toDoubles());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimeProperty,
                         ::testing::Values(101u, 202u, 303u, 404u,
                                           505u));

} // namespace
