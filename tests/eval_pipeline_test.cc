/**
 * @file
 * Tests for the prepare/execute evaluation pipeline.
 *
 * The split must be a pure refactoring of the timed region: for every
 * benchmark and precision assignment, executing a cached plan against a
 * reused workspace produces bit-identical output to a fresh
 * uncached-plan run and to the legacy run() entry point. Workspace
 * reuse across configurations must never leak state between runs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "benchmarks/benchmark.h"
#include "benchmarks/registry.h"
#include "runtime/workspace.h"

namespace {

using hpcmixp::benchmarks::Benchmark;
using hpcmixp::benchmarks::BenchmarkRegistry;
using hpcmixp::benchmarks::PrecisionMap;
using hpcmixp::benchmarks::PrepareOptions;
using hpcmixp::benchmarks::RunOutput;
using hpcmixp::benchmarks::RunPlan;
using hpcmixp::runtime::Precision;
using hpcmixp::runtime::RunWorkspace;

/** Sorted unique bind keys of a benchmark's model variables. */
std::vector<std::string>
bindKeysOf(const Benchmark& bench)
{
    std::set<std::string> keys;
    const auto& program = bench.programModel();
    for (hpcmixp::model::VarId v : program.realVariables()) {
        const auto& var = program.variable(v);
        if (!var.bindKey.empty())
            keys.insert(var.bindKey);
    }
    return {keys.begin(), keys.end()};
}

/** All-double, all-float, and alternating assignments for @p bench. */
std::vector<PrecisionMap>
sampleMaps(const Benchmark& bench)
{
    std::vector<std::string> keys = bindKeysOf(bench);
    std::vector<PrecisionMap> maps;
    maps.emplace_back();

    PrecisionMap allFloat;
    for (const std::string& k : keys)
        allFloat.set(k, Precision::Float32);
    maps.push_back(std::move(allFloat));

    PrecisionMap mixed;
    for (std::size_t i = 0; i < keys.size(); i += 2)
        mixed.set(keys[i], Precision::Float32);
    maps.push_back(std::move(mixed));
    return maps;
}

void
expectBitIdentical(const RunOutput& a, const RunOutput& b,
                   const std::string& what)
{
    ASSERT_EQ(a.values.size(), b.values.size()) << what;
    for (std::size_t i = 0; i < a.values.size(); ++i) {
        // EXPECT_EQ (not NEAR): the pipeline split must not change a
        // single bit. NaN == NaN fails, so compare representations.
        if (std::isnan(a.values[i]) && std::isnan(b.values[i]))
            continue;
        ASSERT_EQ(a.values[i], b.values[i])
            << what << " at index " << i;
    }
}

TEST(EvalPipeline, ExecuteMatchesRunForEveryBenchmark)
{
    RunWorkspace sharedWs;
    for (const std::string& name :
         BenchmarkRegistry::instance().names()) {
        auto bench = BenchmarkRegistry::instance().create(name);
        for (const PrecisionMap& pm : sampleMaps(*bench)) {
            RunOutput legacy = bench->run(pm);

            RunPlan plan = bench->prepare(pm);
            RunOutput cached = bench->execute(plan, sharedWs);
            expectBitIdentical(legacy, cached,
                               name + ": cached plan + shared ws");

            PrepareOptions uncached;
            uncached.reuseInputCache = false;
            RunPlan freshPlan = bench->prepare(pm, uncached);
            RunWorkspace freshWs;
            RunOutput fresh = bench->execute(freshPlan, freshWs);
            expectBitIdentical(legacy, fresh,
                               name + ": fresh plan + fresh ws");
        }
    }
}

TEST(EvalPipeline, RepeatedExecuteIsIdempotent)
{
    RunWorkspace ws;
    for (const std::string& name :
         BenchmarkRegistry::instance().names()) {
        auto bench = BenchmarkRegistry::instance().create(name);
        PrecisionMap pm = sampleMaps(*bench)[2];
        RunPlan plan = bench->prepare(pm);
        RunOutput first = bench->execute(plan, ws);
        RunOutput second = bench->execute(plan, ws);
        expectBitIdentical(first, second, name + ": rep 1 vs rep 2");
    }
}

// Reusing one workspace across configurations A -> B -> A must leave no
// trace of B in the second A run.
TEST(EvalPipeline, WorkspaceReuseLeaksNoStateAcrossConfigs)
{
    RunWorkspace ws;
    for (const std::string& name :
         BenchmarkRegistry::instance().names()) {
        auto bench = BenchmarkRegistry::instance().create(name);
        std::vector<PrecisionMap> maps = sampleMaps(*bench);
        RunPlan planA = bench->prepare(maps[0]);
        RunPlan planB = bench->prepare(maps[1]);

        RunOutput firstA = bench->execute(planA, ws);
        (void)bench->execute(planB, ws);
        RunOutput secondA = bench->execute(planA, ws);
        expectBitIdentical(firstA, secondA,
                           name + ": A after B differs from A");
    }
}

// A shared benchmark (and its input cache) must be safe to execute from
// several threads at once, each with its own workspace — the shape the
// tuner uses under --search-jobs.
TEST(EvalPipeline, ConcurrentExecuteSharesInputCache)
{
    auto bench = BenchmarkRegistry::instance().create("planckian");
    PrecisionMap pm = sampleMaps(*bench)[1];

    PrepareOptions uncached;
    uncached.reuseInputCache = false;
    RunWorkspace serialWs;
    RunPlan serialPlan = bench->prepare(pm, uncached);
    RunOutput expected = bench->execute(serialPlan, serialWs);

    constexpr int kThreads = 4;
    std::vector<RunOutput> results(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            RunWorkspace ws;
            RunPlan plan = bench->prepare(pm);
            for (int rep = 0; rep < 3; ++rep)
                results[static_cast<std::size_t>(t)] =
                    bench->execute(plan, ws);
        });
    }
    for (std::thread& th : threads)
        th.join();
    for (int t = 0; t < kThreads; ++t)
        expectBitIdentical(expected, results[static_cast<std::size_t>(t)],
                           "thread " + std::to_string(t));
}

TEST(EvalPipeline, UnknownBindKeyDefaultsToFloat64)
{
    // Instantiating any benchmark declares its model's bind keys.
    auto bench = BenchmarkRegistry::instance().create("innerprod");
    PrecisionMap pm;
    pm.set("x", Precision::Float32);
    EXPECT_EQ(pm.get("x"), Precision::Float32);
    // A key no model variable declares: logged once, then Float64.
    EXPECT_EQ(pm.get("definitely-not-a-knob"), Precision::Float64);
    EXPECT_EQ(pm.get("definitely-not-a-knob"), Precision::Float64);
}

// The arena guarantee: re-acquiring a slot at or below its high-water
// size must not move the allocation.
TEST(EvalPipeline, WorkspaceSlotsAreStableAcrossReuse)
{
    RunWorkspace ws;
    hpcmixp::runtime::Buffer& big =
        ws.zeroed(0, 4096, Precision::Float64);
    const double* data = big.as<double>().data();

    ws.zeroed(0, 64, Precision::Float64);
    hpcmixp::runtime::Buffer& regrown =
        ws.zeroed(0, 4096, Precision::Float64);
    EXPECT_EQ(regrown.as<double>().data(), data);

    // Acquiring later slots must not invalidate earlier ones.
    hpcmixp::runtime::Buffer& first =
        ws.zeroed(1, 128, Precision::Float32);
    const float* firstData = first.as<float>().data();
    for (std::size_t slot = 2; slot < 32; ++slot)
        ws.zeroed(slot, 128, Precision::Float32);
    EXPECT_EQ(first.as<float>().data(), firstData);
}

} // namespace
