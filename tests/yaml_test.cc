/**
 * @file
 * Tests for the YAML-subset parser against the paper's Listing-4
 * configuration schema.
 */

#include <gtest/gtest.h>

#include "support/logging.h"
#include "support/yaml.h"

namespace {

using namespace hpcmixp::support;

const char* kKmeansConfig = R"(
# Listing 4 (IISWC'20), lightly reformatted
kmeans:
  build_dir: 'kmeans'
  build: ['make']
  clean: ['make clean']
  analysis:
    floatsmith:
      name: 'floatSmith'
      extra_args:
        algorithm: 'ddebug'
  output:
    option: '-o'
    name: 'outputFile.bin'
  metric: 'MAE'
  bin: 'kmeans'
  copy: ['kmeans', 'kdd_bin']
  args: '-i kdd_bin -k 5 -n 5'
)";

TEST(Yaml, ParsesListing4Schema)
{
    auto doc = yaml::parse(kKmeansConfig);
    ASSERT_TRUE(doc.isMapping());
    const auto& app = doc.at("kmeans");
    EXPECT_EQ(app.getString("build_dir", ""), "kmeans");
    EXPECT_EQ(app.getString("metric", ""), "MAE");
    EXPECT_EQ(app.getString("bin", ""), "kmeans");
    EXPECT_EQ(app.getString("args", ""), "-i kdd_bin -k 5 -n 5");

    const auto& build = app.at("build");
    ASSERT_TRUE(build.isSequence());
    ASSERT_EQ(build.items().size(), 1u);
    EXPECT_EQ(build.items()[0].asString(), "make");

    const auto& copy = app.at("copy");
    ASSERT_EQ(copy.items().size(), 2u);
    EXPECT_EQ(copy.items()[1].asString(), "kdd_bin");

    const auto& analysis = app.at("analysis").at("floatsmith");
    EXPECT_EQ(analysis.getString("name", ""), "floatSmith");
    EXPECT_EQ(analysis.at("extra_args").getString("algorithm", ""),
              "ddebug");

    EXPECT_EQ(app.at("output").getString("option", ""), "-o");
}

TEST(Yaml, KeyOrderIsPreserved)
{
    auto doc = yaml::parse("b: 1\na: 2\nc: 3\n");
    ASSERT_EQ(doc.keys().size(), 3u);
    EXPECT_EQ(doc.keys()[0], "b");
    EXPECT_EQ(doc.keys()[1], "a");
    EXPECT_EQ(doc.keys()[2], "c");
}

TEST(Yaml, ScalarConversions)
{
    auto doc = yaml::parse("x: 2.5\nn: 42\ns: hello\n");
    EXPECT_DOUBLE_EQ(doc.at("x").asDouble(), 2.5);
    EXPECT_EQ(doc.at("n").asLong(), 42);
    EXPECT_EQ(doc.at("s").asString(), "hello");
    EXPECT_DOUBLE_EQ(doc.getDouble("missing", 9.0), 9.0);
    EXPECT_EQ(doc.getLong("missing", 3), 3);
}

TEST(Yaml, BlockSequences)
{
    auto doc = yaml::parse("steps:\n  - one\n  - two\n  - 'three x'\n");
    const auto& steps = doc.at("steps");
    ASSERT_TRUE(steps.isSequence());
    ASSERT_EQ(steps.items().size(), 3u);
    EXPECT_EQ(steps.items()[2].asString(), "three x");
}

TEST(Yaml, CommentsAndBlankLinesIgnored)
{
    auto doc = yaml::parse(
        "# header\n\na: 1  # trailing\n\n# middle\nb: 'x # not'\n");
    EXPECT_EQ(doc.at("a").asLong(), 1);
    EXPECT_EQ(doc.at("b").asString(), "x # not");
}

TEST(Yaml, EmptyValueBecomesEmptyScalar)
{
    auto doc = yaml::parse("a:\nb: 1\n");
    EXPECT_TRUE(doc.at("a").isScalar());
    EXPECT_EQ(doc.at("a").asString(), "");
}

TEST(Yaml, EmptyDocumentIsEmptyMapping)
{
    auto doc = yaml::parse("");
    EXPECT_TRUE(doc.isMapping());
    EXPECT_TRUE(doc.keys().empty());
}

TEST(Yaml, ErrorsAreFatal)
{
    EXPECT_THROW(yaml::parse("key_without_colon\n"), FatalError);
    EXPECT_THROW(yaml::parse("a: [1, 2\n"), FatalError);
    EXPECT_THROW(yaml::parse("\ta: 1\n"), FatalError);
    EXPECT_THROW(yaml::parseFile("/no/such/file.yaml"), FatalError);
}

TEST(Yaml, TypeMismatchesAreFatal)
{
    auto doc = yaml::parse("a: 1\nseq: [1, 2]\n");
    EXPECT_THROW(doc.at("a").items(), FatalError);
    EXPECT_THROW(doc.at("seq").asString(), FatalError);
    EXPECT_THROW(doc.at("missing"), FatalError);
    EXPECT_THROW(doc.at("a").keys(), FatalError);
}

TEST(Yaml, NestedIndentationLevels)
{
    auto doc = yaml::parse(
        "l1:\n  l2:\n    l3:\n      deep: value\n  back: 1\n");
    EXPECT_EQ(doc.at("l1").at("l2").at("l3").getString("deep", ""),
              "value");
    EXPECT_EQ(doc.at("l1").getLong("back", 0), 1);
}

} // namespace
