/**
 * @file
 * Tests for the program-model substrate: hierarchy construction,
 * dependence edges, queries, and error handling.
 */

#include <gtest/gtest.h>

#include "model/program_model.h"
#include "support/logging.h"

namespace {

using namespace hpcmixp::model;
using hpcmixp::support::FatalError;

TEST(ProgramModel, BuildsHierarchy)
{
    ProgramModel m("demo");
    ModuleId mod = m.addModule("demo.c");
    FunctionId f = m.addFunction(mod, "foo");
    VarId local = m.addVariable(f, "x", realScalar());
    VarId param = m.addParameter(f, "p", realPointer());
    VarId global = m.addGlobal(mod, "g", realPointer(), "gknob");

    EXPECT_EQ(m.name(), "demo");
    EXPECT_EQ(m.modules().size(), 1u);
    EXPECT_EQ(m.functions().size(), 1u);
    EXPECT_EQ(m.variables().size(), 3u);

    EXPECT_EQ(m.variable(local).function, f);
    EXPECT_FALSE(m.variable(local).isParameter);
    EXPECT_TRUE(m.variable(param).isParameter);
    EXPECT_EQ(m.variable(global).function, kInvalidId);
    EXPECT_EQ(m.variable(global).module, mod);
    EXPECT_EQ(m.variable(global).bindKey, "gknob");
    EXPECT_EQ(m.function(f).variables.size(), 2u);
    EXPECT_EQ(m.module(mod).globals.size(), 1u);
}

TEST(ProgramModel, TypeInfoHelpers)
{
    EXPECT_EQ(realScalar().base, BaseType::Real);
    EXPECT_EQ(realScalar().pointerDepth, 0);
    EXPECT_FALSE(realScalar().isPointer());
    EXPECT_TRUE(realPointer().isPointer());
    EXPECT_EQ(realPointer(2).pointerDepth, 2);
    EXPECT_EQ(integerScalar().base, BaseType::Integer);
}

TEST(ProgramModel, RealVariablesExcludesIntegers)
{
    ProgramModel m("demo");
    ModuleId mod = m.addModule("demo.c");
    FunctionId f = m.addFunction(mod, "foo");
    VarId r = m.addVariable(f, "x", realScalar());
    m.addVariable(f, "i", integerScalar());
    VarId r2 = m.addVariable(f, "y", realPointer());

    auto reals = m.realVariables();
    ASSERT_EQ(reals.size(), 2u);
    EXPECT_EQ(reals[0], r);
    EXPECT_EQ(reals[1], r2);
}

TEST(ProgramModel, DependencesAreRecordedWithKinds)
{
    ProgramModel m("demo");
    ModuleId mod = m.addModule("demo.c");
    FunctionId f = m.addFunction(mod, "foo");
    VarId a = m.addVariable(f, "a", realPointer());
    VarId b = m.addVariable(f, "b", realPointer());
    VarId c = m.addVariable(f, "c", realScalar());

    m.addAssign(a, b);
    m.addCallBind(a, b);
    m.addAddressOf(c, a);
    m.addReturn(c, c);
    m.addSameType(a, b);

    ASSERT_EQ(m.dependences().size(), 5u);
    EXPECT_EQ(m.dependences()[0].kind, DependenceKind::Assign);
    EXPECT_EQ(m.dependences()[1].kind, DependenceKind::CallBind);
    EXPECT_EQ(m.dependences()[2].kind, DependenceKind::AddressOf);
    EXPECT_EQ(m.dependences()[3].kind, DependenceKind::Return);
    EXPECT_EQ(m.dependences()[4].kind, DependenceKind::SameType);
}

TEST(ProgramModel, FindVariableByNameAndQualified)
{
    ProgramModel m("demo");
    ModuleId mod = m.addModule("demo.c");
    FunctionId f1 = m.addFunction(mod, "foo");
    FunctionId f2 = m.addFunction(mod, "bar");
    VarId x1 = m.addVariable(f1, "x", realScalar());
    VarId x2 = m.addVariable(f2, "x", realScalar());
    VarId only = m.addVariable(f1, "unique", realScalar());

    EXPECT_EQ(m.findVariable("unique"), only);
    EXPECT_THROW(m.findVariable("x"), FatalError); // ambiguous
    EXPECT_THROW(m.findVariable("absent"), FatalError);
    EXPECT_EQ(m.findVariable("foo", "x"), x1);
    EXPECT_EQ(m.findVariable("bar", "x"), x2);
    EXPECT_THROW(m.findVariable("foo", "absent"), FatalError);
}

TEST(ProgramModelDeathTest, BadIdsPanic)
{
    ProgramModel m("demo");
    EXPECT_DEATH(m.addFunction(0, "f"), "bad module id");
    EXPECT_DEATH(m.variable(0), "bad variable id");
}

} // namespace
