/**
 * @file
 * Robustness sweeps for the three text parsers (YAML subset, JSON,
 * mini-C): randomized garbage and truncations must produce FatalError
 * diagnostics — never crashes, hangs, or silent acceptance of
 * malformed structure.
 */

#include <string>

#include <gtest/gtest.h>

#include "support/json.h"
#include "support/logging.h"
#include "support/rng.h"
#include "support/yaml.h"
#include "typeforge/frontend/parser.h"

namespace {

using namespace hpcmixp;
using support::FatalError;
using support::Pcg32;

std::string
randomGarbage(std::uint64_t seed, std::size_t length)
{
    // Printable ASCII plus newlines/tabs.
    static const char kAlphabet[] =
        "{}[]():;,\"'#*&=+-<>/\\ \n\tabcxyz019._";
    Pcg32 rng(seed);
    std::string out;
    out.reserve(length);
    for (std::size_t i = 0; i < length; ++i)
        out += kAlphabet[rng.nextBounded(sizeof(kAlphabet) - 1)];
    return out;
}

class ParserRobustness
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserRobustness, JsonGarbageNeverCrashes)
{
    std::string text = randomGarbage(GetParam(), 120);
    try {
        (void)support::json::parse(text);
        // Extremely unlikely but legal: garbage formed valid JSON.
    } catch (const FatalError&) {
        // expected
    }
}

TEST_P(ParserRobustness, YamlGarbageNeverCrashes)
{
    std::string text = randomGarbage(GetParam() ^ 0x1111, 120);
    try {
        (void)support::yaml::parse(text);
    } catch (const FatalError&) {
        // expected
    }
}

TEST_P(ParserRobustness, MiniCGarbageNeverCrashes)
{
    std::string text = randomGarbage(GetParam() ^ 0x2222, 120);
    try {
        (void)typeforge::frontend::parseProgram(text, "garbage.c");
    } catch (const FatalError&) {
        // expected
    }
}

TEST_P(ParserRobustness, TruncationsOfValidInputsAreHandled)
{
    const std::string json =
        R"({"a": [1, 2, {"b": "c"}], "d": true})";
    const std::string yaml =
        "top:\n  key: 'value'\n  list: [1, 2]\n";
    const std::string minic =
        "double *x;\nvoid f(double *p) { x = p; }\n";

    Pcg32 rng(GetParam() ^ 0x3333);
    for (int i = 0; i < 20; ++i) {
        auto cutJson = json.substr(
            0, rng.nextBounded(
                   static_cast<std::uint32_t>(json.size())));
        auto cutYaml = yaml.substr(
            0, rng.nextBounded(
                   static_cast<std::uint32_t>(yaml.size())));
        auto cutC = minic.substr(
            0, rng.nextBounded(
                   static_cast<std::uint32_t>(minic.size())));
        try {
            (void)support::json::parse(cutJson);
        } catch (const FatalError&) {
        }
        try {
            (void)support::yaml::parse(cutYaml);
        } catch (const FatalError&) {
        }
        try {
            (void)typeforge::frontend::parseProgram(cutC, "cut.c");
        } catch (const FatalError&) {
        }
    }
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness,
                         ::testing::Values(1001u, 2002u, 3003u, 4004u,
                                           5005u, 6006u, 7007u,
                                           8008u));

} // namespace
