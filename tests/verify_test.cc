/**
 * @file
 * Tests for the verification library: the five quality metrics, the
 * registry extension point, and the pass/fail comparator.
 */

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "support/logging.h"
#include "verify/comparator.h"
#include "verify/metrics.h"

namespace {

using namespace hpcmixp::verify;
using hpcmixp::support::FatalError;

const std::vector<double> kRef{1.0, 2.0, 3.0, 4.0};

TEST(Metrics, MaeOfIdenticalVectorsIsZero)
{
    MeanAbsoluteError mae;
    EXPECT_DOUBLE_EQ(mae.compute(kRef, kRef), 0.0);
}

TEST(Metrics, MaeAveragesAbsoluteDeviations)
{
    MeanAbsoluteError mae;
    std::vector<double> test{1.5, 1.5, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mae.compute(kRef, test), (0.5 + 0.5) / 4.0);
}

TEST(Metrics, MseAndRmseAreConsistent)
{
    MeanSquareError mse;
    RootMeanSquareError rmse;
    std::vector<double> test{2.0, 2.0, 3.0, 4.0};
    double m = mse.compute(kRef, test);
    EXPECT_DOUBLE_EQ(m, 1.0 / 4.0);
    EXPECT_DOUBLE_EQ(rmse.compute(kRef, test), std::sqrt(m));
}

TEST(Metrics, R2PerfectFitIsOne)
{
    CoefficientOfDetermination r2;
    EXPECT_DOUBLE_EQ(r2.compute(kRef, kRef), 1.0);
    EXPECT_DOUBLE_EQ(r2.loss(kRef, kRef), 0.0);
}

TEST(Metrics, R2MeanPredictorIsZero)
{
    CoefficientOfDetermination r2;
    std::vector<double> meanOnly(4, 2.5);
    EXPECT_DOUBLE_EQ(r2.compute(kRef, meanOnly), 0.0);
    EXPECT_DOUBLE_EQ(r2.loss(kRef, meanOnly), 1.0);
}

TEST(Metrics, R2ConstantReferenceEdgeCase)
{
    CoefficientOfDetermination r2;
    std::vector<double> ref(4, 3.0);
    std::vector<double> same(4, 3.0);
    std::vector<double> off(4, 3.1);
    EXPECT_DOUBLE_EQ(r2.compute(ref, same), 1.0);
    EXPECT_DOUBLE_EQ(r2.compute(ref, off), 0.0);
}

TEST(Metrics, McrCountsLabelFlips)
{
    MisclassificationRate mcr;
    std::vector<double> ref{0, 1, 2, 2};
    std::vector<double> test{0, 1, 2, 1};
    EXPECT_DOUBLE_EQ(mcr.compute(ref, test), 0.25);
    // Rounding tolerance: 1.4999 rounds to 1.
    std::vector<double> close{0.0, 1.4, 2.0, 2.0};
    EXPECT_DOUBLE_EQ(mcr.compute(ref, close), 0.0);
}

TEST(Metrics, McrTreatsNaNAsMisclassified)
{
    MisclassificationRate mcr;
    std::vector<double> ref{0, 1};
    std::vector<double> test{0, std::nan("")};
    EXPECT_DOUBLE_EQ(mcr.compute(ref, test), 0.5);
}

TEST(Metrics, NaNInTestPropagatesIntoContinuousMetrics)
{
    MeanAbsoluteError mae;
    std::vector<double> test{1.0, std::nan(""), 3.0, 4.0};
    EXPECT_TRUE(std::isnan(mae.compute(kRef, test)));
}

TEST(Metrics, ShapeMismatchesAreFatal)
{
    MeanAbsoluteError mae;
    std::vector<double> shorter{1.0};
    std::vector<double> empty;
    EXPECT_THROW(mae.compute(kRef, shorter), FatalError);
    EXPECT_THROW(mae.compute(empty, empty), FatalError);
}

TEST(MetricRegistryTest, BuiltinsPresentAndCaseInsensitive)
{
    auto& reg = MetricRegistry::instance();
    for (const char* name : {"MAE", "MSE", "RMSE", "R2", "MCR"})
        EXPECT_TRUE(reg.has(name)) << name;
    EXPECT_EQ(reg.get("mae").name(), "MAE");
    EXPECT_THROW(reg.get("nope"), FatalError);
}

TEST(MetricRegistryTest, UserMetricsCanBeAdded)
{
    /** Max absolute error: the paper's extension point in action. */
    class MaxAbsError : public Metric {
      public:
        std::string name() const override { return "MAXABS-test"; }
        double
        compute(std::span<const double> reference,
                std::span<const double> test) const override
        {
            double worst = 0.0;
            for (std::size_t i = 0; i < reference.size(); ++i)
                worst = std::max(worst,
                                 std::abs(reference[i] - test[i]));
            return worst;
        }
    };
    auto& reg = MetricRegistry::instance();
    if (!reg.has("MAXABS-test"))
        reg.add(std::make_unique<MaxAbsError>());
    std::vector<double> test{1.0, 2.0, 3.0, 5.5};
    EXPECT_DOUBLE_EQ(reg.get("MAXABS-test").compute(kRef, test), 1.5);
    EXPECT_THROW(reg.add(std::make_unique<MaxAbsError>()), FatalError);
}

TEST(Comparator, PassesAtOrBelowThreshold)
{
    OutputComparator cmp("MAE", 0.25);
    std::vector<double> pass{1.5, 2.5, 3.0, 4.0};   // MAE 0.25
    std::vector<double> fail{1.5, 2.5, 3.5, 4.5};   // MAE 0.5
    EXPECT_TRUE(cmp.verify(kRef, pass).passed);
    EXPECT_FALSE(cmp.verify(kRef, fail).passed);
    EXPECT_DOUBLE_EQ(cmp.threshold(), 0.25);
}

TEST(Comparator, NaNOutputNeverPasses)
{
    OutputComparator cmp("MAE",
                         std::numeric_limits<double>::infinity());
    std::vector<double> destroyed{1.0, std::nan(""), 3.0, 4.0};
    auto verdict = cmp.verify(kRef, destroyed);
    EXPECT_FALSE(verdict.passed);
    EXPECT_TRUE(std::isnan(verdict.loss));
}

TEST(Comparator, R2UsesLossNotRawValue)
{
    OutputComparator cmp("R2", 0.01);
    EXPECT_TRUE(cmp.verify(kRef, kRef).passed);
    std::vector<double> meanOnly(4, 2.5);
    EXPECT_FALSE(cmp.verify(kRef, meanOnly).passed);
}

TEST(Comparator, NegativeThresholdIsFatal)
{
    EXPECT_THROW(OutputComparator("MAE", -1.0), FatalError);
}

} // namespace
