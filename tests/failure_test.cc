/**
 * @file
 * Failure-injection tests: crashing configurations, destroyed (NaN)
 * outputs, and strategies encountering hostile problems must degrade
 * gracefully — the behaviours the paper attributes to searches that
 * "raise run-time errors" or produce invalid configurations. Also
 * covers the resilience layer: the deterministic FaultInjector, the
 * retry/backoff/deadline policy of SearchContext, and the
 * injection-vs-clean equivalence of all six strategies.
 */

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/tuner.h"
#include "search/fault.h"
#include "support/logging.h"
#include "search/driver.h"

namespace {

using namespace hpcmixp;
using search::Config;
using search::EvalStatus;

/** A tiny benchmark whose lowered configuration misbehaves on demand. */
class HostileBenchmark final : public benchmarks::Benchmark {
  public:
    enum class Failure { None, Throw, NaN };

    explicit HostileBenchmark(Failure mode)
        : mode_(mode), model_("hostile")
    {
        using namespace model;
        ModuleId m = model_.addModule("hostile.c");
        FunctionId f = model_.addFunction(m, "f");
        model_.addVariable(f, "data", realPointer(), "data");
        model_.addVariable(f, "aux", realPointer(), "aux");
    }

    std::string name() const override { return "hostile"; }
    std::string description() const override
    {
        return "failure-injection benchmark";
    }
    bool isKernel() const override { return true; }

    const model::ProgramModel& programModel() const override
    {
        return model_;
    }

    benchmarks::RunOutput
    run(const benchmarks::PrecisionMap& pm) const override
    {
        bool lowered =
            pm.get("data") == runtime::Precision::Float32;
        if (lowered && mode_ == Failure::Throw)
            throw std::runtime_error("injected crash");
        benchmarks::RunOutput out;
        out.values.assign(64, 1.0);
        if (lowered && mode_ == Failure::NaN)
            out.values[7] = std::nan("");
        return out;
    }

  private:
    Failure mode_;
    model::ProgramModel model_;
};

core::TunerOptions
fastOptions()
{
    core::TunerOptions opt;
    opt.threshold = 1e-6;
    opt.searchReps = 1;
    opt.finalReps = 3;
    opt.budget = {100, 0.0};
    return opt;
}

TEST(FailureInjection, CrashingConfigIsRuntimeFail)
{
    HostileBenchmark bench(HostileBenchmark::Failure::Throw);
    core::BenchmarkTuner tuner(bench, fastOptions());
    Config cfg(tuner.clusterCount());
    cfg.set(tuner.clusters().clusterOf(
        bench.programModel().findVariable("data")));
    auto eval = tuner.evaluateClusterConfig(cfg, 1);
    EXPECT_EQ(eval.status, EvalStatus::RuntimeFail);
    EXPECT_TRUE(std::isnan(eval.qualityLoss));
}

TEST(FailureInjection, CrashingConfigNeverWinsASearch)
{
    HostileBenchmark bench(HostileBenchmark::Failure::Throw);
    core::BenchmarkTuner tuner(bench, fastOptions());
    auto outcome = tuner.tune("DD");
    // DD must settle on the aux-only (or baseline) configuration.
    EXPECT_LE(outcome.finalQualityLoss, 1e-6);
    auto dataCluster = tuner.clusters().clusterOf(
        bench.programModel().findVariable("data"));
    EXPECT_FALSE(outcome.clusterConfig.test(dataCluster));
}

TEST(FailureInjection, NaNOutputFailsVerificationButNotTheSearch)
{
    HostileBenchmark bench(HostileBenchmark::Failure::NaN);
    core::BenchmarkTuner tuner(bench, fastOptions());
    Config cfg(tuner.clusterCount());
    cfg.set(tuner.clusters().clusterOf(
        bench.programModel().findVariable("data")));
    auto eval = tuner.evaluateClusterConfig(cfg, 1);
    EXPECT_EQ(eval.status, EvalStatus::QualityFail);
    EXPECT_TRUE(std::isnan(eval.qualityLoss));

    auto outcome = tuner.tune("GA");
    EXPECT_LE(outcome.finalQualityLoss, 1e-6);
}

TEST(FailureInjection, FinalMeasureOnCrashingConfig)
{
    HostileBenchmark bench(HostileBenchmark::Failure::Throw);
    core::BenchmarkTuner tuner(bench, fastOptions());
    Config cfg = Config::allLowered(tuner.clusterCount());
    auto eval = tuner.finalMeasure(cfg);
    EXPECT_EQ(eval.status, EvalStatus::RuntimeFail);
}

/** run() that returns an empty output must be rejected up front. */
class EmptyBenchmark final : public benchmarks::Benchmark {
  public:
    EmptyBenchmark() : model_("empty")
    {
        auto m = model_.addModule("empty.c");
        auto f = model_.addFunction(m, "f");
        model_.addVariable(f, "x", model::realScalar(), "x");
    }
    std::string name() const override { return "empty"; }
    std::string description() const override { return "empty"; }
    bool isKernel() const override { return true; }
    const model::ProgramModel& programModel() const override
    {
        return model_;
    }
    benchmarks::RunOutput
    run(const benchmarks::PrecisionMap&) const override
    {
        return {};
    }

  private:
    model::ProgramModel model_;
};

TEST(FailureInjection, EmptyBaselineOutputIsFatal)
{
    EmptyBenchmark bench;
    EXPECT_THROW(core::BenchmarkTuner(bench, fastOptions()),
                 support::FatalError);
}

// ---- Resilience layer --------------------------------------------------

using search::FaultInjector;
using search::FaultKind;
using search::FaultPlan;
using search::FaultyProblem;
using search::ResiliencePolicy;
using search::SearchContext;
using search::StructureNode;

/** Deterministic synthetic problem: site 3 is toxic, speedup grows
 *  with the number of lowered sites. Optionally has a structure tree
 *  so HR/HC can run. */
class ScriptedProblem : public search::SearchProblem {
  public:
    explicit ScriptedProblem(bool withStructure = true)
        : withStructure_(withStructure)
    {
        if (!withStructure)
            return;
        // root -> {modA: 0,1} {modB: 2,3}, one leaf per site.
        tree_.name = "prog";
        tree_.sites = {0, 1, 2, 3};
        StructureNode a, b;
        a.name = "modA";
        a.sites = {0, 1};
        b.name = "modB";
        b.sites = {2, 3};
        for (std::size_t s : {0u, 1u}) {
            StructureNode leaf;
            leaf.name = "va" + std::to_string(s);
            leaf.sites = {s};
            a.children.push_back(leaf);
        }
        for (std::size_t s : {2u, 3u}) {
            StructureNode leaf;
            leaf.name = "vb" + std::to_string(s);
            leaf.sites = {s};
            b.children.push_back(leaf);
        }
        tree_.children = {a, b};
    }

    std::size_t siteCount() const override { return 4; }

    search::Evaluation
    evaluate(const Config& config) override
    {
        ++rawCalls_;
        search::Evaluation eval;
        eval.speedup = 1.0 + 0.1 * static_cast<double>(config.count());
        eval.runtimeSeconds = 1.0 / eval.speedup;
        if (config.test(3)) {
            eval.status = EvalStatus::QualityFail;
            eval.qualityLoss = 1.0;
        } else {
            eval.status = EvalStatus::Pass;
            eval.qualityLoss = 0.0;
        }
        return eval;
    }

    const StructureNode* structure() const override
    {
        return withStructure_ ? &tree_ : nullptr;
    }

    int rawCalls() const { return rawCalls_; }

  private:
    bool withStructure_;
    StructureNode tree_;
    // Atomic: batch evaluation calls evaluate() from pool workers.
    std::atomic<int> rawCalls_{0};
};

TEST(FaultDeterminism, DrawsAreDeterministicPerSeed)
{
    FaultPlan plan;
    plan.crashRate = 0.2;
    plan.hangRate = 0.1;
    plan.nanRate = 0.1;
    plan.seed = 7;
    FaultInjector a(plan), b(plan);
    int nonNone = 0;
    for (std::uint64_t attempt = 0; attempt < 50; ++attempt) {
        for (const char* key : {"0000", "0101", "1111"}) {
            FaultKind ka = a.draw(key, attempt);
            EXPECT_EQ(ka, b.draw(key, attempt));
            if (ka != FaultKind::None)
                ++nonNone;
        }
    }
    EXPECT_GT(nonNone, 0);
    EXPECT_EQ(a.crashesInjected(), b.crashesInjected());

    // A different seed produces a different decision stream.
    plan.seed = 8;
    FaultInjector c(plan);
    int differs = 0;
    for (std::uint64_t attempt = 0; attempt < 50; ++attempt)
        for (const char* key : {"0000", "0101", "1111"})
            if (c.draw(key, attempt) != b.draw(key, attempt))
                ++differs;
    EXPECT_GT(differs, 0);
}

TEST(Resilience, TransientCrashIsRetriedToSuccess)
{
    ScriptedProblem inner;
    FaultPlan plan;
    plan.crashRate = 0.5;
    plan.seed = 11;
    FaultyProblem faulty(inner, plan);

    ResiliencePolicy policy;
    policy.maxAttempts = 20;
    policy.sleepBetweenRetries = false;
    SearchContext ctx(faulty, {100, 0.0}, policy);

    // Every configuration eventually evaluates to its true result.
    ScriptedProblem clean;
    for (const auto& lowered :
         std::vector<std::vector<std::size_t>>{{}, {0}, {1, 2}, {3}}) {
        Config cfg = Config::withLowered(4, lowered);
        SearchContext ref(clean, {100, 0.0});
        const auto& expected = ref.evaluate(cfg);
        const auto& got = ctx.evaluate(cfg);
        EXPECT_EQ(got.status, expected.status) << cfg.toString();
        EXPECT_DOUBLE_EQ(got.speedup, expected.speedup);
    }
    EXPECT_GT(ctx.retryCount(), 0u);
    EXPECT_EQ(ctx.quarantinedCount(), 0u);
}

TEST(Resilience, RetryExhaustionQuarantinesTheConfig)
{
    ScriptedProblem inner;
    FaultPlan plan;
    plan.crashRate = 1.0; // every attempt crashes
    plan.seed = 5;
    FaultyProblem faulty(inner, plan);

    ResiliencePolicy policy;
    policy.maxAttempts = 3;
    policy.sleepBetweenRetries = false;
    SearchContext ctx(faulty, {100, 0.0}, policy);

    const auto& eval = ctx.evaluate(Config::withLowered(4, {0}));
    EXPECT_EQ(eval.status, EvalStatus::RuntimeFail);
    EXPECT_EQ(ctx.retryCount(), 2u);
    EXPECT_EQ(ctx.quarantinedCount(), 1u);
    EXPECT_EQ(inner.rawCalls(), 0); // the crash replaced every run

    // The search continues: further configs evaluate (and fail)
    // without the context aborting.
    const auto& second = ctx.evaluate(Config::withLowered(4, {1}));
    EXPECT_EQ(second.status, EvalStatus::RuntimeFail);
    EXPECT_EQ(ctx.quarantinedCount(), 2u);
}

TEST(Resilience, DeadlineConvertsStragglersIntoRuntimeFails)
{
    ScriptedProblem inner;
    FaultPlan plan;
    plan.hangRate = 1.0; // every attempt stalls
    plan.hangSeconds = 0.03;
    plan.seed = 3;
    FaultyProblem faulty(inner, plan);

    ResiliencePolicy policy;
    policy.maxAttempts = 2;
    policy.deadlineSeconds = 0.005;
    policy.sleepBetweenRetries = false;
    SearchContext ctx(faulty, {100, 0.0}, policy);

    const auto& eval = ctx.evaluate(Config::withLowered(4, {0}));
    EXPECT_EQ(eval.status, EvalStatus::RuntimeFail);
    EXPECT_EQ(ctx.deadlineMissCount(), 2u);
    EXPECT_EQ(ctx.retryCount(), 1u);
    EXPECT_EQ(ctx.quarantinedCount(), 1u);
}

TEST(Resilience, InjectedNaNLossNeverWinsASearch)
{
    ScriptedProblem inner;
    FaultPlan plan;
    plan.nanRate = 1.0;
    plan.seed = 13;
    FaultyProblem faulty(inner, plan);

    auto result = search::runSearch(faulty, "DD", {1000, 0.0});
    EXPECT_FALSE(result.foundImprovement);
    EXPECT_GT(faulty.injector().nansInjected(), 0u);
}

/**
 * The headline property of the resilience layer: with transient fault
 * injection on (10% crash rate, fixed seed) and retries enabled,
 * every strategy completes and reports exactly the result it finds
 * with injection off — the injected failures are fully absorbed.
 */
TEST(Resilience, AllStrategiesMatchCleanRunUnderInjection)
{
    search::SearchBudget budget{100000, 0.0};
    std::size_t totalRetries = 0;
    for (const char* code : {"CB", "CM", "DD", "HR", "HC", "GA"}) {
        ScriptedProblem clean;
        auto expected = search::runSearch(clean, code, budget);

        ScriptedProblem inner;
        FaultPlan plan;
        plan.crashRate = 0.1;
        plan.seed = 2020;
        FaultyProblem faulty(inner, plan);
        search::SearchRunOptions run;
        run.resilience.maxAttempts = 12;
        run.resilience.sleepBetweenRetries = false;
        auto injected = search::runSearch(faulty, code, budget, run);

        EXPECT_EQ(injected.foundImprovement, expected.foundImprovement)
            << code;
        EXPECT_EQ(injected.best, expected.best) << code;
        EXPECT_DOUBLE_EQ(injected.bestEvaluation.speedup,
                         expected.bestEvaluation.speedup)
            << code;
        EXPECT_EQ(injected.evaluated, expected.evaluated) << code;
        EXPECT_EQ(injected.quarantined, 0u) << code;
        totalRetries += injected.retries;
    }
    // The injector did fire: the equivalence above was earned by
    // retries, not by the faults never happening.
    EXPECT_GT(totalRetries, 0u);
}

/**
 * Batch-parallel stress pin: with fault injection and retries active,
 * a 4-worker search must report exactly the serial run's trajectory —
 * including the resilience counters. Fault draws are a pure function
 * of (seed, config key, attempt), and each configuration's attempt
 * sequence stays private to its evaluation task, so worker scheduling
 * cannot change which faults fire.
 */
TEST(Resilience, BatchParallelMatchesSerialUnderInjection)
{
    search::SearchBudget budget{100000, 0.0};
    std::size_t totalRetries = 0;
    for (const char* code : {"CB", "CM", "DD", "HR", "HC", "GA"}) {
        auto runWith = [&](std::size_t jobs) {
            ScriptedProblem inner;
            FaultPlan plan;
            plan.crashRate = 0.15;
            plan.nanRate = 0.05;
            plan.seed = 2020;
            FaultyProblem faulty(inner, plan);
            search::SearchRunOptions run;
            run.resilience.maxAttempts = 12;
            run.resilience.sleepBetweenRetries = false;
            run.searchJobs = jobs;
            return search::runSearch(faulty, code, budget, run);
        };
        auto serial = runWith(1);
        auto parallel = runWith(4);

        EXPECT_EQ(parallel.best, serial.best) << code;
        EXPECT_DOUBLE_EQ(parallel.bestEvaluation.speedup,
                         serial.bestEvaluation.speedup)
            << code;
        EXPECT_EQ(parallel.evaluated, serial.evaluated) << code;
        EXPECT_EQ(parallel.cacheHits, serial.cacheHits) << code;
        EXPECT_EQ(parallel.retries, serial.retries) << code;
        EXPECT_EQ(parallel.deadlineMisses, serial.deadlineMisses)
            << code;
        EXPECT_EQ(parallel.quarantined, serial.quarantined) << code;
        totalRetries += parallel.retries;
    }
    EXPECT_GT(totalRetries, 0u);
}

/**
 * Quarantine parity: when retries run out, serial and parallel runs
 * must quarantine the *same* configurations (observable as identical
 * runtime_fail cache entries), not merely the same number of them.
 */
TEST(Resilience, ParallelQuarantineSetMatchesSerial)
{
    using hpcmixp::support::json::Value;
    auto quarantineKeys = [&](std::size_t jobs,
                              std::size_t& quarantined) {
        ScriptedProblem inner(false);
        FaultPlan plan;
        plan.crashRate = 0.6; // enough to exhaust 2 attempts at times
        plan.seed = 17;
        FaultyProblem faulty(inner, plan);
        search::SearchRunOptions run;
        run.resilience.maxAttempts = 2;
        run.resilience.sleepBetweenRetries = false;
        run.searchJobs = jobs;
        Value cache;
        run.checkpointSink = [&cache](const Value& v) { cache = v; };
        auto result =
            search::runSearch(faulty, "CB", {100000, 0.0}, run);
        quarantined = result.quarantined;
        std::vector<std::string> keys;
        for (const auto& e : cache.at("evaluations").items())
            if (e.at("status").asString() == "runtime_fail")
                keys.push_back(e.at("config").asString());
        std::sort(keys.begin(), keys.end());
        return keys;
    };
    std::size_t serialQuarantined = 0, parallelQuarantined = 0;
    auto serial = quarantineKeys(1, serialQuarantined);
    auto parallel = quarantineKeys(4, parallelQuarantined);
    EXPECT_GT(serialQuarantined, 0u);
    EXPECT_EQ(parallelQuarantined, serialQuarantined);
    EXPECT_EQ(parallel, serial);
}

} // namespace
