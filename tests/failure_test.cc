/**
 * @file
 * Failure-injection tests: crashing configurations, destroyed (NaN)
 * outputs, and strategies encountering hostile problems must degrade
 * gracefully — the behaviours the paper attributes to searches that
 * "raise run-time errors" or produce invalid configurations.
 */

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/tuner.h"
#include "support/logging.h"
#include "search/driver.h"

namespace {

using namespace hpcmixp;
using search::Config;
using search::EvalStatus;

/** A tiny benchmark whose lowered configuration misbehaves on demand. */
class HostileBenchmark final : public benchmarks::Benchmark {
  public:
    enum class Failure { None, Throw, NaN };

    explicit HostileBenchmark(Failure mode)
        : mode_(mode), model_("hostile")
    {
        using namespace model;
        ModuleId m = model_.addModule("hostile.c");
        FunctionId f = model_.addFunction(m, "f");
        model_.addVariable(f, "data", realPointer(), "data");
        model_.addVariable(f, "aux", realPointer(), "aux");
    }

    std::string name() const override { return "hostile"; }
    std::string description() const override
    {
        return "failure-injection benchmark";
    }
    bool isKernel() const override { return true; }

    const model::ProgramModel& programModel() const override
    {
        return model_;
    }

    benchmarks::RunOutput
    run(const benchmarks::PrecisionMap& pm) const override
    {
        bool lowered =
            pm.get("data") == runtime::Precision::Float32;
        if (lowered && mode_ == Failure::Throw)
            throw std::runtime_error("injected crash");
        benchmarks::RunOutput out;
        out.values.assign(64, 1.0);
        if (lowered && mode_ == Failure::NaN)
            out.values[7] = std::nan("");
        return out;
    }

  private:
    Failure mode_;
    model::ProgramModel model_;
};

core::TunerOptions
fastOptions()
{
    core::TunerOptions opt;
    opt.threshold = 1e-6;
    opt.searchReps = 1;
    opt.finalReps = 3;
    opt.budget = {100, 0.0};
    return opt;
}

TEST(FailureInjection, CrashingConfigIsRuntimeFail)
{
    HostileBenchmark bench(HostileBenchmark::Failure::Throw);
    core::BenchmarkTuner tuner(bench, fastOptions());
    Config cfg(tuner.clusterCount());
    cfg.set(tuner.clusters().clusterOf(
        bench.programModel().findVariable("data")));
    auto eval = tuner.evaluateClusterConfig(cfg, 1);
    EXPECT_EQ(eval.status, EvalStatus::RuntimeFail);
    EXPECT_TRUE(std::isnan(eval.qualityLoss));
}

TEST(FailureInjection, CrashingConfigNeverWinsASearch)
{
    HostileBenchmark bench(HostileBenchmark::Failure::Throw);
    core::BenchmarkTuner tuner(bench, fastOptions());
    auto outcome = tuner.tune("DD");
    // DD must settle on the aux-only (or baseline) configuration.
    EXPECT_LE(outcome.finalQualityLoss, 1e-6);
    auto dataCluster = tuner.clusters().clusterOf(
        bench.programModel().findVariable("data"));
    EXPECT_FALSE(outcome.clusterConfig.test(dataCluster));
}

TEST(FailureInjection, NaNOutputFailsVerificationButNotTheSearch)
{
    HostileBenchmark bench(HostileBenchmark::Failure::NaN);
    core::BenchmarkTuner tuner(bench, fastOptions());
    Config cfg(tuner.clusterCount());
    cfg.set(tuner.clusters().clusterOf(
        bench.programModel().findVariable("data")));
    auto eval = tuner.evaluateClusterConfig(cfg, 1);
    EXPECT_EQ(eval.status, EvalStatus::QualityFail);
    EXPECT_TRUE(std::isnan(eval.qualityLoss));

    auto outcome = tuner.tune("GA");
    EXPECT_LE(outcome.finalQualityLoss, 1e-6);
}

TEST(FailureInjection, FinalMeasureOnCrashingConfig)
{
    HostileBenchmark bench(HostileBenchmark::Failure::Throw);
    core::BenchmarkTuner tuner(bench, fastOptions());
    Config cfg = Config::allLowered(tuner.clusterCount());
    auto eval = tuner.finalMeasure(cfg);
    EXPECT_EQ(eval.status, EvalStatus::RuntimeFail);
}

/** run() that returns an empty output must be rejected up front. */
class EmptyBenchmark final : public benchmarks::Benchmark {
  public:
    EmptyBenchmark() : model_("empty")
    {
        auto m = model_.addModule("empty.c");
        auto f = model_.addFunction(m, "f");
        model_.addVariable(f, "x", model::realScalar(), "x");
    }
    std::string name() const override { return "empty"; }
    std::string description() const override { return "empty"; }
    bool isKernel() const override { return true; }
    const model::ProgramModel& programModel() const override
    {
        return model_;
    }
    benchmarks::RunOutput
    run(const benchmarks::PrecisionMap&) const override
    {
        return {};
    }

  private:
    model::ProgramModel model_;
};

TEST(FailureInjection, EmptyBaselineOutputIsFatal)
{
    EmptyBenchmark bench;
    EXPECT_THROW(core::BenchmarkTuner(bench, fastOptions()),
                 support::FatalError);
}

} // namespace
