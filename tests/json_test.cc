/**
 * @file
 * Tests for the JSON module and the FloatSmith-style interchange
 * format built on it.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/interchange.h"
#include "support/json.h"
#include "support/logging.h"

namespace {

using namespace hpcmixp;
using namespace hpcmixp::support::json;
using hpcmixp::support::FatalError;

// ---- json values -------------------------------------------------------

TEST(Json, ConstructionAndAccessors)
{
    Value obj = Value::object();
    obj.set("name", Value::string("dd"));
    obj.set("count", Value::number(42));
    obj.set("ok", Value::boolean(true));
    obj.set("nothing", Value::null());

    EXPECT_EQ(obj.at("name").asString(), "dd");
    EXPECT_EQ(obj.at("count").asLong(), 42);
    EXPECT_TRUE(obj.at("ok").asBool());
    EXPECT_TRUE(obj.at("nothing").isNull());
    EXPECT_FALSE(obj.has("missing"));
    EXPECT_THROW(obj.at("missing"), FatalError);
    EXPECT_THROW(obj.at("name").asNumber(), FatalError);
}

TEST(Json, ObjectKeysKeepInsertionOrder)
{
    Value obj = Value::object();
    obj.set("z", Value::number(1));
    obj.set("a", Value::number(2));
    obj.set("m", Value::number(3));
    ASSERT_EQ(obj.keys().size(), 3u);
    EXPECT_EQ(obj.keys()[0], "z");
    EXPECT_EQ(obj.keys()[2], "m");
    obj.set("z", Value::number(9)); // overwrite keeps position
    EXPECT_EQ(obj.keys().size(), 3u);
    EXPECT_EQ(obj.at("z").asLong(), 9);
}

TEST(Json, DumpCompactAndPretty)
{
    Value arr = Value::array();
    arr.push(Value::number(1));
    arr.push(Value::string("two"));
    Value obj = Value::object();
    obj.set("items", arr);
    EXPECT_EQ(obj.dump(), R"({"items":[1,"two"]})");
    std::string pretty = obj.dump(2);
    EXPECT_NE(pretty.find("\n  \"items\""), std::string::npos);
}

TEST(Json, DumpEscapesStrings)
{
    Value v = Value::string("a\"b\\c\nd");
    EXPECT_EQ(v.dump(), R"("a\"b\\c\nd")");
}

TEST(Json, NonFiniteNumbersSerializeAsNull)
{
    EXPECT_EQ(Value::number(std::nan("")).dump(), "null");
    EXPECT_EQ(Value::number(INFINITY).dump(), "null");
}

// ---- json parsing --------------------------------------------------------

TEST(Json, ParseRoundTrip)
{
    std::string text =
        R"({"a": [1, 2.5, -3e-2], "b": {"c": true, "d": null},)"
        R"( "s": "x\ty"})";
    Value v = parse(text);
    EXPECT_DOUBLE_EQ(v.at("a").items()[1].asNumber(), 2.5);
    EXPECT_DOUBLE_EQ(v.at("a").items()[2].asNumber(), -3e-2);
    EXPECT_TRUE(v.at("b").at("c").asBool());
    EXPECT_TRUE(v.at("b").at("d").isNull());
    EXPECT_EQ(v.at("s").asString(), "x\ty");

    // Re-parse of the dump yields the same structure.
    Value again = parse(v.dump());
    EXPECT_EQ(again.dump(), v.dump());
}

TEST(Json, ParseUnicodeEscapes)
{
    Value v = parse(R"("Aé")");
    EXPECT_EQ(v.asString(), "A\xc3\xa9");
}

TEST(Json, ParseErrorsAreFatal)
{
    EXPECT_THROW(parse("{"), FatalError);
    EXPECT_THROW(parse("[1, ]"), FatalError);
    EXPECT_THROW(parse("{\"a\" 1}"), FatalError);
    EXPECT_THROW(parse("tru"), FatalError);
    EXPECT_THROW(parse("1 2"), FatalError);
    EXPECT_THROW(parse(""), FatalError);
}

TEST(Json, ParseEmptyContainers)
{
    EXPECT_TRUE(parse("{}").isObject());
    EXPECT_TRUE(parse("[]").isArray());
    EXPECT_EQ(parse("[]").items().size(), 0u);
}

// ---- interchange -----------------------------------------------------------

TEST(Interchange, ConfigRoundTrip)
{
    search::Config config = search::Config::withLowered(6, {1, 4});
    Value v = core::configToJson(config);
    EXPECT_EQ(v.at("sites").asLong(), 6);
    search::Config back = core::configFromJson(v, 6);
    EXPECT_EQ(back, config);
}

TEST(Interchange, ConfigFromJsonValidates)
{
    Value v = core::configToJson(search::Config(4));
    EXPECT_THROW(core::configFromJson(v, 5), FatalError);

    Value bad = Value::object();
    bad.set("sites", Value::number(2));
    Value lowered = Value::array();
    lowered.push(Value::number(7));
    bad.set("lowered", lowered);
    EXPECT_THROW(core::configFromJson(bad, 2), FatalError);

    EXPECT_THROW(core::configFromJson(Value::array(), 2), FatalError);
}

TEST(Interchange, ClusteringExportContainsMembersAndBindKeys)
{
    model::ProgramModel m("demo");
    auto mod = m.addModule("demo.c");
    auto f = m.addFunction(mod, "f");
    auto a = m.addVariable(f, "a", model::realPointer(), "knobA");
    auto b = m.addParameter(f, "b", model::realPointer());
    m.addCallBind(a, b);
    m.addVariable(f, "s", model::realScalar());

    auto clusters = typeforge::analyze(m);
    Value v = core::clusteringToJson(m, clusters);
    EXPECT_EQ(v.at("program").asString(), "demo");
    EXPECT_EQ(v.at("total_variables").asLong(), 3);
    EXPECT_EQ(v.at("total_clusters").asLong(), 2);
    const auto& first = v.at("clusters").items()[0];
    EXPECT_EQ(first.at("members").items().size(), 2u);
    EXPECT_EQ(first.at("bind_keys").items()[0].asString(), "knobA");
}

TEST(Interchange, OutcomeExportIsParseable)
{
    core::TuneOutcome outcome;
    outcome.search.strategyCode = "DD";
    outcome.search.evaluated = 12;
    outcome.search.foundImprovement = true;
    outcome.clusterConfig = search::Config::withLowered(3, {0, 2});
    outcome.finalSpeedup = 1.5;
    outcome.finalQualityLoss = 1e-9;

    Value v = core::outcomeToJson("hotspot", "DD", 1e-6, outcome);
    Value reparsed = parse(v.dump(2));
    EXPECT_EQ(reparsed.at("benchmark").asString(), "hotspot");
    EXPECT_EQ(reparsed.at("evaluated_configurations").asLong(), 12);
    EXPECT_DOUBLE_EQ(reparsed.at("speedup").asNumber(), 1.5);
    auto config = core::configFromJson(reparsed.at("configuration"), 3);
    EXPECT_EQ(config, outcome.clusterConfig);
}

TEST(Interchange, NaNQualitySerializesAsNull)
{
    core::TuneOutcome outcome;
    outcome.finalQualityLoss = std::nan("");
    Value v = core::outcomeToJson("srad", "GA", 1e-3, outcome);
    Value reparsed = parse(v.dump());
    EXPECT_TRUE(reparsed.at("quality_loss").isNull());
}

} // namespace
