/**
 * @file
 * Cross-validation of the two model-construction paths: mini-C source
 * mirrors of several kernels, parsed with the Typeforge frontend, must
 * produce the same cluster structure as the builder-constructed models
 * the benchmarks ship with.
 */

#include <gtest/gtest.h>

#include "benchmarks/registry.h"
#include "typeforge/clustering.h"
#include "typeforge/frontend/parser.h"

namespace {

using namespace hpcmixp;
using typeforge::analyze;
using typeforge::frontend::parseProgram;

struct SourceMirror {
    const char* benchmark;
    const char* source;
};

// Mini-C mirrors of the benchmark sources (same globals, same call
// structure, same pool carving) — the executable statements are
// irrelevant to the type-dependence analysis beyond the bindings.
const SourceMirror kMirrors[] = {
    {"hydro-1d", R"(
double *x; double *y; double *z; double *coef;
void kernel1(double *px, double *py, double *pz, double *pcoef) {
    for (int k = 0; k < 1000; k++) {
        px[k] = pcoef[0] + py[k] * (pcoef[1]*pz[k+10] + pcoef[2]*pz[k+11]);
    }
}
void main_driver() { kernel1(x, y, z, coef); }
)"},
    {"iccg", R"(
double *x; double *v;
void kernel2(double *px, double *pv) {
    int ii = 100; int ipntp = 0; int i = 0;
    do {
        int ipnt = ipntp; ipntp += ii; ii /= 2; i = ipntp;
        for (int k = ipnt + 1; k < ipntp; k += 2) {
            i++;
            px[i] = px[k] - pv[k]*px[k-1] - pv[k+1]*px[k+1];
        }
    } while (ii > 0);
}
void main_driver() { kernel2(x, v); }
)"},
    {"banded-lin-eq", R"(
double *x; double *y;
void kernel4(double *px, double *py) {
    int m = (1001 - 7) / 2;
    for (int k = 6; k < 1001; k += m) {
        int lw = k - 6;
        px[k-1] = py[4] * (px[k-1] - px[lw]*py[4]);
    }
}
void main_driver() { kernel4(x, y); }
)"},
    {"eos", R"(
double *x; double *u;
double *pool; double *y; double *z;
double *coef;
void kernel7(double *px, double *pu, double *py, double *pz,
             double *pcoef) {
    for (int k = 0; k < 1000; k++) {
        px[k] = pu[k] + pcoef[1] * (pz[k] + pcoef[1]*py[k]);
    }
}
void main_driver() {
    y = pool;
    z = pool + 1000;
    kernel7(x, u, y, z, coef);
}
)"},
    {"planckian", R"(
double *in_pool; double *x; double *u; double *v;
double *out_pool; double *w; double *y;
void kernel22(double *px, double *pu, double *pv, double *pw,
              double *py) {
    for (int k = 0; k < 1000; k++) {
        py[k] = pu[k] / pv[k];
        pw[k] = px[k] / (exp(py[k]) - 1.0);
    }
}
void main_driver() {
    x = in_pool; u = in_pool + 1000; v = in_pool + 2000;
    w = out_pool; y = out_pool + 1000;
    kernel22(x, u, v, w, y);
}
)"},
    {"tridiag", R"(
double *x; double *y; double *z;
void kernel5(double *px, double *py, double *pz) {
    for (int i = 1; i < 1000; i++)
        px[i] = pz[i] * (py[i] - px[i-1]);
}
void main_driver() { kernel5(x, y, z); }
)"},
    {"gen-lin-recur", R"(
double *w; double *b;
void kernel6(double *pw, double *pb) {
    for (int i = 1; i < 100; i++) {
        pw[i] = 0.01;
        for (int k = 0; k < i; k++)
            pw[i] += pb[k*100 + i] * pw[i - k - 1];
    }
}
void main_driver() { kernel6(w, b); }
)"},
};

class SourceMirrorTest
    : public ::testing::TestWithParam<SourceMirror> {};

TEST_P(SourceMirrorTest, FrontendClustersMatchBuilderClusters)
{
    const auto& mirror = GetParam();
    auto bench = benchmarks::BenchmarkRegistry::instance().create(
        mirror.benchmark);
    auto builderClusters = analyze(bench->programModel());

    auto parsed = parseProgram(mirror.source, mirror.benchmark);
    ASSERT_TRUE(parsed.ok());
    auto parsedClusters = analyze(parsed.model);

    EXPECT_EQ(parsedClusters.clusterCount(),
              builderClusters.clusterCount())
        << mirror.benchmark;
}

INSTANTIATE_TEST_SUITE_P(Mirrors, SourceMirrorTest,
                         ::testing::ValuesIn(kMirrors),
                         [](const auto& info) {
                             std::string n = info.param.benchmark;
                             for (auto& c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(SourceMirrorTest, ExtraScalarLocalAddsOneSingletonCluster)
{
    // Declaring a scalar accumulator adds exactly one singleton
    // cluster relative to the accumulator-free source.
    const char* withAcc = R"(
double *w; double *b;
void kernel6(double *pw, double *pb) {
    for (int i = 1; i < 100; i++) {
        double acc = 0.01;
        for (int k = 0; k < i; k++)
            acc += pb[k*100 + i] * pw[i - k - 1];
        pw[i] = acc;
    }
}
void main_driver() { kernel6(w, b); }
)";
    auto a = analyze(parseProgram(kMirrors[6].source, "bare").model);
    auto b = analyze(parseProgram(withAcc, "with-acc").model);
    EXPECT_EQ(b.clusterCount(), a.clusterCount() + 1);
    EXPECT_EQ(b.variableCount(), a.variableCount() + 1);
}


// Application mirrors: the pointer-flow structure of two apps whose
// models use only Assign/CallBind edges the mini-C frontend extracts.
TEST(SourceMirrorTest, HotspotMirrorMatches)
{
    const char* source = R"(
void compute_tran_temp(double *temp_src, double *temp_dst,
                       double *power) {
    double delta; double tc; double tn; double ts;
    double te; double tw; double step_div_cap;
}
void main_driver() {
    double *temp; double *result; double *power;
    temp = result;
    compute_tran_temp(temp, result, power);
}
)";
    auto parsed = parseProgram(source, "hotspot-mirror");
    ASSERT_TRUE(parsed.ok());
    auto bench =
        benchmarks::BenchmarkRegistry::instance().create("hotspot");
    EXPECT_EQ(analyze(parsed.model).clusterCount(),
              analyze(bench->programModel()).clusterCount());
}

TEST(SourceMirrorTest, LavamdMirrorMatches)
{
    const char* source = R"(
void kernel_cpu(double *rv, double *qv, double *fv) {
    double r2; double u2; double vij; double fs;
    double dx; double dy; double dz; double a2;
}
void main_driver() {
    double *rv; double *qv; double *fv;
    kernel_cpu(rv, qv, fv);
}
)";
    auto parsed = parseProgram(source, "lavamd-mirror");
    ASSERT_TRUE(parsed.ok());
    auto bench =
        benchmarks::BenchmarkRegistry::instance().create("lavamd");
    EXPECT_EQ(analyze(parsed.model).clusterCount(),
              analyze(bench->programModel()).clusterCount());
}

} // namespace
