/**
 * @file
 * End-to-end integration tests: full searches over real benchmarks
 * through the public API, and suite-level batch execution.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/mixpbench.h"

namespace {

using namespace hpcmixp;
using core::SuiteJob;
using core::SuiteOptions;

core::TunerOptions
fastOptions(double threshold)
{
    core::TunerOptions opt;
    opt.threshold = threshold;
    opt.searchReps = 1;
    opt.finalReps = 3;
    opt.budget = {150, 0.0};
    return opt;
}

/** Every strategy must complete a kernel search end to end. */
class EveryStrategy : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryStrategy, CompletesOnAKernel)
{
    auto bench =
        benchmarks::BenchmarkRegistry::instance().create("int-predict");
    core::BenchmarkTuner tuner(*bench, fastOptions(1e-3));
    auto outcome = tuner.tune(GetParam());
    EXPECT_TRUE(std::isfinite(outcome.finalSpeedup));
    EXPECT_GT(outcome.finalSpeedup, 0.0);
    // The quality constraint is always respected by the final config.
    EXPECT_TRUE(outcome.finalQualityLoss <= 1e-3);
    EXPECT_EQ(outcome.clusterConfig.size(), tuner.clusterCount());
}

INSTANTIATE_TEST_SUITE_P(Strategies, EveryStrategy,
                         ::testing::Values("CB", "CM", "DD", "HR",
                                           "HC", "GA"));

TEST(Integration, CombinationalIsExhaustiveOnKernels)
{
    auto bench =
        benchmarks::BenchmarkRegistry::instance().create("iccg");
    core::BenchmarkTuner tuner(*bench, fastOptions(1e-3));
    auto outcome = tuner.tune("CB");
    // iccg has 2 clusters: CB must execute all 3 non-baseline configs.
    EXPECT_EQ(outcome.search.evaluated, 3u);
}

TEST(Integration, SradIsTunableOnlyAtRelaxedThresholds)
{
    auto bench =
        benchmarks::BenchmarkRegistry::instance().create("srad");
    core::BenchmarkTuner strict(*bench, fastOptions(1e-8));
    auto tight = strict.tune("DD");
    EXPECT_LE(tight.finalQualityLoss, 1e-8);

    core::BenchmarkTuner relaxed(*bench, fastOptions(1e-3));
    auto loose = relaxed.tune("DD");
    EXPECT_LE(loose.finalQualityLoss, 1e-3);
}

TEST(Integration, KmeansPassesStrictThresholdViaMcr)
{
    auto bench =
        benchmarks::BenchmarkRegistry::instance().create("kmeans");
    core::BenchmarkTuner tuner(*bench, fastOptions(1e-8));
    auto outcome = tuner.tune("DD");
    // MCR of the float version is 0: DD can lower everything.
    EXPECT_TRUE(outcome.search.foundImprovement);
    EXPECT_EQ(outcome.clusterConfig.count(),
              outcome.clusterConfig.size());
    EXPECT_EQ(outcome.finalQualityLoss, 0.0);
}

TEST(Integration, SuiteRunnerExecutesJobsInOrder)
{
    std::vector<SuiteJob> jobs{
        {"tridiag", "DD", 1e-3},
        {"tridiag", "GA", 1e-3},
        {"iccg", "CB", 1e-3},
    };
    SuiteOptions options;
    options.tuner = fastOptions(1e-3);
    auto rows = core::runSuite(jobs, options);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].job.strategy, "DD");
    EXPECT_EQ(rows[2].job.benchmark, "iccg");
    for (const auto& row : rows) {
        EXPECT_GT(row.totalVariables, 0u);
        EXPECT_GT(row.totalClusters, 0u);
        EXPECT_TRUE(std::isfinite(row.outcome.finalSpeedup));
    }
}

TEST(Integration, SuiteRunnerParallelMatchesSerialStructure)
{
    std::vector<SuiteJob> jobs{
        {"tridiag", "GA", 1e-3},
        {"iccg", "GA", 1e-3},
    };
    SuiteOptions serial;
    serial.tuner = fastOptions(1e-3);
    SuiteOptions parallel = serial;
    parallel.parallelJobs = 2;

    auto a = core::runSuite(jobs, serial);
    auto b = core::runSuite(jobs, parallel);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].totalClusters, b[i].totalClusters);
        EXPECT_EQ(a[i].totalVariables, b[i].totalVariables);
        // Timing differs under contention, but both schedules must
        // produce structurally valid outcomes.
        EXPECT_EQ(a[i].outcome.clusterConfig.size(),
                  b[i].outcome.clusterConfig.size());
        EXPECT_LE(a[i].outcome.finalQualityLoss, 1e-3);
        EXPECT_LE(b[i].outcome.finalQualityLoss, 1e-3);
    }
}

TEST(Integration, BudgetTruncationIsReported)
{
    auto bench =
        benchmarks::BenchmarkRegistry::instance().create("blackscholes");
    core::TunerOptions opt = fastOptions(1e-6);
    opt.budget = {2, 0.0}; // absurdly small: CM cannot finish
    core::BenchmarkTuner tuner(*bench, opt);
    auto outcome = tuner.tune("CM");
    EXPECT_TRUE(outcome.search.timedOut);
}

} // namespace
