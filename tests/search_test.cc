/**
 * @file
 * Tests for the search framework: configurations, the metered context,
 * and all six strategies against controllable mock problems.
 */

#include <atomic>
#include <functional>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "search/driver.h"
#include "search/genetic.h"
#include "search/strategy.h"
#include "support/logging.h"

namespace {

using namespace hpcmixp::search;

/** Fully scriptable problem for strategy tests. */
class MockProblem : public SearchProblem {
  public:
    using PassFn = std::function<bool(const Config&)>;
    using SpeedFn = std::function<double(const Config&)>;

    MockProblem(std::size_t sites, PassFn pass)
        : sites_(sites),
          pass_(std::move(pass)),
          speed_([](const Config& c) {
              return 1.0 + 0.1 * static_cast<double>(c.count());
          })
    {
    }

    void setSpeed(SpeedFn fn) { speed_ = std::move(fn); }
    void setCompileCheck(PassFn fn) { compiles_ = std::move(fn); }
    void setStructure(StructureNode tree)
    {
        tree_ = std::move(tree);
        hasTree_ = true;
    }

    std::size_t siteCount() const override { return sites_; }

    Evaluation
    evaluate(const Config& config) override
    {
        ++rawCalls_;
        Evaluation eval;
        if (compiles_ && !compiles_(config)) {
            eval.status = EvalStatus::CompileFail;
            return eval;
        }
        eval.speedup = speed_(config);
        eval.runtimeSeconds = 1.0 / eval.speedup;
        if (pass_(config)) {
            eval.status = EvalStatus::Pass;
            eval.qualityLoss = 0.0;
        } else {
            eval.status = EvalStatus::QualityFail;
            eval.qualityLoss = 1.0;
        }
        return eval;
    }

    const StructureNode* structure() const override
    {
        return hasTree_ ? &tree_ : nullptr;
    }

    int rawCalls() const { return rawCalls_; }

  private:
    std::size_t sites_;
    PassFn pass_;
    SpeedFn speed_;
    PassFn compiles_;
    StructureNode tree_;
    bool hasTree_ = false;
    // Atomic: batch evaluation calls evaluate() from pool workers.
    std::atomic<int> rawCalls_{0};
};

SearchBudget
bigBudget()
{
    return {100000, 0.0};
}

// ---- Config ------------------------------------------------------------

TEST(ConfigTest, BasicBitOperations)
{
    Config c(4);
    EXPECT_TRUE(c.isBaseline());
    c.set(1);
    c.set(3);
    EXPECT_EQ(c.count(), 2u);
    EXPECT_TRUE(c.test(1));
    EXPECT_FALSE(c.test(0));
    EXPECT_EQ(c.toString(), "0101");
    EXPECT_EQ(c.lowered(), (std::vector<std::size_t>{1, 3}));
    c.set(1, false);
    EXPECT_EQ(c.count(), 1u);
}

TEST(ConfigTest, FactoriesAndSetOps)
{
    Config all = Config::allLowered(3);
    EXPECT_EQ(all.count(), 3u);
    Config some = Config::withLowered(3, {0, 2});
    EXPECT_TRUE(some.isSubsetOf(all));
    EXPECT_FALSE(all.isSubsetOf(some));
    Config other = Config::withLowered(3, {1});
    EXPECT_EQ(some.unionWith(other), all);
    EXPECT_EQ(some.unionWith(some), some);
}

TEST(ConfigDeathTest, OutOfRangePanics)
{
    Config c(2);
    EXPECT_DEATH((void)c.test(2), "out of range");
}

// ---- SearchContext -----------------------------------------------------

TEST(Context, CachesRepeatEvaluations)
{
    MockProblem problem(3, [](const Config&) { return true; });
    SearchContext ctx(problem, bigBudget());
    Config cfg = Config::withLowered(3, {0});
    ctx.evaluate(cfg);
    ctx.evaluate(cfg);
    ctx.evaluate(cfg);
    EXPECT_EQ(problem.rawCalls(), 1);
    EXPECT_EQ(ctx.evaluatedCount(), 1u);
    EXPECT_EQ(ctx.cacheHitCount(), 2u);
}

TEST(Context, CompileFailuresAreNotEV)
{
    MockProblem problem(2, [](const Config&) { return true; });
    problem.setCompileCheck(
        [](const Config& c) { return c.count() != 1; });
    SearchContext ctx(problem, bigBudget());
    ctx.evaluate(Config::withLowered(2, {0}));  // compile fail
    ctx.evaluate(Config::withLowered(2, {0, 1}));
    EXPECT_EQ(ctx.evaluatedCount(), 1u);
    EXPECT_EQ(ctx.compileFailCount(), 1u);
}

TEST(Context, TracksBestPassingBySpeedup)
{
    MockProblem problem(3, [](const Config& c) {
        return c.count() <= 2; // lowering everything fails
    });
    SearchContext ctx(problem, bigBudget());
    ctx.evaluate(Config(3)); // baseline never competes
    EXPECT_FALSE(ctx.hasBest());
    ctx.evaluate(Config::withLowered(3, {0}));
    ctx.evaluate(Config::withLowered(3, {0, 1}));
    ctx.evaluate(Config::withLowered(3, {0, 1, 2})); // fails
    ASSERT_TRUE(ctx.hasBest());
    EXPECT_EQ(ctx.bestConfig().count(), 2u);
    EXPECT_DOUBLE_EQ(ctx.bestEvaluation().speedup, 1.2);
}

TEST(Context, BudgetExhaustionThrows)
{
    MockProblem problem(8, [](const Config&) { return true; });
    SearchContext ctx(problem, {3, 0.0});
    ctx.evaluate(Config::withLowered(8, {0}));
    ctx.evaluate(Config::withLowered(8, {1}));
    ctx.evaluate(Config::withLowered(8, {2}));
    EXPECT_THROW(ctx.evaluate(Config::withLowered(8, {3})),
                 BudgetExhausted);
    EXPECT_TRUE(ctx.exhausted());
}

// ---- SearchContext::evaluateBatch --------------------------------------

TEST(BatchEvaluate, AccountsHitsAndDuplicatesLikeTheSerialLoop)
{
    for (std::size_t jobs : {1u, 4u}) {
        MockProblem problem(3, [](const Config&) { return true; });
        SearchContext ctx(problem, bigBudget());
        ctx.setSearchJobs(jobs);
        ctx.evaluate(Config::withLowered(3, {0})); // pre-batch cache

        std::vector<Config> batch{
            Config::withLowered(3, {0}),    // hit on pre-batch cache
            Config::withLowered(3, {1}),    // fresh
            Config::withLowered(3, {1}),    // duplicate of a fresh one
            Config::withLowered(3, {1, 2}), // fresh
        };
        auto evals = ctx.evaluateBatch(batch);
        ASSERT_EQ(evals.size(), 4u);
        EXPECT_DOUBLE_EQ(evals[1].speedup, evals[2].speedup);
        EXPECT_EQ(ctx.evaluatedCount(), 3u) << "jobs=" << jobs;
        EXPECT_EQ(ctx.cacheHitCount(), 2u) << "jobs=" << jobs;
        EXPECT_EQ(problem.rawCalls(), 3) << "jobs=" << jobs;
        ASSERT_TRUE(ctx.hasBest());
        EXPECT_EQ(ctx.bestConfig(), Config::withLowered(3, {1, 2}));
    }
}

TEST(BatchEvaluate, BudgetCutsTheBatchAtTheSerialPoint)
{
    for (std::size_t jobs : {1u, 4u}) {
        MockProblem problem(8, [](const Config&) { return true; });
        SearchContext ctx(problem, {3, 0.0});
        ctx.setSearchJobs(jobs);
        std::vector<Config> batch;
        for (std::size_t i = 0; i < 6; ++i)
            batch.push_back(Config::withLowered(8, {i}));
        EXPECT_THROW(ctx.evaluateBatch(batch), BudgetExhausted);
        // Exactly the serial prefix committed; the speculative tail
        // left no trace in EV, cache, or best.
        EXPECT_EQ(ctx.evaluatedCount(), 3u) << "jobs=" << jobs;
        EXPECT_TRUE(ctx.isCached(Config::withLowered(8, {2})));
        EXPECT_FALSE(ctx.isCached(Config::withLowered(8, {3})));
        EXPECT_TRUE(ctx.exhausted());
        ASSERT_TRUE(ctx.hasBest());
        EXPECT_EQ(ctx.bestConfig().count(), 1u);
    }
}

TEST(BatchEvaluate, CompileFailuresCountedIdenticallyInParallel)
{
    for (std::size_t jobs : {1u, 4u}) {
        MockProblem problem(4, [](const Config&) { return true; });
        problem.setCompileCheck(
            [](const Config& c) { return c.count() != 1; });
        SearchContext ctx(problem, bigBudget());
        ctx.setSearchJobs(jobs);
        std::vector<Config> batch{
            Config::withLowered(4, {0}),    // compile fail
            Config::withLowered(4, {0, 1}), // runs
            Config::withLowered(4, {2}),    // compile fail
            Config::withLowered(4, {2, 3}), // runs
        };
        auto evals = ctx.evaluateBatch(batch);
        EXPECT_EQ(evals[0].status, EvalStatus::CompileFail);
        EXPECT_EQ(ctx.evaluatedCount(), 2u) << "jobs=" << jobs;
        EXPECT_EQ(ctx.compileFailCount(), 2u) << "jobs=" << jobs;
    }
}

TEST(BatchEvaluate, EmptyAndSingletonBatches)
{
    MockProblem problem(2, [](const Config&) { return true; });
    SearchContext ctx(problem, bigBudget());
    ctx.setSearchJobs(4);
    EXPECT_TRUE(ctx.evaluateBatch({}).empty());
    std::vector<Config> one{Config::withLowered(2, {0})};
    auto evals = ctx.evaluateBatch(one);
    ASSERT_EQ(evals.size(), 1u);
    EXPECT_EQ(ctx.evaluatedCount(), 1u);
}

// ---- Strategies ----------------------------------------------------------

TEST(Combinational, EnumeratesEveryNonBaselineConfig)
{
    MockProblem problem(3, [](const Config&) { return true; });
    auto result = runSearch(problem, "CB", bigBudget());
    EXPECT_EQ(result.evaluated, 7u); // 2^3 - 1
    EXPECT_FALSE(result.timedOut);
    // Speedup grows with count, so the best is all-lowered.
    EXPECT_EQ(result.best.count(), 3u);
}

TEST(Combinational, FindsIsolatedOptimum)
{
    // Only the exact config {0,2} passes.
    MockProblem problem(4, [](const Config& c) {
        return c == Config::withLowered(4, {0, 2});
    });
    auto result = runSearch(problem, "CB", bigBudget());
    ASSERT_TRUE(result.foundImprovement);
    EXPECT_EQ(result.best, Config::withLowered(4, {0, 2}));
}

TEST(DeltaDebug, FastPathWhenEverythingLowers)
{
    MockProblem problem(6, [](const Config&) { return true; });
    auto result = runSearch(problem, "DD", bigBudget());
    EXPECT_EQ(result.evaluated, 1u);
    EXPECT_EQ(result.best.count(), 6u);
}

TEST(DeltaDebug, KeepsOnlyTheToxicSite)
{
    // Lowering site 2 always breaks quality.
    MockProblem problem(6, [](const Config& c) { return !c.test(2); });
    auto result = runSearch(problem, "DD", bigBudget());
    ASSERT_TRUE(result.foundImprovement);
    EXPECT_FALSE(result.best.test(2));
    EXPECT_EQ(result.best.count(), 5u);
}

TEST(DeltaDebug, StricterPredicateCostsMoreEvaluations)
{
    MockProblem loose(8, [](const Config&) { return true; });
    auto easy = runSearch(loose, "DD", bigBudget());

    MockProblem strict(8, [](const Config& c) {
        return c.count() <= 1; // almost nothing can be lowered
    });
    auto hard = runSearch(strict, "DD", bigBudget());
    EXPECT_GT(hard.evaluated, easy.evaluated);
}

TEST(Compositional, CombinesPassingSingletons)
{
    // Sites 0 and 2 pass alone and together; site 1 always fails.
    MockProblem problem(3, [](const Config& c) { return !c.test(1); });
    auto result = runSearch(problem, "CM", bigBudget());
    ASSERT_TRUE(result.foundImprovement);
    EXPECT_EQ(result.best, Config::withLowered(3, {0, 2}));
    // 3 singletons + 1 composition = 4 executed configs.
    EXPECT_EQ(result.evaluated, 4u);
}

TEST(Compositional, TerminatesWhenNoCompositionsRemain)
{
    // Singletons pass, every union fails: must stop after trying them.
    MockProblem problem(3, [](const Config& c) {
        return c.count() <= 1;
    });
    auto result = runSearch(problem, "CM", bigBudget());
    EXPECT_FALSE(result.timedOut);
    EXPECT_EQ(result.best.count(), 1u);
    EXPECT_EQ(result.evaluated, 6u); // 3 singletons + 3 pair unions
}

StructureNode
twoModuleTree()
{
    // root -> {modA: sites 0,1} {modB: sites 2,3}, leaves per site.
    StructureNode root;
    root.name = "prog";
    root.sites = {0, 1, 2, 3};
    StructureNode a, b;
    a.name = "modA";
    a.sites = {0, 1};
    b.name = "modB";
    b.sites = {2, 3};
    for (std::size_t s : {0u, 1u}) {
        StructureNode leaf;
        leaf.name = "va" + std::to_string(s);
        leaf.sites = {s};
        a.children.push_back(leaf);
    }
    for (std::size_t s : {2u, 3u}) {
        StructureNode leaf;
        leaf.name = "vb" + std::to_string(s);
        leaf.sites = {s};
        b.children.push_back(leaf);
    }
    root.children = {a, b};
    return root;
}

TEST(Hierarchical, AcceptsWholeProgramWhenItPasses)
{
    MockProblem problem(4, [](const Config&) { return true; });
    problem.setStructure(twoModuleTree());
    auto result = runSearch(problem, "HR", bigBudget());
    EXPECT_EQ(result.evaluated, 1u);
    EXPECT_EQ(result.best.count(), 4u);
}

TEST(Hierarchical, DescendsIntoPassingComponents)
{
    // Site 3 is toxic: whole program and modB fail; modA passes;
    // leaf 2 passes alone.
    MockProblem problem(4, [](const Config& c) { return !c.test(3); });
    problem.setStructure(twoModuleTree());
    auto result = runSearch(problem, "HR", bigBudget());
    ASSERT_TRUE(result.foundImprovement);
    EXPECT_EQ(result.best, Config::withLowered(4, {0, 1, 2}));
}

TEST(Hierarchical, RequiresStructure)
{
    MockProblem problem(4, [](const Config&) { return true; });
    EXPECT_THROW(runSearch(problem, "HR", bigBudget()),
                 hpcmixp::support::FatalError);
}

TEST(Hierarchical, CompileFailuresDriveDescent)
{
    // Sites 0 and 1 form a cluster whose joint lowering fails quality,
    // so HR descends to single variables — and splitting the cluster
    // is a compile failure, the waste the paper reports for HR.
    MockProblem problem(4, [](const Config& c) {
        return !c.test(3) && !(c.test(0) && c.test(1));
    });
    problem.setCompileCheck([](const Config& c) {
        return c.test(0) == c.test(1);
    });
    problem.setStructure(twoModuleTree());
    auto result = runSearch(problem, "HR", bigBudget());
    ASSERT_TRUE(result.foundImprovement);
    EXPECT_EQ(result.compileFailures, 2u); // leaves {0} and {1}
    EXPECT_EQ(result.best, Config::withLowered(4, {2}));
}

TEST(HierarchicalCompositional, CombinesDiscoveredComponents)
{
    // Whole program fails; each module passes alone and combined.
    MockProblem problem(4, [](const Config& c) {
        return c.count() < 4 || false;
    });
    problem.setStructure(twoModuleTree());
    auto result = runSearch(problem, "HC", bigBudget());
    ASSERT_TRUE(result.foundImprovement);
    // modA + modB composed -> {0,1,2,3}... which fails; best is a
    // module pair union that passes: {0,1} U {2,3} has count 4 and
    // fails, so best stays a single module.
    EXPECT_EQ(result.best.count(), 2u);
}

TEST(HierarchicalCompositional, FindsInterComponentUnion)
{
    // Three modules of two sites each. The whole program (count 6)
    // fails, every module passes, and the union of the first two
    // modules passes — an inter-component configuration that plain
    // hierarchical search cannot justify trying.
    StructureNode root;
    root.name = "prog";
    root.sites = {0, 1, 2, 3, 4, 5};
    for (std::size_t mod = 0; mod < 3; ++mod) {
        StructureNode node;
        node.name = "mod" + std::to_string(mod);
        node.sites = {2 * mod, 2 * mod + 1};
        root.children.push_back(node);
    }
    MockProblem problem(6, [](const Config& c) {
        if (c.count() > 4)
            return false;               // whole program fails
        return !c.test(4) && !c.test(5); // modC sites are toxic in unions
    });
    problem.setStructure(root);
    auto result = runSearch(problem, "HC", bigBudget());
    ASSERT_TRUE(result.foundImprovement);
    EXPECT_EQ(result.best, Config::withLowered(6, {0, 1, 2, 3}));
}

TEST(Genetic, DeterministicUnderFixedSeed)
{
    auto run = [] {
        MockProblem problem(6, [](const Config& c) {
            return c.count() <= 4;
        });
        return runSearch(problem, "GA", bigBudget());
    };
    auto a = run();
    auto b = run();
    EXPECT_EQ(a.best, b.best);
    EXPECT_EQ(a.evaluated, b.evaluated);
}

TEST(Genetic, EvaluationCountIsBoundedByPopulationTimesGenerations)
{
    MockProblem problem(10, [](const Config&) { return true; });
    GaOptions opt;
    GeneticSearch ga(opt);
    SearchContext ctx(problem, bigBudget());
    ga.run(ctx);
    EXPECT_LE(ctx.evaluatedCount(), opt.population * opt.generations);
    EXPECT_GT(ctx.evaluatedCount(), 0u);
}

TEST(Genetic, SmallSiteCountsDeduplicateNaturally)
{
    MockProblem problem(2, [](const Config&) { return true; });
    auto result = runSearch(problem, "GA", bigBudget());
    EXPECT_LE(result.evaluated, 4u); // only 4 distinct configs exist
}

TEST(Genetic, FindsImprovementWhenEverythingPasses)
{
    MockProblem problem(5, [](const Config&) { return true; });
    auto result = runSearch(problem, "GA", bigBudget());
    EXPECT_TRUE(result.foundImprovement);
    EXPECT_GE(result.best.count(), 1u);
}


TEST(Context, WallClockBudgetTruncates)
{
    /** Problem whose evaluations burn real time. */
    class SlowProblem : public SearchProblem {
      public:
        std::size_t siteCount() const override { return 16; }
        Evaluation
        evaluate(const Config&) override
        {
            hpcmixp::support::WallTimer t;
            while (t.seconds() < 0.02) {
            }
            Evaluation eval;
            eval.status = EvalStatus::Pass;
            eval.speedup = 1.1;
            return eval;
        }
    };
    SlowProblem problem;
    // 60 ms wall budget: roughly three 20 ms evaluations fit.
    auto result = runSearch(problem, "CB", {100000, 0.06});
    EXPECT_TRUE(result.timedOut);
    EXPECT_LT(result.evaluated, 20u);
    EXPECT_GE(result.evaluated, 1u);
}


TEST(Strategies, DegenerateSiteCountsAreHandled)
{
    // Zero tunable sites: every strategy must return the baseline
    // without evaluating anything (HR/HC need a structure, so they
    // get an empty root).
    for (const char* code : {"CB", "CM", "DD", "GA"}) {
        MockProblem empty(0, [](const Config&) { return true; });
        auto result = runSearch(empty, code, bigBudget());
        EXPECT_EQ(result.evaluated, 0u) << code;
        EXPECT_FALSE(result.foundImprovement) << code;
    }
    for (const char* code : {"HR", "HC"}) {
        MockProblem empty(0, [](const Config&) { return true; });
        empty.setStructure(StructureNode{});
        auto result = runSearch(empty, code, bigBudget());
        EXPECT_EQ(result.evaluated, 0u) << code;
        EXPECT_FALSE(result.foundImprovement) << code;
    }

    // One site: the space has exactly one non-baseline config.
    for (const char* code : {"CB", "CM", "DD", "GA"}) {
        MockProblem one(1, [](const Config&) { return true; });
        auto result = runSearch(one, code, bigBudget());
        EXPECT_LE(result.evaluated, 2u) << code;
        EXPECT_TRUE(result.foundImprovement) << code;
        EXPECT_EQ(result.best.count(), 1u) << code;
    }
}

// ---- Driver / registry ----------------------------------------------------

TEST(Driver, TimedOutSearchStillReportsBestSoFar)
{
    MockProblem problem(10, [](const Config&) { return true; });
    auto result = runSearch(problem, "CB", {5, 0.0});
    EXPECT_TRUE(result.timedOut);
    EXPECT_EQ(result.evaluated, 5u);
    EXPECT_TRUE(result.foundImprovement);
}

TEST(Driver, NoImprovementMeansBaselineResult)
{
    MockProblem problem(3, [](const Config&) { return false; });
    auto result = runSearch(problem, "DD", bigBudget());
    EXPECT_FALSE(result.foundImprovement);
    EXPECT_TRUE(result.best.isBaseline());
    EXPECT_DOUBLE_EQ(result.bestEvaluation.speedup, 1.0);
}

TEST(Registry, AllSixStrategiesRegistered)
{
    auto& reg = StrategyRegistry::instance();
    for (const char* code : {"CB", "CM", "DD", "HR", "HC", "GA"}) {
        EXPECT_TRUE(reg.has(code)) << code;
        auto strategy = reg.create(code);
        EXPECT_EQ(strategy->code(), code);
    }
    EXPECT_TRUE(reg.has("dd")); // case-insensitive
    EXPECT_THROW(reg.create("XX"), hpcmixp::support::FatalError);
}

TEST(Registry, GranularitiesMatchThePaper)
{
    auto& reg = StrategyRegistry::instance();
    EXPECT_EQ(reg.create("CB")->granularity(), Granularity::Cluster);
    EXPECT_EQ(reg.create("DD")->granularity(), Granularity::Cluster);
    EXPECT_EQ(reg.create("GA")->granularity(), Granularity::Cluster);
    // CM proposes variables but Typeforge closure makes its probes
    // cluster configurations; HR/HC ignore cluster information
    // entirely (paper Sections II-B and V).
    EXPECT_EQ(reg.create("CM")->granularity(), Granularity::Cluster);
    EXPECT_EQ(reg.create("HR")->granularity(), Granularity::Variable);
    EXPECT_EQ(reg.create("HC")->granularity(), Granularity::Variable);
}

} // namespace
