/**
 * @file
 * Tests for the runtime profiler (instrumentation half of the paper's
 * runtime library) and its integration into the instrumented
 * application benchmarks.
 */

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "benchmarks/registry.h"
#include "runtime/profiler.h"

namespace {

using namespace hpcmixp;
using runtime::Profiler;
using runtime::ScopedRegion;

/** Reset + enable for a test, restore on exit. */
class ProfilerGuard {
  public:
    ProfilerGuard()
    {
        Profiler::instance().reset();
        Profiler::instance().setEnabled(true);
    }
    ~ProfilerGuard()
    {
        Profiler::instance().setEnabled(false);
        Profiler::instance().reset();
    }
};

TEST(ProfilerTest, DisabledByDefaultAndCostsNothing)
{
    Profiler::instance().reset();
    ASSERT_FALSE(Profiler::instance().enabled());
    {
        ScopedRegion region("should-not-record");
    }
    EXPECT_EQ(
        Profiler::instance().stats("should-not-record").invocations,
        0u);
}

TEST(ProfilerTest, RecordsInvocationsAndTime)
{
    ProfilerGuard guard;
    for (int i = 0; i < 3; ++i) {
        ScopedRegion region("unit/region");
        volatile double x = 0;
        for (int k = 0; k < 10000; ++k)
            x = x + 1.0;
    }
    auto stats = Profiler::instance().stats("unit/region");
    EXPECT_EQ(stats.invocations, 3u);
    EXPECT_GT(stats.totalSeconds, 0.0);
}

TEST(ProfilerTest, AllReturnsSortedRegions)
{
    ProfilerGuard guard;
    Profiler::instance().record("b", 0.1);
    Profiler::instance().record("a", 0.2);
    Profiler::instance().record("a", 0.3);
    auto all = Profiler::instance().all();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].first, "a");
    EXPECT_EQ(all[0].second.invocations, 2u);
    EXPECT_DOUBLE_EQ(all[0].second.totalSeconds, 0.5);
    EXPECT_EQ(all[1].first, "b");
}

TEST(ProfilerTest, ResetClears)
{
    ProfilerGuard guard;
    Profiler::instance().record("x", 1.0);
    Profiler::instance().reset();
    EXPECT_EQ(Profiler::instance().stats("x").invocations, 0u);
}

TEST(ProfilerTest, ThreadSafeRecording)
{
    ProfilerGuard guard;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < 1000; ++i)
                Profiler::instance().record("mt", 0.001);
        });
    }
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(Profiler::instance().stats("mt").invocations, 4000u);
}

TEST(ProfilerTest, CfdRegionsAreInstrumented)
{
    ProfilerGuard guard;
    auto bench = benchmarks::BenchmarkRegistry::instance().create("cfd");
    (void)bench->run(benchmarks::PrecisionMap{});
    auto& prof = Profiler::instance();
    // 3 iterations: step factor once per iteration, flux/time-step
    // three RK sub-steps each.
    EXPECT_EQ(prof.stats("cfd/compute_step_factor").invocations, 3u);
    EXPECT_EQ(prof.stats("cfd/compute_flux").invocations, 9u);
    EXPECT_EQ(prof.stats("cfd/time_step").invocations, 9u);
    // Flux dominates the runtime.
    EXPECT_GT(prof.stats("cfd/compute_flux").totalSeconds,
              prof.stats("cfd/time_step").totalSeconds);
}

TEST(ProfilerTest, HotspotAndLavamdAndHpccgAreInstrumented)
{
    ProfilerGuard guard;
    for (const char* name : {"hotspot", "lavamd", "hpccg"}) {
        auto bench =
            benchmarks::BenchmarkRegistry::instance().create(name);
        (void)bench->run(benchmarks::PrecisionMap{});
    }
    EXPECT_EQ(Profiler::instance()
                  .stats("hotspot/compute_tran_temp")
                  .invocations,
              1u);
    EXPECT_EQ(
        Profiler::instance().stats("lavamd/kernel_cpu").invocations,
        1u);
    EXPECT_EQ(Profiler::instance().stats("hpccg/cg_solve").invocations,
              1u);
}

} // namespace
