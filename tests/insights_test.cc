/**
 * @file
 * The paper's Section-V insights, codified as integration tests. Each
 * test asserts a *qualitative* property that must hold regardless of
 * machine speed: pass/fail decisions, evaluation counts and compile
 * failures are deterministic here (quality losses are exact float
 * arithmetic), only wall-clock speedups are not — so no test below
 * depends on a timing value.
 */

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/mixpbench.h"
#include "search/delta_debug.h"
#include "search/genetic.h"

namespace {

using namespace hpcmixp;
using search::Config;

core::TunerOptions
options(double threshold, std::size_t budget = 400)
{
    core::TunerOptions opt;
    opt.threshold = threshold;
    opt.searchReps = 1;
    opt.finalReps = 3;
    opt.budget = {budget, 0.0};
    return opt;
}

std::unique_ptr<benchmarks::Benchmark>
make(const std::string& name)
{
    return benchmarks::BenchmarkRegistry::instance().create(name);
}

// Insight 1: "applying mixed-precision search algorithms individually
// on variables, without considering whether they map on to a valid
// configuration, not only increases the search time but may also
// result in cases where the search algorithm fails to converge".
TEST(Insights, ClusterBlindSearchWastesEffortOnCompileFailures)
{
    auto bench = make("hpccg");
    // Threshold far below any full-conversion loss, so DD must
    // descend into sub-partitions at either granularity.
    core::BenchmarkTuner tuner(*bench, options(1e-14));

    search::DeltaDebugSearch dd;
    auto clustered = search::runSearch(tuner.clusterProblem(), dd,
                                       {400, 0.0});
    auto blind = search::runSearch(tuner.variableProblem(), dd,
                                   {400, 0.0});

    EXPECT_EQ(clustered.compileFailures, 0u);
    EXPECT_GT(blind.compileFailures, 0u)
        << "variable-level DD must hit cluster-splitting configs";
    EXPECT_GE(blind.compileFailures + blind.evaluated,
              clustered.evaluated)
        << "cluster-blind search cannot be cheaper overall";
}

// Insight 3: "The analysis time for GA is the easiest to predict among
// all search algorithms" — its evaluation count is bounded by the
// population/generation caps on every application and threshold.
TEST(Insights, GaEffortIsBoundedEverywhere)
{
    search::GaOptions defaults;
    std::size_t bound = defaults.population * defaults.generations;
    for (const char* name : {"blackscholes", "srad", "kmeans"}) {
        for (double threshold : {1e-3, 1e-8}) {
            auto bench = make(name);
            core::BenchmarkTuner tuner(*bench, options(threshold));
            auto outcome = tuner.tune("GA");
            EXPECT_LE(outcome.search.evaluated, bound)
                << name << " @ " << threshold;
            EXPECT_FALSE(outcome.search.timedOut);
        }
    }
}

// Table V: CM "did not manage to terminate on multiple applications
// because it could not test the large number of configurations
// required within the time limit" — reproduce with a tight budget on
// the cluster-richest application.
TEST(Insights, CompositionalExhaustsItsBudgetOnBlackscholes)
{
    auto bench = make("blackscholes");
    core::BenchmarkTuner tuner(*bench, options(1e-3, 40));
    auto outcome = tuner.tune("CM");
    EXPECT_TRUE(outcome.search.timedOut);
}

// Table IV / Section IV-B: SRAD's output is destroyed by binary32
// (NaN), at any threshold; the searches must avoid the image cluster.
TEST(Insights, SradImageClusterNeverPassesVerification)
{
    auto bench = make("srad");
    core::BenchmarkTuner tuner(*bench, options(1e-3));
    std::size_t imageCluster = tuner.clusters().clusterOf(
        bench->programModel().findVariable("main", "J"));
    Config cfg(tuner.clusterCount());
    cfg.set(imageCluster);
    auto eval = tuner.evaluateClusterConfig(cfg, 1);
    EXPECT_NE(eval.status, search::EvalStatus::Pass);
    EXPECT_TRUE(std::isnan(eval.qualityLoss));

    auto outcome = tuner.tune("DD");
    EXPECT_FALSE(outcome.clusterConfig.test(imageCluster));
}

// Table IV: K-means keeps a perfect MCR under full conversion, at the
// strictest threshold the paper uses.
TEST(Insights, KmeansConvertsFullyEvenAtStrictestThreshold)
{
    auto bench = make("kmeans");
    core::BenchmarkTuner tuner(*bench, options(1e-8));
    auto eval = tuner.evaluateClusterConfig(
        Config::allLowered(tuner.clusterCount()), 1);
    EXPECT_EQ(eval.status, search::EvalStatus::Pass);
    EXPECT_EQ(eval.qualityLoss, 0.0);
}

// Table V: Hotspot remains tunable at 1e-8 — its dissipative
// iteration keeps the full-conversion loss below the bound.
TEST(Insights, HotspotFullConversionPassesAtStrictestThreshold)
{
    auto bench = make("hotspot");
    core::BenchmarkTuner tuner(*bench, options(1e-8));
    auto eval = tuner.evaluateClusterConfig(
        Config::allLowered(tuner.clusterCount()), 1);
    EXPECT_EQ(eval.status, search::EvalStatus::Pass);
}

// Section IV-B: tightening the quality threshold increases DD's
// evaluation count ("the algorithm requires more effort to converge").
TEST(Insights, TighterThresholdsCostDeltaDebuggingMoreEvaluations)
{
    auto loose = [&] {
        auto bench = make("lavamd");
        core::BenchmarkTuner tuner(*bench, options(1e-3));
        return tuner.tune("DD").search.evaluated;
    }();
    auto strict = [&] {
        auto bench = make("lavamd");
        core::BenchmarkTuner tuner(*bench, options(1e-8));
        return tuner.tune("DD").search.evaluated;
    }();
    EXPECT_GE(strict, loose);
    EXPECT_GT(strict, 1u) << "1e-8 must not be satisfied by the "
                             "whole-program conversion";
}

// Section V: "reducing the number of double precision variables does
// not always guarantee an improved execution time" — the framework
// must therefore never report a failing configuration as a winner.
TEST(Insights, WinnersAlwaysRespectTheQualityConstraint)
{
    for (const char* name : {"cfd", "srad", "lavamd"}) {
        for (const char* algo : {"DD", "GA", "HR"}) {
            auto bench = make(name);
            core::BenchmarkTuner tuner(*bench, options(1e-6, 200));
            auto outcome = tuner.tune(algo);
            if (outcome.search.foundImprovement) {
                EXPECT_TRUE(outcome.finalQualityLoss <= 1e-6)
                    << name << "/" << algo;
            }
        }
    }
}

} // namespace
