/**
 * @file
 * mixp-lint rule engine: classification thresholds, the acceptance
 * clusters of the annotated benchmarks, and golden-file stability of
 * the text and JSON renderers over Listing 1 and every built-in
 * benchmark model.
 *
 * Regenerate the golden files after an intentional format change with
 *   HPCMIXP_REGEN_GOLDEN=1 ctest -R LintGolden
 */

#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "benchmarks/registry.h"
#include "typeforge/frontend/parser.h"
#include "typeforge/lint.h"

namespace {

using namespace hpcmixp;
using model::DataflowFact;
using typeforge::Sensitivity;

const char* kListing1 = R"(
void vect_mult(int n, double *input, double *inout, double ratio) {
    double res;
    for (int i = 0; i < n; i++) {
        res += ratio * input[i];
    }
    *inout += res;
}

void foo() {
    double arr[10];
    init(10, arr);
    double val = init_scalar();
    double scale = init_scalar();
    vect_mult(10, arr, &val, scale);
}
)";

/** A two-variable model with no facts; callers add the facts. */
struct TwoScalarModel {
    model::ProgramModel m{"probe"};
    model::VarId a;
    model::VarId b;

    TwoScalarModel()
    {
        model::ModuleId mod = m.addModule("probe.c");
        model::FunctionId f = m.addFunction(mod, "f");
        a = m.addVariable(f, "a", model::realScalar());
        b = m.addVariable(f, "b", model::realScalar());
    }
};

const typeforge::ClusterVerdict&
verdictOf(const typeforge::SensitivityReport& report,
          const std::string& memberSubstring)
{
    for (const auto& cv : report.clusters)
        for (const std::string& member : cv.members)
            if (member.find(memberSubstring) != std::string::npos)
                return cv;
    ADD_FAILURE() << "no cluster with member " << memberSubstring;
    static typeforge::ClusterVerdict none;
    return none;
}

TEST(Lint, RuleCatalogHasUniqueIdsAndCoversEveryFact)
{
    const auto& rules = typeforge::lintRules();
    ASSERT_EQ(rules.size(), std::size(model::kAllDataflowFacts));
    for (std::size_t i = 0; i < rules.size(); ++i) {
        for (std::size_t j = i + 1; j < rules.size(); ++j) {
            EXPECT_STRNE(rules[i].id, rules[j].id);
            EXPECT_NE(rules[i].fact, rules[j].fact);
        }
    }
}

TEST(Lint, CertifiedRuleCatalogHasUniqueWeightedIds)
{
    const auto& rules = typeforge::certifiedRules();
    ASSERT_EQ(rules.size(), 3u);
    for (std::size_t i = 0; i < rules.size(); ++i) {
        EXPECT_GE(rules[i].weight, 0);
        for (std::size_t j = i + 1; j < rules.size(); ++j)
            EXPECT_STRNE(rules[i].id, rules[j].id);
        // Certified ids must not collide with the fact rules either.
        for (const auto& fact : typeforge::lintRules())
            EXPECT_STRNE(rules[i].id, fact.id);
    }
}

TEST(Lint, CertifiedCapsSurfaceOnAnnotatedBenchmarks)
{
    // innerprod: the accumulator cluster is statically pinned (its
    // float-rung bound is provably past any realistic budget) while
    // the input arrays are certified through float.
    auto bench =
        benchmarks::BenchmarkRegistry::instance().create("innerprod");
    auto report = typeforge::lint(bench->programModel());
    const auto& q = verdictOf(report, "::q");
    EXPECT_TRUE(q.certified);
    EXPECT_EQ(q.certifiedCap, 0);
    EXPECT_EQ(q.safeThrough, 0);
    const auto& x = verdictOf(report, "::x");
    EXPECT_TRUE(x.certified);
    EXPECT_EQ(x.certifiedCap, 1);
    EXPECT_EQ(x.safeThrough, 1);
    EXPECT_EQ(x.capName, "float");
    // Certificates are emitted and all self-check.
    EXPECT_FALSE(report.certificates.empty());
    for (const auto& cert : report.certificates)
        EXPECT_TRUE(typeforge::checkCertificate(cert));
}

TEST(Lint, UnanalyzedModelIsAllUnknown)
{
    TwoScalarModel probe;
    auto report = typeforge::lint(probe.m);
    EXPECT_FALSE(report.analyzed);
    EXPECT_TRUE(report.findings.empty());
    EXPECT_EQ(report.count(Sensitivity::Unknown),
              report.clusters.size());
}

TEST(Lint, AccumulatorCrossesTheKeepDoubleThreshold)
{
    TwoScalarModel probe;
    probe.m.markFact(probe.a, DataflowFact::Accumulator);
    auto report = typeforge::lint(probe.m);
    EXPECT_TRUE(report.analyzed);
    const auto& risky = verdictOf(report, "::a");
    EXPECT_EQ(risky.sensitivity, Sensitivity::KeepDouble);
    EXPECT_GE(risky.score, typeforge::kKeepDoubleScore);
    // The clean variable in the analyzed model narrows safely.
    EXPECT_EQ(verdictOf(report, "::b").sensitivity,
              Sensitivity::SafeToNarrow);
}

TEST(Lint, WeakSignalsStayUnknown)
{
    // A lone cancellation (weight 2) is below the pin threshold:
    // worth a warning, not worth excluding from the search.
    TwoScalarModel probe;
    probe.m.markFact(probe.a, DataflowFact::Cancellation);
    auto report = typeforge::lint(probe.m);
    const auto& cv = verdictOf(report, "::a");
    EXPECT_EQ(cv.sensitivity, Sensitivity::Unknown);
    EXPECT_LT(cv.score, typeforge::kKeepDoubleScore);
    EXPECT_EQ(cv.ruleIds.size(), 1u);
}

TEST(Lint, ClusterAggregatesMemberScores)
{
    // Two weak members in one cluster cross the threshold together.
    model::ProgramModel m("probe");
    model::ModuleId mod = m.addModule("probe.c");
    model::FunctionId f = m.addFunction(mod, "f");
    model::VarId a = m.addVariable(f, "a", model::realScalar());
    model::VarId b = m.addVariable(f, "b", model::realScalar());
    m.addSameType(a, b);
    m.markFact(a, DataflowFact::Cancellation);
    m.markFact(b, DataflowFact::LoopCarried);
    auto report = typeforge::lint(m);
    const auto& cv = verdictOf(report, "::a");
    EXPECT_EQ(cv.sensitivity, Sensitivity::KeepDouble);
    EXPECT_EQ(cv.score, 4);
    EXPECT_EQ(cv.members.size(), 2u);
    EXPECT_EQ(cv.ruleIds.size(), 2u);
}

TEST(Lint, Listing1FlagsTheAccumulatorChain)
{
    auto parsed =
        typeforge::frontend::parseProgram(kListing1, "listing1");
    ASSERT_TRUE(parsed.ok());
    auto report = typeforge::lint(parsed.model);
    EXPECT_TRUE(report.analyzed);
    // res accumulates inside the loop; *inout += res happens once per
    // call, so inout stays narrowable along with everything else.
    EXPECT_EQ(verdictOf(report, "vect_mult::res").sensitivity,
              Sensitivity::KeepDouble);
    EXPECT_EQ(report.count(Sensitivity::KeepDouble), 1u);
    EXPECT_EQ(verdictOf(report, "vect_mult::inout").sensitivity,
              Sensitivity::SafeToNarrow);
    EXPECT_EQ(verdictOf(report, "foo::scale").sensitivity,
              Sensitivity::SafeToNarrow);
}

// Acceptance: the known accumulator clusters of the annotated
// benchmarks are pinned, and nothing else is.
TEST(Lint, InnerprodAccumulatorIsKeepDouble)
{
    auto bench =
        benchmarks::BenchmarkRegistry::instance().create("innerprod");
    auto report = typeforge::lint(bench->programModel());
    EXPECT_TRUE(report.analyzed);
    EXPECT_EQ(verdictOf(report, "::q").sensitivity,
              Sensitivity::KeepDouble);
    EXPECT_EQ(report.count(Sensitivity::KeepDouble), 1u);
    EXPECT_EQ(report.count(Sensitivity::SafeToNarrow), 2u);
}

TEST(Lint, HpccgScalarsClusterIsKeepDouble)
{
    auto bench =
        benchmarks::BenchmarkRegistry::instance().create("hpccg");
    auto report = typeforge::lint(bench->programModel());
    EXPECT_TRUE(report.analyzed);
    const auto& scalars = verdictOf(report, "ddot::result");
    EXPECT_EQ(scalars.sensitivity, Sensitivity::KeepDouble);
    // result, sum and rtrans share the cluster via same-type edges.
    EXPECT_EQ(scalars.members.size(), 3u);
    EXPECT_EQ(report.count(Sensitivity::KeepDouble), 1u);
    // The CG vectors and the matrix stay available to the search.
    EXPECT_EQ(verdictOf(report, "main::x").sensitivity,
              Sensitivity::SafeToNarrow);
    EXPECT_EQ(verdictOf(report, "main::A_values").sensitivity,
              Sensitivity::SafeToNarrow);
}

// ---- golden files ------------------------------------------------------

std::string
goldenPath(const std::string& name)
{
    return std::string(HPCMIXP_GOLDEN_DIR) + "/lint/" + name;
}

void
compareOrRegen(const std::string& file, const std::string& actual)
{
    std::string path = goldenPath(file);
    if (std::getenv("HPCMIXP_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        return;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " (regenerate with HPCMIXP_REGEN_GOLDEN=1)";
    std::ostringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(actual, expected.str()) << "golden mismatch: " << path;
}

std::string
renderText(const typeforge::SensitivityReport& report)
{
    // Goldens pin the full report including the derived ranges and
    // certificate tables, so any drift in the abstract interpreter's
    // numbers shows up in review.
    std::ostringstream os;
    typeforge::printLintReport(os, report, /*ranges=*/true,
                               /*certificates=*/true);
    return os.str();
}

TEST(LintGolden, Listing1TextAndJson)
{
    auto parsed =
        typeforge::frontend::parseProgram(kListing1, "listing1");
    ASSERT_TRUE(parsed.ok());
    auto report = typeforge::lint(parsed.model);
    compareOrRegen("listing1.txt", renderText(report));
    compareOrRegen("listing1.json",
                   typeforge::lintReportToJson(report).dump(2) + "\n");
}

TEST(LintGolden, EveryBenchmarkModelTextAndJson)
{
    auto& registry = benchmarks::BenchmarkRegistry::instance();
    for (const std::string& name : registry.names()) {
        auto bench = registry.create(name);
        auto report = typeforge::lint(bench->programModel());
        compareOrRegen(name + ".txt", renderText(report));
        compareOrRegen(
            name + ".json",
            typeforge::lintReportToJson(report).dump(2) + "\n");
    }
}

} // namespace
