/**
 * @file
 * Abstract interpreter unit tests: interval arithmetic, the kappa
 * transfer functions, widening termination on adversarial loop-carried
 * models, machine-checkable certificates (including tamper detection),
 * and the profiler cross-check.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "typeforge/absint.h"
#include "typeforge/clustering.h"

namespace {

using namespace hpcmixp;
using model::ArithFact;
using model::ArithOp;
using model::arithLitRange;
using model::arithVar;
using model::VarId;
using typeforge::AbsintOptions;
using typeforge::AbsintResult;
using typeforge::Interval;

constexpr double kInf = std::numeric_limits<double>::infinity();

AbsintResult
interpretModel(const model::ProgramModel& m,
               const AbsintOptions& options = {})
{
    return typeforge::interpret(m, typeforge::analyze(m), options);
}

// ---- interval arithmetic -----------------------------------------------

TEST(Interval, MagnitudeAndMinMagnitude)
{
    Interval spanning{-2.0, 3.0};
    EXPECT_DOUBLE_EQ(spanning.magnitude(), 3.0);
    EXPECT_DOUBLE_EQ(spanning.minMagnitude(), 0.0);

    Interval negative{-5.0, -1.0};
    EXPECT_DOUBLE_EQ(negative.magnitude(), 5.0);
    EXPECT_DOUBLE_EQ(negative.minMagnitude(), 1.0);

    EXPECT_TRUE(std::isinf(Interval::top().magnitude()));
}

TEST(Interval, JoinAndContains)
{
    Interval a{0.0, 1.0};
    Interval b{-1.0, 0.5};
    Interval j = a.join(b);
    EXPECT_DOUBLE_EQ(j.lo, -1.0);
    EXPECT_DOUBLE_EQ(j.hi, 1.0);
    EXPECT_TRUE(j.contains(-0.5, 0.25));
    EXPECT_FALSE(j.contains(-0.5, 1.5));
}

TEST(Interval, ArithmeticEndpoints)
{
    Interval a{1.0, 2.0};
    Interval b{-3.0, 4.0};

    Interval sum = a.add(b);
    EXPECT_DOUBLE_EQ(sum.lo, -2.0);
    EXPECT_DOUBLE_EQ(sum.hi, 6.0);

    Interval diff = a.sub(b);
    EXPECT_DOUBLE_EQ(diff.lo, -3.0);
    EXPECT_DOUBLE_EQ(diff.hi, 5.0);

    Interval prod = a.mul(b);
    EXPECT_DOUBLE_EQ(prod.lo, -6.0);
    EXPECT_DOUBLE_EQ(prod.hi, 8.0);
}

TEST(Interval, DivisionByZeroSpanningIntervalIsTop)
{
    Interval a{1.0, 2.0};
    Interval denom{-1.0, 1.0};
    Interval q = a.div(denom);
    EXPECT_TRUE(std::isinf(q.magnitude()));

    Interval safeDenom{0.5, 2.0};
    Interval r = a.div(safeDenom);
    EXPECT_DOUBLE_EQ(r.lo, 0.5);
    EXPECT_DOUBLE_EQ(r.hi, 4.0);
}

TEST(Interval, ExpAndSqrtAreMonotone)
{
    Interval a{0.0, 1.0};
    Interval e = a.exp();
    EXPECT_DOUBLE_EQ(e.lo, 1.0);
    EXPECT_DOUBLE_EQ(e.hi, std::exp(1.0));

    Interval s = Interval{4.0, 9.0}.sqrt();
    EXPECT_DOUBLE_EQ(s.lo, 2.0);
    EXPECT_DOUBLE_EQ(s.hi, 3.0);
}

// ---- transfer functions ------------------------------------------------

/** One function with annotated inputs a, b and a derived c. */
struct TransferModel {
    model::ProgramModel m{"transfer"};
    VarId a;
    VarId b;
    VarId c;

    TransferModel()
    {
        model::ModuleId mod = m.addModule("transfer.c");
        model::FunctionId f = m.addFunction(mod, "f");
        a = m.addVariable(f, "a", model::realScalar());
        b = m.addVariable(f, "b", model::realScalar());
        c = m.addVariable(f, "c", model::realScalar());
    }
};

TEST(Transfer, SameSignAddIsBenign)
{
    TransferModel t;
    t.m.setRange(t.a, 1.0, 2.0);
    t.m.setRange(t.b, 3.0, 4.0);
    t.m.addArith(t.c, ArithOp::Add, arithVar(t.a), arithVar(t.b));
    auto r = interpretModel(t.m);

    const auto& c = r.vars[t.c];
    ASSERT_TRUE(c.known);
    EXPECT_DOUBLE_EQ(c.range.lo, 4.0);
    EXPECT_DOUBLE_EQ(c.range.hi, 6.0);
    // Same-sign addition: max operand kappa (1) plus one rounding.
    EXPECT_DOUBLE_EQ(c.amp, 2.0);
    // No cancellation can be proven for same-sign operands.
    for (const auto& f : r.findings)
        EXPECT_NE(std::string(f.ruleId).substr(0, 5), "MP009");
}

TEST(Transfer, OverlappingSubtractionProvesCancellation)
{
    TransferModel t;
    t.m.setRange(t.a, 1.0, 2.0);
    t.m.setRange(t.b, 1.5, 2.5);
    t.m.addArith(t.c, ArithOp::Sub, arithVar(t.a), arithVar(t.b));
    auto r = interpretModel(t.m);

    // The difference spans zero: amplification is unbounded and the
    // MP009 proven-cancellation rule fires on the destination.
    EXPECT_TRUE(std::isinf(r.vars[t.c].amp));
    bool mp009 = false;
    for (const auto& f : r.findings)
        if (std::string(f.ruleId).rfind("MP009", 0) == 0 &&
            f.var == t.c)
            mp009 = true;
    EXPECT_TRUE(mp009);
}

TEST(Transfer, SeparatedSubtractionStaysBounded)
{
    TransferModel t;
    t.m.setRange(t.a, 10.0, 11.0);
    t.m.setRange(t.b, 1.0, 2.0);
    t.m.addArith(t.c, ArithOp::Sub, arithVar(t.a), arithVar(t.b));
    auto r = interpretModel(t.m);

    const auto& c = r.vars[t.c];
    EXPECT_DOUBLE_EQ(c.range.lo, 8.0);
    EXPECT_DOUBLE_EQ(c.range.hi, 10.0);
    EXPECT_TRUE(std::isfinite(c.amp));
    for (const auto& f : r.findings)
        EXPECT_NE(std::string(f.ruleId).substr(0, 5), "MP009");
}

TEST(Transfer, MultiplicationAddsKappas)
{
    TransferModel t;
    t.m.setRange(t.a, 1.0, 2.0);
    t.m.setRange(t.b, 1.0, 3.0);
    t.m.addArith(t.c, ArithOp::Mul, arithVar(t.a), arithVar(t.b));
    auto r = interpretModel(t.m);

    const auto& c = r.vars[t.c];
    EXPECT_DOUBLE_EQ(c.range.lo, 1.0);
    EXPECT_DOUBLE_EQ(c.range.hi, 6.0);
    // kappa_a + kappa_b + 1 rounding.
    EXPECT_DOUBLE_EQ(c.amp, 3.0);
}

TEST(Transfer, KnownTripAccumulationScalesWithTrips)
{
    TransferModel t;
    t.m.setRange(t.a, 0.0, 0.5);
    ArithFact f;
    f.dst = t.c;
    f.op = ArithOp::Id;
    f.lhs = arithVar(t.a);
    f.accumulate = true;
    f.inLoop = true;
    f.trips = 100;
    t.m.addArith(f);
    auto r = interpretModel(t.m);

    const auto& c = r.vars[t.c];
    ASSERT_TRUE(c.known);
    EXPECT_DOUBLE_EQ(c.range.lo, 0.0);
    EXPECT_DOUBLE_EQ(c.range.hi, 50.0);
    // The kappa of an n-term same-sign sum grows with n.
    EXPECT_GE(c.amp, 100.0);
    EXPECT_TRUE(std::isfinite(c.amp));
}

TEST(Transfer, OpaqueVariableIsTop)
{
    TransferModel t;
    t.m.setRange(t.a, 1.0, 2.0);
    t.m.markOpaque(t.b);
    auto r = interpretModel(t.m);
    EXPECT_TRUE(std::isinf(r.vars[t.b].range.magnitude()));
    EXPECT_TRUE(std::isinf(r.vars[t.b].amp));
}

// ---- widening ----------------------------------------------------------

TEST(Widening, SelfReferentialLoopTerminatesAndWidens)
{
    // The diff-predictor shape: a seed interval plus an unbounded
    // self-referential subtraction that doubles the range each pass.
    TransferModel t;
    t.m.addArith(t.c, ArithOp::Id, arithLitRange(0.0, 1.0));
    ArithFact f;
    f.dst = t.c;
    f.op = ArithOp::Sub;
    f.lhs = arithVar(t.c);
    f.rhs = arithVar(t.c);
    f.inLoop = true;
    t.m.addArith(f);

    AbsintOptions options;
    auto r = interpretModel(t.m, options);
    EXPECT_TRUE(r.widened);
    EXPECT_TRUE(r.vars[t.c].widened);
    EXPECT_TRUE(std::isinf(r.vars[t.c].range.magnitude()));
    EXPECT_LE(r.passes, options.maxPasses);
}

TEST(Widening, MutualRecursionTerminates)
{
    // a feeds b feeds a, each step growing both: no finite fixpoint.
    TransferModel t;
    t.m.addArith(t.a, ArithOp::Id, arithLitRange(0.0, 1.0));
    t.m.addArith(t.b, ArithOp::Id, arithLitRange(0.0, 1.0));
    ArithFact ab;
    ab.dst = t.a;
    ab.op = ArithOp::Add;
    ab.lhs = arithVar(t.b);
    ab.rhs = arithLitRange(1.0, 1.0);
    ab.inLoop = true;
    t.m.addArith(ab);
    ArithFact ba;
    ba.dst = t.b;
    ba.op = ArithOp::Add;
    ba.lhs = arithVar(t.a);
    ba.rhs = arithLitRange(1.0, 1.0);
    ba.inLoop = true;
    t.m.addArith(ba);

    AbsintOptions options;
    auto r = interpretModel(t.m, options);
    EXPECT_TRUE(r.widened);
    EXPECT_LE(r.passes, options.maxPasses);
}

TEST(Widening, StableLoopDoesNotWiden)
{
    // A loop-carried fact whose abstract state reaches its fixpoint
    // immediately (idempotent update) must not be widened.
    TransferModel t;
    t.m.setRange(t.a, 0.0, 1.0);
    ArithFact f;
    f.dst = t.c;
    f.op = ArithOp::Id;
    f.lhs = arithVar(t.a);
    f.inLoop = true;
    t.m.addArith(f);
    auto r = interpretModel(t.m);
    EXPECT_FALSE(r.widened);
    EXPECT_FALSE(r.vars[t.c].widened);
    EXPECT_DOUBLE_EQ(r.vars[t.c].range.hi, 1.0);
}

// ---- certificates ------------------------------------------------------

TEST(Certificates, EmittedCertificatesAllCheck)
{
    TransferModel t;
    t.m.setRange(t.a, 0.0, 0.05);
    t.m.setRange(t.b, 1.0, 2.0);
    t.m.addArith(t.c, ArithOp::Mul, arithVar(t.a), arithVar(t.b));
    auto r = interpretModel(t.m);
    ASSERT_FALSE(r.certificates.empty());
    for (const auto& cert : r.certificates)
        EXPECT_TRUE(typeforge::checkCertificate(cert))
            << cert.rule << " for " << cert.variable << " at "
            << cert.rung;
}

TEST(Certificates, TamperedCertificateIsRejected)
{
    TransferModel t;
    t.m.setRange(t.a, 0.0, 0.05);
    auto r = interpretModel(t.m);
    ASSERT_FALSE(r.certificates.empty());

    // Inconsistent bound: errBound no longer derives from
    // (lo, hi, amp, rung).
    auto forgedBound = r.certificates.front();
    forgedBound.errBound *= 10.0;
    EXPECT_FALSE(typeforge::checkCertificate(forgedBound));

    // Flipped claim: the re-derived inequality contradicts it.
    auto forgedClaim = r.certificates.front();
    forgedClaim.claim =
        forgedClaim.claim == "safe" ? "unsafe" : "safe";
    EXPECT_FALSE(typeforge::checkCertificate(forgedClaim));

    // Unknown rung name.
    auto forgedRung = r.certificates.front();
    forgedRung.rung = "float128";
    EXPECT_FALSE(typeforge::checkCertificate(forgedRung));
}

TEST(Certificates, Fp16OverflowIsProvenAtTheHalfRung)
{
    TransferModel t;
    t.m.setRange(t.a, 0.0, 1.0e6); // beyond fp16's 65504
    // A generous budget keeps MP008 quiet at every rung, so the first
    // provable failure is the fp16 range overflow itself.
    AbsintOptions options;
    options.threshold = 1.0e9;
    auto r = interpretModel(t.m, options);

    bool mp007 = false;
    for (const auto& f : r.findings)
        if (std::string(f.ruleId).rfind("MP007", 0) == 0 &&
            f.var == t.a)
            mp007 = true;
    EXPECT_TRUE(mp007);

    // The cluster cap excludes half and everything past it.
    bool capped = false;
    for (const auto& cc : r.clusters)
        if (cc.certifiedCap != typeforge::kNoCap &&
            cc.certifiedCap <= 1)
            capped = true;
    EXPECT_TRUE(capped);
}

// ---- profiler cross-check ----------------------------------------------

/** A model with one bind key carried by two pool-aliased arrays. */
struct PoolModel {
    model::ProgramModel m{"pool"};
    VarId x; ///< bind key "in", annotated [0, 1]
    VarId u; ///< bind key "in", annotated [2, 5]

    PoolModel()
    {
        model::ModuleId mod = m.addModule("pool.c");
        x = m.addGlobal(mod, "x", model::realPointer(), "in");
        u = m.addGlobal(mod, "u", model::realPointer(), "in");
        m.setRange(x, 0.0, 1.0);
        m.setRange(u, 2.0, 5.0);
    }
};

TEST(CrossCheck, ContainedObservationIsSound)
{
    PoolModel p;
    auto r = interpretModel(p.m);
    auto violations = typeforge::crossCheckRanges(
        p.m, r, {{"in", 0.5, 0.9}});
    EXPECT_TRUE(violations.empty());
}

TEST(CrossCheck, PoolObservationChecksAgainstTheJoin)
{
    // The observed pool range [0, 5] is wider than either member's
    // interval but inside their join — sound, not a violation.
    PoolModel p;
    auto r = interpretModel(p.m);
    auto violations = typeforge::crossCheckRanges(
        p.m, r, {{"in", 0.0, 5.0}});
    EXPECT_TRUE(violations.empty());
}

TEST(CrossCheck, EscapingObservationIsReported)
{
    PoolModel p;
    auto r = interpretModel(p.m);
    auto violations = typeforge::crossCheckRanges(
        p.m, r, {{"in", 0.0, 7.5}});
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].bindKey, "in");
    EXPECT_DOUBLE_EQ(violations[0].observedHi, 7.5);
    EXPECT_DOUBLE_EQ(violations[0].staticLo, 0.0);
    EXPECT_DOUBLE_EQ(violations[0].staticHi, 5.0);
}

TEST(CrossCheck, UnannotatedKeyClaimsTopAndPasses)
{
    PoolModel p;
    auto r = interpretModel(p.m);
    auto violations = typeforge::crossCheckRanges(
        p.m, r, {{"unknown-key", -1e30, 1e30}});
    EXPECT_TRUE(violations.empty());
}

} // namespace
