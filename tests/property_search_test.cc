/**
 * @file
 * Property-based tests for the search strategies: randomized problem
 * instances (seeded, reproducible) checked against strategy
 * invariants and a brute-force reference.
 */

#include <algorithm>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "search/driver.h"
#include "search/genetic.h"
#include "support/json.h"
#include "support/rng.h"

namespace {

using namespace hpcmixp::search;
using hpcmixp::support::Pcg32;

/**
 * A randomized "toxic subset" problem: each site is independently
 * toxic with probability 1/3; a configuration passes iff it lowers no
 * toxic site. Speedup grows with the number of lowered sites.
 */
class RandomProblem : public SearchProblem {
  public:
    RandomProblem(std::size_t sites, std::uint64_t seed)
        : sites_(sites), toxic_(sites)
    {
        Pcg32 rng(seed);
        for (std::size_t i = 0; i < sites; ++i)
            toxic_[i] = rng.chance(1.0 / 3.0);
    }

    std::size_t siteCount() const override { return sites_; }

    bool
    passes(const Config& config) const
    {
        for (std::size_t i = 0; i < sites_; ++i)
            if (config.test(i) && toxic_[i])
                return false;
        return true;
    }

    Evaluation
    evaluate(const Config& config) override
    {
        Evaluation eval;
        eval.speedup =
            1.0 + 0.05 * static_cast<double>(config.count());
        eval.runtimeSeconds = 1.0 / eval.speedup;
        eval.status = passes(config) ? EvalStatus::Pass
                                     : EvalStatus::QualityFail;
        eval.qualityLoss = eval.passed() ? 0.0 : 1.0;
        return eval;
    }

    /** Number of non-toxic sites = optimum lowered count. */
    std::size_t
    optimumCount() const
    {
        std::size_t n = 0;
        for (bool t : toxic_)
            n += t ? 0 : 1;
        return n;
    }

  private:
    std::size_t sites_;
    std::vector<bool> toxic_;
};

/** RandomProblem plus a two-module structure tree so the hierarchical
 *  strategies (HR, HC) can run over it. */
class StructuredRandomProblem : public RandomProblem {
  public:
    StructuredRandomProblem(std::size_t sites, std::uint64_t seed)
        : RandomProblem(sites, seed)
    {
        tree_.name = "prog";
        StructureNode left, right;
        left.name = "modA";
        right.name = "modB";
        for (std::size_t i = 0; i < sites; ++i) {
            tree_.sites.push_back(i);
            StructureNode leaf;
            leaf.name = "v" + std::to_string(i);
            leaf.sites = {i};
            StructureNode& half = i < sites / 2 ? left : right;
            half.sites.push_back(i);
            half.children.push_back(std::move(leaf));
        }
        tree_.children = {std::move(left), std::move(right)};
    }

    const StructureNode* structure() const override { return &tree_; }

  private:
    StructureNode tree_;
};

SearchBudget
bigBudget()
{
    return {1000000, 0.0};
}

/** Order-independent view of an exportCache() snapshot: every entry's
 *  dump, sorted by config key (the map dump order is unspecified). */
std::vector<std::string>
canonicalCache(const hpcmixp::support::json::Value& cache)
{
    std::vector<std::pair<std::string, std::string>> entries;
    for (const auto& e : cache.at("evaluations").items())
        entries.emplace_back(e.at("config").asString(), e.dump());
    std::sort(entries.begin(), entries.end());
    std::vector<std::string> dumps;
    dumps.reserve(entries.size());
    for (auto& [key, dump] : entries)
        dumps.push_back(std::move(dump));
    return dumps;
}

class SearchProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SearchProperty, CombinationalFindsTheOptimum)
{
    RandomProblem problem(6, GetParam());
    auto result = runSearch(problem, "CB", bigBudget());
    EXPECT_EQ(result.evaluated, 63u);
    if (problem.optimumCount() == 0) {
        EXPECT_FALSE(result.foundImprovement);
    } else {
        ASSERT_TRUE(result.foundImprovement);
        // The independent-toxicity structure makes "lower every
        // non-toxic site" the unique optimum.
        EXPECT_EQ(result.best.count(), problem.optimumCount());
        EXPECT_TRUE(problem.passes(result.best));
    }
}

TEST_P(SearchProperty, DeltaDebugResultPassesAndIsLocallyMinimal)
{
    RandomProblem problem(9, GetParam());
    auto result = runSearch(problem, "DD", bigBudget());
    EXPECT_TRUE(problem.passes(result.best));
    // Local minimality of the kept set: lowering any additional site
    // on top of DD's answer must fail (otherwise DD stopped early).
    // This holds for independent toxicity: the only extension sites
    // are toxic ones.
    for (std::size_t i = 0; i < problem.siteCount(); ++i) {
        if (result.best.test(i))
            continue;
        Config extended = result.best;
        extended.set(i);
        EXPECT_FALSE(problem.passes(extended))
            << "site " << i << " was convertible but kept in double";
    }
}

TEST_P(SearchProperty, DeltaDebugMatchesCombinationalOptimum)
{
    RandomProblem problem(6, GetParam());
    auto cb = runSearch(problem, "CB", bigBudget());
    auto dd = runSearch(problem, "DD", bigBudget());
    // With monotone speedup and independent toxicity, DD's local
    // minimum is the global optimum CB finds.
    EXPECT_EQ(dd.best.count(), cb.best.count());
    EXPECT_LE(dd.evaluated, cb.evaluated);
}

TEST_P(SearchProperty, CompositionalResultsAlwaysPass)
{
    RandomProblem problem(7, GetParam());
    auto result = runSearch(problem, "CM", bigBudget());
    EXPECT_TRUE(problem.passes(result.best));
    if (problem.optimumCount() > 0) {
        ASSERT_TRUE(result.foundImprovement);
        // CM composes all passing singletons, reaching the optimum.
        EXPECT_EQ(result.best.count(), problem.optimumCount());
    }
}

TEST_P(SearchProperty, GeneticRespectsItsBudgetAndPasses)
{
    RandomProblem problem(8, GetParam());
    GaOptions options;
    options.seed = GetParam() ^ 0xabcdef;
    GeneticSearch ga(options);
    SearchContext ctx(problem, bigBudget());
    ga.run(ctx);
    EXPECT_LE(ctx.evaluatedCount(),
              options.population * options.generations);
    if (ctx.hasBest())
        EXPECT_TRUE(problem.passes(ctx.bestConfig()));
}

TEST_P(SearchProperty, CacheNeverReExecutes)
{
    RandomProblem problem(6, GetParam());
    SearchContext ctx(problem, bigBudget());
    Pcg32 rng(GetParam());
    std::size_t distinct = 0;
    std::vector<std::string> seen;
    for (int i = 0; i < 200; ++i) {
        Config cfg(6);
        for (std::size_t s = 0; s < 6; ++s)
            cfg.set(s, rng.chance(0.5));
        std::string key = cfg.toString();
        bool isNew = true;
        for (const auto& k : seen)
            if (k == key)
                isNew = false;
        if (isNew) {
            seen.push_back(key);
            ++distinct;
        }
        ctx.evaluate(cfg);
    }
    EXPECT_EQ(ctx.evaluatedCount(), distinct);
    EXPECT_EQ(ctx.cacheHitCount(), 200u - distinct);
}

/**
 * The headline pin of batch-parallel evaluation: for every strategy,
 * a 4-worker search must traverse exactly the trajectory of the
 * serial search — same best configuration, same EV / cache-hit /
 * compile-failure accounting, and a bit-identical evaluation cache.
 * (Commit-in-submission-order makes this hold; see DESIGN.md §9.)
 */
TEST_P(SearchProperty, ParallelBatchesMatchSerialTrajectory)
{
    using hpcmixp::support::json::Value;
    for (const char* code : {"CB", "CM", "DD", "HR", "HC", "GA"}) {
        auto runWith = [&](std::size_t jobs, Value& cache) {
            StructuredRandomProblem problem(7, GetParam());
            SearchRunOptions run;
            run.searchJobs = jobs;
            run.checkpointSink = [&cache](const Value& v) {
                cache = v;
            };
            return runSearch(problem, code, bigBudget(), run);
        };
        Value serialCache, parallelCache;
        auto serial = runWith(1, serialCache);
        auto parallel = runWith(4, parallelCache);

        EXPECT_EQ(parallel.foundImprovement, serial.foundImprovement)
            << code;
        EXPECT_EQ(parallel.best, serial.best) << code;
        EXPECT_DOUBLE_EQ(parallel.bestEvaluation.speedup,
                         serial.bestEvaluation.speedup)
            << code;
        EXPECT_EQ(parallel.evaluated, serial.evaluated) << code;
        EXPECT_EQ(parallel.cacheHits, serial.cacheHits) << code;
        EXPECT_EQ(parallel.compileFailures, serial.compileFailures)
            << code;
        EXPECT_EQ(canonicalCache(parallelCache),
                  canonicalCache(serialCache))
            << code;
    }
}

/**
 * RandomProblem whose evaluation *cost* varies per configuration (a
 * seeded spin) while the evaluation *values* stay pure functions of
 * the configuration. Uneven latency is what makes work stealing kick
 * in: fast workers drain their deques and raid the loaded ones.
 */
class UnevenLatencyProblem : public RandomProblem {
  public:
    UnevenLatencyProblem(std::size_t sites, std::uint64_t seed)
        : RandomProblem(sites, seed), spinSeed_(seed)
    {
    }

    Evaluation
    evaluate(const Config& config) override
    {
        Pcg32 rng(spinSeed_ ^
                  std::hash<std::string>{}(config.toString()));
        volatile double sink = 0.0;
        const std::uint32_t spins = rng.nextBounded(20000);
        for (std::uint32_t i = 0; i < spins; ++i)
            sink += static_cast<double>(i) * 1e-9;
        (void)sink;
        return RandomProblem::evaluate(config);
    }

  private:
    std::uint64_t spinSeed_;
};

/**
 * The stealing scheduler is a pure throughput optimization: a batch
 * with wildly uneven per-item latencies must commit bit-identical
 * evaluations in both scheduling modes — commit order follows
 * submission order, never completion order.
 */
TEST_P(SearchProperty, StealSchedulingMatchesFifoBitIdentically)
{
    auto runWith = [&](SearchContext::BatchScheduling mode,
                       std::vector<Evaluation>& evals) {
        UnevenLatencyProblem problem(10, GetParam());
        SearchContext ctx(problem, bigBudget(), ResiliencePolicy{});
        ctx.setSearchJobs(4);
        ctx.setBatchScheduling(mode);

        std::vector<Config> batch;
        Pcg32 rng(GetParam() * 0x9e3779b9u + 17);
        for (int i = 0; i < 48; ++i) {
            Config cfg(10);
            for (std::size_t s = 0; s < 10; ++s)
                if (rng.chance(0.5))
                    cfg.set(s);
            batch.push_back(cfg);
        }
        evals = ctx.evaluateBatch(batch);
        return canonicalCache(ctx.exportCache());
    };

    std::vector<Evaluation> stealEvals, fifoEvals;
    auto stealCache =
        runWith(SearchContext::BatchScheduling::Steal, stealEvals);
    auto fifoCache =
        runWith(SearchContext::BatchScheduling::Fifo, fifoEvals);

    ASSERT_EQ(stealEvals.size(), fifoEvals.size());
    for (std::size_t i = 0; i < stealEvals.size(); ++i) {
        EXPECT_EQ(stealEvals[i].status, fifoEvals[i].status) << i;
        EXPECT_EQ(stealEvals[i].speedup, fifoEvals[i].speedup) << i;
        EXPECT_EQ(stealEvals[i].runtimeSeconds,
                  fifoEvals[i].runtimeSeconds)
            << i;
        EXPECT_EQ(stealEvals[i].qualityLoss, fifoEvals[i].qualityLoss)
            << i;
    }
    EXPECT_EQ(stealCache, fifoCache);
}

/** A deliberately lopsided batch: the slow item lands in one worker's
 *  deque along with a pile of fast ones, so the idle workers must
 *  steal to drain the batch promptly. */
TEST(StealScheduling, ThievesDrainALoadedWorker)
{
    class StallFirstProblem : public SearchProblem {
      public:
        std::size_t siteCount() const override { return 6; }
        Evaluation
        evaluate(const Config& config) override
        {
            if (config.test(0) && config.count() == 1)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(80));
            Evaluation eval;
            eval.speedup =
                1.0 + 0.01 * static_cast<double>(config.count());
            eval.runtimeSeconds = 1.0 / eval.speedup;
            eval.status = EvalStatus::Pass;
            return eval;
        }
    } problem;

    SearchContext ctx(problem, SearchBudget{1000000, 0.0},
                      ResiliencePolicy{});
    ctx.setSearchJobs(4);
    ASSERT_EQ(ctx.batchScheduling(),
              SearchContext::BatchScheduling::Steal);

    std::vector<Config> batch;
    Config slow(6);
    slow.set(0);
    batch.push_back(slow);
    // Distinct fast configurations (binary images of 2..33, none of
    // which is the lone-bit-0 slow config).
    for (unsigned pattern = 2; pattern < 34; ++pattern) {
        Config cfg(6);
        for (std::size_t s = 0; s < 6; ++s)
            if (pattern & (1u << s))
                cfg.set(s);
        batch.push_back(cfg);
    }
    auto evals = ctx.evaluateBatch(batch);
    EXPECT_EQ(evals.size(), batch.size());
    EXPECT_GT(ctx.stealCount(), 0u);
}

/**
 * Budget exhaustion must cut a parallel search at exactly the same
 * configuration as the serial search: speculative evaluations past
 * the budget are discarded, never committed.
 */
TEST_P(SearchProperty, ParallelBudgetTruncationMatchesSerial)
{
    using hpcmixp::support::json::Value;
    for (const char* code : {"CB", "GA"}) {
        for (std::size_t cap : {3u, 7u}) {
            auto runWith = [&](std::size_t jobs, Value& cache) {
                StructuredRandomProblem problem(7, GetParam());
                SearchRunOptions run;
                run.searchJobs = jobs;
                run.checkpointSink = [&cache](const Value& v) {
                    cache = v;
                };
                return runSearch(problem, code,
                                 SearchBudget{cap, 0.0}, run);
            };
            Value serialCache, parallelCache;
            auto serial = runWith(1, serialCache);
            auto parallel = runWith(4, parallelCache);
            EXPECT_EQ(parallel.timedOut, serial.timedOut) << code;
            EXPECT_EQ(parallel.evaluated, serial.evaluated) << code;
            EXPECT_EQ(parallel.best, serial.best) << code;
            EXPECT_EQ(canonicalCache(parallelCache),
                      canonicalCache(serialCache))
                << code << " cap=" << cap;
        }
    }
}

/** StructuredRandomProblem that records every cache-miss evaluation
 *  in submission order. Cache hits never reach evaluate(), so they
 *  are invisible to the trajectory — exactly the view the pre-ladder
 *  golden capture used. */
class TrajectoryProblem : public StructuredRandomProblem {
  public:
    using StructuredRandomProblem::StructuredRandomProblem;

    Evaluation
    evaluate(const Config& config) override
    {
        trajectory.push_back(config.toString());
        return StructuredRandomProblem::evaluate(config);
    }

    std::vector<std::string> trajectory;
};

std::uint64_t
fnv1a(const std::string& s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

struct TrajectoryPin {
    const char* code;
    std::uint64_t seed;
    std::uint64_t hash;
};

/**
 * Golden hashes captured at the last pre-ladder commit: FNV-1a over
 * (trajectory keys, winner, canonical exported cache) for every
 * strategy run serially on StructuredRandomProblem(7, seed) with an
 * unbounded budget. The multi-rung generalization must keep a
 * default two-rung campaign bit-identical to these — any drift means
 * ladder logic leaked into the maxLevel()==1 path.
 */
constexpr TrajectoryPin kPreLadderPins[] = {
    {"CB", 1u, 0xe41e77d7a16ef669ull},
    {"CB", 2u, 0x240b4e726cf2994full},
    {"CB", 3u, 0x66a6e5d497332e89ull},
    {"CB", 5u, 0x1f6c1a3033a8ccd4ull},
    {"CB", 8u, 0x3bfe5d5d610448c0ull},
    {"CB", 13u, 0x00f443ebc949ed86ull},
    {"CB", 21u, 0x55ca32d089f8b4b4ull},
    {"CB", 34u, 0x2c7fed7da08f83f1ull},
    {"CB", 55u, 0xee2d645a5544d1d8ull},
    {"CB", 89u, 0xe41e77d7a16ef669ull},
    {"CM", 1u, 0x6e7f23b30403b6eaull},
    {"CM", 2u, 0x10179868b6c17f76ull},
    {"CM", 3u, 0x3417646d3ac2d25cull},
    {"CM", 5u, 0xcb334f04bf56ebb4ull},
    {"CM", 8u, 0xdae91e1202797c3cull},
    {"CM", 13u, 0x928f0c500538d4deull},
    {"CM", 21u, 0x59da92fe94adafccull},
    {"CM", 34u, 0xe787200c0c00f15aull},
    {"CM", 55u, 0xd688c13ebc9a394cull},
    {"CM", 89u, 0x6e7f23b30403b6eaull},
    {"DD", 1u, 0x37a40a91e2e335e7ull},
    {"DD", 2u, 0x4e1730d51127befdull},
    {"DD", 3u, 0x630815735bbc721cull},
    {"DD", 5u, 0x0454f954225051baull},
    {"DD", 8u, 0xdb83bb9fc02a65f5ull},
    {"DD", 13u, 0x8d753ee4d0e4e17dull},
    {"DD", 21u, 0xf74ed7f39648f1eeull},
    {"DD", 34u, 0x8ebcac9c410ad7d3ull},
    {"DD", 55u, 0x703ae36d42fe243bull},
    {"DD", 89u, 0x37a40a91e2e335e7ull},
    {"HR", 1u, 0xa739e631934079fbull},
    {"HR", 2u, 0x83cfe0fe719fa23cull},
    {"HR", 3u, 0xcf8d223dd9da0ac6ull},
    {"HR", 5u, 0xfbb9ec3f8d9d8e46ull},
    {"HR", 8u, 0xdb83bb9fc02a65f5ull},
    {"HR", 13u, 0x89dc9ce980e85a78ull},
    {"HR", 21u, 0x3b1d662e2fb52a6eull},
    {"HR", 34u, 0x9f6ff9ef6cff9bccull},
    {"HR", 55u, 0xd4dec53a058e6782ull},
    {"HR", 89u, 0xa739e631934079fbull},
    {"HC", 1u, 0xa7349147e5924973ull},
    {"HC", 2u, 0x83cfe0fe719fa23cull},
    {"HC", 3u, 0xe85d165b17978f7eull},
    {"HC", 5u, 0x6ea5a0c77ee1d5beull},
    {"HC", 8u, 0xdb83bb9fc02a65f5ull},
    {"HC", 13u, 0x4b2da60acd6a1db4ull},
    {"HC", 21u, 0x3b1d662e2fb52a6eull},
    {"HC", 34u, 0xdae632e30749d2ccull},
    {"HC", 55u, 0x366714028db321ceull},
    {"HC", 89u, 0xa7349147e5924973ull},
    {"GA", 1u, 0x6946b360545a99d0ull},
    {"GA", 2u, 0xeebfe0da9e248990ull},
    {"GA", 3u, 0x73ae751317adcec5ull},
    {"GA", 5u, 0x08c93e510d24a14aull},
    {"GA", 8u, 0xafa7796c3eaff243ull},
    {"GA", 13u, 0x8763ae657939d83aull},
    {"GA", 21u, 0xeebfe0da9e248990ull},
    {"GA", 34u, 0x08c93e510d24a14aull},
    {"GA", 55u, 0xc95b5f0f891a2694ull},
    {"GA", 89u, 0x6946b360545a99d0ull},
};

/**
 * The headline pin of the precision-ladder generalization: with the
 * default two-rung ladder (maxLevel()==1), every strategy's full
 * trajectory, winner, and exported evaluation cache must be
 * bit-identical to the pre-ladder implementation, per seed.
 */
TEST_P(SearchProperty, DefaultLadderMatchesPreLadderTrajectoryGolden)
{
    using hpcmixp::support::json::Value;
    const std::uint64_t seed = GetParam();
    for (const char* code : {"CB", "CM", "DD", "HR", "HC", "GA"}) {
        TrajectoryProblem problem(7, seed);
        Value cache;
        SearchRunOptions run;
        run.checkpointSink = [&cache](const Value& v) { cache = v; };
        auto result = runSearch(problem, code, bigBudget(), run);

        std::string blob;
        for (const auto& key : problem.trajectory) {
            blob += key;
            blob += ',';
        }
        blob += "|best=";
        blob += result.foundImprovement ? result.best.toString()
                                        : std::string("-");
        blob += "|cache=";
        for (const auto& dump : canonicalCache(cache)) {
            blob += dump;
            blob += ';';
        }

        const TrajectoryPin* pin = nullptr;
        for (const auto& p : kPreLadderPins)
            if (std::string(p.code) == code && p.seed == seed)
                pin = &p;
        ASSERT_NE(pin, nullptr) << code << " seed=" << seed;
        EXPECT_EQ(fnv1a(blob), pin->hash)
            << code << " seed=" << seed
            << ": two-rung trajectory drifted from the pre-ladder "
               "golden";
    }
}

/**
 * A randomized ladder problem: each site independently tolerates
 * narrowing down to a per-site level `tolerance[i]` in [0, rungs];
 * a configuration passes iff no site sits below its tolerance rung.
 * Speedup grows with total demotion depth, so the unique optimum is
 * the tolerance vector itself.
 */
class LadderProblem : public SearchProblem {
  public:
    LadderProblem(std::size_t sites, std::size_t rungs,
                  std::uint64_t seed)
        : sites_(sites), rungs_(rungs), tolerance_(sites)
    {
        Pcg32 rng(seed ^ 0x1adde5u);
        for (std::size_t i = 0; i < sites; ++i)
            tolerance_[i] = static_cast<std::uint8_t>(
                rng.nextBounded(static_cast<std::uint32_t>(rungs) + 1));
    }

    std::size_t siteCount() const override { return sites_; }
    std::size_t maxLevel() const override { return rungs_; }

    bool
    passes(const Config& config) const
    {
        for (std::size_t i = 0; i < sites_; ++i)
            if (config.level(i) > tolerance_[i])
                return false;
        return true;
    }

    Evaluation
    evaluate(const Config& config) override
    {
        std::size_t depth = 0;
        for (std::size_t i = 0; i < sites_; ++i)
            depth += config.level(i);
        Evaluation eval;
        eval.speedup = 1.0 + 0.05 * static_cast<double>(depth);
        eval.runtimeSeconds = 1.0 / eval.speedup;
        eval.status = passes(config) ? EvalStatus::Pass
                                     : EvalStatus::QualityFail;
        eval.qualityLoss = eval.passed() ? 0.0 : 1.0;
        return eval;
    }

    std::uint8_t tolerance(std::size_t i) const
    {
        return tolerance_[i];
    }

    /** Sum of tolerances = total demotion depth of the optimum. */
    std::size_t
    optimumDepth() const
    {
        std::size_t depth = 0;
        for (std::uint8_t t : tolerance_)
            depth += t;
        return depth;
    }

  private:
    std::size_t sites_;
    std::size_t rungs_;
    std::vector<std::uint8_t> tolerance_;
};

/** LadderProblem plus a two-module structure tree for HR / HC. */
class StructuredLadderProblem : public LadderProblem {
  public:
    StructuredLadderProblem(std::size_t sites, std::size_t rungs,
                            std::uint64_t seed)
        : LadderProblem(sites, rungs, seed)
    {
        tree_.name = "prog";
        StructureNode left, right;
        left.name = "modA";
        right.name = "modB";
        for (std::size_t i = 0; i < sites; ++i) {
            tree_.sites.push_back(i);
            StructureNode leaf;
            leaf.name = "v" + std::to_string(i);
            leaf.sites = {i};
            StructureNode& half = i < sites / 2 ? left : right;
            half.sites.push_back(i);
            half.children.push_back(std::move(leaf));
        }
        tree_.children = {std::move(left), std::move(right)};
    }

    const StructureNode* structure() const override { return &tree_; }

  private:
    StructureNode tree_;
};

/**
 * With independent per-site tolerances the tolerance vector is the
 * unique optimum; CB's level odometer enumerates the full ladder
 * space and must land exactly on it.
 */
TEST_P(SearchProperty, ThreeRungCombinationalFindsTheOptimum)
{
    LadderProblem problem(4, 2, GetParam());
    auto result = runSearch(problem, "CB", bigBudget());
    if (problem.optimumDepth() == 0) {
        EXPECT_FALSE(result.foundImprovement);
        return;
    }
    ASSERT_TRUE(result.foundImprovement);
    EXPECT_TRUE(problem.passes(result.best));
    for (std::size_t i = 0; i < problem.siteCount(); ++i)
        EXPECT_EQ(result.best.level(i), problem.tolerance(i))
            << "site " << i;
}

/**
 * DD and CM both end in (or compose to) the per-site deepest
 * tolerated level: DD via the greedy demotion pass, CM via
 * per-(site, level) singles unioned with per-site max.
 */
TEST_P(SearchProperty, ThreeRungDemotionReachesPerSiteTolerance)
{
    for (const char* code : {"DD", "CM"}) {
        LadderProblem problem(6, 2, GetParam());
        if (problem.optimumDepth() == 0)
            continue;
        auto result = runSearch(problem, code, bigBudget());
        ASSERT_TRUE(result.foundImprovement) << code;
        for (std::size_t i = 0; i < problem.siteCount(); ++i)
            EXPECT_EQ(result.best.level(i), problem.tolerance(i))
                << code << " site " << i;
    }
}

/** Every strategy's winner must pass on a three-rung ladder. */
TEST_P(SearchProperty, ThreeRungWinnersAlwaysPass)
{
    for (const char* code : {"CB", "CM", "DD", "HR", "HC", "GA"}) {
        StructuredLadderProblem problem(6, 2, GetParam());
        auto result = runSearch(problem, code, bigBudget());
        if (result.foundImprovement) {
            EXPECT_TRUE(problem.passes(result.best)) << code;
        }
    }
}

/**
 * Per-site prior caps bound every proposed level: with site i capped
 * at i % 3 rungs, no strategy may return (or even cache) a
 * configuration exceeding a cap.
 */
TEST_P(SearchProperty, ThreeRungPriorCapsAreNeverExceeded)
{
    using hpcmixp::support::json::Value;
    const std::size_t sites = 6;
    std::vector<std::uint8_t> caps(sites);
    for (std::size_t i = 0; i < sites; ++i)
        caps[i] = static_cast<std::uint8_t>(i % 3);
    StaticPrior prior = StaticPrior::withCaps(
        PriorMode::On, caps, std::vector<bool>(sites, false),
        std::vector<int>(sites, 0));

    for (const char* code : {"CB", "CM", "DD", "HR", "HC"}) {
        StructuredLadderProblem problem(sites, 2, GetParam());
        Value cache;
        SearchRunOptions run;
        run.prior = prior;
        run.checkpointSink = [&cache](const Value& v) { cache = v; };
        auto result = runSearch(problem, code, bigBudget(), run);
        for (std::size_t i = 0; i < sites; ++i)
            EXPECT_LE(result.best.level(i), caps[i])
                << code << " site " << i;
        for (const auto& e : cache.at("evaluations").items()) {
            Config cfg =
                Config::fromString(e.at("config").asString());
            EXPECT_FALSE(prior.violates(cfg))
                << code << " cached " << cfg.toString();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SearchProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u,
                                           21u, 34u, 55u, 89u));

} // namespace
