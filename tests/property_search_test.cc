/**
 * @file
 * Property-based tests for the search strategies: randomized problem
 * instances (seeded, reproducible) checked against strategy
 * invariants and a brute-force reference.
 */

#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "search/driver.h"
#include "search/genetic.h"
#include "support/rng.h"

namespace {

using namespace hpcmixp::search;
using hpcmixp::support::Pcg32;

/**
 * A randomized "toxic subset" problem: each site is independently
 * toxic with probability 1/3; a configuration passes iff it lowers no
 * toxic site. Speedup grows with the number of lowered sites.
 */
class RandomProblem : public SearchProblem {
  public:
    RandomProblem(std::size_t sites, std::uint64_t seed)
        : sites_(sites), toxic_(sites)
    {
        Pcg32 rng(seed);
        for (std::size_t i = 0; i < sites; ++i)
            toxic_[i] = rng.chance(1.0 / 3.0);
    }

    std::size_t siteCount() const override { return sites_; }

    bool
    passes(const Config& config) const
    {
        for (std::size_t i = 0; i < sites_; ++i)
            if (config.test(i) && toxic_[i])
                return false;
        return true;
    }

    Evaluation
    evaluate(const Config& config) override
    {
        Evaluation eval;
        eval.speedup =
            1.0 + 0.05 * static_cast<double>(config.count());
        eval.runtimeSeconds = 1.0 / eval.speedup;
        eval.status = passes(config) ? EvalStatus::Pass
                                     : EvalStatus::QualityFail;
        eval.qualityLoss = eval.passed() ? 0.0 : 1.0;
        return eval;
    }

    /** Number of non-toxic sites = optimum lowered count. */
    std::size_t
    optimumCount() const
    {
        std::size_t n = 0;
        for (bool t : toxic_)
            n += t ? 0 : 1;
        return n;
    }

  private:
    std::size_t sites_;
    std::vector<bool> toxic_;
};

SearchBudget
bigBudget()
{
    return {1000000, 0.0};
}

class SearchProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SearchProperty, CombinationalFindsTheOptimum)
{
    RandomProblem problem(6, GetParam());
    auto result = runSearch(problem, "CB", bigBudget());
    EXPECT_EQ(result.evaluated, 63u);
    if (problem.optimumCount() == 0) {
        EXPECT_FALSE(result.foundImprovement);
    } else {
        ASSERT_TRUE(result.foundImprovement);
        // The independent-toxicity structure makes "lower every
        // non-toxic site" the unique optimum.
        EXPECT_EQ(result.best.count(), problem.optimumCount());
        EXPECT_TRUE(problem.passes(result.best));
    }
}

TEST_P(SearchProperty, DeltaDebugResultPassesAndIsLocallyMinimal)
{
    RandomProblem problem(9, GetParam());
    auto result = runSearch(problem, "DD", bigBudget());
    EXPECT_TRUE(problem.passes(result.best));
    // Local minimality of the kept set: lowering any additional site
    // on top of DD's answer must fail (otherwise DD stopped early).
    // This holds for independent toxicity: the only extension sites
    // are toxic ones.
    for (std::size_t i = 0; i < problem.siteCount(); ++i) {
        if (result.best.test(i))
            continue;
        Config extended = result.best;
        extended.set(i);
        EXPECT_FALSE(problem.passes(extended))
            << "site " << i << " was convertible but kept in double";
    }
}

TEST_P(SearchProperty, DeltaDebugMatchesCombinationalOptimum)
{
    RandomProblem problem(6, GetParam());
    auto cb = runSearch(problem, "CB", bigBudget());
    auto dd = runSearch(problem, "DD", bigBudget());
    // With monotone speedup and independent toxicity, DD's local
    // minimum is the global optimum CB finds.
    EXPECT_EQ(dd.best.count(), cb.best.count());
    EXPECT_LE(dd.evaluated, cb.evaluated);
}

TEST_P(SearchProperty, CompositionalResultsAlwaysPass)
{
    RandomProblem problem(7, GetParam());
    auto result = runSearch(problem, "CM", bigBudget());
    EXPECT_TRUE(problem.passes(result.best));
    if (problem.optimumCount() > 0) {
        ASSERT_TRUE(result.foundImprovement);
        // CM composes all passing singletons, reaching the optimum.
        EXPECT_EQ(result.best.count(), problem.optimumCount());
    }
}

TEST_P(SearchProperty, GeneticRespectsItsBudgetAndPasses)
{
    RandomProblem problem(8, GetParam());
    GaOptions options;
    options.seed = GetParam() ^ 0xabcdef;
    GeneticSearch ga(options);
    SearchContext ctx(problem, bigBudget());
    ga.run(ctx);
    EXPECT_LE(ctx.evaluatedCount(),
              options.population * options.generations);
    if (ctx.hasBest())
        EXPECT_TRUE(problem.passes(ctx.bestConfig()));
}

TEST_P(SearchProperty, CacheNeverReExecutes)
{
    RandomProblem problem(6, GetParam());
    SearchContext ctx(problem, bigBudget());
    Pcg32 rng(GetParam());
    std::size_t distinct = 0;
    std::vector<std::string> seen;
    for (int i = 0; i < 200; ++i) {
        Config cfg(6);
        for (std::size_t s = 0; s < 6; ++s)
            cfg.set(s, rng.chance(0.5));
        std::string key = cfg.toString();
        bool isNew = true;
        for (const auto& k : seen)
            if (k == key)
                isNew = false;
        if (isNew) {
            seen.push_back(key);
            ++distinct;
        }
        ctx.evaluate(cfg);
    }
    EXPECT_EQ(ctx.evaluatedCount(), distinct);
    EXPECT_EQ(ctx.cacheHitCount(), 200u - distinct);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SearchProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u,
                                           21u, 34u, 55u, 89u));

} // namespace
