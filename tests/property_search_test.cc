/**
 * @file
 * Property-based tests for the search strategies: randomized problem
 * instances (seeded, reproducible) checked against strategy
 * invariants and a brute-force reference.
 */

#include <algorithm>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "search/driver.h"
#include "search/genetic.h"
#include "support/json.h"
#include "support/rng.h"

namespace {

using namespace hpcmixp::search;
using hpcmixp::support::Pcg32;

/**
 * A randomized "toxic subset" problem: each site is independently
 * toxic with probability 1/3; a configuration passes iff it lowers no
 * toxic site. Speedup grows with the number of lowered sites.
 */
class RandomProblem : public SearchProblem {
  public:
    RandomProblem(std::size_t sites, std::uint64_t seed)
        : sites_(sites), toxic_(sites)
    {
        Pcg32 rng(seed);
        for (std::size_t i = 0; i < sites; ++i)
            toxic_[i] = rng.chance(1.0 / 3.0);
    }

    std::size_t siteCount() const override { return sites_; }

    bool
    passes(const Config& config) const
    {
        for (std::size_t i = 0; i < sites_; ++i)
            if (config.test(i) && toxic_[i])
                return false;
        return true;
    }

    Evaluation
    evaluate(const Config& config) override
    {
        Evaluation eval;
        eval.speedup =
            1.0 + 0.05 * static_cast<double>(config.count());
        eval.runtimeSeconds = 1.0 / eval.speedup;
        eval.status = passes(config) ? EvalStatus::Pass
                                     : EvalStatus::QualityFail;
        eval.qualityLoss = eval.passed() ? 0.0 : 1.0;
        return eval;
    }

    /** Number of non-toxic sites = optimum lowered count. */
    std::size_t
    optimumCount() const
    {
        std::size_t n = 0;
        for (bool t : toxic_)
            n += t ? 0 : 1;
        return n;
    }

  private:
    std::size_t sites_;
    std::vector<bool> toxic_;
};

/** RandomProblem plus a two-module structure tree so the hierarchical
 *  strategies (HR, HC) can run over it. */
class StructuredRandomProblem : public RandomProblem {
  public:
    StructuredRandomProblem(std::size_t sites, std::uint64_t seed)
        : RandomProblem(sites, seed)
    {
        tree_.name = "prog";
        StructureNode left, right;
        left.name = "modA";
        right.name = "modB";
        for (std::size_t i = 0; i < sites; ++i) {
            tree_.sites.push_back(i);
            StructureNode leaf;
            leaf.name = "v" + std::to_string(i);
            leaf.sites = {i};
            StructureNode& half = i < sites / 2 ? left : right;
            half.sites.push_back(i);
            half.children.push_back(std::move(leaf));
        }
        tree_.children = {std::move(left), std::move(right)};
    }

    const StructureNode* structure() const override { return &tree_; }

  private:
    StructureNode tree_;
};

SearchBudget
bigBudget()
{
    return {1000000, 0.0};
}

/** Order-independent view of an exportCache() snapshot: every entry's
 *  dump, sorted by config key (the map dump order is unspecified). */
std::vector<std::string>
canonicalCache(const hpcmixp::support::json::Value& cache)
{
    std::vector<std::pair<std::string, std::string>> entries;
    for (const auto& e : cache.at("evaluations").items())
        entries.emplace_back(e.at("config").asString(), e.dump());
    std::sort(entries.begin(), entries.end());
    std::vector<std::string> dumps;
    dumps.reserve(entries.size());
    for (auto& [key, dump] : entries)
        dumps.push_back(std::move(dump));
    return dumps;
}

class SearchProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SearchProperty, CombinationalFindsTheOptimum)
{
    RandomProblem problem(6, GetParam());
    auto result = runSearch(problem, "CB", bigBudget());
    EXPECT_EQ(result.evaluated, 63u);
    if (problem.optimumCount() == 0) {
        EXPECT_FALSE(result.foundImprovement);
    } else {
        ASSERT_TRUE(result.foundImprovement);
        // The independent-toxicity structure makes "lower every
        // non-toxic site" the unique optimum.
        EXPECT_EQ(result.best.count(), problem.optimumCount());
        EXPECT_TRUE(problem.passes(result.best));
    }
}

TEST_P(SearchProperty, DeltaDebugResultPassesAndIsLocallyMinimal)
{
    RandomProblem problem(9, GetParam());
    auto result = runSearch(problem, "DD", bigBudget());
    EXPECT_TRUE(problem.passes(result.best));
    // Local minimality of the kept set: lowering any additional site
    // on top of DD's answer must fail (otherwise DD stopped early).
    // This holds for independent toxicity: the only extension sites
    // are toxic ones.
    for (std::size_t i = 0; i < problem.siteCount(); ++i) {
        if (result.best.test(i))
            continue;
        Config extended = result.best;
        extended.set(i);
        EXPECT_FALSE(problem.passes(extended))
            << "site " << i << " was convertible but kept in double";
    }
}

TEST_P(SearchProperty, DeltaDebugMatchesCombinationalOptimum)
{
    RandomProblem problem(6, GetParam());
    auto cb = runSearch(problem, "CB", bigBudget());
    auto dd = runSearch(problem, "DD", bigBudget());
    // With monotone speedup and independent toxicity, DD's local
    // minimum is the global optimum CB finds.
    EXPECT_EQ(dd.best.count(), cb.best.count());
    EXPECT_LE(dd.evaluated, cb.evaluated);
}

TEST_P(SearchProperty, CompositionalResultsAlwaysPass)
{
    RandomProblem problem(7, GetParam());
    auto result = runSearch(problem, "CM", bigBudget());
    EXPECT_TRUE(problem.passes(result.best));
    if (problem.optimumCount() > 0) {
        ASSERT_TRUE(result.foundImprovement);
        // CM composes all passing singletons, reaching the optimum.
        EXPECT_EQ(result.best.count(), problem.optimumCount());
    }
}

TEST_P(SearchProperty, GeneticRespectsItsBudgetAndPasses)
{
    RandomProblem problem(8, GetParam());
    GaOptions options;
    options.seed = GetParam() ^ 0xabcdef;
    GeneticSearch ga(options);
    SearchContext ctx(problem, bigBudget());
    ga.run(ctx);
    EXPECT_LE(ctx.evaluatedCount(),
              options.population * options.generations);
    if (ctx.hasBest())
        EXPECT_TRUE(problem.passes(ctx.bestConfig()));
}

TEST_P(SearchProperty, CacheNeverReExecutes)
{
    RandomProblem problem(6, GetParam());
    SearchContext ctx(problem, bigBudget());
    Pcg32 rng(GetParam());
    std::size_t distinct = 0;
    std::vector<std::string> seen;
    for (int i = 0; i < 200; ++i) {
        Config cfg(6);
        for (std::size_t s = 0; s < 6; ++s)
            cfg.set(s, rng.chance(0.5));
        std::string key = cfg.toString();
        bool isNew = true;
        for (const auto& k : seen)
            if (k == key)
                isNew = false;
        if (isNew) {
            seen.push_back(key);
            ++distinct;
        }
        ctx.evaluate(cfg);
    }
    EXPECT_EQ(ctx.evaluatedCount(), distinct);
    EXPECT_EQ(ctx.cacheHitCount(), 200u - distinct);
}

/**
 * The headline pin of batch-parallel evaluation: for every strategy,
 * a 4-worker search must traverse exactly the trajectory of the
 * serial search — same best configuration, same EV / cache-hit /
 * compile-failure accounting, and a bit-identical evaluation cache.
 * (Commit-in-submission-order makes this hold; see DESIGN.md §9.)
 */
TEST_P(SearchProperty, ParallelBatchesMatchSerialTrajectory)
{
    using hpcmixp::support::json::Value;
    for (const char* code : {"CB", "CM", "DD", "HR", "HC", "GA"}) {
        auto runWith = [&](std::size_t jobs, Value& cache) {
            StructuredRandomProblem problem(7, GetParam());
            SearchRunOptions run;
            run.searchJobs = jobs;
            run.checkpointSink = [&cache](const Value& v) {
                cache = v;
            };
            return runSearch(problem, code, bigBudget(), run);
        };
        Value serialCache, parallelCache;
        auto serial = runWith(1, serialCache);
        auto parallel = runWith(4, parallelCache);

        EXPECT_EQ(parallel.foundImprovement, serial.foundImprovement)
            << code;
        EXPECT_EQ(parallel.best, serial.best) << code;
        EXPECT_DOUBLE_EQ(parallel.bestEvaluation.speedup,
                         serial.bestEvaluation.speedup)
            << code;
        EXPECT_EQ(parallel.evaluated, serial.evaluated) << code;
        EXPECT_EQ(parallel.cacheHits, serial.cacheHits) << code;
        EXPECT_EQ(parallel.compileFailures, serial.compileFailures)
            << code;
        EXPECT_EQ(canonicalCache(parallelCache),
                  canonicalCache(serialCache))
            << code;
    }
}

/**
 * Budget exhaustion must cut a parallel search at exactly the same
 * configuration as the serial search: speculative evaluations past
 * the budget are discarded, never committed.
 */
TEST_P(SearchProperty, ParallelBudgetTruncationMatchesSerial)
{
    using hpcmixp::support::json::Value;
    for (const char* code : {"CB", "GA"}) {
        for (std::size_t cap : {3u, 7u}) {
            auto runWith = [&](std::size_t jobs, Value& cache) {
                StructuredRandomProblem problem(7, GetParam());
                SearchRunOptions run;
                run.searchJobs = jobs;
                run.checkpointSink = [&cache](const Value& v) {
                    cache = v;
                };
                return runSearch(problem, code,
                                 SearchBudget{cap, 0.0}, run);
            };
            Value serialCache, parallelCache;
            auto serial = runWith(1, serialCache);
            auto parallel = runWith(4, parallelCache);
            EXPECT_EQ(parallel.timedOut, serial.timedOut) << code;
            EXPECT_EQ(parallel.evaluated, serial.evaluated) << code;
            EXPECT_EQ(parallel.best, serial.best) << code;
            EXPECT_EQ(canonicalCache(parallelCache),
                      canonicalCache(serialCache))
                << code << " cap=" << cap;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SearchProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u,
                                           21u, 34u, 55u, 89u));

} // namespace
