/**
 * @file
 * Exhaustive per-knob sweep: for every benchmark in the suite and
 * every runtime knob it exposes, lowering exactly that knob must
 * produce a structurally valid, deterministic output whose quality
 * loss is either finite and non-negative or NaN (destroyed). This
 * exercises every region-dispatch path the search algorithms can
 * reach, one knob at a time.
 */

#include <cmath>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "benchmarks/benchmark.h"
#include "benchmarks/registry.h"
#include "verify/metrics.h"

namespace {

using namespace hpcmixp;
using benchmarks::Benchmark;
using benchmarks::PrecisionMap;
using runtime::Precision;

std::set<std::string>
knobsOf(const Benchmark& bench)
{
    std::set<std::string> knobs;
    for (const auto& var : bench.programModel().variables())
        if (!var.bindKey.empty())
            knobs.insert(var.bindKey);
    return knobs;
}

class KnobSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(KnobSweep, EverySingleKnobLoweringIsWellBehaved)
{
    auto bench =
        benchmarks::BenchmarkRegistry::instance().create(GetParam());
    auto reference = bench->run(PrecisionMap{});
    verify::MeanAbsoluteError mae;

    auto knobs = knobsOf(*bench);
    ASSERT_FALSE(knobs.empty());
    for (const auto& knob : knobs) {
        PrecisionMap pm;
        pm.set(knob, Precision::Float32);

        auto a = bench->run(pm);
        ASSERT_EQ(a.values.size(), reference.values.size())
            << GetParam() << " knob " << knob
            << ": output shape changed";

        auto b = bench->run(pm);
        ASSERT_EQ(a.values.size(), b.values.size());
        for (std::size_t i = 0; i < a.values.size(); ++i) {
            // NaN outputs must at least be deterministic NaNs.
            if (std::isnan(a.values[i])) {
                ASSERT_TRUE(std::isnan(b.values[i]))
                    << GetParam() << "/" << knob << " at " << i;
            } else {
                ASSERT_EQ(a.values[i], b.values[i])
                    << GetParam() << "/" << knob << " at " << i;
            }
        }

        double loss = mae.compute(reference.values, a.values);
        EXPECT_TRUE(std::isnan(loss) || loss >= 0.0)
            << GetParam() << "/" << knob;
    }
}

TEST_P(KnobSweep, PairwiseKnobLoweringsCompose)
{
    auto bench =
        benchmarks::BenchmarkRegistry::instance().create(GetParam());
    auto knobs = knobsOf(*bench);
    if (knobs.size() < 2)
        GTEST_SKIP() << "single-knob benchmark";

    // Lower the first two knobs together: still shape-stable and
    // deterministic (exercises mixed-precision region instantiations).
    auto it = knobs.begin();
    PrecisionMap pm;
    pm.set(*it++, Precision::Float32);
    pm.set(*it, Precision::Float32);

    auto reference = bench->run(PrecisionMap{});
    auto a = bench->run(pm);
    auto b = bench->run(pm);
    ASSERT_EQ(a.values.size(), reference.values.size());
    for (std::size_t i = 0; i < a.values.size(); ++i) {
        if (std::isnan(a.values[i]))
            ASSERT_TRUE(std::isnan(b.values[i]));
        else
            ASSERT_EQ(a.values[i], b.values[i]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, KnobSweep,
    ::testing::ValuesIn(
        hpcmixp::benchmarks::BenchmarkRegistry::instance().names()),
    [](const auto& info) {
        std::string name = info.param;
        for (auto& c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
