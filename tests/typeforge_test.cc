/**
 * @file
 * Tests for the Typeforge-analogue type-dependence analysis, including
 * the paper's Listing-1 example, which must partition into exactly
 * {arr, input}, {val, inout}, {scale}, {ratio}, {res}.
 */

#include <algorithm>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "model/program_model.h"
#include "typeforge/clustering.h"
#include "typeforge/report.h"

namespace {

using namespace hpcmixp::model;
using namespace hpcmixp::typeforge;

/** Build the paper's Listing-1 program. */
ProgramModel
listing1()
{
    ProgramModel m("listing1");
    ModuleId mod = m.addModule("listing1.c");

    FunctionId vectMult = m.addFunction(mod, "vect_mult");
    VarId input = m.addParameter(vectMult, "input", realPointer());
    VarId inout = m.addParameter(vectMult, "inout", realPointer());
    VarId ratio = m.addParameter(vectMult, "ratio", realScalar());
    VarId res = m.addVariable(vectMult, "res", realScalar());

    FunctionId foo = m.addFunction(mod, "foo");
    VarId arr = m.addVariable(foo, "arr", realPointer());
    VarId val = m.addVariable(foo, "val", realScalar());
    VarId scale = m.addVariable(foo, "scale", realScalar());

    // vect_mult(10, arr, &val, scale)
    m.addCallBind(arr, input);
    m.addAddressOf(val, inout);
    m.addCallBind(scale, ratio);
    // res += ratio * input[i]  (scalar value flow)
    m.addAssign(res, ratio);

    return m;
}

TEST(Clustering, Listing1MatchesPaperPartitioning)
{
    ProgramModel m = listing1();
    ClusterSet set = analyze(m);

    EXPECT_EQ(set.variableCount(), 7u);
    EXPECT_EQ(set.clusterCount(), 5u);

    auto names = clusterNames(m, set);
    std::set<std::set<std::string>> got;
    for (const auto& cluster : names)
        got.insert(std::set<std::string>(cluster.begin(),
                                         cluster.end()));

    std::set<std::set<std::string>> expected{
        {"foo::arr", "vect_mult::input"},
        {"foo::val", "vect_mult::inout"},
        {"foo::scale"},
        {"vect_mult::ratio"},
        {"vect_mult::res"}};
    EXPECT_EQ(got, expected);
}

TEST(Clustering, PointerAssignUnifiesScalarAssignDoesNot)
{
    ProgramModel m("t");
    ModuleId mod = m.addModule("t.c");
    FunctionId f = m.addFunction(mod, "f");
    VarId p1 = m.addVariable(f, "p1", realPointer());
    VarId p2 = m.addVariable(f, "p2", realPointer());
    VarId s1 = m.addVariable(f, "s1", realScalar());
    VarId s2 = m.addVariable(f, "s2", realScalar());
    m.addAssign(p1, p2);
    m.addAssign(s1, s2);

    ClusterSet set = analyze(m);
    EXPECT_EQ(set.clusterCount(), 3u);
    EXPECT_EQ(set.clusterOf(p1), set.clusterOf(p2));
    EXPECT_NE(set.clusterOf(s1), set.clusterOf(s2));
}

TEST(Clustering, AddressOfAlwaysUnifies)
{
    ProgramModel m("t");
    ModuleId mod = m.addModule("t.c");
    FunctionId f = m.addFunction(mod, "f");
    VarId scalar = m.addVariable(f, "s", realScalar());
    VarId ptr = m.addParameter(f, "p", realPointer());
    m.addAddressOf(scalar, ptr);
    ClusterSet set = analyze(m);
    EXPECT_EQ(set.clusterCount(), 1u);
}

TEST(Clustering, SameTypeConstraintUnifiesScalars)
{
    ProgramModel m("t");
    ModuleId mod = m.addModule("t.c");
    FunctionId f = m.addFunction(mod, "f");
    VarId a = m.addVariable(f, "a", realScalar());
    VarId b = m.addVariable(f, "b", realScalar());
    m.addSameType(a, b);
    EXPECT_EQ(analyze(m).clusterCount(), 1u);
}

TEST(Clustering, TransitiveUnificationAcrossFunctions)
{
    ProgramModel m("t");
    ModuleId mod = m.addModule("t.c");
    FunctionId f = m.addFunction(mod, "f");
    FunctionId g = m.addFunction(mod, "g");
    VarId arr = m.addGlobal(mod, "arr", realPointer());
    VarId pf = m.addParameter(f, "pf", realPointer());
    VarId pg = m.addParameter(g, "pg", realPointer());
    m.addCallBind(arr, pf);
    m.addCallBind(arr, pg);
    ClusterSet set = analyze(m);
    EXPECT_EQ(set.clusterCount(), 1u);
    EXPECT_EQ(set.clusterOf(pf), set.clusterOf(pg));
}

TEST(Clustering, IntegerVariablesAreExcluded)
{
    ProgramModel m("t");
    ModuleId mod = m.addModule("t.c");
    FunctionId f = m.addFunction(mod, "f");
    VarId r = m.addVariable(f, "r", realScalar());
    VarId i = m.addVariable(f, "i", integerScalar());
    ClusterSet set = analyze(m);
    EXPECT_EQ(set.variableCount(), 1u);
    EXPECT_TRUE(set.contains(r));
    EXPECT_FALSE(set.contains(i));
}

TEST(Clustering, ClustersAreDeterministicallyOrdered)
{
    ProgramModel m("t");
    ModuleId mod = m.addModule("t.c");
    FunctionId f = m.addFunction(mod, "f");
    VarId v0 = m.addVariable(f, "v0", realScalar());
    VarId v1 = m.addVariable(f, "v1", realPointer());
    VarId v2 = m.addVariable(f, "v2", realPointer());
    m.addAssign(v1, v2);
    ClusterSet set = analyze(m);
    // Cluster 0 must begin with the smallest VarId.
    EXPECT_EQ(set.members(0).front(), v0);
    EXPECT_EQ(set.members(1).front(), v1);
    EXPECT_EQ(set.clusterOf(v2), 1u);
}

TEST(Clustering, EmptyModelYieldsNoClusters)
{
    ProgramModel m("empty");
    ClusterSet set = analyze(m);
    EXPECT_EQ(set.clusterCount(), 0u);
    EXPECT_EQ(set.variableCount(), 0u);
}

TEST(UnionFindTest, BasicMergeSemantics)
{
    UnionFind uf(5);
    EXPECT_EQ(uf.size(), 5u);
    EXPECT_NE(uf.find(0), uf.find(1));
    uf.unite(0, 1);
    uf.unite(3, 4);
    EXPECT_EQ(uf.find(0), uf.find(1));
    EXPECT_EQ(uf.find(3), uf.find(4));
    EXPECT_NE(uf.find(0), uf.find(3));
    uf.unite(1, 3);
    EXPECT_EQ(uf.find(0), uf.find(4));
    uf.unite(0, 0); // self-union is a no-op
    EXPECT_EQ(uf.find(2), 2u);
}

TEST(Report, ComplexityRowReportsTvTc)
{
    ProgramModel m = listing1();
    ComplexityRow row = complexity(m);
    EXPECT_EQ(row.name, "listing1");
    EXPECT_EQ(row.totalVariables, 7u);
    EXPECT_EQ(row.totalClusters, 5u);
}

TEST(Report, PrintClustersMentionsEveryVariable)
{
    ProgramModel m = listing1();
    std::ostringstream os;
    printClusters(os, m, analyze(m));
    std::string s = os.str();
    for (const char* name :
         {"foo::arr", "vect_mult::input", "foo::val",
          "vect_mult::inout", "foo::scale", "vect_mult::ratio",
          "vect_mult::res"})
        EXPECT_NE(s.find(name), std::string::npos) << name;
}

} // namespace
