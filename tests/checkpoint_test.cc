/**
 * @file
 * Tests for search checkpoint/resume (CRAFT's searches are resumable):
 * a budget-truncated search exports its evaluation cache; a fresh
 * context restores it and finishes without re-executing anything.
 */

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "search/combinational.h"
#include "search/driver.h"
#include "search/fault.h"
#include "support/json.h"
#include "support/logging.h"

namespace {

using namespace hpcmixp::search;
using hpcmixp::support::FatalError;
using hpcmixp::support::json::Value;

/** Counts raw executions so resume behaviour is observable. */
class CountingProblem : public SearchProblem {
  public:
    explicit CountingProblem(std::size_t sites) : sites_(sites) {}

    std::size_t siteCount() const override { return sites_; }

    Evaluation
    evaluate(const Config& config) override
    {
        ++rawCalls_;
        Evaluation eval;
        eval.status = config.test(0) ? EvalStatus::QualityFail
                                     : EvalStatus::Pass;
        eval.qualityLoss = eval.passed() ? 0.0 : 1.0;
        eval.speedup =
            1.0 + 0.1 * static_cast<double>(config.count());
        eval.runtimeSeconds = 1.0;
        return eval;
    }

    // Atomic: batch evaluation calls evaluate() from pool workers.
    std::atomic<int> rawCalls_{0};

  private:
    std::size_t sites_;
};

/** Order-independent view of an exportCache() snapshot. */
std::vector<std::string>
canonicalCache(const Value& cache)
{
    std::vector<std::string> dumps;
    for (const auto& e : cache.at("evaluations").items())
        dumps.push_back(e.dump());
    std::sort(dumps.begin(), dumps.end());
    return dumps;
}

TEST(Checkpoint, ResumedSearchDoesNotReExecute)
{
    CountingProblem problem(4);

    // Phase 1: CB truncated after 5 executions.
    CombinationalSearch cb;
    SearchContext first(problem, {5, 0.0});
    EXPECT_THROW(cb.run(first), BudgetExhausted);
    EXPECT_EQ(first.evaluatedCount(), 5u);
    Value checkpoint = first.exportCache();
    int executedSoFar = problem.rawCalls_;

    // Phase 2: resume with a fresh budget.
    SearchContext second(problem, {100, 0.0});
    second.importCache(checkpoint);
    cb.run(second); // completes
    // Only the remaining 15 - 5 = 10 configs executed.
    EXPECT_EQ(second.evaluatedCount(), 10u);
    EXPECT_EQ(problem.rawCalls_, executedSoFar + 10);

    // The union of both phases covers the full space.
    EXPECT_EQ(first.evaluatedCount() + second.evaluatedCount(), 15u);
}

TEST(Checkpoint, RestoredBestSurvivesResume)
{
    CountingProblem problem(4);
    SearchContext first(problem, {100, 0.0});
    Config best = Config::withLowered(4, {1, 2, 3});
    first.evaluate(best);
    Value checkpoint = first.exportCache();

    SearchContext second(problem, {100, 0.0});
    second.importCache(checkpoint);
    ASSERT_TRUE(second.hasBest());
    EXPECT_EQ(second.bestConfig(), best);
    EXPECT_DOUBLE_EQ(second.bestEvaluation().speedup, 1.3);
}

TEST(Checkpoint, RoundTripsThroughJsonText)
{
    CountingProblem problem(3);
    SearchContext ctx(problem, {100, 0.0});
    ctx.evaluate(Config::withLowered(3, {1}));
    ctx.evaluate(Config::withLowered(3, {0, 1}));
    std::string text = ctx.exportCache().dump(2);

    SearchContext restored(problem, {100, 0.0});
    restored.importCache(hpcmixp::support::json::parse(text));
    EXPECT_TRUE(restored.isCached(Config::withLowered(3, {1})));
    EXPECT_TRUE(restored.isCached(Config::withLowered(3, {0, 1})));
    EXPECT_FALSE(restored.isCached(Config::withLowered(3, {2})));
}

TEST(Checkpoint, ValidatesSiteCountAndShape)
{
    CountingProblem problem(3);
    SearchContext ctx(problem, {100, 0.0});
    ctx.evaluate(Config::withLowered(3, {1}));
    Value checkpoint = ctx.exportCache();

    CountingProblem other(5);
    SearchContext mismatched(other, {100, 0.0});
    EXPECT_THROW(mismatched.importCache(checkpoint), FatalError);

    SearchContext fresh(problem, {100, 0.0});
    EXPECT_THROW(fresh.importCache(Value::array()), FatalError);
}

TEST(Checkpoint, PeriodicHookFiresEveryNExecutions)
{
    CountingProblem problem(4);
    SearchContext ctx(problem, {100, 0.0});
    std::vector<Value> snapshots;
    ctx.setCheckpointHook(
        2, [&](const Value& v) { snapshots.push_back(v); });

    for (std::size_t i = 0; i < 4; ++i)
        ctx.evaluate(Config::withLowered(4, {i}));
    ASSERT_EQ(snapshots.size(), 2u); // after executions 2 and 4
    EXPECT_EQ(snapshots.back().at("evaluations").items().size(), 4u);

    // A cache hit is not an execution and must not snapshot.
    ctx.evaluate(Config::withLowered(4, {0}));
    EXPECT_EQ(snapshots.size(), 2u);
}

TEST(Checkpoint, RunSearchResumesFromSnapshotWithCacheHits)
{
    // Phase 1: CB truncated after 5 executions, snapshotting every
    // execution — the last snapshot is the state at the kill point.
    CountingProblem problem(4);
    CombinationalSearch cb;
    Value lastSnapshot;
    SearchRunOptions phase1;
    phase1.checkpointEvery = 1;
    phase1.checkpointSink = [&](const Value& v) { lastSnapshot = v; };
    auto truncated = runSearch(problem, cb, {5, 0.0}, phase1);
    EXPECT_TRUE(truncated.timedOut);
    ASSERT_TRUE(lastSnapshot.isObject());

    // Phase 2: a fresh run restores the snapshot and finishes; the
    // restored evaluations surface as cache hits, not re-executions.
    SearchRunOptions phase2;
    phase2.initialCache = lastSnapshot;
    int executedBefore = problem.rawCalls_;
    auto resumed = runSearch(problem, cb, {100, 0.0}, phase2);
    EXPECT_FALSE(resumed.timedOut);
    EXPECT_EQ(resumed.evaluated, 10u); // 15 - 5 already cached
    EXPECT_EQ(problem.rawCalls_, executedBefore + 10);
    EXPECT_GE(resumed.cacheHits, 5u);

    // Same final answer as a never-interrupted search.
    CountingProblem fresh(4);
    auto oneShot = runSearch(fresh, cb, {100, 0.0});
    EXPECT_EQ(resumed.best, oneShot.best);
    EXPECT_DOUBLE_EQ(resumed.bestEvaluation.speedup,
                     oneShot.bestEvaluation.speedup);
}

TEST(Checkpoint, UnusableInitialCacheIsIgnoredNotFatal)
{
    CountingProblem problem(4);
    CombinationalSearch cb;
    SearchRunOptions run;
    run.initialCache = Value::array(); // not a checkpoint document
    auto result = runSearch(problem, cb, {100, 0.0}, run);
    EXPECT_FALSE(result.timedOut);
    EXPECT_EQ(result.evaluated, 15u); // started fresh
}

TEST(Checkpoint, NaNQualityLossSurvivesSerialization)
{
    /** Problem whose lowered config destroys the output. */
    class NaNProblem : public SearchProblem {
      public:
        std::size_t siteCount() const override { return 1; }
        Evaluation
        evaluate(const Config&) override
        {
            Evaluation eval;
            eval.status = EvalStatus::QualityFail;
            eval.qualityLoss =
                std::numeric_limits<double>::quiet_NaN();
            eval.speedup = 1.2;
            return eval;
        }
    };
    NaNProblem problem;
    SearchContext ctx(problem, {100, 0.0});
    ctx.evaluate(Config::allLowered(1));
    auto text = ctx.exportCache().dump();

    SearchContext restored(problem, {100, 0.0});
    restored.importCache(hpcmixp::support::json::parse(text));
    const auto& eval =
        restored.evaluate(Config::allLowered(1)); // cache hit
    EXPECT_TRUE(std::isnan(eval.qualityLoss));
    EXPECT_EQ(restored.evaluatedCount(), 0u);
}

/**
 * Ordered commit makes every checkpoint *prefix* deterministic, not
 * just the final state: the sequence of periodic snapshots a parallel
 * batch produces is identical to the serial one.
 */
TEST(Checkpoint, PeriodicSnapshotsMatchSerialUnderParallelBatches)
{
    auto snapshots = [](std::size_t jobs) {
        CountingProblem problem(4);
        SearchContext ctx(problem, {100, 0.0});
        ctx.setSearchJobs(jobs);
        std::vector<std::vector<std::string>> dumps;
        ctx.setCheckpointHook(2, [&](const Value& v) {
            dumps.push_back(canonicalCache(v));
        });
        std::vector<Config> batch;
        for (std::size_t i = 0; i < 4; ++i)
            batch.push_back(Config::withLowered(4, {i}));
        batch.push_back(Config::withLowered(4, {0})); // duplicate
        batch.push_back(Config::withLowered(4, {1, 2}));
        ctx.evaluateBatch(batch);
        return dumps;
    };
    auto serial = snapshots(1);
    auto parallel = snapshots(4);
    ASSERT_EQ(serial.size(), 2u); // snapshots after executions 2 and 4
    EXPECT_EQ(parallel, serial);
}

/**
 * Checkpoint JSON written by a faulty parallel campaign round-trips
 * identically to the serial campaign's: same entries (including the
 * quarantined runtime_fail ones), and importing the parallel snapshot
 * reproduces it bit-for-bit on re-export.
 */
TEST(Checkpoint, FaultyParallelCheckpointRoundTripsIdentically)
{
    using hpcmixp::search::FaultPlan;
    using hpcmixp::search::FaultyProblem;

    auto campaign = [](std::size_t jobs) {
        CountingProblem inner(4);
        FaultPlan plan;
        plan.crashRate = 0.5;
        plan.seed = 17;
        FaultyProblem faulty(inner, plan);
        CombinationalSearch cb;
        SearchRunOptions run;
        run.resilience.maxAttempts = 2;
        run.resilience.sleepBetweenRetries = false;
        run.searchJobs = jobs;
        Value cache;
        run.checkpointSink = [&cache](const Value& v) { cache = v; };
        runSearch(faulty, cb, {1000, 0.0}, run);
        return cache;
    };
    Value serial = campaign(1);
    Value parallel = campaign(4);
    EXPECT_EQ(canonicalCache(parallel), canonicalCache(serial));

    // The stress run did quarantine something, so the equality above
    // covers failure entries, not just clean ones.
    std::size_t runtimeFails = 0;
    for (const auto& e : parallel.at("evaluations").items())
        if (e.at("status").asString() == "runtime_fail")
            ++runtimeFails;
    EXPECT_GT(runtimeFails, 0u);

    CountingProblem fresh(4);
    SearchContext restored(fresh, {1000, 0.0});
    restored.importCache(parallel);
    EXPECT_EQ(canonicalCache(restored.exportCache()),
              canonicalCache(parallel));
}

} // namespace
