#include "core/tuner.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>

#include "runtime/workspace.h"
#include "search/genetic.h"
#include "support/logging.h"
#include "support/memo_log.h"
#include "support/shm_arena.h"
#include "support/timer.h"
#include "support/worker_pool.h"
#include "typeforge/lint.h"
#include "verify/metrics.h"

namespace hpcmixp::core {

using benchmarks::PrecisionMap;
using search::Config;
using search::EvalStatus;
using search::Evaluation;
using search::StructureNode;

/** Cluster-granularity problem: one site per Typeforge cluster. */
class BenchmarkTuner::ClusterProblem final : public search::SearchProblem {
  public:
    explicit ClusterProblem(BenchmarkTuner& tuner) : tuner_(tuner) {}

    std::size_t siteCount() const override
    {
        return tuner_.clusterCount();
    }

    std::size_t maxLevel() const override
    {
        return tuner_.options_.ladder.maxLevel();
    }

    Evaluation
    evaluate(const Config& config) override
    {
        return tuner_.evaluateClusterConfig(config,
                                            tuner_.options_.searchReps);
    }

  private:
    BenchmarkTuner& tuner_;
};

/**
 * Variable-granularity problem: one site per Real variable. Splitting
 * a cluster is a compile failure (Typeforge would refuse to emit the
 * transformed source), which costs search effort but never runs.
 */
class BenchmarkTuner::VariableProblem final
    : public search::SearchProblem {
  public:
    explicit VariableProblem(BenchmarkTuner& tuner) : tuner_(tuner) {}

    std::size_t siteCount() const override
    {
        return tuner_.variableCount();
    }

    std::size_t maxLevel() const override
    {
        return tuner_.options_.ladder.maxLevel();
    }

    Evaluation
    evaluate(const Config& config) override
    {
        // Compile check: every cluster must be uniformly typed — under
        // a ladder, uniform in *level*, not merely lowered-or-not.
        const auto& clusters = tuner_.clusters_;
        for (std::size_t c = 0; c < clusters.clusterCount(); ++c) {
            const auto& members = clusters.members(c);
            std::uint8_t first =
                tuner_.varLevel(config, members.front());
            for (model::VarId v : members) {
                if (tuner_.varLevel(config, v) != first) {
                    Evaluation eval;
                    eval.status = EvalStatus::CompileFail;
                    return eval;
                }
            }
        }
        return tuner_.evaluateClusterConfig(
            tuner_.toClusterConfig(config), tuner_.options_.searchReps);
    }

    const StructureNode* structure() const override
    {
        return &tuner_.structure_;
    }

  private:
    BenchmarkTuner& tuner_;
};

namespace {

/** Position of @p var within the ascending real-variable site list. */
std::size_t
siteIndexOf(const std::vector<model::VarId>& variables, model::VarId var)
{
    auto it = std::lower_bound(variables.begin(), variables.end(), var);
    HPCMIXP_ASSERT(it != variables.end() && *it == var,
                   "variable is not a search site");
    return static_cast<std::size_t>(it - variables.begin());
}

/**
 * Reusable per-thread execution arena. One workspace per evaluation
 * thread keeps executes allocation-free across reps and configurations
 * while composing with --search-jobs (each worker thread gets its own
 * arena, so concurrent evaluations never share scratch buffers).
 */
runtime::RunWorkspace&
evalWorkspace()
{
    thread_local runtime::RunWorkspace workspace;
    return workspace;
}

/**
 * Fixed-size result record a sandboxed child commits to the arena.
 * POD only: it crosses the process boundary as raw bytes. The child
 * ships the fused ErrorStats so the parent can re-derive the verdict
 * without the output vector; for custom (non-fusible) metrics the
 * child's own verdict fields are authoritative.
 */
struct SandboxPayload {
    double runtimeSeconds = 0.0;   ///< trimmed mean over timed reps
    double childWallSeconds = 0.0; ///< child-side wall clock
    std::uint32_t passed = 0;
    std::uint32_t pad = 0;
    double loss = 0.0;
    double rawValue = 0.0;
    verify::ErrorStats stats;
};

/**
 * Fixed header of a pool job record: [PoolJobHeader][config chars].
 * The configuration crosses as its digit-per-site toString() image —
 * the same canonical key the memo layer uses — so the wire format is
 * independent of Config's in-memory layout.
 */
struct PoolJobHeader {
    std::uint32_t reps = 0;
    std::uint32_t rawFault = 0;  ///< search::RawFault drawn in the parent
    std::uint32_t keyLength = 0; ///< config chars following the header
    std::uint32_t pad = 0;
};

} // namespace

bool
BenchmarkTuner::isVarLowered(const Config& varCfg, model::VarId var) const
{
    return varCfg.test(siteIndexOf(variables_, var));
}

std::uint8_t
BenchmarkTuner::varLevel(const Config& varCfg, model::VarId var) const
{
    return varCfg.level(siteIndexOf(variables_, var));
}

bool
BenchmarkTuner::useRefinement(const Config& cfg) const
{
    // The baseline must stay a plain execute: it anchors the reference
    // output and every speedup ratio. Benchmarks without a residual
    // hook simply never refine.
    return options_.refine && !cfg.isBaseline() &&
           benchmark_.supportsRefinement();
}

benchmarks::RunOutput
BenchmarkTuner::executeForConfig(const benchmarks::RunPlan& plan,
                                 runtime::RunWorkspace& ws,
                                 bool refined) const
{
    if (refined) {
        benchmarks::RefineControl control;
        // Drive the residual comfortably below the quality threshold;
        // the floor keeps well-conditioned problems at (near) the
        // reference answer.
        control.targetResidual =
            std::min(control.targetResidual,
                     comparator_.threshold() * 1e-2);
        return benchmark_.executeRefined(plan, ws, control);
    }
    return benchmark_.execute(plan, ws);
}

BenchmarkTuner::BenchmarkTuner(const benchmarks::Benchmark& benchmark,
                               TunerOptions options)
    : benchmark_(benchmark),
      options_(std::move(options)),
      clusters_(typeforge::analyze(benchmark.programModel())),
      variables_(benchmark.programModel().realVariables()),
      comparator_(options_.metric.empty() ? benchmark.qualityMetric()
                                          : options_.metric,
                  options_.threshold)
{
    // Sandbox configuration sanity, checked before any evaluation
    // runs: raw fault injection is only survivable in forked children
    // (FaultyProblem re-checks via the sandboxed flag), and a raw hang
    // spins forever unless a deadline arms the parent's SIGKILL.
    options_.faultPlan.sandboxed =
        options_.isolation == support::IsolationMode::Fork ||
        options_.isolation == support::IsolationMode::Pool;
    if (options_.faultPlan.rawHangRate > 0.0 &&
        options_.resilience.deadlineSeconds <= 0.0)
        support::fatal(
            "raw hang injection (--fault-raw-hang-rate) spins until "
            "the parent kills it; it requires a positive --deadline");

    // Each bind key must live in exactly one cluster, otherwise the
    // cluster -> knob mapping would be ambiguous.
    std::map<std::string, std::size_t> keyCluster;
    const auto& program = benchmark_.programModel();
    for (model::VarId v : variables_) {
        const auto& var = program.variable(v);
        if (var.bindKey.empty())
            continue;
        std::size_t c = clusters_.clusterOf(v);
        auto [it, inserted] = keyCluster.emplace(var.bindKey, c);
        HPCMIXP_ASSERT(inserted || it->second == c,
                       support::strCat("bind key '", var.bindKey,
                                       "' spans multiple clusters in ",
                                       benchmark_.name()));
    }

    buildStructure();
    runBaseline();
    clusterProblem_ = std::make_unique<ClusterProblem>(*this);
    variableProblem_ = std::make_unique<VariableProblem>(*this);
    if (options_.faultPlan.enabled()) {
        faultyCluster_ = std::make_unique<search::FaultyProblem>(
            *clusterProblem_, options_.faultPlan);
        faultyVariable_ = std::make_unique<search::FaultyProblem>(
            *variableProblem_, options_.faultPlan);
    }

    // Pre-fork the sandbox workers now, after runBaseline(): every
    // worker inherits the reference output and the benchmark's warmed
    // CachedInput through the fork, and the per-campaign fd budget
    // (rings + doorbells) is paid once here — the count stays constant
    // through the whole campaign, respawns included.
    if (options_.isolation == support::IsolationMode::Pool) {
        std::size_t workers =
            options_.poolWorkers > 0
                ? options_.poolWorkers
                : std::max<std::size_t>(options_.searchJobs, 1);
        workerPool_ = std::make_unique<support::WorkerPool>(
            workers, sizeof(PoolJobHeader) + clusterCount(),
            sizeof(SandboxPayload),
            [this](const void* job, std::size_t jobSize, void* result,
                   std::size_t resultCapacity) {
                return poolChildRun(job, jobSize, result,
                                    resultCapacity);
            });
    }
}

BenchmarkTuner::~BenchmarkTuner() = default;

void
BenchmarkTuner::buildStructure()
{
    const auto& program = benchmark_.programModel();
    structure_ = StructureNode{};
    structure_.name = program.name();

    auto leafFor = [&](model::VarId v) {
        StructureNode leaf;
        leaf.name = program.variable(v).name;
        leaf.sites = {siteIndexOf(variables_, v)};
        return leaf;
    };

    for (const auto& mod : program.modules()) {
        StructureNode modNode;
        modNode.name = mod.name;
        for (model::VarId g : mod.globals) {
            if (program.variable(g).type.base != model::BaseType::Real)
                continue;
            modNode.children.push_back(leafFor(g));
            modNode.sites.push_back(siteIndexOf(variables_, g));
        }
        for (model::FunctionId f : mod.functions) {
            const auto& fn = program.function(f);
            StructureNode fnNode;
            fnNode.name = fn.name;
            for (model::VarId v : fn.variables) {
                if (program.variable(v).type.base !=
                    model::BaseType::Real)
                    continue;
                fnNode.children.push_back(leafFor(v));
                fnNode.sites.push_back(siteIndexOf(variables_, v));
            }
            if (fnNode.sites.empty())
                continue;
            modNode.sites.insert(modNode.sites.end(),
                                 fnNode.sites.begin(),
                                 fnNode.sites.end());
            modNode.children.push_back(std::move(fnNode));
        }
        if (modNode.sites.empty())
            continue;
        structure_.sites.insert(structure_.sites.end(),
                                modNode.sites.begin(),
                                modNode.sites.end());
        structure_.children.push_back(std::move(modNode));
    }
}

void
BenchmarkTuner::runBaseline()
{
    PrecisionMap allDouble;
    allDouble.setOwner(benchmark_.name());
    benchmarks::RunPlan plan = benchmark_.prepare(allDouble);
    runtime::RunWorkspace& ws = evalWorkspace();
    // The baseline anchors every speedup ratio, so it is always
    // measured with the full final-measurement protocol. The reference
    // output comes from the first timed rep: every rep produces the
    // same values, so no extra untimed run is needed.
    std::size_t reps = std::max<std::size_t>(
        std::max(options_.searchReps, options_.finalReps), 1);
    std::vector<double> samples;
    samples.reserve(reps);
    for (std::size_t i = 0; i < reps; ++i) {
        support::WallTimer timer;
        benchmarks::RunOutput output = benchmark_.execute(plan, ws);
        samples.push_back(timer.seconds());
        if (i == 0)
            reference_ = std::move(output.values);
    }
    if (reference_.empty())
        support::fatal(support::strCat("benchmark ", benchmark_.name(),
                                       " produced no output"));
    baselineSeconds_ = support::trimmedMean(std::move(samples));
}

PrecisionMap
BenchmarkTuner::precisionMapFor(const Config& clusterCfg) const
{
    HPCMIXP_ASSERT(clusterCfg.size() == clusterCount(),
                   "cluster config size mismatch");
    PrecisionMap pm;
    pm.setOwner(benchmark_.name());
    const auto& program = benchmark_.programModel();
    for (std::size_t c = 0; c < clusterCount(); ++c) {
        std::uint8_t level = clusterCfg.level(c);
        if (level == 0)
            continue;
        // Level L binds the cluster to rung L of the campaign ladder
        // (level 1 on the default ladder is Float32, as of old).
        runtime::Precision p = options_.ladder.at(level);
        for (model::VarId v : clusters_.members(c)) {
            const auto& var = program.variable(v);
            if (!var.bindKey.empty())
                pm.set(var.bindKey, p);
        }
    }
    return pm;
}

Config
BenchmarkTuner::toClusterConfig(const Config& varCfg) const
{
    Config out(clusterCount());
    for (std::size_t c = 0; c < clusterCount(); ++c)
        out.setLevel(c, varLevel(varCfg, clusters_.members(c).front()));
    return out;
}

Evaluation
BenchmarkTuner::evaluateClusterConfig(const Config& cfg,
                                      std::size_t reps)
{
    if (options_.isolation == support::IsolationMode::Fork)
        return evaluateSandboxed(cfg, reps);
    if (options_.isolation == support::IsolationMode::Pool)
        return evaluatePooled(cfg, reps);

    Evaluation eval;
    PrecisionMap pm = precisionMapFor(cfg);

    // Prepare once per configuration: precision resolution and input
    // conversion happen here, outside the timed region. Each timed rep
    // is a pure execute against the per-thread workspace arena, and the
    // verification output is taken from the first timed rep instead of
    // a separate untimed run.
    benchmarks::RunOutput output;
    std::vector<double> samples;
    // Timed region includes the refinement sweeps: recovery is only a
    // win when the corrected run is still faster than the baseline. A
    // diverging refinement throws RefineDiverged, landing in the catch
    // below as an ordinary RuntimeFail (never a hang — the iteration
    // count is bounded).
    const bool refined = useRefinement(cfg);
    try {
        benchmarks::RunPlan plan = benchmark_.prepare(pm);
        runtime::RunWorkspace& ws = evalWorkspace();
        std::size_t timedReps = std::max<std::size_t>(reps, 1);
        samples.reserve(timedReps);
        for (std::size_t i = 0; i < timedReps; ++i) {
            support::WallTimer timer;
            benchmarks::RunOutput repOutput =
                executeForConfig(plan, ws, refined);
            samples.push_back(timer.seconds());
            if (i == 0)
                output = std::move(repOutput);
        }
    } catch (const std::exception&) {
        eval.status = EvalStatus::RuntimeFail;
        eval.qualityLoss = std::numeric_limits<double>::quiet_NaN();
        return eval;
    }

    verify::Verdict verdict =
        comparator_.verify(reference_, output.values);
    eval.runtimeSeconds = support::trimmedMean(std::move(samples));
    eval.speedup = baselineSeconds_ / eval.runtimeSeconds;
    eval.qualityLoss = verdict.loss;
    eval.status =
        verdict.passed ? EvalStatus::Pass : EvalStatus::QualityFail;
    return eval;
}

/**
 * One evaluation attempt in a forked, crash-contained child.
 *
 * prepare() stays in the parent: input conversion is cached per
 * process (CachedInput), and the child inherits the prepared RunPlan
 * through copy-on-write for free — forking before prepare() would
 * re-convert inputs in every child and throw the work away with it.
 * The child only executes, verifies against the inherited reference,
 * and commits a fixed-size payload to the shared arena; the parent
 * reaps, classifies the exit, and maps everything that is not a clean
 * committed result to RuntimeFail for the ordinary retry/quarantine
 * machinery (DESIGN.md §13).
 */
Evaluation
BenchmarkTuner::evaluateSandboxed(const Config& cfg, std::size_t reps)
{
    // A raw fault drawn by FaultyProblem on this thread detonates
    // inside the child, never in the parent.
    const search::RawFault rawFault = search::takePendingRawFault();

    Evaluation eval;
    eval.status = EvalStatus::RuntimeFail;
    eval.qualityLoss = std::numeric_limits<double>::quiet_NaN();
    eval.memoizable = false;

    if (crashCutoffTripped())
        return eval;

    support::ShmArena arena(sizeof(SandboxPayload));
    support::ChildOutcome child;
    const bool refined = useRefinement(cfg);
    try {
        PrecisionMap pm = precisionMapFor(cfg);
        benchmarks::RunPlan plan = benchmark_.prepare(pm);
        child = support::runInFork(
            [&] {
                search::executeRawFault(rawFault);
                runtime::RunWorkspace ws; // child-private arena
                support::WallTimer childTimer;
                benchmarks::RunOutput output;
                std::size_t timedReps = std::max<std::size_t>(reps, 1);
                std::vector<double> samples;
                samples.reserve(timedReps);
                for (std::size_t i = 0; i < timedReps; ++i) {
                    support::WallTimer timer;
                    // RefineDiverged thrown here is contained by the
                    // fork trampoline (kChildBodyThrew) and classified
                    // exactly like the in-process RuntimeFail.
                    benchmarks::RunOutput repOutput =
                        executeForConfig(plan, ws, refined);
                    samples.push_back(timer.seconds());
                    if (i == 0)
                        output = std::move(repOutput);
                }
                SandboxPayload payload;
                payload.runtimeSeconds =
                    support::trimmedMean(std::move(samples));
                payload.stats = verify::computeErrorStats(
                    reference_, output.values);
                verify::Verdict verdict =
                    comparator_.fusible()
                        ? comparator_.verifyStats(payload.stats)
                        : comparator_.verify(reference_, output.values);
                payload.passed = verdict.passed ? 1 : 0;
                payload.loss = verdict.loss;
                payload.rawValue = verdict.rawValue;
                payload.childWallSeconds = childTimer.seconds();
                arena.commit(&payload, sizeof payload);
            },
            options_.resilience.deadlineSeconds);
    } catch (const std::exception&) {
        // prepare() failed in the parent — same classification the
        // in-process path gives it, and nothing was forked.
        eval.memoizable = true;
        return eval;
    }

    SandboxPayload payload;
    const bool arenaValid = child.exit == support::ChildExit::Clean &&
                            arena.read(&payload, sizeof payload);
    {
        std::lock_guard<std::mutex> lock(sandboxMutex_);
        ++sandbox_.forks;
        switch (child.exit) {
          case support::ChildExit::Clean:
            if (arenaValid) {
                ++sandbox_.cleanExits;
                spawnOverheadSum_ += std::max(
                    0.0, child.wallSeconds - payload.childWallSeconds);
            } else {
                // Exited 0 without a checksum-valid committed payload:
                // died mid-write or never committed. Untrustworthy.
                ++sandbox_.arenaCorrupt;
            }
            break;
          case support::ChildExit::NonZeroExit:
            ++sandbox_.nonZeroExits;
            break;
          case support::ChildExit::Signaled:
            ++sandbox_.signaled;
            break;
          case support::ChildExit::KilledOnDeadline:
            ++sandbox_.killedOnDeadline;
            break;
          case support::ChildExit::SpawnFailed:
            ++sandbox_.spawnFailed;
            break;
        }
    }

    if (child.exit == support::ChildExit::KilledOnDeadline) {
        // Report the kill so the resilience layer counts exactly one
        // deadline miss — identical to a simulated straggler.
        eval.deadlineMiss = true;
        return eval;
    }
    if (child.exit == support::ChildExit::NonZeroExit &&
        child.detail == support::kChildBodyThrew) {
        // The child ran and threw a C++ exception the fork trampoline
        // contained — the exact failure the in-process path catches
        // and publishes, so keep it memoizable for trajectory (and
        // memo-content) identity across isolation modes.
        eval.memoizable = true;
        return eval;
    }
    if (!arenaValid)
        return eval; // crashed / signaled / corrupt: quarantine fodder

    eval.memoizable = true;
    eval.runtimeSeconds = payload.runtimeSeconds;
    eval.speedup = baselineSeconds_ / payload.runtimeSeconds;
    eval.qualityLoss = payload.loss;
    eval.status = payload.passed != 0 ? EvalStatus::Pass
                                      : EvalStatus::QualityFail;
    return eval;
}

/**
 * Crash-loop cutoff shared by both sandboxed paths. Returns true (and
 * marks one fast-fail) once crashed children reach the configured cap;
 * the caller then publishes its pre-initialized fast-fail RuntimeFail.
 */
bool
BenchmarkTuner::crashCutoffTripped()
{
    if (options_.isolationMaxCrashes == 0)
        return false;
    std::lock_guard<std::mutex> lock(sandboxMutex_);
    if (sandbox_.crashedChildren() < options_.isolationMaxCrashes)
        return false;
    ++sandbox_.fastFailed;
    if (!crashLoopWarned_) {
        crashLoopWarned_ = true;
        support::warn(support::strCat(
            benchmark_.name(), ": ", sandbox_.crashedChildren(),
            " crashed children reached --isolation-max-crashes; "
            "failing further sandboxed attempts without forking"));
    }
    return true;
}

/**
 * Pool-worker job handler: runs inside a pre-forked worker child.
 *
 * Unlike the per-attempt fork path, prepare() must happen here, in the
 * worker — the workers forked at construction time and copy-on-write
 * only shares pages that existed then, so a RunPlan prepared later in
 * the parent would be invisible. The cost amortizes the same way it
 * does in the parent: CachedInput and the thread_local workspace stay
 * warm inside the long-lived worker across every job it serves.
 *
 * Exceptions (prepare failures, RefineDiverged) propagate out into the
 * WorkerPool trampoline, which reports kChildBodyThrew — the same
 * classification the fork path produces for a throwing child.
 */
std::size_t
BenchmarkTuner::poolChildRun(const void* job, std::size_t jobSize,
                             void* result, std::size_t resultCapacity)
{
    HPCMIXP_ASSERT(resultCapacity >= sizeof(SandboxPayload),
                   "pool result ring smaller than the payload");
    PoolJobHeader header;
    HPCMIXP_ASSERT(jobSize >= sizeof header, "torn pool job header");
    std::memcpy(&header, job, sizeof header);
    HPCMIXP_ASSERT(jobSize == sizeof header + header.keyLength,
                   "pool job length mismatch");
    const std::string key(
        static_cast<const char*>(job) + sizeof header, header.keyLength);

    support::WallTimer childTimer;
    search::executeRawFault(
        static_cast<search::RawFault>(header.rawFault));

    const Config cfg = Config::fromString(key);
    const bool refined = useRefinement(cfg);
    PrecisionMap pm = precisionMapFor(cfg);
    benchmarks::RunPlan plan = benchmark_.prepare(pm);
    runtime::RunWorkspace& ws = evalWorkspace();

    benchmarks::RunOutput output;
    std::size_t timedReps = std::max<std::size_t>(header.reps, 1);
    std::vector<double> samples;
    samples.reserve(timedReps);
    for (std::size_t i = 0; i < timedReps; ++i) {
        support::WallTimer timer;
        benchmarks::RunOutput repOutput =
            executeForConfig(plan, ws, refined);
        samples.push_back(timer.seconds());
        if (i == 0)
            output = std::move(repOutput);
    }

    SandboxPayload payload;
    payload.runtimeSeconds = support::trimmedMean(std::move(samples));
    payload.stats =
        verify::computeErrorStats(reference_, output.values);
    verify::Verdict verdict =
        comparator_.fusible()
            ? comparator_.verifyStats(payload.stats)
            : comparator_.verify(reference_, output.values);
    payload.passed = verdict.passed ? 1 : 0;
    payload.loss = verdict.loss;
    payload.rawValue = verdict.rawValue;
    payload.childWallSeconds = childTimer.seconds();
    std::memcpy(result, &payload, sizeof payload);
    return sizeof payload;
}

/**
 * One evaluation attempt dispatched to a persistent pool worker.
 *
 * Mirrors evaluateSandboxed() classification for classification —
 * clean-with-payload, thrown-and-contained, crashed, killed on
 * deadline, spawn-starved — so a campaign under --isolation=pool
 * publishes the same evaluations (and memo entries) the fork path
 * would, while paying a ring write instead of a fork per attempt
 * (DESIGN.md §15).
 */
Evaluation
BenchmarkTuner::evaluatePooled(const Config& cfg, std::size_t reps)
{
    const search::RawFault rawFault = search::takePendingRawFault();

    Evaluation eval;
    eval.status = EvalStatus::RuntimeFail;
    eval.qualityLoss = std::numeric_limits<double>::quiet_NaN();
    eval.memoizable = false;

    if (crashCutoffTripped())
        return eval;

    const std::string key = cfg.toString();
    PoolJobHeader header;
    header.reps = static_cast<std::uint32_t>(reps);
    header.rawFault = static_cast<std::uint32_t>(rawFault);
    header.keyLength = static_cast<std::uint32_t>(key.size());
    std::vector<unsigned char> job(sizeof header + key.size());
    std::memcpy(job.data(), &header, sizeof header);
    std::memcpy(job.data() + sizeof header, key.data(), key.size());

    SandboxPayload payload;
    support::PoolOutcome outcome = workerPool_->run(
        job.data(), job.size(), &payload, sizeof payload,
        options_.resilience.deadlineSeconds);

    {
        std::lock_guard<std::mutex> lock(sandboxMutex_);
        switch (outcome.exit) {
          case support::ChildExit::Clean:
            if (outcome.resultValid) {
                ++sandbox_.cleanExits;
                spawnOverheadSum_ += std::max(
                    0.0,
                    outcome.wallSeconds - payload.childWallSeconds);
            } else {
                // Worker answered but the result record is torn:
                // untrustworthy, same as a corrupt fork arena.
                ++sandbox_.arenaCorrupt;
            }
            break;
          case support::ChildExit::NonZeroExit:
            ++sandbox_.nonZeroExits;
            break;
          case support::ChildExit::Signaled:
            ++sandbox_.signaled;
            break;
          case support::ChildExit::KilledOnDeadline:
            ++sandbox_.killedOnDeadline;
            break;
          case support::ChildExit::SpawnFailed:
            ++sandbox_.spawnFailed;
            break;
        }
    }

    if (outcome.exit == support::ChildExit::KilledOnDeadline) {
        eval.deadlineMiss = true;
        return eval;
    }
    if (outcome.exit == support::ChildExit::NonZeroExit &&
        outcome.detail == support::kChildBodyThrew) {
        // The handler threw and the worker trampoline contained it —
        // the worker itself lives on. Memoizable for trajectory and
        // memo-content identity with fork and in-process evaluation.
        eval.memoizable = true;
        return eval;
    }
    if (outcome.exit != support::ChildExit::Clean ||
        !outcome.resultValid)
        return eval; // crashed / signaled / torn: quarantine fodder

    eval.memoizable = true;
    eval.runtimeSeconds = payload.runtimeSeconds;
    eval.speedup = baselineSeconds_ / payload.runtimeSeconds;
    eval.qualityLoss = payload.loss;
    eval.status = payload.passed != 0 ? EvalStatus::Pass
                                      : EvalStatus::QualityFail;
    return eval;
}

std::vector<pid_t>
BenchmarkTuner::poolWorkerPids() const
{
    return workerPool_ ? workerPool_->workerPids()
                       : std::vector<pid_t>{};
}

SandboxStats
BenchmarkTuner::sandboxStats() const
{
    std::lock_guard<std::mutex> lock(sandboxMutex_);
    SandboxStats stats = sandbox_;
    stats.spawnOverheadMeanSeconds =
        stats.cleanExits > 0
            ? spawnOverheadSum_ / static_cast<double>(stats.cleanExits)
            : 0.0;
    if (workerPool_) {
        // Pool-mode bookkeeping lives in the pool itself; fold it in
        // so `forks` keeps meaning "fork() calls" across modes.
        support::WorkerPoolStats pool = workerPool_->stats();
        stats.forks = pool.forks;
        stats.poolDispatches = pool.dispatched;
        stats.workerRespawns = pool.respawns;
    }
    return stats;
}

Evaluation
BenchmarkTuner::finalMeasure(const Config& cfg)
{
    Evaluation eval;
    PrecisionMap pm = precisionMapFor(cfg);
    PrecisionMap allDouble;
    allDouble.setOwner(benchmark_.name());

    // Both versions are prepared once and interleaved as pure executes;
    // the verification output comes from the first timed tuned rep.
    benchmarks::RunOutput output;
    std::size_t reps = std::max<std::size_t>(options_.finalReps, 1);
    std::vector<double> baseSamples;
    std::vector<double> cfgSamples;
    const bool refined = useRefinement(cfg);
    try {
        benchmarks::RunPlan cfgPlan = benchmark_.prepare(pm);
        benchmarks::RunPlan basePlan = benchmark_.prepare(allDouble);
        runtime::RunWorkspace& ws = evalWorkspace();
        baseSamples.reserve(reps);
        cfgSamples.reserve(reps);
        for (std::size_t i = 0; i < reps; ++i) {
            support::WallTimer timer;
            (void)benchmark_.execute(basePlan, ws);
            baseSamples.push_back(timer.seconds());
            timer.reset();
            benchmarks::RunOutput repOutput =
                executeForConfig(cfgPlan, ws, refined);
            cfgSamples.push_back(timer.seconds());
            if (i == 0)
                output = std::move(repOutput);
        }
    } catch (const std::exception&) {
        eval.status = EvalStatus::RuntimeFail;
        eval.qualityLoss = std::numeric_limits<double>::quiet_NaN();
        return eval;
    }
    verify::Verdict verdict =
        comparator_.verify(reference_, output.values);

    double baseMean = support::trimmedMean(baseSamples);
    double cfgMean = support::trimmedMean(cfgSamples);

    eval.runtimeSeconds = cfgMean;
    eval.speedup = baseMean / cfgMean;
    eval.qualityLoss = verdict.loss;
    eval.status =
        verdict.passed ? EvalStatus::Pass : EvalStatus::QualityFail;
    return eval;
}

search::StaticPrior
BenchmarkTuner::staticPrior(search::Granularity granularity) const
{
    if (options_.staticPrior == search::PriorMode::Off)
        return {};

    // Lint under the campaign's own ladder and quality threshold so
    // the certified caps speak about the rungs this search will
    // actually propose.
    typeforge::AbsintOptions absOptions;
    absOptions.ladder = options_.ladder;
    absOptions.threshold = options_.threshold;
    typeforge::SensitivityReport report = typeforge::lint(
        benchmark_.programModel(), clusters_, absOptions);

    // Per-cluster verdicts, indexed by cluster.
    std::vector<typeforge::Sensitivity> verdict(
        clusterCount(), typeforge::Sensitivity::Unknown);
    std::vector<int> clusterScore(clusterCount(), 0);
    std::vector<std::uint8_t> certifiedCap(clusterCount(),
                                           typeforge::kNoCap);
    for (const auto& cv : report.clusters) {
        verdict[cv.cluster] = cv.sensitivity;
        clusterScore[cv.cluster] = cv.score;
        certifiedCap[cv.cluster] = cv.certifiedCap;
    }

    bool variableLevel = granularity == search::Granularity::Variable;
    std::size_t sites = variableLevel ? variableCount() : clusterCount();
    std::vector<std::uint8_t> caps(sites, 0);
    std::vector<bool> narrow(sites, false);
    std::vector<int> scores(sites, 0);
    for (std::size_t i = 0; i < sites; ++i) {
        // A variable site inherits the verdict of its cluster: pinning
        // (or narrowing) part of a cluster would split it, which the
        // variable-level problem rejects as a compile failure anyway.
        // Each verdict maps to a per-rung floor: KeepDouble pins the
        // site (cap 0), Unknown allows float but nothing deeper
        // (cap 1), SafeToNarrow may take any rung. On the default
        // two-rung ladder caps 1 and unbounded are indistinguishable,
        // which is exactly the historical pinned/free split.
        std::size_t c =
            variableLevel ? clusters_.clusterOf(variables_[i]) : i;
        switch (verdict[c]) {
        case typeforge::Sensitivity::KeepDouble:
            caps[i] = 0;
            break;
        case typeforge::Sensitivity::SafeToNarrow:
            caps[i] = search::StaticPrior::kUnbounded;
            narrow[i] = true;
            break;
        default:
            caps[i] = 1;
            break;
        }
        // Certified absint caps only tighten: a rung with a proof of
        // overflow or budget blowout is excluded even for a cluster
        // the heuristics called safe; they never deepen a heuristic
        // floor, so the search space shrinks or stays put.
        if (options_.certifiedCaps)
            caps[i] = std::min(caps[i], certifiedCap[c]);
        scores[i] = clusterScore[c];
    }
    return search::StaticPrior::withCaps(
        options_.staticPrior, std::move(caps), std::move(narrow),
        std::move(scores));
}

search::SearchProblem&
BenchmarkTuner::clusterProblem()
{
    return *clusterProblem_;
}

search::SearchProblem&
BenchmarkTuner::variableProblem()
{
    return *variableProblem_;
}

search::SearchProblem&
BenchmarkTuner::searchClusterProblem()
{
    if (faultyCluster_)
        return *faultyCluster_;
    return *clusterProblem_;
}

search::SearchProblem&
BenchmarkTuner::searchVariableProblem()
{
    if (faultyVariable_)
        return *faultyVariable_;
    return *variableProblem_;
}

search::SearchRunOptions
searchRunOptions(const TunerOptions& options)
{
    search::SearchRunOptions run;
    run.resilience = options.resilience;
    run.checkpointEvery = options.checkpointEvery;
    run.checkpointSink = options.checkpointSink;
    run.initialCache = options.initialCache;
    run.searchJobs = options.searchJobs;
    return run;
}

search::MemoFingerprint
BenchmarkTuner::fingerprint(search::Granularity granularity) const
{
    search::MemoFingerprint fp;
    fp.benchmark = benchmark_.name();
    // The benchmark's inputs are seeded and deterministic, so the
    // reference output identifies them: any input change shows up in
    // the baseline values and retires every stale memo entry.
    fp.inputSignature = support::fnv1a64(
        reference_.data(), reference_.size() * sizeof(double));
    fp.metric = comparator_.metric().name();
    fp.threshold = comparator_.threshold();
    fp.sites = granularity == search::Granularity::Variable
                   ? variableCount()
                   : clusterCount();
    // The ladder decides what a level digit *means*, and refinement
    // changes what an evaluation measures; either difference makes
    // cached entries incomparable. The default ladder without
    // refinement renders as "f64:f32" — the historical fingerprint —
    // so pre-ladder checkpoints and memo segments stay loadable.
    fp.ladder = options_.ladder.describe();
    if (options_.refine)
        fp.ladder += "+ir";
    return fp;
}

search::SearchRunOptions
BenchmarkTuner::runOptionsFor(search::Granularity granularity)
{
    search::SearchRunOptions run = searchRunOptions(options_);
    run.prior = staticPrior(granularity);
    run.fingerprint = fingerprint(granularity);
    if (options_.memoStore)
        run.memo = options_.memoStore->table(run.fingerprint);
    return run;
}

TuneOutcome
BenchmarkTuner::tune(const std::string& strategyCode)
{
    auto strategy =
        search::StrategyRegistry::instance().create(strategyCode);
    return tune(*strategy);
}

TuneOutcome
BenchmarkTuner::tune(search::SearchStrategy& strategy)
{
    bool variableLevel =
        strategy.granularity() == search::Granularity::Variable;
    search::SearchProblem& problem = variableLevel
                                         ? searchVariableProblem()
                                         : searchClusterProblem();

    search::SearchRunOptions run = runOptionsFor(strategy.granularity());

    TuneOutcome outcome;
    outcome.search = search::runSearch(problem, strategy,
                                       options_.budget, run);

    outcome.clusterConfig =
        variableLevel ? toClusterConfig(outcome.search.best)
                      : outcome.search.best;

    if (outcome.search.foundImprovement) {
        Evaluation final = finalMeasure(outcome.clusterConfig);
        outcome.finalSpeedup = final.speedup;
        outcome.finalQualityLoss = final.qualityLoss;
    } else {
        outcome.finalSpeedup = 1.0;
        outcome.finalQualityLoss = 0.0;
    }
    return outcome;
}

PortfolioOutcome
BenchmarkTuner::tunePortfolio(
    const std::vector<std::string>& strategyCodes,
    search::PortfolioMode mode, std::size_t workers)
{
    std::vector<std::string> codes = strategyCodes;
    if (codes.empty())
        codes = search::StrategyRegistry::instance().codes();
    HPCMIXP_ASSERT(!codes.empty(), "portfolio with no strategies");

    std::vector<search::PortfolioEntrant> entrants;
    entrants.reserve(codes.size());
    for (const std::string& code : codes) {
        search::PortfolioEntrant entrant;
        entrant.code = code;
        if (code == "GA") {
            // The registry default GA carries the paper's fixed seed;
            // follow the campaign seed like FloatsmithAnalysis does.
            search::GaOptions gaOptions;
            gaOptions.seed = options_.seed;
            entrant.strategy =
                std::make_shared<search::GeneticSearch>(gaOptions);
        } else {
            entrant.strategy =
                search::StrategyRegistry::instance().create(code);
        }
        bool variableLevel = entrant.strategy->granularity() ==
                             search::Granularity::Variable;
        entrant.problem = variableLevel ? &searchVariableProblem()
                                        : &searchClusterProblem();
        entrant.run = runOptionsFor(entrant.strategy->granularity());
        // Entrants run concurrently, so a shared checkpoint sink would
        // interleave snapshots from different strategies; in portfolio
        // mode the memo store is the persistence mechanism.
        entrant.run.checkpointEvery = 0;
        entrant.run.checkpointSink = nullptr;
        entrant.run.initialCache = support::json::Value();
        entrants.push_back(std::move(entrant));
    }

    search::PortfolioOptions portfolioOptions;
    portfolioOptions.mode = mode;
    portfolioOptions.workers = workers;
    portfolioOptions.budget = options_.budget;

    PortfolioOutcome outcome;
    outcome.portfolio = search::runPortfolio(entrants, portfolioOptions);
    for (const auto& result : outcome.portfolio.results) {
        outcome.totalEvaluated += result.evaluated;
        outcome.totalCacheHits += result.cacheHits;
        outcome.totalMemoHits += result.memoHits;
    }

    // Speedups measured *during* the race are contention-inflated
    // (entrants time-share the machine with each other), so they only
    // rank configs within the race. The authoritative winner is picked
    // by re-measuring each entrant's best configuration with the
    // serial final protocol; ties break deterministically on the
    // smaller bitmask, then entrant order.
    struct Candidate {
        std::size_t entrant;
        search::Config cluster;
        Evaluation final;
    };
    std::vector<Candidate> candidates;
    for (std::size_t i = 0; i < entrants.size(); ++i) {
        const search::SearchResult& result =
            outcome.portfolio.results[i];
        if (!result.foundImprovement)
            continue;
        bool variableLevel = entrants[i].strategy->granularity() ==
                             search::Granularity::Variable;
        search::Config cluster = variableLevel
                                     ? toClusterConfig(result.best)
                                     : result.best;
        bool duplicate = false;
        for (const Candidate& seen : candidates)
            duplicate = duplicate || seen.cluster == cluster;
        if (duplicate)
            continue;
        Candidate candidate{i, std::move(cluster), {}};
        candidate.final = finalMeasure(candidate.cluster);
        candidates.push_back(std::move(candidate));
    }

    // The entrant bests alone can miss the true optimum: under
    // contention an entrant may rank a mediocre configuration above
    // the genuinely best one it executed. The shared cluster table
    // holds every configuration any cluster-level entrant ran, so the
    // top few passing entries join the candidate set. (The variable
    // table is skipped: its bitmasks only reduce to cluster configs
    // when cluster-uniform.) Entrant bests precede pool entries, so a
    // pool entry only wins on a strictly better re-measurement. The
    // cap bounds the number of extra serial final measurements; it is
    // sized to cover a small cluster space outright, because the
    // in-race ranking that orders the pool is itself noisy.
    constexpr std::size_t kPoolCandidates = 6;
    if (options_.memoStore) {
        auto pool = options_.memoStore
                        ->table(fingerprint(
                            search::Granularity::Cluster))
                        ->entries();
        std::sort(pool.begin(), pool.end(),
                  [](const auto& a, const auto& b) {
                      if (a.second.speedup != b.second.speedup)
                          return a.second.speedup > b.second.speedup;
                      return a.first < b.first;
                  });
        std::size_t taken = 0;
        for (const auto& [key, eval] : pool) {
            if (taken == kPoolCandidates)
                break;
            // Pass/fail is the only in-race signal worth trusting:
            // in-race runtimes are contention-inflated against the
            // clean baseline, so even the true optimum can carry a
            // sub-1.0 stored speedup.
            if (!eval.passed() || key.size() != clusterCount())
                continue;
            search::Config cluster = search::Config::fromString(key);
            bool duplicate = false;
            for (const Candidate& seen : candidates)
                duplicate = duplicate || seen.cluster == cluster;
            if (duplicate)
                continue;
            Candidate candidate{entrants.size(), std::move(cluster),
                                {}};
            candidate.final = finalMeasure(candidate.cluster);
            candidates.push_back(std::move(candidate));
            ++taken;
        }
    }

    const Candidate* chosen = nullptr;
    for (const Candidate& candidate : candidates) {
        if (!chosen) {
            chosen = &candidate;
            continue;
        }
        if (candidate.final.passed() != chosen->final.passed()) {
            if (candidate.final.passed())
                chosen = &candidate;
            continue;
        }
        if (candidate.final.speedup != chosen->final.speedup) {
            if (candidate.final.speedup > chosen->final.speedup)
                chosen = &candidate;
            continue;
        }
        if (candidate.cluster.toString() <
            chosen->cluster.toString())
            chosen = &candidate;
    }

    if (chosen) {
        outcome.winnerCode = chosen->entrant < entrants.size()
                                 ? entrants[chosen->entrant].code
                                 : "pool";
        outcome.clusterConfig = chosen->cluster;
        outcome.finalSpeedup = chosen->final.speedup;
        outcome.finalQualityLoss = chosen->final.qualityLoss;
    } else {
        // Nobody improved on the baseline.
        const search::SearchResult& raceWinner =
            outcome.portfolio.results[outcome.portfolio.winner];
        outcome.winnerCode = raceWinner.strategyCode;
        outcome.clusterConfig = search::Config(clusterCount());
    }
    return outcome;
}

} // namespace hpcmixp::core
