#ifndef HPCMIXP_CORE_MIXPBENCH_H_
#define HPCMIXP_CORE_MIXPBENCH_H_

/**
 * @file
 * Umbrella header: the public API of HPC-MixPBench.
 *
 * Typical use:
 *
 *   #include "core/mixpbench.h"
 *   using namespace hpcmixp;
 *
 *   auto bench = benchmarks::BenchmarkRegistry::instance()
 *                    .create("hotspot");
 *   core::TunerOptions opt;
 *   opt.threshold = 1e-6;
 *   core::BenchmarkTuner tuner(*bench, opt);
 *   core::TuneOutcome out = tuner.tune("DD");
 *   // out.finalSpeedup, out.finalQualityLoss,
 *   // out.search.evaluated (EV), out.clusterConfig ...
 */

#include "benchmarks/benchmark.h"
#include "benchmarks/registry.h"
#include "core/interchange.h"
#include "core/suite.h"
#include "core/tuner.h"
#include "model/program_model.h"
#include "runtime/buffer.h"
#include "runtime/mp_io.h"
#include "search/driver.h"
#include "search/strategy.h"
#include "typeforge/clustering.h"
#include "typeforge/frontend/parser.h"
#include "typeforge/report.h"
#include "verify/comparator.h"
#include "verify/metrics.h"

#endif // HPCMIXP_CORE_MIXPBENCH_H_
