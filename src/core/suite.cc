#include "core/suite.h"

#include "benchmarks/registry.h"
#include "support/logging.h"
#include "support/thread_pool.h"

namespace hpcmixp::core {

namespace {

SuiteRow
runJob(const SuiteJob& job, const SuiteOptions& options)
{
    auto benchmark =
        benchmarks::BenchmarkRegistry::instance().create(job.benchmark);
    TunerOptions tunerOptions = options.tuner;
    tunerOptions.threshold = job.threshold;

    BenchmarkTuner tuner(*benchmark, tunerOptions);
    SuiteRow row;
    row.job = job;
    row.totalVariables = tuner.variableCount();
    row.totalClusters = tuner.clusterCount();
    row.outcome = tuner.tune(job.strategy);
    return row;
}

} // namespace

std::vector<SuiteRow>
runSuite(const std::vector<SuiteJob>& jobs, const SuiteOptions& options)
{
    std::vector<SuiteRow> rows(jobs.size());
    if (options.parallelJobs <= 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            rows[i] = runJob(jobs[i], options);
        return rows;
    }

    support::ThreadPool pool(options.parallelJobs);
    std::vector<std::future<void>> futures;
    futures.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        futures.push_back(pool.submit([&, i] {
            rows[i] = runJob(jobs[i], options);
        }));
    }
    for (auto& f : futures)
        f.get();
    return rows;
}

} // namespace hpcmixp::core
