#ifndef HPCMIXP_CORE_SUITE_H_
#define HPCMIXP_CORE_SUITE_H_

/**
 * @file
 * Suite-level experiment execution.
 *
 * Runs a batch of (benchmark, strategy, threshold) analysis jobs —
 * the unit the paper's harness schedules onto cluster nodes. Here the
 * jobs run on a thread pool (jobs > 1) or serially (the default, which
 * keeps wall-clock timing measurements free of contention).
 */

#include <cstddef>
#include <string>
#include <vector>

#include "core/tuner.h"

namespace hpcmixp::core {

/** One analysis job: a benchmark analyzed by one strategy. */
struct SuiteJob {
    std::string benchmark;
    std::string strategy; ///< two-letter code, e.g. "DD"
    double threshold = 1e-6;
};

/** Result row for one completed job. */
struct SuiteRow {
    SuiteJob job;
    TuneOutcome outcome;
    std::size_t totalVariables = 0;
    std::size_t totalClusters = 0;
};

/** Batch execution options. */
struct SuiteOptions {
    std::size_t parallelJobs = 1; ///< >1 = schedule on a thread pool
    TunerOptions tuner;           ///< threshold is taken from each job
};

/** Run all @p jobs; rows come back in job order. */
std::vector<SuiteRow> runSuite(const std::vector<SuiteJob>& jobs,
                               const SuiteOptions& options);

} // namespace hpcmixp::core

#endif // HPCMIXP_CORE_SUITE_H_
