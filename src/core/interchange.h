#ifndef HPCMIXP_CORE_INTERCHANGE_H_
#define HPCMIXP_CORE_INTERCHANGE_H_

/**
 * @file
 * JSON interchange format.
 *
 * FloatSmith integrates tools through a JSON-based interchange format
 * (paper Section I). This module renders the suite's analysis outputs
 * in that spirit so external tools can consume them, and accepts
 * externally produced precision configurations:
 *
 *  - clusteringToJson: the Typeforge partitioning of a program
 *    (variables, clusters, bind keys);
 *  - outcomeToJson: one completed tuning run (strategy, EV, compile
 *    failures, winning configuration, final speedup/quality);
 *  - configToJson / configFromJson: a precision configuration as
 *    {"sites": N, "lowered": [indices...]}.
 */

#include <string>

#include "core/tuner.h"
#include "model/program_model.h"
#include "search/config.h"
#include "support/json.h"
#include "typeforge/clustering.h"

namespace hpcmixp::core {

/** Render a Typeforge partitioning as JSON. */
support::json::Value
clusteringToJson(const model::ProgramModel& program,
                 const typeforge::ClusterSet& clusters);

/** Render one tuning outcome as JSON. */
support::json::Value outcomeToJson(const std::string& benchmark,
                                   const std::string& strategy,
                                   double threshold,
                                   const TuneOutcome& outcome);

/** Render a configuration as {"sites": N, "lowered": [...]}. */
support::json::Value configToJson(const search::Config& config);

/**
 * Parse a configuration produced by configToJson (or an external
 * tool). fatal()s when the document is malformed, the site count
 * disagrees with @p expectedSites, or an index is out of range.
 */
search::Config configFromJson(const support::json::Value& value,
                              std::size_t expectedSites);

} // namespace hpcmixp::core

#endif // HPCMIXP_CORE_INTERCHANGE_H_
