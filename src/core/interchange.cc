#include "core/interchange.h"

#include "support/logging.h"
#include "typeforge/report.h"

namespace hpcmixp::core {

using support::json::Value;

Value
clusteringToJson(const model::ProgramModel& program,
                 const typeforge::ClusterSet& clusters)
{
    Value root = Value::object();
    root.set("program", Value::string(program.name()));
    root.set("total_variables",
             Value::number(
                 static_cast<double>(clusters.variableCount())));
    root.set("total_clusters",
             Value::number(
                 static_cast<double>(clusters.clusterCount())));

    Value clusterArray = Value::array();
    for (std::size_t c = 0; c < clusters.clusterCount(); ++c) {
        Value entry = Value::object();
        entry.set("index", Value::number(static_cast<double>(c)));
        Value members = Value::array();
        Value bindKeys = Value::array();
        for (model::VarId v : clusters.members(c)) {
            members.push(Value::string(
                typeforge::qualifiedName(program, v)));
            const auto& var = program.variable(v);
            if (!var.bindKey.empty())
                bindKeys.push(Value::string(var.bindKey));
        }
        entry.set("members", std::move(members));
        entry.set("bind_keys", std::move(bindKeys));
        clusterArray.push(std::move(entry));
    }
    root.set("clusters", std::move(clusterArray));
    return root;
}

Value
configToJson(const search::Config& config)
{
    Value root = Value::object();
    root.set("sites",
             Value::number(static_cast<double>(config.size())));
    Value lowered = Value::array();
    for (std::size_t i : config.lowered())
        lowered.push(Value::number(static_cast<double>(i)));
    root.set("lowered", std::move(lowered));
    return root;
}

search::Config
configFromJson(const Value& value, std::size_t expectedSites)
{
    using support::fatal;
    using support::strCat;
    if (!value.isObject() || !value.has("sites") ||
        !value.has("lowered"))
        fatal("interchange: configuration must be an object with"
              " 'sites' and 'lowered'");
    auto sites = static_cast<std::size_t>(value.at("sites").asLong());
    if (sites != expectedSites)
        fatal(strCat("interchange: configuration has ", sites,
                     " sites, expected ", expectedSites));
    search::Config config(sites);
    for (const auto& item : value.at("lowered").items()) {
        long index = item.asLong();
        if (index < 0 || static_cast<std::size_t>(index) >= sites)
            fatal(strCat("interchange: site index ", index,
                         " out of range"));
        config.set(static_cast<std::size_t>(index));
    }
    return config;
}

Value
outcomeToJson(const std::string& benchmark, const std::string& strategy,
              double threshold, const TuneOutcome& outcome)
{
    Value root = Value::object();
    root.set("benchmark", Value::string(benchmark));
    root.set("strategy", Value::string(strategy));
    root.set("threshold", Value::number(threshold));
    root.set("evaluated_configurations",
             Value::number(
                 static_cast<double>(outcome.search.evaluated)));
    root.set("compile_failures",
             Value::number(static_cast<double>(
                 outcome.search.compileFailures)));
    root.set("cache_hits",
             Value::number(
                 static_cast<double>(outcome.search.cacheHits)));
    root.set("timed_out", Value::boolean(outcome.search.timedOut));
    root.set("search_seconds",
             Value::number(outcome.search.searchSeconds));
    root.set("found_improvement",
             Value::boolean(outcome.search.foundImprovement));
    root.set("configuration", configToJson(outcome.clusterConfig));
    root.set("speedup", Value::number(outcome.finalSpeedup));
    root.set("quality_loss", Value::number(outcome.finalQualityLoss));
    return root;
}

} // namespace hpcmixp::core
