#ifndef HPCMIXP_CORE_TUNER_H_
#define HPCMIXP_CORE_TUNER_H_

/**
 * @file
 * BenchmarkTuner — the FloatSmith-analogue driver.
 *
 * Given a benchmark, the tuner:
 *  1. runs the Typeforge analysis over the benchmark's program model
 *     to obtain the variable clusters,
 *  2. executes the all-double baseline to capture the reference output
 *     and baseline runtime,
 *  3. exposes the program as a cluster-level and a variable-level
 *     search::SearchProblem (CM/HR/HC search variables and pay compile
 *     failures for cluster-splitting choices; CB/DD/GA search
 *     clusters),
 *  4. runs any registered strategy and re-times the winning
 *     configuration with the paper's 10-run trimmed-mean protocol.
 */

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "benchmarks/benchmark.h"
#include "runtime/ladder.h"
#include "search/driver.h"
#include "search/fault.h"
#include "search/memo_store.h"
#include "search/portfolio.h"
#include "search/problem.h"
#include "support/subprocess.h"
#include "typeforge/clustering.h"
#include "verify/comparator.h"

namespace hpcmixp::support {
class WorkerPool;
} // namespace hpcmixp::support

namespace hpcmixp::core {

/** Tuning options: quality bound, timing protocol, search budget. */
struct TunerOptions {
    std::string metric;      ///< empty = the benchmark's default
    double threshold = 1e-6; ///< max acceptable quality loss
    std::size_t searchReps = 3; ///< timing reps per search evaluation
    std::size_t finalReps = 10; ///< reps for the final measurement
    search::SearchBudget budget{2000, 0.0};

    /** Campaign seed, shared by the GA and the fault injector. */
    std::uint64_t seed = 2020;

    /**
     * The precision ladder (harness --ladder). A site at config level
     * L runs at rung L of this ladder; the default two-rung
     * double->float ladder reproduces the pre-ladder binary campaign
     * bit-for-bit (property-pinned trajectories).
     */
    runtime::PrecisionLadder ladder;

    /**
     * Iterative-refinement recovery (harness --refine). When on,
     * every non-baseline evaluation of a benchmark that exposes a
     * residual hook runs through Benchmark::executeRefined(): the
     * low-precision execute is followed by high-precision residual
     * correction, letting aggressive half/bfloat16 configurations
     * pass thresholds they would otherwise fail. A diverging
     * refinement throws RefineDiverged, which the evaluation layer
     * reports as RuntimeFail. The fingerprint carries a "+ir" marker
     * so refined and unrefined results never share a memo table.
     */
    bool refine = false;

    /** Retry/deadline/backoff policy for every search evaluation. */
    search::ResiliencePolicy resilience;

    /** Fault-injection plan; all-zero rates disable injection. */
    search::FaultPlan faultPlan;

    /** Executions between search-cache snapshots; 0 disables. */
    std::size_t checkpointEvery = 0;

    /** Receives periodic exportCache() snapshots when set. */
    search::SearchContext::CheckpointSink checkpointSink;

    /** Non-null: restored into the search context before searching. */
    support::json::Value initialCache;

    /** Worker threads for in-search batch evaluation; 1 = serial. */
    std::size_t searchJobs = 1;

    /** mixp-lint static prior mode (harness --static-prior). Off
     *  reproduces the uninstrumented trajectories bit-for-bit. */
    search::PriorMode staticPrior = search::PriorMode::Off;

    /**
     * Fold the abstract interpreter's certified per-rung level caps
     * into the static prior (harness --certified-caps). Certificates
     * only ever *tighten* the heuristic caps — a rung proven to
     * overflow or to blow the error budget is excluded before any
     * evaluation runs — so turning this off recovers the PR 5
     * heuristic prior exactly. No effect when staticPrior is Off.
     */
    bool certifiedCaps = true;

    /**
     * Persistent cross-run memo-cache (harness --memo-cache). When
     * set, every search consults the benchmark-fingerprinted table
     * before executing a configuration and publishes what it ran;
     * null keeps evaluation purely in-process.
     */
    std::shared_ptr<search::MemoStore> memoStore;

    /**
     * Where each search evaluation attempt executes (harness
     * --isolation): in this process, in a forked child per attempt
     * so a configuration that SIGSEGVs, aborts or hangs is contained
     * and quarantined instead of killing the tuner (DESIGN.md §13),
     * or on a persistent pre-forked worker pool that amortizes the
     * spawn cost across the whole campaign (DESIGN.md §15).
     * Final measurements always run in-process — only configurations
     * that already survived the sandbox reach them.
     */
    support::IsolationMode isolation = support::IsolationMode::None;

    /**
     * Crash-loop cutoff (harness --isolation-max-crashes): once this
     * many children have crashed or been killed, further sandboxed
     * attempts fail fast without forking. 0 = unlimited. Under
     * isolation = Pool this also caps worker re-forks: each dead
     * worker is re-forked, but once the cutoff trips no further jobs
     * are dispatched.
     */
    std::size_t isolationMaxCrashes = 0;

    /**
     * Worker processes under isolation = Pool (harness
     * --pool-workers); 0 sizes the pool to searchJobs, so each batch
     * evaluation thread has a sandbox worker to itself.
     */
    std::size_t poolWorkers = 0;
};

/**
 * Sandboxed-evaluation accounting (isolation = Fork); all zero under
 * in-process evaluation. Child deaths are classified by exit class —
 * each nonzero-exit / signaled / killed / corrupt child surfaced to
 * the search layer as a RuntimeFail and fed the ordinary
 * retry-then-quarantine machinery.
 */
struct SandboxStats {
    std::size_t forks = 0;            ///< children spawned
    std::size_t cleanExits = 0;       ///< _exit(0) with a valid arena
    std::size_t nonZeroExits = 0;     ///< exited with a nonzero code
    std::size_t signaled = 0;         ///< died by signal (SIGSEGV, abort)
    std::size_t killedOnDeadline = 0; ///< SIGKILLed by the parent
    std::size_t arenaCorrupt = 0;     ///< exited 0 but tore the arena
    std::size_t spawnFailed = 0;      ///< fork() itself failed
    std::size_t fastFailed = 0;       ///< crash-loop cutoff short-circuits

    /// Pool-mode extras (isolation = Pool); zero otherwise. Under the
    /// pool, `forks` counts actual fork() calls (initial spawn plus
    /// respawns) while dispatches counts jobs served over the rings.
    std::size_t poolDispatches = 0;   ///< jobs handed to pool workers
    std::size_t workerRespawns = 0;   ///< workers re-forked after a death

    /** Mean fork+reap overhead per clean child (parent wall clock
     *  minus child-side execution wall clock). Under isolation = Pool
     *  this is the per-job dispatch overhead (ring write + doorbell +
     *  result read), the number the spawn-amortization bench gates. */
    double spawnOverheadMeanSeconds = 0.0;

    /** Children that produced no usable result. */
    std::size_t crashedChildren() const
    {
        return nonZeroExits + signaled + killedOnDeadline +
               arenaCorrupt + spawnFailed;
    }
};

/** Per-search run options (resilience + checkpoint wiring) derived
 *  from tuner options. */
search::SearchRunOptions searchRunOptions(const TunerOptions& options);

/** Result of a full tuning run with one strategy. */
struct TuneOutcome {
    search::SearchResult search;    ///< raw search statistics
    search::Config clusterConfig;   ///< winner at cluster granularity
    double finalSpeedup = 1.0;      ///< 10-run protocol measurement
    double finalQualityLoss = 0.0;  ///< loss of the winner
};

/**
 * Result of racing several strategies against the shared memo store.
 *
 * `portfolio.winner` is the in-race winner under the deterministic
 * portfolio rule, judged on speedups measured *while* the entrants
 * contend for the machine. `winnerCode`/`clusterConfig` may differ:
 * they are picked by re-measuring every improving entrant's best
 * configuration — plus the top passing entries of the shared
 * cluster-level memo table, which catch optima an entrant executed
 * but misranked under contention — with the serial final protocol,
 * the authoritative comparison. `winnerCode` is "pool" when the
 * returned configuration came from the shared table rather than any
 * entrant's pick.
 */
struct PortfolioOutcome {
    search::PortfolioResult portfolio; ///< per-strategy results + winner
    std::string winnerCode;            ///< strategy code of the winner
    search::Config clusterConfig;      ///< winner at cluster granularity
    double finalSpeedup = 1.0;         ///< 10-run protocol measurement
    double finalQualityLoss = 0.0;     ///< loss of the winner

    /// Portfolio-wide accounting, summed over entrants.
    std::size_t totalEvaluated = 0;
    std::size_t totalCacheHits = 0;
    std::size_t totalMemoHits = 0;
};

/** Drives mixed-precision tuning of one benchmark. */
class BenchmarkTuner {
  public:
    BenchmarkTuner(const benchmarks::Benchmark& benchmark,
                   TunerOptions options);
    ~BenchmarkTuner();

    BenchmarkTuner(const BenchmarkTuner&) = delete;
    BenchmarkTuner& operator=(const BenchmarkTuner&) = delete;

    /** The Typeforge clustering of the benchmark's model. */
    const typeforge::ClusterSet& clusters() const { return clusters_; }

    /** Sites of the cluster-level problem. */
    std::size_t clusterCount() const { return clusters_.clusterCount(); }

    /** Sites of the variable-level problem. */
    std::size_t variableCount() const { return variables_.size(); }

    /** Baseline (all-double) mean runtime in seconds. */
    double baselineSeconds() const { return baselineSeconds_; }

    /** Cluster-level search problem (CB, DD, GA). */
    search::SearchProblem& clusterProblem();

    /** Variable-level search problem with structure info (CM, HR, HC). */
    search::SearchProblem& variableProblem();

    /** clusterProblem() wrapped in the configured fault plan
     *  (the plain problem when injection is disabled). */
    search::SearchProblem& searchClusterProblem();

    /** variableProblem() wrapped in the configured fault plan. */
    search::SearchProblem& searchVariableProblem();

    /**
     * Run the strategy registered under @p strategyCode at its own
     * granularity, then re-time the winner with the final protocol.
     */
    TuneOutcome tune(const std::string& strategyCode);

    /** As above for an externally configured strategy instance. */
    TuneOutcome tune(search::SearchStrategy& strategy);

    /**
     * Race @p strategyCodes (empty = all registered strategies)
     * concurrently against the shared memo store and re-time the
     * deterministic winner with the final protocol. Without a memo
     * store the entrants still race, just without cross-strategy
     * deduplication.
     */
    PortfolioOutcome
    tunePortfolio(const std::vector<std::string>& strategyCodes = {},
                  search::PortfolioMode mode =
                      search::PortfolioMode::Best,
                  std::size_t workers = 0);

    /**
     * The evaluation-function fingerprint of this tuner at one search
     * granularity: benchmark name, input signature (hash of the
     * baseline reference output), metric, threshold, site count and
     * precision ladder. Addresses the memo-cache and stamps
     * checkpoints.
     */
    search::MemoFingerprint
    fingerprint(search::Granularity granularity) const;

    /**
     * Search-run wiring for one granularity: resilience, checkpoint,
     * parallelism (searchRunOptions) plus the static prior and, when
     * a memo store is configured, the fingerprinted memo table.
     */
    search::SearchRunOptions
    runOptionsFor(search::Granularity granularity);

    /** Evaluate one cluster configuration with @p reps timing reps.
     *  Runs in a forked child under isolation = Fork. */
    search::Evaluation evaluateClusterConfig(const search::Config& cfg,
                                             std::size_t reps);

    /** Snapshot of the sandbox accounting (all zero when
     *  isolation = None). */
    SandboxStats sandboxStats() const;

    /** Pids of the live pool workers (isolation = Pool; empty
     *  otherwise, -1 for a currently dead slot). Exposed so tests can
     *  kill a worker mid-campaign and watch the pool recover. */
    std::vector<pid_t> poolWorkerPids() const;

    /**
     * Final measurement: interleaves finalReps baseline runs with
     * finalReps configuration runs (alternating) and reports the
     * ratio of trimmed means. Interleaving cancels the clock drift a
     * one-shot baseline measurement would bake into every speedup.
     */
    search::Evaluation finalMeasure(const search::Config& cfg);

    /** Derive the runtime precision map of a cluster configuration. */
    benchmarks::PrecisionMap
    precisionMapFor(const search::Config& clusterCfg) const;

    /**
     * Build the mixp-lint static prior for one search granularity: a
     * cluster site (CB/DD/GA) carries its own verdict, a variable site
     * (CM/HR/HC) inherits its cluster's. Returns a disabled prior when
     * options.staticPrior is Off.
     */
    search::StaticPrior
    staticPrior(search::Granularity granularity) const;

    /** Switch the static-prior mode between tune() calls, so one
     *  tuner (one baseline) can A/B a strategy with and without the
     *  prior. */
    void setStaticPriorMode(search::PriorMode mode)
    {
        options_.staticPrior = mode;
    }

    /** Toggle certified absint caps between tune() calls, so one
     *  tuner can A/B the certified prior against the heuristic one. */
    void setCertifiedCaps(bool on) { options_.certifiedCaps = on; }

    /** Swap the memo store between tune() calls, so one tuner (one
     *  baseline) can A/B cold and warm campaigns. Null detaches. */
    void setMemoStore(std::shared_ptr<search::MemoStore> store)
    {
        options_.memoStore = std::move(store);
    }

    /** Reduce a variable-level config to its cluster-level equivalent
     *  (requires cluster uniformity; panics otherwise). */
    search::Config toClusterConfig(const search::Config& varCfg) const;

    /** The verification routine in use. */
    const verify::OutputComparator& comparator() const
    {
        return comparator_;
    }

  private:
    class ClusterProblem;
    class VariableProblem;

    void buildStructure();
    void runBaseline();
    bool isVarLowered(const search::Config& varCfg,
                      model::VarId var) const;
    std::uint8_t varLevel(const search::Config& varCfg,
                          model::VarId var) const;
    bool useRefinement(const search::Config& cfg) const;
    benchmarks::RunOutput executeForConfig(
        const benchmarks::RunPlan& plan, runtime::RunWorkspace& ws,
        bool refined) const;
    search::Evaluation evaluateSandboxed(const search::Config& cfg,
                                         std::size_t reps);
    search::Evaluation evaluatePooled(const search::Config& cfg,
                                      std::size_t reps);
    /** WorkerPool job handler; runs inside a pool worker child. */
    std::size_t poolChildRun(const void* job, std::size_t jobSize,
                             void* result, std::size_t resultCapacity);
    bool crashCutoffTripped();

    const benchmarks::Benchmark& benchmark_;
    TunerOptions options_;
    typeforge::ClusterSet clusters_;
    std::vector<model::VarId> variables_;
    verify::OutputComparator comparator_;
    std::vector<double> reference_;
    double baselineSeconds_ = 0.0;
    search::StructureNode structure_;
    std::unique_ptr<ClusterProblem> clusterProblem_;
    std::unique_ptr<VariableProblem> variableProblem_;
    std::unique_ptr<search::FaultyProblem> faultyCluster_;
    std::unique_ptr<search::FaultyProblem> faultyVariable_;

    /// Sandbox accounting; the mutex also serializes the crash-loop
    /// cutoff decision across evaluateBatch workers.
    mutable std::mutex sandboxMutex_;
    SandboxStats sandbox_;
    double spawnOverheadSum_ = 0.0;
    bool crashLoopWarned_ = false;

    /// Pre-forked sandbox workers (isolation = Pool). Created eagerly
    /// in the constructor — after the baseline, so workers inherit the
    /// reference output and warmed input caches — and held for the
    /// tuner's lifetime, so the process fd count is campaign-constant.
    std::unique_ptr<support::WorkerPool> workerPool_;
};

} // namespace hpcmixp::core

#endif // HPCMIXP_CORE_TUNER_H_
