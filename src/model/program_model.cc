#include "model/program_model.h"

#include "model/bind_keys.h"
#include "support/logging.h"

namespace hpcmixp::model {

using support::fatal;
using support::strCat;

const char*
dataflowFactName(DataflowFact fact)
{
    switch (fact) {
    case DataflowFact::Accumulator: return "accumulator";
    case DataflowFact::Cancellation: return "cancellation";
    case DataflowFact::Divisor: return "divisor";
    case DataflowFact::BranchCompare: return "branch-compare";
    case DataflowFact::LiteralInit: return "literal-init";
    case DataflowFact::LoopCarried: return "loop-carried";
    }
    return "unknown";
}

const char*
arithOpName(ArithOp op)
{
    switch (op) {
    case ArithOp::Id: return "id";
    case ArithOp::Add: return "add";
    case ArithOp::Sub: return "sub";
    case ArithOp::Mul: return "mul";
    case ArithOp::Div: return "div";
    case ArithOp::Exp: return "exp";
    case ArithOp::Sqrt: return "sqrt";
    }
    return "unknown";
}

ModuleId
ProgramModel::addModule(const std::string& name)
{
    Module m;
    m.id = static_cast<ModuleId>(modules_.size());
    m.name = name;
    modules_.push_back(std::move(m));
    return modules_.back().id;
}

FunctionId
ProgramModel::addFunction(ModuleId module, const std::string& name)
{
    HPCMIXP_ASSERT(module < modules_.size(), "bad module id");
    Function f;
    f.id = static_cast<FunctionId>(functions_.size());
    f.name = name;
    f.module = module;
    functions_.push_back(std::move(f));
    modules_[module].functions.push_back(functions_.back().id);
    return functions_.back().id;
}

VarId
ProgramModel::addVariableImpl(FunctionId function, ModuleId module,
                              const std::string& name, TypeInfo type,
                              bool isParameter,
                              const std::string& bindKey)
{
    Variable v;
    v.id = static_cast<VarId>(variables_.size());
    v.name = name;
    v.type = type;
    v.function = function;
    v.module = module;
    v.isParameter = isParameter;
    v.bindKey = bindKey;
    if (!bindKey.empty())
        declareBindKey(bindKey);
    variables_.push_back(std::move(v));
    return variables_.back().id;
}

VarId
ProgramModel::addVariable(FunctionId function, const std::string& name,
                          TypeInfo type, const std::string& bindKey)
{
    HPCMIXP_ASSERT(function < functions_.size(), "bad function id");
    VarId id = addVariableImpl(function, functions_[function].module,
                               name, type, false, bindKey);
    functions_[function].variables.push_back(id);
    return id;
}

VarId
ProgramModel::addParameter(FunctionId function, const std::string& name,
                           TypeInfo type, const std::string& bindKey)
{
    HPCMIXP_ASSERT(function < functions_.size(), "bad function id");
    VarId id = addVariableImpl(function, functions_[function].module,
                               name, type, true, bindKey);
    functions_[function].variables.push_back(id);
    return id;
}

VarId
ProgramModel::addGlobal(ModuleId module, const std::string& name,
                        TypeInfo type, const std::string& bindKey)
{
    HPCMIXP_ASSERT(module < modules_.size(), "bad module id");
    VarId id = addVariableImpl(kInvalidId, module, name, type, false,
                               bindKey);
    modules_[module].globals.push_back(id);
    return id;
}

void
ProgramModel::addDependence(VarId a, VarId b, DependenceKind kind)
{
    HPCMIXP_ASSERT(a < variables_.size() && b < variables_.size(),
                   "dependence references an unknown variable");
    deps_.push_back({a, b, kind});
}

void
ProgramModel::addAssign(VarId dst, VarId src)
{
    addDependence(dst, src, DependenceKind::Assign);
}

void
ProgramModel::addCallBind(VarId argument, VarId parameter)
{
    addDependence(argument, parameter, DependenceKind::CallBind);
}

void
ProgramModel::addAddressOf(VarId argument, VarId parameter)
{
    addDependence(argument, parameter, DependenceKind::AddressOf);
}

void
ProgramModel::addReturn(VarId dst, VarId returned)
{
    addDependence(dst, returned, DependenceKind::Return);
}

void
ProgramModel::addSameType(VarId a, VarId b)
{
    addDependence(a, b, DependenceKind::SameType);
}

void
ProgramModel::markFact(VarId var, DataflowFact fact)
{
    HPCMIXP_ASSERT(var < variables_.size(), "bad variable id");
    variables_[var].facts |= static_cast<std::uint8_t>(fact);
    dataflowAnalyzed_ = true;
}

void
ProgramModel::setRange(VarId var, double lo, double hi)
{
    HPCMIXP_ASSERT(var < variables_.size(), "bad variable id");
    HPCMIXP_ASSERT(lo <= hi, "range lower bound exceeds upper");
    variables_[var].range = {lo, hi, true};
}

void
ProgramModel::addArith(VarId dst, ArithOp op, ArithOperand lhs,
                       ArithOperand rhs)
{
    ArithFact fact;
    fact.dst = dst;
    fact.op = op;
    fact.lhs = lhs;
    fact.rhs = rhs;
    addArith(fact);
}

void
ProgramModel::addArith(const ArithFact& fact)
{
    HPCMIXP_ASSERT(fact.dst < variables_.size(),
                   "arith fact targets an unknown variable");
    HPCMIXP_ASSERT(fact.lhs.isLiteral ||
                       fact.lhs.var < variables_.size(),
                   "arith fact reads an unknown lhs variable");
    HPCMIXP_ASSERT(fact.rhs.isLiteral ||
                       fact.rhs.var == kInvalidId ||
                       fact.rhs.var < variables_.size(),
                   "arith fact reads an unknown rhs variable");
    arith_.push_back(fact);
}

void
ProgramModel::markOpaque(VarId var)
{
    HPCMIXP_ASSERT(var < variables_.size(), "bad variable id");
    variables_[var].opaque = true;
}

const ValueRange&
ProgramModel::range(VarId var) const
{
    HPCMIXP_ASSERT(var < variables_.size(), "bad variable id");
    return variables_[var].range;
}

bool
ProgramModel::isOpaque(VarId var) const
{
    HPCMIXP_ASSERT(var < variables_.size(), "bad variable id");
    return variables_[var].opaque;
}

bool
ProgramModel::hasFact(VarId var, DataflowFact fact) const
{
    return (facts(var) & static_cast<std::uint8_t>(fact)) != 0;
}

std::uint8_t
ProgramModel::facts(VarId var) const
{
    HPCMIXP_ASSERT(var < variables_.size(), "bad variable id");
    return variables_[var].facts;
}

const Module&
ProgramModel::module(ModuleId id) const
{
    HPCMIXP_ASSERT(id < modules_.size(), "bad module id");
    return modules_[id];
}

const Function&
ProgramModel::function(FunctionId id) const
{
    HPCMIXP_ASSERT(id < functions_.size(), "bad function id");
    return functions_[id];
}

const Variable&
ProgramModel::variable(VarId id) const
{
    HPCMIXP_ASSERT(id < variables_.size(), "bad variable id");
    return variables_[id];
}

std::vector<VarId>
ProgramModel::realVariables() const
{
    std::vector<VarId> out;
    for (const auto& v : variables_)
        if (v.type.base == BaseType::Real)
            out.push_back(v.id);
    return out;
}

VarId
ProgramModel::findVariable(const std::string& name) const
{
    VarId found = kInvalidId;
    for (const auto& v : variables_) {
        if (v.name == name) {
            if (found != kInvalidId)
                fatal(strCat("variable name '", name,
                             "' is ambiguous in model '", name_, "'"));
            found = v.id;
        }
    }
    if (found == kInvalidId)
        fatal(strCat("no variable named '", name, "' in model '",
                     name_, "'"));
    return found;
}

VarId
ProgramModel::findVariable(const std::string& functionName,
                           const std::string& name) const
{
    for (const auto& v : variables_) {
        if (v.name != name || v.function == kInvalidId)
            continue;
        if (functions_[v.function].name == functionName)
            return v.id;
    }
    fatal(strCat("no variable '", functionName, "::", name,
                 "' in model '", name_, "'"));
}

} // namespace hpcmixp::model
