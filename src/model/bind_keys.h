#ifndef HPCMIXP_MODEL_BIND_KEYS_H_
#define HPCMIXP_MODEL_BIND_KEYS_H_

/**
 * @file
 * Process-wide interning of runtime bind keys.
 *
 * Bind keys are the short strings that connect a ProgramModel variable
 * to the runtime knob it controls ("x", "coef", ...). The hot path of
 * a tuning campaign resolves them for every prepared configuration, so
 * PrecisionMap stores small integer ids instead of strings and lookups
 * stop doing linear string comparisons (benchmarks intern their keys
 * once at construction).
 *
 * The interner also remembers which keys have been *declared* by a
 * ProgramModel variable. Querying a PrecisionMap for a key that no
 * model declares is almost always a typo in a benchmark's prepare() —
 * the knob would silently stay double and the cluster untunable — so
 * PrecisionMap::get warns once per key (see warnUndeclaredBindKey).
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace hpcmixp::model {

/** Small dense id of an interned bind key. */
using BindKeyId = std::uint32_t;

/** Intern @p key (idempotent, thread-safe); returns its id. */
BindKeyId internBindKey(std::string_view key);

/** The key string of @p id; panics on an unknown id. */
const std::string& bindKeyName(BindKeyId id);

/** Mark @p key as declared by some model variable. */
void declareBindKey(std::string_view key);

/** True when some ProgramModel declared @p id as a variable bind key. */
bool bindKeyDeclared(BindKeyId id);

/** True when at least one bind key has been declared process-wide. */
bool anyBindKeyDeclared();

/**
 * Warn about a query for an undeclared key, once per key. @p context
 * names the benchmark/model whose precision map was queried, so the
 * message points at the offending prepare() instead of just the key.
 */
void warnUndeclaredBindKey(BindKeyId id, std::string_view context = "");

/** Number of interned keys (test hook). */
std::size_t internedBindKeyCount();

} // namespace hpcmixp::model

#endif // HPCMIXP_MODEL_BIND_KEYS_H_
