#include "model/bind_keys.h"

#include <atomic>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "support/logging.h"

namespace hpcmixp::model {

namespace {

struct Entry {
    std::string name;
    std::atomic<bool> declared{false};
    std::atomic<bool> warned{false};
};

/**
 * The interner table. Entries live in a deque so that the string_view
 * keys of the id map (which view entry names) and references handed
 * out by bindKeyName() stay valid as the table grows.
 */
struct Interner {
    std::mutex mutex;
    std::unordered_map<std::string_view, BindKeyId> ids;
    std::deque<Entry> entries;
    std::atomic<bool> anyDeclared{false};
};

Interner&
interner()
{
    static Interner table;
    return table;
}

Entry&
entryOf(BindKeyId id)
{
    Interner& in = interner();
    std::lock_guard<std::mutex> lock(in.mutex);
    HPCMIXP_ASSERT(id < in.entries.size(), "unknown bind key id");
    return in.entries[id];
}

} // namespace

BindKeyId
internBindKey(std::string_view key)
{
    Interner& in = interner();
    std::lock_guard<std::mutex> lock(in.mutex);
    auto it = in.ids.find(key);
    if (it != in.ids.end())
        return it->second;
    BindKeyId id = static_cast<BindKeyId>(in.entries.size());
    in.entries.emplace_back();
    in.entries.back().name = std::string(key);
    in.ids.emplace(in.entries.back().name, id);
    return id;
}

const std::string&
bindKeyName(BindKeyId id)
{
    return entryOf(id).name;
}

void
declareBindKey(std::string_view key)
{
    BindKeyId id = internBindKey(key);
    entryOf(id).declared.store(true, std::memory_order_relaxed);
    interner().anyDeclared.store(true, std::memory_order_relaxed);
}

bool
bindKeyDeclared(BindKeyId id)
{
    return entryOf(id).declared.load(std::memory_order_relaxed);
}

bool
anyBindKeyDeclared()
{
    return interner().anyDeclared.load(std::memory_order_relaxed);
}

void
warnUndeclaredBindKey(BindKeyId id, std::string_view context)
{
    Entry& entry = entryOf(id);
    if (entry.warned.exchange(true, std::memory_order_relaxed))
        return;
    std::string where = context.empty()
                            ? std::string("a precision map")
                            : support::strCat("precision map of '",
                                              context, "'");
    support::warn(support::strCat(
        where, " queried for bind key '", entry.name,
        "' that no model variable declares (typo'd knob name?)"));
}

std::size_t
internedBindKeyCount()
{
    Interner& in = interner();
    std::lock_guard<std::mutex> lock(in.mutex);
    return in.entries.size();
}

} // namespace hpcmixp::model
