#ifndef HPCMIXP_MODEL_PROGRAM_MODEL_H_
#define HPCMIXP_MODEL_PROGRAM_MODEL_H_

/**
 * @file
 * Structural model of a benchmark program.
 *
 * Typeforge analyzes C++ sources; our substitute analyzes this explicit
 * model (DESIGN.md Section 2). A ProgramModel captures exactly the
 * information the paper's type-dependence analysis consumes:
 *
 *  - the module / function / variable hierarchy (used by the
 *    hierarchical search strategies),
 *  - the floating-point type of each variable (base type + pointer
 *    depth),
 *  - type-dependence edges between variables: assignments, call
 *    argument-to-parameter bindings, address-of bindings, returns.
 *
 * Models are built either with the fluent builder API here (each
 * benchmark ships one mirroring its source structure) or by the mini-C
 * frontend in `typeforge/frontend`.
 *
 * A variable may carry a *bind key*: the name of the runtime knob (an
 * mp::Buffer or templated scalar) that realizes it in the executable
 * benchmark. Cluster precision decisions propagate through bind keys to
 * actual execution. Variables without bind keys are legal — real codes
 * contain cold variables whose precision does not affect the output.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace hpcmixp::model {

/** Base scalar type of a variable. */
enum class BaseType {
    Real,    ///< floating-point; participates in mixed-precision tuning
    Integer, ///< integral; never tuned
    Other,   ///< anything else; never tuned
};

/** A variable's type: base type plus pointer/array depth. */
struct TypeInfo {
    BaseType base = BaseType::Real;
    int pointerDepth = 0; ///< 0 = scalar, 1 = T*/T[], 2 = T**, ...

    bool isPointer() const { return pointerDepth > 0; }
};

/** Convenience constructors for common types. */
inline TypeInfo
realScalar()
{
    return {BaseType::Real, 0};
}

inline TypeInfo
realPointer(int depth = 1)
{
    return {BaseType::Real, depth};
}

inline TypeInfo
integerScalar()
{
    return {BaseType::Integer, 0};
}

using ModuleId = std::uint32_t;
using FunctionId = std::uint32_t;
using VarId = std::uint32_t;

/** Sentinel for "no owner" ids. */
constexpr std::uint32_t kInvalidId = 0xffffffffu;

/**
 * Per-variable dataflow facts recorded alongside the type-dependence
 * edges. The type analysis alone cannot tell an accumulator from a
 * scratch temporary; these facts carry exactly the usage patterns the
 * mixp-lint sensitivity rules consume (DESIGN.md Section 11). Facts are
 * stored as a bitmask so a variable can carry several at once.
 *
 * Builder-built models annotate facts explicitly; the mini-C frontend
 * infers them during parsing.
 */
enum class DataflowFact : std::uint8_t {
    Accumulator = 1u << 0,   ///< x += e / x = x + e inside a loop
    Cancellation = 1u << 1,  ///< operand of a Real subtraction
    Divisor = 1u << 2,       ///< appears as a divisor / denominator
    BranchCompare = 1u << 3, ///< compared against a constant
    LiteralInit = 1u << 4,   ///< only ever written from literals
    LoopCarried = 1u << 5,   ///< value of iteration i feeds i+1
};

/** Stable lowercase name of one fact (reports, JSON). */
const char* dataflowFactName(DataflowFact fact);

/** All facts in a fixed order (iteration helper for reports). */
inline constexpr DataflowFact kAllDataflowFacts[] = {
    DataflowFact::Accumulator,  DataflowFact::Cancellation,
    DataflowFact::Divisor,      DataflowFact::BranchCompare,
    DataflowFact::LiteralInit,  DataflowFact::LoopCarried,
};

/**
 * A closed interval of values a variable may take, recorded by an
 * annotation (builder models, `__range()` in the mini-C frontend).
 * The abstract interpreter (typeforge/absint.h) seeds its analysis
 * from these; variables without a recorded range start at top.
 */
struct ValueRange {
    double lo = 0.0;
    double hi = 0.0;
    bool known = false;
};

/** Operators of an arithmetic dataflow fact. */
enum class ArithOp {
    Id,   ///< dst = lhs (rhs ignored)
    Add,  ///< dst = lhs + rhs
    Sub,  ///< dst = lhs - rhs
    Mul,  ///< dst = lhs * rhs
    Div,  ///< dst = lhs / rhs
    Exp,  ///< dst = exp(lhs) (rhs ignored)
    Sqrt, ///< dst = sqrt(lhs) (rhs ignored)
};

/** Stable lowercase name of one operator ("add", "mul", ...). */
const char* arithOpName(ArithOp op);

/**
 * One operand of an arithmetic fact: a variable, a literal value, or
 * a literal *interval* — an annotator-supplied bound for a folded
 * subexpression (interval arithmetic is sub-distributive, so folding
 * a bounded subtree into its interval is a sound over-approximation
 * of the exact expression).
 */
struct ArithOperand {
    VarId var = kInvalidId;
    double lo = 0.0;
    double hi = 0.0;
    bool isLiteral = false;
};

/** Operand referring to variable @p v. */
inline ArithOperand
arithVar(VarId v)
{
    return {v, 0.0, 0.0, false};
}

/** Literal operand with value @p x. */
inline ArithOperand
arithLit(double x)
{
    return {kInvalidId, x, x, true};
}

/** Literal interval operand covering [@p lo, @p hi]. */
inline ArithOperand
arithLitRange(double lo, double hi)
{
    return {kInvalidId, lo, hi, true};
}

/**
 * One arithmetic dataflow fact: how a value of @p dst is computed.
 *
 * Plain facts record `dst = lhs op rhs`; when several plain facts
 * target the same dst, the abstract interpreter joins (unions) their
 * results — a def-set over-approximation. Accumulate facts record
 * `dst += scale * (lhs op rhs)` repeated @p trips times (trips == 0
 * inside a loop of unknown count: the interpreter widens). The
 * @p scale literal lets annotations fold bounded coefficients of
 * deeper expression trees into a single binary fact soundly (interval
 * arithmetic is sub-distributive, so the decomposed form always
 * contains the exact one).
 */
struct ArithFact {
    VarId dst = kInvalidId;
    ArithOp op = ArithOp::Id;
    ArithOperand lhs;
    ArithOperand rhs;
    bool accumulate = false; ///< dst += scale*(lhs op rhs)
    double scale = 1.0;      ///< literal multiplier (accumulate only)
    bool inLoop = false;     ///< fact executes inside a loop
    std::size_t trips = 0;   ///< loop trip count; 0 = unknown
    /** Extra round-off amplification contributed by subexpressions
     *  the annotator folded into a literal-interval operand. */
    double extraAmp = 0.0;
};

/** Kinds of type-dependence edges between two variables. */
enum class DependenceKind {
    Assign,    ///< dst = src (or compound assignment)
    CallBind,  ///< argument bound to a callee parameter
    AddressOf, ///< &scalar passed to a pointer parameter
    Return,    ///< callee return value assigned to dst
    SameType,  ///< explicit constraint (template args, casts forbidden)
};

/** One type-dependence edge; direction is informational only. */
struct Dependence {
    VarId a;
    VarId b;
    DependenceKind kind;
};

/** A declared variable (local, global, or function parameter). */
struct Variable {
    VarId id = kInvalidId;
    std::string name;
    TypeInfo type;
    FunctionId function = kInvalidId; ///< owner; kInvalidId for globals
    ModuleId module = kInvalidId;
    bool isParameter = false;
    std::string bindKey; ///< runtime knob name; empty = cold variable
    std::uint8_t facts = 0; ///< DataflowFact bitmask
    ValueRange range;       ///< annotated input value range
    bool opaque = false;    ///< has writes no arith fact expresses
};

/** A function containing variables. */
struct Function {
    FunctionId id = kInvalidId;
    std::string name;
    ModuleId module = kInvalidId;
    std::vector<VarId> variables;
};

/** A module (source file / component) containing functions + globals. */
struct Module {
    ModuleId id = kInvalidId;
    std::string name;
    std::vector<FunctionId> functions;
    std::vector<VarId> globals;
};

/** Structural model of one benchmark program. */
class ProgramModel {
  public:
    /** Create a model named after its benchmark. */
    explicit ProgramModel(std::string name) : name_(std::move(name)) {}

    // --- construction -----------------------------------------------

    /** Add a module (source file). */
    ModuleId addModule(const std::string& name);

    /** Add a function to a module. */
    FunctionId addFunction(ModuleId module, const std::string& name);

    /** Add a local variable to a function. */
    VarId addVariable(FunctionId function, const std::string& name,
                      TypeInfo type, const std::string& bindKey = "");

    /** Add a parameter to a function. */
    VarId addParameter(FunctionId function, const std::string& name,
                       TypeInfo type, const std::string& bindKey = "");

    /** Add a module-scope global variable. */
    VarId addGlobal(ModuleId module, const std::string& name,
                    TypeInfo type, const std::string& bindKey = "");

    /** Record `dst = src`. */
    void addAssign(VarId dst, VarId src);

    /** Record an argument bound to a callee parameter. */
    void addCallBind(VarId argument, VarId parameter);

    /** Record `&argument` bound to a pointer parameter. */
    void addAddressOf(VarId argument, VarId parameter);

    /** Record a callee return value assigned to @p dst. */
    void addReturn(VarId dst, VarId returned);

    /** Record an explicit same-type constraint. */
    void addSameType(VarId a, VarId b);

    /**
     * Mark a dataflow fact on @p var. Also flags the model as
     * dataflow-analyzed, so lint can distinguish "analyzed and clean"
     * from "never annotated".
     */
    void markFact(VarId var, DataflowFact fact);

    /** Flag the model as dataflow-analyzed without marking a fact
     *  (frontend-parsed programs may legitimately have none). */
    void markDataflowAnalyzed() { dataflowAnalyzed_ = true; }

    /**
     * Annotate the value range of @p var (for a pointer variable: the
     * element range of the array it addresses). Seeds the abstract
     * interpreter; soundness of everything derived from it is
     * relative to the annotation containing the real input values —
     * the profiler cross-check (absint.h) verifies exactly that.
     */
    void setRange(VarId var, double lo, double hi);

    /** Record an arithmetic fact `dst = lhs op rhs`. */
    void addArith(VarId dst, ArithOp op, ArithOperand lhs,
                  ArithOperand rhs = {});

    /** Record a full arithmetic fact (accumulations, loop trips). */
    void addArith(const ArithFact& fact);

    /**
     * Mark @p var as receiving writes no recorded arith fact
     * expresses. The abstract interpreter keeps opaque variables at
     * top instead of trusting a partial def set.
     */
    void markOpaque(VarId var);

    // --- queries ----------------------------------------------------

    const std::string& name() const { return name_; }
    const std::vector<Module>& modules() const { return modules_; }
    const std::vector<Function>& functions() const { return functions_; }
    const std::vector<Variable>& variables() const { return variables_; }
    const std::vector<Dependence>& dependences() const { return deps_; }

    const Module& module(ModuleId id) const;
    const Function& function(FunctionId id) const;
    const Variable& variable(VarId id) const;

    /** Ids of all tunable (BaseType::Real) variables, ascending. */
    std::vector<VarId> realVariables() const;

    /** Find a variable by name; fatal()s when absent or ambiguous. */
    VarId findVariable(const std::string& name) const;

    /** Find by qualified "function::name"; fatal()s when absent. */
    VarId findVariable(const std::string& functionName,
                       const std::string& name) const;

    /** True when @p var carries @p fact. */
    bool hasFact(VarId var, DataflowFact fact) const;

    /** Fact bitmask of @p var. */
    std::uint8_t facts(VarId var) const;

    /** Annotated range of @p var (known == false when absent). */
    const ValueRange& range(VarId var) const;

    /** True when @p var has opaque (unmodeled) writes. */
    bool isOpaque(VarId var) const;

    /** All recorded arithmetic facts, in recording order. */
    const std::vector<ArithFact>& arithFacts() const
    {
        return arith_;
    }

    /** True when facts were recorded (or analysis explicitly ran). */
    bool dataflowAnalyzed() const { return dataflowAnalyzed_; }

  private:
    VarId addVariableImpl(FunctionId function, ModuleId module,
                          const std::string& name, TypeInfo type,
                          bool isParameter, const std::string& bindKey);
    void addDependence(VarId a, VarId b, DependenceKind kind);

    std::string name_;
    std::vector<Module> modules_;
    std::vector<Function> functions_;
    std::vector<Variable> variables_;
    std::vector<Dependence> deps_;
    std::vector<ArithFact> arith_;
    bool dataflowAnalyzed_ = false;
};

} // namespace hpcmixp::model

#endif // HPCMIXP_MODEL_PROGRAM_MODEL_H_
