#include "runtime/workspace.h"

namespace hpcmixp::runtime {

Buffer&
RunWorkspace::zeroed(std::size_t slot, std::size_t elements, Precision p)
{
    if (slot >= buffers_.size())
        buffers_.resize(slot + 1);
    buffers_[slot].reshape(elements, p);
    return buffers_[slot];
}

Buffer&
RunWorkspace::copyOf(std::size_t slot, const Buffer& src)
{
    if (slot >= buffers_.size())
        buffers_.resize(slot + 1);
    buffers_[slot].copyFrom(src);
    return buffers_[slot];
}

std::vector<double>&
RunWorkspace::doubles(std::size_t slot, std::size_t n)
{
    if (slot >= doubles_.size())
        doubles_.resize(slot + 1);
    doubles_[slot].assign(n, 0.0);
    return doubles_[slot];
}

std::vector<int>&
RunWorkspace::ints(std::size_t slot, std::size_t n)
{
    if (slot >= ints_.size())
        ints_.resize(slot + 1);
    ints_[slot].assign(n, 0);
    return ints_[slot];
}

void
RunWorkspace::reset()
{
    buffers_.clear();
    doubles_.clear();
    ints_.clear();
}

} // namespace hpcmixp::runtime
