#ifndef HPCMIXP_RUNTIME_DISPATCH_H_
#define HPCMIXP_RUNTIME_DISPATCH_H_

/**
 * @file
 * Runtime-to-compile-time precision dispatch.
 *
 * HPC-MixPBench benchmarks are written as *region templates*: each hot
 * region is a function template over the element types of the arrays and
 * scalars it touches. A tested configuration picks a Precision per
 * cluster at runtime; these helpers select the matching native template
 * instantiation, so every evaluated configuration runs real float or
 * double machine code (DESIGN.md Section 2: the substitute for
 * FloatSmith's source transformation + recompilation).
 *
 * Usage:
 *   dispatch2(pa, pb, [&](auto ta, auto tb) {
 *       using A = typename decltype(ta)::type;
 *       using B = typename decltype(tb)::type;
 *       regionKernel<A, B>(...);
 *   });
 */

#include <utility>

#include "runtime/half.h"
#include "runtime/precision.h"

namespace hpcmixp::runtime {

/** Carries an element type through a generic lambda. */
template <class T>
struct TypeTag {
    using type = T;
};

/** Dispatch over one precision (4 instantiations). */
template <class Fn>
decltype(auto)
dispatch1(Precision p, Fn&& fn)
{
    switch (p) {
    case Precision::BFloat16:
        return fn(TypeTag<BFloat16>{});
    case Precision::Float16:
        return fn(TypeTag<Half>{});
    case Precision::Float32:
        return fn(TypeTag<float>{});
    case Precision::Float64:
        break;
    }
    return fn(TypeTag<double>{});
}

/** Dispatch over two independent precisions (16 instantiations). */
template <class Fn>
decltype(auto)
dispatch2(Precision a, Precision b, Fn&& fn)
{
    return dispatch1(a, [&](auto ta) {
        return dispatch1(b, [&](auto tb) { return fn(ta, tb); });
    });
}

/** Dispatch over three independent precisions (64 instantiations). */
template <class Fn>
decltype(auto)
dispatch3(Precision a, Precision b, Precision c, Fn&& fn)
{
    return dispatch1(a, [&](auto ta) {
        return dispatch2(b, c,
                         [&](auto tb, auto tc) { return fn(ta, tb, tc); });
    });
}

/** Dispatch over four independent precisions (256 instantiations). */
template <class Fn>
decltype(auto)
dispatch4(Precision a, Precision b, Precision c, Precision d, Fn&& fn)
{
    return dispatch1(a, [&](auto ta) {
        return dispatch3(b, c, d, [&](auto tb, auto tc, auto td) {
            return fn(ta, tb, tc, td);
        });
    });
}

} // namespace hpcmixp::runtime

#endif // HPCMIXP_RUNTIME_DISPATCH_H_
