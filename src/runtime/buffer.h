#ifndef HPCMIXP_RUNTIME_BUFFER_H_
#define HPCMIXP_RUNTIME_BUFFER_H_

/**
 * @file
 * Runtime-typed array storage — the paper's mp_malloc.
 *
 * A Buffer owns a contiguous array whose element type (bfloat16, half,
 * float, or double — any rung of the active PrecisionLadder) is chosen
 * at *runtime* by the active mixed-precision configuration,
 * exactly like the paper's `mp_malloc(elements, ptr)` which sizes the
 * allocation by the configured type of `ptr`. Typed access is through
 * as<T>(), which panics on a precision mismatch: a region template must
 * only be instantiated with the precisions its configuration dictates.
 *
 * Global allocation counters are kept so tests and benches can confirm
 * the memory-footprint halving that drives the cache effects the paper
 * reports for LavaMD.
 */

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "runtime/half.h"
#include "runtime/precision.h"

namespace hpcmixp::runtime {

/** A runtime-typed owning array of bf16/half/float/double elements. */
class Buffer {
  public:
    /** An empty buffer (size 0, double precision). */
    Buffer() : Buffer(0, Precision::Float64) {}

    /** Allocate @p elements elements at precision @p p, zero-filled. */
    Buffer(std::size_t elements, Precision p);

    Buffer(const Buffer&) = default;
    Buffer(Buffer&&) noexcept = default;
    Buffer& operator=(const Buffer&) = default;
    Buffer& operator=(Buffer&&) noexcept = default;

    /** Element count. */
    std::size_t size() const { return size_; }

    /** Active element precision. */
    Precision precision() const { return precision_; }

    /** Allocated bytes. */
    std::size_t bytes() const { return size_ * byteSize(precision_); }

    /**
     * Typed mutable view. Panics when T does not match precision():
     * such a call indicates a bug in a benchmark's region dispatch.
     */
    template <class T>
    std::span<T> as();

    /** Typed read-only view; panics on a precision mismatch. */
    template <class T>
    std::span<const T> as() const;

    /** Read element @p i converted to double (checked). */
    double loadDouble(std::size_t i) const;

    /** Write @p value (converted to the buffer precision) at @p i. */
    void storeDouble(std::size_t i, double value);

    /** Overwrite all elements from doubles, converting as needed. */
    void fillFrom(std::span<const double> values);

    /**
     * Resize/retype to @p elements at @p p, zero-filling every
     * element. Reuses the existing allocation when capacity allows —
     * the workspace arena's no-realloc guarantee rests on this.
     */
    void reshape(std::size_t elements, Precision p);

    /** Become an exact copy of @p src (precision and contents),
     *  reusing the existing allocation when capacity allows. */
    void copyFrom(const Buffer& src);

    /** Copy out all elements widened to double. */
    std::vector<double> toDoubles() const;

    /** Build a buffer at @p p initialized from double data. */
    static Buffer fromDoubles(std::span<const double> values, Precision p);

  private:
    void checkAccess(Precision wanted) const;

    Precision precision_;
    std::size_t size_;
    // Exactly one of these is non-empty, matching precision_.
    std::vector<BFloat16> bf16_;
    std::vector<Half> f16_;
    std::vector<float> f32_;
    std::vector<double> f64_;
};

template <class T>
std::span<T>
Buffer::as()
{
    checkAccess(precisionOf<T>());
    if constexpr (precisionOf<T>() == Precision::BFloat16)
        return std::span<T>(reinterpret_cast<T*>(bf16_.data()), size_);
    else if constexpr (precisionOf<T>() == Precision::Float16)
        return std::span<T>(reinterpret_cast<T*>(f16_.data()), size_);
    else if constexpr (precisionOf<T>() == Precision::Float32)
        return std::span<T>(reinterpret_cast<T*>(f32_.data()), size_);
    else
        return std::span<T>(reinterpret_cast<T*>(f64_.data()), size_);
}

template <class T>
std::span<const T>
Buffer::as() const
{
    checkAccess(precisionOf<T>());
    if constexpr (precisionOf<T>() == Precision::BFloat16)
        return std::span<const T>(
            reinterpret_cast<const T*>(bf16_.data()), size_);
    else if constexpr (precisionOf<T>() == Precision::Float16)
        return std::span<const T>(
            reinterpret_cast<const T*>(f16_.data()), size_);
    else if constexpr (precisionOf<T>() == Precision::Float32)
        return std::span<const T>(
            reinterpret_cast<const T*>(f32_.data()), size_);
    else
        return std::span<const T>(
            reinterpret_cast<const T*>(f64_.data()), size_);
}

} // namespace hpcmixp::runtime

#endif // HPCMIXP_RUNTIME_BUFFER_H_
