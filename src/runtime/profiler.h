#ifndef HPCMIXP_RUNTIME_PROFILER_H_
#define HPCMIXP_RUNTIME_PROFILER_H_

/**
 * @file
 * Region-level instrumentation and profiling.
 *
 * The paper's runtime library provides instrumentation and profiling
 * alongside the mixed-precision allocation/I/O helpers (Section
 * III-A). Benchmarks mark their computational regions with
 * ScopedRegion; when profiling is enabled, the process-wide Profiler
 * accumulates per-region invocation counts and wall time, letting a
 * user see where a benchmark spends its time under different precision
 * configurations.
 *
 * Profiling is disabled by default — a disabled ScopedRegion costs one
 * branch — so search evaluations pay no instrumentation tax.
 */

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "support/timer.h"

namespace hpcmixp::runtime {

/** Accumulated statistics of one instrumented region. */
struct RegionStats {
    std::size_t invocations = 0;
    double totalSeconds = 0.0;
};

/** Process-wide, thread-safe region profile. */
class Profiler {
  public:
    /** The process-wide instance. */
    static Profiler& instance();

    /** Enable or disable collection (disabled by default). */
    void setEnabled(bool enabled);

    /** True when collection is active. */
    bool enabled() const { return enabled_; }

    /** Record one invocation of @p region taking @p seconds. */
    void record(const std::string& region, double seconds);

    /** Statistics of @p region (zeros when never recorded). */
    RegionStats stats(const std::string& region) const;

    /** All regions with data, sorted by name. */
    std::vector<std::pair<std::string, RegionStats>> all() const;

    /** Drop all collected data. */
    void reset();

  private:
    Profiler() = default;

    mutable std::mutex mutex_;
    bool enabled_ = false;
    std::map<std::string, RegionStats> regions_;
};

/** RAII timer attributing its lifetime to a named region. */
class ScopedRegion {
  public:
    explicit ScopedRegion(const char* region)
        : active_(Profiler::instance().enabled()), region_(region)
    {
    }

    ~ScopedRegion()
    {
        if (active_)
            Profiler::instance().record(region_, timer_.seconds());
    }

    ScopedRegion(const ScopedRegion&) = delete;
    ScopedRegion& operator=(const ScopedRegion&) = delete;

  private:
    bool active_;
    const char* region_;
    support::WallTimer timer_;
};

} // namespace hpcmixp::runtime

#endif // HPCMIXP_RUNTIME_PROFILER_H_
