#ifndef HPCMIXP_RUNTIME_PROFILER_H_
#define HPCMIXP_RUNTIME_PROFILER_H_

/**
 * @file
 * Region-level instrumentation and profiling.
 *
 * The paper's runtime library provides instrumentation and profiling
 * alongside the mixed-precision allocation/I/O helpers (Section
 * III-A). Benchmarks mark their computational regions with
 * ScopedRegion; when profiling is enabled, the process-wide Profiler
 * accumulates per-region invocation counts and wall time, letting a
 * user see where a benchmark spends its time under different precision
 * configurations.
 *
 * Profiling is disabled by default — a disabled ScopedRegion costs one
 * branch — so search evaluations pay no instrumentation tax.
 */

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "support/timer.h"

namespace hpcmixp::runtime {

/** Accumulated statistics of one instrumented region. */
struct RegionStats {
    std::size_t invocations = 0;
    double totalSeconds = 0.0;
};

/** Observed min/max of one value-recording site. */
struct RangeStats {
    double lo = 0.0;
    double hi = 0.0;
    std::size_t samples = 0; ///< 0 = site never recorded
};

/** Process-wide, thread-safe region profile. */
class Profiler {
  public:
    /** The process-wide instance. */
    static Profiler& instance();

    /** Enable or disable collection (disabled by default). */
    void setEnabled(bool enabled);

    /** True when collection is active. */
    bool enabled() const { return enabled_; }

    /** Record one invocation of @p region taking @p seconds. */
    void record(const std::string& region, double seconds);

    /** Statistics of @p region (zeros when never recorded). */
    RegionStats stats(const std::string& region) const;

    /** All regions with data, sorted by name. */
    std::vector<std::pair<std::string, RegionStats>> all() const;

    /** Drop all collected data. */
    void reset();

    /**
     * Enable or disable per-site value-range recording (disabled by
     * default; independent of region timing). While active, the
     * bindInput hook in benchmarks logs the min/max of every input
     * vector it binds, keyed by the model's bind key — the dynamic
     * side of the typeforge absint soundness cross-check.
     */
    void setRangeRecording(bool enabled);

    /** True when value-range recording is active. */
    bool rangeRecording() const { return rangeRecording_; }

    /** Fold @p n values spanning [@p lo, @p hi] into @p site. */
    void recordRange(const std::string& site, double lo, double hi,
                     std::size_t n);

    /** Observed range of @p site (samples == 0 when never seen). */
    RangeStats observedRange(const std::string& site) const;

    /** All recording sites with data, sorted by name. */
    std::vector<std::pair<std::string, RangeStats>> allRanges() const;

    /** Drop the recorded value ranges (keeps region timings). */
    void resetRanges();

  private:
    Profiler() = default;

    mutable std::mutex mutex_;
    bool enabled_ = false;
    bool rangeRecording_ = false;
    std::map<std::string, RegionStats> regions_;
    std::map<std::string, RangeStats> ranges_;
};

/** RAII timer attributing its lifetime to a named region. */
class ScopedRegion {
  public:
    explicit ScopedRegion(const char* region)
        : active_(Profiler::instance().enabled()), region_(region)
    {
    }

    ~ScopedRegion()
    {
        if (active_)
            Profiler::instance().record(region_, timer_.seconds());
    }

    ScopedRegion(const ScopedRegion&) = delete;
    ScopedRegion& operator=(const ScopedRegion&) = delete;

  private:
    bool active_;
    const char* region_;
    support::WallTimer timer_;
};

} // namespace hpcmixp::runtime

#endif // HPCMIXP_RUNTIME_PROFILER_H_
