#ifndef HPCMIXP_RUNTIME_HALF_H_
#define HPCMIXP_RUNTIME_HALF_H_

/**
 * @file
 * Software-emulated 16-bit floating-point element types.
 *
 * `Half` (IEEE-754 binary16) and `BFloat16` are storage formats: a
 * value lives in 16 bits in memory, arithmetic happens in float after
 * an implicit widening conversion, and a store rounds back to 16 bits
 * (round-to-nearest-even). That matches how region templates use
 * them — `x[i] = static_cast<TX>(z[i] * (y[i] - x[i-1]))` computes in
 * float and rounds once on the store — and is deliberately
 * compiler-independent: gcc 12 has no `__bf16` arithmetic and
 * `_Float16` semantics vary by target, while these emulated types
 * produce bit-identical results everywhere, which the golden-pinned
 * tests require.
 *
 * Conversion semantics (pinned by tests/runtime_test.cc):
 *  - float -> 16-bit uses round-to-nearest-even, including subnormal
 *    results; values whose magnitude rounds beyond the maximum finite
 *    16-bit value overflow to infinity.
 *  - NaN narrows to a quiet NaN, infinity stays infinity.
 *  - double -> 16-bit goes through float first (one documented
 *    double-rounding step, mirroring the Buffer's widening ladder).
 */

#include <bit>
#include <cstdint>
#include <type_traits>

#include "runtime/precision.h"

namespace hpcmixp::runtime {

namespace detail {

/** Round-to-nearest-even of (v >> shift); the carry may propagate. */
constexpr std::uint32_t
roundShiftRight(std::uint32_t v, unsigned shift)
{
    std::uint32_t out = v >> shift;
    std::uint32_t rem = v & ((1u << shift) - 1u);
    std::uint32_t half = 1u << (shift - 1u);
    if (rem > half || (rem == half && (out & 1u)))
        ++out;
    return out;
}

constexpr std::uint16_t
floatBitsToHalfBits(std::uint32_t f)
{
    std::uint32_t sign = (f >> 16) & 0x8000u;
    std::uint32_t abs = f & 0x7fffffffu;
    if (abs >= 0x7f800000u) // Inf or NaN
        return static_cast<std::uint16_t>(
            sign | (abs > 0x7f800000u ? 0x7e00u : 0x7c00u));
    int exp = static_cast<int>(abs >> 23) - 127;
    std::uint32_t man = abs & 0x007fffffu;
    if (exp >= 16) // magnitude >= 2^16: overflow to Inf
        return static_cast<std::uint16_t>(sign | 0x7c00u);
    if (exp >= -14) {
        // Normal half; a mantissa rounding carry bumps the exponent
        // (and 65520+ correctly carries into the Inf encoding).
        std::uint32_t out = roundShiftRight(man, 13);
        std::uint32_t bits =
            (static_cast<std::uint32_t>(exp + 15) << 10) + out;
        return static_cast<std::uint16_t>(sign | bits);
    }
    if (exp >= -25) {
        // Subnormal half: make the implicit bit explicit, then round
        // in units of 2^-24 (the subnormal ulp).
        std::uint32_t full = man | 0x00800000u;
        std::uint32_t out =
            roundShiftRight(full, static_cast<unsigned>(-exp - 1));
        return static_cast<std::uint16_t>(sign | out);
    }
    return static_cast<std::uint16_t>(sign); // underflows to +/-0
}

constexpr std::uint32_t
halfBitsToFloatBits(std::uint16_t h)
{
    std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
    std::uint32_t exp = (h >> 10) & 0x1fu;
    std::uint32_t man = h & 0x3ffu;
    if (exp == 31u) // Inf / NaN
        return sign | 0x7f800000u | (man << 13);
    if (exp == 0u) {
        if (man == 0u)
            return sign; // +/-0
        // Subnormal half: renormalize into a float.
        unsigned extra = 0;
        std::uint32_t m = man;
        while (!(m & 0x400u)) {
            m <<= 1;
            ++extra;
        }
        // value = 1.xxx * 2^(-14 - extra)  ->  biased float exponent
        std::uint32_t fexp = 113u - extra;
        return sign | (fexp << 23) | ((m & 0x3ffu) << 13);
    }
    return sign | ((exp + 112u) << 23) | (man << 13);
}

constexpr std::uint16_t
floatBitsToBf16Bits(std::uint32_t f)
{
    if ((f & 0x7fffffffu) > 0x7f800000u) // NaN: truncate but quiet
        return static_cast<std::uint16_t>((f >> 16) | 0x0040u);
    // Round-to-nearest-even on the dropped low 16 bits; the carry
    // propagates into the exponent, overflowing large finites to Inf.
    std::uint32_t lsb = (f >> 16) & 1u;
    return static_cast<std::uint16_t>((f + 0x7fffu + lsb) >> 16);
}

} // namespace detail

/** IEEE-754 binary16 storage type (float compute, round on store). */
struct Half {
    std::uint16_t bits = 0;

    constexpr Half() = default;

    template <class U,
              class = std::enable_if_t<std::is_convertible_v<U, float>>>
    constexpr Half(U value)
        : bits(detail::floatBitsToHalfBits(
              std::bit_cast<std::uint32_t>(static_cast<float>(value))))
    {
    }

    constexpr operator float() const
    {
        return std::bit_cast<float>(detail::halfBitsToFloatBits(bits));
    }

    // Compound assignment computes in float and rounds on the store,
    // like every other use of the type.
    constexpr Half&
    operator+=(float v)
    {
        return *this = Half(static_cast<float>(*this) + v);
    }
    constexpr Half&
    operator-=(float v)
    {
        return *this = Half(static_cast<float>(*this) - v);
    }
    constexpr Half&
    operator*=(float v)
    {
        return *this = Half(static_cast<float>(*this) * v);
    }
    constexpr Half&
    operator/=(float v)
    {
        return *this = Half(static_cast<float>(*this) / v);
    }

    static constexpr Half
    fromBits(std::uint16_t b)
    {
        Half h;
        h.bits = b;
        return h;
    }
};

/** bfloat16 storage type (float compute, round on store). */
struct BFloat16 {
    std::uint16_t bits = 0;

    constexpr BFloat16() = default;

    template <class U,
              class = std::enable_if_t<std::is_convertible_v<U, float>>>
    constexpr BFloat16(U value)
        : bits(detail::floatBitsToBf16Bits(
              std::bit_cast<std::uint32_t>(static_cast<float>(value))))
    {
    }

    constexpr operator float() const
    {
        return std::bit_cast<float>(static_cast<std::uint32_t>(bits)
                                    << 16);
    }

    constexpr BFloat16&
    operator+=(float v)
    {
        return *this = BFloat16(static_cast<float>(*this) + v);
    }
    constexpr BFloat16&
    operator-=(float v)
    {
        return *this = BFloat16(static_cast<float>(*this) - v);
    }
    constexpr BFloat16&
    operator*=(float v)
    {
        return *this = BFloat16(static_cast<float>(*this) * v);
    }
    constexpr BFloat16&
    operator/=(float v)
    {
        return *this = BFloat16(static_cast<float>(*this) / v);
    }

    static constexpr BFloat16
    fromBits(std::uint16_t b)
    {
        BFloat16 v;
        v.bits = b;
        return v;
    }
};

static_assert(sizeof(Half) == 2 && sizeof(BFloat16) == 2,
              "16-bit storage types must be exactly two bytes");

template <>
constexpr Precision
precisionOf<Half>()
{
    return Precision::Float16;
}

template <>
constexpr Precision
precisionOf<BFloat16>()
{
    return Precision::BFloat16;
}

} // namespace hpcmixp::runtime

// Region templates pick their accumulator type as
// std::common_type_t<TX, TY>. Teach the trait that a 16-bit storage
// type combined with an arithmetic type accumulates as float would
// (float stays float, double stays double), two identical storage
// types keep their storage rounding, and the two 16-bit formats meet
// in float — the type their arithmetic happens in.
namespace std {

template <class T>
struct common_type<hpcmixp::runtime::Half, T>
    : common_type<float, T> {
};
template <class T>
struct common_type<T, hpcmixp::runtime::Half>
    : common_type<T, float> {
};
template <class T>
struct common_type<hpcmixp::runtime::BFloat16, T>
    : common_type<float, T> {
};
template <class T>
struct common_type<T, hpcmixp::runtime::BFloat16>
    : common_type<T, float> {
};
template <>
struct common_type<hpcmixp::runtime::Half, hpcmixp::runtime::Half> {
    using type = hpcmixp::runtime::Half;
};
template <>
struct common_type<hpcmixp::runtime::BFloat16,
                   hpcmixp::runtime::BFloat16> {
    using type = hpcmixp::runtime::BFloat16;
};
template <>
struct common_type<hpcmixp::runtime::Half,
                   hpcmixp::runtime::BFloat16> {
    using type = float;
};
template <>
struct common_type<hpcmixp::runtime::BFloat16,
                   hpcmixp::runtime::Half> {
    using type = float;
};

} // namespace std

#endif // HPCMIXP_RUNTIME_HALF_H_
