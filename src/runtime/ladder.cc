#include "runtime/ladder.h"

#include "support/logging.h"
#include "support/string_util.h"

namespace hpcmixp::runtime {

using support::fatal;
using support::strCat;

namespace {

Precision
parseRung(const std::string& token)
{
    std::string name = support::toLower(support::trim(token));
    if (name == "double" || name == "f64" || name == "float64")
        return Precision::Float64;
    if (name == "float" || name == "single" || name == "f32" ||
        name == "float32")
        return Precision::Float32;
    if (name == "half" || name == "f16" || name == "float16" ||
        name == "fp16")
        return Precision::Float16;
    if (name == "bfloat16" || name == "bf16")
        return Precision::BFloat16;
    fatal(strCat("ladder: unknown precision '", token,
                 "' (expected double, float, half, or bfloat16)"));
}

std::string
rungToken(Precision p)
{
    switch (p) {
    case Precision::Float64:
        return "f64";
    case Precision::Float32:
        return "f32";
    case Precision::Float16:
        return "f16";
    case Precision::BFloat16:
        break;
    }
    return "bf16";
}

} // namespace

PrecisionLadder::PrecisionLadder(std::vector<Precision> rungs)
    : rungs_(std::move(rungs))
{
    if (rungs_.empty())
        fatal("ladder: needs at least one rung");
    if (rungs_.front() != Precision::Float64)
        fatal("ladder: rung 0 must be double (the reference tier)");
    for (std::size_t i = 1; i < rungs_.size(); ++i)
        if (!(rungs_[i] < rungs_[i - 1]))
            fatal(strCat("ladder: rung ", i, " (",
                         precisionName(rungs_[i]),
                         ") must be strictly lower precision than ",
                         precisionName(rungs_[i - 1])));
}

PrecisionLadder
PrecisionLadder::parse(const std::string& spec)
{
    std::vector<Precision> rungs;
    for (const std::string& token : support::split(spec, ','))
        rungs.push_back(parseRung(token));
    return PrecisionLadder(std::move(rungs));
}

Precision
PrecisionLadder::at(std::size_t level) const
{
    HPCMIXP_ASSERT(level < rungs_.size(), "ladder level out of range");
    return rungs_[level];
}

std::string
PrecisionLadder::describe() const
{
    std::string out;
    for (std::size_t i = 0; i < rungs_.size(); ++i) {
        if (i)
            out += ':';
        out += rungToken(rungs_[i]);
    }
    return out;
}

} // namespace hpcmixp::runtime
