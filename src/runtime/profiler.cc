#include "runtime/profiler.h"

#include <algorithm>

namespace hpcmixp::runtime {

Profiler&
Profiler::instance()
{
    static Profiler profiler;
    return profiler;
}

void
Profiler::setEnabled(bool enabled)
{
    std::lock_guard<std::mutex> lock(mutex_);
    enabled_ = enabled;
}

void
Profiler::record(const std::string& region, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!enabled_)
        return;
    RegionStats& stats = regions_[region];
    ++stats.invocations;
    stats.totalSeconds += seconds;
}

RegionStats
Profiler::stats(const std::string& region) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = regions_.find(region);
    return it == regions_.end() ? RegionStats{} : it->second;
}

std::vector<std::pair<std::string, RegionStats>>
Profiler::all() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return {regions_.begin(), regions_.end()};
}

void
Profiler::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    regions_.clear();
}

void
Profiler::setRangeRecording(bool enabled)
{
    std::lock_guard<std::mutex> lock(mutex_);
    rangeRecording_ = enabled;
}

void
Profiler::recordRange(const std::string& site, double lo, double hi,
                      std::size_t n)
{
    if (n == 0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (!rangeRecording_)
        return;
    RangeStats& stats = ranges_[site];
    if (stats.samples == 0) {
        stats.lo = lo;
        stats.hi = hi;
    } else {
        stats.lo = std::min(stats.lo, lo);
        stats.hi = std::max(stats.hi, hi);
    }
    stats.samples += n;
}

RangeStats
Profiler::observedRange(const std::string& site) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = ranges_.find(site);
    return it == ranges_.end() ? RangeStats{} : it->second;
}

std::vector<std::pair<std::string, RangeStats>>
Profiler::allRanges() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return {ranges_.begin(), ranges_.end()};
}

void
Profiler::resetRanges()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ranges_.clear();
}

} // namespace hpcmixp::runtime
