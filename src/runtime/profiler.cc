#include "runtime/profiler.h"

namespace hpcmixp::runtime {

Profiler&
Profiler::instance()
{
    static Profiler profiler;
    return profiler;
}

void
Profiler::setEnabled(bool enabled)
{
    std::lock_guard<std::mutex> lock(mutex_);
    enabled_ = enabled;
}

void
Profiler::record(const std::string& region, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!enabled_)
        return;
    RegionStats& stats = regions_[region];
    ++stats.invocations;
    stats.totalSeconds += seconds;
}

RegionStats
Profiler::stats(const std::string& region) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = regions_.find(region);
    return it == regions_.end() ? RegionStats{} : it->second;
}

std::vector<std::pair<std::string, RegionStats>>
Profiler::all() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return {regions_.begin(), regions_.end()};
}

void
Profiler::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    regions_.clear();
}

} // namespace hpcmixp::runtime
