#ifndef HPCMIXP_RUNTIME_MP_IO_H_
#define HPCMIXP_RUNTIME_MP_IO_H_

/**
 * @file
 * Mixed-precision binary file I/O — the paper's mp_fread / mp_fwrite.
 *
 * Benchmark input/output files are written at a fixed *disk* precision
 * (the original application's type, usually double). A tuned program may
 * hold the same data at a different *memory* precision. These functions
 * read and write binary files converting between the declared disk type
 * and the Buffer's runtime precision, exactly like Listing 3's
 * `mp_fread(ptr, DOUBLE, elements, fd)`.
 */

#include <iosfwd>
#include <string>

#include "runtime/buffer.h"
#include "runtime/precision.h"

namespace hpcmixp::runtime {

/**
 * Read @p buffer.size() elements stored at @p diskType from @p in into
 * @p buffer, converting to the buffer's precision. fatal()s on short
 * reads or stream errors.
 */
void mpFread(Buffer& buffer, Precision diskType, std::istream& in);

/**
 * Write the elements of @p buffer to @p out at @p diskType, converting
 * from the buffer's precision. fatal()s on stream errors.
 */
void mpFwrite(const Buffer& buffer, Precision diskType, std::ostream& out);

/** Convenience: read a whole file (sized by @p elements). */
Buffer mpReadFile(const std::string& path, Precision diskType,
                  std::size_t elements, Precision memoryType);

/** Convenience: write a buffer to a file at @p diskType. */
void mpWriteFile(const Buffer& buffer, Precision diskType,
                 const std::string& path);

} // namespace hpcmixp::runtime

#endif // HPCMIXP_RUNTIME_MP_IO_H_
