#ifndef HPCMIXP_RUNTIME_LADDER_H_
#define HPCMIXP_RUNTIME_LADDER_H_

/**
 * @file
 * The precision ladder a tuning campaign searches over.
 *
 * A ladder is an ordered list of precisions, strictly descending:
 * rung 0 is always Float64 (the reference/baseline tier), and each
 * later rung is strictly lower precision than the one before. A
 * `search::Config` stores one rung index ("level") per cluster, so
 * the classic two-tier campaign is simply the default ladder
 * {double, float} and a site's level doubles as the historical
 * narrow/keep bit.
 *
 * The ladder is part of the evaluation-cache identity: its
 * describe() string ("f64:f32:f16") feeds MemoFingerprint, so memo
 * segments and checkpoints recorded under one ladder are recoverably
 * rejected under another (CheckpointMismatch), never misread.
 */

#include <cstddef>
#include <string>
#include <vector>

#include "runtime/precision.h"

namespace hpcmixp::runtime {

/** An ordered, strictly descending list of precisions. */
class PrecisionLadder {
  public:
    /** The classic two-tier ladder {double, float}. */
    PrecisionLadder()
        : rungs_{Precision::Float64, Precision::Float32}
    {
    }

    /** Ladder with explicit rungs; fatal unless rung 0 is Float64 and
     *  every later rung is strictly lower precision. */
    explicit PrecisionLadder(std::vector<Precision> rungs);

    /**
     * Parse a comma-separated spec like "double,float,half". Accepted
     * rung names: double, float, half (fp16), bfloat16 (bf16). Fatal
     * on unknown names or an invalid ordering.
     */
    static PrecisionLadder parse(const std::string& spec);

    /** Number of rungs (>= 1). */
    std::size_t rungs() const { return rungs_.size(); }

    /** Precision bound to rung @p level (checked). */
    Precision at(std::size_t level) const;

    /** Deepest level a cluster can take (= rungs() - 1). */
    std::size_t maxLevel() const { return rungs_.size() - 1; }

    /** Compact identity string, e.g. "f64:f32" or "f64:f32:bf16".
     *  The default ladder's describe() matches the historical
     *  MemoFingerprint default, keeping two-tier caches valid. */
    std::string describe() const;

    bool operator==(const PrecisionLadder&) const = default;

  private:
    std::vector<Precision> rungs_;
};

} // namespace hpcmixp::runtime

#endif // HPCMIXP_RUNTIME_LADDER_H_
