#ifndef HPCMIXP_RUNTIME_PRECISION_H_
#define HPCMIXP_RUNTIME_PRECISION_H_

/**
 * @file
 * Floating-point precision levels.
 *
 * The paper's suite targets two levels: IEEE-754 binary64 ("double") and
 * binary32 ("single"). The enum is deliberately extensible in ordering —
 * lower enumerator value means lower precision — should half precision be
 * added later (the paper lists p=3 architectures as future scope).
 */

#include <cstddef>
#include <string>

namespace hpcmixp::runtime {

/** Available floating-point precisions, lowest first. */
enum class Precision {
    Float32 = 0, ///< IEEE-754 binary32 ("single")
    Float64 = 1, ///< IEEE-754 binary64 ("double")
};

/** Number of bytes of one element at @p p. */
constexpr std::size_t
byteSize(Precision p)
{
    return p == Precision::Float32 ? 4 : 8;
}

/** Human-readable name ("float" / "double"). */
inline std::string
precisionName(Precision p)
{
    return p == Precision::Float32 ? "float" : "double";
}

/** The precision of a C++ element type. */
template <class T>
constexpr Precision precisionOf();

template <>
constexpr Precision
precisionOf<float>()
{
    return Precision::Float32;
}

template <>
constexpr Precision
precisionOf<double>()
{
    return Precision::Float64;
}

} // namespace hpcmixp::runtime

#endif // HPCMIXP_RUNTIME_PRECISION_H_
