#ifndef HPCMIXP_RUNTIME_PRECISION_H_
#define HPCMIXP_RUNTIME_PRECISION_H_

/**
 * @file
 * Floating-point precision levels.
 *
 * The paper's suite targets two levels: IEEE-754 binary64 ("double")
 * and binary32 ("single"). This reproduction extends the suite with
 * the sub-single storage formats of modern mixed-precision practice:
 * IEEE-754 binary16 ("half") and bfloat16.
 *
 * Ordering contract (relied upon throughout the search layer and
 * pinned by static_asserts below plus tests/runtime_test.cc): a
 * *lower* enumerator value means *lower* precision. Precision here is
 * ordered by significand width — bfloat16 (8 bits) < half (11) <
 * float (24) < double (53) — so comparing enumerators compares
 * representable accuracy, not range. New formats (FP8, posits) must
 * slot into this total order.
 */

#include <cstddef>
#include <string>

namespace hpcmixp::runtime {

/** Available floating-point precisions, lowest first. */
enum class Precision {
    BFloat16 = 0, ///< bfloat16 (8-bit significand, float range)
    Float16 = 1,  ///< IEEE-754 binary16 ("half")
    Float32 = 2,  ///< IEEE-754 binary32 ("single")
    Float64 = 3,  ///< IEEE-754 binary64 ("double")
};

// The ordering contract: lower enumerator value == lower precision.
static_assert(Precision::BFloat16 < Precision::Float16,
              "bfloat16 has a narrower significand than binary16");
static_assert(Precision::Float16 < Precision::Float32,
              "binary16 has a narrower significand than binary32");
static_assert(Precision::Float32 < Precision::Float64,
              "binary32 has a narrower significand than binary64");

/** Number of bytes of one element at @p p. */
constexpr std::size_t
byteSize(Precision p)
{
    switch (p) {
    case Precision::BFloat16:
    case Precision::Float16:
        return 2;
    case Precision::Float32:
        return 4;
    case Precision::Float64:
        break;
    }
    return 8;
}

/** Significand width in bits (including the implicit leading bit). */
constexpr std::size_t
significandBits(Precision p)
{
    switch (p) {
    case Precision::BFloat16:
        return 8;
    case Precision::Float16:
        return 11;
    case Precision::Float32:
        return 24;
    case Precision::Float64:
        break;
    }
    return 53;
}

// Enumerator order must agree with significand width.
static_assert(significandBits(Precision::BFloat16) <
                  significandBits(Precision::Float16),
              "enum order must track significand width");
static_assert(significandBits(Precision::Float16) <
                  significandBits(Precision::Float32),
              "enum order must track significand width");
static_assert(significandBits(Precision::Float32) <
                  significandBits(Precision::Float64),
              "enum order must track significand width");

/**
 * Largest finite value representable at @p p. Note the ordering
 * inversion the four-rung ladder exposes: bfloat16 keeps float's
 * 8-bit exponent, so its range vastly exceeds binary16's despite the
 * narrower significand — per-rung range safety is NOT monotone in
 * the precision order.
 */
constexpr double
finiteMax(Precision p)
{
    switch (p) {
    case Precision::BFloat16:
        return 3.38953138925153547590470800371487867e+38;
    case Precision::Float16:
        return 65504.0;
    case Precision::Float32:
        return 3.40282346638528859811704183484516925e+38;
    case Precision::Float64:
        break;
    }
    return 1.79769313486231570814527423731704357e+308;
}

/** Smallest positive normal value at @p p. */
constexpr double
minNormal(Precision p)
{
    switch (p) {
    case Precision::BFloat16:
    case Precision::Float32:
        return 1.17549435082228750796873653722224568e-38;
    case Precision::Float16:
        return 6.103515625e-05; // 2^-14
    case Precision::Float64:
        break;
    }
    return 2.22507385850720138309023271733240406e-308;
}

/** Unit roundoff u = 2^-significandBits (round-to-nearest). */
constexpr double
unitRoundoff(Precision p)
{
    switch (p) {
    case Precision::BFloat16:
        return 0.00390625; // 2^-8
    case Precision::Float16:
        return 4.8828125e-04; // 2^-11
    case Precision::Float32:
        return 5.9604644775390625e-08; // 2^-24
    case Precision::Float64:
        break;
    }
    return 1.1102230246251565404236316680908203125e-16; // 2^-53
}

/** Human-readable name ("bfloat16" / "half" / "float" / "double"). */
inline std::string
precisionName(Precision p)
{
    switch (p) {
    case Precision::BFloat16:
        return "bfloat16";
    case Precision::Float16:
        return "half";
    case Precision::Float32:
        return "float";
    case Precision::Float64:
        break;
    }
    return "double";
}

/** The precision of a C++ element type. */
template <class T>
constexpr Precision precisionOf();

template <>
constexpr Precision
precisionOf<float>()
{
    return Precision::Float32;
}

template <>
constexpr Precision
precisionOf<double>()
{
    return Precision::Float64;
}

// precisionOf<Half>() and precisionOf<BFloat16>() live in
// runtime/half.h next to the emulated element types themselves.

} // namespace hpcmixp::runtime

#endif // HPCMIXP_RUNTIME_PRECISION_H_
