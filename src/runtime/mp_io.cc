#include "runtime/mp_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "support/logging.h"

namespace hpcmixp::runtime {

namespace {

using support::fatal;
using support::strCat;

template <class Disk>
void
readConvert(Buffer& buffer, std::istream& in)
{
    std::vector<Disk> disk(buffer.size());
    in.read(reinterpret_cast<char*>(disk.data()),
            static_cast<std::streamsize>(disk.size() * sizeof(Disk)));
    if (static_cast<std::size_t>(in.gcount()) !=
        disk.size() * sizeof(Disk))
        fatal(strCat("mpFread: short read (wanted ",
                     disk.size() * sizeof(Disk), " bytes, got ",
                     in.gcount(), ")"));
    for (std::size_t i = 0; i < buffer.size(); ++i)
        buffer.storeDouble(i, static_cast<double>(disk[i]));
}

template <class Disk>
void
writeConvert(const Buffer& buffer, std::ostream& out)
{
    std::vector<Disk> disk(buffer.size());
    for (std::size_t i = 0; i < buffer.size(); ++i)
        disk[i] = static_cast<Disk>(buffer.loadDouble(i));
    out.write(reinterpret_cast<const char*>(disk.data()),
              static_cast<std::streamsize>(disk.size() * sizeof(Disk)));
    if (!out)
        fatal("mpFwrite: stream write failed");
}

} // namespace

void
mpFread(Buffer& buffer, Precision diskType, std::istream& in)
{
    switch (diskType) {
    case Precision::BFloat16:
        readConvert<BFloat16>(buffer, in);
        break;
    case Precision::Float16:
        readConvert<Half>(buffer, in);
        break;
    case Precision::Float32:
        readConvert<float>(buffer, in);
        break;
    case Precision::Float64:
        readConvert<double>(buffer, in);
        break;
    }
}

void
mpFwrite(const Buffer& buffer, Precision diskType, std::ostream& out)
{
    switch (diskType) {
    case Precision::BFloat16:
        writeConvert<BFloat16>(buffer, out);
        break;
    case Precision::Float16:
        writeConvert<Half>(buffer, out);
        break;
    case Precision::Float32:
        writeConvert<float>(buffer, out);
        break;
    case Precision::Float64:
        writeConvert<double>(buffer, out);
        break;
    }
}

Buffer
mpReadFile(const std::string& path, Precision diskType,
           std::size_t elements, Precision memoryType)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal(strCat("mpReadFile: cannot open '", path, "'"));
    Buffer buffer(elements, memoryType);
    mpFread(buffer, diskType, in);
    return buffer;
}

void
mpWriteFile(const Buffer& buffer, Precision diskType,
            const std::string& path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal(strCat("mpWriteFile: cannot open '", path, "'"));
    mpFwrite(buffer, diskType, out);
}

} // namespace hpcmixp::runtime
