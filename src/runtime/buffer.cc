#include "runtime/buffer.h"

#include "support/logging.h"

namespace hpcmixp::runtime {

Buffer::Buffer(std::size_t elements, Precision p)
    : precision_(p), size_(elements)
{
    switch (p) {
    case Precision::BFloat16:
        bf16_.assign(elements, BFloat16{});
        break;
    case Precision::Float16:
        f16_.assign(elements, Half{});
        break;
    case Precision::Float32:
        f32_.assign(elements, 0.0f);
        break;
    case Precision::Float64:
        f64_.assign(elements, 0.0);
        break;
    }
}

void
Buffer::checkAccess(Precision wanted) const
{
    HPCMIXP_ASSERT(wanted == precision_,
                   support::strCat("typed access as ",
                                   precisionName(wanted),
                                   " on a ", precisionName(precision_),
                                   " buffer"));
}

double
Buffer::loadDouble(std::size_t i) const
{
    HPCMIXP_ASSERT(i < size_, "buffer index out of range");
    switch (precision_) {
    case Precision::BFloat16:
        return static_cast<double>(static_cast<float>(bf16_[i]));
    case Precision::Float16:
        return static_cast<double>(static_cast<float>(f16_[i]));
    case Precision::Float32:
        return static_cast<double>(f32_[i]);
    case Precision::Float64:
        break;
    }
    return f64_[i];
}

void
Buffer::storeDouble(std::size_t i, double value)
{
    HPCMIXP_ASSERT(i < size_, "buffer index out of range");
    switch (precision_) {
    case Precision::BFloat16:
        bf16_[i] = BFloat16(value);
        break;
    case Precision::Float16:
        f16_[i] = Half(value);
        break;
    case Precision::Float32:
        f32_[i] = static_cast<float>(value);
        break;
    case Precision::Float64:
        f64_[i] = value;
        break;
    }
}

void
Buffer::fillFrom(std::span<const double> values)
{
    HPCMIXP_ASSERT(values.size() == size_,
                   "fillFrom size mismatch");
    switch (precision_) {
    case Precision::BFloat16:
        for (std::size_t i = 0; i < size_; ++i)
            bf16_[i] = BFloat16(values[i]);
        break;
    case Precision::Float16:
        for (std::size_t i = 0; i < size_; ++i)
            f16_[i] = Half(values[i]);
        break;
    case Precision::Float32:
        for (std::size_t i = 0; i < size_; ++i)
            f32_[i] = static_cast<float>(values[i]);
        break;
    case Precision::Float64:
        for (std::size_t i = 0; i < size_; ++i)
            f64_[i] = values[i];
        break;
    }
}

void
Buffer::reshape(std::size_t elements, Precision p)
{
    precision_ = p;
    size_ = elements;
    // clear() keeps capacity, so every lane retains its high-water
    // allocation across precision flips.
    bf16_.clear();
    f16_.clear();
    f32_.clear();
    f64_.clear();
    switch (p) {
    case Precision::BFloat16:
        bf16_.assign(elements, BFloat16{});
        break;
    case Precision::Float16:
        f16_.assign(elements, Half{});
        break;
    case Precision::Float32:
        f32_.assign(elements, 0.0f);
        break;
    case Precision::Float64:
        f64_.assign(elements, 0.0);
        break;
    }
}

void
Buffer::copyFrom(const Buffer& src)
{
    precision_ = src.precision_;
    size_ = src.size_;
    bf16_.clear();
    f16_.clear();
    f32_.clear();
    f64_.clear();
    switch (precision_) {
    case Precision::BFloat16:
        bf16_.assign(src.bf16_.begin(), src.bf16_.end());
        break;
    case Precision::Float16:
        f16_.assign(src.f16_.begin(), src.f16_.end());
        break;
    case Precision::Float32:
        f32_.assign(src.f32_.begin(), src.f32_.end());
        break;
    case Precision::Float64:
        f64_.assign(src.f64_.begin(), src.f64_.end());
        break;
    }
}

std::vector<double>
Buffer::toDoubles() const
{
    std::vector<double> out(size_);
    switch (precision_) {
    case Precision::BFloat16:
        for (std::size_t i = 0; i < size_; ++i)
            out[i] = static_cast<double>(static_cast<float>(bf16_[i]));
        break;
    case Precision::Float16:
        for (std::size_t i = 0; i < size_; ++i)
            out[i] = static_cast<double>(static_cast<float>(f16_[i]));
        break;
    case Precision::Float32:
        for (std::size_t i = 0; i < size_; ++i)
            out[i] = static_cast<double>(f32_[i]);
        break;
    case Precision::Float64:
        out.assign(f64_.begin(), f64_.end());
        break;
    }
    return out;
}

Buffer
Buffer::fromDoubles(std::span<const double> values, Precision p)
{
    Buffer buf(values.size(), p);
    buf.fillFrom(values);
    return buf;
}

} // namespace hpcmixp::runtime
