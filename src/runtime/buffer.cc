#include "runtime/buffer.h"

#include "support/logging.h"

namespace hpcmixp::runtime {

Buffer::Buffer(std::size_t elements, Precision p)
    : precision_(p), size_(elements)
{
    if (p == Precision::Float32)
        f32_.assign(elements, 0.0f);
    else
        f64_.assign(elements, 0.0);
}

void
Buffer::checkAccess(Precision wanted) const
{
    HPCMIXP_ASSERT(wanted == precision_,
                   support::strCat("typed access as ",
                                   precisionName(wanted),
                                   " on a ", precisionName(precision_),
                                   " buffer"));
}

double
Buffer::loadDouble(std::size_t i) const
{
    HPCMIXP_ASSERT(i < size_, "buffer index out of range");
    return precision_ == Precision::Float32
               ? static_cast<double>(f32_[i])
               : f64_[i];
}

void
Buffer::storeDouble(std::size_t i, double value)
{
    HPCMIXP_ASSERT(i < size_, "buffer index out of range");
    if (precision_ == Precision::Float32)
        f32_[i] = static_cast<float>(value);
    else
        f64_[i] = value;
}

void
Buffer::fillFrom(std::span<const double> values)
{
    HPCMIXP_ASSERT(values.size() == size_,
                   "fillFrom size mismatch");
    if (precision_ == Precision::Float32) {
        for (std::size_t i = 0; i < size_; ++i)
            f32_[i] = static_cast<float>(values[i]);
    } else {
        for (std::size_t i = 0; i < size_; ++i)
            f64_[i] = values[i];
    }
}

void
Buffer::reshape(std::size_t elements, Precision p)
{
    precision_ = p;
    size_ = elements;
    // clear() keeps capacity, so both lanes retain their high-water
    // allocation across precision flips.
    if (p == Precision::Float32) {
        f64_.clear();
        f32_.assign(elements, 0.0f);
    } else {
        f32_.clear();
        f64_.assign(elements, 0.0);
    }
}

void
Buffer::copyFrom(const Buffer& src)
{
    precision_ = src.precision_;
    size_ = src.size_;
    if (precision_ == Precision::Float32) {
        f64_.clear();
        f32_.assign(src.f32_.begin(), src.f32_.end());
    } else {
        f32_.clear();
        f64_.assign(src.f64_.begin(), src.f64_.end());
    }
}

std::vector<double>
Buffer::toDoubles() const
{
    std::vector<double> out(size_);
    if (precision_ == Precision::Float32) {
        for (std::size_t i = 0; i < size_; ++i)
            out[i] = static_cast<double>(f32_[i]);
    } else {
        out.assign(f64_.begin(), f64_.end());
    }
    return out;
}

Buffer
Buffer::fromDoubles(std::span<const double> values, Precision p)
{
    Buffer buf(values.size(), p);
    buf.fillFrom(values);
    return buf;
}

} // namespace hpcmixp::runtime
