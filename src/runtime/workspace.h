#ifndef HPCMIXP_RUNTIME_WORKSPACE_H_
#define HPCMIXP_RUNTIME_WORKSPACE_H_

/**
 * @file
 * Reusable scratch arena for benchmark execution.
 *
 * A RunWorkspace owns the output and scratch storage a benchmark's
 * execute() needs, keyed by small slot indices. Acquiring a slot
 * resizes and re-initializes the slot's storage *in place*: across the
 * thousands of evaluations of a tuning campaign each slot reaches its
 * high-water allocation once and the allocator drops out of the timed
 * region entirely.
 *
 * Acquisition always re-initializes (zero-fill or copy), so a
 * workspace carries no state between runs: executing configuration A,
 * then B, then A again yields bit-identical outputs (pinned by the
 * eval_pipeline tests).
 *
 * A workspace is not thread-safe. Use one per evaluation thread — the
 * tuner keeps one thread_local instance, which composes with the
 * batch-parallel `--search-jobs` evaluator under TSan.
 */

#include <cstddef>
#include <deque>
#include <vector>

#include "runtime/buffer.h"
#include "runtime/precision.h"

namespace hpcmixp::runtime {

/** Per-thread arena of recyclable buffers and scratch vectors. */
class RunWorkspace {
  public:
    RunWorkspace() = default;
    RunWorkspace(const RunWorkspace&) = delete;
    RunWorkspace& operator=(const RunWorkspace&) = delete;

    /** Zero-filled buffer of @p elements at @p p in slot @p slot. */
    Buffer& zeroed(std::size_t slot, std::size_t elements, Precision p);

    /** Buffer in slot @p slot holding an exact copy of @p src
     *  (the mutable working copy of a cached input). */
    Buffer& copyOf(std::size_t slot, const Buffer& src);

    /** Zero-filled double scratch vector in slot @p slot. */
    std::vector<double>& doubles(std::size_t slot, std::size_t n);

    /** Zero-filled int scratch vector in slot @p slot. */
    std::vector<int>& ints(std::size_t slot, std::size_t n);

    /** Number of buffer slots ever touched (test hook). */
    std::size_t bufferSlots() const { return buffers_.size(); }

    /** Drop all storage, returning the arena to its initial state. */
    void reset();

  private:
    // Deques: acquiring a new slot must not invalidate references to
    // slots handed out earlier in the same execute().
    std::deque<Buffer> buffers_;
    std::deque<std::vector<double>> doubles_;
    std::deque<std::vector<int>> ints_;
};

} // namespace hpcmixp::runtime

#endif // HPCMIXP_RUNTIME_WORKSPACE_H_
