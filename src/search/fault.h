#ifndef HPCMIXP_SEARCH_FAULT_H_
#define HPCMIXP_SEARCH_FAULT_H_

/**
 * @file
 * Deterministic fault injection for stress-testing the search layer.
 *
 * The paper's campaigns run under a 24-hour SLURM budget where node
 * crashes, stragglers and flaky evaluations are routine. FaultyProblem
 * decorates any SearchProblem with seeded, reproducible injection of
 * those failure modes so every strategy can be exercised against them
 * unmodified; the ResiliencePolicy in SearchContext (retries, backoff,
 * per-evaluation deadline) is the machinery that recovers from them.
 *
 * Fault decisions are a pure function of (seed, configuration key,
 * attempt index): a given attempt on a given configuration always
 * draws the same fault, so failure scenarios replay exactly, while a
 * *retry* of the same configuration re-draws — injected crashes and
 * hangs are transient, like the real thing.
 */

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "search/problem.h"

namespace hpcmixp::search {

/** Per-attempt fault probabilities; all-zero disables injection. */
struct FaultPlan {
    double crashRate = 0.0;    ///< injected transient crash (RuntimeFail)
    double hangRate = 0.0;     ///< straggler stall before evaluating
    double nanRate = 0.0;      ///< destroyed (NaN-quality) output
    double hangSeconds = 0.02; ///< stall duration of a Hang fault
    std::uint64_t seed = 2020; ///< decision-stream seed

    /**
     * Raw (process-killing) fault rates. Unlike the simulated kinds
     * above, these make the evaluation attempt genuinely abort(),
     * spin forever, or write through a wild pointer — they are only
     * legal when evaluations run in forked children (sandboxed below),
     * where the parent contains and classifies the death.
     */
    double rawCrashRate = 0.0; ///< child abort()
    double rawHangRate = 0.0;  ///< child spins until killed on deadline
    double rawSegvRate = 0.0;  ///< child SIGSEGV via wild store

    /**
     * Set by the tuner when evaluations execute under
     * --isolation=fork. Constructing a FaultyProblem with raw rates
     * but without this flag is a recoverable configuration error.
     */
    bool sandboxed = false;

    bool rawEnabled() const
    {
        return rawCrashRate > 0.0 || rawHangRate > 0.0 ||
               rawSegvRate > 0.0;
    }

    bool enabled() const
    {
        return crashRate > 0.0 || hangRate > 0.0 || nanRate > 0.0 ||
               rawEnabled();
    }
};

/** The fault drawn for one evaluation attempt. */
enum class FaultKind { None, Crash, Hang, Nan, RawCrash, RawHang, RawSegv };

/** A raw fault pending execution inside a sandboxed child. */
enum class RawFault { None, Crash, Hang, Segv };

/**
 * Hand a drawn raw fault to the downstream sandbox executor. The
 * channel is thread-local: FaultyProblem sets it just before calling
 * the inner problem on the same thread, and the tuner's sandboxed
 * evaluation path takes it and executes it inside the forked child.
 */
void setPendingRawFault(RawFault fault);

/** Consume (and clear) the pending raw fault of this thread. */
RawFault takePendingRawFault();

/**
 * Execute @p fault: Crash abort()s, Hang spins forever (until the
 * parent's deadline SIGKILL), Segv stores through a wild pointer.
 * Returns only for RawFault::None. Must only ever run inside a
 * sandboxed child.
 */
void executeRawFault(RawFault fault);

/**
 * Seeded decision stream: (configuration key, attempt) -> FaultKind.
 * The draw itself is stateless (a pure function of its inputs), so
 * concurrent batch evaluations draw exactly the faults a serial run
 * would; the injection counters are atomic.
 */
class FaultInjector {
  public:
    explicit FaultInjector(FaultPlan plan) : plan_(plan) {}

    /** Draw the fault for @p attempt (0-based) on @p configKey. */
    FaultKind draw(const std::string& configKey, std::uint64_t attempt);

    const FaultPlan& plan() const { return plan_; }

    /** Injection counters, by kind. */
    std::size_t crashesInjected() const { return crashes_; }
    std::size_t hangsInjected() const { return hangs_; }
    std::size_t nansInjected() const { return nans_; }
    std::size_t rawCrashesInjected() const { return rawCrashes_; }
    std::size_t rawHangsInjected() const { return rawHangs_; }
    std::size_t rawSegvsInjected() const { return rawSegvs_; }

  private:
    FaultPlan plan_;
    std::atomic<std::size_t> crashes_{0};
    std::atomic<std::size_t> hangs_{0};
    std::atomic<std::size_t> nans_{0};
    std::atomic<std::size_t> rawCrashes_{0};
    std::atomic<std::size_t> rawHangs_{0};
    std::atomic<std::size_t> rawSegvs_{0};
};

/**
 * SearchProblem decorator injecting faults per the plan. Crashes
 * return RuntimeFail without running the inner problem (the node
 * died); hangs stall for hangSeconds and then evaluate normally (a
 * straggler the deadline policy converts into a RuntimeFail); NaN
 * faults run the inner problem and destroy the quality of a run that
 * completed. Compile failures pass through untouched — a
 * configuration that never runs cannot crash.
 *
 * Raw kinds (RawCrash/RawHang/RawSegv) are posted on the thread-local
 * pending channel for the sandboxed executor to detonate inside the
 * forked child; constructing a plan with raw rates outside a sandbox
 * throws FatalError (recoverable) instead of letting the process die.
 */
class FaultyProblem final : public SearchProblem {
  public:
    /** Throws FatalError when @p plan has raw rates but is not
     *  sandboxed. */
    FaultyProblem(SearchProblem& inner, FaultPlan plan);

    std::size_t siteCount() const override { return inner_.siteCount(); }

    std::size_t maxLevel() const override { return inner_.maxLevel(); }

    const StructureNode* structure() const override
    {
        return inner_.structure();
    }

    Evaluation evaluate(const Config& config) override;

    const FaultInjector& injector() const { return injector_; }

  private:
    SearchProblem& inner_;
    FaultInjector injector_;
    std::mutex mutex_; ///< guards attempts_ under batch evaluation
    std::unordered_map<std::string, std::uint64_t> attempts_;
};

} // namespace hpcmixp::search

#endif // HPCMIXP_SEARCH_FAULT_H_
