#ifndef HPCMIXP_SEARCH_FAULT_H_
#define HPCMIXP_SEARCH_FAULT_H_

/**
 * @file
 * Deterministic fault injection for stress-testing the search layer.
 *
 * The paper's campaigns run under a 24-hour SLURM budget where node
 * crashes, stragglers and flaky evaluations are routine. FaultyProblem
 * decorates any SearchProblem with seeded, reproducible injection of
 * those failure modes so every strategy can be exercised against them
 * unmodified; the ResiliencePolicy in SearchContext (retries, backoff,
 * per-evaluation deadline) is the machinery that recovers from them.
 *
 * Fault decisions are a pure function of (seed, configuration key,
 * attempt index): a given attempt on a given configuration always
 * draws the same fault, so failure scenarios replay exactly, while a
 * *retry* of the same configuration re-draws — injected crashes and
 * hangs are transient, like the real thing.
 */

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "search/problem.h"

namespace hpcmixp::search {

/** Per-attempt fault probabilities; all-zero disables injection. */
struct FaultPlan {
    double crashRate = 0.0;    ///< injected transient crash (RuntimeFail)
    double hangRate = 0.0;     ///< straggler stall before evaluating
    double nanRate = 0.0;      ///< destroyed (NaN-quality) output
    double hangSeconds = 0.02; ///< stall duration of a Hang fault
    std::uint64_t seed = 2020; ///< decision-stream seed

    bool enabled() const
    {
        return crashRate > 0.0 || hangRate > 0.0 || nanRate > 0.0;
    }
};

/** The fault drawn for one evaluation attempt. */
enum class FaultKind { None, Crash, Hang, Nan };

/**
 * Seeded decision stream: (configuration key, attempt) -> FaultKind.
 * The draw itself is stateless (a pure function of its inputs), so
 * concurrent batch evaluations draw exactly the faults a serial run
 * would; the injection counters are atomic.
 */
class FaultInjector {
  public:
    explicit FaultInjector(FaultPlan plan) : plan_(plan) {}

    /** Draw the fault for @p attempt (0-based) on @p configKey. */
    FaultKind draw(const std::string& configKey, std::uint64_t attempt);

    const FaultPlan& plan() const { return plan_; }

    /** Injection counters, by kind. */
    std::size_t crashesInjected() const { return crashes_; }
    std::size_t hangsInjected() const { return hangs_; }
    std::size_t nansInjected() const { return nans_; }

  private:
    FaultPlan plan_;
    std::atomic<std::size_t> crashes_{0};
    std::atomic<std::size_t> hangs_{0};
    std::atomic<std::size_t> nans_{0};
};

/**
 * SearchProblem decorator injecting faults per the plan. Crashes
 * return RuntimeFail without running the inner problem (the node
 * died); hangs stall for hangSeconds and then evaluate normally (a
 * straggler the deadline policy converts into a RuntimeFail); NaN
 * faults run the inner problem and destroy the quality of a run that
 * completed. Compile failures pass through untouched — a
 * configuration that never runs cannot crash.
 */
class FaultyProblem final : public SearchProblem {
  public:
    FaultyProblem(SearchProblem& inner, FaultPlan plan)
        : inner_(inner), injector_(plan)
    {
    }

    std::size_t siteCount() const override { return inner_.siteCount(); }

    const StructureNode* structure() const override
    {
        return inner_.structure();
    }

    Evaluation evaluate(const Config& config) override;

    const FaultInjector& injector() const { return injector_; }

  private:
    SearchProblem& inner_;
    FaultInjector injector_;
    std::mutex mutex_; ///< guards attempts_ under batch evaluation
    std::unordered_map<std::string, std::uint64_t> attempts_;
};

} // namespace hpcmixp::search

#endif // HPCMIXP_SEARCH_FAULT_H_
