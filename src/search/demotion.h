#ifndef HPCMIXP_SEARCH_DEMOTION_H_
#define HPCMIXP_SEARCH_DEMOTION_H_

/**
 * @file
 * Shared ladder-descent pass for the discrete strategies.
 *
 * The binary strategies (DD, HR, HC) discover *which* sites tolerate
 * lowering at rung 1 (float). Under a deeper PrecisionLadder the
 * remaining question is *how far down* each of those sites can go.
 * greedyDemotionPass() answers it with the ladder-aware neighborhood
 * from the issue: starting from a passing configuration, repeatedly
 * propose every one-rung demotion of a single already-lowered site,
 * batch-evaluate the candidates, and commit the first passing one —
 * until no single demotion passes. Sites a StaticPrior caps below the
 * candidate rung are never proposed.
 *
 * The pass is only invoked when the problem's maxLevel() > 1, so
 * two-rung campaigns never see it and their trajectories stay
 * bit-identical to the pre-ladder code.
 */

#include "search/config.h"
#include "search/context.h"

namespace hpcmixp::search {

/**
 * Greedily demote @p start one rung at a time. @p start must be a
 * passing configuration. Returns the deepest passing configuration
 * reached (possibly @p start itself). May throw BudgetExhausted.
 */
Config greedyDemotionPass(SearchContext& ctx, Config start);

} // namespace hpcmixp::search

#endif // HPCMIXP_SEARCH_DEMOTION_H_
