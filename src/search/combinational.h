#ifndef HPCMIXP_SEARCH_COMBINATIONAL_H_
#define HPCMIXP_SEARCH_COMBINATIONAL_H_

/**
 * @file
 * Combinational (brute-force) search.
 *
 * Tries every non-baseline combination of clusters, most-aggressive
 * configurations (largest number of lowered clusters) first so a budget
 * truncation still leaves the high-payoff region explored. Exhaustive,
 * so only tractable on the kernel benchmarks (paper Section IV-A).
 */

#include "search/strategy.h"

namespace hpcmixp::search {

/** Brute-force enumeration of all cluster combinations. */
class CombinationalSearch : public SearchStrategy {
  public:
    std::string name() const override { return "combinational"; }
    std::string code() const override { return "CB"; }
    Granularity granularity() const override
    {
        return Granularity::Cluster;
    }
    void run(SearchContext& ctx) override;
};

} // namespace hpcmixp::search

#endif // HPCMIXP_SEARCH_COMBINATIONAL_H_
