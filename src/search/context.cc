#include "search/context.h"

#include <algorithm>
#include <limits>
#include <thread>
#include <utility>

#include "support/logging.h"
#include "support/thread_pool.h"

namespace hpcmixp::search {

namespace {

/** FNV-1a over the config key: seeds the per-task jitter stream so
 *  backoff jitter is independent of worker scheduling order. */
std::uint64_t
keyHash(const std::string& key)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : key) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

SearchContext::SearchContext(SearchProblem& problem, SearchBudget budget,
                             ResiliencePolicy resilience)
    : problem_(problem),
      budget_(budget),
      resilience_(resilience),
      retryRng_(resilience.seed, /*stream=*/0x7e51) // jitter stream
{
}

SearchContext::~SearchContext() = default;

void
SearchContext::setPrior(StaticPrior prior)
{
    HPCMIXP_ASSERT(!prior.enabled() ||
                       prior.siteCount() == problem_.siteCount(),
                   "static prior site count does not match problem");
    prior_ = std::move(prior);
}

const StaticPrior*
SearchContext::prior() const
{
    // prior_ is installed before the search starts and immutable
    // afterwards, so strategies may read it without the lock.
    return prior_.enabled() ? &prior_ : nullptr;
}

void
SearchContext::setMemo(std::shared_ptr<MemoTable> memo)
{
    HPCMIXP_ASSERT(!memo ||
                       memo->fingerprint().sites ==
                           problem_.siteCount(),
                   "memo table site count does not match problem");
    memo_ = std::move(memo);
}

void
SearchContext::setFingerprint(MemoFingerprint fingerprint)
{
    fingerprint_ = std::move(fingerprint);
}

void
SearchContext::setCancelFlag(
    std::shared_ptr<const std::atomic<bool>> flag)
{
    std::lock_guard<std::mutex> lock(mutex_);
    cancel_ = std::move(flag);
}

void
SearchContext::setCheckpointHook(std::size_t everyExecutions,
                                 CheckpointSink sink)
{
    std::lock_guard<std::mutex> lock(mutex_);
    checkpointEvery_ = everyExecutions;
    checkpointSink_ = std::move(sink);
}

void
SearchContext::setSearchJobs(std::size_t jobs)
{
    if (jobs == 0) {
        // 0 means "use the machine": auto-detect instead of silently
        // degrading to a serial search. Callers that need the nested-
        // parallelism clamp (jobs × searchJobs ≤ hardware) apply it on
        // top, as the harness does.
        jobs = std::max<std::size_t>(
            1, std::thread::hardware_concurrency());
    }
    std::lock_guard<std::mutex> lock(mutex_);
    searchJobs_ = jobs;
}

std::size_t
SearchContext::searchJobs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return searchJobs_;
}

void
SearchContext::setBatchScheduling(BatchScheduling scheduling)
{
    std::lock_guard<std::mutex> lock(mutex_);
    scheduling_ = scheduling;
}

SearchContext::BatchScheduling
SearchContext::batchScheduling() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return scheduling_;
}

std::size_t
SearchContext::stealCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return retiredSteals_ + (pool_ ? pool_->stealCount() : 0);
}

void
SearchContext::checkBudgetLocked()
{
    bool overEvals = executed_ >= budget_.maxEvaluations;
    bool overTime = budget_.maxSeconds > 0.0 &&
                    timer_.seconds() >= budget_.maxSeconds;
    bool cancelled =
        cancel_ && cancel_->load(std::memory_order_relaxed);
    if (overEvals || overTime || cancelled) {
        exhausted_ = true;
        throw BudgetExhausted();
    }
}

void
SearchContext::noteBestLocked(const Config& config, const Evaluation& eval)
{
    // A passing non-baseline configuration competes for "best".
    if (eval.passed() && !config.isBaseline()) {
        if (!best_ || eval.speedup > best_->second.speedup)
            best_ = {config, eval};
    }
}

/**
 * One evaluation under the resilience policy: bounded retries with
 * backoff for transient RuntimeFails, and a per-attempt deadline that
 * discards stragglers the way SLURM kills an overdue task.
 *
 * Side-effect-free with respect to the context: resilience events land
 * in @p counters and are merged into the shared totals only when the
 * result commits, so speculative batch evaluations that get discarded
 * by the budget leave no trace.
 */
Evaluation
SearchContext::evaluateResilient(const Config& config,
                                 TaskCounters& counters,
                                 support::Pcg32& jitterRng)
{
    // Strict prior mode: a configuration that lowers a pinned site is
    // rejected like an uncompilable one, without executing anything.
    // This also guards non-strategy entry points (cache imports were
    // evaluated elsewhere, but resumed *searches* re-derive candidates
    // through here).
    if (prior_.strict() && prior_.violates(config)) {
        Evaluation rejected;
        rejected.status = EvalStatus::CompileFail;
        return rejected;
    }
    std::size_t maxAttempts =
        resilience_.maxAttempts > 0 ? resilience_.maxAttempts : 1;
    Evaluation eval;
    for (std::size_t attempt = 1;; ++attempt) {
        support::WallTimer attemptTimer;
        eval = problem_.evaluate(config);
        // A sandboxed attempt reports its own kill-on-deadline; an
        // in-process straggler is caught post-hoc by the attempt
        // timer. Both count as exactly one deadline miss and feed the
        // same retry/backoff path, so counters are identical between
        // simulated and forked hangs.
        bool missedDeadline = eval.deadlineMiss;
        if (!missedDeadline && resilience_.deadlineSeconds > 0.0 &&
            attemptTimer.seconds() > resilience_.deadlineSeconds &&
            eval.status != EvalStatus::CompileFail) {
            // The result arrived after the deadline: discard it.
            missedDeadline = true;
        }
        if (missedDeadline) {
            ++counters.deadlineMisses;
            const bool memoizable = eval.memoizable;
            eval = Evaluation{};
            eval.status = EvalStatus::RuntimeFail;
            eval.qualityLoss =
                std::numeric_limits<double>::quiet_NaN();
            eval.deadlineMiss = true;
            // A killed child yielded no measurement worth sharing; a
            // post-hoc-discarded in-process result keeps publishing
            // as before.
            eval.memoizable = memoizable;
        }
        if (eval.status != EvalStatus::RuntimeFail ||
            attempt >= maxAttempts)
            break;
        ++counters.retries;
        if (resilience_.sleepBetweenRetries)
            support::sleepForSeconds(support::backoffDelaySeconds(
                resilience_.backoff, attempt - 1, jitterRng));
    }
    // Retries exhausted: quarantine the configuration — it is cached
    // as failed and the search moves on rather than aborting.
    if (eval.status == EvalStatus::RuntimeFail && maxAttempts > 1)
        ++counters.quarantined;
    return eval;
}

/**
 * Record one freshly evaluated configuration: merge its resilience
 * counters, meter it, update best-so-far, populate the cache, and fire
 * the periodic checkpoint hook. Caller holds the lock and has already
 * passed the budget check.
 */
const Evaluation&
SearchContext::commitLocked(std::string key, const Config& config,
                            Evaluation eval,
                            const TaskCounters& counters)
{
    retries_ += counters.retries;
    deadlineMisses_ += counters.deadlineMisses;
    quarantined_ += counters.quarantined;
    bool ran = eval.status != EvalStatus::CompileFail;
    if (ran) {
        ++executed_;
    } else {
        ++compileFails_;
    }
    noteBestLocked(config, eval);
    // Publish to the persistent memo before caching locally, so no
    // other context can observe the local commit yet miss the memo.
    // Results flagged non-memoizable (killed/crashed sandbox children)
    // stay private to this run.
    if (ran && memo_ && eval.memoizable)
        memo_->publish(key, eval);
    const Evaluation& stored =
        cache_.emplace(std::move(key), std::move(eval)).first->second;
    if (ran && checkpointEvery_ > 0 && checkpointSink_ &&
        executed_ % checkpointEvery_ == 0)
        checkpointSink_(exportCacheLocked());
    return stored;
}

/**
 * Commit a cross-run memo hit: the stored evaluation enters the local
 * cache and competes for best-so-far, but nothing executed — no EV, no
 * budget consumption, no checkpoint snapshot. Caller holds the lock.
 */
const Evaluation&
SearchContext::commitMemoHitLocked(std::string key,
                                   const Config& config,
                                   Evaluation eval)
{
    ++memoHits_;
    noteBestLocked(config, eval);
    return cache_.emplace(std::move(key), std::move(eval))
        .first->second;
}

const Evaluation&
SearchContext::evaluate(const Config& config)
{
    HPCMIXP_ASSERT(config.size() == problem_.siteCount(),
                   "config size does not match problem site count");
    std::string key = config.toString();
    // Strict prior mode rejects pinned configurations without
    // executing; the rejection must also bypass the memo, whose
    // entries may come from runs with a different prior mode.
    bool strictReject = prior_.strict() && prior_.violates(config);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = cache_.find(key);
        if (it != cache_.end()) {
            ++cacheHits_;
            noteBestLocked(config, it->second);
            return it->second;
        }
        if (memo_ && !strictReject) {
            if (auto hit = memo_->lookup(key))
                return commitMemoHitLocked(std::move(key), config,
                                           std::move(*hit));
        }
        checkBudgetLocked();
    }

    // Evaluate outside the lock; the serial path shares one jitter
    // stream, exactly as before batching existed.
    TaskCounters counters;
    Evaluation eval = evaluateResilient(config, counters, retryRng_);

    std::lock_guard<std::mutex> lock(mutex_);
    return commitLocked(std::move(key), config, std::move(eval),
                        counters);
}

std::vector<Evaluation>
SearchContext::evaluateBatch(std::span<const Config> configs)
{
    if (configs.empty())
        return {};
    std::size_t jobs = searchJobs();
    if (jobs <= 1 || configs.size() == 1) {
        // Serial fallback: literally the serial loop.
        std::vector<Evaluation> out;
        out.reserve(configs.size());
        for (const auto& config : configs)
            out.push_back(evaluate(config));
        return out;
    }

    // Plan: classify each candidate against the cache, the persistent
    // memo and earlier batch entries. Only first occurrences of
    // uncached, unmemoized configurations ("fresh") get an evaluation
    // task; memo hits commit the stored evaluation without a task, and
    // repeats become cache hits at commit time, exactly as in the
    // serial loop.
    enum class Kind { Hit, Duplicate, Memo, Fresh };
    struct Slot {
        std::string key;
        Kind kind = Kind::Fresh;
        std::size_t fresh = 0; ///< task index when kind == Fresh
        Evaluation memoEval;   ///< payload when kind == Kind::Memo
    };
    std::vector<Slot> plan;
    plan.reserve(configs.size());
    std::size_t freshCount = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Keys already claimed by an earlier slot of this batch —
        // fresh tasks and memo commits alike; repeats of either are
        // in-run cache hits once the first occurrence commits.
        std::unordered_map<std::string, std::size_t> claimed;
        for (const auto& config : configs) {
            HPCMIXP_ASSERT(config.size() == problem_.siteCount(),
                           "config size does not match problem site count");
            Slot slot;
            slot.key = config.toString();
            bool strictReject =
                prior_.strict() && prior_.violates(config);
            std::optional<Evaluation> memoHit;
            if (cache_.count(slot.key) > 0) {
                slot.kind = Kind::Hit;
            } else if (claimed.count(slot.key) > 0) {
                slot.kind = Kind::Duplicate;
            } else if (memo_ && !strictReject &&
                       (memoHit = memo_->lookup(slot.key))) {
                slot.kind = Kind::Memo;
                slot.memoEval = std::move(*memoHit);
                claimed.emplace(slot.key, plan.size());
            } else {
                slot.kind = Kind::Fresh;
                slot.fresh = freshCount++;
                claimed.emplace(slot.key, plan.size());
            }
            plan.push_back(std::move(slot));
        }
    }

    // Evaluate: fresh candidates run concurrently. Each task gets its
    // own jitter stream seeded from the config key, so backoff timing
    // never depends on worker scheduling. Candidates that turn out to
    // lie past the budget are evaluated speculatively here and
    // discarded below.
    std::vector<Evaluation> results(freshCount);
    std::vector<TaskCounters> counters(freshCount);
    if (freshCount > 0) {
        const support::ThreadPool::Scheduling mode =
            batchScheduling() == BatchScheduling::Fifo
                ? support::ThreadPool::Scheduling::Fifo
                : support::ThreadPool::Scheduling::Steal;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (pool_ && (pool_->workerCount() != jobs ||
                          pool_->scheduling() != mode)) {
                retiredSteals_ += pool_->stealCount();
                pool_.reset();
            }
            if (!pool_)
                pool_ = std::make_unique<support::ThreadPool>(jobs,
                                                              mode);
        }
        std::vector<std::future<void>> futures;
        futures.reserve(freshCount);
        for (std::size_t i = 0; i < plan.size(); ++i) {
            if (plan[i].kind != Kind::Fresh)
                continue;
            const Config& config = configs[i];
            std::size_t task = plan[i].fresh;
            std::uint64_t jitterSeed =
                resilience_.seed ^ keyHash(plan[i].key);
            futures.push_back(pool_->submit(
                [this, &config, task, jitterSeed, &results, &counters] {
                    support::Pcg32 rng(jitterSeed, /*stream=*/0x7e51);
                    results[task] = evaluateResilient(
                        config, counters[task], rng);
                }));
        }
        for (auto& fut : futures)
            fut.wait();
        for (auto& fut : futures)
            fut.get(); // propagate any task exception
    }

    // Commit in submission order under one critical section, so the
    // observable trajectory (counters, cache, best, budget throw
    // point, checkpoint snapshots) is bit-identical to the serial
    // loop. A budget hit throws and discards the uncommitted tail.
    std::vector<Evaluation> out(configs.size());
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < plan.size(); ++i) {
        Slot& slot = plan[i];
        if (slot.kind == Kind::Fresh) {
            checkBudgetLocked();
            out[i] = commitLocked(std::move(slot.key), configs[i],
                                  std::move(results[slot.fresh]),
                                  counters[slot.fresh]);
        } else if (slot.kind == Kind::Memo) {
            // As in the serial path: a memo hit commits without a
            // budget check, EV increment or checkpoint snapshot.
            out[i] = commitMemoHitLocked(std::move(slot.key),
                                         configs[i],
                                         std::move(slot.memoEval));
        } else {
            // Hit on the pre-batch cache, or repeat of a fresh entry
            // committed earlier in this loop.
            auto it = cache_.find(slot.key);
            HPCMIXP_ASSERT(it != cache_.end(),
                           "batch commit: cache entry vanished");
            ++cacheHits_;
            noteBestLocked(configs[i], it->second);
            out[i] = it->second;
        }
    }
    return out;
}

bool
SearchContext::isCached(const Config& config) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.count(config.toString()) > 0;
}

bool
SearchContext::hasBest() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return best_.has_value();
}

std::size_t
SearchContext::evaluatedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return executed_;
}

std::size_t
SearchContext::compileFailCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return compileFails_;
}

std::size_t
SearchContext::cacheHitCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cacheHits_;
}

std::size_t
SearchContext::memoHitCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return memoHits_;
}

std::size_t
SearchContext::retryCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return retries_;
}

std::size_t
SearchContext::deadlineMissCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return deadlineMisses_;
}

std::size_t
SearchContext::quarantinedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return quarantined_;
}

bool
SearchContext::exhausted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return exhausted_;
}

support::json::Value
SearchContext::exportCacheLocked() const
{
    using support::json::Value;
    Value root = Value::object();
    root.set("sites", Value::number(static_cast<double>(
                          problem_.siteCount())));
    if (fingerprint_.valid())
        root.set("fingerprint", fingerprint_.toJson());
    Value entries = Value::array();
    for (const auto& [key, eval] : cache_) {
        Value e = Value::object();
        e.set("config", Value::string(key));
        e.set("status", Value::string(evalStatusName(eval.status)));
        e.set("runtime_seconds", Value::number(eval.runtimeSeconds));
        e.set("speedup", Value::number(eval.speedup));
        e.set("quality_loss", Value::number(eval.qualityLoss));
        entries.push(std::move(e));
    }
    root.set("evaluations", std::move(entries));
    return root;
}

support::json::Value
SearchContext::exportCache() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return exportCacheLocked();
}

void
SearchContext::importCache(const support::json::Value& checkpoint)
{
    using support::fatal;
    if (!checkpoint.isObject() || !checkpoint.has("sites") ||
        !checkpoint.has("evaluations"))
        fatal("checkpoint: expected {sites, evaluations}");
    auto sites = static_cast<std::size_t>(
        checkpoint.at("sites").asLong());
    if (sites != problem_.siteCount())
        fatal(support::strCat("checkpoint: has ", sites,
                              " sites, problem has ",
                              problem_.siteCount()));
    // A checkpoint from another evaluation function — different
    // benchmark, input, metric or threshold — must not seed this run:
    // its evaluations would be silently wrong at this threshold. The
    // rejection happens before any entry lands in the cache, and is
    // recoverable (the caller simply starts fresh).
    if (fingerprint_.valid() && checkpoint.has("fingerprint")) {
        auto fp =
            MemoFingerprint::fromJson(checkpoint.at("fingerprint"));
        if (!fp)
            fatal("checkpoint: malformed fingerprint");
        if (!(*fp == fingerprint_))
            throw CheckpointMismatch(support::strCat(
                "checkpoint fingerprint [", fp->describe(),
                "] does not match this run [",
                fingerprint_.describe(), "]"));
    }
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& entry : checkpoint.at("evaluations").items()) {
        const std::string& key = entry.at("config").asString();
        if (key.size() != sites)
            fatal("checkpoint: malformed config levels");
        Evaluation eval;
        auto status =
            evalStatusFromName(entry.at("status").asString());
        if (!status)
            fatal(support::strCat("checkpoint: unknown status '",
                                  entry.at("status").asString(), "'"));
        eval.status = *status;
        eval.runtimeSeconds =
            entry.at("runtime_seconds").isNull()
                ? 0.0
                : entry.at("runtime_seconds").asNumber();
        eval.speedup = entry.at("speedup").isNull()
                           ? 0.0
                           : entry.at("speedup").asNumber();
        eval.qualityLoss =
            entry.at("quality_loss").isNull()
                ? std::numeric_limits<double>::quiet_NaN()
                : entry.at("quality_loss").asNumber();
        Config config = Config::fromString(key);
        noteBestLocked(config, eval);
        // Checkpoint-to-memo migration: a resumed run with a memo
        // attached makes its restored evaluations durable for every
        // future run.
        if (memo_)
            memo_->publish(key, eval);
        cache_[key] = eval;
    }
}

const Config&
SearchContext::bestConfig() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    HPCMIXP_ASSERT(best_.has_value(), "bestConfig() with no best yet");
    return best_->first;
}

const Evaluation&
SearchContext::bestEvaluation() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    HPCMIXP_ASSERT(best_.has_value(),
                   "bestEvaluation() with no best yet");
    return best_->second;
}

} // namespace hpcmixp::search
