#include "search/context.h"

#include <limits>

#include "support/logging.h"

namespace hpcmixp::search {

SearchContext::SearchContext(SearchProblem& problem, SearchBudget budget,
                             ResiliencePolicy resilience)
    : problem_(problem),
      budget_(budget),
      resilience_(resilience),
      retryRng_(resilience.seed, /*stream=*/0x7e51) // jitter stream
{
}

void
SearchContext::setCheckpointHook(std::size_t everyExecutions,
                                 CheckpointSink sink)
{
    checkpointEvery_ = everyExecutions;
    checkpointSink_ = std::move(sink);
}

void
SearchContext::checkBudget()
{
    bool overEvals = executed_ >= budget_.maxEvaluations;
    bool overTime = budget_.maxSeconds > 0.0 &&
                    timer_.seconds() >= budget_.maxSeconds;
    if (overEvals || overTime) {
        exhausted_ = true;
        throw BudgetExhausted();
    }
}

void
SearchContext::noteBest(const Config& config, const Evaluation& eval)
{
    // A passing non-baseline configuration competes for "best".
    if (eval.passed() && !config.isBaseline()) {
        if (!best_ || eval.speedup > best_->second.speedup)
            best_ = {config, eval};
    }
}

/**
 * One evaluation under the resilience policy: bounded retries with
 * backoff for transient RuntimeFails, and a per-attempt deadline that
 * discards stragglers the way SLURM kills an overdue task.
 */
Evaluation
SearchContext::evaluateResilient(const Config& config)
{
    std::size_t maxAttempts =
        resilience_.maxAttempts > 0 ? resilience_.maxAttempts : 1;
    Evaluation eval;
    for (std::size_t attempt = 1;; ++attempt) {
        support::WallTimer attemptTimer;
        eval = problem_.evaluate(config);
        if (resilience_.deadlineSeconds > 0.0 &&
            attemptTimer.seconds() > resilience_.deadlineSeconds &&
            eval.status != EvalStatus::CompileFail) {
            // The result arrived after the deadline: discard it.
            ++deadlineMisses_;
            eval = Evaluation{};
            eval.status = EvalStatus::RuntimeFail;
            eval.qualityLoss =
                std::numeric_limits<double>::quiet_NaN();
        }
        if (eval.status != EvalStatus::RuntimeFail ||
            attempt >= maxAttempts)
            break;
        ++retries_;
        if (resilience_.sleepBetweenRetries)
            support::sleepForSeconds(support::backoffDelaySeconds(
                resilience_.backoff, attempt - 1, retryRng_));
    }
    // Retries exhausted: quarantine the configuration — it is cached
    // as failed and the search moves on rather than aborting.
    if (eval.status == EvalStatus::RuntimeFail && maxAttempts > 1)
        ++quarantined_;
    return eval;
}

const Evaluation&
SearchContext::evaluate(const Config& config)
{
    HPCMIXP_ASSERT(config.size() == problem_.siteCount(),
                   "config size does not match problem site count");
    std::string key = config.toString();
    auto it = cache_.find(key);
    if (it != cache_.end()) {
        ++cacheHits_;
        noteBest(config, it->second);
        return it->second;
    }

    checkBudget();

    Evaluation eval = evaluateResilient(config);
    bool ran = eval.status != EvalStatus::CompileFail;
    if (ran) {
        ++executed_;
    } else {
        ++compileFails_;
    }
    noteBest(config, eval);
    const Evaluation& stored =
        cache_.emplace(std::move(key), eval).first->second;
    if (ran && checkpointEvery_ > 0 && checkpointSink_ &&
        executed_ % checkpointEvery_ == 0)
        checkpointSink_(exportCache());
    return stored;
}

bool
SearchContext::isCached(const Config& config) const
{
    return cache_.count(config.toString()) > 0;
}

namespace {

const char*
statusName(EvalStatus status)
{
    switch (status) {
      case EvalStatus::Pass:
        return "pass";
      case EvalStatus::QualityFail:
        return "quality_fail";
      case EvalStatus::CompileFail:
        return "compile_fail";
      case EvalStatus::RuntimeFail:
        return "runtime_fail";
    }
    return "unknown";
}

EvalStatus
statusFromName(const std::string& name)
{
    if (name == "pass")
        return EvalStatus::Pass;
    if (name == "quality_fail")
        return EvalStatus::QualityFail;
    if (name == "compile_fail")
        return EvalStatus::CompileFail;
    if (name == "runtime_fail")
        return EvalStatus::RuntimeFail;
    support::fatal(
        support::strCat("checkpoint: unknown status '", name, "'"));
}

} // namespace

support::json::Value
SearchContext::exportCache() const
{
    using support::json::Value;
    Value root = Value::object();
    root.set("sites", Value::number(static_cast<double>(
                          problem_.siteCount())));
    Value entries = Value::array();
    for (const auto& [key, eval] : cache_) {
        Value e = Value::object();
        e.set("config", Value::string(key));
        e.set("status", Value::string(statusName(eval.status)));
        e.set("runtime_seconds", Value::number(eval.runtimeSeconds));
        e.set("speedup", Value::number(eval.speedup));
        e.set("quality_loss", Value::number(eval.qualityLoss));
        entries.push(std::move(e));
    }
    root.set("evaluations", std::move(entries));
    return root;
}

void
SearchContext::importCache(const support::json::Value& checkpoint)
{
    using support::fatal;
    if (!checkpoint.isObject() || !checkpoint.has("sites") ||
        !checkpoint.has("evaluations"))
        fatal("checkpoint: expected {sites, evaluations}");
    auto sites = static_cast<std::size_t>(
        checkpoint.at("sites").asLong());
    if (sites != problem_.siteCount())
        fatal(support::strCat("checkpoint: has ", sites,
                              " sites, problem has ",
                              problem_.siteCount()));
    for (const auto& entry : checkpoint.at("evaluations").items()) {
        const std::string& key = entry.at("config").asString();
        if (key.size() != sites)
            fatal("checkpoint: malformed config bits");
        Evaluation eval;
        eval.status =
            statusFromName(entry.at("status").asString());
        eval.runtimeSeconds =
            entry.at("runtime_seconds").isNull()
                ? 0.0
                : entry.at("runtime_seconds").asNumber();
        eval.speedup = entry.at("speedup").isNull()
                           ? 0.0
                           : entry.at("speedup").asNumber();
        eval.qualityLoss =
            entry.at("quality_loss").isNull()
                ? std::numeric_limits<double>::quiet_NaN()
                : entry.at("quality_loss").asNumber();
        Config config(sites);
        for (std::size_t i = 0; i < sites; ++i)
            config.set(i, key[i] == '1');
        noteBest(config, eval);
        cache_[key] = eval;
    }
}

const Config&
SearchContext::bestConfig() const
{
    HPCMIXP_ASSERT(best_.has_value(), "bestConfig() with no best yet");
    return best_->first;
}

const Evaluation&
SearchContext::bestEvaluation() const
{
    HPCMIXP_ASSERT(best_.has_value(),
                   "bestEvaluation() with no best yet");
    return best_->second;
}

} // namespace hpcmixp::search
