#ifndef HPCMIXP_SEARCH_PROBLEM_H_
#define HPCMIXP_SEARCH_PROBLEM_H_

/**
 * @file
 * The search-problem abstraction consumed by all strategies.
 *
 * A SearchProblem exposes a space of sites and evaluates configurations
 * over them. The benchmark adapters in `core/` provide two flavours:
 * cluster-level (one site per Typeforge cluster) and variable-level
 * (one site per variable, used by CM/HR/HC, where cluster-inconsistent
 * choices surface as compile failures).
 */

#include <cstddef>
#include <string>
#include <vector>

#include "search/config.h"

namespace hpcmixp::search {

/** Outcome classes of evaluating a configuration. */
enum class EvalStatus {
    Pass,        ///< compiled, ran, and met the quality threshold
    QualityFail, ///< ran but exceeded the quality threshold
    CompileFail, ///< invalid configuration (cluster split); never ran
    RuntimeFail, ///< crashed / produced non-finite output structure
};

/** Result of evaluating one configuration. */
struct Evaluation {
    EvalStatus status = EvalStatus::CompileFail;
    double runtimeSeconds = 0.0; ///< mean runtime (valid when it ran)
    double speedup = 0.0;        ///< baseline time / this time
    double qualityLoss = 0.0;    ///< uniform metric loss (NaN possible)

    /**
     * Transient (never serialized): the attempt itself reports that it
     * blew the deadline — a sandboxed child the parent SIGKILLed. The
     * resilience layer counts it exactly like a straggler it timed out
     * post-hoc, keeping counters identical across isolation modes.
     */
    bool deadlineMiss = false;

    /**
     * Transient (never serialized): false marks a result that must not
     * be published to the cross-run memo-cache — a killed or crashed
     * sandbox child produced no trustworthy measurement, only this
     * run's quarantine decision.
     */
    bool memoizable = true;

    bool passed() const { return status == EvalStatus::Pass; }
    bool ran() const
    {
        return status == EvalStatus::Pass ||
               status == EvalStatus::QualityFail ||
               status == EvalStatus::RuntimeFail;
    }
};

/**
 * Program-structure tree for the hierarchical strategies:
 * root (whole program) -> modules -> functions -> single variables.
 * `sites` lists every site contained in the subtree.
 */
struct StructureNode {
    std::string name;
    std::vector<std::size_t> sites;
    std::vector<StructureNode> children;

    bool isLeaf() const { return children.empty(); }
};

/** A tunable program under a fixed verification routine. */
class SearchProblem {
  public:
    virtual ~SearchProblem() = default;

    /** Number of search sites. */
    virtual std::size_t siteCount() const = 0;

    /**
     * Evaluate one configuration (uncached; strategies go through
     * SearchContext which caches and meters).
     */
    virtual Evaluation evaluate(const Config& config) = 0;

    /**
     * Program-structure tree, or nullptr when the problem has no
     * hierarchy (cluster-level problems). Required by HR and HC.
     */
    virtual const StructureNode* structure() const { return nullptr; }

    /**
     * Deepest ladder level a site may take (= PrecisionLadder
     * rungs - 1). The default of 1 is the classic binary
     * double-vs-float campaign; every strategy's multi-rung logic is
     * gated behind maxLevel() > 1, keeping two-rung trajectories
     * bit-identical to the pre-ladder code (property-pinned).
     */
    virtual std::size_t maxLevel() const { return 1; }
};

} // namespace hpcmixp::search

#endif // HPCMIXP_SEARCH_PROBLEM_H_
