#include "search/prior.h"

#include "support/logging.h"

namespace hpcmixp::search {

using support::fatal;
using support::strCat;

const char*
priorModeName(PriorMode mode)
{
    switch (mode) {
    case PriorMode::Off: return "off";
    case PriorMode::On: return "on";
    case PriorMode::Strict: return "strict";
    }
    return "off";
}

PriorMode
parsePriorMode(const std::string& text)
{
    if (text == "off")
        return PriorMode::Off;
    if (text == "on")
        return PriorMode::On;
    if (text == "strict")
        return PriorMode::Strict;
    fatal(strCat("unknown --static-prior mode '", text,
                 "' (expected on, off, or strict)"));
}

StaticPrior::StaticPrior(PriorMode mode, std::vector<bool> pinned,
                         std::vector<bool> narrow,
                         std::vector<int> scores)
    : mode_(mode), narrow_(std::move(narrow)),
      scores_(std::move(scores))
{
    caps_.reserve(pinned.size());
    for (bool p : pinned)
        caps_.push_back(p ? 0 : kUnbounded);
    HPCMIXP_ASSERT(caps_.size() == narrow_.size() &&
                       caps_.size() == scores_.size(),
                   "static prior vectors disagree on site count");
}

StaticPrior
StaticPrior::withCaps(PriorMode mode, std::vector<std::uint8_t> caps,
                      std::vector<bool> narrow,
                      std::vector<int> scores)
{
    StaticPrior prior;
    prior.mode_ = mode;
    prior.caps_ = std::move(caps);
    prior.narrow_ = std::move(narrow);
    prior.scores_ = std::move(scores);
    HPCMIXP_ASSERT(prior.caps_.size() == prior.narrow_.size() &&
                       prior.caps_.size() == prior.scores_.size(),
                   "static prior vectors disagree on site count");
    return prior;
}

std::size_t
StaticPrior::pinnedCount() const
{
    std::size_t n = 0;
    for (std::uint8_t cap : caps_)
        if (cap == 0)
            ++n;
    return n;
}

std::vector<std::size_t>
StaticPrior::freeSites() const
{
    std::vector<std::size_t> free;
    free.reserve(caps_.size());
    for (std::size_t i = 0; i < caps_.size(); ++i)
        if (caps_[i] != 0)
            free.push_back(i);
    return free;
}

Config
StaticPrior::seedConfig() const
{
    Config config(caps_.size());
    for (std::size_t i = 0; i < narrow_.size(); ++i)
        if (narrow_[i] && caps_[i] != 0)
            config.set(i);
    return config;
}

bool
StaticPrior::violates(const Config& config) const
{
    for (std::size_t i = 0; i < caps_.size() && i < config.size();
         ++i)
        if (config.level(i) > caps_[i])
            return true;
    return false;
}

Config
StaticPrior::clamped(Config config) const
{
    for (std::size_t i = 0; i < caps_.size() && i < config.size();
         ++i)
        if (config.level(i) > caps_[i])
            config.setLevel(i, caps_[i]);
    return config;
}

int
StaticPrior::groupScore(const std::vector<std::size_t>& sites) const
{
    int total = 0;
    for (std::size_t site : sites)
        if (site < scores_.size())
            total += scores_[site];
    return total;
}

} // namespace hpcmixp::search
