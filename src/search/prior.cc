#include "search/prior.h"

#include "support/logging.h"

namespace hpcmixp::search {

using support::fatal;
using support::strCat;

const char*
priorModeName(PriorMode mode)
{
    switch (mode) {
    case PriorMode::Off: return "off";
    case PriorMode::On: return "on";
    case PriorMode::Strict: return "strict";
    }
    return "off";
}

PriorMode
parsePriorMode(const std::string& text)
{
    if (text == "off")
        return PriorMode::Off;
    if (text == "on")
        return PriorMode::On;
    if (text == "strict")
        return PriorMode::Strict;
    fatal(strCat("unknown --static-prior mode '", text,
                 "' (expected on, off, or strict)"));
}

StaticPrior::StaticPrior(PriorMode mode, std::vector<bool> pinned,
                         std::vector<bool> narrow,
                         std::vector<int> scores)
    : mode_(mode), pinned_(std::move(pinned)),
      narrow_(std::move(narrow)), scores_(std::move(scores))
{
    HPCMIXP_ASSERT(pinned_.size() == narrow_.size() &&
                       pinned_.size() == scores_.size(),
                   "static prior vectors disagree on site count");
}

std::size_t
StaticPrior::pinnedCount() const
{
    std::size_t n = 0;
    for (bool p : pinned_)
        if (p)
            ++n;
    return n;
}

std::vector<std::size_t>
StaticPrior::freeSites() const
{
    std::vector<std::size_t> free;
    free.reserve(pinned_.size());
    for (std::size_t i = 0; i < pinned_.size(); ++i)
        if (!pinned_[i])
            free.push_back(i);
    return free;
}

Config
StaticPrior::seedConfig() const
{
    Config config(pinned_.size());
    for (std::size_t i = 0; i < narrow_.size(); ++i)
        if (narrow_[i] && !pinned_[i])
            config.set(i);
    return config;
}

bool
StaticPrior::violates(const Config& config) const
{
    for (std::size_t i = 0; i < pinned_.size() && i < config.size();
         ++i)
        if (pinned_[i] && config.test(i))
            return true;
    return false;
}

Config
StaticPrior::clamped(Config config) const
{
    for (std::size_t i = 0; i < pinned_.size() && i < config.size();
         ++i)
        if (pinned_[i] && config.test(i))
            config.set(i, false);
    return config;
}

int
StaticPrior::groupScore(const std::vector<std::size_t>& sites) const
{
    int total = 0;
    for (std::size_t site : sites)
        if (site < scores_.size())
            total += scores_[site];
    return total;
}

} // namespace hpcmixp::search
