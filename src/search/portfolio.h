#ifndef HPCMIXP_SEARCH_PORTFOLIO_H_
#define HPCMIXP_SEARCH_PORTFOLIO_H_

/**
 * @file
 * Portfolio search: race several strategies against one memo store.
 *
 * The paper evaluates its six strategies one campaign at a time; with
 * the persistent memo-cache (DESIGN.md Section 12) racing them becomes
 * affordable, because every configuration any entrant executes is
 * published to the shared store and costs every other entrant a memo
 * hit instead of an execution. runPortfolio() runs each entrant in its
 * own SearchContext on a thread pool and picks a winner
 * deterministically:
 *
 *  - Best mode (default): every entrant runs to completion or budget;
 *    the winner is chosen by bestResult() — an improvement beats none,
 *    higher best speedup beats lower, ties break on the
 *    lexicographically smaller config bitmask and finally on entrant
 *    order. Given identical per-entrant results the winner is
 *    reproducible, whatever the thread scheduling did.
 *  - Race mode: additionally, the first entrant to *finish* (not
 *    budget-cut) with an improvement raises a shared cancel flag;
 *    the others stop at their next budget check and report
 *    best-so-far. First-to-finish wall clock, same deterministic
 *    winner rule over whatever results the race produced.
 */

#include <memory>
#include <string>
#include <vector>

#include "search/driver.h"
#include "search/strategy.h"

namespace hpcmixp::search {

/** One strategy entered into the portfolio. */
struct PortfolioEntrant {
    std::string code; ///< strategy code; used when strategy is null
    /// Pre-configured instance (e.g. a seeded GA); null = create from
    /// the registry by code.
    std::shared_ptr<SearchStrategy> strategy;
    /// Granularity-matched problem this entrant searches.
    SearchProblem* problem = nullptr;
    /// Per-entrant wiring: prior, memo table, fingerprint, parallelism.
    SearchRunOptions run;
};

/** How the portfolio treats the first finisher. */
enum class PortfolioMode {
    Best, ///< run everyone to budget, pick the best result
    Race, ///< first clean finisher with an improvement cancels the rest
};

struct PortfolioOptions {
    PortfolioMode mode = PortfolioMode::Best;
    /// Worker threads; 0 = one per entrant.
    std::size_t workers = 0;
    /// Per-entrant budget (each entrant gets its own context).
    SearchBudget budget;
};

/** Outcome of one portfolio run. */
struct PortfolioResult {
    std::size_t winner = 0;            ///< index into results
    std::vector<SearchResult> results; ///< per entrant, entrant order
    double wallSeconds = 0.0;          ///< whole-portfolio wall clock
};

/** True when @p a beats @p b under the deterministic winner rule. */
bool betterSearchResult(const SearchResult& a, const SearchResult& b);

/**
 * Run every entrant concurrently and pick the winner. Entrants sharing
 * a MemoTable deduplicate executions against each other on the fly.
 */
PortfolioResult runPortfolio(const std::vector<PortfolioEntrant>& entrants,
                             const PortfolioOptions& options);

} // namespace hpcmixp::search

#endif // HPCMIXP_SEARCH_PORTFOLIO_H_
