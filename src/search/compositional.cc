#include "search/compositional.h"

#include <deque>
#include <unordered_set>
#include <vector>

namespace hpcmixp::search {

void
CompositionalSearch::run(SearchContext& ctx)
{
    std::size_t n = ctx.siteCount();
    std::vector<Config> passing;
    std::deque<std::size_t> worklist; // indices into `passing`
    std::unordered_set<std::string> attempted;

    auto tryConfig = [&](const Config& cfg) {
        if (!attempted.insert(cfg.toString()).second)
            return;
        const Evaluation& eval = ctx.evaluate(cfg);
        if (eval.passed()) {
            passing.push_back(cfg);
            worklist.push_back(passing.size() - 1);
        }
    };

    // Phase 1: each site individually.
    for (std::size_t i = 0; i < n; ++i)
        tryConfig(Config::withLowered(n, {i}));

    // Phase 2: repeatedly combine passing configurations. The search
    // terminates when there are no compositions left.
    while (!worklist.empty()) {
        std::size_t cur = worklist.front();
        worklist.pop_front();
        // Snapshot size: compositions with configs discovered later
        // will be attempted when *those* configs are processed.
        std::size_t limit = passing.size();
        for (std::size_t j = 0; j < limit; ++j) {
            if (j == cur)
                continue;
            Config combined = passing[cur].unionWith(passing[j]);
            if (combined == passing[cur] || combined == passing[j])
                continue;
            tryConfig(combined);
        }
    }
}

} // namespace hpcmixp::search
