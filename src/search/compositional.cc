#include "search/compositional.h"

#include <algorithm>
#include <deque>
#include <unordered_set>
#include <vector>

namespace hpcmixp::search {

void
CompositionalSearch::run(SearchContext& ctx)
{
    std::size_t n = ctx.siteCount();
    std::vector<Config> passing;
    std::deque<std::size_t> worklist; // indices into `passing`
    std::unordered_set<std::string> attempted;

    // Evaluate a deduplicated candidate set as one batch and absorb
    // the passers in order — the same order the serial loop would
    // have discovered them.
    auto tryBatch = [&](const std::vector<Config>& batch) {
        auto evals = ctx.evaluateBatch(batch);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            if (evals[i].passed()) {
                passing.push_back(batch[i]);
                worklist.push_back(passing.size() - 1);
            }
        }
    };

    // Phase 1: each site individually — one embarrassingly parallel
    // batch. Under a multi-rung ladder every (site, level) pair is a
    // single, level ascending within a site; phase 2's unionWith takes
    // the per-site max level, so deeper passing singles combine
    // exactly like the binary ones did. Sites pinned by a static
    // prior are never proposed, so no pinned site can reach phase 2
    // through a passing single either; a prior's level cap bounds the
    // proposed depth the same way.
    {
        const StaticPrior* prior = ctx.prior();
        std::size_t maxLevel = ctx.maxLevel();
        std::vector<Config> singles;
        singles.reserve(n * maxLevel);
        for (std::size_t i = 0; i < n; ++i) {
            if (prior && prior->pinned(i))
                continue;
            std::size_t bound = maxLevel;
            if (prior && prior->enabled())
                bound = std::min<std::size_t>(bound,
                                              prior->levelCap(i));
            for (std::size_t level = 1; level <= bound; ++level) {
                Config cfg = Config::withLowered(
                    n, {i}, static_cast<std::uint8_t>(level));
                if (attempted.insert(cfg.toString()).second)
                    singles.push_back(std::move(cfg));
            }
        }
        tryBatch(singles);
    }

    // Phase 2: repeatedly combine passing configurations. The
    // compositions of one worklist entry are mutually independent, so
    // each entry contributes one batch. The search terminates when
    // there are no compositions left.
    while (!worklist.empty()) {
        std::size_t cur = worklist.front();
        worklist.pop_front();
        // Snapshot size: compositions with configs discovered later
        // will be attempted when *those* configs are processed.
        std::size_t limit = passing.size();
        std::vector<Config> batch;
        for (std::size_t j = 0; j < limit; ++j) {
            if (j == cur)
                continue;
            Config combined = passing[cur].unionWith(passing[j]);
            if (combined == passing[cur] || combined == passing[j])
                continue;
            if (!attempted.insert(combined.toString()).second)
                continue;
            batch.push_back(std::move(combined));
        }
        tryBatch(batch);
    }
}

} // namespace hpcmixp::search
