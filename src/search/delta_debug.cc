#include "search/delta_debug.h"

#include <algorithm>
#include <vector>

#include "search/demotion.h"

namespace hpcmixp::search {

namespace {

/** @p loweredAll with every site in @p kept raised back to double. */
Config
configKeeping(const Config& loweredAll,
              const std::vector<std::size_t>& kept)
{
    Config cfg = loweredAll;
    for (std::size_t i : kept)
        cfg.set(i, false);
    return cfg;
}

/** Split @p items into @p n nearly equal chunks (no empty chunks). */
std::vector<std::vector<std::size_t>>
partition(const std::vector<std::size_t>& items, std::size_t n)
{
    n = std::min(n, items.size());
    std::vector<std::vector<std::size_t>> chunks(n);
    for (std::size_t i = 0; i < items.size(); ++i)
        chunks[i * n / items.size()].push_back(items[i]);
    return chunks;
}

} // namespace

void
DeltaDebugSearch::run(SearchContext& ctx)
{
    std::size_t n = ctx.siteCount();
    if (n == 0)
        return;

    // With a static prior the ddmin universe is the free sites only:
    // "all lowered" already keeps the pinned sites double, and they
    // never enter the kept set, so no round proposes lowering them.
    const StaticPrior* prior = ctx.prior();
    Config loweredAll = Config::allLowered(n);
    if (prior)
        loweredAll = prior->clamped(std::move(loweredAll));

    // Fast path: everything (free) can be lowered.
    if (ctx.evaluate(configKeeping(loweredAll, {})).passed()) {
        // Under a deeper ladder, keep descending from the all-float
        // configuration one rung at a time.
        if (ctx.maxLevel() > 1)
            greedyDemotionPass(ctx, loweredAll);
        return;
    }

    // Speculative ddmin over the kept set, starting from "keep
    // everything" (the baseline, which trivially passes). Where the
    // textbook algorithm short-circuits on the first passing
    // candidate, we batch every candidate of a round — they are
    // independent — and then apply the FIRST passing one in
    // enumeration order. The kept-set trajectory and the final answer
    // are identical to the short-circuiting loop; the difference is
    // that candidates the serial loop would have skipped get
    // evaluated speculatively, which is exactly the latency-hiding
    // trade the paper's cluster campaigns make.
    std::vector<std::size_t> kept;
    if (prior) {
        kept = prior->freeSites();
    } else {
        kept.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            kept[i] = i;
    }
    std::size_t granularity = 2;

    auto firstPassing =
        [&](const std::vector<std::vector<std::size_t>>& candidates)
        -> std::ptrdiff_t {
        std::vector<Config> batch;
        batch.reserve(candidates.size());
        for (const auto& c : candidates)
            batch.push_back(configKeeping(loweredAll, c));
        auto evals = ctx.evaluateBatch(batch);
        for (std::size_t i = 0; i < evals.size(); ++i)
            if (evals[i].passed())
                return static_cast<std::ptrdiff_t>(i);
        return -1;
    };

    while (kept.size() >= 1) {
        auto chunks = partition(kept, granularity);
        bool reduced = false;

        // Try each subset as the new kept set.
        std::vector<std::vector<std::size_t>> subsets;
        for (const auto& chunk : chunks)
            if (chunk.size() != kept.size())
                subsets.push_back(chunk);
        if (std::ptrdiff_t hit = firstPassing(subsets); hit >= 0) {
            kept = subsets[static_cast<std::size_t>(hit)];
            granularity = 2;
            reduced = true;
        }

        // Then each complement.
        if (!reduced && chunks.size() > 1) {
            std::vector<std::vector<std::size_t>> complements;
            for (std::size_t c = 0; c < chunks.size(); ++c) {
                std::vector<std::size_t> complement;
                for (std::size_t j = 0; j < chunks.size(); ++j)
                    if (j != c)
                        complement.insert(complement.end(),
                                          chunks[j].begin(),
                                          chunks[j].end());
                if (complement.size() == kept.size() ||
                    complement.empty())
                    continue;
                complements.push_back(std::move(complement));
            }
            if (std::ptrdiff_t hit = firstPassing(complements);
                hit >= 0) {
                kept = complements[static_cast<std::size_t>(hit)];
                granularity =
                    std::max<std::size_t>(granularity - 1, 2);
                reduced = true;
            }
        }

        if (!reduced) {
            if (granularity >= kept.size())
                break; // local minimum: no more clusters convertible
            granularity = std::min(kept.size(), granularity * 2);
        }
    }

    // ddmin settles *which* sites tolerate float; under a deeper
    // ladder a greedy post-pass then settles *how far down* each one
    // goes. Gated on maxLevel() > 1, so binary trajectories are
    // untouched. The re-evaluation of the settled configuration is a
    // cache hit whenever any ddmin round passed.
    if (ctx.maxLevel() > 1) {
        Config settled = configKeeping(loweredAll, kept);
        if (ctx.evaluate(settled).passed())
            greedyDemotionPass(ctx, std::move(settled));
    }
}

} // namespace hpcmixp::search
