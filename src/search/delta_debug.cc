#include "search/delta_debug.h"

#include <algorithm>
#include <vector>

namespace hpcmixp::search {

namespace {

/** Configuration that lowers every site not in @p kept. */
Config
configKeeping(std::size_t n, const std::vector<std::size_t>& kept)
{
    Config cfg = Config::allLowered(n);
    for (std::size_t i : kept)
        cfg.set(i, false);
    return cfg;
}

/** Split @p items into @p n nearly equal chunks (no empty chunks). */
std::vector<std::vector<std::size_t>>
partition(const std::vector<std::size_t>& items, std::size_t n)
{
    n = std::min(n, items.size());
    std::vector<std::vector<std::size_t>> chunks(n);
    for (std::size_t i = 0; i < items.size(); ++i)
        chunks[i * n / items.size()].push_back(items[i]);
    return chunks;
}

} // namespace

void
DeltaDebugSearch::run(SearchContext& ctx)
{
    std::size_t n = ctx.siteCount();
    if (n == 0)
        return;

    auto passes = [&](const std::vector<std::size_t>& kept) {
        return ctx.evaluate(configKeeping(n, kept)).passed();
    };

    // Fast path: everything can be lowered.
    if (passes({}))
        return;

    // ddmin over the kept set, starting from "keep everything"
    // (the baseline, which trivially passes).
    std::vector<std::size_t> kept(n);
    for (std::size_t i = 0; i < n; ++i)
        kept[i] = i;
    std::size_t granularity = 2;

    while (kept.size() >= 1) {
        auto chunks = partition(kept, granularity);
        bool reduced = false;

        // Try each subset as the new kept set.
        for (const auto& chunk : chunks) {
            if (chunk.size() == kept.size())
                continue;
            if (passes(chunk)) {
                kept = chunk;
                granularity = 2;
                reduced = true;
                break;
            }
        }

        // Then each complement.
        if (!reduced && chunks.size() > 1) {
            for (std::size_t c = 0; c < chunks.size(); ++c) {
                std::vector<std::size_t> complement;
                for (std::size_t j = 0; j < chunks.size(); ++j)
                    if (j != c)
                        complement.insert(complement.end(),
                                          chunks[j].begin(),
                                          chunks[j].end());
                if (complement.size() == kept.size() ||
                    complement.empty())
                    continue;
                if (passes(complement)) {
                    kept = complement;
                    granularity = std::max<std::size_t>(
                        granularity - 1, 2);
                    reduced = true;
                    break;
                }
            }
        }

        if (!reduced) {
            if (granularity >= kept.size())
                break; // local minimum: no more clusters convertible
            granularity = std::min(kept.size(), granularity * 2);
        }
    }
}

} // namespace hpcmixp::search
