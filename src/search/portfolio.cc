#include "search/portfolio.h"

#include <algorithm>
#include <atomic>

#include "support/logging.h"
#include "support/thread_pool.h"
#include "support/timer.h"

namespace hpcmixp::search {

bool
betterSearchResult(const SearchResult& a, const SearchResult& b)
{
    if (a.foundImprovement != b.foundImprovement)
        return a.foundImprovement;
    if (!a.foundImprovement)
        return false; // both report the baseline; keep entrant order
    if (a.bestEvaluation.speedup != b.bestEvaluation.speedup)
        return a.bestEvaluation.speedup > b.bestEvaluation.speedup;
    // Equal speedups: the lexicographically smaller bitmask wins, so
    // the choice never depends on which entrant finished first.
    return a.best.toString() < b.best.toString();
}

PortfolioResult
runPortfolio(const std::vector<PortfolioEntrant>& entrants,
             const PortfolioOptions& options)
{
    HPCMIXP_ASSERT(!entrants.empty(), "portfolio with no entrants");
    auto cancel = std::make_shared<std::atomic<bool>>(false);
    support::WallTimer wall;

    std::vector<SearchResult> results(entrants.size());
    auto runOne = [&](std::size_t i) {
        const PortfolioEntrant& entrant = entrants[i];
        HPCMIXP_ASSERT(entrant.problem != nullptr,
                       "portfolio entrant has no problem");
        SearchRunOptions run = entrant.run;
        if (options.mode == PortfolioMode::Race)
            run.cancel = cancel;
        std::unique_ptr<SearchStrategy> owned;
        SearchStrategy* strategy = entrant.strategy.get();
        if (strategy == nullptr) {
            owned = StrategyRegistry::instance().create(entrant.code);
            strategy = owned.get();
        }
        results[i] =
            runSearch(*entrant.problem, *strategy, options.budget, run);
        // A clean finish (not budget- or cancel-cut) with an
        // improvement ends the race; entrants still running stop at
        // their next budget check with best-so-far intact.
        if (options.mode == PortfolioMode::Race &&
            !results[i].timedOut && results[i].foundImprovement)
            cancel->store(true, std::memory_order_relaxed);
    };

    std::size_t workers = options.workers > 0 ? options.workers
                                              : entrants.size();
    workers = std::min(workers, entrants.size());
    if (workers <= 1) {
        for (std::size_t i = 0; i < entrants.size(); ++i)
            runOne(i);
    } else {
        support::ThreadPool pool(workers);
        std::vector<std::future<void>> futures;
        futures.reserve(entrants.size());
        for (std::size_t i = 0; i < entrants.size(); ++i)
            futures.push_back(pool.submit([&runOne, i] { runOne(i); }));
        for (auto& fut : futures)
            fut.get();
    }

    PortfolioResult out;
    out.results = std::move(results);
    out.winner = 0;
    for (std::size_t i = 1; i < out.results.size(); ++i)
        if (betterSearchResult(out.results[i],
                               out.results[out.winner]))
            out.winner = i;
    out.wallSeconds = wall.seconds();
    return out;
}

} // namespace hpcmixp::search
