#ifndef HPCMIXP_SEARCH_DELTA_DEBUG_H_
#define HPCMIXP_SEARCH_DELTA_DEBUG_H_

/**
 * @file
 * Delta-debugging search (Precimonious-style).
 *
 * Runs a modified binary search over the cluster list: it minimizes the
 * set K of clusters that must be *kept* in double precision, subject to
 * the configuration "lower everything outside K" passing verification.
 * The classic ddmin reduction (subsets, then complements, then doubled
 * granularity) is applied until a local minimum is reached in which no
 * more clusters can be converted (paper Section II-B).
 */

#include "search/strategy.h"

namespace hpcmixp::search {

/** ddmin over the kept-in-double cluster set. */
class DeltaDebugSearch : public SearchStrategy {
  public:
    std::string name() const override { return "delta-debugging"; }
    std::string code() const override { return "DD"; }
    Granularity granularity() const override
    {
        return Granularity::Cluster;
    }
    void run(SearchContext& ctx) override;
};

} // namespace hpcmixp::search

#endif // HPCMIXP_SEARCH_DELTA_DEBUG_H_
