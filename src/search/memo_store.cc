#include "search/memo_store.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>

#include "support/logging.h"
#include "support/string_util.h"

namespace hpcmixp::search {

using support::strCat;

const char*
evalStatusName(EvalStatus status)
{
    switch (status) {
      case EvalStatus::Pass:
        return "pass";
      case EvalStatus::QualityFail:
        return "quality_fail";
      case EvalStatus::CompileFail:
        return "compile_fail";
      case EvalStatus::RuntimeFail:
        return "runtime_fail";
    }
    return "unknown";
}

std::optional<EvalStatus>
evalStatusFromName(const std::string& name)
{
    if (name == "pass")
        return EvalStatus::Pass;
    if (name == "quality_fail")
        return EvalStatus::QualityFail;
    if (name == "compile_fail")
        return EvalStatus::CompileFail;
    if (name == "runtime_fail")
        return EvalStatus::RuntimeFail;
    return std::nullopt;
}

namespace {

/** Hexfloat rendering: round-trip exact, including nan/inf. */
std::string
doubleField(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

/** One segment record: "<key> <status> <runtime> <speedup> <loss>". */
std::string
recordOf(const std::string& key, const Evaluation& eval)
{
    return strCat(key, ' ', evalStatusName(eval.status), ' ',
                  doubleField(eval.runtimeSeconds), ' ',
                  doubleField(eval.speedup), ' ',
                  doubleField(eval.qualityLoss));
}

/** Split @p record on single spaces into exactly @p n fields. */
bool
splitFields(const std::string& record, std::string* fields,
            std::size_t n)
{
    std::size_t pos = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t end = i + 1 == n ? record.size()
                                     : record.find(' ', pos);
        if (end == std::string::npos)
            return false;
        fields[i] = record.substr(pos, end - pos);
        if (fields[i].empty() ||
            fields[i].find(' ') != std::string::npos)
            return false;
        pos = end + 1;
    }
    return true;
}

bool
parseDoubleField(const std::string& text, double& out)
{
    const char* begin = text.c_str();
    char* end = nullptr;
    out = std::strtod(begin, &end);
    return end == begin + text.size();
}

} // namespace

std::string
MemoFingerprint::describe() const
{
    return strCat("mixpmemo v1 benchmark=", benchmark,
                  " input=", inputSignature, " metric=", metric,
                  " threshold=", doubleField(threshold),
                  " sites=", sites, " ladder=", ladder);
}

std::uint64_t
MemoFingerprint::hash() const
{
    return support::fnv1a64(describe());
}

support::json::Value
MemoFingerprint::toJson() const
{
    using support::json::Value;
    Value v = Value::object();
    v.set("benchmark", Value::string(benchmark));
    // The signature is a full 64-bit hash; JSON numbers cannot carry
    // it exactly, so it travels as a decimal string.
    v.set("input_signature",
          Value::string(strCat(inputSignature)));
    v.set("metric", Value::string(metric));
    v.set("threshold", Value::number(threshold));
    v.set("sites", Value::number(static_cast<double>(sites)));
    v.set("ladder", Value::string(ladder));
    return v;
}

std::optional<MemoFingerprint>
MemoFingerprint::fromJson(const support::json::Value& v)
{
    if (!v.isObject() || !v.has("benchmark") ||
        !v.has("input_signature") || !v.has("metric") ||
        !v.has("threshold") || !v.has("sites") || !v.has("ladder"))
        return std::nullopt;
    MemoFingerprint fp;
    fp.benchmark = v.at("benchmark").asString();
    const std::string& sig = v.at("input_signature").asString();
    char* end = nullptr;
    fp.inputSignature = std::strtoull(sig.c_str(), &end, 10);
    if (end != sig.c_str() + sig.size())
        return std::nullopt;
    fp.metric = v.at("metric").asString();
    fp.threshold = v.at("threshold").asNumber();
    fp.sites = static_cast<std::size_t>(v.at("sites").asLong());
    fp.ladder = v.at("ladder").asString();
    if (!fp.valid())
        return std::nullopt;
    return fp;
}

MemoTable::MemoTable(const std::string& path,
                     const MemoFingerprint& fingerprint)
    : fingerprint_(fingerprint), log_(path, fingerprint.describe())
{
    truncatedBytes_ = log_.truncatedBytes();
    invalidated_ = log_.reset();
    if (truncatedBytes_ > 0)
        support::warn(strCat("memo store: dropped ", truncatedBytes_,
                             " bytes of partial record from '", path,
                             "'"));

    // Index the recovered records. A record that fails to parse is a
    // corrupted middle entry (not the crash tail, which the log already
    // truncated); skipping it loses one memoized evaluation, nothing
    // else.
    std::size_t malformed = 0;
    for (const std::string& record : log_.takeRecords()) {
        std::string fields[5];
        Evaluation eval;
        std::optional<EvalStatus> status;
        if (!splitFields(record, fields, 5) ||
            fields[0].size() != fingerprint_.sites ||
            !(status = evalStatusFromName(fields[1])) ||
            !parseDoubleField(fields[2], eval.runtimeSeconds) ||
            !parseDoubleField(fields[3], eval.speedup) ||
            !parseDoubleField(fields[4], eval.qualityLoss)) {
            ++malformed;
            continue;
        }
        eval.status = *status;
        shardFor(fields[0]).map.emplace(std::move(fields[0]),
                                        std::move(eval));
    }
    if (malformed > 0)
        support::warn(strCat("memo store: skipped ", malformed,
                             " malformed records in '", path, "'"));
}

MemoTable::Shard&
MemoTable::shardFor(const std::string& key)
{
    return shards_[support::fnv1a64(key) % kShards];
}

const MemoTable::Shard&
MemoTable::shardFor(const std::string& key) const
{
    return shards_[support::fnv1a64(key) % kShards];
}

std::optional<Evaluation>
MemoTable::lookup(const std::string& key) const
{
    const Shard& shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it == shard.map.end())
        return std::nullopt;
    return it->second;
}

bool
MemoTable::publish(const std::string& key, const Evaluation& eval)
{
    if (!eval.ran())
        return false; // compile failures are never memoized
    {
        Shard& shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        if (!shard.map.emplace(key, eval).second)
            return false; // first publisher wins
    }
    std::lock_guard<std::mutex> lock(appendMutex_);
    log_.append(recordOf(key, eval));
    return true;
}

std::size_t
MemoTable::size() const
{
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        total += shard.map.size();
    }
    return total;
}

std::vector<std::pair<std::string, Evaluation>>
MemoTable::entries() const
{
    std::vector<std::pair<std::string, Evaluation>> all;
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        all.insert(all.end(), shard.map.begin(), shard.map.end());
    }
    return all;
}

std::size_t
MemoTable::seedFromCheckpoint(const support::json::Value& checkpoint)
{
    if (!checkpoint.isObject() || !checkpoint.has("sites") ||
        !checkpoint.has("evaluations"))
        return 0;
    if (static_cast<std::size_t>(checkpoint.at("sites").asLong()) !=
        fingerprint_.sites)
        return 0;
    if (checkpoint.has("fingerprint")) {
        auto fp = MemoFingerprint::fromJson(
            checkpoint.at("fingerprint"));
        if (!fp || !(*fp == fingerprint_))
            return 0; // a different evaluation function
    }
    std::size_t seeded = 0;
    for (const auto& entry : checkpoint.at("evaluations").items()) {
        if (!entry.isObject() || !entry.has("config") ||
            !entry.has("status"))
            continue;
        const std::string& key = entry.at("config").asString();
        if (key.size() != fingerprint_.sites)
            continue;
        auto status = evalStatusFromName(entry.at("status").asString());
        if (!status)
            continue;
        Evaluation eval;
        eval.status = *status;
        auto num = [&](const char* name, double fallback) {
            return entry.has(name) && !entry.at(name).isNull()
                       ? entry.at(name).asNumber()
                       : fallback;
        };
        eval.runtimeSeconds = num("runtime_seconds", 0.0);
        eval.speedup = num("speedup", 0.0);
        eval.qualityLoss = num(
            "quality_loss", std::numeric_limits<double>::quiet_NaN());
        if (publish(key, eval))
            ++seeded;
    }
    return seeded;
}

MemoStore::MemoStore(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        support::fatal(strCat("memo store: cannot create directory '",
                              dir_, "': ", ec.message()));
}

std::shared_ptr<MemoTable>
MemoStore::table(const MemoFingerprint& fp)
{
    HPCMIXP_ASSERT(fp.valid(), "memo store: invalid fingerprint");
    std::uint64_t hash = fp.hash();
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tables_.find(hash);
    if (it != tables_.end())
        return it->second;
    char name[32];
    std::snprintf(name, sizeof(name), "memo-%016llx.log",
                  static_cast<unsigned long long>(hash));
    auto table = std::make_shared<MemoTable>(
        (std::filesystem::path(dir_) / name).string(), fp);
    tables_.emplace(hash, table);
    return table;
}

} // namespace hpcmixp::search
