#include "search/genetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/logging.h"
#include "support/rng.h"

namespace hpcmixp::search {

namespace {

/** Scalar fitness: higher is better. */
double
fitness(const Evaluation& eval)
{
    if (eval.passed())
        return 1.0 + eval.speedup;
    if (!eval.ran())
        return 0.0; // compile failure: worst possible
    double loss = eval.qualityLoss;
    if (!std::isfinite(loss))
        return 0.01; // destroyed output barely beats compile failure
    // Failing individuals are ranked by how close they came.
    return 0.5 / (1.0 + loss);
}

} // namespace

void
GeneticSearch::run(SearchContext& ctx)
{
    std::size_t n = ctx.siteCount();
    if (n == 0)
        return;

    GaOptions opt = options_;
    if (opt.mutationRate <= 0.0)
        opt.mutationRate = 1.0 / static_cast<double>(n);
    HPCMIXP_ASSERT(opt.population >= 2, "GA population must be >= 2");

    support::Pcg32 rng(opt.seed);

    auto randomConfig = [&] {
        Config cfg(n);
        for (std::size_t i = 0; i < n; ++i)
            cfg.set(i, rng.chance(0.5));
        return cfg;
    };

    struct Individual {
        Config config;
        double fit = 0.0;
    };

    auto score = [&](const Config& cfg) {
        return fitness(ctx.evaluate(cfg));
    };

    std::vector<Individual> population;
    population.reserve(opt.population);
    for (std::size_t i = 0; i < opt.population; ++i) {
        Config cfg = randomConfig();
        population.push_back({cfg, score(cfg)});
    }

    auto bestOf = [](const std::vector<Individual>& pop) {
        return std::max_element(pop.begin(), pop.end(),
                                [](const auto& a, const auto& b) {
                                    return a.fit < b.fit;
                                });
    };

    auto tournament = [&]() -> const Individual& {
        const Individual& a =
            population[rng.nextBounded(
                static_cast<std::uint32_t>(population.size()))];
        const Individual& b =
            population[rng.nextBounded(
                static_cast<std::uint32_t>(population.size()))];
        return a.fit >= b.fit ? a : b;
    };

    double bestFit = bestOf(population)->fit;
    std::size_t stagnant = 0;

    for (std::size_t gen = 1; gen < opt.generations; ++gen) {
        std::vector<Individual> next;
        next.reserve(opt.population);
        // Elitism: carry the fittest individual forward unchanged.
        next.push_back(*bestOf(population));

        while (next.size() < opt.population) {
            const Individual& p1 = tournament();
            const Individual& p2 = tournament();
            Config child = p1.config;
            if (rng.chance(opt.crossoverRate)) {
                for (std::size_t i = 0; i < n; ++i)
                    if (rng.chance(0.5))
                        child.set(i, p2.config.test(i));
            }
            for (std::size_t i = 0; i < n; ++i)
                if (rng.chance(opt.mutationRate))
                    child.set(i, !child.test(i));
            next.push_back({child, score(child)});
        }
        population = std::move(next);

        double newBest = bestOf(population)->fit;
        if (newBest > bestFit) {
            bestFit = newBest;
            stagnant = 0;
        } else if (++stagnant >= opt.stagnationLimit) {
            break; // best-fit individual unchanged for several iterations
        }
    }
}

} // namespace hpcmixp::search
