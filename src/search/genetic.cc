#include "search/genetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/logging.h"
#include "support/rng.h"

namespace hpcmixp::search {

namespace {

/** Scalar fitness: higher is better. */
double
fitness(const Evaluation& eval)
{
    if (eval.passed())
        return 1.0 + eval.speedup;
    if (!eval.ran())
        return 0.0; // compile failure: worst possible
    double loss = eval.qualityLoss;
    if (!std::isfinite(loss))
        return 0.01; // destroyed output barely beats compile failure
    // Failing individuals are ranked by how close they came.
    return 0.5 / (1.0 + loss);
}

} // namespace

void
GeneticSearch::run(SearchContext& ctx)
{
    std::size_t n = ctx.siteCount();
    if (n == 0)
        return;

    GaOptions opt = options_;
    if (opt.mutationRate <= 0.0)
        opt.mutationRate = 1.0 / static_cast<double>(n);
    HPCMIXP_ASSERT(opt.population >= 2, "GA population must be >= 2");

    support::Pcg32 rng(opt.seed);
    const StaticPrior* prior = ctx.prior();
    // Ladder depth; every multi-rung branch below is gated on
    // maxLevel > 1 so the binary campaign draws the exact RNG stream
    // (and therefore trajectory) of the pre-ladder code.
    std::size_t maxLevel = ctx.maxLevel();

    auto randomConfig = [&] {
        Config cfg(n);
        if (maxLevel == 1) {
            for (std::size_t i = 0; i < n; ++i)
                cfg.set(i, rng.chance(0.5));
        } else {
            for (std::size_t i = 0; i < n; ++i)
                cfg.setLevel(i,
                             static_cast<std::uint8_t>(rng.nextBounded(
                                 static_cast<std::uint32_t>(maxLevel +
                                                            1))));
        }
        return cfg;
    };

    struct Individual {
        Config config;
        double fit = 0.0;
    };

    // Scoring draws no randomness, so a whole generation can be bred
    // first and evaluated as one batch without disturbing the RNG
    // stream — the trajectory matches breeding and scoring one child
    // at a time.
    std::vector<Individual> population;
    population.reserve(opt.population);
    {
        std::vector<Config> seeds;
        seeds.reserve(opt.population);
        for (std::size_t i = 0; i < opt.population; ++i)
            seeds.push_back(randomConfig());
        if (prior) {
            // Replace one random individual with the SafeToNarrow
            // mask and clamp the rest, *after* all draws: the RNG
            // stream is untouched, so the Off-mode trajectory is
            // bit-identical to a build without the prior subsystem.
            seeds[0] = prior->seedConfig();
            for (std::size_t i = 1; i < seeds.size(); ++i)
                seeds[i] = prior->clamped(std::move(seeds[i]));
        }
        auto evals = ctx.evaluateBatch(seeds);
        for (std::size_t i = 0; i < seeds.size(); ++i)
            population.push_back(
                {std::move(seeds[i]), fitness(evals[i])});
    }

    auto bestOf = [](const std::vector<Individual>& pop) {
        return std::max_element(pop.begin(), pop.end(),
                                [](const auto& a, const auto& b) {
                                    return a.fit < b.fit;
                                });
    };

    auto tournament = [&]() -> const Individual& {
        const Individual& a =
            population[rng.nextBounded(
                static_cast<std::uint32_t>(population.size()))];
        const Individual& b =
            population[rng.nextBounded(
                static_cast<std::uint32_t>(population.size()))];
        return a.fit >= b.fit ? a : b;
    };

    double bestFit = bestOf(population)->fit;
    std::size_t stagnant = 0;

    for (std::size_t gen = 1; gen < opt.generations; ++gen) {
        std::vector<Individual> next;
        next.reserve(opt.population);
        // Elitism: carry the fittest individual forward unchanged.
        next.push_back(*bestOf(population));

        std::vector<Config> children;
        children.reserve(opt.population - 1);
        while (next.size() + children.size() < opt.population) {
            const Individual& p1 = tournament();
            const Individual& p2 = tournament();
            Config child = p1.config;
            if (rng.chance(opt.crossoverRate)) {
                // Uniform crossover copies the parent's *level*; for
                // binary configs this is the historical bit copy.
                for (std::size_t i = 0; i < n; ++i)
                    if (rng.chance(0.5))
                        child.setLevel(i, p2.config.level(i));
            }
            for (std::size_t i = 0; i < n; ++i) {
                if (!rng.chance(opt.mutationRate))
                    continue;
                if (maxLevel == 1) {
                    child.set(i, !child.test(i));
                    continue;
                }
                // Ladder-aware mutation steps one rung at a time:
                // up or down with equal probability, the only legal
                // way at the ladder's ends. The direction draw only
                // happens in the interior, which only exists when
                // maxLevel > 1 — the binary stream is untouched.
                std::uint8_t level = child.level(i);
                std::uint8_t next;
                if (level == 0)
                    next = 1;
                else if (level >= maxLevel)
                    next = static_cast<std::uint8_t>(level - 1);
                else
                    next = rng.chance(0.5)
                               ? static_cast<std::uint8_t>(level + 1)
                               : static_cast<std::uint8_t>(level - 1);
                child.setLevel(i, next);
            }
            children.push_back(std::move(child));
        }
        if (prior)
            // Crossover and mutation may flip a pinned site; clamp
            // after breeding so the per-child draw count (and the RNG
            // stream) stays what it was without a prior.
            for (Config& child : children)
                child = prior->clamped(std::move(child));
        auto evals = ctx.evaluateBatch(children);
        for (std::size_t i = 0; i < children.size(); ++i)
            next.push_back(
                {std::move(children[i]), fitness(evals[i])});
        population = std::move(next);

        double newBest = bestOf(population)->fit;
        if (newBest > bestFit) {
            bestFit = newBest;
            stagnant = 0;
        } else if (++stagnant >= opt.stagnationLimit) {
            break; // best-fit individual unchanged for several iterations
        }
    }
}

} // namespace hpcmixp::search
