#ifndef HPCMIXP_SEARCH_STRATEGY_H_
#define HPCMIXP_SEARCH_STRATEGY_H_

/**
 * @file
 * Strategy interface and registry.
 *
 * The six strategies of the paper are registered under their two-letter
 * codes: CB (combinational), CM (compositional), DD (delta-debugging),
 * HR (hierarchical), HC (hierarchical-compositional), GA (genetic).
 * New strategies can be added through the registry — the extension
 * point CRAFT provides and the paper exercises by adding GA.
 */

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "search/context.h"

namespace hpcmixp::search {

/** Granularity a strategy's implementation operates at (Section IV-A). */
enum class Granularity {
    Cluster,  ///< one site per Typeforge cluster (CB, DD, GA)
    Variable, ///< one site per variable (CM, HR, HC)
};

/** A mixed-precision search strategy. */
class SearchStrategy {
  public:
    virtual ~SearchStrategy() = default;

    /** Full name, e.g. "delta-debugging". */
    virtual std::string name() const = 0;

    /** Two-letter paper code, e.g. "DD". */
    virtual std::string code() const = 0;

    /** Site granularity this strategy's implementation uses. */
    virtual Granularity granularity() const = 0;

    /**
     * Explore the space through @p ctx. May exit early via
     * BudgetExhausted (the driver catches it); the best passing
     * configuration is tracked by the context either way.
     */
    virtual void run(SearchContext& ctx) = 0;
};

/** Factory registry of strategies keyed by code (case-insensitive). */
class StrategyRegistry {
  public:
    using Factory = std::function<std::unique_ptr<SearchStrategy>()>;

    /** Process-wide instance with the six built-ins registered. */
    static StrategyRegistry& instance();

    /** Register a factory under @p code; fatal()s on duplicates. */
    void add(const std::string& code, Factory factory);

    /** Instantiate a strategy; fatal()s for unknown codes. */
    std::unique_ptr<SearchStrategy> create(const std::string& code) const;

    /** True when @p code is registered. */
    bool has(const std::string& code) const;

    /** Registered codes in registration order. */
    std::vector<std::string> codes() const;

  private:
    StrategyRegistry();
    std::vector<std::pair<std::string, Factory>> factories_;
};

} // namespace hpcmixp::search

#endif // HPCMIXP_SEARCH_STRATEGY_H_
