#ifndef HPCMIXP_SEARCH_CONFIG_H_
#define HPCMIXP_SEARCH_CONFIG_H_

/**
 * @file
 * A mixed-precision configuration.
 *
 * A configuration assigns one bit per *search site*: true means the
 * site is lowered to single precision, false means it stays double.
 * Sites are clusters for cluster-level strategies (CB, DD, GA) and
 * individual variables for variable-level strategies (CM, HR, HC),
 * mirroring the granularity split reported in the paper (Section IV-A).
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hpcmixp::search {

/** Bit-per-site precision configuration. */
class Config {
  public:
    /** All-double configuration over @p sites sites (the baseline). */
    explicit Config(std::size_t sites = 0) : bits_(sites, 0) {}

    /** Configuration with the given sites lowered. */
    static Config withLowered(std::size_t sites,
                              const std::vector<std::size_t>& lowered);

    /** All-float configuration. */
    static Config allLowered(std::size_t sites);

    /** Number of sites. */
    std::size_t size() const { return bits_.size(); }

    /** Is site @p i lowered to single precision? */
    bool test(std::size_t i) const;

    /** Set site @p i lowered (true) or double (false). */
    void set(std::size_t i, bool lowered = true);

    /** Number of lowered sites. */
    std::size_t count() const;

    /** True when no site is lowered (the baseline). */
    bool isBaseline() const { return count() == 0; }

    /** Indices of lowered sites, ascending. */
    std::vector<std::size_t> lowered() const;

    /** Union: lowered in either configuration. */
    Config unionWith(const Config& other) const;

    /** True when every site lowered here is lowered in @p other. */
    bool isSubsetOf(const Config& other) const;

    /** Compact string form, e.g. "1010"; usable as a cache key. */
    std::string toString() const;

    bool operator==(const Config& other) const = default;

  private:
    std::vector<std::uint8_t> bits_;
};

} // namespace hpcmixp::search

#endif // HPCMIXP_SEARCH_CONFIG_H_
