#ifndef HPCMIXP_SEARCH_CONFIG_H_
#define HPCMIXP_SEARCH_CONFIG_H_

/**
 * @file
 * A mixed-precision configuration.
 *
 * A configuration assigns one *ladder level* per search site: level 0
 * means the site stays at the reference precision (double), level L>0
 * binds it to rung L of the campaign's PrecisionLadder. The classic
 * binary campaign is the two-rung ladder, where level 1 == "lowered
 * to single" and the historical bool API (test/set) keeps its exact
 * meaning. Sites are clusters for cluster-level strategies (CB, DD,
 * GA) and individual variables for variable-level strategies (CM, HR,
 * HC), mirroring the granularity split reported in the paper
 * (Section IV-A).
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hpcmixp::search {

/** Level-per-site precision configuration. */
class Config {
  public:
    /** All-double configuration over @p sites sites (the baseline). */
    explicit Config(std::size_t sites = 0) : levels_(sites, 0) {}

    /** Configuration with the given sites at @p level. */
    static Config withLowered(std::size_t sites,
                              const std::vector<std::size_t>& lowered,
                              std::uint8_t level = 1);

    /** Every site at @p level (default: the all-float config). */
    static Config allLowered(std::size_t sites, std::uint8_t level = 1);

    /** Parse a toString() key, e.g. "0120"; fatal on non-digits. */
    static Config fromString(const std::string& key);

    /** Number of sites. */
    std::size_t size() const { return levels_.size(); }

    /** Is site @p i lowered below the reference precision? */
    bool test(std::size_t i) const;

    /** Set site @p i to level 1 (true) or back to double (false). */
    void set(std::size_t i, bool lowered = true);

    /** Ladder level of site @p i (0 = double). */
    std::uint8_t level(std::size_t i) const;

    /** Set site @p i to ladder level @p level. */
    void setLevel(std::size_t i, std::uint8_t level);

    /** Number of lowered (level > 0) sites. */
    std::size_t count() const;

    /** Deepest level any site takes (0 for the baseline). */
    std::uint8_t maxLevel() const;

    /** True when no site is lowered (the baseline). */
    bool isBaseline() const { return count() == 0; }

    /** Indices of lowered sites, ascending. */
    std::vector<std::size_t> lowered() const;

    /** Per-site deepest level of the two configurations. */
    Config unionWith(const Config& other) const;

    /** True when every site's level here is <= its level in
     *  @p other (the pointwise ladder order). */
    bool isSubsetOf(const Config& other) const;

    /** Compact string form, one level digit per site, e.g. "1020";
     *  usable as a cache key. Binary configs render as of old. */
    std::string toString() const;

    bool operator==(const Config& other) const = default;

  private:
    std::vector<std::uint8_t> levels_;
};

} // namespace hpcmixp::search

#endif // HPCMIXP_SEARCH_CONFIG_H_
