#include "search/strategy.h"

#include "search/combinational.h"
#include "search/compositional.h"
#include "search/delta_debug.h"
#include "search/genetic.h"
#include "search/hierarchical.h"
#include "search/hierarchical_compositional.h"
#include "support/logging.h"
#include "support/string_util.h"

namespace hpcmixp::search {

StrategyRegistry::StrategyRegistry()
{
    add("CB", [] { return std::make_unique<CombinationalSearch>(); });
    add("CM", [] { return std::make_unique<CompositionalSearch>(); });
    add("DD", [] { return std::make_unique<DeltaDebugSearch>(); });
    add("HR", [] { return std::make_unique<HierarchicalSearch>(); });
    add("HC", [] {
        return std::make_unique<HierarchicalCompositionalSearch>();
    });
    add("GA", [] { return std::make_unique<GeneticSearch>(); });
}

StrategyRegistry&
StrategyRegistry::instance()
{
    static StrategyRegistry registry;
    return registry;
}

void
StrategyRegistry::add(const std::string& code, Factory factory)
{
    if (has(code))
        support::fatal(
            support::strCat("strategy '", code, "' already registered"));
    factories_.emplace_back(code, std::move(factory));
}

std::unique_ptr<SearchStrategy>
StrategyRegistry::create(const std::string& code) const
{
    std::string wanted = support::toLower(code);
    for (const auto& [key, factory] : factories_)
        if (support::toLower(key) == wanted)
            return factory();
    support::fatal(
        support::strCat("unknown search strategy '", code, "'"));
}

bool
StrategyRegistry::has(const std::string& code) const
{
    std::string wanted = support::toLower(code);
    for (const auto& [key, factory] : factories_)
        if (support::toLower(key) == wanted)
            return true;
    return false;
}

std::vector<std::string>
StrategyRegistry::codes() const
{
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [key, factory] : factories_)
        out.push_back(key);
    return out;
}

} // namespace hpcmixp::search
