#ifndef HPCMIXP_SEARCH_GENETIC_H_
#define HPCMIXP_SEARCH_GENETIC_H_

/**
 * @file
 * Genetic-algorithm search — the strategy the paper adds to CRAFT.
 *
 * A population of random configurations (bit arrays over clusters)
 * evolves by tournament selection, uniform crossover and per-bit
 * mutation. Fitness favours passing configurations by measured speedup;
 * failing ones are penalized by quality loss. Terminates after a fixed
 * number of generations or when the best individual stagnates — the
 * strict termination criterion that makes GA's analysis time the most
 * predictable of all strategies (paper Sections II-B and V).
 */

#include <cstdint>

#include "search/strategy.h"

namespace hpcmixp::search {

/** Tunable GA parameters (paper defaults keep the search short). */
struct GaOptions {
    std::size_t population = 6;      ///< individuals per generation
    std::size_t generations = 8;     ///< hard iteration cap
    std::size_t stagnationLimit = 3; ///< stop after N flat generations
    double crossoverRate = 0.9;      ///< else clone a parent
    double mutationRate = 0.0;       ///< 0 = use 1/siteCount
    std::uint64_t seed = 2020;       ///< RNG seed (IISWC'20 vintage)
};

/** Evolutionary search over cluster bit arrays. */
class GeneticSearch : public SearchStrategy {
  public:
    GeneticSearch() = default;
    explicit GeneticSearch(GaOptions options) : options_(options) {}

    std::string name() const override { return "genetic"; }
    std::string code() const override { return "GA"; }
    Granularity granularity() const override
    {
        return Granularity::Cluster;
    }
    void run(SearchContext& ctx) override;

    const GaOptions& options() const { return options_; }

  private:
    GaOptions options_;
};

} // namespace hpcmixp::search

#endif // HPCMIXP_SEARCH_GENETIC_H_
