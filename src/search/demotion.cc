#include "search/demotion.h"

#include <vector>

namespace hpcmixp::search {

Config
greedyDemotionPass(SearchContext& ctx, Config start)
{
    std::size_t maxLevel = ctx.maxLevel();
    if (maxLevel <= 1)
        return start;
    const StaticPrior* prior = ctx.prior();
    bool usePrior = prior && prior->enabled();
    Config cur = std::move(start);
    for (;;) {
        // Every one-rung demotion of a single lowered site is an
        // independent candidate; commit the first passing one in site
        // order, exactly as a serial scan would.
        std::vector<Config> batch;
        for (std::size_t i = 0; i < cur.size(); ++i) {
            std::uint8_t level = cur.level(i);
            if (level == 0 || level >= maxLevel)
                continue;
            if (usePrior && level + 1 > prior->levelCap(i))
                continue;
            Config candidate = cur;
            candidate.setLevel(i,
                               static_cast<std::uint8_t>(level + 1));
            batch.push_back(std::move(candidate));
        }
        if (batch.empty())
            return cur;
        auto evals = ctx.evaluateBatch(batch);
        bool advanced = false;
        for (std::size_t j = 0; j < batch.size(); ++j) {
            if (evals[j].passed()) {
                cur = batch[j];
                advanced = true;
                break;
            }
        }
        if (!advanced)
            return cur;
    }
}

} // namespace hpcmixp::search
