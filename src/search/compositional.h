#ifndef HPCMIXP_SEARCH_COMPOSITIONAL_H_
#define HPCMIXP_SEARCH_COMPOSITIONAL_H_

/**
 * @file
 * Compositional search (CRAFT).
 *
 * Replaces each variable individually, then repeatedly combines passing
 * configurations until no new composition remains (paper Section II-B).
 * The implementation proposes individual variables, but every proposal
 * passes through the Typeforge transformation, which expands it to the
 * variable's full cluster closure so the result always compiles;
 * observationally the probes therefore enumerate clusters (duplicate
 * probes of one cluster are cache hits), which is how the paper's
 * Table III shows CM evaluating approximately TC configurations per
 * kernel. The composition phase can still be as slow as brute force on
 * cluster-rich programs — the behaviour the paper observes when CM
 * fails to finish within the time limit on several applications.
 */

#include "search/strategy.h"

namespace hpcmixp::search {

/** Singleton probing followed by exhaustive composition of passes. */
class CompositionalSearch : public SearchStrategy {
  public:
    std::string name() const override { return "compositional"; }
    std::string code() const override { return "CM"; }
    Granularity granularity() const override
    {
        // Variable probes expand through Typeforge closure, so the
        // effective search space is the cluster space.
        return Granularity::Cluster;
    }
    void run(SearchContext& ctx) override;
};

} // namespace hpcmixp::search

#endif // HPCMIXP_SEARCH_COMPOSITIONAL_H_
