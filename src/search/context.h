#ifndef HPCMIXP_SEARCH_CONTEXT_H_
#define HPCMIXP_SEARCH_CONTEXT_H_

/**
 * @file
 * Metered, cached evaluation context shared by all strategies.
 *
 * The context implements the paper's accounting:
 *  - EV ("Evaluated Configurations") counts configurations actually
 *    executed — cache hits and compile failures are tracked separately;
 *  - a SearchBudget caps executed configurations and wall-clock time,
 *    standing in for the paper's 24-hour per-search limit;
 *  - the best *passing* configuration seen so far (highest measured
 *    speedup) is tracked so a strategy interrupted by the budget still
 *    reports its best-so-far.
 *
 * It also implements the resilience policy real tuning campaigns rely
 * on: a transient RuntimeFail is retried with exponential backoff up
 * to a bounded number of attempts, an attempt that outlives the
 * per-evaluation deadline is discarded as a straggler, and a
 * configuration that exhausts its retries is quarantined — recorded
 * as failed so the search continues instead of aborting.
 */

#include <cstddef>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "search/config.h"
#include "search/problem.h"
#include "support/json.h"
#include "support/retry.h"
#include "support/rng.h"
#include "support/timer.h"

namespace hpcmixp::search {

/** Limits on one search run. */
struct SearchBudget {
    std::size_t maxEvaluations = 10000; ///< executed-config cap
    double maxSeconds = 0.0;            ///< wall-clock cap; 0 = none
};

/** Thrown by SearchContext when the budget is exhausted. */
class BudgetExhausted : public std::runtime_error {
  public:
    BudgetExhausted() : std::runtime_error("search budget exhausted") {}
};

/** Per-evaluation resilience policy (retries, deadline, backoff). */
struct ResiliencePolicy {
    std::size_t maxAttempts = 1;  ///< total attempts per configuration
    double deadlineSeconds = 0.0; ///< per-attempt deadline; 0 = none
    support::BackoffPolicy backoff; ///< delay schedule between retries
    bool sleepBetweenRetries = true; ///< disable to keep tests fast
    std::uint64_t seed = 2020;    ///< backoff-jitter stream seed
};

/** Evaluation front-end with caching, metering and best tracking. */
class SearchContext {
  public:
    SearchContext(SearchProblem& problem, SearchBudget budget,
                  ResiliencePolicy resilience = {});

    /** Number of sites in the underlying problem. */
    std::size_t siteCount() const { return problem_.siteCount(); }

    /** Structure tree of the underlying problem (may be nullptr). */
    const StructureNode* structure() const { return problem_.structure(); }

    /**
     * Evaluate @p config, consulting the cache first.
     * @throws BudgetExhausted once the budget is exceeded.
     */
    const Evaluation& evaluate(const Config& config);

    /** True when @p config has already been evaluated. */
    bool isCached(const Config& config) const;

    /** Best passing configuration so far, if any. */
    bool hasBest() const { return best_.has_value(); }
    const Config& bestConfig() const;
    const Evaluation& bestEvaluation() const;

    /** EV: configurations actually executed. */
    std::size_t evaluatedCount() const { return executed_; }

    /** Configurations rejected as compile failures. */
    std::size_t compileFailCount() const { return compileFails_; }

    /** Cache hits (repeat queries). */
    std::size_t cacheHitCount() const { return cacheHits_; }

    /** Re-attempts after transient RuntimeFails. */
    std::size_t retryCount() const { return retries_; }

    /** Attempts discarded because they outlived the deadline. */
    std::size_t deadlineMissCount() const { return deadlineMisses_; }

    /** Configurations recorded as failed after exhausting retries. */
    std::size_t quarantinedCount() const { return quarantined_; }

    /** Seconds since the context was created. */
    double elapsedSeconds() const { return timer_.seconds(); }

    /** True once a budget limit has been hit. */
    bool exhausted() const { return exhausted_; }

    /** Receives exportCache() snapshots from the checkpoint hook. */
    using CheckpointSink =
        std::function<void(const support::json::Value&)>;

    /**
     * Install a periodic checkpoint hook: after every
     * @p everyExecutions executed configurations, @p sink receives an
     * exportCache() snapshot. Pass 0 or an empty sink to disable.
     */
    void setCheckpointHook(std::size_t everyExecutions,
                           CheckpointSink sink);

    /**
     * Checkpoint: serialize every cached evaluation. A search that
     * ran out of budget can be resumed in a fresh context (CRAFT's
     * searches are resumable); resumed evaluations are cache hits and
     * do not count against the new budget.
     */
    support::json::Value exportCache() const;

    /** Restore a checkpoint produced by exportCache(). fatal()s on a
     *  malformed document or mismatched site count. */
    void importCache(const support::json::Value& checkpoint);

  private:
    void checkBudget();
    void noteBest(const Config& config, const Evaluation& eval);
    Evaluation evaluateResilient(const Config& config);

    SearchProblem& problem_;
    SearchBudget budget_;
    ResiliencePolicy resilience_;
    support::Pcg32 retryRng_;
    support::WallTimer timer_;
    std::unordered_map<std::string, Evaluation> cache_;
    std::optional<std::pair<Config, Evaluation>> best_;
    std::size_t executed_ = 0;
    std::size_t compileFails_ = 0;
    std::size_t cacheHits_ = 0;
    std::size_t retries_ = 0;
    std::size_t deadlineMisses_ = 0;
    std::size_t quarantined_ = 0;
    bool exhausted_ = false;
    std::size_t checkpointEvery_ = 0;
    CheckpointSink checkpointSink_;
};

} // namespace hpcmixp::search

#endif // HPCMIXP_SEARCH_CONTEXT_H_
