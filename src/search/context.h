#ifndef HPCMIXP_SEARCH_CONTEXT_H_
#define HPCMIXP_SEARCH_CONTEXT_H_

/**
 * @file
 * Metered, cached evaluation context shared by all strategies.
 *
 * The context implements the paper's accounting:
 *  - EV ("Evaluated Configurations") counts configurations actually
 *    executed — cache hits and compile failures are tracked separately;
 *  - a SearchBudget caps executed configurations and wall-clock time,
 *    standing in for the paper's 24-hour per-search limit;
 *  - the best *passing* configuration seen so far (highest measured
 *    speedup) is tracked so a strategy interrupted by the budget still
 *    reports its best-so-far.
 *
 * It also implements the resilience policy real tuning campaigns rely
 * on: a transient RuntimeFail is retried with exponential backoff up
 * to a bounded number of attempts, an attempt that outlives the
 * per-evaluation deadline is discarded as a straggler, and a
 * configuration that exhausts its retries is quarantined — recorded
 * as failed so the search continues instead of aborting.
 *
 * evaluateBatch() hides evaluation latency the way the paper's SLURM
 * campaigns do: a set of independent candidates is evaluated
 * concurrently on a thread pool, but the results are *committed in
 * submission order*, so EV accounting, budget exhaustion, cache
 * population, checkpoint snapshots and best-so-far tracking are
 * bit-identical to the serial loop (DESIGN.md, Section 9). All shared
 * state is mutex-guarded, so the context is safe to query while a
 * batch is in flight.
 */

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "search/config.h"
#include "search/memo_store.h"
#include "search/prior.h"
#include "search/problem.h"
#include "support/json.h"
#include "support/retry.h"
#include "support/rng.h"
#include "support/timer.h"

namespace hpcmixp::support {
class ThreadPool;
} // namespace hpcmixp::support

namespace hpcmixp::search {

/** Limits on one search run. */
struct SearchBudget {
    std::size_t maxEvaluations = 10000; ///< executed-config cap
    double maxSeconds = 0.0;            ///< wall-clock cap; 0 = none
};

/** Thrown by SearchContext when the budget is exhausted. */
class BudgetExhausted : public std::runtime_error {
  public:
    BudgetExhausted() : std::runtime_error("search budget exhausted") {}
};

/**
 * Thrown by importCache() for a checkpoint whose fingerprint does not
 * match the current run. Recoverable — the caller drops the checkpoint
 * and starts fresh — unlike fatal(), which signals user error.
 */
class CheckpointMismatch : public std::runtime_error {
  public:
    explicit CheckpointMismatch(const std::string& what_arg)
        : std::runtime_error(what_arg)
    {
    }
};

/** Per-evaluation resilience policy (retries, deadline, backoff). */
struct ResiliencePolicy {
    std::size_t maxAttempts = 1;  ///< total attempts per configuration
    double deadlineSeconds = 0.0; ///< per-attempt deadline; 0 = none
    support::BackoffPolicy backoff; ///< delay schedule between retries
    bool sleepBetweenRetries = true; ///< disable to keep tests fast
    std::uint64_t seed = 2020;    ///< backoff-jitter stream seed
};

/** Evaluation front-end with caching, metering and best tracking. */
class SearchContext {
  public:
    SearchContext(SearchProblem& problem, SearchBudget budget,
                  ResiliencePolicy resilience = {});
    ~SearchContext();

    SearchContext(const SearchContext&) = delete;
    SearchContext& operator=(const SearchContext&) = delete;

    /** Number of sites in the underlying problem. */
    std::size_t siteCount() const { return problem_.siteCount(); }

    /** Deepest ladder level a site may take (1 = binary campaign). */
    std::size_t maxLevel() const { return problem_.maxLevel(); }

    /** Structure tree of the underlying problem (may be nullptr). */
    const StructureNode* structure() const { return problem_.structure(); }

    /**
     * Evaluate @p config, consulting the cache first.
     * @throws BudgetExhausted once the budget is exceeded.
     */
    const Evaluation& evaluate(const Config& config);

    /**
     * Evaluate a set of *independent* candidates, returning their
     * evaluations in submission order. With searchJobs() > 1 the fresh
     * (uncached, first-occurrence) candidates run concurrently on a
     * thread pool; results are then committed strictly in submission
     * order, so the cache contents, EV/cache-hit/retry/quarantine
     * counters, checkpoint snapshots and the point at which
     * BudgetExhausted fires are identical to calling evaluate() in a
     * loop. Candidates past the budget are evaluated speculatively but
     * never committed.
     *
     * The problem's evaluate() must tolerate concurrent calls when
     * searchJobs() > 1 (every built-in problem and FaultyProblem do).
     *
     * @throws BudgetExhausted after committing the prefix that fits.
     */
    std::vector<Evaluation> evaluateBatch(std::span<const Config> configs);

    /**
     * Degree of intra-search parallelism used by evaluateBatch();
     * 1 (the default) evaluates batches serially, 0 auto-detects the
     * hardware concurrency. The worker pool is created lazily on the
     * first parallel batch.
     */
    void setSearchJobs(std::size_t jobs);
    std::size_t searchJobs() const;

    /** Scheduling mode of the evaluateBatch thread pool. */
    enum class BatchScheduling {
        Fifo,  ///< static round-robin dealing, no stealing
        Steal, ///< same dealing plus work stealing (default)
    };

    /**
     * Select the batch scheduler. Trajectories are bit-identical
     * either way — results commit in submission order regardless of
     * execution order — so this is a performance knob (and the lever
     * the equivalence tests pull). Takes effect at the next batch.
     */
    void setBatchScheduling(BatchScheduling scheduling);
    BatchScheduling batchScheduling() const;

    /** Batch evaluations executed by a pool worker other than the one
     *  they were dealt to; always 0 under Fifo. */
    std::size_t stealCount() const;

    /**
     * Install a static sensitivity prior (DESIGN.md Section 11).
     * Strategies consult prior() to prune, seed and order their
     * candidate generation; in Strict mode the context additionally
     * records any configuration violating a pin as a compile failure
     * without executing it. Must be installed before the search runs.
     */
    void setPrior(StaticPrior prior);

    /** The installed prior, or nullptr when absent/Off. */
    const StaticPrior* prior() const;

    /**
     * Attach a persistent memo table (DESIGN.md Section 12). Cache
     * misses consult the table before executing — a memo hit commits
     * the stored evaluation without running, without consuming budget
     * and without counting as EV — and freshly executed evaluations
     * are published back. The table's fingerprint site count must
     * match the problem.
     */
    void setMemo(std::shared_ptr<MemoTable> memo);

    /** The attached memo table, or nullptr. */
    const std::shared_ptr<MemoTable>& memo() const { return memo_; }

    /**
     * Name the evaluation function this context runs (benchmark,
     * threshold, ...). exportCache() embeds it, and importCache()
     * rejects checkpoints carrying a different fingerprint.
     */
    void setFingerprint(MemoFingerprint fingerprint);

    /**
     * Install a cooperative cancellation flag: once it reads true the
     * next budget check throws BudgetExhausted, so a portfolio can
     * stop the remaining strategies after a winner finishes. Cache and
     * memo hits still resolve after cancellation.
     */
    void setCancelFlag(std::shared_ptr<const std::atomic<bool>> flag);

    /** True when @p config has already been evaluated. */
    bool isCached(const Config& config) const;

    /** Best passing configuration so far, if any. */
    bool hasBest() const;
    const Config& bestConfig() const;
    const Evaluation& bestEvaluation() const;

    /** EV: configurations actually executed. */
    std::size_t evaluatedCount() const;

    /** Configurations rejected as compile failures. */
    std::size_t compileFailCount() const;

    /** In-run cache hits (repeat queries within this context). */
    std::size_t cacheHitCount() const;

    /** Cross-run memo hits (first-time queries served by the memo
     *  table instead of an execution). */
    std::size_t memoHitCount() const;

    /** Re-attempts after transient RuntimeFails. */
    std::size_t retryCount() const;

    /** Attempts discarded because they outlived the deadline. */
    std::size_t deadlineMissCount() const;

    /** Configurations recorded as failed after exhausting retries. */
    std::size_t quarantinedCount() const;

    /** Seconds since the context was created. */
    double elapsedSeconds() const { return timer_.seconds(); }

    /** True once a budget limit has been hit. */
    bool exhausted() const;

    /** Receives exportCache() snapshots from the checkpoint hook. */
    using CheckpointSink =
        std::function<void(const support::json::Value&)>;

    /**
     * Install a periodic checkpoint hook: after every
     * @p everyExecutions executed configurations, @p sink receives an
     * exportCache() snapshot. Pass 0 or an empty sink to disable.
     * The sink runs under the context lock and must not call back
     * into this context.
     */
    void setCheckpointHook(std::size_t everyExecutions,
                           CheckpointSink sink);

    /**
     * Checkpoint: serialize every cached evaluation. A search that
     * ran out of budget can be resumed in a fresh context (CRAFT's
     * searches are resumable); resumed evaluations are cache hits and
     * do not count against the new budget.
     */
    support::json::Value exportCache() const;

    /**
     * Restore a checkpoint produced by exportCache(). fatal()s on a
     * malformed document or mismatched site count; throws the
     * recoverable CheckpointMismatch — before touching the cache —
     * when the checkpoint's embedded fingerprint differs from this
     * context's, so stale evaluations from another benchmark or
     * threshold never poison the run. Restored entries are published
     * to an attached memo table (the checkpoint-to-memo migration
     * path).
     */
    void importCache(const support::json::Value& checkpoint);

  private:
    /** Resilience counters accumulated by one evaluation task; merged
     *  into the shared counters only when the result commits. */
    struct TaskCounters {
        std::size_t retries = 0;
        std::size_t deadlineMisses = 0;
        std::size_t quarantined = 0;
    };

    void checkBudgetLocked();
    void noteBestLocked(const Config& config, const Evaluation& eval);
    const Evaluation& commitLocked(std::string key, const Config& config,
                                   Evaluation eval,
                                   const TaskCounters& counters);
    const Evaluation& commitMemoHitLocked(std::string key,
                                          const Config& config,
                                          Evaluation eval);
    Evaluation evaluateResilient(const Config& config,
                                 TaskCounters& counters,
                                 support::Pcg32& jitterRng);
    support::json::Value exportCacheLocked() const;

    SearchProblem& problem_;
    SearchBudget budget_;
    ResiliencePolicy resilience_;
    StaticPrior prior_; ///< set before the search; read-only after
    /// Installed before the search, immutable after; MemoTable is
    /// internally synchronized, so no context lock is needed to use it.
    std::shared_ptr<MemoTable> memo_;
    MemoFingerprint fingerprint_; ///< set before the search
    std::shared_ptr<const std::atomic<bool>> cancel_;
    support::Pcg32 retryRng_;
    support::WallTimer timer_;

    mutable std::mutex mutex_; ///< guards everything below
    std::unordered_map<std::string, Evaluation> cache_;
    std::optional<std::pair<Config, Evaluation>> best_;
    std::size_t executed_ = 0;
    std::size_t compileFails_ = 0;
    std::size_t cacheHits_ = 0;
    std::size_t memoHits_ = 0;
    std::size_t retries_ = 0;
    std::size_t deadlineMisses_ = 0;
    std::size_t quarantined_ = 0;
    bool exhausted_ = false;
    std::size_t checkpointEvery_ = 0;
    CheckpointSink checkpointSink_;

    std::size_t searchJobs_ = 1;
    BatchScheduling scheduling_ = BatchScheduling::Steal;
    std::size_t retiredSteals_ = 0; ///< steals of discarded pools
    std::unique_ptr<support::ThreadPool> pool_;
};

} // namespace hpcmixp::search

#endif // HPCMIXP_SEARCH_CONTEXT_H_
