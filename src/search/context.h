#ifndef HPCMIXP_SEARCH_CONTEXT_H_
#define HPCMIXP_SEARCH_CONTEXT_H_

/**
 * @file
 * Metered, cached evaluation context shared by all strategies.
 *
 * The context implements the paper's accounting:
 *  - EV ("Evaluated Configurations") counts configurations actually
 *    executed — cache hits and compile failures are tracked separately;
 *  - a SearchBudget caps executed configurations and wall-clock time,
 *    standing in for the paper's 24-hour per-search limit;
 *  - the best *passing* configuration seen so far (highest measured
 *    speedup) is tracked so a strategy interrupted by the budget still
 *    reports its best-so-far.
 */

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "search/config.h"
#include "search/problem.h"
#include "support/json.h"
#include "support/timer.h"

namespace hpcmixp::search {

/** Limits on one search run. */
struct SearchBudget {
    std::size_t maxEvaluations = 10000; ///< executed-config cap
    double maxSeconds = 0.0;            ///< wall-clock cap; 0 = none
};

/** Thrown by SearchContext when the budget is exhausted. */
class BudgetExhausted : public std::runtime_error {
  public:
    BudgetExhausted() : std::runtime_error("search budget exhausted") {}
};

/** Evaluation front-end with caching, metering and best tracking. */
class SearchContext {
  public:
    SearchContext(SearchProblem& problem, SearchBudget budget);

    /** Number of sites in the underlying problem. */
    std::size_t siteCount() const { return problem_.siteCount(); }

    /** Structure tree of the underlying problem (may be nullptr). */
    const StructureNode* structure() const { return problem_.structure(); }

    /**
     * Evaluate @p config, consulting the cache first.
     * @throws BudgetExhausted once the budget is exceeded.
     */
    const Evaluation& evaluate(const Config& config);

    /** True when @p config has already been evaluated. */
    bool isCached(const Config& config) const;

    /** Best passing configuration so far, if any. */
    bool hasBest() const { return best_.has_value(); }
    const Config& bestConfig() const;
    const Evaluation& bestEvaluation() const;

    /** EV: configurations actually executed. */
    std::size_t evaluatedCount() const { return executed_; }

    /** Configurations rejected as compile failures. */
    std::size_t compileFailCount() const { return compileFails_; }

    /** Cache hits (repeat queries). */
    std::size_t cacheHitCount() const { return cacheHits_; }

    /** Seconds since the context was created. */
    double elapsedSeconds() const { return timer_.seconds(); }

    /** True once a budget limit has been hit. */
    bool exhausted() const { return exhausted_; }

    /**
     * Checkpoint: serialize every cached evaluation. A search that
     * ran out of budget can be resumed in a fresh context (CRAFT's
     * searches are resumable); resumed evaluations are cache hits and
     * do not count against the new budget.
     */
    support::json::Value exportCache() const;

    /** Restore a checkpoint produced by exportCache(). fatal()s on a
     *  malformed document or mismatched site count. */
    void importCache(const support::json::Value& checkpoint);

  private:
    void checkBudget();
    void noteBest(const Config& config, const Evaluation& eval);

    SearchProblem& problem_;
    SearchBudget budget_;
    support::WallTimer timer_;
    std::unordered_map<std::string, Evaluation> cache_;
    std::optional<std::pair<Config, Evaluation>> best_;
    std::size_t executed_ = 0;
    std::size_t compileFails_ = 0;
    std::size_t cacheHits_ = 0;
    bool exhausted_ = false;
};

} // namespace hpcmixp::search

#endif // HPCMIXP_SEARCH_CONTEXT_H_
