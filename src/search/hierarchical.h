#ifndef HPCMIXP_SEARCH_HIERARCHICAL_H_
#define HPCMIXP_SEARCH_HIERARCHICAL_H_

/**
 * @file
 * Hierarchical search (CRAFT).
 *
 * Uses program-structure information (whole program -> modules ->
 * functions -> variables) to search for large replaceable groups,
 * descending into sub-components only when a group fails. Operates at
 * variable granularity and does NOT consult cluster information, so it
 * can propose configurations that do not compile — the inefficiency the
 * paper highlights at strict thresholds (Sections II-B, IV-B).
 */

#include <cstddef>
#include <vector>

#include "search/strategy.h"

namespace hpcmixp::search {

/** Top-down structural descent with greedy recombination. */
class HierarchicalSearch : public SearchStrategy {
  public:
    std::string name() const override { return "hierarchical"; }
    std::string code() const override { return "HR"; }
    Granularity granularity() const override
    {
        return Granularity::Variable;
    }
    void run(SearchContext& ctx) override;
};

/**
 * A structure node together with the sites its group replacement
 * actually lowers. Without a static prior these are the node's own
 * sites; with one, pinned (KeepDouble) sites are filtered out.
 */
struct ComponentGroup {
    const StructureNode* node = nullptr;
    std::vector<std::size_t> sites;
};

/**
 * Shared helper for HR and HC: breadth-first descent that collects the
 * set of structure nodes whose group replacement passes individually.
 * Failing non-leaf nodes are expanded; failing leaves are dropped.
 * Returns the passing groups in discovery order. With a static prior,
 * each tree level is visited in descending sensitivity-score order and
 * nodes whose sites are all pinned are skipped outright.
 */
std::vector<ComponentGroup>
collectPassingComponents(SearchContext& ctx);

} // namespace hpcmixp::search

#endif // HPCMIXP_SEARCH_HIERARCHICAL_H_
