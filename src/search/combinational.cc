#include "search/combinational.h"

#include <algorithm>
#include <vector>

namespace hpcmixp::search {

namespace {

/**
 * Visit every size-@p k subset of {0..n-1}, invoking @p visit with the
 * chosen site indices.
 */
void
forEachCombination(std::size_t n, std::size_t k,
                   const std::function<void(
                       const std::vector<std::size_t>&)>& visit)
{
    std::vector<std::size_t> pick(k);
    for (std::size_t i = 0; i < k; ++i)
        pick[i] = i;
    if (k == 0 || k > n)
        return;
    for (;;) {
        visit(pick);
        // Advance to the next combination in lexicographic order.
        std::size_t i = k;
        while (i > 0) {
            --i;
            if (pick[i] != i + n - k) {
                ++pick[i];
                for (std::size_t j = i + 1; j < k; ++j)
                    pick[j] = pick[j - 1] + 1;
                break;
            }
            if (i == 0)
                return;
        }
    }
}

} // namespace

void
CombinationalSearch::run(SearchContext& ctx)
{
    std::size_t n = ctx.siteCount();
    // With a static prior the sweep enumerates combinations of the
    // *free* sites only; pinned (KeepDouble) sites never appear in any
    // generated configuration, shrinking the space from 2^n to 2^f.
    std::vector<std::size_t> sites;
    if (const StaticPrior* prior = ctx.prior()) {
        sites = prior->freeSites();
    } else {
        sites.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            sites[i] = i;
    }
    std::size_t f = sites.size();
    // Every combination is independent, so the sweep batches freely.
    // Bounded chunks keep memory flat on large cardinalities; chunk
    // size does not affect the trajectory (commit order is the
    // enumeration order either way).
    std::size_t chunk = std::max<std::size_t>(32, 8 * ctx.searchJobs());
    std::vector<Config> batch;
    batch.reserve(chunk);
    auto flush = [&] {
        if (!batch.empty()) {
            ctx.evaluateBatch(batch);
            batch.clear();
        }
    };
    // Deepest rung each site may take: the ladder depth, tightened by
    // a prior's per-site cap. With the default two-rung ladder every
    // site's bound is 1 and the odometer below degenerates to exactly
    // one all-level-1 configuration per subset — the pre-ladder sweep.
    std::size_t maxLevel = ctx.maxLevel();
    const StaticPrior* prior = ctx.prior();
    auto levelBound = [&](std::size_t site) {
        std::size_t bound = maxLevel;
        if (prior && prior->enabled())
            bound = std::min<std::size_t>(bound, prior->levelCap(site));
        return static_cast<std::uint8_t>(bound);
    };

    std::vector<std::size_t> mapped;
    std::vector<std::uint8_t> levels;
    std::vector<std::uint8_t> bounds;
    for (std::size_t card = f; card >= 1; --card) {
        forEachCombination(f, card, [&](const auto& pick) {
            mapped.clear();
            mapped.reserve(pick.size());
            for (std::size_t i : pick)
                mapped.push_back(sites[i]);
            // Odometer over per-site levels, shallowest first: the
            // all-level-1 assignment leads, then the last position
            // descends one rung at a time with lexicographic carry.
            levels.assign(mapped.size(), 1);
            bounds.clear();
            bounds.reserve(mapped.size());
            for (std::size_t site : mapped)
                bounds.push_back(levelBound(site));
            for (;;) {
                Config cfg(n);
                for (std::size_t j = 0; j < mapped.size(); ++j)
                    cfg.setLevel(mapped[j], levels[j]);
                batch.push_back(std::move(cfg));
                if (batch.size() >= chunk)
                    flush();
                std::size_t j = mapped.size();
                while (j > 0) {
                    --j;
                    if (levels[j] < bounds[j]) {
                        ++levels[j];
                        for (std::size_t k = j + 1;
                             k < mapped.size(); ++k)
                            levels[k] = 1;
                        break;
                    }
                    if (j == 0)
                        return;
                }
            }
        });
        flush();
    }
}

} // namespace hpcmixp::search
