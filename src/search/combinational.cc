#include "search/combinational.h"

#include <algorithm>
#include <vector>

namespace hpcmixp::search {

namespace {

/**
 * Visit every size-@p k subset of {0..n-1}, invoking @p visit with the
 * chosen site indices.
 */
void
forEachCombination(std::size_t n, std::size_t k,
                   const std::function<void(
                       const std::vector<std::size_t>&)>& visit)
{
    std::vector<std::size_t> pick(k);
    for (std::size_t i = 0; i < k; ++i)
        pick[i] = i;
    if (k == 0 || k > n)
        return;
    for (;;) {
        visit(pick);
        // Advance to the next combination in lexicographic order.
        std::size_t i = k;
        while (i > 0) {
            --i;
            if (pick[i] != i + n - k) {
                ++pick[i];
                for (std::size_t j = i + 1; j < k; ++j)
                    pick[j] = pick[j - 1] + 1;
                break;
            }
            if (i == 0)
                return;
        }
    }
}

} // namespace

void
CombinationalSearch::run(SearchContext& ctx)
{
    std::size_t n = ctx.siteCount();
    // Every combination is independent, so the sweep batches freely.
    // Bounded chunks keep memory flat on large cardinalities; chunk
    // size does not affect the trajectory (commit order is the
    // enumeration order either way).
    std::size_t chunk = std::max<std::size_t>(32, 8 * ctx.searchJobs());
    std::vector<Config> batch;
    batch.reserve(chunk);
    auto flush = [&] {
        if (!batch.empty()) {
            ctx.evaluateBatch(batch);
            batch.clear();
        }
    };
    for (std::size_t card = n; card >= 1; --card) {
        forEachCombination(n, card, [&](const auto& pick) {
            batch.push_back(Config::withLowered(n, pick));
            if (batch.size() >= chunk)
                flush();
        });
        flush();
    }
}

} // namespace hpcmixp::search
