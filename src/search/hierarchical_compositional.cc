#include "search/hierarchical_compositional.h"

#include <deque>
#include <unordered_set>
#include <vector>

#include "search/hierarchical.h"

namespace hpcmixp::search {

void
HierarchicalCompositionalSearch::run(SearchContext& ctx)
{
    std::size_t n = ctx.siteCount();

    // Phase 1: hierarchical discovery of replaceable components.
    auto components = collectPassingComponents(ctx);
    if (components.size() <= 1)
        return;

    // Phase 2: compositional combination of the component configs.
    std::vector<Config> passing;
    std::deque<std::size_t> worklist;
    std::unordered_set<std::string> attempted;
    for (const auto* node : components) {
        Config cfg = Config::withLowered(n, node->sites);
        attempted.insert(cfg.toString());
        passing.push_back(cfg);
        worklist.push_back(passing.size() - 1);
    }

    auto tryConfig = [&](const Config& cfg) {
        if (!attempted.insert(cfg.toString()).second)
            return;
        const Evaluation& eval = ctx.evaluate(cfg);
        if (eval.passed()) {
            passing.push_back(cfg);
            worklist.push_back(passing.size() - 1);
        }
    };

    while (!worklist.empty()) {
        std::size_t cur = worklist.front();
        worklist.pop_front();
        std::size_t limit = passing.size();
        for (std::size_t j = 0; j < limit; ++j) {
            if (j == cur)
                continue;
            Config combined = passing[cur].unionWith(passing[j]);
            if (combined == passing[cur] || combined == passing[j])
                continue;
            tryConfig(combined);
        }
    }
}

} // namespace hpcmixp::search
