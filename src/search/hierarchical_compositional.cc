#include "search/hierarchical_compositional.h"

#include <deque>
#include <unordered_set>
#include <vector>

#include "search/demotion.h"
#include "search/hierarchical.h"

namespace hpcmixp::search {

void
HierarchicalCompositionalSearch::run(SearchContext& ctx)
{
    std::size_t n = ctx.siteCount();

    // Phase 1: hierarchical discovery of replaceable components
    // (batched level by level inside collectPassingComponents).
    auto components = collectPassingComponents(ctx);
    if (components.size() <= 1) {
        // A lone component cannot compose, but under a deeper ladder
        // it can still descend rung by rung.
        if (components.size() == 1 && ctx.maxLevel() > 1)
            greedyDemotionPass(
                ctx, Config::withLowered(n, components[0].sites));
        return;
    }

    // Phase 2: compositional combination of the component configs.
    // As in CompositionalSearch, each worklist entry's compositions
    // form one independent batch.
    std::vector<Config> passing;
    std::deque<std::size_t> worklist;
    std::unordered_set<std::string> attempted;
    for (const ComponentGroup& group : components) {
        Config cfg = Config::withLowered(n, group.sites);
        attempted.insert(cfg.toString());
        passing.push_back(cfg);
        worklist.push_back(passing.size() - 1);
    }

    auto tryBatch = [&](const std::vector<Config>& batch) {
        auto evals = ctx.evaluateBatch(batch);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            if (evals[i].passed()) {
                passing.push_back(batch[i]);
                worklist.push_back(passing.size() - 1);
            }
        }
    };

    while (!worklist.empty()) {
        std::size_t cur = worklist.front();
        worklist.pop_front();
        std::size_t limit = passing.size();
        std::vector<Config> batch;
        for (std::size_t j = 0; j < limit; ++j) {
            if (j == cur)
                continue;
            Config combined = passing[cur].unionWith(passing[j]);
            if (combined == passing[cur] || combined == passing[j])
                continue;
            if (!attempted.insert(combined.toString()).second)
                continue;
            batch.push_back(std::move(combined));
        }
        tryBatch(batch);
    }

    // Under a deeper ladder, descend from the best passing
    // composition one rung at a time (gated, so binary trajectories
    // are untouched).
    if (ctx.maxLevel() > 1 && ctx.hasBest())
        greedyDemotionPass(ctx, ctx.bestConfig());
}

} // namespace hpcmixp::search
