#include "search/hierarchical.h"

#include <limits>
#include <vector>

#include "support/logging.h"

namespace hpcmixp::search {

std::vector<const StructureNode*>
collectPassingComponents(SearchContext& ctx)
{
    const StructureNode* root = ctx.structure();
    if (!root)
        support::fatal("hierarchical search requires program structure");

    std::size_t n = ctx.siteCount();
    std::vector<const StructureNode*> accepted;
    std::vector<const StructureNode*> level{root};

    // Breadth-first refinement, one batch per tree level: sibling
    // subtrees are independent candidates. With a single root the
    // serial deque traversal visits nodes in exactly this level
    // order, so the evaluation sequence is unchanged.
    while (!level.empty()) {
        std::vector<const StructureNode*> nodes;
        for (const StructureNode* node : level)
            if (!node->sites.empty())
                // A node without sites of its own is skipped without
                // descending, as in the serial traversal.
                nodes.push_back(node);
        std::vector<Config> batch;
        batch.reserve(nodes.size());
        for (const StructureNode* node : nodes)
            batch.push_back(Config::withLowered(n, node->sites));
        auto evals = ctx.evaluateBatch(batch);

        std::vector<const StructureNode*> next;
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            if (evals[i].passed()) {
                accepted.push_back(nodes[i]);
            } else {
                for (const auto& child : nodes[i]->children)
                    next.push_back(&child);
            }
        }
        level = std::move(next);
    }
    return accepted;
}

void
HierarchicalSearch::run(SearchContext& ctx)
{
    std::size_t n = ctx.siteCount();
    auto accepted = collectPassingComponents(ctx);
    if (accepted.empty())
        return;

    // Combine every individually passing group. When the union fails
    // (groups interact), greedily drop the group with the smallest
    // individual speedup until the combination passes.
    while (!accepted.empty()) {
        Config combined(n);
        for (const auto* node : accepted)
            combined =
                combined.unionWith(Config::withLowered(n, node->sites));
        const Evaluation& eval = ctx.evaluate(combined);
        if (eval.passed() || accepted.size() == 1)
            break;

        // Re-score each accepted group (all cache hits from the
        // discovery phase) to find the weakest contributor.
        std::vector<Config> batch;
        batch.reserve(accepted.size());
        for (const auto* node : accepted)
            batch.push_back(Config::withLowered(n, node->sites));
        auto evals = ctx.evaluateBatch(batch);
        std::size_t worst = 0;
        double worstSpeedup = std::numeric_limits<double>::max();
        for (std::size_t i = 0; i < evals.size(); ++i) {
            if (evals[i].speedup < worstSpeedup) {
                worstSpeedup = evals[i].speedup;
                worst = i;
            }
        }
        accepted.erase(accepted.begin() +
                       static_cast<std::ptrdiff_t>(worst));
    }
}

} // namespace hpcmixp::search
