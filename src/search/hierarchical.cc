#include "search/hierarchical.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "search/demotion.h"
#include "support/logging.h"

namespace hpcmixp::search {

std::vector<ComponentGroup>
collectPassingComponents(SearchContext& ctx)
{
    const StructureNode* root = ctx.structure();
    if (!root)
        support::fatal("hierarchical search requires program structure");

    const StaticPrior* prior = ctx.prior();
    std::size_t n = ctx.siteCount();

    auto groupSites = [&](const StructureNode* node) {
        std::vector<std::size_t> sites;
        sites.reserve(node->sites.size());
        for (std::size_t s : node->sites)
            if (!prior || !prior->pinned(s))
                sites.push_back(s);
        return sites;
    };

    std::vector<ComponentGroup> accepted;
    std::vector<const StructureNode*> level{root};

    // Breadth-first refinement, one batch per tree level: sibling
    // subtrees are independent candidates. With a single root the
    // serial deque traversal visits nodes in exactly this level
    // order, so the evaluation sequence is unchanged.
    while (!level.empty()) {
        std::vector<ComponentGroup> nodes;
        for (const StructureNode* node : level) {
            // A node without sites of its own — or, under a prior,
            // with every site pinned — is skipped without descending
            // (its children can only hold a subset of its sites).
            auto sites = groupSites(node);
            if (!sites.empty())
                nodes.push_back({node, std::move(sites)});
        }
        if (prior)
            // Visit the riskiest components first so a budget-cut
            // search has already resolved the sensitive subtrees.
            std::stable_sort(nodes.begin(), nodes.end(),
                             [&](const ComponentGroup& a,
                                 const ComponentGroup& b) {
                                 return prior->groupScore(a.sites) >
                                        prior->groupScore(b.sites);
                             });
        std::vector<Config> batch;
        batch.reserve(nodes.size());
        for (const ComponentGroup& group : nodes)
            batch.push_back(Config::withLowered(n, group.sites));
        auto evals = ctx.evaluateBatch(batch);

        std::vector<const StructureNode*> next;
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            if (evals[i].passed()) {
                accepted.push_back(std::move(nodes[i]));
            } else {
                for (const auto& child : nodes[i].node->children)
                    next.push_back(&child);
            }
        }
        level = std::move(next);
    }
    return accepted;
}

void
HierarchicalSearch::run(SearchContext& ctx)
{
    std::size_t n = ctx.siteCount();
    auto accepted = collectPassingComponents(ctx);
    if (accepted.empty())
        return;

    // Combine every individually passing group. When the union fails
    // (groups interact), greedily drop the group with the smallest
    // individual speedup until the combination passes. Under a deeper
    // ladder the settled combination then descends one rung at a time
    // (greedyDemotionPass; gated, so binary trajectories hold).
    while (!accepted.empty()) {
        Config combined(n);
        for (const ComponentGroup& group : accepted)
            combined =
                combined.unionWith(Config::withLowered(n, group.sites));
        const Evaluation& eval = ctx.evaluate(combined);
        if (eval.passed() && ctx.maxLevel() > 1) {
            greedyDemotionPass(ctx, std::move(combined));
            break;
        }
        if (eval.passed() || accepted.size() == 1)
            break;

        // Re-score each accepted group (all cache hits from the
        // discovery phase) to find the weakest contributor.
        std::vector<Config> batch;
        batch.reserve(accepted.size());
        for (const ComponentGroup& group : accepted)
            batch.push_back(Config::withLowered(n, group.sites));
        auto evals = ctx.evaluateBatch(batch);
        std::size_t worst = 0;
        double worstSpeedup = std::numeric_limits<double>::max();
        for (std::size_t i = 0; i < evals.size(); ++i) {
            if (evals[i].speedup < worstSpeedup) {
                worstSpeedup = evals[i].speedup;
                worst = i;
            }
        }
        accepted.erase(accepted.begin() +
                       static_cast<std::ptrdiff_t>(worst));
    }
}

} // namespace hpcmixp::search
