#include "search/hierarchical.h"

#include <deque>
#include <limits>

#include "support/logging.h"

namespace hpcmixp::search {

std::vector<const StructureNode*>
collectPassingComponents(SearchContext& ctx)
{
    const StructureNode* root = ctx.structure();
    if (!root)
        support::fatal("hierarchical search requires program structure");

    std::size_t n = ctx.siteCount();
    std::vector<const StructureNode*> accepted;
    std::deque<const StructureNode*> frontier{root};

    while (!frontier.empty()) {
        const StructureNode* node = frontier.front();
        frontier.pop_front();
        if (node->sites.empty())
            continue;
        Config cfg = Config::withLowered(n, node->sites);
        const Evaluation& eval = ctx.evaluate(cfg);
        if (eval.passed()) {
            accepted.push_back(node);
        } else {
            for (const auto& child : node->children)
                frontier.push_back(&child);
        }
    }
    return accepted;
}

void
HierarchicalSearch::run(SearchContext& ctx)
{
    std::size_t n = ctx.siteCount();
    auto accepted = collectPassingComponents(ctx);
    if (accepted.empty())
        return;

    // Combine every individually passing group. When the union fails
    // (groups interact), greedily drop the group with the smallest
    // individual speedup until the combination passes.
    while (!accepted.empty()) {
        Config combined(n);
        for (const auto* node : accepted)
            combined =
                combined.unionWith(Config::withLowered(n, node->sites));
        const Evaluation& eval = ctx.evaluate(combined);
        if (eval.passed() || accepted.size() == 1)
            break;

        std::size_t worst = 0;
        double worstSpeedup = std::numeric_limits<double>::max();
        for (std::size_t i = 0; i < accepted.size(); ++i) {
            const Evaluation& e = ctx.evaluate(
                Config::withLowered(n, accepted[i]->sites));
            if (e.speedup < worstSpeedup) {
                worstSpeedup = e.speedup;
                worst = i;
            }
        }
        accepted.erase(accepted.begin() +
                       static_cast<std::ptrdiff_t>(worst));
    }
}

} // namespace hpcmixp::search
