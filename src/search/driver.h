#ifndef HPCMIXP_SEARCH_DRIVER_H_
#define HPCMIXP_SEARCH_DRIVER_H_

/**
 * @file
 * One-shot search execution with uniform result reporting.
 */

#include <string>

#include "search/context.h"
#include "search/strategy.h"

namespace hpcmixp::search {

/** Uniform summary of one completed (or budget-cut) search. */
struct SearchResult {
    std::string strategyCode;       ///< e.g. "DD"
    bool foundImprovement = false;  ///< a passing non-baseline config
    Config best;                    ///< best config (baseline if none)
    Evaluation bestEvaluation;      ///< its evaluation
    std::size_t evaluated = 0;      ///< EV: configs executed
    std::size_t compileFailures = 0;
    std::size_t cacheHits = 0;      ///< in-run repeat queries
    std::size_t memoHits = 0;       ///< cross-run memo-cache hits
    std::size_t retries = 0;        ///< transient-failure re-attempts
    std::size_t deadlineMisses = 0; ///< attempts discarded as stragglers
    std::size_t quarantined = 0;    ///< configs failed after retries
    std::size_t steals = 0;         ///< batch evals run by a stealing worker
    bool timedOut = false;          ///< budget exhausted mid-search
    double searchSeconds = 0.0;
};

/**
 * Resilience/checkpoint wiring for one search run. Defaults leave
 * every knob off, reproducing a plain uninstrumented search.
 */
struct SearchRunOptions {
    ResiliencePolicy resilience;      ///< retry/deadline/backoff policy
    std::size_t checkpointEvery = 0;  ///< executions per snapshot; 0 = off
    SearchContext::CheckpointSink checkpointSink; ///< snapshot receiver
    support::json::Value initialCache; ///< non-null: importCache() first
    std::size_t searchJobs = 1;       ///< intra-search batch parallelism
    StaticPrior prior;                ///< static sensitivity prior (Off = none)
    MemoFingerprint fingerprint;      ///< evaluation-function identity
    std::shared_ptr<MemoTable> memo;  ///< persistent memo-cache table
    /// Cooperative cancellation (portfolio mode); null = never.
    std::shared_ptr<const std::atomic<bool>> cancel;
};

/**
 * Run @p strategy against @p problem under @p budget.
 *
 * BudgetExhausted is caught here: a truncated search still reports its
 * best-so-far with timedOut set, matching the paper's treatment of the
 * 24-hour limit.
 */
SearchResult runSearch(SearchProblem& problem, SearchStrategy& strategy,
                       const SearchBudget& budget);

/** As above, with resilience and checkpoint wiring. */
SearchResult runSearch(SearchProblem& problem, SearchStrategy& strategy,
                       const SearchBudget& budget,
                       const SearchRunOptions& run);

/** Convenience: look up the strategy by code and run it. */
SearchResult runSearch(SearchProblem& problem,
                       const std::string& strategyCode,
                       const SearchBudget& budget);

/** As above, with resilience and checkpoint wiring. */
SearchResult runSearch(SearchProblem& problem,
                       const std::string& strategyCode,
                       const SearchBudget& budget,
                       const SearchRunOptions& run);

} // namespace hpcmixp::search

#endif // HPCMIXP_SEARCH_DRIVER_H_
