#ifndef HPCMIXP_SEARCH_PRIOR_H_
#define HPCMIXP_SEARCH_PRIOR_H_

/**
 * @file
 * Static sensitivity prior for the search strategies.
 *
 * mixp-lint (typeforge/lint.h) classifies each search site before any
 * configuration runs; StaticPrior carries those verdicts into the
 * search layer in site-index space, so the search library does not
 * depend on typeforge. A prior affects strategies three ways:
 *
 *  - *pinned* sites (KeepDouble verdicts) are removed from the
 *    enumerated space of CB / CM / DD / HR / HC — they stay double in
 *    every generated configuration;
 *  - the *narrow* mask (SafeToNarrow verdicts) seeds the GA's initial
 *    population with one individual that lowers exactly those sites;
 *  - per-site *scores* order hierarchical traversal by descending
 *    sensitivity, so HR/HC visit the risky components first.
 *
 * Under a multi-rung PrecisionLadder each verdict generalizes to a
 * per-site *level cap* — the deepest ladder level the site may take.
 * A pin is simply cap 0; an Unknown verdict caps at level 1 (float);
 * SafeToNarrow leaves the site unbounded. Strategies never propose a
 * level above a site's cap, and clamped()/violates() enforce caps on
 * configurations arriving from outside (cache imports, resume files).
 *
 * Modes (harness `--static-prior`):
 *  - Off:    no prior; trajectories are bit-identical to a build
 *            without this subsystem.
 *  - On:     prune + seed + order as above.
 *  - Strict: additionally treat any configuration violating a pin as
 *            a compile failure, whatever its origin (cache imports,
 *            hand-written resume files).
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "search/config.h"

namespace hpcmixp::search {

/** Prior application mode (harness --static-prior=on|off|strict). */
enum class PriorMode { Off, On, Strict };

/** Stable lowercase name ("off", "on", "strict"). */
const char* priorModeName(PriorMode mode);

/** Parse a --static-prior spelling; fatal()s on anything else. */
PriorMode parsePriorMode(const std::string& text);

/** Per-site static sensitivity verdicts, in site-index space. */
class StaticPrior {
  public:
    /** An absent prior (mode Off, no effect on any strategy). */
    StaticPrior() = default;

    /**
     * A binary-campaign prior. @p pinned marks KeepDouble sites
     * (level cap 0), @p narrow marks SafeToNarrow sites, @p scores
     * carries the per-site sensitivity scores (higher = more
     * sensitive). All three vectors must agree on the site count.
     * Non-pinned sites are unbounded (cap kUnbounded).
     */
    StaticPrior(PriorMode mode, std::vector<bool> pinned,
                std::vector<bool> narrow, std::vector<int> scores);

    /**
     * A ladder-aware prior with an explicit per-site level cap
     * (0 = pinned to double, kUnbounded = any rung). A named factory
     * rather than an overloaded constructor: brace-initialized
     * bool/uint8_t lists would be ambiguous between the two.
     */
    static StaticPrior withCaps(PriorMode mode,
                                std::vector<std::uint8_t> caps,
                                std::vector<bool> narrow,
                                std::vector<int> scores);

    /** Cap value meaning "no floor — any ladder rung is allowed". */
    static constexpr std::uint8_t kUnbounded = 255;

    /** True when the prior participates in search (mode != Off). */
    bool enabled() const { return mode_ != PriorMode::Off; }

    /** True in Strict mode only. */
    bool strict() const { return mode_ == PriorMode::Strict; }

    PriorMode mode() const { return mode_; }

    /** Number of sites this prior was built for. */
    std::size_t siteCount() const { return caps_.size(); }

    /** Is site @p i pinned to double (level cap 0)? */
    bool pinned(std::size_t i) const { return caps_[i] == 0; }

    /** Deepest ladder level site @p i may take. */
    std::uint8_t levelCap(std::size_t i) const { return caps_[i]; }

    /** Number of pinned sites. */
    std::size_t pinnedCount() const;

    /** Sensitivity score of site @p i. */
    int score(std::size_t i) const { return scores_[i]; }

    /** Indices of sites free to vary (not pinned), ascending. */
    std::vector<std::size_t> freeSites() const;

    /** GA seed: the SafeToNarrow mask (never includes pinned sites). */
    Config seedConfig() const;

    /** True when any site of @p config exceeds its level cap. */
    bool violates(const Config& config) const;

    /** @p config with every site clamped to its level cap. */
    Config clamped(Config config) const;

    /** Sum of member scores over @p sites (hierarchical ordering). */
    int groupScore(const std::vector<std::size_t>& sites) const;

  private:
    PriorMode mode_ = PriorMode::Off;
    std::vector<std::uint8_t> caps_; ///< per-site level cap
    std::vector<bool> narrow_;
    std::vector<int> scores_;
};

} // namespace hpcmixp::search

#endif // HPCMIXP_SEARCH_PRIOR_H_
