#ifndef HPCMIXP_SEARCH_HIERARCHICAL_COMPOSITIONAL_H_
#define HPCMIXP_SEARCH_HIERARCHICAL_COMPOSITIONAL_H_

/**
 * @file
 * Hierarchical-compositional search (FloatSmith).
 *
 * Integrates the hierarchical and compositional approaches: the
 * hierarchical descent identifies program components amenable to
 * replacement; the compositional phase then combines those components,
 * looking for inter-component configurations without having started
 * from individual variables. The search terminates when all passing
 * configurations have been composed of other passing configurations
 * (paper Section II-B).
 */

#include "search/strategy.h"

namespace hpcmixp::search {

/** Hierarchical component discovery + compositional combination. */
class HierarchicalCompositionalSearch : public SearchStrategy {
  public:
    std::string name() const override
    {
        return "hierarchical-compositional";
    }
    std::string code() const override { return "HC"; }
    Granularity granularity() const override
    {
        return Granularity::Variable;
    }
    void run(SearchContext& ctx) override;
};

} // namespace hpcmixp::search

#endif // HPCMIXP_SEARCH_HIERARCHICAL_COMPOSITIONAL_H_
