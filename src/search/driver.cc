#include "search/driver.h"

#include "support/logging.h"

namespace hpcmixp::search {

SearchResult
runSearch(SearchProblem& problem, SearchStrategy& strategy,
          const SearchBudget& budget, const SearchRunOptions& run)
{
    SearchContext ctx(problem, budget, run.resilience);
    ctx.setSearchJobs(run.searchJobs);
    if (run.prior.enabled())
        ctx.setPrior(run.prior);
    if (run.fingerprint.valid())
        ctx.setFingerprint(run.fingerprint);
    if (run.memo)
        ctx.setMemo(run.memo);
    if (run.cancel)
        ctx.setCancelFlag(run.cancel);
    if (!run.initialCache.isNull()) {
        // A checkpoint that no longer matches the problem (changed
        // configuration, different granularity) or carries another
        // run's fingerprint (stale benchmark/threshold) must not kill
        // the campaign — the search simply starts fresh.
        try {
            ctx.importCache(run.initialCache);
        } catch (const support::FatalError& e) {
            support::warn(support::strCat(
                "ignoring unusable search checkpoint: ", e.what()));
        } catch (const CheckpointMismatch& e) {
            support::warn(support::strCat(
                "ignoring stale search checkpoint: ", e.what()));
        }
    }
    if (run.checkpointEvery > 0 && run.checkpointSink)
        ctx.setCheckpointHook(run.checkpointEvery, run.checkpointSink);

    SearchResult result;
    result.strategyCode = strategy.code();

    try {
        strategy.run(ctx);
    } catch (const BudgetExhausted&) {
        result.timedOut = true;
    }

    result.evaluated = ctx.evaluatedCount();
    result.compileFailures = ctx.compileFailCount();
    result.cacheHits = ctx.cacheHitCount();
    result.memoHits = ctx.memoHitCount();
    result.retries = ctx.retryCount();
    result.deadlineMisses = ctx.deadlineMissCount();
    result.quarantined = ctx.quarantinedCount();
    result.steals = ctx.stealCount();
    result.searchSeconds = ctx.elapsedSeconds();

    if (ctx.hasBest()) {
        result.foundImprovement = true;
        result.best = ctx.bestConfig();
        result.bestEvaluation = ctx.bestEvaluation();
    } else {
        // No improvement found: the answer is the baseline program.
        result.best = Config(problem.siteCount());
        result.bestEvaluation.status = EvalStatus::Pass;
        result.bestEvaluation.speedup = 1.0;
        result.bestEvaluation.qualityLoss = 0.0;
    }

    // A final snapshot so the cache of a search that ran to completion
    // (or timed out between periodic snapshots) is durable.
    if (run.checkpointSink)
        run.checkpointSink(ctx.exportCache());
    return result;
}

SearchResult
runSearch(SearchProblem& problem, SearchStrategy& strategy,
          const SearchBudget& budget)
{
    return runSearch(problem, strategy, budget, SearchRunOptions{});
}

SearchResult
runSearch(SearchProblem& problem, const std::string& strategyCode,
          const SearchBudget& budget, const SearchRunOptions& run)
{
    auto strategy = StrategyRegistry::instance().create(strategyCode);
    return runSearch(problem, *strategy, budget, run);
}

SearchResult
runSearch(SearchProblem& problem, const std::string& strategyCode,
          const SearchBudget& budget)
{
    return runSearch(problem, strategyCode, budget, SearchRunOptions{});
}

} // namespace hpcmixp::search
