#include "search/driver.h"

#include "support/logging.h"

namespace hpcmixp::search {

SearchResult
runSearch(SearchProblem& problem, SearchStrategy& strategy,
          const SearchBudget& budget)
{
    SearchContext ctx(problem, budget);
    SearchResult result;
    result.strategyCode = strategy.code();

    try {
        strategy.run(ctx);
    } catch (const BudgetExhausted&) {
        result.timedOut = true;
    }

    result.evaluated = ctx.evaluatedCount();
    result.compileFailures = ctx.compileFailCount();
    result.cacheHits = ctx.cacheHitCount();
    result.searchSeconds = ctx.elapsedSeconds();

    if (ctx.hasBest()) {
        result.foundImprovement = true;
        result.best = ctx.bestConfig();
        result.bestEvaluation = ctx.bestEvaluation();
    } else {
        // No improvement found: the answer is the baseline program.
        result.best = Config(problem.siteCount());
        result.bestEvaluation.status = EvalStatus::Pass;
        result.bestEvaluation.speedup = 1.0;
        result.bestEvaluation.qualityLoss = 0.0;
    }
    return result;
}

SearchResult
runSearch(SearchProblem& problem, const std::string& strategyCode,
          const SearchBudget& budget)
{
    auto strategy = StrategyRegistry::instance().create(strategyCode);
    return runSearch(problem, *strategy, budget);
}

} // namespace hpcmixp::search
