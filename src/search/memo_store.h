#ifndef HPCMIXP_SEARCH_MEMO_STORE_H_
#define HPCMIXP_SEARCH_MEMO_STORE_H_

/**
 * @file
 * Persistent, content-addressed evaluation memo-cache.
 *
 * SearchContext's cache lives and dies with one process; the memo
 * store is its durable, shareable counterpart (DESIGN.md, Section 12).
 * Evaluations are addressed in two steps:
 *
 *  - a MemoFingerprint names the *evaluation function*: benchmark,
 *    input signature, quality metric and threshold, site count and
 *    precision ladder. Two runs with the same fingerprint would
 *    measure identical quality outcomes for identical configurations,
 *    so their evaluations are interchangeable. Any fingerprint change
 *    addresses a different table — stale results are invalidated by
 *    construction, never consulted.
 *  - within a table, entries are keyed by the cluster-config bitmask
 *    (Config::toString()).
 *
 * A MemoTable is backed by one append-only AppendLog segment whose
 * header is the fingerprint description; crash recovery and
 * header-change invalidation come from the log. The in-memory index is
 * sharded (key-hash → shard mutex), so concurrent evaluateBatch
 * workers and racing portfolio strategies never contend on a global
 * lock for lookups.
 *
 * Only evaluations that actually *ran* (pass / quality_fail /
 * runtime_fail) are published: compile failures cost no execution to
 * re-derive and depend on prior mode, so memoizing them could poison
 * runs with different prior settings.
 */

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "search/problem.h"
#include "support/json.h"
#include "support/memo_log.h"

namespace hpcmixp::search {

/** Canonical name of an EvalStatus ("pass", "quality_fail", ...). */
const char* evalStatusName(EvalStatus status);

/** Inverse of evalStatusName(); nullopt for unknown names. */
std::optional<EvalStatus> evalStatusFromName(const std::string& name);

/** Identity of an evaluation function; equal fingerprints make
 *  evaluations interchangeable across runs, users and strategies. */
struct MemoFingerprint {
    std::string benchmark;            ///< registry name
    std::uint64_t inputSignature = 0; ///< hash of the reference output
    std::string metric;               ///< quality metric name
    double threshold = 0.0;           ///< quality threshold
    std::size_t sites = 0;            ///< config bitmask width
    std::string ladder = "f64:f32";   ///< precision ladder

    /** A default-constructed fingerprint means "none". */
    bool valid() const { return !benchmark.empty(); }

    /** Canonical one-line description (the segment header). */
    std::string describe() const;

    /** Content address: hash of describe(). */
    std::uint64_t hash() const;

    support::json::Value toJson() const;

    /** Parse a toJson() document; nullopt when malformed. */
    static std::optional<MemoFingerprint>
    fromJson(const support::json::Value& v);

    bool operator==(const MemoFingerprint& other) const = default;
};

/**
 * One fingerprint's evaluation table: sharded in-memory index over an
 * append-only on-disk segment. Thread-safe; shareable across contexts.
 */
class MemoTable {
  public:
    /** Open (or create) the segment at @p path for @p fingerprint. */
    MemoTable(const std::string& path,
              const MemoFingerprint& fingerprint);

    MemoTable(const MemoTable&) = delete;
    MemoTable& operator=(const MemoTable&) = delete;

    const MemoFingerprint& fingerprint() const { return fingerprint_; }

    /** The memoized evaluation of @p key, if any. */
    std::optional<Evaluation> lookup(const std::string& key) const;

    /**
     * Publish one evaluation. Only results that ran are durable (see
     * file comment); first publisher wins, repeats are no-ops. Returns
     * true when the entry was newly recorded.
     */
    bool publish(const std::string& key, const Evaluation& eval);

    /** Number of memoized evaluations. */
    std::size_t size() const;

    /** Snapshot of every memoized (key, evaluation) pair, in
     *  unspecified order. */
    std::vector<std::pair<std::string, Evaluation>> entries() const;

    /** Bytes of partial record dropped by crash recovery at open. */
    std::size_t truncatedBytes() const { return truncatedBytes_; }

    /** True when a stale segment (fingerprint change) was discarded. */
    bool invalidated() const { return invalidated_; }

    /**
     * Migration path: publish every ran evaluation of a
     * SearchContext::exportCache() checkpoint document. Returns the
     * number of newly recorded entries; a document whose site count or
     * embedded fingerprint mismatches publishes nothing.
     */
    std::size_t
    seedFromCheckpoint(const support::json::Value& checkpoint);

  private:
    static constexpr std::size_t kShards = 16;

    struct Shard {
        mutable std::mutex mutex;
        std::unordered_map<std::string, Evaluation> map;
    };

    Shard& shardFor(const std::string& key);
    const Shard& shardFor(const std::string& key) const;

    MemoFingerprint fingerprint_;
    std::array<Shard, kShards> shards_;
    std::mutex appendMutex_; ///< serializes segment appends
    support::AppendLog log_;
    std::size_t truncatedBytes_ = 0;
    bool invalidated_ = false;
};

/**
 * A directory of memo tables, one segment file per fingerprint.
 * Handing out shared_ptr tables means six racing portfolio strategies
 * (or six harness jobs tuning the same benchmark) hit one table
 * instance and one segment file.
 */
class MemoStore {
  public:
    /** Open (creating if needed) the store directory at @p dir. */
    explicit MemoStore(std::string dir);

    MemoStore(const MemoStore&) = delete;
    MemoStore& operator=(const MemoStore&) = delete;

    /** The table for @p fingerprint, opened on first use. */
    std::shared_ptr<MemoTable> table(const MemoFingerprint& fp);

    const std::string& directory() const { return dir_; }

  private:
    std::string dir_;
    std::mutex mutex_;
    std::unordered_map<std::uint64_t, std::shared_ptr<MemoTable>>
        tables_;
};

} // namespace hpcmixp::search

#endif // HPCMIXP_SEARCH_MEMO_STORE_H_
