#include "search/fault.h"

#include <limits>

#include "support/retry.h"
#include "support/rng.h"

namespace hpcmixp::search {

namespace {

/** FNV-1a over the configuration key, for seeding the decision draw. */
std::uint64_t
hashKey(const std::string& key)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : key) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace

FaultKind
FaultInjector::draw(const std::string& configKey, std::uint64_t attempt)
{
    if (!plan_.enabled())
        return FaultKind::None;
    // One SplitMix64 step over (seed, key, attempt) gives a stateless,
    // replayable decision per attempt.
    support::SplitMix64 mix(plan_.seed ^ hashKey(configKey) ^
                            (attempt * 0x9e3779b97f4a7c15ULL));
    double u = static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
    if (u < plan_.crashRate) {
        ++crashes_;
        return FaultKind::Crash;
    }
    if (u < plan_.crashRate + plan_.hangRate) {
        ++hangs_;
        return FaultKind::Hang;
    }
    if (u < plan_.crashRate + plan_.hangRate + plan_.nanRate) {
        ++nans_;
        return FaultKind::Nan;
    }
    return FaultKind::None;
}

Evaluation
FaultyProblem::evaluate(const Config& config)
{
    std::string key = config.toString();
    std::uint64_t attempt;
    {
        // Distinct configurations evaluate concurrently under
        // evaluateBatch; each key's attempt sequence stays private.
        std::lock_guard<std::mutex> lock(mutex_);
        attempt = attempts_[key]++;
    }
    switch (injector_.draw(key, attempt)) {
      case FaultKind::Crash: {
        Evaluation eval;
        eval.status = EvalStatus::RuntimeFail;
        eval.qualityLoss = std::numeric_limits<double>::quiet_NaN();
        return eval;
      }
      case FaultKind::Hang:
        support::sleepForSeconds(injector_.plan().hangSeconds);
        return inner_.evaluate(config);
      case FaultKind::Nan: {
        Evaluation eval = inner_.evaluate(config);
        if (eval.status == EvalStatus::Pass ||
            eval.status == EvalStatus::QualityFail) {
            eval.status = EvalStatus::QualityFail;
            eval.qualityLoss =
                std::numeric_limits<double>::quiet_NaN();
        }
        return eval;
      }
      case FaultKind::None:
        break;
    }
    return inner_.evaluate(config);
}

} // namespace hpcmixp::search
