#include "search/fault.h"

#include <cstdlib>
#include <limits>

#include "support/logging.h"
#include "support/retry.h"
#include "support/rng.h"

namespace hpcmixp::search {

namespace {

/** Raw fault handed from FaultyProblem to the sandboxed executor on
 *  the same evaluation thread (see header). */
thread_local RawFault tlsPendingRawFault = RawFault::None;

/** FNV-1a over the configuration key, for seeding the decision draw. */
std::uint64_t
hashKey(const std::string& key)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : key) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace

FaultKind
FaultInjector::draw(const std::string& configKey, std::uint64_t attempt)
{
    if (!plan_.enabled())
        return FaultKind::None;
    // One SplitMix64 step over (seed, key, attempt) gives a stateless,
    // replayable decision per attempt.
    support::SplitMix64 mix(plan_.seed ^ hashKey(configKey) ^
                            (attempt * 0x9e3779b97f4a7c15ULL));
    double u = static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
    if (u < plan_.crashRate) {
        ++crashes_;
        return FaultKind::Crash;
    }
    if (u < plan_.crashRate + plan_.hangRate) {
        ++hangs_;
        return FaultKind::Hang;
    }
    if (u < plan_.crashRate + plan_.hangRate + plan_.nanRate) {
        ++nans_;
        return FaultKind::Nan;
    }
    // Raw kinds share the decision stream with the simulated ones:
    // with a single nonzero rate r, both `hangRate = r` and
    // `rawHangRate = r` occupy the interval [0, r), so simulated and
    // forked hangs fire on exactly the same (key, attempt) draws for
    // the same seed.
    double cum = plan_.crashRate + plan_.hangRate + plan_.nanRate;
    if (u < cum + plan_.rawCrashRate) {
        ++rawCrashes_;
        return FaultKind::RawCrash;
    }
    cum += plan_.rawCrashRate;
    if (u < cum + plan_.rawHangRate) {
        ++rawHangs_;
        return FaultKind::RawHang;
    }
    cum += plan_.rawHangRate;
    if (u < cum + plan_.rawSegvRate) {
        ++rawSegvs_;
        return FaultKind::RawSegv;
    }
    return FaultKind::None;
}

void
setPendingRawFault(RawFault fault)
{
    tlsPendingRawFault = fault;
}

RawFault
takePendingRawFault()
{
    RawFault fault = tlsPendingRawFault;
    tlsPendingRawFault = RawFault::None;
    return fault;
}

void
executeRawFault(RawFault fault)
{
    switch (fault) {
      case RawFault::None:
        return;
      case RawFault::Crash:
        std::abort();
      case RawFault::Hang:
        for (volatile std::uint64_t spin = 0;;) ++spin;
      case RawFault::Segv: {
        // Aligned, unmapped low address; abort() as a backstop if the
        // store somehow fails to trap.
        volatile int* wild = reinterpret_cast<volatile int*>(0x28);
        *wild = 1;
        std::abort();
      }
    }
}

FaultyProblem::FaultyProblem(SearchProblem& inner, FaultPlan plan)
    : inner_(inner), injector_(plan)
{
    if (plan.rawEnabled() && !plan.sandboxed)
        support::fatal(
            "raw fault injection (--fault-raw-*) genuinely kills the "
            "evaluating process; it requires --isolation=fork");
}

Evaluation
FaultyProblem::evaluate(const Config& config)
{
    std::string key = config.toString();
    std::uint64_t attempt;
    {
        // Distinct configurations evaluate concurrently under
        // evaluateBatch; each key's attempt sequence stays private.
        std::lock_guard<std::mutex> lock(mutex_);
        attempt = attempts_[key]++;
    }
    const FaultKind kind = injector_.draw(key, attempt);
    switch (kind) {
      case FaultKind::Crash: {
        Evaluation eval;
        eval.status = EvalStatus::RuntimeFail;
        eval.qualityLoss = std::numeric_limits<double>::quiet_NaN();
        return eval;
      }
      case FaultKind::Hang:
        support::sleepForSeconds(injector_.plan().hangSeconds);
        return inner_.evaluate(config);
      case FaultKind::Nan: {
        Evaluation eval = inner_.evaluate(config);
        if (eval.status == EvalStatus::Pass ||
            eval.status == EvalStatus::QualityFail) {
            eval.status = EvalStatus::QualityFail;
            eval.qualityLoss =
                std::numeric_limits<double>::quiet_NaN();
        }
        return eval;
      }
      case FaultKind::RawCrash:
      case FaultKind::RawHang:
      case FaultKind::RawSegv: {
        // Post the fault for the sandboxed executor on this thread; it
        // detonates inside the forked child. Clear any leftover after
        // the call — an inner path that never forked (e.g. a compile
        // failure short-circuit) must not hand the fault to the next
        // evaluation on this thread.
        setPendingRawFault(kind == FaultKind::RawCrash ? RawFault::Crash
                           : kind == FaultKind::RawHang
                               ? RawFault::Hang
                               : RawFault::Segv);
        Evaluation eval = inner_.evaluate(config);
        takePendingRawFault();
        return eval;
      }
      case FaultKind::None:
        break;
    }
    return inner_.evaluate(config);
}

} // namespace hpcmixp::search
