#include "search/config.h"

#include <algorithm>

#include "support/logging.h"

namespace hpcmixp::search {

Config
Config::withLowered(std::size_t sites,
                    const std::vector<std::size_t>& lowered,
                    std::uint8_t level)
{
    Config cfg(sites);
    for (std::size_t i : lowered)
        cfg.setLevel(i, level);
    return cfg;
}

Config
Config::allLowered(std::size_t sites, std::uint8_t level)
{
    Config cfg(sites);
    for (std::size_t i = 0; i < sites; ++i)
        cfg.setLevel(i, level);
    return cfg;
}

Config
Config::fromString(const std::string& key)
{
    Config cfg(key.size());
    for (std::size_t i = 0; i < key.size(); ++i) {
        if (key[i] < '0' || key[i] > '9')
            support::fatal(
                support::strCat("config key '", key,
                                "' holds a non-digit level"));
        cfg.levels_[i] = static_cast<std::uint8_t>(key[i] - '0');
    }
    return cfg;
}

bool
Config::test(std::size_t i) const
{
    HPCMIXP_ASSERT(i < levels_.size(), "config site index out of range");
    return levels_[i] != 0;
}

void
Config::set(std::size_t i, bool lowered)
{
    setLevel(i, lowered ? 1 : 0);
}

std::uint8_t
Config::level(std::size_t i) const
{
    HPCMIXP_ASSERT(i < levels_.size(), "config site index out of range");
    return levels_[i];
}

void
Config::setLevel(std::size_t i, std::uint8_t level)
{
    HPCMIXP_ASSERT(i < levels_.size(), "config site index out of range");
    HPCMIXP_ASSERT(level <= 9, "config level exceeds digit encoding");
    levels_[i] = level;
}

std::size_t
Config::count() const
{
    std::size_t n = 0;
    for (auto l : levels_)
        n += l != 0 ? 1 : 0;
    return n;
}

std::uint8_t
Config::maxLevel() const
{
    std::uint8_t deepest = 0;
    for (auto l : levels_)
        if (l > deepest)
            deepest = l;
    return deepest;
}

std::vector<std::size_t>
Config::lowered() const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < levels_.size(); ++i)
        if (levels_[i])
            out.push_back(i);
    return out;
}

Config
Config::unionWith(const Config& other) const
{
    HPCMIXP_ASSERT(size() == other.size(),
                   "union of configs with different site counts");
    Config out(size());
    for (std::size_t i = 0; i < size(); ++i)
        out.levels_[i] = std::max(levels_[i], other.levels_[i]);
    return out;
}

bool
Config::isSubsetOf(const Config& other) const
{
    HPCMIXP_ASSERT(size() == other.size(),
                   "subset test on configs with different site counts");
    for (std::size_t i = 0; i < size(); ++i)
        if (levels_[i] > other.levels_[i])
            return false;
    return true;
}

std::string
Config::toString() const
{
    std::string out(levels_.size(), '0');
    for (std::size_t i = 0; i < levels_.size(); ++i)
        out[i] = static_cast<char>('0' + levels_[i]);
    return out;
}

} // namespace hpcmixp::search
