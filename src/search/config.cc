#include "search/config.h"

#include "support/logging.h"

namespace hpcmixp::search {

Config
Config::withLowered(std::size_t sites,
                    const std::vector<std::size_t>& lowered)
{
    Config cfg(sites);
    for (std::size_t i : lowered)
        cfg.set(i);
    return cfg;
}

Config
Config::allLowered(std::size_t sites)
{
    Config cfg(sites);
    for (std::size_t i = 0; i < sites; ++i)
        cfg.set(i);
    return cfg;
}

bool
Config::test(std::size_t i) const
{
    HPCMIXP_ASSERT(i < bits_.size(), "config site index out of range");
    return bits_[i] != 0;
}

void
Config::set(std::size_t i, bool lowered)
{
    HPCMIXP_ASSERT(i < bits_.size(), "config site index out of range");
    bits_[i] = lowered ? 1 : 0;
}

std::size_t
Config::count() const
{
    std::size_t n = 0;
    for (auto b : bits_)
        n += b;
    return n;
}

std::vector<std::size_t>
Config::lowered() const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < bits_.size(); ++i)
        if (bits_[i])
            out.push_back(i);
    return out;
}

Config
Config::unionWith(const Config& other) const
{
    HPCMIXP_ASSERT(size() == other.size(),
                   "union of configs with different site counts");
    Config out(size());
    for (std::size_t i = 0; i < size(); ++i)
        out.bits_[i] = bits_[i] | other.bits_[i];
    return out;
}

bool
Config::isSubsetOf(const Config& other) const
{
    HPCMIXP_ASSERT(size() == other.size(),
                   "subset test on configs with different site counts");
    for (std::size_t i = 0; i < size(); ++i)
        if (bits_[i] && !other.bits_[i])
            return false;
    return true;
}

std::string
Config::toString() const
{
    std::string out(bits_.size(), '0');
    for (std::size_t i = 0; i < bits_.size(); ++i)
        if (bits_[i])
            out[i] = '1';
    return out;
}

} // namespace hpcmixp::search
