#include "harness/harness.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "benchmarks/registry.h"
#include "support/logging.h"
#include "support/string_util.h"
#include "support/table.h"
#include "support/thread_pool.h"
#include "verify/metrics.h"

namespace hpcmixp::harness {

using support::fatal;
using support::strCat;
using support::json::Value;

namespace {

/** Clauses of the Listing-4 schema we accept. */
bool
isKnownClause(const std::string& key)
{
    static const char* kKnown[] = {"build_dir", "build", "clean",
                                   "analysis",  "output", "metric",
                                   "bin",       "copy",   "args",
                                   "threshold"};
    for (const char* k : kKnown)
        if (key == k)
            return true;
    return false;
}

JobSpec
parseEntry(const std::string& benchmarkName,
           const support::yaml::Node& entry)
{
    if (!entry.isMapping())
        fatal(strCat("harness: entry '", benchmarkName,
                     "' must be a mapping"));
    if (!benchmarks::BenchmarkRegistry::instance().has(benchmarkName))
        fatal(strCat("harness: unknown benchmark '", benchmarkName,
                     "'"));
    for (const auto& key : entry.keys())
        if (!isKnownClause(key))
            fatal(strCat("harness: unknown clause '", key, "' in '",
                         benchmarkName, "'"));

    JobSpec spec;
    spec.benchmark = benchmarkName;
    spec.metric = entry.getString("metric", "");
    if (!spec.metric.empty() &&
        !verify::MetricRegistry::instance().has(spec.metric))
        fatal(strCat("harness: unknown metric '", spec.metric, "'"));
    spec.threshold = entry.getDouble("threshold", 1e-6);

    const auto* analysis = entry.find("analysis");
    if (!analysis || !analysis->isMapping() ||
        analysis->keys().empty())
        fatal(strCat("harness: '", benchmarkName,
                     "' is missing an analysis clause"));
    // The clause is keyed by an identifier; `name` selects the class.
    const std::string& id = analysis->keys().front();
    const auto& body = analysis->at(id);
    spec.analysis = body.getString("name", id);
    if (!AnalysisRegistry::instance().has(spec.analysis))
        fatal(strCat("harness: unknown analysis '", spec.analysis,
                     "'"));
    if (const auto* extra = body.find("extra_args");
        extra && extra->isMapping()) {
        for (const auto& key : extra->keys())
            spec.extraArgs[key] = extra->at(key).asString();
    }
    return spec;
}

/** Stable identity of a job inside a checkpoint file. */
std::string
jobKey(const JobSpec& spec, std::size_t index)
{
    return strCat(index, ":", spec.benchmark, "/",
                  support::toLower(spec.analysis));
}

Value
analysisResultToJson(const AnalysisResult& r)
{
    Value v = Value::object();
    v.set("analysis", Value::string(r.analysis));
    v.set("detail", Value::string(r.detail));
    v.set("speedup", Value::number(r.speedup));
    v.set("quality_loss", Value::number(r.qualityLoss));
    v.set("evaluated", Value::number(static_cast<double>(r.evaluated)));
    v.set("compile_failures",
          Value::number(static_cast<double>(r.compileFailures)));
    v.set("cache_hits",
          Value::number(static_cast<double>(r.cacheHits)));
    v.set("memo_hits",
          Value::number(static_cast<double>(r.memoHits)));
    v.set("retries", Value::number(static_cast<double>(r.retries)));
    v.set("deadline_misses",
          Value::number(static_cast<double>(r.deadlineMisses)));
    v.set("quarantined",
          Value::number(static_cast<double>(r.quarantined)));
    v.set("steals", Value::number(static_cast<double>(r.steals)));
    v.set("timed_out", Value::boolean(r.timedOut));
    v.set("configuration", Value::string(r.configuration));
    v.set("child_forks",
          Value::number(static_cast<double>(r.childForks)));
    v.set("child_kills",
          Value::number(static_cast<double>(r.childKills)));
    v.set("child_nonzero_exits",
          Value::number(static_cast<double>(r.childNonZeroExits)));
    v.set("child_signaled",
          Value::number(static_cast<double>(r.childSignaled)));
    v.set("child_arena_corrupt",
          Value::number(static_cast<double>(r.childArenaCorrupt)));
    v.set("child_respawns",
          Value::number(static_cast<double>(r.childRespawns)));
    v.set("child_spawn_mean_seconds",
          Value::number(r.childSpawnMeanSeconds));
    return v;
}

AnalysisResult
analysisResultFromJson(const Value& v)
{
    auto count = [&](const char* key) -> std::size_t {
        return v.has(key) ? static_cast<std::size_t>(v.at(key).asLong())
                          : 0;
    };
    AnalysisResult r;
    r.analysis = v.at("analysis").asString();
    r.detail = v.at("detail").asString();
    r.speedup = v.at("speedup").asNumber();
    // NaN quality losses serialize as null (JSON has no NaN).
    r.qualityLoss = v.at("quality_loss").isNull()
                        ? std::numeric_limits<double>::quiet_NaN()
                        : v.at("quality_loss").asNumber();
    r.evaluated = count("evaluated");
    r.compileFailures = count("compile_failures");
    r.cacheHits = count("cache_hits");
    r.memoHits = count("memo_hits");
    r.retries = count("retries");
    r.deadlineMisses = count("deadline_misses");
    r.quarantined = count("quarantined");
    // Absent in pre-stealing checkpoints; defaults to zero.
    r.steals = count("steals");
    r.timedOut = v.at("timed_out").asBool();
    r.configuration = v.at("configuration").asString();
    // Sandbox fields are absent in pre-sandbox checkpoints; count()
    // already defaults them to zero.
    r.childForks = count("child_forks");
    r.childKills = count("child_kills");
    r.childNonZeroExits = count("child_nonzero_exits");
    r.childSignaled = count("child_signaled");
    r.childArenaCorrupt = count("child_arena_corrupt");
    r.childRespawns = count("child_respawns");
    r.childSpawnMeanSeconds =
        v.has("child_spawn_mean_seconds")
            ? v.at("child_spawn_mean_seconds").asNumber()
            : 0.0;
    return r;
}

/**
 * Mutex-protected checkpoint document for one campaign: successfully
 * completed job results plus the latest search-cache snapshot of every
 * in-flight job. Every update atomically rewrites the file (write to a
 * temporary, then rename) so a kill mid-write never corrupts it.
 */
class CheckpointWriter {
  public:
    explicit CheckpointWriter(std::string path)
        : path_(std::move(path))
    {
    }

    void
    updateCache(const std::string& key, Value cache)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        caches_[key] = std::move(cache);
        flushLocked();
    }

    void
    completeJob(const std::string& key, const JobResult& job)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Value entry = Value::object();
        entry.set("benchmark", Value::string(job.spec.benchmark));
        entry.set("analysis", Value::string(job.spec.analysis));
        entry.set("result", analysisResultToJson(job.result));
        completed_[key] = std::move(entry);
        caches_.erase(key); // the final result supersedes the cache
        flushLocked();
    }

  private:
    void
    flushLocked()
    {
        Value root = Value::object();
        root.set("version", Value::number(1));
        Value completed = Value::object();
        for (const auto& [key, entry] : completed_)
            completed.set(key, entry);
        root.set("completed", std::move(completed));
        Value caches = Value::object();
        for (const auto& [key, cache] : caches_)
            caches.set(key, cache);
        root.set("caches", std::move(caches));

        std::string tmp = path_ + ".tmp";
        {
            std::ofstream out(tmp);
            if (!out) {
                support::warn(strCat("harness: cannot write checkpoint '",
                                     tmp, "'"));
                return;
            }
            out << root.dump(2) << '\n';
        }
        if (std::rename(tmp.c_str(), path_.c_str()) != 0)
            support::warn(strCat("harness: cannot move checkpoint into '",
                                 path_, "'"));
    }

    std::string path_;
    std::mutex mutex_;
    std::map<std::string, Value> completed_;
    std::map<std::string, Value> caches_;
};

/** Restored state of an interrupted campaign. */
struct ResumeState {
    std::map<std::string, AnalysisResult> completed;
    std::map<std::string, Value> caches;
};

ResumeState
loadResume(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal(strCat("harness: cannot open resume checkpoint '", path,
                     "'"));
    std::ostringstream text;
    text << in.rdbuf();
    Value root = support::json::parse(text.str());
    if (!root.isObject() || !root.has("completed") ||
        !root.has("caches"))
        fatal(strCat("harness: '", path,
                     "' is not a harness checkpoint"));

    ResumeState state;
    const Value& completed = root.at("completed");
    for (const auto& key : completed.keys())
        state.completed[key] =
            analysisResultFromJson(completed.at(key).at("result"));
    const Value& caches = root.at("caches");
    for (const auto& key : caches.keys())
        state.caches[key] = caches.at(key);
    return state;
}

JobResult
runJob(const JobSpec& spec, const HarnessOptions& options,
       Value initialCache,
       search::SearchContext::CheckpointSink checkpointSink)
{
    JobResult out;
    out.spec = spec;
    try {
        auto benchmark =
            benchmarks::BenchmarkRegistry::instance().create(
                spec.benchmark);
        core::TunerOptions tunerOptions = options.tuner;
        tunerOptions.threshold = spec.threshold;
        tunerOptions.metric = spec.metric;
        tunerOptions.initialCache = std::move(initialCache);
        tunerOptions.checkpointSink = std::move(checkpointSink);
        if (!tunerOptions.checkpointSink)
            tunerOptions.checkpointEvery = 0;
        else if (tunerOptions.checkpointEvery == 0)
            tunerOptions.checkpointEvery = options.checkpointEvery;
        auto analysis =
            AnalysisRegistry::instance().create(spec.analysis);
        out.result =
            analysis->analyze(*benchmark, tunerOptions, spec.extraArgs);
    } catch (const std::exception& e) {
        out.error = e.what();
    } catch (...) {
        // A job must never tear down the pool or the other jobs,
        // whatever it throws.
        out.error = "job failed with a non-standard exception";
    }
    return out;
}

} // namespace

std::vector<JobSpec>
parseConfig(const support::yaml::Node& doc)
{
    if (!doc.isMapping())
        fatal("harness: configuration root must be a mapping");
    std::vector<JobSpec> jobs;
    for (const auto& key : doc.keys())
        jobs.push_back(parseEntry(key, doc.at(key)));
    if (jobs.empty())
        fatal("harness: configuration declares no benchmarks");
    return jobs;
}

std::vector<JobSpec>
parseConfigFile(const std::string& path)
{
    return parseConfig(support::yaml::parseFile(path));
}

std::vector<JobResult>
runJobs(const std::vector<JobSpec>& jobs, const HarnessOptions& opts)
{
    std::vector<JobResult> results(jobs.size());

    // Nested-parallelism guard: `jobs` analysis workers each running
    // `searchJobs` in-search evaluators would oversubscribe the
    // machine multiplicatively, so clamp the product to the hardware.
    HarnessOptions options = opts;
    std::size_t hw = std::thread::hardware_concurrency();
    if (hw > 0 && options.jobs > 1 && options.tuner.searchJobs > 1 &&
        options.jobs * options.tuner.searchJobs > hw) {
        std::size_t clamped =
            std::max<std::size_t>(1, hw / options.jobs);
        support::warn(strCat(
            "harness: ", options.jobs, " jobs x ",
            options.tuner.searchJobs, " search jobs oversubscribes ",
            hw, " hardware threads; clamping search jobs to ",
            clamped));
        options.tuner.searchJobs = clamped;
    }

    // One store for the whole campaign: jobs sharing a benchmark and
    // threshold share a table, everything else just shares the
    // directory.
    if (!options.memoCacheDir.empty())
        options.tuner.memoStore =
            std::make_shared<search::MemoStore>(options.memoCacheDir);

    ResumeState resume;
    if (!options.resumePath.empty())
        resume = loadResume(options.resumePath);

    std::shared_ptr<CheckpointWriter> writer;
    if (!options.checkpointPath.empty())
        writer = std::make_shared<CheckpointWriter>(
            options.checkpointPath);

    auto runOne = [&](std::size_t i) {
        JobSpec spec = jobs[i];
        // --portfolio swaps the configured analysis for the racing
        // portfolio; the key follows so checkpoints of the two setups
        // never alias.
        if (options.portfolio) {
            spec.analysis = "portfolio";
            spec.extraArgs["mode"] = options.portfolioMode;
        }
        std::string key = jobKey(spec, i);

        if (auto it = resume.completed.find(key);
            it != resume.completed.end()) {
            results[i].spec = spec;
            results[i].result = it->second;
            results[i].restored = true;
            support::inform(strCat("harness: restored '", key,
                                   "' from checkpoint"));
            if (writer)
                writer->completeJob(key, results[i]);
            return;
        }

        Value initialCache; // null
        if (auto it = resume.caches.find(key);
            it != resume.caches.end()) {
            initialCache = it->second;
            support::inform(strCat("harness: resuming '", key,
                                   "' from a partial search cache"));
        }
        search::SearchContext::CheckpointSink sink;
        if (writer)
            sink = [writer, key](const Value& cache) {
                writer->updateCache(key, cache);
            };

        results[i] = runJob(spec, options, std::move(initialCache),
                            std::move(sink));
        // Failed jobs stay out of `completed` so a resumed campaign
        // retries them (their last cache snapshot is kept).
        if (writer && results[i].error.empty())
            writer->completeJob(key, results[i]);
    };

    if (options.jobs <= 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            runOne(i);
        return results;
    }
    support::ThreadPool pool(options.jobs);
    std::vector<std::future<void>> futures;
    futures.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        futures.push_back(pool.submit([&runOne, i] { runOne(i); }));
    for (auto& f : futures)
        f.get();
    return results;
}

support::json::Value
resultsToJson(const std::vector<JobResult>& results)
{
    using support::json::Value;
    Value root = Value::array();
    for (const auto& r : results) {
        Value entry = Value::object();
        entry.set("benchmark", Value::string(r.spec.benchmark));
        entry.set("analysis", Value::string(r.spec.analysis));
        entry.set("threshold", Value::number(r.spec.threshold));
        if (!r.error.empty()) {
            entry.set("error", Value::string(r.error));
            root.push(std::move(entry));
            continue;
        }
        entry.set("algorithm", Value::string(r.result.detail));
        entry.set("speedup", Value::number(r.result.speedup));
        entry.set("quality_loss",
                  Value::number(r.result.qualityLoss));
        entry.set("evaluated_configurations",
                  Value::number(
                      static_cast<double>(r.result.evaluated)));
        entry.set("compile_failures",
                  Value::number(static_cast<double>(
                      r.result.compileFailures)));
        entry.set("cache_hits",
                  Value::number(
                      static_cast<double>(r.result.cacheHits)));
        entry.set("memo_hits",
                  Value::number(
                      static_cast<double>(r.result.memoHits)));
        entry.set("retries",
                  Value::number(
                      static_cast<double>(r.result.retries)));
        entry.set("deadline_misses",
                  Value::number(static_cast<double>(
                      r.result.deadlineMisses)));
        entry.set("quarantined",
                  Value::number(
                      static_cast<double>(r.result.quarantined)));
        entry.set("steals",
                  Value::number(
                      static_cast<double>(r.result.steals)));
        entry.set("timed_out", Value::boolean(r.result.timedOut));
        entry.set("restored", Value::boolean(r.restored));
        entry.set("configuration",
                  Value::string(r.result.configuration));
        // Sandbox breakdown (--isolation=fork|pool): quarantines by
        // child exit class plus the mean fork+reap (fork) or dispatch
        // (pool) overhead per clean child.
        Value sandbox = Value::object();
        sandbox.set("forks",
                    Value::number(
                        static_cast<double>(r.result.childForks)));
        sandbox.set("kills",
                    Value::number(
                        static_cast<double>(r.result.childKills)));
        sandbox.set("nonzero_exits",
                    Value::number(static_cast<double>(
                        r.result.childNonZeroExits)));
        sandbox.set("signaled",
                    Value::number(
                        static_cast<double>(r.result.childSignaled)));
        sandbox.set("arena_corrupt",
                    Value::number(static_cast<double>(
                        r.result.childArenaCorrupt)));
        sandbox.set("respawns",
                    Value::number(static_cast<double>(
                        r.result.childRespawns)));
        sandbox.set("spawn_overhead_mean_seconds",
                    Value::number(r.result.childSpawnMeanSeconds));
        entry.set("sandbox", std::move(sandbox));
        root.push(std::move(entry));
    }
    return root;
}

void
printResults(std::ostream& os, const std::vector<JobResult>& results)
{
    support::Table table({"benchmark", "analysis", "algorithm",
                          "speedup", "quality", "EV", "cache", "memo",
                          "retries", "steals", "kills", "spawn_ms",
                          "status"});
    for (const auto& r : results) {
        if (!r.error.empty()) {
            table.addRow({r.spec.benchmark, r.spec.analysis, "-", "-",
                          "-", "-", "-", "-", "-", "-", "-", "-",
                          strCat("error: ", r.error)});
            continue;
        }
        const char* status = r.result.timedOut ? "timeout"
                             : r.restored      ? "restored"
                                               : "ok";
        table.addRow({r.spec.benchmark, r.result.analysis,
                      r.result.detail,
                      support::Table::cell(r.result.speedup, 2),
                      support::Table::cellSci(r.result.qualityLoss),
                      support::Table::cell(
                          static_cast<long>(r.result.evaluated)),
                      support::Table::cell(
                          static_cast<long>(r.result.cacheHits)),
                      support::Table::cell(
                          static_cast<long>(r.result.memoHits)),
                      support::Table::cell(
                          static_cast<long>(r.result.retries)),
                      support::Table::cell(
                          static_cast<long>(r.result.steals)),
                      support::Table::cell(
                          static_cast<long>(r.result.childKills)),
                      support::Table::cell(
                          r.result.childSpawnMeanSeconds * 1e3, 2),
                      status});
    }
    table.print(os);
}

} // namespace hpcmixp::harness
