#include "harness/harness.h"

#include "benchmarks/registry.h"
#include "support/logging.h"
#include "support/string_util.h"
#include "support/table.h"
#include "support/thread_pool.h"
#include "verify/metrics.h"

namespace hpcmixp::harness {

using support::fatal;
using support::strCat;

namespace {

/** Clauses of the Listing-4 schema we accept. */
bool
isKnownClause(const std::string& key)
{
    static const char* kKnown[] = {"build_dir", "build", "clean",
                                   "analysis",  "output", "metric",
                                   "bin",       "copy",   "args",
                                   "threshold"};
    for (const char* k : kKnown)
        if (key == k)
            return true;
    return false;
}

JobSpec
parseEntry(const std::string& benchmarkName,
           const support::yaml::Node& entry)
{
    if (!entry.isMapping())
        fatal(strCat("harness: entry '", benchmarkName,
                     "' must be a mapping"));
    if (!benchmarks::BenchmarkRegistry::instance().has(benchmarkName))
        fatal(strCat("harness: unknown benchmark '", benchmarkName,
                     "'"));
    for (const auto& key : entry.keys())
        if (!isKnownClause(key))
            fatal(strCat("harness: unknown clause '", key, "' in '",
                         benchmarkName, "'"));

    JobSpec spec;
    spec.benchmark = benchmarkName;
    spec.metric = entry.getString("metric", "");
    if (!spec.metric.empty() &&
        !verify::MetricRegistry::instance().has(spec.metric))
        fatal(strCat("harness: unknown metric '", spec.metric, "'"));
    spec.threshold = entry.getDouble("threshold", 1e-6);

    const auto* analysis = entry.find("analysis");
    if (!analysis || !analysis->isMapping() ||
        analysis->keys().empty())
        fatal(strCat("harness: '", benchmarkName,
                     "' is missing an analysis clause"));
    // The clause is keyed by an identifier; `name` selects the class.
    const std::string& id = analysis->keys().front();
    const auto& body = analysis->at(id);
    spec.analysis = body.getString("name", id);
    if (!AnalysisRegistry::instance().has(spec.analysis))
        fatal(strCat("harness: unknown analysis '", spec.analysis,
                     "'"));
    if (const auto* extra = body.find("extra_args");
        extra && extra->isMapping()) {
        for (const auto& key : extra->keys())
            spec.extraArgs[key] = extra->at(key).asString();
    }
    return spec;
}

JobResult
runJob(const JobSpec& spec, const HarnessOptions& options)
{
    JobResult out;
    out.spec = spec;
    try {
        auto benchmark =
            benchmarks::BenchmarkRegistry::instance().create(
                spec.benchmark);
        core::TunerOptions tunerOptions = options.tuner;
        tunerOptions.threshold = spec.threshold;
        tunerOptions.metric = spec.metric;
        auto analysis =
            AnalysisRegistry::instance().create(spec.analysis);
        out.result =
            analysis->analyze(*benchmark, tunerOptions, spec.extraArgs);
    } catch (const std::exception& e) {
        out.error = e.what();
    }
    return out;
}

} // namespace

std::vector<JobSpec>
parseConfig(const support::yaml::Node& doc)
{
    if (!doc.isMapping())
        fatal("harness: configuration root must be a mapping");
    std::vector<JobSpec> jobs;
    for (const auto& key : doc.keys())
        jobs.push_back(parseEntry(key, doc.at(key)));
    if (jobs.empty())
        fatal("harness: configuration declares no benchmarks");
    return jobs;
}

std::vector<JobSpec>
parseConfigFile(const std::string& path)
{
    return parseConfig(support::yaml::parseFile(path));
}

std::vector<JobResult>
runJobs(const std::vector<JobSpec>& jobs, const HarnessOptions& options)
{
    std::vector<JobResult> results(jobs.size());
    if (options.jobs <= 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            results[i] = runJob(jobs[i], options);
        return results;
    }
    support::ThreadPool pool(options.jobs);
    std::vector<std::future<void>> futures;
    futures.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        futures.push_back(pool.submit(
            [&, i] { results[i] = runJob(jobs[i], options); }));
    for (auto& f : futures)
        f.get();
    return results;
}

support::json::Value
resultsToJson(const std::vector<JobResult>& results)
{
    using support::json::Value;
    Value root = Value::array();
    for (const auto& r : results) {
        Value entry = Value::object();
        entry.set("benchmark", Value::string(r.spec.benchmark));
        entry.set("analysis", Value::string(r.spec.analysis));
        entry.set("threshold", Value::number(r.spec.threshold));
        if (!r.error.empty()) {
            entry.set("error", Value::string(r.error));
            root.push(std::move(entry));
            continue;
        }
        entry.set("algorithm", Value::string(r.result.detail));
        entry.set("speedup", Value::number(r.result.speedup));
        entry.set("quality_loss",
                  Value::number(r.result.qualityLoss));
        entry.set("evaluated_configurations",
                  Value::number(
                      static_cast<double>(r.result.evaluated)));
        entry.set("compile_failures",
                  Value::number(static_cast<double>(
                      r.result.compileFailures)));
        entry.set("timed_out", Value::boolean(r.result.timedOut));
        entry.set("configuration",
                  Value::string(r.result.configuration));
        root.push(std::move(entry));
    }
    return root;
}

void
printResults(std::ostream& os, const std::vector<JobResult>& results)
{
    support::Table table({"benchmark", "analysis", "algorithm",
                          "speedup", "quality", "EV", "status"});
    for (const auto& r : results) {
        if (!r.error.empty()) {
            table.addRow({r.spec.benchmark, r.spec.analysis, "-", "-",
                          "-", "-", strCat("error: ", r.error)});
            continue;
        }
        table.addRow({r.spec.benchmark, r.result.analysis,
                      r.result.detail,
                      support::Table::cell(r.result.speedup, 2),
                      support::Table::cellSci(r.result.qualityLoss),
                      support::Table::cell(
                          static_cast<long>(r.result.evaluated)),
                      r.result.timedOut ? "timeout" : "ok"});
    }
    table.print(os);
}

} // namespace hpcmixp::harness
