#ifndef HPCMIXP_HARNESS_ANALYSIS_H_
#define HPCMIXP_HARNESS_ANALYSIS_H_

/**
 * @file
 * The harness's pluggable analysis interface.
 *
 * The paper's harness invokes a user-selected analysis class on each
 * deployed application (Section III-A.c); implementing a new analysis
 * technique means subclassing a base class whose analyze() entry point
 * the harness calls. This is the C++ rendering of that plugin
 * interface. Two analyses are built in:
 *
 *  - "floatsmith": FloatSmith-style mixed-precision search with a
 *    configurable algorithm (the paper's main workload);
 *  - "singleprecision": converts everything to binary32 and profiles
 *    speedup and quality loss (the Table IV experiment).
 */

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/tuner.h"

namespace hpcmixp::harness {

/** Free-form key/value arguments from the YAML `extra_args` clause. */
using ExtraArgs = std::map<std::string, std::string>;

/** Uniform result of one analysis run. */
struct AnalysisResult {
    std::string analysis;        ///< analysis name
    std::string detail;          ///< e.g. the algorithm used
    double speedup = 1.0;        ///< final measured speedup
    double qualityLoss = 0.0;    ///< final quality loss
    std::size_t evaluated = 0;   ///< configurations executed
    std::size_t compileFailures = 0;
    std::size_t cacheHits = 0;   ///< in-run repeat queries
    std::size_t memoHits = 0;    ///< cross-run memo-cache hits
    std::size_t retries = 0;     ///< transient-failure re-attempts
    std::size_t deadlineMisses = 0; ///< attempts discarded as stragglers
    std::size_t quarantined = 0; ///< configs failed after retries
    std::size_t steals = 0;      ///< batch evals run by a stealing worker
    bool timedOut = false;
    std::string configuration;   ///< winning cluster config bits

    /// Sandbox accounting (--isolation=fork|pool); all zero otherwise.
    std::size_t childForks = 0;       ///< forked evaluation children
    std::size_t childKills = 0;       ///< SIGKILLed on deadline
    std::size_t childNonZeroExits = 0; ///< quarantined: nonzero exit
    std::size_t childSignaled = 0;    ///< quarantined: died by signal
    std::size_t childArenaCorrupt = 0; ///< quarantined: torn result arena
    std::size_t childRespawns = 0;    ///< pool workers re-forked after death
    double childSpawnMeanSeconds = 0.0; ///< mean fork+reap/dispatch overhead
};

/** Base class for harness analyses (the paper's plugin interface). */
class Analysis {
  public:
    virtual ~Analysis() = default;

    /** Registry name, e.g. "floatsmith". */
    virtual std::string name() const = 0;

    /**
     * Analyze @p benchmark under @p options, with analysis-specific
     * @p args (from the YAML `extra_args` clause).
     */
    virtual AnalysisResult analyze(const benchmarks::Benchmark& benchmark,
                                   const core::TunerOptions& options,
                                   const ExtraArgs& args) = 0;
};

/** FloatSmith-style search analysis; `algorithm` picks the strategy. */
class FloatsmithAnalysis : public Analysis {
  public:
    std::string name() const override { return "floatsmith"; }
    AnalysisResult analyze(const benchmarks::Benchmark& benchmark,
                           const core::TunerOptions& options,
                           const ExtraArgs& args) override;

    /** Map YAML algorithm spellings (ddebug, genetic, ...) to codes. */
    static std::string algorithmCode(const std::string& spelling);
};

/** Whole-program single-precision profiling (Table IV). */
class SinglePrecisionAnalysis : public Analysis {
  public:
    std::string name() const override { return "singleprecision"; }
    AnalysisResult analyze(const benchmarks::Benchmark& benchmark,
                           const core::TunerOptions& options,
                           const ExtraArgs& args) override;
};

/**
 * Precimonious-style analysis: delta debugging over raw variables with
 * no cluster information. The paper compares against Precimonious and
 * notes the cost of cluster-blind search (Sections II-A and V); this
 * plugin makes that comparison runnable from a harness configuration.
 */
class PrecimoniousAnalysis : public Analysis {
  public:
    std::string name() const override { return "precimonious"; }
    AnalysisResult analyze(const benchmarks::Benchmark& benchmark,
                           const core::TunerOptions& options,
                           const ExtraArgs& args) override;
};

/**
 * Portfolio analysis: race several strategies (default: all six)
 * concurrently against the shared memo store and report the
 * deterministic winner. Extra args: `strategies` (comma-separated
 * codes), `mode` (`best` or `race`), `workers` (thread count,
 * 0 = one per entrant).
 */
class PortfolioAnalysis : public Analysis {
  public:
    std::string name() const override { return "portfolio"; }
    AnalysisResult analyze(const benchmarks::Benchmark& benchmark,
                           const core::TunerOptions& options,
                           const ExtraArgs& args) override;
};

/** Registry of analyses by name. */
class AnalysisRegistry {
  public:
    using Factory = std::function<std::unique_ptr<Analysis>()>;

    /** Process-wide instance with the built-ins registered. */
    static AnalysisRegistry& instance();

    /** Register a factory; fatal()s on duplicates. */
    void add(const std::string& name, Factory factory);

    /** Instantiate; fatal()s for unknown names. */
    std::unique_ptr<Analysis> create(const std::string& name) const;

    /** True when @p name is registered. */
    bool has(const std::string& name) const;

    /** Registered names. */
    std::vector<std::string> names() const;

  private:
    AnalysisRegistry();
    std::vector<std::pair<std::string, Factory>> factories_;
};

} // namespace hpcmixp::harness

#endif // HPCMIXP_HARNESS_ANALYSIS_H_
