#ifndef HPCMIXP_HARNESS_HARNESS_H_
#define HPCMIXP_HARNESS_HARNESS_H_

/**
 * @file
 * The YAML-driven harness (paper Section III-A.c).
 *
 * A configuration document names one or more benchmarks, each with an
 * analysis clause and quality settings, following the schema of the
 * paper's Listing 4:
 *
 *   kmeans:
 *     analysis:
 *       floatsmith:
 *         name: 'floatsmith'
 *         extra_args:
 *           algorithm: 'ddebug'
 *     metric: 'MCR'
 *     threshold: 1e-6
 *
 * The build/clean/bin/copy/args clauses of the original schema are
 * accepted (the parser validates them) but have no effect here: the
 * benchmarks are compiled into the suite rather than built via make.
 * Jobs are scheduled onto a thread pool (`jobs` > 1), substituting for
 * the paper's SLURM cluster.
 */

#include <ostream>
#include <string>
#include <vector>

#include "harness/analysis.h"
#include "support/json.h"
#include "support/yaml.h"

namespace hpcmixp::harness {

/** One parsed benchmark entry of the configuration document. */
struct JobSpec {
    std::string benchmark;   ///< registry name (the YAML key)
    std::string analysis;    ///< analysis registry name
    ExtraArgs extraArgs;     ///< analysis-specific arguments
    std::string metric;      ///< quality metric (empty = default)
    double threshold = 1e-6; ///< quality threshold
};

/** Harness-wide execution settings. */
struct HarnessOptions {
    std::size_t jobs = 1;         ///< parallel analysis jobs
    core::TunerOptions tuner;     ///< metric/threshold overridden per job

    /**
     * Checkpoint file the campaign progressively writes: completed
     * job results plus in-flight search caches. Empty disables
     * checkpointing.
     */
    std::string checkpointPath;

    /**
     * Checkpoint file a previous (interrupted) campaign wrote.
     * Completed jobs are restored without re-running; in-flight jobs
     * resume from their cached evaluations. Empty starts fresh.
     */
    std::string resumePath;

    /** Executed configurations between search-cache snapshots. */
    std::size_t checkpointEvery = 8;

    /**
     * Directory of the persistent cross-run memo-cache (--memo-cache).
     * Every job consults the benchmark-fingerprinted table before
     * executing a configuration and publishes what it ran, so a
     * repeated campaign re-executes nothing. Empty disables it.
     */
    std::string memoCacheDir;

    /** Run every job through the portfolio analysis (--portfolio),
     *  racing the strategies against the shared memo store instead of
     *  the analysis the configuration names. */
    bool portfolio = false;

    /** Portfolio finisher policy: "best" or "race". */
    std::string portfolioMode = "best";
};

/** One completed job. */
struct JobResult {
    JobSpec spec;
    AnalysisResult result;
    std::string error;     ///< non-empty when the job failed
    bool restored = false; ///< satisfied from a resume checkpoint
};

/** Parse a configuration document into job specs; fatal()s on schema
 *  violations (unknown benchmark, missing analysis clause, ...). */
std::vector<JobSpec> parseConfig(const support::yaml::Node& doc);

/** Parse a configuration file. */
std::vector<JobSpec> parseConfigFile(const std::string& path);

/** Execute all jobs and collect results in job order. */
std::vector<JobResult> runJobs(const std::vector<JobSpec>& jobs,
                               const HarnessOptions& options);

/** Render results as an aligned table. */
void printResults(std::ostream& os,
                  const std::vector<JobResult>& results);

/** Render results in the JSON interchange format (one entry per job). */
support::json::Value resultsToJson(const std::vector<JobResult>& results);

} // namespace hpcmixp::harness

#endif // HPCMIXP_HARNESS_HARNESS_H_
