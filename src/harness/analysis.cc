#include "harness/analysis.h"

#include "search/delta_debug.h"
#include "search/genetic.h"
#include "support/logging.h"
#include "support/string_util.h"

namespace hpcmixp::harness {

using support::fatal;
using support::strCat;
using support::toLower;

std::string
FloatsmithAnalysis::algorithmCode(const std::string& spelling)
{
    std::string s = toLower(spelling);
    if (s == "cb" || s == "combinational" || s == "brute")
        return "CB";
    if (s == "cm" || s == "compositional")
        return "CM";
    if (s == "dd" || s == "ddebug" || s == "delta-debugging" ||
        s == "delta_debug")
        return "DD";
    if (s == "hr" || s == "hierarchical")
        return "HR";
    if (s == "hc" || s == "hierarchical-compositional" ||
        s == "hier_comp")
        return "HC";
    if (s == "ga" || s == "genetic")
        return "GA";
    fatal(strCat("unknown search algorithm '", spelling, "'"));
}

namespace {

/** Parse a positive integer extra-arg, keeping @p fallback if absent. */
std::size_t
sizeArg(const ExtraArgs& args, const char* name, std::size_t fallback)
{
    auto it = args.find(name);
    if (it == args.end())
        return fallback;
    long v = support::parseLong(it->second, name);
    if (v <= 0)
        fatal(strCat("analysis: '", name, "' must be positive"));
    return static_cast<std::size_t>(v);
}

/** Copy the per-search accounting into an analysis result. */
void
fillSearchCounters(AnalysisResult& result,
                   const search::SearchResult& searchResult)
{
    result.evaluated = searchResult.evaluated;
    result.compileFailures = searchResult.compileFailures;
    result.cacheHits = searchResult.cacheHits;
    result.memoHits = searchResult.memoHits;
    result.retries = searchResult.retries;
    result.deadlineMisses = searchResult.deadlineMisses;
    result.quarantined = searchResult.quarantined;
    result.steals = searchResult.steals;
    result.timedOut = searchResult.timedOut;
}

/** Copy the sandbox accounting into an analysis result. */
void
fillSandboxStats(AnalysisResult& result, const core::SandboxStats& stats)
{
    result.childForks = stats.forks;
    result.childKills = stats.killedOnDeadline;
    result.childNonZeroExits = stats.nonZeroExits;
    result.childSignaled = stats.signaled;
    result.childArenaCorrupt = stats.arenaCorrupt;
    result.childRespawns = stats.workerRespawns;
    result.childSpawnMeanSeconds = stats.spawnOverheadMeanSeconds;
}

} // namespace

AnalysisResult
FloatsmithAnalysis::analyze(const benchmarks::Benchmark& benchmark,
                            const core::TunerOptions& options,
                            const ExtraArgs& args)
{
    std::string spelling = "ddebug";
    if (auto it = args.find("algorithm"); it != args.end())
        spelling = it->second;
    std::string code = algorithmCode(spelling);

    core::BenchmarkTuner tuner(benchmark, options);

    core::TuneOutcome outcome;
    if (code == "GA") {
        // The GA's knobs are tunable from the configuration file,
        // like CRAFT's strategy options; its seed follows the
        // campaign seed unless the configuration pins one.
        search::GaOptions gaOptions;
        gaOptions.population =
            sizeArg(args, "population", gaOptions.population);
        gaOptions.generations =
            sizeArg(args, "generations", gaOptions.generations);
        gaOptions.seed = sizeArg(
            args, "seed", static_cast<std::size_t>(options.seed));
        search::GeneticSearch ga(gaOptions);
        outcome = tuner.tune(ga);
    } else {
        outcome = tuner.tune(code);
    }

    AnalysisResult result;
    result.analysis = name();
    result.detail = code;
    result.speedup = outcome.finalSpeedup;
    result.qualityLoss = outcome.finalQualityLoss;
    fillSearchCounters(result, outcome.search);
    fillSandboxStats(result, tuner.sandboxStats());
    result.configuration = outcome.clusterConfig.toString();
    return result;
}

AnalysisResult
SinglePrecisionAnalysis::analyze(const benchmarks::Benchmark& benchmark,
                                 const core::TunerOptions& options,
                                 const ExtraArgs& /*args*/)
{
    core::BenchmarkTuner tuner(benchmark, options);
    search::Config all = search::Config::allLowered(tuner.clusterCount());
    search::Evaluation eval = tuner.finalMeasure(all);

    AnalysisResult result;
    result.analysis = name();
    result.detail = "all-binary32";
    result.speedup = eval.speedup;
    result.qualityLoss = eval.qualityLoss;
    result.evaluated = 1;
    result.configuration = all.toString();
    return result;
}

AnalysisResult
PrecimoniousAnalysis::analyze(const benchmarks::Benchmark& benchmark,
                              const core::TunerOptions& options,
                              const ExtraArgs& /*args*/)
{
    core::BenchmarkTuner tuner(benchmark, options);
    search::DeltaDebugSearch dd;
    search::SearchResult searchResult =
        search::runSearch(tuner.searchVariableProblem(), dd,
                          options.budget, core::searchRunOptions(options));

    AnalysisResult result;
    result.analysis = name();
    result.detail = "DD/variables";
    fillSearchCounters(result, searchResult);
    fillSandboxStats(result, tuner.sandboxStats());
    if (searchResult.foundImprovement) {
        search::Config clusterCfg =
            tuner.toClusterConfig(searchResult.best);
        auto eval = tuner.finalMeasure(clusterCfg);
        result.speedup = eval.speedup;
        result.qualityLoss = eval.qualityLoss;
        result.configuration = clusterCfg.toString();
    } else {
        result.configuration =
            search::Config(tuner.clusterCount()).toString();
    }
    return result;
}

AnalysisResult
PortfolioAnalysis::analyze(const benchmarks::Benchmark& benchmark,
                           const core::TunerOptions& options,
                           const ExtraArgs& args)
{
    std::vector<std::string> codes;
    if (auto it = args.find("strategies"); it != args.end()) {
        for (const std::string& spelling :
             support::split(it->second, ','))
            codes.push_back(
                FloatsmithAnalysis::algorithmCode(spelling));
    }

    search::PortfolioMode mode = search::PortfolioMode::Best;
    if (auto it = args.find("mode"); it != args.end()) {
        std::string m = toLower(it->second);
        if (m == "race")
            mode = search::PortfolioMode::Race;
        else if (m != "best")
            fatal(strCat("portfolio: unknown mode '", it->second,
                         "' (expected best or race)"));
    }
    std::size_t workers = 0; // 0 = one worker per entrant
    if (auto it = args.find("workers"); it != args.end()) {
        long v = support::parseLong(it->second, "workers");
        if (v < 0)
            fatal("portfolio: 'workers' must be non-negative");
        workers = static_cast<std::size_t>(v);
    }

    core::BenchmarkTuner tuner(benchmark, options);
    core::PortfolioOutcome outcome =
        tuner.tunePortfolio(codes, mode, workers);
    const search::SearchResult& winner =
        outcome.portfolio.results[outcome.portfolio.winner];

    AnalysisResult result;
    result.analysis = name();
    result.detail = strCat("winner:", outcome.winnerCode);
    result.speedup = outcome.finalSpeedup;
    result.qualityLoss = outcome.finalQualityLoss;
    // Portfolio-wide accounting; the per-entrant breakdown lives in
    // the portfolio result, the table shows the campaign totals.
    result.evaluated = outcome.totalEvaluated;
    result.cacheHits = outcome.totalCacheHits;
    result.memoHits = outcome.totalMemoHits;
    for (const auto& entrant : outcome.portfolio.results) {
        result.compileFailures += entrant.compileFailures;
        result.retries += entrant.retries;
        result.deadlineMisses += entrant.deadlineMisses;
        result.quarantined += entrant.quarantined;
    }
    result.timedOut = winner.timedOut;
    fillSandboxStats(result, tuner.sandboxStats());
    result.configuration = outcome.clusterConfig.toString();
    return result;
}

AnalysisRegistry::AnalysisRegistry()
{
    add("floatsmith",
        [] { return std::make_unique<FloatsmithAnalysis>(); });
    add("singleprecision",
        [] { return std::make_unique<SinglePrecisionAnalysis>(); });
    add("precimonious",
        [] { return std::make_unique<PrecimoniousAnalysis>(); });
    add("portfolio",
        [] { return std::make_unique<PortfolioAnalysis>(); });
}

AnalysisRegistry&
AnalysisRegistry::instance()
{
    static AnalysisRegistry registry;
    return registry;
}

void
AnalysisRegistry::add(const std::string& name, Factory factory)
{
    if (has(name))
        fatal(strCat("analysis '", name, "' already registered"));
    factories_.emplace_back(toLower(name), std::move(factory));
}

std::unique_ptr<Analysis>
AnalysisRegistry::create(const std::string& name) const
{
    std::string wanted = toLower(name);
    for (const auto& [key, factory] : factories_)
        if (key == wanted)
            return factory();
    fatal(strCat("unknown analysis '", name, "'"));
}

bool
AnalysisRegistry::has(const std::string& name) const
{
    std::string wanted = toLower(name);
    for (const auto& [key, factory] : factories_)
        if (key == wanted)
            return true;
    return false;
}

std::vector<std::string>
AnalysisRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [key, factory] : factories_)
        out.push_back(key);
    return out;
}

} // namespace hpcmixp::harness
