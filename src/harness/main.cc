/**
 * @file
 * mixpbench-harness — command-line entry point.
 *
 *   mixpbench-harness --config suite.yaml [--jobs N]
 *                     [--search-jobs N] [--reps R]
 *                     [--budget E] [--seed S] [--retries N]
 *                     [--deadline S] [--fault-rate P]
 *                     [--isolation none|fork|pool]
 *                     [--isolation-max-crashes N] [--pool-workers N]
 *                     [--checkpoint F] [--resume F]
 *                     [--memo-cache DIR] [--portfolio]
 *                     [--portfolio-mode best|race]
 *                     [--static-prior on|off|strict]
 *                     [--certified-caps on|off]
 *                     [--ladder SPEC] [--refine on|off] [--verbose]
 *
 * Reads a Listing-4-style YAML configuration, runs every declared
 * analysis job, and prints a result table. The resilience flags
 * control the retry/deadline policy, deterministic fault injection,
 * and campaign checkpoint/resume (see README "Fault tolerance").
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <thread>

#include "harness/harness.h"
#include "support/cli.h"
#include "support/logging.h"

int
main(int argc, char** argv)
{
    using namespace hpcmixp;
    support::CommandLine cl(argc, argv);

    if (cl.has("help") || (!cl.has("config") && cl.positional().empty())) {
        std::cout
            << "usage: mixpbench-harness --config <file.yaml>"
               " [options]\n"
               "  --config      YAML configuration (Listing-4 schema)\n"
               "  --jobs        parallel analysis jobs (default 1)\n"
               "  --search-jobs parallel in-search evaluations per job"
               " (default 1; 0 = auto-detect hardware concurrency,"
               " clamped against --jobs)\n"
               "  --reps        timing repetitions per evaluation"
               " (default 3)\n"
               "  --budget      max evaluated configurations per search"
               " (default 2000)\n"
               "  --seed        campaign seed: GA + fault injection"
               " (default 2020)\n"
               "  --retries     max attempts per evaluation"
               " (default 3)\n"
               "  --deadline    per-evaluation deadline in seconds"
               " (default 0 = none)\n"
               "  --fault-rate  injected transient-crash probability"
               " (default 0)\n"
               "  --fault-hang-rate  injected straggler probability"
               " (default 0)\n"
               "  --fault-nan-rate   injected NaN-output probability"
               " (default 0)\n"
               "  --fault-seed  fault decision seed (default --seed)\n"
               "  --fault-raw-crash-rate  child abort() probability"
               " (fork/pool isolation only)\n"
               "  --fault-raw-hang-rate   child spin-hang probability"
               " (fork/pool isolation + --deadline)\n"
               "  --fault-raw-segv-rate   child SIGSEGV probability"
               " (fork/pool isolation only)\n"
               "  --isolation   evaluation sandbox: none, fork (one"
               " child per attempt) or pool (persistent pre-forked"
               " workers) (default none)\n"
               "  --isolation-max-crashes  fail fast after this many"
               " crashed children (default 0 = unlimited)\n"
               "  --pool-workers  persistent sandbox workers under"
               " --isolation=pool (default 0 = --search-jobs)\n"
               "  --checkpoint  write campaign progress to this file\n"
               "  --resume      restore an interrupted campaign from"
               " this file\n"
               "  --memo-cache  persistent cross-run evaluation cache"
               " directory\n"
               "  --portfolio   race all strategies per benchmark"
               " instead of the configured analysis\n"
               "  --portfolio-mode  best (run all to budget) or race"
               " (first finisher cancels the rest)\n"
               "  --static-prior  mixp-lint search prior: on, off or"
               " strict (default off)\n"
               "  --certified-caps  fold certified absint level caps"
               " into the prior: on or off (default on; off recovers"
               " the heuristic-only prior)\n"
               "  --ladder      precision ladder, deepest last, e.g."
               " double,float,half or double,float,bf16"
               " (default double,float)\n"
               "  --refine      iterative-refinement recovery for"
               " benchmarks with a residual hook: on or off"
               " (default off)\n"
               "  --json        write a JSON report to this file\n";
        return cl.has("help") ? 0 : 2;
    }

    if (cl.getBool("verbose", false))
        support::setLogLevel(support::LogLevel::Inform);

    std::string path = cl.getString(
        "config",
        cl.positional().empty() ? "" : cl.positional().front());

    try {
        auto jobs = harness::parseConfigFile(path);
        harness::HarnessOptions options;
        options.jobs =
            static_cast<std::size_t>(cl.getLong("jobs", 1));
        options.tuner.searchJobs =
            static_cast<std::size_t>(cl.getLong("search-jobs", 1));
        if (options.tuner.searchJobs == 0)
            options.tuner.searchJobs = std::max(
                1u, std::thread::hardware_concurrency());
        options.tuner.searchReps =
            static_cast<std::size_t>(cl.getLong("reps", 3));
        options.tuner.budget.maxEvaluations =
            static_cast<std::size_t>(cl.getLong("budget", 2000));

        long seed = cl.getLong("seed", 2020);
        options.tuner.seed = static_cast<std::uint64_t>(seed);
        options.tuner.resilience.maxAttempts =
            static_cast<std::size_t>(cl.getLong("retries", 3));
        options.tuner.resilience.deadlineSeconds =
            cl.getDouble("deadline", 0.0);
        options.tuner.resilience.seed = options.tuner.seed;
        options.tuner.faultPlan.crashRate =
            cl.getDouble("fault-rate", 0.0);
        options.tuner.faultPlan.hangRate =
            cl.getDouble("fault-hang-rate", 0.0);
        options.tuner.faultPlan.nanRate =
            cl.getDouble("fault-nan-rate", 0.0);
        options.tuner.faultPlan.seed =
            static_cast<std::uint64_t>(cl.getLong("fault-seed", seed));
        options.tuner.faultPlan.rawCrashRate =
            cl.getDouble("fault-raw-crash-rate", 0.0);
        options.tuner.faultPlan.rawHangRate =
            cl.getDouble("fault-raw-hang-rate", 0.0);
        options.tuner.faultPlan.rawSegvRate =
            cl.getDouble("fault-raw-segv-rate", 0.0);

        options.tuner.isolation = support::parseIsolationMode(
            cl.getString("isolation", "none"));
        options.tuner.isolationMaxCrashes = static_cast<std::size_t>(
            cl.getLong("isolation-max-crashes", 0));
        options.tuner.poolWorkers = static_cast<std::size_t>(
            cl.getLong("pool-workers", 0));

        options.tuner.staticPrior = search::parsePriorMode(
            cl.getString("static-prior", "off"));
        {
            std::string cc = cl.getString("certified-caps", "on");
            if (cc != "on" && cc != "off")
                support::fatal("--certified-caps expects on or off");
            options.tuner.certifiedCaps = cc == "on";
        }

        options.tuner.ladder = runtime::PrecisionLadder::parse(
            cl.getString("ladder", "double,float"));
        {
            std::string refine = cl.getString("refine", "off");
            if (refine != "on" && refine != "off")
                support::fatal("--refine expects on or off");
            options.tuner.refine = refine == "on";
        }

        options.memoCacheDir = cl.getString("memo-cache", "");
        options.portfolio = cl.getBool("portfolio", false);
        options.portfolioMode =
            cl.getString("portfolio-mode", "best");

        options.checkpointPath = cl.getString("checkpoint", "");
        options.resumePath = cl.getString("resume", "");
        // Resuming keeps checkpointing to the same file unless the
        // user redirects it, so a resumed run can itself be resumed.
        if (!options.resumePath.empty() &&
            options.checkpointPath.empty())
            options.checkpointPath = options.resumePath;

        auto results = harness::runJobs(jobs, options);
        harness::printResults(std::cout, results);
        if (cl.has("json")) {
            std::ofstream out(cl.getString("json", ""));
            if (!out)
                support::fatal("cannot open --json output file");
            out << harness::resultsToJson(results).dump(2) << '\n';
        }
        for (const auto& r : results)
            if (!r.error.empty())
                return 1;
        return 0;
    } catch (const support::FatalError& e) {
        std::cerr << "mixpbench-harness: " << e.what() << '\n';
        return 1;
    }
}
