/**
 * @file
 * mixpbench-harness — command-line entry point.
 *
 *   mixpbench-harness --config suite.yaml [--jobs N] [--reps R]
 *                     [--budget E] [--verbose]
 *
 * Reads a Listing-4-style YAML configuration, runs every declared
 * analysis job, and prints a result table.
 */

#include <fstream>
#include <iostream>

#include "harness/harness.h"
#include "support/cli.h"
#include "support/logging.h"

int
main(int argc, char** argv)
{
    using namespace hpcmixp;
    support::CommandLine cl(argc, argv);

    if (cl.has("help") || (!cl.has("config") && cl.positional().empty())) {
        std::cout
            << "usage: mixpbench-harness --config <file.yaml>"
               " [--jobs N] [--reps R] [--budget E] [--verbose]\n"
               "  --config  YAML configuration (Listing-4 schema)\n"
               "  --jobs    parallel analysis jobs (default 1)\n"
               "  --reps    timing repetitions per evaluation"
               " (default 3)\n"
               "  --budget  max evaluated configurations per search"
               " (default 2000)\n";
        return cl.has("help") ? 0 : 2;
    }

    if (cl.getBool("verbose", false))
        support::setLogLevel(support::LogLevel::Inform);

    std::string path = cl.getString(
        "config",
        cl.positional().empty() ? "" : cl.positional().front());

    try {
        auto jobs = harness::parseConfigFile(path);
        harness::HarnessOptions options;
        options.jobs =
            static_cast<std::size_t>(cl.getLong("jobs", 1));
        options.tuner.searchReps =
            static_cast<std::size_t>(cl.getLong("reps", 3));
        options.tuner.budget.maxEvaluations =
            static_cast<std::size_t>(cl.getLong("budget", 2000));
        auto results = harness::runJobs(jobs, options);
        harness::printResults(std::cout, results);
        if (cl.has("json")) {
            std::ofstream out(cl.getString("json", ""));
            if (!out)
                support::fatal("cannot open --json output file");
            out << harness::resultsToJson(results).dump(2) << '\n';
        }
        for (const auto& r : results)
            if (!r.error.empty())
                return 1;
        return 0;
    } catch (const support::FatalError& e) {
        std::cerr << "mixpbench-harness: " << e.what() << '\n';
        return 1;
    }
}
