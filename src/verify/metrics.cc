#include "verify/metrics.h"

#include <cmath>

#include "support/logging.h"
#include "support/string_util.h"

namespace hpcmixp::verify {

namespace {

void
checkShapes(std::span<const double> reference, std::span<const double> test)
{
    using support::fatal;
    using support::strCat;
    if (reference.empty())
        fatal("metric: empty reference output");
    if (reference.size() != test.size())
        fatal(strCat("metric: output length mismatch (reference ",
                     reference.size(), ", test ", test.size(), ")"));
}

} // namespace

ErrorStats
computeErrorStats(std::span<const double> reference,
                  std::span<const double> test)
{
    checkShapes(reference, test);
    ErrorStats stats;
    stats.n = reference.size();
    for (std::size_t i = 0; i < reference.size(); ++i) {
        double r = reference[i];
        double t = test[i];
        double d = r - t;
        stats.sumAbs += std::abs(d);
        stats.sumSq += d * d;
        stats.sumRef += r;
        stats.sumRefSq += r * r;
        if (std::isnan(t) || std::llround(r) != std::llround(t))
            ++stats.mismatches;
    }
    return stats;
}

double
MeanAbsoluteError::compute(std::span<const double> reference,
                           std::span<const double> test) const
{
    checkShapes(reference, test);
    double sum = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i)
        sum += std::abs(reference[i] - test[i]);
    return sum / static_cast<double>(reference.size());
}

double
MeanSquareError::compute(std::span<const double> reference,
                         std::span<const double> test) const
{
    checkShapes(reference, test);
    double sum = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
        double d = reference[i] - test[i];
        sum += d * d;
    }
    return sum / static_cast<double>(reference.size());
}

double
RootMeanSquareError::compute(std::span<const double> reference,
                             std::span<const double> test) const
{
    MeanSquareError mse;
    return std::sqrt(mse.compute(reference, test));
}

double
CoefficientOfDetermination::compute(std::span<const double> reference,
                                    std::span<const double> test) const
{
    checkShapes(reference, test);
    double mean = 0.0;
    for (double r : reference)
        mean += r;
    mean /= static_cast<double>(reference.size());

    double ssRes = 0.0;
    double ssTot = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
        double res = reference[i] - test[i];
        double tot = reference[i] - mean;
        ssRes += res * res;
        ssTot += tot * tot;
    }
    if (ssTot == 0.0) {
        // A constant reference: perfect iff residuals vanish.
        return ssRes == 0.0 ? 1.0 : 0.0;
    }
    return 1.0 - ssRes / ssTot;
}

double
CoefficientOfDetermination::loss(std::span<const double> reference,
                                 std::span<const double> test) const
{
    return 1.0 - compute(reference, test);
}

double
MisclassificationRate::compute(std::span<const double> reference,
                               std::span<const double> test) const
{
    checkShapes(reference, test);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
        bool bad = std::isnan(test[i]) ||
                   std::llround(reference[i]) != std::llround(test[i]);
        if (bad)
            ++mismatches;
    }
    return static_cast<double>(mismatches) /
           static_cast<double>(reference.size());
}

MetricRegistry::MetricRegistry()
{
    add(std::make_unique<MeanAbsoluteError>());
    add(std::make_unique<MeanSquareError>());
    add(std::make_unique<RootMeanSquareError>());
    add(std::make_unique<CoefficientOfDetermination>());
    add(std::make_unique<MisclassificationRate>());
}

MetricRegistry&
MetricRegistry::instance()
{
    static MetricRegistry registry;
    return registry;
}

void
MetricRegistry::add(std::unique_ptr<Metric> metric)
{
    using support::fatal;
    using support::strCat;
    HPCMIXP_ASSERT(metric != nullptr, "null metric registered");
    if (has(metric->name()))
        fatal(strCat("metric '", metric->name(), "' already registered"));
    std::string lowered = support::toLower(metric->name());
    metrics_.emplace_back(std::move(lowered), std::move(metric));
}

const Metric&
MetricRegistry::get(const std::string& name) const
{
    std::string wanted = support::toLower(name);
    for (const auto& [lowered, metric] : metrics_)
        if (lowered == wanted)
            return *metric;
    support::fatal(support::strCat("unknown quality metric '", name, "'"));
}

bool
MetricRegistry::has(const std::string& name) const
{
    std::string wanted = support::toLower(name);
    for (const auto& [lowered, metric] : metrics_)
        if (lowered == wanted)
            return true;
    return false;
}

std::vector<std::string>
MetricRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(metrics_.size());
    for (const auto& [lowered, metric] : metrics_)
        out.push_back(metric->name());
    return out;
}

} // namespace hpcmixp::verify
