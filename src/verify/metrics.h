#ifndef HPCMIXP_VERIFY_METRICS_H_
#define HPCMIXP_VERIFY_METRICS_H_

/**
 * @file
 * Quality metrics of the HPC-MixPBench verification library.
 *
 * The paper's verification library quantifies the accuracy loss of an
 * approximated run against the exact (double-precision) run with five
 * metrics: Mean Absolute Error (MAE), Root Mean Square Error (RMSE),
 * Mean Square Error (MSE), coefficient of determination (R2), and
 * Misclassification Rate (MCR). New metrics can be registered at runtime
 * (Section III-A.b).
 *
 * Every metric exposes a uniform "quality loss" in which 0 is perfect
 * and larger is worse (for R2 the loss is 1 - R2), so search algorithms
 * can compare any metric against a single threshold.
 */

#include <cmath>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace hpcmixp::verify {

/** Interface for an output-quality metric. */
class Metric {
  public:
    virtual ~Metric() = default;

    /** Short upper-case identifier, e.g. "MAE". */
    virtual std::string name() const = 0;

    /**
     * Raw metric value between a reference and a test output.
     *
     * Both spans must have equal, non-zero length. NaNs in the test
     * output propagate into the result (a destroyed output never
     * passes verification).
     */
    virtual double compute(std::span<const double> reference,
                           std::span<const double> test) const = 0;

    /**
     * Uniform quality loss: 0 = identical, larger = worse.
     * Defaults to the raw value; R2 overrides with 1 - R2.
     */
    virtual double
    loss(std::span<const double> reference,
         std::span<const double> test) const
    {
        return compute(reference, test);
    }
};

/** Mean Absolute Error. */
class MeanAbsoluteError : public Metric {
  public:
    std::string name() const override { return "MAE"; }
    double compute(std::span<const double> reference,
                   std::span<const double> test) const override;
};

/** Mean Square Error. */
class MeanSquareError : public Metric {
  public:
    std::string name() const override { return "MSE"; }
    double compute(std::span<const double> reference,
                   std::span<const double> test) const override;
};

/** Root Mean Square Error. */
class RootMeanSquareError : public Metric {
  public:
    std::string name() const override { return "RMSE"; }
    double compute(std::span<const double> reference,
                   std::span<const double> test) const override;
};

/** Coefficient of determination; loss() is 1 - R2. */
class CoefficientOfDetermination : public Metric {
  public:
    std::string name() const override { return "R2"; }
    double compute(std::span<const double> reference,
                   std::span<const double> test) const override;
    double loss(std::span<const double> reference,
                std::span<const double> test) const override;
};

/**
 * Misclassification Rate: fraction of positions whose rounded integer
 * label differs. Used by K-means, whose output is a cluster assignment.
 */
class MisclassificationRate : public Metric {
  public:
    std::string name() const override { return "MCR"; }
    double compute(std::span<const double> reference,
                   std::span<const double> test) const override;
};

/**
 * Error statistics between a reference and a test output, accumulated
 * in a single traversal. One pass serves every built-in metric: MAE,
 * MSE, RMSE and R2 derive from the running sums, MCR from the rounded-
 * label mismatch count. Each derived value matches the summation order
 * of the corresponding Metric::compute() except R2's total sum of
 * squares, which uses the algebraically equal sum-of-squares form.
 */
struct ErrorStats {
    std::size_t n = 0;          ///< number of compared elements
    double sumAbs = 0.0;        ///< sum of |reference - test|
    double sumSq = 0.0;         ///< sum of (reference - test)^2
    double sumRef = 0.0;        ///< sum of reference values
    double sumRefSq = 0.0;      ///< sum of squared reference values
    std::size_t mismatches = 0; ///< rounded-integer label mismatches

    double mae() const { return sumAbs / static_cast<double>(n); }
    double mse() const { return sumSq / static_cast<double>(n); }
    double rmse() const { return std::sqrt(mse()); }
    double
    mcr() const
    {
        return static_cast<double>(mismatches) /
               static_cast<double>(n);
    }

    double
    r2() const
    {
        double mean = sumRef / static_cast<double>(n);
        double ssTot = sumRefSq - sumRef * mean;
        double ssRes = sumSq;
        // Constant reference (ssTot can round slightly below zero in
        // the sum-of-squares form): perfect iff residuals vanish.
        if (ssTot <= 0.0)
            return ssRes == 0.0 ? 1.0 : 0.0;
        return 1.0 - ssRes / ssTot;
    }
};

/** Accumulate ErrorStats over @p reference and @p test in one pass. */
ErrorStats computeErrorStats(std::span<const double> reference,
                             std::span<const double> test);

/**
 * Registry of metrics by name. The built-in five are pre-registered;
 * users can add their own (the paper's extension point).
 */
class MetricRegistry {
  public:
    /** The process-wide registry instance. */
    static MetricRegistry& instance();

    /** Register a metric under its name(); fatal()s on duplicates. */
    void add(std::unique_ptr<Metric> metric);

    /** Look up by case-insensitive name; fatal()s when unknown. */
    const Metric& get(const std::string& name) const;

    /** True when a metric with this name exists. */
    bool has(const std::string& name) const;

    /** Registered names in registration order. */
    std::vector<std::string> names() const;

  private:
    MetricRegistry();

    /** Lowered name cached at registration, paired with the metric. */
    std::vector<std::pair<std::string, std::unique_ptr<Metric>>>
        metrics_;
};

} // namespace hpcmixp::verify

#endif // HPCMIXP_VERIFY_METRICS_H_
