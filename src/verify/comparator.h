#ifndef HPCMIXP_VERIFY_COMPARATOR_H_
#define HPCMIXP_VERIFY_COMPARATOR_H_

/**
 * @file
 * Pass/fail verification of an approximated run against the reference.
 *
 * A comparator binds a quality metric to a user threshold. This is the
 * "verification routine" the paper's search algorithms consult for every
 * candidate configuration.
 */

#include <span>
#include <string>

#include "verify/metrics.h"

namespace hpcmixp::verify {

/** Outcome of verifying one approximated output. */
struct Verdict {
    bool passed = false;  ///< loss <= threshold and loss is finite
    double loss = 0.0;    ///< uniform quality loss (NaN if destroyed)
    double rawValue = 0.0; ///< raw metric value
};

/** Binds a metric and a threshold into a reusable verifier. */
class OutputComparator {
  public:
    /**
     * @param metricName  registry name, e.g. "MAE" or "MCR".
     * @param threshold   maximum acceptable quality loss (inclusive).
     */
    OutputComparator(const std::string& metricName, double threshold);

    /** Verify @p test against @p reference. */
    Verdict verify(std::span<const double> reference,
                   std::span<const double> test) const;

    /** True when the verdict can be derived from ErrorStats alone
     *  (built-in metrics); false for custom registry metrics. */
    bool fusible() const { return fused_ != Fused::None; }

    /**
     * Derive the verdict from precomputed @p stats. Only valid when
     * fusible(); lets a sandboxed child ship the fixed-size ErrorStats
     * through the result arena and the parent re-derive the verdict
     * without the output vector.
     */
    Verdict verifyStats(const ErrorStats& stats) const;

    /** The bound metric. */
    const Metric& metric() const { return *metric_; }

    /** The acceptance threshold. */
    double threshold() const { return threshold_; }

  private:
    /**
     * Built-in metrics resolved at construction so verify() can derive
     * the verdict from one fused ErrorStats pass; custom metrics fall
     * back to the compute()/loss() calls.
     */
    enum class Fused { None, Mae, Mse, Rmse, R2, Mcr };

    const Metric* metric_;
    double threshold_;
    Fused fused_ = Fused::None;
};

} // namespace hpcmixp::verify

#endif // HPCMIXP_VERIFY_COMPARATOR_H_
