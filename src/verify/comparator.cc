#include "verify/comparator.h"

#include <cmath>

#include "support/logging.h"
#include "support/string_util.h"

namespace hpcmixp::verify {

OutputComparator::OutputComparator(const std::string& metricName,
                                   double threshold)
    : metric_(&MetricRegistry::instance().get(metricName)),
      threshold_(threshold)
{
    if (threshold < 0.0)
        support::fatal("verification threshold must be non-negative");
    std::string lowered = support::toLower(metric_->name());
    if (lowered == "mae")
        fused_ = Fused::Mae;
    else if (lowered == "mse")
        fused_ = Fused::Mse;
    else if (lowered == "rmse")
        fused_ = Fused::Rmse;
    else if (lowered == "r2")
        fused_ = Fused::R2;
    else if (lowered == "mcr")
        fused_ = Fused::Mcr;
}

Verdict
OutputComparator::verify(std::span<const double> reference,
                         std::span<const double> test) const
{
    Verdict verdict;
    if (fused_ == Fused::None) {
        verdict.rawValue = metric_->compute(reference, test);
        verdict.loss = metric_->loss(reference, test);
        verdict.passed =
            std::isfinite(verdict.loss) && verdict.loss <= threshold_;
        return verdict;
    }
    return verifyStats(computeErrorStats(reference, test));
}

Verdict
OutputComparator::verifyStats(const ErrorStats& stats) const
{
    HPCMIXP_ASSERT(fused_ != Fused::None,
                   "verifyStats requires a fusible (built-in) metric");
    Verdict verdict;
    switch (fused_) {
    case Fused::Mae:
        verdict.rawValue = stats.mae();
        verdict.loss = verdict.rawValue;
        break;
    case Fused::Mse:
        verdict.rawValue = stats.mse();
        verdict.loss = verdict.rawValue;
        break;
    case Fused::Rmse:
        verdict.rawValue = stats.rmse();
        verdict.loss = verdict.rawValue;
        break;
    case Fused::R2:
        verdict.rawValue = stats.r2();
        verdict.loss = 1.0 - verdict.rawValue;
        break;
    case Fused::Mcr:
        verdict.rawValue = stats.mcr();
        verdict.loss = verdict.rawValue;
        break;
    case Fused::None:
        break;
    }
    verdict.passed =
        std::isfinite(verdict.loss) && verdict.loss <= threshold_;
    return verdict;
}

} // namespace hpcmixp::verify
