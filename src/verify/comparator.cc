#include "verify/comparator.h"

#include <cmath>

#include "support/logging.h"

namespace hpcmixp::verify {

OutputComparator::OutputComparator(const std::string& metricName,
                                   double threshold)
    : metric_(&MetricRegistry::instance().get(metricName)),
      threshold_(threshold)
{
    if (threshold < 0.0)
        support::fatal("verification threshold must be non-negative");
}

Verdict
OutputComparator::verify(std::span<const double> reference,
                         std::span<const double> test) const
{
    Verdict verdict;
    verdict.rawValue = metric_->compute(reference, test);
    verdict.loss = metric_->loss(reference, test);
    verdict.passed =
        std::isfinite(verdict.loss) && verdict.loss <= threshold_;
    return verdict;
}

} // namespace hpcmixp::verify
