#ifndef HPCMIXP_TYPEFORGE_ABSINT_H_
#define HPCMIXP_TYPEFORGE_ABSINT_H_

/**
 * @file
 * Abstract-interpretation value-range and round-off error analysis.
 *
 * A forward pass over the ProgramModel dataflow graph propagates, per
 * variable,
 *
 *  - an *interval* of values the variable may take, seeded from the
 *    input-range annotations (ProgramModel::setRange) and pushed
 *    through the recorded arithmetic facts and type-dependence edges;
 *  - a first-order *round-off amplification factor* kappa: computing
 *    the variable with every operation rounded at unit roundoff u
 *    keeps its relative error within kappa * u (to first order).
 *
 * Both are joined over all recorded definitions of a variable, so the
 * result is a sound over-approximation whenever the recorded def set
 * covers the real ones — which is the annotator's contract, enforced
 * dynamically by crossCheckRanges() against profiler-observed ranges
 * and by ProgramModel::markOpaque for writes no fact expresses.
 * Loop-carried definitions (self-referential facts, accumulations of
 * unknown trip count) are *widened* to the unbounded interval after a
 * fixed number of passes, guaranteeing termination.
 *
 * From the per-variable state the pass derives, per Typeforge cluster
 * and per rung of a PrecisionLadder, a *certified verdict*:
 *
 *  - MP007 range-overflow-at-rung: the interval reaches beyond the
 *    rung's finite range (fp16 overflow past 65504) or lies entirely
 *    in its subnormal-flush region;
 *  - MP008 error-budget-exceeded: the first-order bound
 *    kappa * u_rung * magnitude crosses the campaign quality
 *    threshold;
 *  - MP009 proven-cancellation: a subtraction whose operand intervals
 *    overlap, so the result can lose all significant digits.
 *
 * Verdicts become per-cluster level *caps* for search::StaticPrior
 * (rungs at or past the first provable failure are never evaluated)
 * and *safe-through* levels (deepest rung every member is certified
 * safe at — the claim the soundness property test exercises). Every
 * per-rung claim carries a machine-checkable RungCertificate that
 * records the numbers the claim was derived from; checkCertificate()
 * re-derives the inequality from scratch.
 *
 * Scope: a certificate talks about the error of computing *this
 * cluster's variables* at the rung, operands taken exact — the
 * PROMISE-style local verdict. Downstream amplification of an input
 * perturbation (a condition-number property of the consumers) is out
 * of scope; the dynamic verification layer still vets every
 * configuration the search actually runs.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "model/program_model.h"
#include "runtime/ladder.h"
#include "typeforge/clustering.h"

namespace hpcmixp::typeforge {

/** A closed interval; infinite endpoints encode unbounded sides. */
struct Interval {
    double lo = 0.0;
    double hi = 0.0;

    static Interval top();
    static Interval point(double x) { return {x, x}; }

    bool bounded() const;

    /** max(|lo|, |hi|); +inf when unbounded. */
    double magnitude() const;

    /** min |x| over the interval; 0 when it spans zero. */
    double minMagnitude() const;

    bool contains(double lo, double hi) const;

    Interval join(const Interval& o) const;
    Interval add(const Interval& o) const;
    Interval sub(const Interval& o) const;
    Interval mul(const Interval& o) const;
    Interval div(const Interval& o) const; ///< top when o spans 0
    Interval exp() const;
    Interval sqrt() const;
    Interval scale(double s) const;
};

/** Abstract state of one variable after the fixpoint. */
struct VarAbs {
    Interval range;    ///< meaningful only when known
    double amp = 0.0;  ///< kappa; +inf = unbounded amplification
    bool known = false; ///< range was derived (else treat as top)
    bool widened = false; ///< loop widening forced this var to top
};

/** Analysis knobs. */
struct AbsintOptions {
    AbsintOptions();

    /** Ladder the per-rung verdicts are issued against. Defaults to
     *  the full four-rung double,float,half,bfloat16 ladder. */
    runtime::PrecisionLadder ladder;

    /** Quality budget the MP008 bound is compared against. */
    double threshold = 1e-6;

    /** Fixpoint passes before still-changing variables widen. */
    std::size_t wideningDelay = 4;

    /** Hard cap on fixpoint passes. */
    std::size_t maxPasses = 64;
};

/** Cap value meaning "no rung constraint was proven". */
inline constexpr std::uint8_t kNoCap = 255;

/** Per-cluster certified verdict. */
struct ClusterCaps {
    std::size_t cluster = 0;
    /** Deepest level the cluster may take: rungs past the first
     *  provable MP007/MP008 failure are excluded. kNoCap = nothing
     *  proven. Note: a failure at level l also excludes deeper rungs
     *  even if individually fine (bfloat16's wide range after a
     *  failing fp16), because StaticPrior caps are a prefix. */
    std::uint8_t certifiedCap = kNoCap;
    /** Deepest level L with every member certified safe at all
     *  levels 1..L. 0 = only the double rung is certified. */
    std::uint8_t safeThrough = 0;
    /** True when every member had a bounded range and finite amp —
     *  i.e. safeThrough is a real claim, not a vacuous 0. */
    bool certified = false;
};

/** One absint rule firing (lint turns these into findings). */
struct AbsintFinding {
    const char* ruleId; ///< "MP007-..." / "MP008-..." / "MP009-..."
    model::VarId var = model::kInvalidId;
    std::size_t level = 0; ///< first failing rung (MP007/MP008)
    std::string detail;    ///< numbers behind the claim
};

/**
 * A machine-checkable per-rung claim. checkCertificate() re-derives
 * the bound from (lo, hi, amp, rung) and re-evaluates the claimed
 * inequality, so a certificate can be audited with no access to the
 * model or the analysis.
 */
struct RungCertificate {
    std::string rule;     ///< "MP007-range-overflow-at-rung",
                          ///< "MP008-error-budget-exceeded" or "safe"
    std::string variable; ///< qualified witness-member name
    std::size_t cluster = 0;
    std::size_t level = 0; ///< ladder rung index
    std::string rung;      ///< precisionName() of the rung
    double lo = 0.0;       ///< witness interval
    double hi = 0.0;
    double amp = 0.0;      ///< witness kappa
    double errBound = 0.0; ///< amp * unitRoundoff(rung) * magnitude
    double limit = 0.0;    ///< threshold (MP008/safe) or finite max
    std::string claim;     ///< "safe" or "unsafe"
};

/** Re-derive and validate @p cert; false on any inconsistency. */
bool checkCertificate(const RungCertificate& cert);

/** Full result of one analysis. */
struct AbsintResult {
    std::vector<VarAbs> vars; ///< indexed by VarId
    std::vector<ClusterCaps> clusters; ///< indexed by cluster
    std::vector<AbsintFinding> findings;
    std::vector<RungCertificate> certificates;
    std::size_t passes = 0; ///< fixpoint passes used
    bool widened = false;   ///< any variable was widened
};

/** Run the analysis over @p program with @p clusters. */
AbsintResult interpret(const model::ProgramModel& program,
                       const ClusterSet& clusters,
                       const AbsintOptions& options = {});

/** A dynamically observed per-site value range (runtime profiler). */
struct ObservedRange {
    std::string bindKey;
    double lo = 0.0;
    double hi = 0.0;
};

/** One soundness violation: observed values escaped the interval. */
struct CrossCheckViolation {
    std::string bindKey;
    model::VarId var = model::kInvalidId; ///< one var of the key
    double observedLo = 0.0;
    double observedHi = 0.0;
    double staticLo = 0.0; ///< join of the key's static intervals
    double staticHi = 0.0;
};

/**
 * Check the statically derived intervals against the dynamically
 * observed range of each bind key. Several arrays can share one bind
 * key (pool carving: planckian's x/u/v all live in the "in" pool), so
 * the observed range is the union over the pool and the sound claim
 * checked is containment by the *join* of all static intervals bound
 * to the key. A key any of whose variables is unknown or unbounded
 * claims top and passes trivially; so does a key no variable carries.
 * Empty result = sound.
 */
std::vector<CrossCheckViolation>
crossCheckRanges(const model::ProgramModel& program,
                 const AbsintResult& result,
                 const std::vector<ObservedRange>& observed);

} // namespace hpcmixp::typeforge

#endif // HPCMIXP_TYPEFORGE_ABSINT_H_
