#include "typeforge/frontend/token.h"

#include <cctype>

#include "support/logging.h"

namespace hpcmixp::typeforge::frontend {

using support::fatal;
using support::strCat;

namespace {

/** Multi-character punctuators, longest first. */
const char* kPuncts[] = {
    "<<=", ">>=", "...", "==", "!=", "<=", ">=", "&&", "||", "++",
    "--", "+=",  "-=",  "*=", "/=", "%=", "&=", "|=", "^=", "->",
    "<<", ">>",  "(",   ")",  "{",  "}",  "[",  "]",  ";",  ",",
    "+",  "-",   "*",   "/",  "%",  "=",  "<",  ">",  "&",  "|",
    "^",  "!",   "~",   "?",  ":",  ".",
};

} // namespace

std::vector<Token>
lex(const std::string& source)
{
    std::vector<Token> tokens;
    std::size_t i = 0;
    int line = 1;
    std::size_t lineStart = 0;
    std::size_t n = source.size();

    auto column = [&](std::size_t pos) {
        return static_cast<int>(pos - lineStart + 1);
    };

    auto peek = [&](std::size_t off = 0) -> char {
        return i + off < n ? source[i + off] : '\0';
    };

    while (i < n) {
        char c = source[i];
        if (c == '\n') {
            ++line;
            ++i;
            lineStart = i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Preprocessor lines are skipped wholesale.
        if (c == '#') {
            while (i < n && source[i] != '\n')
                ++i;
            continue;
        }
        // Comments.
        if (c == '/' && peek(1) == '/') {
            while (i < n && source[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            int startLine = line;
            i += 2;
            for (;;) {
                if (i >= n)
                    fatal(strCat("lex: unterminated comment opened on"
                                 " line ",
                                 startLine));
                if (source[i] == '\n') {
                    ++line;
                    lineStart = i + 1;
                }
                if (source[i] == '*' && peek(1) == '/') {
                    i += 2;
                    break;
                }
                ++i;
            }
            continue;
        }
        // Identifiers / keywords.
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t start = i;
            while (i < n &&
                   (std::isalnum(static_cast<unsigned char>(
                        source[i])) ||
                    source[i] == '_'))
                ++i;
            tokens.push_back({TokenKind::Identifier,
                              source.substr(start, i - start), line,
                              column(start)});
            continue;
        }
        // Numeric literals (integers, floats, exponents, suffixes).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' &&
             std::isdigit(static_cast<unsigned char>(peek(1))))) {
            std::size_t start = i;
            while (i < n) {
                char d = source[i];
                if (std::isalnum(static_cast<unsigned char>(d)) ||
                    d == '.') {
                    ++i;
                } else if ((d == '+' || d == '-') && i > start &&
                           (source[i - 1] == 'e' ||
                            source[i - 1] == 'E')) {
                    ++i;
                } else {
                    break;
                }
            }
            tokens.push_back({TokenKind::Number,
                              source.substr(start, i - start), line,
                              column(start)});
            continue;
        }
        // String and char literals; contents are irrelevant.
        if (c == '"' || c == '\'') {
            char quote = c;
            std::size_t start = i++;
            while (i < n && source[i] != quote) {
                if (source[i] == '\\')
                    ++i;
                if (i < n && source[i] == '\n') {
                    ++line;
                    lineStart = i + 1;
                }
                ++i;
            }
            if (i >= n)
                fatal(strCat("lex: unterminated literal on line ",
                             line));
            ++i;
            tokens.push_back({TokenKind::String,
                              source.substr(start, i - start), line,
                              column(start)});
            continue;
        }
        // Punctuators, longest match first.
        bool matched = false;
        for (const char* p : kPuncts) {
            std::size_t len = std::char_traits<char>::length(p);
            if (source.compare(i, len, p) == 0) {
                tokens.push_back({TokenKind::Punct, p, line,
                                  column(i)});
                i += len;
                matched = true;
                break;
            }
        }
        if (!matched)
            fatal(strCat("lex: stray character '", std::string(1, c),
                         "' on line ", line));
    }
    tokens.push_back({TokenKind::End, "", line, column(i)});
    return tokens;
}

} // namespace hpcmixp::typeforge::frontend
