#include "typeforge/frontend/parser.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "support/logging.h"
#include "typeforge/frontend/token.h"

namespace hpcmixp::typeforge::frontend {

using model::BaseType;
using model::DataflowFact;
using model::FunctionId;
using model::ModuleId;
using model::ProgramModel;
using model::TypeInfo;
using model::VarId;
using support::fatal;
using support::strCat;

namespace {

/**
 * Reduced expression value: just enough for dependence extraction and
 * dataflow-fact inference.
 */
struct Value {
    enum class Kind {
        Var,       ///< resolves to a declared variable
        AddressOf, ///< &variable
        Call,      ///< call to a (possibly external) function
        Other,     ///< anything else (literals, arithmetic, elements)
    };
    Kind kind = Kind::Other;
    VarId var = model::kInvalidId; ///< for Var / AddressOf
    std::string callee;            ///< for Call
    bool literal = false;          ///< numeric literal (possibly cast/negated)
    /** Numeric value when `literal`; NaN when the value was lost to
     *  an operator the folder does not model (%, shifts, ...). */
    double litValue = 0.0;
    /** Array variable whose element this value is (arr[i], *arr);
     *  survives direct subscripting only, not arithmetic. */
    VarId rootArray = model::kInvalidId;

    static Value
    ofVar(VarId v)
    {
        Value val;
        val.kind = Kind::Var;
        val.var = v;
        return val;
    }
    static Value
    addressOf(VarId v)
    {
        Value val;
        val.kind = Kind::AddressOf;
        val.var = v;
        return val;
    }
    static Value
    call(std::string name)
    {
        Value val;
        val.kind = Kind::Call;
        val.callee = std::move(name);
        return val;
    }
    static Value
    other()
    {
        return {};
    }
};

/** Internal control-flow exception for recoverable syntax errors. */
struct SyntaxError {
    ParseDiagnostic diag;
};

bool
isTypeKeyword(const std::string& s)
{
    return s == "void" || s == "int" || s == "long" || s == "short" ||
           s == "char" || s == "float" || s == "double" ||
           s == "unsigned" || s == "signed" || s == "size_t" ||
           s == "bool";
}

bool
isDeclSpecKeyword(const std::string& s)
{
    return s == "static" || s == "const" || s == "extern" ||
           s == "register" || s == "volatile" || isTypeKeyword(s);
}

/** Parsed base type + its pointer depth contribution. */
struct DeclSpec {
    BaseType base = BaseType::Other;
};

class Parser {
  public:
    Parser(std::vector<Token> tokens, const std::string& name)
        : tokens_(std::move(tokens)), model_(name)
    {
        moduleId_ = model_.addModule(name);
    }

    ParseResult
    run()
    {
        collectSignatures();
        pos_ = 0;
        reporting_ = true;
        parseTopLevel();
        resolveReturnEdges();
        finalizeLiteralInits();
        model_.markDataflowAnalyzed();
        return {std::move(model_), std::move(diagnostics_)};
    }

  private:
    /** Cap on reported diagnostics; beyond it parsing gives up. */
    static constexpr std::size_t kMaxDiagnostics = 25;

    // --- token cursor ------------------------------------------------

    const Token& peek(std::size_t off = 0) const
    {
        std::size_t i = pos_ + off;
        return i < tokens_.size() ? tokens_[i] : tokens_.back();
    }

    const Token&
    advance()
    {
        const Token& t = peek();
        if (pos_ + 1 < tokens_.size())
            ++pos_;
        return t;
    }

    bool
    acceptPunct(const char* p)
    {
        if (peek().isPunct(p)) {
            advance();
            return true;
        }
        return false;
    }

    void
    expectPunct(const char* p)
    {
        if (!acceptPunct(p))
            syntaxError(strCat("expected '", p, "', found '",
                               describeToken(peek()), "'"));
    }

    bool
    acceptIdent(const char* name)
    {
        if (peek().isIdent(name)) {
            advance();
            return true;
        }
        return false;
    }

    std::string
    expectIdentifier(const char* what)
    {
        if (!peek().is(TokenKind::Identifier) ||
            isDeclSpecKeyword(peek().text))
            syntaxError(strCat("expected ", what, ", found '",
                               describeToken(peek()), "'"));
        return advance().text;
    }

    static std::string
    describeToken(const Token& t)
    {
        return t.is(TokenKind::End) ? std::string("end of input")
                                    : t.text;
    }

    [[noreturn]] void
    syntaxError(const std::string& what)
    {
        throw SyntaxError{{peek().line, peek().column, what}};
    }

    /** Record a diagnostic; at the cap, abandon the rest of the input. */
    void
    report(ParseDiagnostic diag)
    {
        if (!reporting_ || diagnostics_.size() > kMaxDiagnostics)
            return;
        if (diagnostics_.size() == kMaxDiagnostics) {
            diagnostics_.push_back(
                {diag.line, diag.column,
                 "too many syntax errors; giving up"});
            pos_ = tokens_.size() - 1; // jump to End
            return;
        }
        diagnostics_.push_back(std::move(diag));
    }

    // --- error recovery ----------------------------------------------

    /**
     * Skip to the start of the next plausible top-level declaration:
     * past a ';' at bracket depth zero, or past the '}' closing a
     * brace construct. Always makes progress.
     */
    void
    synchronizeTopLevel()
    {
        int depth = 0;
        while (!peek().is(TokenKind::End)) {
            const Token& t = advance();
            if (t.isPunct("(") || t.isPunct("["))
                ++depth;
            else if (t.isPunct(")") || t.isPunct("]")) {
                if (depth > 0)
                    --depth;
            } else if (t.isPunct("{")) {
                ++depth;
            } else if (t.isPunct("}")) {
                if (depth > 0)
                    --depth;
                if (depth == 0)
                    return;
            } else if (t.isPunct(";") && depth == 0) {
                return;
            }
        }
    }

    /**
     * Skip to the next statement boundary inside a block: past a ';'
     * at depth zero, or *up to* (not past) a '}' so the enclosing
     * block can close. Always makes progress unless already at '}'.
     */
    void
    synchronizeStatement()
    {
        int depth = 0;
        while (!peek().is(TokenKind::End)) {
            if (depth == 0 && peek().isPunct("}"))
                return;
            const Token& t = advance();
            if (t.isPunct("(") || t.isPunct("[") || t.isPunct("{"))
                ++depth;
            else if (t.isPunct(")") || t.isPunct("]") ||
                     t.isPunct("}")) {
                if (depth > 0)
                    --depth;
            } else if (t.isPunct(";") && depth == 0) {
                return;
            }
        }
    }

    // --- type parsing --------------------------------------------------

    bool
    atDeclSpec() const
    {
        return peek().is(TokenKind::Identifier) &&
               isDeclSpecKeyword(peek().text);
    }

    DeclSpec
    parseDeclSpec()
    {
        DeclSpec spec;
        bool sawType = false;
        while (peek().is(TokenKind::Identifier) &&
               isDeclSpecKeyword(peek().text)) {
            const std::string& kw = peek().text;
            if (kw == "float" || kw == "double") {
                spec.base = BaseType::Real;
                sawType = true;
            } else if (kw == "void") {
                spec.base = BaseType::Other;
                sawType = true;
            } else if (isTypeKeyword(kw)) {
                if (!sawType || spec.base == BaseType::Other)
                    spec.base = BaseType::Integer;
                sawType = true;
            }
            advance();
        }
        if (!sawType)
            syntaxError("expected a type name");
        return spec;
    }

    int
    parsePointerStars()
    {
        int depth = 0;
        while (acceptPunct("*")) {
            ++depth;
            while (acceptIdent("const") || acceptIdent("volatile")) {
            }
        }
        return depth;
    }

    /** Skip a bracketed array extent; returns true if one was seen. */
    bool
    parseArraySuffix()
    {
        bool any = false;
        while (peek().isPunct("[")) {
            advance();
            int depth = 1;
            while (depth > 0) {
                if (peek().is(TokenKind::End))
                    syntaxError("unterminated array extent");
                if (peek().isPunct("["))
                    ++depth;
                else if (peek().isPunct("]"))
                    --depth;
                if (depth > 0)
                    advance();
            }
            expectPunct("]");
            any = true;
        }
        return any;
    }

    // --- phase A: signature collection ----------------------------------

    void
    collectSignatures()
    {
        // Phase A is silent: anything malformed is skipped here and
        // reported by the full phase-B parse of the same tokens.
        reporting_ = false;
        pos_ = 0;
        while (!peek().is(TokenKind::End)) {
            try {
                if (!atDeclSpec()) {
                    advance(); // stray token; phase B will report
                    continue;
                }
                DeclSpec spec = parseDeclSpec();
                int depth = parsePointerStars();
                if (!peek().is(TokenKind::Identifier)) {
                    // e.g. "struct;" style noise: skip to ';'
                    skipToSemicolon();
                    continue;
                }
                std::string name = advance().text;
                if (peek().isPunct("(")) {
                    declareFunction(name, spec, depth);
                } else {
                    skipToSemicolon();
                }
            } catch (const SyntaxError&) {
                synchronizeTopLevel();
            }
        }
    }

    void
    declareFunction(const std::string& name, const DeclSpec& retSpec,
                    int retDepth)
    {
        FunctionId fn = model_.addFunction(moduleId_, name);
        Signature sig;
        sig.function = fn;
        sig.returnType = {retSpec.base, retDepth};

        expectPunct("(");
        if (!peek().isPunct(")")) {
            if (peek().isIdent("void") && peek(1).isPunct(")")) {
                advance();
            } else {
                do {
                    DeclSpec spec = parseDeclSpec();
                    int depth = parsePointerStars();
                    std::string paramName;
                    if (peek().is(TokenKind::Identifier))
                        paramName = advance().text;
                    if (parseArraySuffix())
                        ++depth;
                    if (paramName.empty())
                        paramName =
                            strCat("arg", sig.params.size());
                    VarId param = model_.addParameter(
                        fn, paramName, {spec.base, depth});
                    sig.params.push_back(param);
                } while (acceptPunct(","));
            }
        }
        expectPunct(")");
        signatures_[name] = sig;

        if (peek().isPunct("{"))
            skipBalancedBraces();
        else
            expectPunct(";");
    }

    void
    skipToSemicolon()
    {
        while (!peek().is(TokenKind::End) && !peek().isPunct(";")) {
            if (peek().isPunct("{")) {
                skipBalancedBraces();
                return; // initializer-list declarations end here
            }
            advance();
        }
        acceptPunct(";");
    }

    void
    skipBalancedBraces()
    {
        expectPunct("{");
        int depth = 1;
        while (depth > 0) {
            if (peek().is(TokenKind::End))
                syntaxError("unterminated '{'");
            if (peek().isPunct("{"))
                ++depth;
            else if (peek().isPunct("}"))
                --depth;
            advance();
        }
    }

    // --- phase B: full parse ---------------------------------------------

    void
    parseTopLevel()
    {
        while (!peek().is(TokenKind::End)) {
            try {
                if (!atDeclSpec())
                    syntaxError("expected a declaration");
                DeclSpec spec = parseDeclSpec();
                parseTopLevelDeclarators(spec);
            } catch (const SyntaxError& e) {
                report(e.diag);
                synchronizeTopLevel();
            }
        }
    }

    void
    parseTopLevelDeclarators(const DeclSpec& spec)
    {
        for (;;) {
            int depth = parsePointerStars();
            std::string name = expectIdentifier("a declarator name");
            if (peek().isPunct("(")) {
                parseFunctionRest(name);
                return;
            }
            if (parseArraySuffix())
                ++depth;
            VarId var = model_.addGlobal(moduleId_, name,
                                         {spec.base, depth});
            globals_[name] = var;
            if (acceptPunct("=")) {
                if (peek().isPunct("{")) {
                    skipBalancedBraces(); // aggregate initializer
                    noteWrite(var, false);
                } else {
                    Value init = parseAssignmentExpr();
                    recordAssign(var, init);
                    noteWrite(var, init.literal);
                }
            }
            if (acceptPunct(","))
                continue;
            expectPunct(";");
            return;
        }
    }

    void
    parseFunctionRest(const std::string& name)
    {
        // The signature (and its parameter VarIds) was created by
        // phase A — unless phase A already choked on it, in which
        // case report and skip the whole definition.
        auto it = signatures_.find(name);
        if (it == signatures_.end())
            syntaxError(strCat("function '", name,
                               "' has an unparsable signature"));
        currentFn_ = &it->second;

        // Re-skip the parameter list tokens.
        expectPunct("(");
        int depth = 1;
        while (depth > 0) {
            if (peek().is(TokenKind::End))
                syntaxError("unterminated parameter list");
            if (peek().isPunct("("))
                ++depth;
            else if (peek().isPunct(")"))
                --depth;
            advance();
        }

        if (acceptPunct(";")) {
            currentFn_ = nullptr;
            return; // prototype
        }

        scopes_.clear();
        pushScope();
        // Parameters are visible throughout the body.
        const auto& program = model_;
        for (VarId p : currentFn_->params)
            scopes_.back()[program.variable(p).name] = p;
        parseBlock();
        popScope();
        currentFn_ = nullptr;
    }

    // --- scopes ---------------------------------------------------------

    void pushScope() { scopes_.emplace_back(); }
    void popScope() { scopes_.pop_back(); }

    VarId
    lookup(const std::string& name) const
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto found = it->find(name);
            if (found != it->end())
                return found->second;
        }
        auto g = globals_.find(name);
        return g == globals_.end() ? model::kInvalidId : g->second;
    }

    // --- statements -------------------------------------------------------

    void
    parseBlock()
    {
        expectPunct("{");
        pushScope();
        while (!peek().isPunct("}")) {
            if (peek().is(TokenKind::End)) {
                if (!reportedUnterminated_) {
                    reportedUnterminated_ = true;
                    report({peek().line, peek().column,
                            "unterminated block"});
                }
                popScope();
                return;
            }
            try {
                parseStatement();
            } catch (const SyntaxError& e) {
                report(e.diag);
                synchronizeStatement();
            }
        }
        popScope();
        expectPunct("}");
    }

    /** RAII loop-nesting marker (exception-safe around recovery). */
    struct LoopGuard {
        explicit LoopGuard(int& depth) : depth_(depth) { ++depth_; }
        ~LoopGuard() { --depth_; }
        int& depth_;
    };

    void
    parseStatement()
    {
        if (peek().isPunct("{")) {
            parseBlock();
            return;
        }
        if (acceptPunct(";"))
            return;
        if (atDeclSpec()) {
            parseLocalDeclaration();
            return;
        }
        if (acceptIdent("if")) {
            expectPunct("(");
            parseExpr();
            expectPunct(")");
            parseStatement();
            if (acceptIdent("else"))
                parseStatement();
            return;
        }
        if (acceptIdent("while")) {
            LoopGuard loop(loopDepth_);
            expectPunct("(");
            parseExpr();
            expectPunct(")");
            parseStatement();
            return;
        }
        if (acceptIdent("do")) {
            LoopGuard loop(loopDepth_);
            parseStatement();
            if (!acceptIdent("while"))
                syntaxError("expected 'while' after do-body");
            expectPunct("(");
            parseExpr();
            expectPunct(")");
            expectPunct(";");
            return;
        }
        if (acceptIdent("for")) {
            expectPunct("(");
            pushScope();
            if (!acceptPunct(";")) {
                if (atDeclSpec())
                    parseLocalDeclaration();
                else {
                    parseExpr();
                    expectPunct(";");
                }
            }
            {
                LoopGuard loop(loopDepth_);
                if (!peek().isPunct(";"))
                    parseExpr();
                expectPunct(";");
                if (!peek().isPunct(")")) {
                    parseExpr();
                    while (acceptPunct(","))
                        parseExpr();
                }
                expectPunct(")");
                parseStatement();
            }
            popScope();
            return;
        }
        if (acceptIdent("return")) {
            if (!peek().isPunct(";")) {
                Value v = parseExpr();
                if (v.kind == Value::Kind::Var && currentFn_)
                    currentFn_->returnedVars.push_back(v.var);
            }
            expectPunct(";");
            return;
        }
        if (acceptIdent("break") || acceptIdent("continue")) {
            expectPunct(";");
            return;
        }
        parseExpr();
        expectPunct(";");
    }

    void
    parseLocalDeclaration()
    {
        DeclSpec spec = parseDeclSpec();
        do {
            int depth = parsePointerStars();
            std::string name = expectIdentifier("a variable name");
            if (parseArraySuffix())
                ++depth;
            HPCMIXP_ASSERT(currentFn_, "local outside a function");
            VarId var = model_.addVariable(currentFn_->function, name,
                                           {spec.base, depth});
            scopes_.back()[name] = var;
            if (acceptPunct("=")) {
                if (peek().isPunct("{")) {
                    skipBalancedBraces(); // aggregate initializer
                    noteWrite(var, false);
                } else {
                    Value init = parseAssignmentExpr();
                    recordAssign(var, init);
                    noteWrite(var, init.literal);
                }
            }
        } while (acceptPunct(","));
        expectPunct(";");
    }

    // --- dependence recording ---------------------------------------------

    void
    recordAssign(VarId dst, const Value& src)
    {
        switch (src.kind) {
          case Value::Kind::Var:
            model_.addAssign(dst, src.var);
            break;
          case Value::Kind::Call:
            pendingReturns_.push_back({dst, src.callee});
            break;
          case Value::Kind::AddressOf:
            // p = &x forces p's base type to follow x.
            model_.addAddressOf(src.var, dst);
            break;
          case Value::Kind::Other:
            break;
        }
    }

    void
    resolveReturnEdges()
    {
        for (const auto& [dst, callee] : pendingReturns_) {
            auto it = signatures_.find(callee);
            if (it == signatures_.end())
                continue; // external function: no constraint
            for (VarId returned : it->second.returnedVars)
                model_.addReturn(dst, returned);
        }
    }

    // --- dataflow fact inference -------------------------------------------

    /**
     * The variable a fact about this value should attach to: a Real
     * scalar variable itself, or the Real array whose element it is.
     */
    VarId
    factTarget(const Value& v) const
    {
        if (v.kind == Value::Kind::Var) {
            const auto& var = model_.variable(v.var);
            if (var.type.base == BaseType::Real &&
                !var.type.isPointer())
                return v.var;
            return model::kInvalidId;
        }
        if (v.rootArray != model::kInvalidId) {
            const auto& var = model_.variable(v.rootArray);
            if (var.type.base == BaseType::Real)
                return v.rootArray;
        }
        return model::kInvalidId;
    }

    /** Assignment facts (accumulation, recurrence) apply to scalar
     *  targets only; per-element array updates are not reductions. */
    VarId
    scalarTarget(const Value& v) const
    {
        if (v.kind != Value::Kind::Var)
            return model::kInvalidId;
        const auto& var = model_.variable(v.var);
        if (var.type.base == BaseType::Real && !var.type.isPointer())
            return v.var;
        return model::kInvalidId;
    }

    /** Tracks the rhs of `target = ...` to spot self-references. */
    struct ExprFrame {
        VarId target = model::kInvalidId;
        bool refsTarget = false; ///< target read anywhere in the rhs
        bool additive = false;   ///< target is an operand of a +/-
    };

    struct FrameGuard {
        FrameGuard(std::vector<ExprFrame>& frames, VarId target)
            : frames_(frames)
        {
            frames_.push_back({target, false, false});
        }
        ~FrameGuard() { frames_.pop_back(); }
        ExprFrame& frame() { return frames_.back(); }
        std::vector<ExprFrame>& frames_;
    };

    void
    noteTargetRef(VarId var)
    {
        if (var != model::kInvalidId && !exprFrames_.empty() &&
            exprFrames_.back().target == var)
            exprFrames_.back().refsTarget = true;
    }

    /** Record a write to a (possible) scalar var for LiteralInit. */
    void
    noteWrite(VarId var, bool literal)
    {
        const auto& v = model_.variable(var);
        if (v.type.base != BaseType::Real || v.type.isPointer())
            return;
        std::uint8_t& bits = writeInfo_[var];
        bits |= kWroteAny;
        if (!literal)
            bits |= kWroteNonLiteral;
    }

    void
    finalizeLiteralInits()
    {
        for (const auto& [var, bits] : writeInfo_)
            if ((bits & kWroteNonLiteral) == 0)
                model_.markFact(var, DataflowFact::LiteralInit);
    }

    /** Per-operator fact extraction, before operands are combined. */
    void
    noteBinaryFacts(const std::string& op, const Value& lhs,
                    const Value& rhs)
    {
        VarId lt = factTarget(lhs);
        VarId rt = factTarget(rhs);
        if (op == "-") {
            if (lt != model::kInvalidId)
                model_.markFact(lt, DataflowFact::Cancellation);
            if (rt != model::kInvalidId)
                model_.markFact(rt, DataflowFact::Cancellation);
        } else if (op == "/" || op == "%") {
            if (rt != model::kInvalidId)
                model_.markFact(rt, DataflowFact::Divisor);
        } else if (op == "<" || op == ">" || op == "<=" ||
                   op == ">=" || op == "==" || op == "!=") {
            if (rhs.literal && lt != model::kInvalidId)
                model_.markFact(lt, DataflowFact::BranchCompare);
            if (lhs.literal && rt != model::kInvalidId)
                model_.markFact(rt, DataflowFact::BranchCompare);
        }
        if ((op == "+" || op == "-") && !exprFrames_.empty()) {
            VarId target = exprFrames_.back().target;
            if (target != model::kInvalidId &&
                (lt == target || rt == target))
                exprFrames_.back().additive = true;
        }
    }

    // --- expressions --------------------------------------------------------

    Value
    parseExpr()
    {
        Value v = parseAssignmentExpr();
        while (acceptPunct(","))
            v = parseAssignmentExpr();
        return v;
    }

    Value
    parseAssignmentExpr()
    {
        Value lhs = parseTernary();
        static const char* kAssignOps[] = {"=",  "+=", "-=", "*=",
                                           "/=", "%=", "&=", "|=",
                                           "^=", "<<=", ">>="};
        for (const char* op : kAssignOps) {
            if (peek().isPunct(op)) {
                advance();
                Value rhs = parseSelfAwareRhs(op, lhs);
                if (lhs.kind == Value::Kind::Var)
                    recordAssign(lhs.var, rhs);
                return lhs;
            }
        }
        return lhs;
    }

    /** Parse the rhs of an assignment, inferring accumulation /
     *  recurrence / literal-init facts for the target as we go. */
    Value
    parseSelfAwareRhs(const std::string& op, const Value& lhs)
    {
        VarId scalar = scalarTarget(lhs);
        if (op != "=") {
            Value rhs = parseAssignmentExpr();
            if (scalar != model::kInvalidId) {
                noteWrite(scalar, false);
                if (loopDepth_ > 0) {
                    model_.markFact(scalar,
                                    DataflowFact::LoopCarried);
                    if (op == "+=" || op == "-=")
                        model_.markFact(scalar,
                                        DataflowFact::Accumulator);
                }
            }
            return rhs;
        }
        FrameGuard guard(exprFrames_, scalar);
        Value rhs = parseAssignmentExpr();
        if (scalar != model::kInvalidId) {
            noteWrite(scalar, rhs.literal);
            if (guard.frame().refsTarget && loopDepth_ > 0) {
                model_.markFact(scalar, DataflowFact::LoopCarried);
                if (guard.frame().additive)
                    model_.markFact(scalar, DataflowFact::Accumulator);
            }
        }
        return rhs;
    }

    Value
    parseTernary()
    {
        Value cond = parseBinary(0);
        if (acceptPunct("?")) {
            parseAssignmentExpr();
            expectPunct(":");
            parseAssignmentExpr();
            return Value::other();
        }
        return cond;
    }

    /** Precedence level of a binary operator (higher binds tighter). */
    static int
    binaryPrecedence(const Token& t)
    {
        if (!t.is(TokenKind::Punct))
            return -1;
        const std::string& p = t.text;
        if (p == "*" || p == "/" || p == "%")
            return 10;
        if (p == "+" || p == "-")
            return 9;
        if (p == "<<" || p == ">>")
            return 8;
        if (p == "<" || p == ">" || p == "<=" || p == ">=")
            return 7;
        if (p == "==" || p == "!=")
            return 6;
        if (p == "&")
            return 5;
        if (p == "^")
            return 4;
        if (p == "|")
            return 3;
        if (p == "&&")
            return 2;
        if (p == "||")
            return 1;
        return -1;
    }

    Value
    parseBinary(int minPrec)
    {
        Value lhs = parseUnary();
        for (;;) {
            int prec = binaryPrecedence(peek());
            if (prec < minPrec || prec < 0)
                return lhs;
            std::string op = peek().text;
            advance();
            Value rhs = parseBinary(prec + 1);
            noteBinaryFacts(op, lhs, rhs);
            Value merged = combine(lhs, rhs);
            if (merged.literal)
                merged.litValue =
                    foldLiteral(op, lhs.litValue, rhs.litValue);
            lhs = merged;
        }
    }

    /** Constant-fold a literal-literal combination; NaN when the
     *  operator is outside the arithmetic subset annotations need. */
    static double
    foldLiteral(const std::string& op, double a, double b)
    {
        if (op == "+")
            return a + b;
        if (op == "-")
            return a - b;
        if (op == "*")
            return a * b;
        if (op == "/")
            return a / b;
        return std::nan("");
    }

    /**
     * Pointer arithmetic keeps the pointer operand as the root
     * (pool + offset is still pool); everything else is Other.
     * A combination of two literals is still a literal (1.0 / 3.0).
     */
    Value
    combine(const Value& a, const Value& b) const
    {
        auto pointerRoot = [&](const Value& v) {
            return v.kind == Value::Kind::Var &&
                   model_.variable(v.var).type.isPointer();
        };
        if (pointerRoot(a))
            return a;
        if (pointerRoot(b))
            return b;
        Value v = Value::other();
        v.literal = a.literal && b.literal;
        return v;
    }

    Value
    parseUnary()
    {
        if (acceptPunct("&")) {
            Value v = parseUnary();
            if (v.kind == Value::Kind::Var) {
                // &x escapes x: it may be written through the pointer,
                // so it no longer counts as literal-initialized.
                noteWrite(v.var, false);
                return Value::addressOf(v.var);
            }
            return Value::other();
        }
        if (acceptPunct("*")) {
            Value v = parseUnary();
            Value elem = Value::other(); // element-level access
            if (v.kind == Value::Kind::Var &&
                model_.variable(v.var).type.isPointer())
                elem.rootArray = v.var;
            else if (v.rootArray != model::kInvalidId)
                elem.rootArray = v.rootArray;
            noteTargetRef(elem.rootArray);
            return elem;
        }
        if (peek().isPunct("-") || peek().isPunct("+")) {
            bool negate = peek().isPunct("-");
            advance();
            Value v = parseUnary();
            Value r = Value::other();
            r.literal = v.literal; // -1.0 is still a literal
            r.litValue = negate ? -v.litValue : v.litValue;
            return r;
        }
        if (acceptPunct("!") || acceptPunct("~")) {
            parseUnary();
            return Value::other();
        }
        if (acceptPunct("++") || acceptPunct("--")) {
            return parseUnary();
        }
        return parsePostfix();
    }

    Value
    parsePostfix()
    {
        Value v = parsePrimary();
        for (;;) {
            if (acceptPunct("[")) {
                parseExpr();
                expectPunct("]");
                Value elem = Value::other(); // element-level access
                if (v.kind == Value::Kind::Var &&
                    model_.variable(v.var).type.isPointer())
                    elem.rootArray = v.var;
                else if (v.rootArray != model::kInvalidId)
                    elem.rootArray = v.rootArray;
                noteTargetRef(elem.rootArray);
                v = elem;
                continue;
            }
            if (acceptPunct("++") || acceptPunct("--"))
                continue;
            if (acceptPunct(".") || peek().isPunct("->")) {
                if (peek().isPunct("->"))
                    advance();
                expectIdentifier("a member name");
                v = Value::other();
                continue;
            }
            return v;
        }
    }

    void
    parseCallArguments(const std::string& callee)
    {
        const Token& open = peek();
        int callLine = open.line;
        int callColumn = open.column;
        expectPunct("(");
        std::vector<Value> args;
        if (!peek().isPunct(")")) {
            do {
                args.push_back(parseAssignmentExpr());
            } while (acceptPunct(","));
        }
        expectPunct(")");

        auto it = signatures_.find(callee);
        if (it == signatures_.end())
            return; // external: no constraint
        const Signature& sig = it->second;
        if (args.size() != sig.params.size())
            report({callLine, callColumn,
                    strCat("call to '", callee, "' passes ",
                           args.size(), " argument",
                           args.size() == 1 ? "" : "s", ", expected ",
                           sig.params.size())});
        for (std::size_t i = 0;
             i < args.size() && i < sig.params.size(); ++i) {
            const Value& arg = args[i];
            if (arg.kind == Value::Kind::Var)
                model_.addCallBind(arg.var, sig.params[i]);
            else if (arg.kind == Value::Kind::AddressOf)
                model_.addAddressOf(arg.var, sig.params[i]);
        }
    }

    /**
     * Annotation intrinsics for the abstract interpreter:
     * `__range(var, lo, hi)` seeds var's input interval and
     * `__opaque(var)` pins it to top. Both accept a Real scalar, a
     * Real array, or an element of one, evaluate to no value, and on
     * misuse report a diagnostic and drop the annotation — the
     * benchmark sources stay compilable as plain C by defining the
     * intrinsics away to `(void)0`.
     */
    Value
    parseAnnotationCall(const std::string& callee)
    {
        const Token& open = peek();
        int callLine = open.line;
        int callColumn = open.column;
        expectPunct("(");
        std::vector<Value> args;
        if (!peek().isPunct(")")) {
            do {
                args.push_back(parseAssignmentExpr());
            } while (acceptPunct(","));
        }
        expectPunct(")");

        auto annotated = [&](const Value& v) -> VarId {
            if (v.kind == Value::Kind::Var) {
                const auto& var = model_.variable(v.var);
                return var.type.base == BaseType::Real
                           ? v.var
                           : model::kInvalidId;
            }
            return factTarget(v); // element access -> root array
        };
        auto misuse = [&](const char* what) {
            report({callLine, callColumn,
                    strCat("'", callee, "' ", what)});
            return Value::other();
        };

        if (callee == "__opaque") {
            if (args.size() != 1)
                return misuse("expects exactly one argument");
            VarId target = annotated(args[0]);
            if (target == model::kInvalidId)
                return misuse("argument must name a real variable");
            model_.markOpaque(target);
            return Value::other();
        }
        if (args.size() != 3)
            return misuse("expects (var, lo, hi)");
        VarId target = annotated(args[0]);
        if (target == model::kInvalidId)
            return misuse("first argument must name a real variable");
        const Value& lo = args[1];
        const Value& hi = args[2];
        if (!lo.literal || !hi.literal ||
            !std::isfinite(lo.litValue) || !std::isfinite(hi.litValue))
            return misuse("bounds must be finite numeric literals");
        if (lo.litValue > hi.litValue)
            return misuse("bounds must satisfy lo <= hi");
        model_.setRange(target, lo.litValue, hi.litValue);
        return Value::other();
    }

    /** True when '(' opens a cast, i.e. is followed by a type name. */
    bool
    atCast() const
    {
        return peek().isPunct("(") &&
               peek(1).is(TokenKind::Identifier) &&
               isDeclSpecKeyword(peek(1).text);
    }

    Value
    parsePrimary()
    {
        if (atCast()) {
            expectPunct("(");
            parseDeclSpec();
            parsePointerStars();
            expectPunct(")");
            return parseUnary(); // casts are transparent to roots
        }
        if (acceptPunct("(")) {
            Value v = parseExpr();
            expectPunct(")");
            return v;
        }
        if (peek().is(TokenKind::Number)) {
            const Token& t = advance();
            Value v = Value::other();
            v.literal = true;
            // strtod stops at C suffixes (1.0f, 100u) and reads hex.
            v.litValue = std::strtod(t.text.c_str(), nullptr);
            return v;
        }
        if (peek().is(TokenKind::String)) {
            advance();
            return Value::other();
        }
        if (peek().is(TokenKind::Identifier)) {
            if (isDeclSpecKeyword(peek().text))
                syntaxError("unexpected type name in expression");
            std::string name = advance().text;
            if (name == "sizeof") {
                // sizeof(type) / sizeof expr: no type constraints.
                if (acceptPunct("(")) {
                    if (atDeclSpec()) {
                        parseDeclSpec();
                        parsePointerStars();
                    } else {
                        parseExpr();
                    }
                    expectPunct(")");
                } else {
                    parseUnary();
                }
                return Value::other();
            }
            if (peek().isPunct("(")) {
                if (name == "__range" || name == "__opaque")
                    return parseAnnotationCall(name);
                parseCallArguments(name);
                return Value::call(name);
            }
            VarId var = lookup(name);
            if (var == model::kInvalidId)
                return Value::other(); // unknown name: e.g. NULL, macros
            noteTargetRef(var);
            return Value::ofVar(var);
        }
        syntaxError("expected an expression");
    }

    // --- data ---------------------------------------------------------------

    struct Signature {
        FunctionId function = model::kInvalidId;
        TypeInfo returnType;
        std::vector<VarId> params;
        std::vector<VarId> returnedVars;
    };

    static constexpr std::uint8_t kWroteAny = 1;
    static constexpr std::uint8_t kWroteNonLiteral = 2;

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
    ProgramModel model_;
    ModuleId moduleId_ = model::kInvalidId;
    std::map<std::string, Signature> signatures_;
    std::map<std::string, VarId> globals_;
    std::vector<std::map<std::string, VarId>> scopes_;
    Signature* currentFn_ = nullptr;
    std::vector<std::pair<VarId, std::string>> pendingReturns_;
    std::vector<ParseDiagnostic> diagnostics_;
    bool reporting_ = false;
    bool reportedUnterminated_ = false;
    int loopDepth_ = 0;
    std::vector<ExprFrame> exprFrames_;
    std::map<VarId, std::uint8_t> writeInfo_;
};

} // namespace

ParseResult
parseProgram(const std::string& source, const std::string& name)
{
    std::vector<Token> tokens;
    try {
        tokens = lex(source);
    } catch (const support::FatalError& e) {
        // Lexical errors have no recovery point; surface them as a
        // single diagnostic on an empty model.
        ParseResult result{ProgramModel(name), {}};
        result.model.addModule(name);
        result.diagnostics.push_back({0, 0, e.what()});
        return result;
    }
    return Parser(std::move(tokens), name).run();
}

ProgramModel
parseProgramFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal(strCat("frontend: cannot open '", path, "'"));
    std::ostringstream buf;
    buf << in.rdbuf();
    ParseResult result = parseProgram(buf.str(), path);
    if (!result.ok()) {
        const ParseDiagnostic& d = result.diagnostics.front();
        fatal(strCat("parse: ", d.message, " at ", path, ":", d.line,
                     ":", d.column));
    }
    return std::move(result.model);
}

} // namespace hpcmixp::typeforge::frontend
