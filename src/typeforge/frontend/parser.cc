#include "typeforge/frontend/parser.h"

#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "support/logging.h"
#include "typeforge/frontend/token.h"

namespace hpcmixp::typeforge::frontend {

using model::BaseType;
using model::FunctionId;
using model::ModuleId;
using model::ProgramModel;
using model::TypeInfo;
using model::VarId;
using support::fatal;
using support::strCat;

namespace {

/** Reduced expression value: just enough for dependence extraction. */
struct Value {
    enum class Kind {
        Var,       ///< resolves to a declared variable
        AddressOf, ///< &variable
        Call,      ///< call to a (possibly external) function
        Other,     ///< anything else (literals, arithmetic, elements)
    };
    Kind kind = Kind::Other;
    VarId var = model::kInvalidId; ///< for Var / AddressOf
    std::string callee;            ///< for Call

    static Value
    ofVar(VarId v)
    {
        return {Kind::Var, v, {}};
    }
    static Value
    addressOf(VarId v)
    {
        return {Kind::AddressOf, v, {}};
    }
    static Value
    call(std::string name)
    {
        return {Kind::Call, model::kInvalidId, std::move(name)};
    }
    static Value
    other()
    {
        return {};
    }
};

bool
isTypeKeyword(const std::string& s)
{
    return s == "void" || s == "int" || s == "long" || s == "short" ||
           s == "char" || s == "float" || s == "double" ||
           s == "unsigned" || s == "signed" || s == "size_t" ||
           s == "bool";
}

bool
isDeclSpecKeyword(const std::string& s)
{
    return s == "static" || s == "const" || s == "extern" ||
           s == "register" || s == "volatile" || isTypeKeyword(s);
}

/** Parsed base type + its pointer depth contribution. */
struct DeclSpec {
    BaseType base = BaseType::Other;
};

class Parser {
  public:
    Parser(const std::string& source, const std::string& name)
        : tokens_(lex(source)), model_(name)
    {
        moduleId_ = model_.addModule(name);
    }

    ProgramModel
    run()
    {
        collectSignatures();
        pos_ = 0;
        parseTopLevel();
        resolveReturnEdges();
        return std::move(model_);
    }

  private:
    // --- token cursor ------------------------------------------------

    const Token& peek(std::size_t off = 0) const
    {
        std::size_t i = pos_ + off;
        return i < tokens_.size() ? tokens_[i] : tokens_.back();
    }

    const Token&
    advance()
    {
        const Token& t = peek();
        if (pos_ + 1 < tokens_.size())
            ++pos_;
        return t;
    }

    bool
    acceptPunct(const char* p)
    {
        if (peek().isPunct(p)) {
            advance();
            return true;
        }
        return false;
    }

    void
    expectPunct(const char* p)
    {
        if (!acceptPunct(p))
            fatal(strCat("parse: expected '", p, "' on line ",
                         peek().line, ", found '", peek().text, "'"));
    }

    bool
    acceptIdent(const char* name)
    {
        if (peek().isIdent(name)) {
            advance();
            return true;
        }
        return false;
    }

    std::string
    expectIdentifier(const char* what)
    {
        if (!peek().is(TokenKind::Identifier) ||
            isDeclSpecKeyword(peek().text))
            fatal(strCat("parse: expected ", what, " on line ",
                         peek().line, ", found '", peek().text, "'"));
        return advance().text;
    }

    [[noreturn]] void
    syntaxError(const std::string& what)
    {
        fatal(strCat("parse: ", what, " on line ", peek().line,
                     " near '", peek().text, "'"));
    }

    // --- type parsing --------------------------------------------------

    bool
    atDeclSpec() const
    {
        return peek().is(TokenKind::Identifier) &&
               isDeclSpecKeyword(peek().text);
    }

    DeclSpec
    parseDeclSpec()
    {
        DeclSpec spec;
        bool sawType = false;
        while (peek().is(TokenKind::Identifier) &&
               isDeclSpecKeyword(peek().text)) {
            const std::string& kw = peek().text;
            if (kw == "float" || kw == "double") {
                spec.base = BaseType::Real;
                sawType = true;
            } else if (kw == "void") {
                spec.base = BaseType::Other;
                sawType = true;
            } else if (isTypeKeyword(kw)) {
                if (!sawType || spec.base == BaseType::Other)
                    spec.base = BaseType::Integer;
                sawType = true;
            }
            advance();
        }
        if (!sawType)
            syntaxError("expected a type name");
        return spec;
    }

    int
    parsePointerStars()
    {
        int depth = 0;
        while (acceptPunct("*")) {
            ++depth;
            while (acceptIdent("const") || acceptIdent("volatile")) {
            }
        }
        return depth;
    }

    /** Skip a bracketed array extent; returns true if one was seen. */
    bool
    parseArraySuffix()
    {
        bool any = false;
        while (peek().isPunct("[")) {
            advance();
            int depth = 1;
            while (depth > 0) {
                if (peek().is(TokenKind::End))
                    syntaxError("unterminated array extent");
                if (peek().isPunct("["))
                    ++depth;
                else if (peek().isPunct("]"))
                    --depth;
                if (depth > 0)
                    advance();
            }
            expectPunct("]");
            any = true;
        }
        return any;
    }

    // --- phase A: signature collection ----------------------------------

    void
    collectSignatures()
    {
        pos_ = 0;
        while (!peek().is(TokenKind::End)) {
            if (!atDeclSpec()) {
                advance(); // stray token; top-level parse will report
                continue;
            }
            DeclSpec spec = parseDeclSpec();
            int depth = parsePointerStars();
            if (!peek().is(TokenKind::Identifier)) {
                // e.g. "struct;" style noise: skip to ';'
                skipToSemicolon();
                continue;
            }
            std::string name = advance().text;
            if (peek().isPunct("(")) {
                declareFunction(name, spec, depth);
            } else {
                skipToSemicolon();
            }
        }
    }

    void
    declareFunction(const std::string& name, const DeclSpec& retSpec,
                    int retDepth)
    {
        FunctionId fn = model_.addFunction(moduleId_, name);
        Signature sig;
        sig.function = fn;
        sig.returnType = {retSpec.base, retDepth};

        expectPunct("(");
        if (!peek().isPunct(")")) {
            if (peek().isIdent("void") && peek(1).isPunct(")")) {
                advance();
            } else {
                do {
                    DeclSpec spec = parseDeclSpec();
                    int depth = parsePointerStars();
                    std::string paramName;
                    if (peek().is(TokenKind::Identifier))
                        paramName = advance().text;
                    if (parseArraySuffix())
                        ++depth;
                    if (paramName.empty())
                        paramName =
                            strCat("arg", sig.params.size());
                    VarId param = model_.addParameter(
                        fn, paramName, {spec.base, depth});
                    sig.params.push_back(param);
                } while (acceptPunct(","));
            }
        }
        expectPunct(")");
        signatures_[name] = sig;

        if (peek().isPunct("{"))
            skipBalancedBraces();
        else
            expectPunct(";");
    }

    void
    skipToSemicolon()
    {
        while (!peek().is(TokenKind::End) && !peek().isPunct(";")) {
            if (peek().isPunct("{")) {
                skipBalancedBraces();
                return; // initializer-list declarations end here
            }
            advance();
        }
        acceptPunct(";");
    }

    void
    skipBalancedBraces()
    {
        expectPunct("{");
        int depth = 1;
        while (depth > 0) {
            if (peek().is(TokenKind::End))
                syntaxError("unterminated '{'");
            if (peek().isPunct("{"))
                ++depth;
            else if (peek().isPunct("}"))
                --depth;
            advance();
        }
    }

    // --- phase B: full parse ---------------------------------------------

    void
    parseTopLevel()
    {
        while (!peek().is(TokenKind::End)) {
            if (!atDeclSpec())
                syntaxError("expected a declaration");
            DeclSpec spec = parseDeclSpec();
            parseTopLevelDeclarators(spec);
        }
    }

    void
    parseTopLevelDeclarators(const DeclSpec& spec)
    {
        for (;;) {
            int depth = parsePointerStars();
            std::string name = expectIdentifier("a declarator name");
            if (peek().isPunct("(")) {
                parseFunctionRest(name);
                return;
            }
            if (parseArraySuffix())
                ++depth;
            VarId var = model_.addGlobal(moduleId_, name,
                                         {spec.base, depth});
            globals_[name] = var;
            if (acceptPunct("=")) {
                if (peek().isPunct("{")) {
                    skipBalancedBraces(); // aggregate initializer
                } else {
                    Value init = parseAssignmentExpr();
                    recordAssign(var, init);
                }
            }
            if (acceptPunct(","))
                continue;
            expectPunct(";");
            return;
        }
    }

    void
    parseFunctionRest(const std::string& name)
    {
        // The signature (and its parameter VarIds) already exist.
        auto it = signatures_.find(name);
        HPCMIXP_ASSERT(it != signatures_.end(),
                       "function signature missing in phase B");
        currentFn_ = &it->second;

        // Re-skip the parameter list tokens.
        expectPunct("(");
        int depth = 1;
        while (depth > 0) {
            if (peek().is(TokenKind::End))
                syntaxError("unterminated parameter list");
            if (peek().isPunct("("))
                ++depth;
            else if (peek().isPunct(")"))
                --depth;
            advance();
        }

        if (acceptPunct(";")) {
            currentFn_ = nullptr;
            return; // prototype
        }

        scopes_.clear();
        pushScope();
        // Parameters are visible throughout the body.
        const auto& program = model_;
        for (VarId p : currentFn_->params)
            scopes_.back()[program.variable(p).name] = p;
        parseBlock();
        popScope();
        currentFn_ = nullptr;
    }

    // --- scopes ---------------------------------------------------------

    void pushScope() { scopes_.emplace_back(); }
    void popScope() { scopes_.pop_back(); }

    VarId
    lookup(const std::string& name) const
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto found = it->find(name);
            if (found != it->end())
                return found->second;
        }
        auto g = globals_.find(name);
        return g == globals_.end() ? model::kInvalidId : g->second;
    }

    // --- statements -------------------------------------------------------

    void
    parseBlock()
    {
        expectPunct("{");
        pushScope();
        while (!peek().isPunct("}")) {
            if (peek().is(TokenKind::End))
                syntaxError("unterminated block");
            parseStatement();
        }
        popScope();
        expectPunct("}");
    }

    void
    parseStatement()
    {
        if (peek().isPunct("{")) {
            parseBlock();
            return;
        }
        if (acceptPunct(";"))
            return;
        if (atDeclSpec()) {
            parseLocalDeclaration();
            return;
        }
        if (acceptIdent("if")) {
            expectPunct("(");
            parseExpr();
            expectPunct(")");
            parseStatement();
            if (acceptIdent("else"))
                parseStatement();
            return;
        }
        if (acceptIdent("while")) {
            expectPunct("(");
            parseExpr();
            expectPunct(")");
            parseStatement();
            return;
        }
        if (acceptIdent("do")) {
            parseStatement();
            if (!acceptIdent("while"))
                syntaxError("expected 'while' after do-body");
            expectPunct("(");
            parseExpr();
            expectPunct(")");
            expectPunct(";");
            return;
        }
        if (acceptIdent("for")) {
            expectPunct("(");
            pushScope();
            if (!acceptPunct(";")) {
                if (atDeclSpec())
                    parseLocalDeclaration();
                else {
                    parseExpr();
                    expectPunct(";");
                }
            }
            if (!peek().isPunct(";"))
                parseExpr();
            expectPunct(";");
            if (!peek().isPunct(")")) {
                parseExpr();
                while (acceptPunct(","))
                    parseExpr();
            }
            expectPunct(")");
            parseStatement();
            popScope();
            return;
        }
        if (acceptIdent("return")) {
            if (!peek().isPunct(";")) {
                Value v = parseExpr();
                if (v.kind == Value::Kind::Var && currentFn_)
                    currentFn_->returnedVars.push_back(v.var);
            }
            expectPunct(";");
            return;
        }
        if (acceptIdent("break") || acceptIdent("continue")) {
            expectPunct(";");
            return;
        }
        parseExpr();
        expectPunct(";");
    }

    void
    parseLocalDeclaration()
    {
        DeclSpec spec = parseDeclSpec();
        do {
            int depth = parsePointerStars();
            std::string name = expectIdentifier("a variable name");
            if (parseArraySuffix())
                ++depth;
            HPCMIXP_ASSERT(currentFn_, "local outside a function");
            VarId var = model_.addVariable(currentFn_->function, name,
                                           {spec.base, depth});
            scopes_.back()[name] = var;
            if (acceptPunct("=")) {
                if (peek().isPunct("{")) {
                    skipBalancedBraces(); // aggregate initializer
                } else {
                    Value init = parseAssignmentExpr();
                    recordAssign(var, init);
                }
            }
        } while (acceptPunct(","));
        expectPunct(";");
    }

    // --- dependence recording ---------------------------------------------

    void
    recordAssign(VarId dst, const Value& src)
    {
        switch (src.kind) {
          case Value::Kind::Var:
            model_.addAssign(dst, src.var);
            break;
          case Value::Kind::Call:
            pendingReturns_.push_back({dst, src.callee});
            break;
          case Value::Kind::AddressOf:
            // p = &x forces p's base type to follow x.
            model_.addAddressOf(src.var, dst);
            break;
          case Value::Kind::Other:
            break;
        }
    }

    void
    resolveReturnEdges()
    {
        for (const auto& [dst, callee] : pendingReturns_) {
            auto it = signatures_.find(callee);
            if (it == signatures_.end())
                continue; // external function: no constraint
            for (VarId returned : it->second.returnedVars)
                model_.addReturn(dst, returned);
        }
    }

    // --- expressions --------------------------------------------------------

    Value
    parseExpr()
    {
        Value v = parseAssignmentExpr();
        while (acceptPunct(","))
            v = parseAssignmentExpr();
        return v;
    }

    Value
    parseAssignmentExpr()
    {
        Value lhs = parseTernary();
        static const char* kAssignOps[] = {"=",  "+=", "-=", "*=",
                                           "/=", "%=", "&=", "|=",
                                           "^=", "<<=", ">>="};
        for (const char* op : kAssignOps) {
            if (peek().isPunct(op)) {
                advance();
                Value rhs = parseAssignmentExpr();
                if (lhs.kind == Value::Kind::Var)
                    recordAssign(lhs.var, rhs);
                return lhs;
            }
        }
        return lhs;
    }

    Value
    parseTernary()
    {
        Value cond = parseBinary(0);
        if (acceptPunct("?")) {
            parseAssignmentExpr();
            expectPunct(":");
            parseAssignmentExpr();
            return Value::other();
        }
        return cond;
    }

    /** Precedence level of a binary operator (higher binds tighter). */
    static int
    binaryPrecedence(const Token& t)
    {
        if (!t.is(TokenKind::Punct))
            return -1;
        const std::string& p = t.text;
        if (p == "*" || p == "/" || p == "%")
            return 10;
        if (p == "+" || p == "-")
            return 9;
        if (p == "<<" || p == ">>")
            return 8;
        if (p == "<" || p == ">" || p == "<=" || p == ">=")
            return 7;
        if (p == "==" || p == "!=")
            return 6;
        if (p == "&")
            return 5;
        if (p == "^")
            return 4;
        if (p == "|")
            return 3;
        if (p == "&&")
            return 2;
        if (p == "||")
            return 1;
        return -1;
    }

    Value
    parseBinary(int minPrec)
    {
        Value lhs = parseUnary();
        for (;;) {
            int prec = binaryPrecedence(peek());
            if (prec < minPrec || prec < 0)
                return lhs;
            advance();
            Value rhs = parseBinary(prec + 1);
            lhs = combine(lhs, rhs);
        }
    }

    /**
     * Pointer arithmetic keeps the pointer operand as the root
     * (pool + offset is still pool); everything else is Other.
     */
    Value
    combine(const Value& a, const Value& b) const
    {
        auto pointerRoot = [&](const Value& v) {
            return v.kind == Value::Kind::Var &&
                   model_.variable(v.var).type.isPointer();
        };
        if (pointerRoot(a))
            return a;
        if (pointerRoot(b))
            return b;
        return Value::other();
    }

    Value
    parseUnary()
    {
        if (acceptPunct("&")) {
            Value v = parseUnary();
            if (v.kind == Value::Kind::Var)
                return Value::addressOf(v.var);
            return Value::other();
        }
        if (acceptPunct("*")) {
            parseUnary();
            return Value::other(); // element-level access
        }
        if (acceptPunct("-") || acceptPunct("+") || acceptPunct("!") ||
            acceptPunct("~")) {
            parseUnary();
            return Value::other();
        }
        if (acceptPunct("++") || acceptPunct("--")) {
            return parseUnary();
        }
        return parsePostfix();
    }

    Value
    parsePostfix()
    {
        Value v = parsePrimary();
        for (;;) {
            if (acceptPunct("[")) {
                parseExpr();
                expectPunct("]");
                v = Value::other(); // element-level access
                continue;
            }
            if (acceptPunct("++") || acceptPunct("--"))
                continue;
            if (acceptPunct(".") || peek().isPunct("->")) {
                if (peek().isPunct("->"))
                    advance();
                expectIdentifier("a member name");
                v = Value::other();
                continue;
            }
            return v;
        }
    }

    void
    parseCallArguments(const std::string& callee)
    {
        expectPunct("(");
        std::vector<Value> args;
        if (!peek().isPunct(")")) {
            do {
                args.push_back(parseAssignmentExpr());
            } while (acceptPunct(","));
        }
        expectPunct(")");

        auto it = signatures_.find(callee);
        if (it == signatures_.end())
            return; // external: no constraint
        const Signature& sig = it->second;
        for (std::size_t i = 0;
             i < args.size() && i < sig.params.size(); ++i) {
            const Value& arg = args[i];
            if (arg.kind == Value::Kind::Var)
                model_.addCallBind(arg.var, sig.params[i]);
            else if (arg.kind == Value::Kind::AddressOf)
                model_.addAddressOf(arg.var, sig.params[i]);
        }
    }

    /** True when '(' opens a cast, i.e. is followed by a type name. */
    bool
    atCast() const
    {
        return peek().isPunct("(") &&
               peek(1).is(TokenKind::Identifier) &&
               isDeclSpecKeyword(peek(1).text);
    }

    Value
    parsePrimary()
    {
        if (atCast()) {
            expectPunct("(");
            parseDeclSpec();
            parsePointerStars();
            expectPunct(")");
            return parseUnary(); // casts are transparent to roots
        }
        if (acceptPunct("(")) {
            Value v = parseExpr();
            expectPunct(")");
            return v;
        }
        if (peek().is(TokenKind::Number) ||
            peek().is(TokenKind::String)) {
            advance();
            return Value::other();
        }
        if (peek().is(TokenKind::Identifier)) {
            if (isDeclSpecKeyword(peek().text))
                syntaxError("unexpected type name in expression");
            std::string name = advance().text;
            if (name == "sizeof") {
                // sizeof(type) / sizeof expr: no type constraints.
                if (acceptPunct("(")) {
                    if (atDeclSpec()) {
                        parseDeclSpec();
                        parsePointerStars();
                    } else {
                        parseExpr();
                    }
                    expectPunct(")");
                } else {
                    parseUnary();
                }
                return Value::other();
            }
            if (peek().isPunct("(")) {
                parseCallArguments(name);
                return Value::call(name);
            }
            VarId var = lookup(name);
            if (var == model::kInvalidId)
                return Value::other(); // unknown name: e.g. NULL, macros
            return Value::ofVar(var);
        }
        syntaxError("expected an expression");
    }

    // --- data ---------------------------------------------------------------

    struct Signature {
        FunctionId function = model::kInvalidId;
        TypeInfo returnType;
        std::vector<VarId> params;
        std::vector<VarId> returnedVars;
    };

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
    ProgramModel model_;
    ModuleId moduleId_ = model::kInvalidId;
    std::map<std::string, Signature> signatures_;
    std::map<std::string, VarId> globals_;
    std::vector<std::map<std::string, VarId>> scopes_;
    Signature* currentFn_ = nullptr;
    std::vector<std::pair<VarId, std::string>> pendingReturns_;
};

} // namespace

ProgramModel
parseProgram(const std::string& source, const std::string& name)
{
    return Parser(source, name).run();
}

ProgramModel
parseProgramFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal(strCat("frontend: cannot open '", path, "'"));
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseProgram(buf.str(), path);
}

} // namespace hpcmixp::typeforge::frontend
