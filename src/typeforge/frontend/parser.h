#ifndef HPCMIXP_TYPEFORGE_FRONTEND_PARSER_H_
#define HPCMIXP_TYPEFORGE_FRONTEND_PARSER_H_

/**
 * @file
 * Mini-C parser producing a ProgramModel.
 *
 * Supported subset (everything the suite's benchmark sources use):
 *  - top-level variable declarations and function definitions or
 *    prototypes, with void / integer / float / double base types,
 *    pointers and arrays;
 *  - statements: declarations, expression statements, assignments
 *    (including compound assignment), if/else, while, do-while, for,
 *    return, break/continue, blocks;
 *  - expressions with standard precedence, calls, array subscripts,
 *    address-of, dereference, casts.
 *
 * From the parse, the binder records exactly the facts the
 * type-dependence analysis consumes: every declared variable with its
 * type, assignments between variables, call argument-to-parameter
 * bindings, address-of bindings, and return-value flow. Control flow
 * and arithmetic are consumed but deliberately not modelled — the
 * *clustering* analysis is purely type-based, like Typeforge's
 * (Section II-C).
 *
 * On top of the type facts, the binder additionally infers per-variable
 * *dataflow facts* (model::DataflowFact) consumed by the mixp-lint
 * sensitivity rules: accumulation in loops, subtraction operands
 * (cancellation), divisor use, comparison against literals,
 * literal-only initialization, and loop-carried recurrences.
 *
 * Functions that are called but never declared are treated as
 * external (their arguments impose no constraints), matching the
 * paper's Listing 1 where `init` and `init_scalar` are unbound.
 *
 * Syntax errors are *recoverable*: parseProgram always returns a
 * (possibly partial) model together with the list of diagnostics, so
 * tools like mixp-lint can still report on the parts that parsed.
 * parseProgramFile keeps the historical fatal-on-error contract for
 * CLI compatibility.
 */

#include <string>
#include <vector>

#include "model/program_model.h"

namespace hpcmixp::typeforge::frontend {

/** One recoverable syntax diagnostic with its source position. */
struct ParseDiagnostic {
    int line = 0;   ///< 1-based; 0 when no position is known
    int column = 0; ///< 1-based; 0 when no position is known
    std::string message;
};

/** Result of a tolerant parse: the model plus anything that went wrong. */
struct ParseResult {
    model::ProgramModel model;
    std::vector<ParseDiagnostic> diagnostics;

    /** True when the source parsed without any diagnostics. */
    bool ok() const { return diagnostics.empty(); }
};

/**
 * Parse @p source (mini-C) into a ProgramModel named @p name.
 * Never fatal()s on malformed input: syntax errors are reported in
 * ParseResult::diagnostics (with line:column) and parsing resynchronizes
 * at the next statement or top-level declaration, so the returned model
 * covers everything that did parse.
 */
ParseResult parseProgram(const std::string& source,
                         const std::string& name);

/**
 * Parse a source file; fatal()s if unreadable or on the first syntax
 * diagnostic (historical CLI-friendly behavior).
 */
model::ProgramModel parseProgramFile(const std::string& path);

} // namespace hpcmixp::typeforge::frontend

#endif // HPCMIXP_TYPEFORGE_FRONTEND_PARSER_H_
