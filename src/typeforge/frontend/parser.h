#ifndef HPCMIXP_TYPEFORGE_FRONTEND_PARSER_H_
#define HPCMIXP_TYPEFORGE_FRONTEND_PARSER_H_

/**
 * @file
 * Mini-C parser producing a ProgramModel.
 *
 * Supported subset (everything the suite's benchmark sources use):
 *  - top-level variable declarations and function definitions or
 *    prototypes, with void / integer / float / double base types,
 *    pointers and arrays;
 *  - statements: declarations, expression statements, assignments
 *    (including compound assignment), if/else, while, do-while, for,
 *    return, break/continue, blocks;
 *  - expressions with standard precedence, calls, array subscripts,
 *    address-of, dereference, casts.
 *
 * From the parse, the binder records exactly the facts the
 * type-dependence analysis consumes: every declared variable with its
 * type, assignments between variables, call argument-to-parameter
 * bindings, address-of bindings, and return-value flow. Control flow
 * and arithmetic are consumed but deliberately not modelled — the
 * analysis is purely type-based, like Typeforge's (Section II-C).
 *
 * Functions that are called but never declared are treated as
 * external (their arguments impose no constraints), matching the
 * paper's Listing 1 where `init` and `init_scalar` are unbound.
 */

#include <string>

#include "model/program_model.h"

namespace hpcmixp::typeforge::frontend {

/**
 * Parse @p source (mini-C) into a ProgramModel named @p name.
 * fatal()s with line information on syntax errors.
 */
model::ProgramModel parseProgram(const std::string& source,
                                 const std::string& name);

/** Parse a source file; fatal()s if unreadable. */
model::ProgramModel parseProgramFile(const std::string& path);

} // namespace hpcmixp::typeforge::frontend

#endif // HPCMIXP_TYPEFORGE_FRONTEND_PARSER_H_
