#ifndef HPCMIXP_TYPEFORGE_FRONTEND_TOKEN_H_
#define HPCMIXP_TYPEFORGE_FRONTEND_TOKEN_H_

/**
 * @file
 * Token stream for the mini-C frontend.
 *
 * Typeforge proper parses C++ through ROSE; this frontend accepts the
 * C subset the suite's benchmarks are written in — enough to extract
 * declarations, assignments, calls and address-of bindings, which is
 * all the type-dependence analysis consumes (DESIGN.md Section 2).
 */

#include <cstddef>
#include <string>
#include <vector>

namespace hpcmixp::typeforge::frontend {

/** Token categories. */
enum class TokenKind {
    Identifier, ///< names and keywords (keyword detection by text)
    Number,     ///< integer or floating literal
    String,     ///< "..." literal (contents unused)
    Punct,      ///< operators and punctuation, in `text`
    End,        ///< end of input
};

/** One lexed token. */
struct Token {
    TokenKind kind = TokenKind::End;
    std::string text;
    int line = 0;
    int column = 0; ///< 1-based column of the token's first character

    bool is(TokenKind k) const { return kind == k; }
    bool
    isPunct(const char* p) const
    {
        return kind == TokenKind::Punct && text == p;
    }
    bool
    isIdent(const char* name) const
    {
        return kind == TokenKind::Identifier && text == name;
    }
};

/**
 * Lex @p source into tokens. Line comments, block comments and
 * preprocessor lines are skipped. fatal()s with line info on stray
 * characters or unterminated comments/strings.
 */
std::vector<Token> lex(const std::string& source);

} // namespace hpcmixp::typeforge::frontend

#endif // HPCMIXP_TYPEFORGE_FRONTEND_TOKEN_H_
