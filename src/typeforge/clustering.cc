#include "typeforge/clustering.h"

#include <algorithm>
#include <map>

#include "support/logging.h"

namespace hpcmixp::typeforge {

using model::BaseType;
using model::DependenceKind;
using model::ProgramModel;
using model::VarId;

UnionFind::UnionFind(std::size_t n) : parent_(n), rank_(n, 0)
{
    for (std::size_t i = 0; i < n; ++i)
        parent_[i] = i;
}

std::size_t
UnionFind::find(std::size_t x)
{
    HPCMIXP_ASSERT(x < parent_.size(), "union-find index out of range");
    while (parent_[x] != x) {
        parent_[x] = parent_[parent_[x]];
        x = parent_[x];
    }
    return x;
}

void
UnionFind::unite(std::size_t a, std::size_t b)
{
    std::size_t ra = find(a);
    std::size_t rb = find(b);
    if (ra == rb)
        return;
    if (rank_[ra] < rank_[rb])
        std::swap(ra, rb);
    parent_[rb] = ra;
    if (rank_[ra] == rank_[rb])
        ++rank_[ra];
}

std::size_t
ClusterSet::variableCount() const
{
    std::size_t n = 0;
    for (const auto& c : clusters_)
        n += c.size();
    return n;
}

const std::vector<VarId>&
ClusterSet::members(std::size_t index) const
{
    HPCMIXP_ASSERT(index < clusters_.size(), "cluster index out of range");
    return clusters_[index];
}

std::size_t
ClusterSet::clusterOf(VarId var) const
{
    HPCMIXP_ASSERT(var < clusterIndex_.size() &&
                       clusterIndex_[var] != kNone,
                   "variable does not participate in the tuning space");
    return clusterIndex_[var];
}

bool
ClusterSet::contains(VarId var) const
{
    return var < clusterIndex_.size() && clusterIndex_[var] != kNone;
}

void
ClusterSet::build(std::vector<std::vector<VarId>> clusters)
{
    clusters_ = std::move(clusters);
    for (auto& cluster : clusters_)
        std::sort(cluster.begin(), cluster.end());
    std::sort(clusters_.begin(), clusters_.end(),
              [](const auto& a, const auto& b) {
                  return a.front() < b.front();
              });
    VarId maxVar = 0;
    for (const auto& cluster : clusters_)
        for (VarId v : cluster)
            maxVar = std::max(maxVar, v);
    clusterIndex_.assign(maxVar + 1, kNone);
    for (std::size_t i = 0; i < clusters_.size(); ++i)
        for (VarId v : clusters_[i])
            clusterIndex_[v] = i;
}

namespace {

/** Decide whether a dependence edge forces type unification. */
bool
unifies(const ProgramModel& program, const model::Dependence& dep)
{
    const auto& a = program.variable(dep.a);
    const auto& b = program.variable(dep.b);
    if (a.type.base != BaseType::Real || b.type.base != BaseType::Real)
        return false;
    switch (dep.kind) {
      case DependenceKind::AddressOf:
      case DependenceKind::SameType:
        return true;
      case DependenceKind::Assign:
      case DependenceKind::CallBind:
      case DependenceKind::Return:
        // Only pointer links force a shared base type; scalar value
        // flow can be bridged by an implicit cast.
        return a.type.isPointer() && b.type.isPointer();
    }
    return false;
}

} // namespace

ClusterSet
analyze(const ProgramModel& program)
{
    std::vector<VarId> reals = program.realVariables();

    // Dense index per Real variable.
    std::map<VarId, std::size_t> dense;
    for (std::size_t i = 0; i < reals.size(); ++i)
        dense[reals[i]] = i;

    UnionFind uf(reals.size());
    for (const auto& dep : program.dependences()) {
        if (!unifies(program, dep))
            continue;
        uf.unite(dense.at(dep.a), dense.at(dep.b));
    }

    std::map<std::size_t, std::vector<VarId>> byRoot;
    for (std::size_t i = 0; i < reals.size(); ++i)
        byRoot[uf.find(i)].push_back(reals[i]);

    std::vector<std::vector<VarId>> clusters;
    clusters.reserve(byRoot.size());
    for (auto& [root, members] : byRoot)
        clusters.push_back(std::move(members));

    ClusterSet set;
    set.build(std::move(clusters));
    return set;
}

} // namespace hpcmixp::typeforge
