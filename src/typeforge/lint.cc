#include "typeforge/lint.h"

#include <algorithm>

#include "runtime/precision.h"
#include "support/logging.h"
#include "typeforge/report.h"

namespace hpcmixp::typeforge {

using model::DataflowFact;
using model::ProgramModel;
using model::VarId;
using support::strCat;

const char*
sensitivityName(Sensitivity s)
{
    switch (s) {
    case Sensitivity::KeepDouble: return "keep-double";
    case Sensitivity::SafeToNarrow: return "safe-to-narrow";
    case Sensitivity::Unknown: return "unknown";
    }
    return "unknown";
}

const char*
sensitivityFloor(Sensitivity s)
{
    switch (s) {
    case Sensitivity::KeepDouble: return "double";
    case Sensitivity::SafeToNarrow: return "half";
    case Sensitivity::Unknown: return "float";
    }
    return "float";
}

const char*
lintSeverityName(LintSeverity s)
{
    switch (s) {
    case LintSeverity::Info: return "info";
    case LintSeverity::Warning: return "warning";
    case LintSeverity::Critical: return "critical";
    }
    return "info";
}

const std::vector<LintRule>&
lintRules()
{
    // Weights are calibrated so that a lone reduction accumulator
    // (MP001, which in practice always carries MP003 too) clears
    // kKeepDoubleScore on its own, while any single weak signal does
    // not. MP006 is advisory: it strengthens the SafeToNarrow story
    // without affecting the score.
    static const std::vector<LintRule> kRules = {
        {"MP001-accumulator", LintSeverity::Critical,
         DataflowFact::Accumulator, 4,
         "updated by accumulation inside a loop; narrowing compounds "
         "rounding error across iterations"},
        {"MP002-cancellation", LintSeverity::Warning,
         DataflowFact::Cancellation, 2,
         "operand of a floating-point subtraction; vulnerable to "
         "catastrophic cancellation"},
        {"MP003-loop-carried", LintSeverity::Warning,
         DataflowFact::LoopCarried, 2,
         "loop-carried recurrence; each iteration feeds rounding "
         "error into the next"},
        {"MP004-divisor", LintSeverity::Warning,
         DataflowFact::Divisor, 1,
         "used as a divisor; small absolute errors are amplified"},
        {"MP005-branch-compare", LintSeverity::Info,
         DataflowFact::BranchCompare, 1,
         "compared against a constant; precision changes may flip "
         "control flow"},
        {"MP006-literal-init", LintSeverity::Info,
         DataflowFact::LiteralInit, 0,
         "only ever written from literals; exactly representable in "
         "float if the literals are"},
    };
    return kRules;
}

const std::vector<CertifiedRule>&
certifiedRules()
{
    // MP007/MP008 carry weight 0: they already act through the
    // certified cap, so double-counting them into the heuristic score
    // would shadow it. MP009 is evidence of cancellation the annotated
    // facts may have missed and scores like MP002.
    static const std::vector<CertifiedRule> kRules = {
        {"MP007-range-overflow-at-rung", LintSeverity::Critical, 0,
         "proven value range does not fit the rung's finite range"},
        {"MP008-error-budget-exceeded", LintSeverity::Warning, 0,
         "certified first-order error bound exceeds the quality "
         "threshold at the rung"},
        {"MP009-proven-cancellation", LintSeverity::Warning, 2,
         "operand intervals overlap, so the subtraction can cancel "
         "catastrophically"},
    };
    return kRules;
}

std::size_t
SensitivityReport::count(Sensitivity s) const
{
    std::size_t n = 0;
    for (const auto& c : clusters)
        if (c.sensitivity == s)
            ++n;
    return n;
}

std::size_t
SensitivityReport::countSeverity(LintSeverity s) const
{
    std::size_t n = 0;
    for (const auto& f : findings)
        if (f.severity == s)
            ++n;
    return n;
}

namespace {

std::string
lintLocation(const ProgramModel& program, VarId var)
{
    const auto& v = program.variable(var);
    std::string moduleName = v.module != model::kInvalidId
                                 ? program.module(v.module).name
                                 : std::string();
    std::string functionName =
        v.function != model::kInvalidId
            ? program.function(v.function).name
            : std::string();
    return strCat(moduleName, ":", functionName, ":", v.name);
}

} // namespace

SensitivityReport
lint(const model::ProgramModel& program)
{
    return lint(program, analyze(program));
}

SensitivityReport
lint(const model::ProgramModel& program, const ClusterSet& clusters)
{
    return lint(program, clusters, AbsintOptions{});
}

SensitivityReport
lint(const model::ProgramModel& program, const ClusterSet& clusters,
     const AbsintOptions& options)
{
    SensitivityReport report;
    report.program = program.name();
    report.analyzed = program.dataflowAnalyzed();
    report.ladder = options.ladder.describe();

    AbsintResult abs = interpret(program, clusters, options);

    // Findings: every rule firing on every Real variable, ordered by
    // VarId then catalog order (deterministic for golden files).
    for (VarId var : program.realVariables()) {
        for (const LintRule& rule : lintRules()) {
            if (!program.hasFact(var, rule.fact))
                continue;
            LintFinding finding;
            finding.ruleId = rule.id;
            finding.severity = rule.severity;
            finding.var = var;
            finding.location = lintLocation(program, var);
            finding.message = rule.summary;
            report.findings.push_back(std::move(finding));
        }
    }

    // Certified findings follow, in the absint pass's deterministic
    // order (variable order, MP009 before the first-failing-rung
    // rules).
    for (const auto& af : abs.findings) {
        const CertifiedRule* rule = nullptr;
        for (const CertifiedRule& r : certifiedRules())
            if (af.ruleId == std::string(r.id))
                rule = &r;
        HPCMIXP_ASSERT(rule, "absint finding with unknown rule id");
        LintFinding finding;
        finding.ruleId = af.ruleId;
        finding.severity = rule->severity;
        finding.var = af.var;
        finding.location = lintLocation(program, af.var);
        finding.message = af.detail;
        report.findings.push_back(std::move(finding));
    }

    // Statically derived ranges, variable order.
    for (VarId var : program.realVariables()) {
        const VarAbs& s = abs.vars[var];
        if (!s.known)
            continue;
        VarRangeLine line;
        line.name = qualifiedName(program, var);
        line.lo = s.range.lo;
        line.hi = s.range.hi;
        line.amp = s.amp;
        line.widened = s.widened;
        report.ranges.push_back(std::move(line));
    }
    report.certificates = abs.certificates;

    // Cluster verdicts: aggregate member scores.
    for (std::size_t i = 0; i < clusters.clusterCount(); ++i) {
        ClusterVerdict verdict;
        verdict.cluster = i;
        for (VarId var : clusters.members(i)) {
            verdict.members.push_back(qualifiedName(program, var));
            for (const LintRule& rule : lintRules()) {
                if (!program.hasFact(var, rule.fact))
                    continue;
                verdict.score += rule.weight;
                if (std::find(verdict.ruleIds.begin(),
                              verdict.ruleIds.end(),
                              rule.id) == verdict.ruleIds.end())
                    verdict.ruleIds.push_back(rule.id);
            }
            for (const auto& af : abs.findings) {
                if (af.var != var)
                    continue;
                for (const CertifiedRule& r : certifiedRules()) {
                    if (af.ruleId != std::string(r.id))
                        continue;
                    verdict.score += r.weight;
                    if (std::find(verdict.ruleIds.begin(),
                                  verdict.ruleIds.end(),
                                  r.id) == verdict.ruleIds.end())
                        verdict.ruleIds.push_back(r.id);
                }
            }
        }
        if (verdict.score >= kKeepDoubleScore)
            verdict.sensitivity = Sensitivity::KeepDouble;
        else if (verdict.score == 0 && report.analyzed)
            verdict.sensitivity = Sensitivity::SafeToNarrow;
        else
            verdict.sensitivity = Sensitivity::Unknown;
        verdict.floor = sensitivityFloor(verdict.sensitivity);
        const ClusterCaps& caps = abs.clusters[i];
        verdict.certifiedCap = caps.certifiedCap;
        verdict.safeThrough = caps.safeThrough;
        verdict.certified = caps.certified;
        if (caps.certifiedCap != kNoCap)
            verdict.capName = runtime::precisionName(
                options.ladder.at(caps.certifiedCap));
        report.clusters.push_back(std::move(verdict));
    }
    return report;
}

void
printLintReport(std::ostream& os, const SensitivityReport& report,
                bool ranges, bool certificates)
{
    os << "mixp-lint report for '" << report.program << "'\n";
    os << "dataflow facts: "
       << (report.analyzed ? "analyzed" : "unavailable") << "\n";
    os << "findings: " << report.findings.size() << "\n";
    for (const auto& finding : report.findings) {
        os << "  [" << finding.ruleId << "] "
           << lintSeverityName(finding.severity) << " "
           << finding.location << " - " << finding.message << "\n";
    }
    if (ranges && !report.ranges.empty()) {
        std::size_t widened = 0;
        for (const auto& line : report.ranges)
            if (line.widened)
                ++widened;
        os << "ranges (" << report.ladder << "): "
           << report.ranges.size() << " derived, " << widened
           << " widened\n";
        for (const auto& line : report.ranges) {
            os << "  " << line.name << " in [" << line.lo << ", "
               << line.hi << "] amp " << line.amp;
            if (line.widened)
                os << " (widened)";
            os << "\n";
        }
    }
    os << "clusters: " << report.clusters.size() << " ("
       << report.count(Sensitivity::KeepDouble) << " keep-double, "
       << report.count(Sensitivity::SafeToNarrow)
       << " safe-to-narrow, " << report.count(Sensitivity::Unknown)
       << " unknown)\n";
    for (const auto& verdict : report.clusters) {
        os << "  cluster " << verdict.cluster << " ["
           << sensitivityName(verdict.sensitivity) << ", score "
           << verdict.score << ", floor " << verdict.floor;
        if (verdict.certifiedCap != kNoCap)
            os << ", cap " << verdict.capName;
        if (verdict.certified)
            os << ", certified<=" << static_cast<int>(
                   verdict.safeThrough);
        os << "] {";
        for (std::size_t i = 0; i < verdict.members.size(); ++i) {
            if (i)
                os << ", ";
            os << verdict.members[i];
        }
        os << "}";
        if (!verdict.ruleIds.empty()) {
            os << " rules: ";
            for (std::size_t i = 0; i < verdict.ruleIds.size(); ++i) {
                if (i)
                    os << ", ";
                os << verdict.ruleIds[i];
            }
        }
        os << "\n";
    }
    if (certificates && !report.certificates.empty()) {
        os << "certificates: " << report.certificates.size() << "\n";
        for (const auto& cert : report.certificates) {
            os << "  cluster " << cert.cluster << " level "
               << cert.level << " (" << cert.rung << "): "
               << cert.claim << " [" << cert.rule << "] witness "
               << cert.variable << " in [" << cert.lo << ", "
               << cert.hi << "] amp " << cert.amp << " bound "
               << cert.errBound << " limit " << cert.limit << "\n";
        }
    }
}

support::json::Value
lintReportToJson(const SensitivityReport& report)
{
    using support::json::Value;
    Value root = Value::object();
    root.set("program", Value::string(report.program));
    root.set("analyzed", Value::boolean(report.analyzed));

    Value findings = Value::array();
    for (const auto& finding : report.findings) {
        Value f = Value::object();
        f.set("rule", Value::string(finding.ruleId));
        f.set("severity",
              Value::string(lintSeverityName(finding.severity)));
        f.set("location", Value::string(finding.location));
        f.set("message", Value::string(finding.message));
        findings.push(std::move(f));
    }
    root.set("findings", std::move(findings));

    Value ranges = Value::array();
    for (const auto& line : report.ranges) {
        Value r = Value::object();
        r.set("variable", Value::string(line.name));
        r.set("lo", Value::number(line.lo));
        r.set("hi", Value::number(line.hi));
        r.set("amp", Value::number(line.amp));
        r.set("widened", Value::boolean(line.widened));
        ranges.push(std::move(r));
    }
    root.set("ladder", Value::string(report.ladder));
    root.set("ranges", std::move(ranges));

    Value clusters = Value::array();
    for (const auto& verdict : report.clusters) {
        Value c = Value::object();
        c.set("index",
              Value::number(static_cast<double>(verdict.cluster)));
        c.set("sensitivity",
              Value::string(sensitivityName(verdict.sensitivity)));
        c.set("floor", Value::string(verdict.floor));
        c.set("score",
              Value::number(static_cast<double>(verdict.score)));
        c.set("certified", Value::boolean(verdict.certified));
        c.set("certified_cap",
              Value::number(
                  static_cast<double>(verdict.certifiedCap)));
        c.set("safe_through",
              Value::number(static_cast<double>(verdict.safeThrough)));
        if (!verdict.capName.empty())
            c.set("cap_rung", Value::string(verdict.capName));
        Value members = Value::array();
        for (const auto& member : verdict.members)
            members.push(Value::string(member));
        c.set("members", std::move(members));
        Value rules = Value::array();
        for (const auto& id : verdict.ruleIds)
            rules.push(Value::string(id));
        c.set("rules", std::move(rules));
        clusters.push(std::move(c));
    }
    root.set("clusters", std::move(clusters));

    Value certs = Value::array();
    for (const auto& cert : report.certificates) {
        Value v = Value::object();
        v.set("rule", Value::string(cert.rule));
        v.set("variable", Value::string(cert.variable));
        v.set("cluster",
              Value::number(static_cast<double>(cert.cluster)));
        v.set("level",
              Value::number(static_cast<double>(cert.level)));
        v.set("rung", Value::string(cert.rung));
        v.set("lo", Value::number(cert.lo));
        v.set("hi", Value::number(cert.hi));
        v.set("amp", Value::number(cert.amp));
        v.set("err_bound", Value::number(cert.errBound));
        v.set("limit", Value::number(cert.limit));
        v.set("claim", Value::string(cert.claim));
        certs.push(std::move(v));
    }
    root.set("certificates", std::move(certs));

    Value summary = Value::object();
    summary.set("keep_double",
                Value::number(static_cast<double>(
                    report.count(Sensitivity::KeepDouble))));
    summary.set("safe_to_narrow",
                Value::number(static_cast<double>(
                    report.count(Sensitivity::SafeToNarrow))));
    summary.set("unknown",
                Value::number(static_cast<double>(
                    report.count(Sensitivity::Unknown))));
    root.set("summary", std::move(summary));
    return root;
}

} // namespace hpcmixp::typeforge
