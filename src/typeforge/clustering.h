#ifndef HPCMIXP_TYPEFORGE_CLUSTERING_H_
#define HPCMIXP_TYPEFORGE_CLUSTERING_H_

/**
 * @file
 * Inter-procedural type-dependence analysis (Typeforge's core).
 *
 * Computes the partitioning of a program's floating-point variables
 * into *clusters*: disjoint sets of variables that must change type
 * together for the program to remain compilable (paper Section II-C).
 *
 * Unification rules, mirroring Typeforge's purely type-based analysis:
 *  - pointer-typed Assign / CallBind / Return edges unify (a pointer
 *    assignment or array-to-pointer binding forces the same base type);
 *  - scalar Assign / CallBind / Return edges do NOT unify (a value can
 *    be implicitly cast, as with `scale` -> `ratio` in Listing 1);
 *  - AddressOf edges always unify (`&val` passed to `double* inout`
 *    forces val to match the parameter's base type);
 *  - SameType edges always unify (template arguments etc.).
 *
 * For Listing 1 this yields exactly the paper's partitioning:
 * {arr, input}, {val, inout}, {scale}, {ratio}, {res}.
 */

#include <cstddef>
#include <vector>

#include "model/program_model.h"

namespace hpcmixp::typeforge {

/**
 * The result of the analysis: every Real variable belongs to exactly
 * one cluster. Clusters are ordered by their smallest member VarId so
 * the numbering is deterministic.
 */
class ClusterSet {
  public:
    /** Number of clusters (the paper's TC). */
    std::size_t clusterCount() const { return clusters_.size(); }

    /** Number of tunable variables (the paper's TV). */
    std::size_t variableCount() const;

    /** Members of cluster @p index, ascending by VarId. */
    const std::vector<model::VarId>& members(std::size_t index) const;

    /** Cluster index of @p var; fatal()s for non-Real variables. */
    std::size_t clusterOf(model::VarId var) const;

    /** True if @p var participates in the tuning space. */
    bool contains(model::VarId var) const;

    /** All clusters, in deterministic order. */
    const std::vector<std::vector<model::VarId>>& clusters() const
    {
        return clusters_;
    }

    // Construction (used by analyze()).
    void build(std::vector<std::vector<model::VarId>> clusters);

  private:
    std::vector<std::vector<model::VarId>> clusters_;
    // Maps VarId -> cluster index; kNone for non-participants.
    std::vector<std::size_t> clusterIndex_;
    static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
};

/** Run the type-dependence analysis over @p program. */
ClusterSet analyze(const model::ProgramModel& program);

/** Union-find over dense indices (exposed for reuse and testing). */
class UnionFind {
  public:
    explicit UnionFind(std::size_t n);

    /** Representative of @p x with path compression. */
    std::size_t find(std::size_t x);

    /** Merge the sets containing @p a and @p b. */
    void unite(std::size_t a, std::size_t b);

    /** Number of elements. */
    std::size_t size() const { return parent_.size(); }

  private:
    std::vector<std::size_t> parent_;
    std::vector<std::size_t> rank_;
};

} // namespace hpcmixp::typeforge

#endif // HPCMIXP_TYPEFORGE_CLUSTERING_H_
