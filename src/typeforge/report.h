#ifndef HPCMIXP_TYPEFORGE_REPORT_H_
#define HPCMIXP_TYPEFORGE_REPORT_H_

/**
 * @file
 * Human-readable reports over a clustering result.
 *
 * Drives the Table II bench (TV / TC per benchmark) and debugging
 * output listing each cluster's members as "function::variable".
 */

#include <ostream>
#include <string>
#include <vector>

#include "model/program_model.h"
#include "typeforge/clustering.h"

namespace hpcmixp::typeforge {

/** Table II row: total variables and total clusters of one program. */
struct ComplexityRow {
    std::string name;
    std::size_t totalVariables = 0;
    std::size_t totalClusters = 0;
};

/** Compute the Table II complexity metrics for @p program. */
ComplexityRow complexity(const model::ProgramModel& program);

/** Qualified name "function::variable" (or "::variable" for globals). */
std::string qualifiedName(const model::ProgramModel& program,
                          model::VarId var);

/** Cluster members as qualified names, deterministic order. */
std::vector<std::vector<std::string>>
clusterNames(const model::ProgramModel& program, const ClusterSet& set);

/** Print a full cluster listing for debugging. */
void printClusters(std::ostream& os, const model::ProgramModel& program,
                   const ClusterSet& set);

} // namespace hpcmixp::typeforge

#endif // HPCMIXP_TYPEFORGE_REPORT_H_
