#include "typeforge/report.h"

namespace hpcmixp::typeforge {

ComplexityRow
complexity(const model::ProgramModel& program)
{
    ClusterSet set = analyze(program);
    return {program.name(), set.variableCount(), set.clusterCount()};
}

std::string
qualifiedName(const model::ProgramModel& program, model::VarId var)
{
    const auto& v = program.variable(var);
    std::string owner;
    if (v.function != model::kInvalidId)
        owner = program.function(v.function).name;
    return owner + "::" + v.name;
}

std::vector<std::vector<std::string>>
clusterNames(const model::ProgramModel& program, const ClusterSet& set)
{
    std::vector<std::vector<std::string>> out;
    out.reserve(set.clusterCount());
    for (std::size_t c = 0; c < set.clusterCount(); ++c) {
        std::vector<std::string> names;
        names.reserve(set.members(c).size());
        for (model::VarId v : set.members(c))
            names.push_back(qualifiedName(program, v));
        out.push_back(std::move(names));
    }
    return out;
}

void
printClusters(std::ostream& os, const model::ProgramModel& program,
              const ClusterSet& set)
{
    os << "program " << program.name() << ": "
       << set.variableCount() << " variables, "
       << set.clusterCount() << " clusters\n";
    auto names = clusterNames(program, set);
    for (std::size_t c = 0; c < names.size(); ++c) {
        os << "  cluster " << c << ": {";
        for (std::size_t i = 0; i < names[c].size(); ++i) {
            if (i)
                os << ", ";
            os << names[c][i];
        }
        os << "}\n";
    }
}

} // namespace hpcmixp::typeforge
