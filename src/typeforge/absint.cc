#include "typeforge/absint.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "runtime/precision.h"
#include "support/logging.h"
#include "typeforge/report.h"

namespace hpcmixp::typeforge {

using model::ArithFact;
using model::ArithOp;
using model::ArithOperand;
using model::DependenceKind;
using model::ProgramModel;
using model::VarId;
using runtime::Precision;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** inf-safe product treating 0 * inf as 0 (an interval endpoint of
 *  zero annihilates regardless of the other side's extent). */
double
prod(double a, double b)
{
    if (a == 0.0 || b == 0.0)
        return 0.0;
    return a * b;
}

} // namespace

Interval
Interval::top()
{
    return {-kInf, kInf};
}

bool
Interval::bounded() const
{
    return std::isfinite(lo) && std::isfinite(hi);
}

double
Interval::magnitude() const
{
    return std::max(std::abs(lo), std::abs(hi));
}

double
Interval::minMagnitude() const
{
    if (lo <= 0.0 && hi >= 0.0)
        return 0.0;
    return std::min(std::abs(lo), std::abs(hi));
}

bool
Interval::contains(double l, double h) const
{
    return lo <= l && h <= hi;
}

Interval
Interval::join(const Interval& o) const
{
    return {std::min(lo, o.lo), std::max(hi, o.hi)};
}

Interval
Interval::add(const Interval& o) const
{
    return {lo + o.lo, hi + o.hi};
}

Interval
Interval::sub(const Interval& o) const
{
    return {lo - o.hi, hi - o.lo};
}

Interval
Interval::mul(const Interval& o) const
{
    double a = prod(lo, o.lo);
    double b = prod(lo, o.hi);
    double c = prod(hi, o.lo);
    double d = prod(hi, o.hi);
    return {std::min(std::min(a, b), std::min(c, d)),
            std::max(std::max(a, b), std::max(c, d))};
}

Interval
Interval::div(const Interval& o) const
{
    if (o.lo <= 0.0 && o.hi >= 0.0)
        return top();
    double a = 1.0 / o.lo;
    double b = 1.0 / o.hi;
    return mul({std::min(a, b), std::max(a, b)});
}

Interval
Interval::exp() const
{
    return {std::exp(lo), std::exp(hi)};
}

Interval
Interval::sqrt() const
{
    return {std::sqrt(std::max(0.0, lo)),
            std::sqrt(std::max(0.0, hi))};
}

Interval
Interval::scale(double s) const
{
    double a = prod(s, lo);
    double b = prod(s, hi);
    return {std::min(a, b), std::max(a, b)};
}

AbsintOptions::AbsintOptions()
    : ladder(runtime::PrecisionLadder::parse(
          "double,float,half,bfloat16"))
{
}

namespace {

/** An abstract value mid-flight: interval + amplification factor +
 *  absolute error mass errMag = kappa * |v| (the first-order absolute
 *  error per unit roundoff). errMag is tracked separately because at
 *  a JOIN the sound bound is max over the defs' error masses, which
 *  is tighter than joined-amp * joined-magnitude: a storage pool may
 *  alias one array with high amplification but tiny values and
 *  another with large values computed almost exactly. */
struct AbsVal {
    Interval range;
    double amp = 0.0;
    double errMag = 0.0;
    bool known = false;
};

AbsVal
joinVal(const AbsVal& a, const AbsVal& b)
{
    if (!a.known)
        return b;
    if (!b.known)
        return a;
    return {a.range.join(b.range), std::max(a.amp, b.amp),
            std::max(a.errMag, b.errMag), true};
}

bool
sameSign(const Interval& a, const Interval& b)
{
    return (a.lo >= 0.0 && b.lo >= 0.0) ||
           (a.hi <= 0.0 && b.hi <= 0.0);
}

/** The fixpoint engine over one program. */
class Interpreter {
  public:
    Interpreter(const ProgramModel& program, const ClusterSet& clusters,
                const AbsintOptions& options)
        : program_(program), clusters_(clusters), options_(options),
          state_(program.variables().size())
    {
    }

    AbsintResult run();

  private:
    AbsVal evalOperand(const ArithOperand& op) const;
    AbsVal evalFact(const ArithFact& fact, const AbsVal& base);
    AbsVal recompute(VarId v);
    void deriveVerdicts(AbsintResult& result);

    const ProgramModel& program_;
    const ClusterSet& clusters_;
    const AbsintOptions& options_;
    std::vector<AbsVal> state_;
    std::vector<bool> widenedVar_ =
        std::vector<bool>(program_.variables().size(), false);
    // Sticky cancellation witnesses: a Sub (or mixed-sign Add) whose
    // operand intervals were bounded and overlapping at evaluation
    // time. Recorded before widening can erase the evidence.
    std::vector<bool> cancelWitness_ =
        std::vector<bool>(program_.variables().size(), false);
};

AbsVal
Interpreter::evalOperand(const ArithOperand& op) const
{
    if (op.isLiteral)
        return {{op.lo, op.hi}, 0.0, 0.0, true};
    return state_[op.var];
}

AbsVal
Interpreter::evalFact(const ArithFact& fact, const AbsVal& base)
{
    AbsVal a = evalOperand(fact.lhs);
    AbsVal b = fact.op == ArithOp::Id || fact.op == ArithOp::Exp ||
                       fact.op == ArithOp::Sqrt
                   ? AbsVal{{0.0, 0.0}, 0.0, 0.0, true}
                   : evalOperand(fact.rhs);
    if (!a.known || !b.known)
        return {};

    AbsVal r;
    r.known = true;
    switch (fact.op) {
    case ArithOp::Id:
        r.range = a.range;
        r.amp = a.amp + 1.0;
        break;
    case ArithOp::Add:
    case ArithOp::Sub: {
        bool subtractive = fact.op == ArithOp::Sub
                               ? true
                               : !sameSign(a.range, b.range);
        r.range = fact.op == ArithOp::Sub ? a.range.sub(b.range)
                                          : a.range.add(b.range);
        if (!subtractive) {
            r.amp = std::max(a.amp, b.amp) + 1.0;
        } else {
            // Operands may (partially) cancel: the relative error of
            // the difference is the operands' scaled by the ratio of
            // their magnitudes to the smallest possible result.
            double minMag = r.range.minMagnitude();
            Interval negB{-b.range.hi, -b.range.lo};
            const Interval& eff =
                fact.op == ArithOp::Sub ? b.range : negB;
            bool overlap = a.range.bounded() && b.range.bounded() &&
                           a.range.lo <= eff.hi && eff.lo <= a.range.hi;
            if (overlap)
                cancelWitness_[fact.dst] = true;
            if (minMag == 0.0) {
                r.amp = kInf;
            } else {
                double blowup =
                    (a.range.magnitude() + b.range.magnitude()) /
                    minMag;
                r.amp = blowup * std::max(a.amp, b.amp) + 1.0;
            }
        }
        break;
    }
    case ArithOp::Mul:
        r.range = a.range.mul(b.range);
        r.amp = a.amp + b.amp + 1.0;
        break;
    case ArithOp::Div:
        r.range = a.range.div(b.range);
        r.amp = r.range.bounded() || a.range.bounded()
                    ? a.amp + b.amp + 1.0
                    : kInf;
        if (b.range.lo <= 0.0 && b.range.hi >= 0.0)
            r.amp = kInf;
        break;
    case ArithOp::Exp:
        r.range = a.range.exp();
        r.amp = a.range.magnitude() * a.amp + 1.0;
        break;
    case ArithOp::Sqrt:
        r.range = a.range.sqrt();
        r.amp = a.amp / 2.0 + 1.0;
        break;
    }
    r.amp += fact.extraAmp;

    if (fact.accumulate) {
        // dst += scale * (lhs op rhs), `trips` times. The per-trip
        // contribution c gives a summed interval [n*c.lo, n*c.hi]
        // (one-sided when c has a fixed sign); an unknown trip count
        // can grow without bound and widens immediately.
        Interval c = r.range.scale(fact.scale);
        double perTripAmp = r.amp;
        Interval init =
            base.known ? base.range : Interval::point(0.0);
        double initAmp = base.known ? base.amp : 0.0;
        if (fact.trips == 0) {
            double lo = c.lo < 0.0 ? -kInf : init.lo;
            double hi = c.hi > 0.0 ? kInf : init.hi;
            r.range = {std::min(lo, init.lo), std::max(hi, init.hi)};
            r.amp = kInf;
        } else {
            double n = static_cast<double>(fact.trips);
            Interval total{prod(n, c.lo), prod(n, c.hi)};
            r.range = init.add(
                {std::min(0.0, total.lo), std::max(0.0, total.hi)});
            bool mixedSign = c.lo < 0.0 && c.hi > 0.0;
            r.amp = mixedSign
                        ? kInf
                        : n + perTripAmp + initAmp;
        }
    }
    r.errMag = prod(r.amp, r.range.magnitude());
    return r;
}

AbsVal
Interpreter::recompute(VarId v)
{
    const auto& var = program_.variable(v);
    if (var.opaque)
        return {Interval::top(), kInf, kInf, true};
    if (widenedVar_[v])
        return {Interval::top(), kInf, kInf, true};
    // An annotated range is authoritative: it claims to cover every
    // value the variable takes, so dependence edges (which may carry
    // informational flows wider than the annotation's contract) and
    // arith facts do not dilute it.
    if (var.range.known) {
        Interval r{var.range.lo, var.range.hi};
        return {r, 1.0, r.magnitude(), true};
    }

    AbsVal next;
    for (const auto& dep : program_.dependences()) {
        VarId from = model::kInvalidId;
        VarId to = model::kInvalidId;
        bool bidir = false;
        switch (dep.kind) {
        case DependenceKind::Assign:
            from = dep.b;
            to = dep.a;
            // Pointer-to-pointer assignment aliases storage (pool
            // carving): element values flow both ways.
            bidir = program_.variable(dep.a).type.isPointer() &&
                    program_.variable(dep.b).type.isPointer();
            break;
        case DependenceKind::CallBind:
            from = dep.a;
            to = dep.b;
            // A pointer argument aliases the parameter: writes in the
            // callee surface in the caller's array and vice versa.
            bidir = program_.variable(dep.a).type.isPointer();
            break;
        case DependenceKind::AddressOf:
            from = dep.a;
            to = dep.b;
            bidir = true;
            break;
        case DependenceKind::Return:
            from = dep.b;
            to = dep.a;
            break;
        case DependenceKind::SameType:
            continue;
        }
        if (to == v && state_[from].known)
            next = joinVal(next, state_[from]);
        if (bidir && from == v && state_[to].known)
            next = joinVal(next, state_[to]);
    }
    for (const auto& fact : program_.arithFacts()) {
        if (fact.dst != v || fact.accumulate)
            continue;
        next = joinVal(next, evalFact(fact, {}));
    }
    // Accumulations fold on top of the joined plain definitions (the
    // accumulator's initial value), defaulting to zero-init.
    for (const auto& fact : program_.arithFacts()) {
        if (fact.dst != v || !fact.accumulate)
            continue;
        AbsVal acc = evalFact(fact, next);
        if (acc.known)
            next = acc;
    }
    return next;
}

void
Interpreter::deriveVerdicts(AbsintResult& result)
{
    const auto& ladder = options_.ladder;
    double threshold = options_.threshold;

    // Per-variable per-rung classification.
    std::size_t nvars = program_.variables().size();
    std::vector<std::uint8_t> cap(nvars, kNoCap);
    std::vector<std::uint8_t> safeThrough(nvars, 0);
    std::vector<bool> certified(nvars, false);

    for (VarId v : program_.realVariables()) {
        const AbsVal& s = state_[v];
        if (cancelWitness_[v]) {
            AbsintFinding f;
            f.ruleId = "MP009-proven-cancellation";
            f.var = v;
            f.level = 0;
            f.detail = "operand intervals overlap; the difference can "
                       "lose every significant digit";
            result.findings.push_back(std::move(f));
        }
        if (!s.known || !s.range.bounded())
            continue;
        double mag = s.range.magnitude();
        double minMag = s.range.minMagnitude();
        certified[v] = std::isfinite(s.errMag);

        bool safeRun = true;
        for (std::size_t l = 1; l <= ladder.maxLevel(); ++l) {
            Precision p = ladder.at(l);
            bool overflow = mag > runtime::finiteMax(p);
            bool flushed =
                minMag > 0.0 && mag < runtime::minNormal(p);
            double bound = std::isfinite(s.errMag)
                               ? s.errMag * runtime::unitRoundoff(p)
                               : kInf;
            bool budget =
                std::isfinite(s.errMag) && bound > threshold;
            if ((overflow || flushed) && cap[v] == kNoCap) {
                cap[v] = static_cast<std::uint8_t>(l - 1);
                AbsintFinding f;
                f.ruleId = "MP007-range-overflow-at-rung";
                f.var = v;
                f.level = l;
                std::ostringstream os;
                os << "interval [" << s.range.lo << ", " << s.range.hi
                   << "] " << (overflow ? "exceeds" : "flushes below")
                   << " the " << runtime::precisionName(p)
                   << " finite range";
                f.detail = os.str();
                result.findings.push_back(std::move(f));
            } else if (budget && cap[v] == kNoCap) {
                cap[v] = static_cast<std::uint8_t>(l - 1);
                AbsintFinding f;
                f.ruleId = "MP008-error-budget-exceeded";
                f.var = v;
                f.level = l;
                std::ostringstream os;
                os << "first-order bound " << bound << " at "
                   << runtime::precisionName(p)
                   << " exceeds the quality threshold " << threshold;
                f.detail = os.str();
                result.findings.push_back(std::move(f));
            }
            bool safeHere = !overflow && !flushed &&
                            std::isfinite(s.errMag) &&
                            bound <= threshold;
            if (safeRun && safeHere)
                safeThrough[v] = static_cast<std::uint8_t>(l);
            else
                safeRun = false;
        }
    }

    // Cluster aggregation + certificates.
    for (std::size_t c = 0; c < clusters_.clusterCount(); ++c) {
        ClusterCaps caps;
        caps.cluster = c;
        caps.certified = !clusters_.members(c).empty();
        std::uint8_t minSafe = 255;
        for (VarId v : clusters_.members(c)) {
            caps.certifiedCap = std::min(caps.certifiedCap, cap[v]);
            minSafe = std::min(
                minSafe, certified[v] ? safeThrough[v]
                                      : std::uint8_t{0});
            caps.certified = caps.certified && certified[v];
        }
        caps.safeThrough = caps.certified ? minSafe : 0;

        if (caps.certified) {
            for (std::size_t l = 1; l <= ladder.maxLevel(); ++l) {
                Precision p = ladder.at(l);
                // Witness: the member with the worst (largest) bound
                // at this rung; ties break to the lowest VarId.
                VarId witness = clusters_.members(c).front();
                double worst = -1.0;
                for (VarId v : clusters_.members(c)) {
                    const AbsVal& s = state_[v];
                    double bound =
                        s.errMag * runtime::unitRoundoff(p);
                    bool overMax =
                        s.range.magnitude() > runtime::finiteMax(p);
                    if (overMax)
                        bound = kInf;
                    if (bound > worst) {
                        worst = bound;
                        witness = v;
                    }
                }
                const AbsVal& w = state_[witness];
                double mag = w.range.magnitude();
                // The recorded amplification is the *effective* one
                // at the witness magnitude, errMag / |v|, so that
                // checkCertificate() can re-derive the bound from
                // (lo, hi, amp, rung) alone. They differ when the
                // state is a join over defs with different error
                // masses (pool carving).
                double effAmp = mag > 0.0 ? w.errMag / mag : 0.0;
                double bound = w.errMag * runtime::unitRoundoff(p);
                RungCertificate cert;
                cert.variable = qualifiedName(program_, witness);
                cert.cluster = c;
                cert.level = l;
                cert.rung = runtime::precisionName(p);
                cert.lo = w.range.lo;
                cert.hi = w.range.hi;
                cert.amp = effAmp;
                cert.errBound = bound;
                if (mag > runtime::finiteMax(p) ||
                    (w.range.minMagnitude() > 0.0 &&
                     mag < runtime::minNormal(p))) {
                    cert.rule = "MP007-range-overflow-at-rung";
                    cert.limit = runtime::finiteMax(p);
                    cert.claim = "unsafe";
                } else if (bound > threshold) {
                    cert.rule = "MP008-error-budget-exceeded";
                    cert.limit = threshold;
                    cert.claim = "unsafe";
                } else {
                    cert.rule = "safe";
                    cert.limit = threshold;
                    cert.claim = "safe";
                }
                result.certificates.push_back(std::move(cert));
            }
        }
        result.clusters.push_back(caps);
    }
}

AbsintResult
Interpreter::run()
{
    AbsintResult result;
    std::size_t pass = 0;
    bool changed = true;
    while (changed && pass < options_.maxPasses) {
        ++pass;
        changed = false;
        std::vector<bool> moved(state_.size(), false);
        for (const auto& var : program_.variables()) {
            if (var.type.base != model::BaseType::Real)
                continue;
            AbsVal next = recompute(var.id);
            AbsVal joined = joinVal(state_[var.id], next);
            const AbsVal& cur = state_[var.id];
            bool delta = joined.known != cur.known ||
                         (joined.known &&
                          (joined.range.lo != cur.range.lo ||
                           joined.range.hi != cur.range.hi ||
                           joined.amp != cur.amp ||
                           joined.errMag != cur.errMag));
            if (delta) {
                state_[var.id] = joined;
                moved[var.id] = true;
                changed = true;
            }
        }
        if (changed && pass >= options_.wideningDelay) {
            // Still-growing variables sit on a loop-carried cycle the
            // trip counts do not bound: widen them to top so the next
            // pass is the last in which they can move.
            for (std::size_t v = 0; v < state_.size(); ++v) {
                if (!moved[v] || widenedVar_[v])
                    continue;
                widenedVar_[v] = true;
                state_[v] = {Interval::top(), kInf, kInf, true};
                result.widened = true;
            }
        }
    }
    result.passes = pass;

    result.vars.resize(state_.size());
    for (std::size_t v = 0; v < state_.size(); ++v) {
        result.vars[v].range = state_[v].range;
        result.vars[v].amp = state_[v].amp;
        result.vars[v].known = state_[v].known;
        result.vars[v].widened = widenedVar_[v];
    }
    deriveVerdicts(result);
    return result;
}

} // namespace

AbsintResult
interpret(const model::ProgramModel& program,
          const ClusterSet& clusters, const AbsintOptions& options)
{
    return Interpreter(program, clusters, options).run();
}

bool
checkCertificate(const RungCertificate& cert)
{
    Precision p;
    if (cert.rung == "double")
        p = Precision::Float64;
    else if (cert.rung == "float")
        p = Precision::Float32;
    else if (cert.rung == "half")
        p = Precision::Float16;
    else if (cert.rung == "bfloat16")
        p = Precision::BFloat16;
    else
        return false;
    if (!(cert.lo <= cert.hi) || cert.amp < 0.0)
        return false;

    Interval range{cert.lo, cert.hi};
    double mag = range.magnitude();
    double bound = cert.amp * runtime::unitRoundoff(p) * mag;
    // The recorded bound must be re-derivable from the recorded
    // operands (tolerating the round-off of the certificate's own
    // arithmetic).
    if (std::isfinite(bound) &&
        std::abs(bound - cert.errBound) >
            1e-9 * std::max(1.0, std::abs(bound)))
        return false;

    bool overflow = mag > runtime::finiteMax(p);
    bool flushed = range.minMagnitude() > 0.0 &&
                   mag < runtime::minNormal(p);
    if (cert.rule == "MP007-range-overflow-at-rung")
        return cert.claim == "unsafe" && (overflow || flushed);
    if (cert.rule == "MP008-error-budget-exceeded")
        return cert.claim == "unsafe" && !overflow &&
               bound > cert.limit;
    if (cert.rule == "safe")
        return cert.claim == "safe" && !overflow && !flushed &&
               std::isfinite(bound) && bound <= cert.limit;
    return false;
}

std::vector<CrossCheckViolation>
crossCheckRanges(const model::ProgramModel& program,
                 const AbsintResult& result,
                 const std::vector<ObservedRange>& observed)
{
    std::vector<CrossCheckViolation> violations;
    for (const auto& obs : observed) {
        // The key's static claim is the join over every variable
        // bound to it: pool carving maps several arrays to one key,
        // and the observed range is the union over the pool.
        bool any = false;
        bool top = false;
        Interval claim{0.0, 0.0};
        VarId witness = model::kInvalidId;
        for (const auto& var : program.variables()) {
            if (var.bindKey != obs.bindKey ||
                var.type.base != model::BaseType::Real)
                continue;
            const VarAbs& s = result.vars[var.id];
            if (!s.known || !s.range.bounded()) {
                top = true; // claims everything
                continue;
            }
            claim = any ? claim.join(s.range) : s.range;
            if (!any)
                witness = var.id;
            any = true;
        }
        if (!any || top || claim.contains(obs.lo, obs.hi))
            continue;
        CrossCheckViolation v;
        v.bindKey = obs.bindKey;
        v.var = witness;
        v.observedLo = obs.lo;
        v.observedHi = obs.hi;
        v.staticLo = claim.lo;
        v.staticHi = claim.hi;
        violations.push_back(std::move(v));
    }
    return violations;
}

} // namespace hpcmixp::typeforge
