#ifndef HPCMIXP_TYPEFORGE_LINT_H_
#define HPCMIXP_TYPEFORGE_LINT_H_

/**
 * @file
 * mixp-lint: static precision-sensitivity analysis.
 *
 * The paper's pipeline is purely dynamic — Typeforge only partitions
 * variables into type-compatible clusters, and every precision decision
 * is discovered by running configurations. mixp-lint adds the static
 * prior (DESIGN.md Section 11): a catalog of rules over the dataflow
 * facts recorded on the ProgramModel (model::DataflowFact) scores every
 * variable, clusters aggregate their members' scores, and each cluster
 * is classified as
 *
 *  - KeepDouble:   strong numeric-sensitivity signals (reduction
 *                  accumulators, cancellation + division chains) — the
 *                  search should not waste evaluations lowering it;
 *  - SafeToNarrow: analyzed and clean — a good first candidate for
 *                  Float32;
 *  - Unknown:      no dataflow facts available (unannotated model) or
 *                  weak signals only.
 *
 * The verdicts feed search::StaticPrior, which prunes KeepDouble
 * clusters out of the enumerated space and seeds search with the
 * SafeToNarrow mask.
 */

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "model/program_model.h"
#include "support/json.h"
#include "typeforge/absint.h"
#include "typeforge/clustering.h"

namespace hpcmixp::typeforge {

/** Cluster classification produced by the lint rules. */
enum class Sensitivity {
    KeepDouble,   ///< strong signals: pin to double during search
    SafeToNarrow, ///< analyzed, no risk signals: narrow first
    Unknown,      ///< unannotated model or weak signals only
};

/** Stable lowercase name ("keep-double", ...). */
const char* sensitivityName(Sensitivity s);

/**
 * Precision floor implied by a verdict under a multi-rung ladder:
 * the lowest rung the search may bind the cluster to. KeepDouble
 * floors at "double" (pinned), Unknown at "float" (the classic
 * conservative narrowing), SafeToNarrow at "half" (any 16-bit rung).
 * The search layer maps these to StaticPrior level caps.
 */
const char* sensitivityFloor(Sensitivity s);

/** Severity of one lint rule. */
enum class LintSeverity { Info, Warning, Critical };

/** Stable lowercase name ("info", "warning", "critical"). */
const char* lintSeverityName(LintSeverity s);

/**
 * One rule of the catalog: a dataflow fact, a stable id, and the
 * weight it contributes to its cluster's sensitivity score.
 */
struct LintRule {
    const char* id;            ///< stable id, e.g. "MP001-accumulator"
    LintSeverity severity;
    model::DataflowFact fact;  ///< the fact that triggers the rule
    int weight;                ///< score contribution (0 = advisory)
    const char* summary;       ///< one-line human description
};

/** The fixed rule catalog, in id order. */
const std::vector<LintRule>& lintRules();

/**
 * One rule of the *certified* catalog: fired not by an annotated
 * dataflow fact but by the abstract-interpretation pass (absint.h),
 * so every firing is backed by a machine-checkable derivation. Kept
 * out of lintRules() because those are keyed by DataflowFact.
 */
struct CertifiedRule {
    const char* id;      ///< "MP007-range-overflow-at-rung", ...
    LintSeverity severity;
    int weight;          ///< score contribution, as for LintRule
    const char* summary;
};

/** The fixed certified-rule catalog (MP007..MP009), in id order. */
const std::vector<CertifiedRule>& certifiedRules();

/** Cluster score at or above which a cluster is KeepDouble. */
inline constexpr int kKeepDoubleScore = 3;

/** One rule firing on one variable. */
struct LintFinding {
    std::string ruleId;
    LintSeverity severity = LintSeverity::Info;
    model::VarId var = model::kInvalidId;
    std::string location; ///< "module:function:variable"
    std::string message;
};

/** Verdict for one Typeforge cluster. */
struct ClusterVerdict {
    std::size_t cluster = 0; ///< index into the ClusterSet
    Sensitivity sensitivity = Sensitivity::Unknown;
    std::string floor;       ///< sensitivityFloor(sensitivity)
    int score = 0;
    std::vector<std::string> members; ///< qualified names
    std::vector<std::string> ruleIds; ///< rules firing in this cluster

    /** Certified per-rung verdict from the absint pass: deepest
     *  ladder level the cluster may take (kNoCap = unconstrained). */
    std::uint8_t certifiedCap = kNoCap;
    /** Deepest level the cluster is *proven* safe through (only a
     *  real claim when certified is true). */
    std::uint8_t safeThrough = 0;
    /** Every member had a bounded interval and finite amplification. */
    bool certified = false;
    /** Rung name of certifiedCap ("" when unconstrained). */
    std::string capName;
};

/** One statically derived variable range (for the report). */
struct VarRangeLine {
    std::string name; ///< qualified name
    double lo = 0.0;
    double hi = 0.0;
    double amp = 0.0; ///< first-order amplification factor
    bool widened = false;
};

/** Full lint result for one program. */
struct SensitivityReport {
    std::string program;
    bool analyzed = false; ///< dataflow facts were available
    std::vector<LintFinding> findings;
    std::vector<ClusterVerdict> clusters;

    /** Ladder the certified verdicts were issued against. */
    std::string ladder;
    /** Statically derived ranges (empty when nothing is annotated). */
    std::vector<VarRangeLine> ranges;
    /** Machine-checkable per-rung certificates. */
    std::vector<RungCertificate> certificates;

    /** Number of clusters with verdict @p s. */
    std::size_t count(Sensitivity s) const;

    /** Number of findings at severity @p s. */
    std::size_t countSeverity(LintSeverity s) const;
};

/** Run the rules over @p program with a fresh clustering. */
SensitivityReport lint(const model::ProgramModel& program);

/** Run the rules against an existing clustering. */
SensitivityReport lint(const model::ProgramModel& program,
                       const ClusterSet& clusters);

/** Run the rules with explicit absint options (ladder, threshold). */
SensitivityReport lint(const model::ProgramModel& program,
                       const ClusterSet& clusters,
                       const AbsintOptions& options);

/** Render the fixed-format text report (golden-file stable). When
 *  @p ranges is set the derived per-variable interval table is
 *  included; @p certificates adds the per-rung certificate table. */
void printLintReport(std::ostream& os,
                     const SensitivityReport& report,
                     bool ranges = false,
                     bool certificates = false);

/** Render the report as a JSON document. */
support::json::Value lintReportToJson(const SensitivityReport& report);

} // namespace hpcmixp::typeforge

#endif // HPCMIXP_TYPEFORGE_LINT_H_
