#ifndef HPCMIXP_TYPEFORGE_LINT_H_
#define HPCMIXP_TYPEFORGE_LINT_H_

/**
 * @file
 * mixp-lint: static precision-sensitivity analysis.
 *
 * The paper's pipeline is purely dynamic — Typeforge only partitions
 * variables into type-compatible clusters, and every precision decision
 * is discovered by running configurations. mixp-lint adds the static
 * prior (DESIGN.md Section 11): a catalog of rules over the dataflow
 * facts recorded on the ProgramModel (model::DataflowFact) scores every
 * variable, clusters aggregate their members' scores, and each cluster
 * is classified as
 *
 *  - KeepDouble:   strong numeric-sensitivity signals (reduction
 *                  accumulators, cancellation + division chains) — the
 *                  search should not waste evaluations lowering it;
 *  - SafeToNarrow: analyzed and clean — a good first candidate for
 *                  Float32;
 *  - Unknown:      no dataflow facts available (unannotated model) or
 *                  weak signals only.
 *
 * The verdicts feed search::StaticPrior, which prunes KeepDouble
 * clusters out of the enumerated space and seeds search with the
 * SafeToNarrow mask.
 */

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "model/program_model.h"
#include "support/json.h"
#include "typeforge/clustering.h"

namespace hpcmixp::typeforge {

/** Cluster classification produced by the lint rules. */
enum class Sensitivity {
    KeepDouble,   ///< strong signals: pin to double during search
    SafeToNarrow, ///< analyzed, no risk signals: narrow first
    Unknown,      ///< unannotated model or weak signals only
};

/** Stable lowercase name ("keep-double", ...). */
const char* sensitivityName(Sensitivity s);

/**
 * Precision floor implied by a verdict under a multi-rung ladder:
 * the lowest rung the search may bind the cluster to. KeepDouble
 * floors at "double" (pinned), Unknown at "float" (the classic
 * conservative narrowing), SafeToNarrow at "half" (any 16-bit rung).
 * The search layer maps these to StaticPrior level caps.
 */
const char* sensitivityFloor(Sensitivity s);

/** Severity of one lint rule. */
enum class LintSeverity { Info, Warning, Critical };

/** Stable lowercase name ("info", "warning", "critical"). */
const char* lintSeverityName(LintSeverity s);

/**
 * One rule of the catalog: a dataflow fact, a stable id, and the
 * weight it contributes to its cluster's sensitivity score.
 */
struct LintRule {
    const char* id;            ///< stable id, e.g. "MP001-accumulator"
    LintSeverity severity;
    model::DataflowFact fact;  ///< the fact that triggers the rule
    int weight;                ///< score contribution (0 = advisory)
    const char* summary;       ///< one-line human description
};

/** The fixed rule catalog, in id order. */
const std::vector<LintRule>& lintRules();

/** Cluster score at or above which a cluster is KeepDouble. */
inline constexpr int kKeepDoubleScore = 3;

/** One rule firing on one variable. */
struct LintFinding {
    std::string ruleId;
    LintSeverity severity = LintSeverity::Info;
    model::VarId var = model::kInvalidId;
    std::string location; ///< "module:function:variable"
    std::string message;
};

/** Verdict for one Typeforge cluster. */
struct ClusterVerdict {
    std::size_t cluster = 0; ///< index into the ClusterSet
    Sensitivity sensitivity = Sensitivity::Unknown;
    std::string floor;       ///< sensitivityFloor(sensitivity)
    int score = 0;
    std::vector<std::string> members; ///< qualified names
    std::vector<std::string> ruleIds; ///< rules firing in this cluster
};

/** Full lint result for one program. */
struct SensitivityReport {
    std::string program;
    bool analyzed = false; ///< dataflow facts were available
    std::vector<LintFinding> findings;
    std::vector<ClusterVerdict> clusters;

    /** Number of clusters with verdict @p s. */
    std::size_t count(Sensitivity s) const;
};

/** Run the rules over @p program with a fresh clustering. */
SensitivityReport lint(const model::ProgramModel& program);

/** Run the rules against an existing clustering. */
SensitivityReport lint(const model::ProgramModel& program,
                       const ClusterSet& clusters);

/** Render the fixed-format text report (golden-file stable). */
void printLintReport(std::ostream& os,
                     const SensitivityReport& report);

/** Render the report as a JSON document. */
support::json::Value lintReportToJson(const SensitivityReport& report);

} // namespace hpcmixp::typeforge

#endif // HPCMIXP_TYPEFORGE_LINT_H_
