#include "support/timer.h"

#include <algorithm>
#include <numeric>

#include "support/logging.h"

namespace hpcmixp::support {

double
trimmedMean(std::vector<double> samples)
{
    HPCMIXP_ASSERT(!samples.empty(), "trimmedMean over empty sample set");
    if (samples.size() >= 3) {
        std::sort(samples.begin(), samples.end());
        samples.erase(samples.begin());
        samples.pop_back();
    }
    double sum = std::accumulate(samples.begin(), samples.end(), 0.0);
    return sum / static_cast<double>(samples.size());
}

TimingResult
repeatTimed(const std::function<void()>& fn, std::size_t reps)
{
    HPCMIXP_ASSERT(reps >= 1, "repeatTimed requires at least one rep");
    TimingResult result;
    result.samples.reserve(reps);
    for (std::size_t i = 0; i < reps; ++i) {
        WallTimer timer;
        fn();
        result.samples.push_back(timer.seconds());
    }
    auto [mn, mx] =
        std::minmax_element(result.samples.begin(), result.samples.end());
    result.minSeconds = *mn;
    result.maxSeconds = *mx;
    result.meanSeconds = trimmedMean(result.samples);
    return result;
}

} // namespace hpcmixp::support
