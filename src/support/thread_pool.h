#ifndef HPCMIXP_SUPPORT_THREAD_POOL_H_
#define HPCMIXP_SUPPORT_THREAD_POOL_H_

/**
 * @file
 * Fixed-size thread pool.
 *
 * Substitutes for the paper's SLURM cluster scheduling: the harness
 * offloads each application/algorithm analysis job to a pool worker,
 * and SearchContext::evaluateBatch offloads in-search configuration
 * evaluations (DESIGN.md, Sections 2 and 9).
 */

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace hpcmixp::support {

/** A fixed-size pool of worker threads executing queued jobs in FIFO order. */
class ThreadPool {
  public:
    /** What happens to still-queued jobs when the pool shuts down. */
    enum class Shutdown {
        Drain,  ///< run every queued job to completion, then join
        Cancel, ///< drop queued jobs (their futures break), then join
    };

    /** Start @p workers threads (0 means hardware concurrency). */
    explicit ThreadPool(std::size_t workers);

    /** Equivalent to shutdown(Shutdown::Drain). */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Enqueue a job; the future resolves when it completes. */
    std::future<void> submit(std::function<void()> job);

    /** Block until the queue is empty and all workers are idle. */
    void waitIdle();

    /**
     * Stop the pool and join all workers. Drain runs every queued job
     * first; Cancel discards queued (not yet started) jobs, whose
     * futures then throw std::future_error(broken_promise). Jobs
     * already running always finish. Idempotent; submit() after
     * shutdown is a programming error.
     */
    void shutdown(Shutdown mode);

    /** Number of worker threads (0 once shut down). */
    std::size_t workerCount() const { return threads_.size(); }

    /** Jobs discarded by a Cancel shutdown. */
    std::size_t cancelledCount() const { return cancelled_; }

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::deque<std::packaged_task<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable idleCv_;
    std::size_t active_ = 0;
    std::size_t cancelled_ = 0;
    bool stop_ = false;
};

} // namespace hpcmixp::support

#endif // HPCMIXP_SUPPORT_THREAD_POOL_H_
