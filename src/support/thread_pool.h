#ifndef HPCMIXP_SUPPORT_THREAD_POOL_H_
#define HPCMIXP_SUPPORT_THREAD_POOL_H_

/**
 * @file
 * Fixed-size thread pool.
 *
 * Substitutes for the paper's SLURM cluster scheduling: the harness
 * offloads each application/algorithm analysis job to a pool worker
 * (DESIGN.md, Section 2).
 */

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace hpcmixp::support {

/** A fixed-size pool of worker threads executing queued jobs in FIFO order. */
class ThreadPool {
  public:
    /** Start @p workers threads (0 means hardware concurrency). */
    explicit ThreadPool(std::size_t workers);

    /** Drains outstanding work, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Enqueue a job; the future resolves when it completes. */
    std::future<void> submit(std::function<void()> job);

    /** Block until the queue is empty and all workers are idle. */
    void waitIdle();

    /** Number of worker threads. */
    std::size_t workerCount() const { return threads_.size(); }

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::deque<std::packaged_task<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable idleCv_;
    std::size_t active_ = 0;
    bool stop_ = false;
};

} // namespace hpcmixp::support

#endif // HPCMIXP_SUPPORT_THREAD_POOL_H_
