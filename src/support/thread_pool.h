#ifndef HPCMIXP_SUPPORT_THREAD_POOL_H_
#define HPCMIXP_SUPPORT_THREAD_POOL_H_

/**
 * @file
 * Fixed-size thread pool with work-stealing scheduling.
 *
 * Substitutes for the paper's SLURM cluster scheduling: the harness
 * offloads each application/algorithm analysis job to a pool worker,
 * and SearchContext::evaluateBatch offloads in-search configuration
 * evaluations (DESIGN.md, Sections 2, 9 and 15).
 *
 * Jobs are dealt round-robin onto per-worker FIFO deques (replacing
 * the original single mutex-guarded queue, whose one lock every
 * submit and pop had to cross). Two scheduling modes differ only in
 * what an idle worker does:
 *
 *  - Fifo: static dealing. Each job runs on the worker it was dealt
 *    to, in submission order for that worker. An idle worker sleeps
 *    even while a sibling's deque is loaded, so uneven job latencies
 *    convoy behind the unluckiest worker — kept as the ablation
 *    baseline that shows what stealing buys.
 *  - Steal (the default): same dealing, but a worker whose own deque
 *    is empty raids the back of a loaded sibling's deque (Chase–Lev
 *    ends: owner front, thief back, so they only collide on a deque
 *    holding one job). The deques are mutex-per-deque rather than
 *    lock-free — honest about what it is, trivially TSan-clean, and
 *    each lock is touched by 1/N of the traffic the old global
 *    queue's was.
 *
 * Result order never depends on the mode: submit() returns a future
 * per job, and callers that need deterministic aggregation (e.g.
 * evaluateBatch's commit-in-submission-order rule) impose it when they
 * harvest the futures.
 */

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hpcmixp::support {

/** A fixed-size pool of worker threads executing queued jobs. */
class ThreadPool {
  public:
    /** What happens to still-queued jobs when the pool shuts down. */
    enum class Shutdown {
        Drain,  ///< run every queued job to completion, then join
        Cancel, ///< drop queued jobs (their futures break), then join
    };

    /** How queued jobs are distributed to workers (file comment). */
    enum class Scheduling {
        Fifo,  ///< static round-robin dealing, no stealing
        Steal, ///< same dealing plus work stealing (default)
    };

    /** Start @p workers threads (0 means hardware concurrency). */
    explicit ThreadPool(std::size_t workers,
                        Scheduling scheduling = Scheduling::Steal);

    /** Equivalent to shutdown(Shutdown::Drain). */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Enqueue a job; the future resolves when it completes. */
    std::future<void> submit(std::function<void()> job);

    /** Block until the queue is empty and all workers are idle. */
    void waitIdle();

    /**
     * Stop the pool and join all workers. Drain runs every queued job
     * first; Cancel discards queued (not yet started) jobs, whose
     * futures then throw std::future_error(broken_promise). Jobs
     * already running always finish. Idempotent; submit() after
     * shutdown is a programming error.
     */
    void shutdown(Shutdown mode);

    /** Number of worker threads (0 once shut down). */
    std::size_t workerCount() const { return threads_.size(); }

    /** Jobs discarded by a Cancel shutdown. */
    std::size_t cancelledCount() const { return cancelled_; }

    /** The scheduling mode this pool was built with. */
    Scheduling scheduling() const { return scheduling_; }

    /** Jobs executed by a thread other than the one whose deque they
     *  were dealt to (always 0 under Fifo). */
    std::size_t stealCount() const
    {
        return steals_.load(std::memory_order_relaxed);
    }

  private:
    /** One worker's deque; owner pops the front, thieves the back. */
    struct WorkerQueue {
        std::mutex mutex;
        std::deque<std::packaged_task<void()>> jobs;
    };

    void workerLoop(std::size_t self);
    bool popTask(std::size_t self, std::packaged_task<void()>& task);
    bool ownQueueEmpty(std::size_t self);
    void noteIdleIfDone();

    const Scheduling scheduling_;
    std::vector<std::thread> threads_;
    std::vector<std::unique_ptr<WorkerQueue>> queues_;

    std::mutex mutex_; ///< stop flag, sleep/wake, idle tracking
    std::condition_variable cv_;
    std::condition_variable idleCv_;
    std::atomic<std::size_t> pending_{0}; ///< queued, not yet started
    std::atomic<std::size_t> active_{0};  ///< currently running
    std::atomic<std::size_t> sleepers_{0}; ///< workers waiting on cv_
    std::atomic<std::size_t> steals_{0};
    std::atomic<std::size_t> nextQueue_{0}; ///< round-robin dealer
    std::size_t cancelled_ = 0;
    /// Written under mutex_; atomic so the lock-free submit fast path
    /// and sleep predicates may read it without the lock.
    std::atomic<bool> stop_{false};
};

} // namespace hpcmixp::support

#endif // HPCMIXP_SUPPORT_THREAD_POOL_H_
