#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"

namespace hpcmixp::support {

double
mean(const std::vector<double>& samples)
{
    if (samples.empty())
        fatal("stats: mean of an empty sample set");
    double sum = 0.0;
    for (double v : samples)
        sum += v;
    return sum / static_cast<double>(samples.size());
}

double
median(std::vector<double> samples)
{
    if (samples.empty())
        fatal("stats: median of an empty sample set");
    std::sort(samples.begin(), samples.end());
    std::size_t n = samples.size();
    if (n % 2 == 1)
        return samples[n / 2];
    return 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

double
stddev(const std::vector<double>& samples)
{
    if (samples.size() < 2)
        return 0.0;
    double m = mean(samples);
    double acc = 0.0;
    for (double v : samples) {
        double d = v - m;
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(samples.size() - 1));
}

SampleStats
summarize(const std::vector<double>& samples)
{
    if (samples.empty())
        fatal("stats: summarize of an empty sample set");
    SampleStats stats;
    stats.count = samples.size();
    stats.mean = mean(samples);
    stats.median = median(samples);
    stats.stddev = stddev(samples);
    auto [mn, mx] = std::minmax_element(samples.begin(), samples.end());
    stats.min = *mn;
    stats.max = *mx;
    return stats;
}

} // namespace hpcmixp::support
