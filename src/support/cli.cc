#include "support/cli.h"

#include "support/logging.h"
#include "support/string_util.h"

namespace hpcmixp::support {

CommandLine::CommandLine(int argc, const char* const* argv)
{
    program_ = argc > 0 ? argv[0] : "";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (!startsWith(arg, "--")) {
            positional_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            std::string name = body.substr(0, eq);
            if (name.empty())
                fatal(strCat("malformed flag '", arg, "'"));
            flags_[name] = body.substr(eq + 1);
        } else if (i + 1 < argc && !startsWith(argv[i + 1], "--")) {
            flags_[body] = argv[++i];
        } else {
            flags_[body] = "";
        }
    }
}

bool
CommandLine::has(const std::string& name) const
{
    return flags_.count(name) > 0;
}

std::string
CommandLine::getString(const std::string& name,
                       const std::string& fallback) const
{
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : it->second;
}

long
CommandLine::getLong(const std::string& name, long fallback) const
{
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback
                              : parseLong(it->second, "--" + name);
}

double
CommandLine::getDouble(const std::string& name, double fallback) const
{
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback
                              : parseDouble(it->second, "--" + name);
}

bool
CommandLine::getBool(const std::string& name, bool fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    if (it->second.empty())
        return true;
    std::string v = toLower(it->second);
    return v == "1" || v == "true" || v == "yes" || v == "on";
}

} // namespace hpcmixp::support
