#ifndef HPCMIXP_SUPPORT_STRING_UTIL_H_
#define HPCMIXP_SUPPORT_STRING_UTIL_H_

/**
 * @file
 * Small string helpers shared across the suite.
 */

#include <string>
#include <string_view>
#include <vector>

namespace hpcmixp::support {

/** Strip leading/trailing whitespace. */
std::string trim(std::string_view s);

/** Split on a delimiter character; empty fields are kept. */
std::vector<std::string> split(std::string_view s, char delim);

/** Split into non-empty whitespace-separated tokens. */
std::vector<std::string> splitWhitespace(std::string_view s);

/** True if @p s begins with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** True if @p s ends with @p suffix. */
bool endsWith(std::string_view s, std::string_view suffix);

/** Lower-case ASCII copy. */
std::string toLower(std::string_view s);

/** Join items with a separator. */
std::string join(const std::vector<std::string>& items,
                 std::string_view sep);

/** Parse a double; fatal()s with context on malformed input. */
double parseDouble(std::string_view s, std::string_view what);

/** Parse a non-negative integer; fatal()s with context on malformed input. */
long parseLong(std::string_view s, std::string_view what);

/** Format a double in compact scientific form, e.g. "1.1e-07"; "-" for 0. */
std::string sciCompact(double v);

} // namespace hpcmixp::support

#endif // HPCMIXP_SUPPORT_STRING_UTIL_H_
