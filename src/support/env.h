#ifndef HPCMIXP_SUPPORT_ENV_H_
#define HPCMIXP_SUPPORT_ENV_H_

/**
 * @file
 * Environment-variable knobs shared across benches and tests.
 *
 *  - HPCMIXP_QUICK=1  : shrink problem sizes/budgets for smoke runs.
 *  - HPCMIXP_REPS=<n> : override the timing repetition count.
 */

#include <string>

namespace hpcmixp::support {

/** Value of an environment variable, or @p fallback if unset/empty. */
std::string envString(const char* name, const std::string& fallback);

/** Integer environment variable, or @p fallback if unset/malformed. */
long envLong(const char* name, long fallback);

/** True when HPCMIXP_QUICK is set to a truthy value. */
bool quickMode();

/** Timing repetitions: HPCMIXP_REPS, else @p fallback. */
std::size_t timingReps(std::size_t fallback);

} // namespace hpcmixp::support

#endif // HPCMIXP_SUPPORT_ENV_H_
