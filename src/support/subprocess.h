#ifndef HPCMIXP_SUPPORT_SUBPROCESS_H_
#define HPCMIXP_SUPPORT_SUBPROCESS_H_

/**
 * @file
 * Fork-based sandbox execution (DESIGN.md, Section 13).
 *
 * runInFork() runs a callable in a forked child process and reaps it,
 * so a body that SIGSEGVs, aborts, spins forever or exits nonzero is
 * contained: the parent observes a classified ChildOutcome instead of
 * dying with the child. The parent enforces an optional wall-clock
 * deadline for real — a child still running when it expires is
 * SIGKILLed and reported as KilledOnDeadline.
 *
 * The child communicates results back through side channels prepared
 * *before* the fork (see ShmArena); runInFork itself only transports
 * control flow. The child never returns from runInFork: its body runs
 * to completion and the child _exit()s (no atexit handlers, no stdio
 * flush of buffers inherited from the parent), or it dies by signal.
 *
 * fork() without exec() means the child shares the parent's address
 * space copy-on-write: prepared inputs are inherited for free, and no
 * file descriptors are created by the mechanism itself, so repeated
 * sandboxed evaluations cannot leak fds. Every child is reaped with
 * waitpid() before runInFork returns — no zombies survive it.
 */

#include <functional>
#include <string>

#include <sys/types.h>

namespace hpcmixp::support {

/** Where an evaluation attempt executes (harness --isolation). */
enum class IsolationMode {
    None, ///< in the tuner process (the historical behavior)
    Fork, ///< in a forked child per attempt, crash-contained
    Pool, ///< on a persistent pre-forked worker (see WorkerPool)
};

/** Parse "none" / "fork" / "pool"; throws FatalError on anything else. */
IsolationMode parseIsolationMode(const std::string& text);

/** Canonical name of an IsolationMode ("none", "fork", "pool"). */
const char* isolationModeName(IsolationMode mode);

/** How a sandboxed child terminated. */
enum class ChildExit {
    Clean,            ///< _exit(0)
    NonZeroExit,      ///< _exit(code != 0)
    Signaled,         ///< killed by a signal it raised (SIGSEGV, abort)
    KilledOnDeadline, ///< SIGKILLed by the parent at the deadline
    SpawnFailed,      ///< fork() itself failed; no child ran
};

/** Canonical name of a ChildExit ("clean", "nonzero_exit", ...). */
const char* childExitName(ChildExit exit);

/** Classified, reaped outcome of one runInFork() call. */
struct ChildOutcome {
    ChildExit exit = ChildExit::Clean;

    /** Exit code (NonZeroExit), terminating signal number (Signaled),
     *  or errno (SpawnFailed); 0 otherwise. */
    int detail = 0;

    /** Parent-side wall clock from fork() to reap. */
    double wallSeconds = 0.0;
};

/** Exit code used by runInFork's child when @p body throws. */
inline constexpr int kChildBodyThrew = 61;

/**
 * Open a pidfd for @p pid (pidfd_open(2)), or -1 when the kernel does
 * not support it. A pidfd polls readable once the process exits, which
 * lets a parent sleep in ppoll() until exactly the child's death or a
 * deadline — no reap-poll wakeups. The caller owns the descriptor.
 */
int pidfdOpen(pid_t pid);

/**
 * Run @p body in a forked child and reap it.
 *
 * @p deadlineSeconds > 0 arms the kill-on-deadline timer; <= 0 waits
 * forever. The call blocks until the child is reaped (at most the
 * deadline plus one reap), and never leaves a zombie behind.
 */
ChildOutcome runInFork(const std::function<void()>& body,
                       double deadlineSeconds);

} // namespace hpcmixp::support

#endif // HPCMIXP_SUPPORT_SUBPROCESS_H_
