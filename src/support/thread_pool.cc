#include "support/thread_pool.h"

#include "support/logging.h"

namespace hpcmixp::support {

ThreadPool::ThreadPool(std::size_t workers)
{
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown(Shutdown::Drain);
}

void
ThreadPool::shutdown(Shutdown mode)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_ && threads_.empty())
            return; // already shut down
        stop_ = true;
        if (mode == Shutdown::Cancel) {
            // Destroying a packaged_task before invoking it breaks its
            // future: waiters see std::future_error, not a hang.
            cancelled_ += queue_.size();
            queue_.clear();
        }
    }
    cv_.notify_all();
    for (auto& t : threads_)
        t.join();
    threads_.clear();
}

std::future<void>
ThreadPool::submit(std::function<void()> job)
{
    std::packaged_task<void()> task(std::move(job));
    auto fut = task.get_future();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        HPCMIXP_ASSERT(!stop_, "submit() on a stopped ThreadPool");
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
    return fut;
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) {
                // stop_ with a non-empty queue keeps draining; workers
                // exit only once a Drain shutdown has emptied it (a
                // Cancel shutdown empties it up front).
                if (stop_)
                    return;
                continue;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0)
                idleCv_.notify_all();
        }
    }
}

} // namespace hpcmixp::support
