#include "support/thread_pool.h"

#include "support/logging.h"

namespace hpcmixp::support {

ThreadPool::ThreadPool(std::size_t workers, Scheduling scheduling)
    : scheduling_(scheduling)
{
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    queues_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    shutdown(Shutdown::Drain);
}

void
ThreadPool::shutdown(Shutdown mode)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_ && threads_.empty())
            return; // already shut down
        stop_ = true;
        if (mode == Shutdown::Cancel) {
            // Destroying a packaged_task before invoking it breaks its
            // future: waiters see std::future_error, not a hang.
            for (auto& q : queues_) {
                std::lock_guard<std::mutex> qlock(q->mutex);
                cancelled_ += q->jobs.size();
                pending_.fetch_sub(q->jobs.size());
                q->jobs.clear();
            }
        }
    }
    cv_.notify_all();
    for (auto& t : threads_)
        t.join();
    threads_.clear();
    idleCv_.notify_all();
}

std::future<void>
ThreadPool::submit(std::function<void()> job)
{
    std::packaged_task<void()> task(std::move(job));
    auto fut = task.get_future();

    // Deal round-robin onto a per-worker deque, touching only that
    // deque's lock. The global mutex is taken only when a worker is
    // actually asleep — while all workers are busy, submits and
    // completions proceed without ever contending on it.
    HPCMIXP_ASSERT(!stop_, "submit() on a stopped ThreadPool");
    const std::size_t idx = nextQueue_.fetch_add(
                                1, std::memory_order_relaxed) %
                            queues_.size();
    {
        std::lock_guard<std::mutex> qlock(queues_[idx]->mutex);
        queues_[idx]->jobs.push_back(std::move(task));
    }
    // The pending_ increment must be sequenced before the sleepers_
    // load (both seq_cst): either this submit sees the sleeper and
    // rings the bell, or the sleeper's pre-sleep re-check (under the
    // mutex) sees pending_ > 0 and never sleeps. No lost wakeups.
    pending_.fetch_add(1);
    if (sleepers_.load() > 0) {
        std::lock_guard<std::mutex> lock(mutex_);
        // Under static dealing only the dealt worker can run this job,
        // and notify_one may rouse a different sleeper — wake them all
        // and let the wrong ones re-check their own deque and re-sleep.
        if (scheduling_ == Scheduling::Fifo)
            cv_.notify_all();
        else
            cv_.notify_one();
    }
    return fut;
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this] {
        return pending_.load() == 0 && active_.load() == 0;
    });
}

void
ThreadPool::noteIdleIfDone()
{
    if (pending_.load() == 0 && active_.load() == 0) {
        // Taking the mutex orders this notify after any waiter's
        // predicate check, closing the lost-wakeup window.
        std::lock_guard<std::mutex> lock(mutex_);
        idleCv_.notify_all();
    }
}

/**
 * Pop one task for worker @p self: own deque first (front — the
 * oldest dealt job, submission-order fair), then, in Steal mode only,
 * a stealing sweep of the siblings (back — the opposite end,
 * Chase–Lev style, so a thief and the owner only collide on a deque
 * holding one job).
 */
bool
ThreadPool::popTask(std::size_t self, std::packaged_task<void()>& task)
{
    WorkerQueue& own = *queues_[self];
    {
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.jobs.empty()) {
            task = std::move(own.jobs.front());
            own.jobs.pop_front();
            return true;
        }
    }
    if (scheduling_ == Scheduling::Fifo)
        return false;
    const std::size_t n = queues_.size();
    for (std::size_t k = 1; k < n; ++k) {
        WorkerQueue& victim = *queues_[(self + k) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.jobs.empty()) {
            task = std::move(victim.jobs.back());
            victim.jobs.pop_back();
            steals_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

bool
ThreadPool::ownQueueEmpty(std::size_t self)
{
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    return own.jobs.empty();
}

void
ThreadPool::workerLoop(std::size_t self)
{
    for (;;) {
        std::packaged_task<void()> task;
        if (popTask(self, task)) {
            // active_ rises before pending_ falls, so the pair never
            // reads all-zero while this task is in flight (waitIdle
            // and the drain-exit check below both rely on that).
            active_.fetch_add(1);
            pending_.fetch_sub(1);
            task();
            active_.fetch_sub(1);
            noteIdleIfDone();
            continue;
        }
        std::unique_lock<std::mutex> lock(mutex_);
        if (scheduling_ == Scheduling::Steal) {
            // A thief can run anything still pending, so only a fully
            // drained pool lets a stopped worker exit.
            if (pending_.load() == 0 && stop_)
                return;
            if (pending_.load() > 0)
                continue; // a job landed (or is mid-claim): rescan
            sleepers_.fetch_add(1);
            cv_.wait(lock,
                     [this] { return stop_ || pending_.load() > 0; });
            sleepers_.fetch_sub(1);
            continue;
        }
        // Static dealing: this worker can only ever run its own deque,
        // so it sleeps on that deque alone — globally pending jobs on
        // sibling deques are none of its business — and a stopped
        // worker exits once its own deque has drained.
        if (!ownQueueEmpty(self))
            continue; // a job landed (or is mid-claim): rescan
        if (stop_)
            return;
        sleepers_.fetch_add(1);
        cv_.wait(lock, [this, self] {
            return stop_ || !ownQueueEmpty(self);
        });
        sleepers_.fetch_sub(1);
    }
}

} // namespace hpcmixp::support
