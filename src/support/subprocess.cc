#include "support/subprocess.h"

#include <algorithm>
#include <cerrno>
#include <csignal>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "support/logging.h"
#include "support/retry.h"
#include "support/timer.h"

namespace hpcmixp::support {

IsolationMode
parseIsolationMode(const std::string& text)
{
    if (text == "none") return IsolationMode::None;
    if (text == "fork") return IsolationMode::Fork;
    fatal(strCat("unknown isolation mode '", text,
                 "' (expected none or fork)"));
}

const char*
isolationModeName(IsolationMode mode)
{
    switch (mode) {
      case IsolationMode::None: return "none";
      case IsolationMode::Fork: return "fork";
    }
    panic("unreachable isolation mode");
}

const char*
childExitName(ChildExit exit)
{
    switch (exit) {
      case ChildExit::Clean: return "clean";
      case ChildExit::NonZeroExit: return "nonzero_exit";
      case ChildExit::Signaled: return "signaled";
      case ChildExit::KilledOnDeadline: return "killed_on_deadline";
      case ChildExit::SpawnFailed: return "spawn_failed";
    }
    panic("unreachable child exit class");
}

ChildOutcome
runInFork(const std::function<void()>& body, double deadlineSeconds)
{
    WallTimer timer;
    const pid_t pid = ::fork();
    if (pid < 0) {
        ChildOutcome out;
        out.exit = ChildExit::SpawnFailed;
        out.detail = errno;
        out.wallSeconds = timer.seconds();
        return out;
    }
    if (pid == 0) {
        // _exit (never exit): no atexit handlers, no flushing of stdio
        // buffers copied from the parent.
        try {
            body();
        } catch (...) {
            ::_exit(kChildBodyThrew);
        }
        ::_exit(0);
    }

    // Without a deadline there is nothing to poll for: block in
    // waitpid and pay zero wakeup-lag on top of the child's own wall
    // time. With one, poll WNOHANG on a backoff capped well below the
    // deadline granularity, and never sleep past the deadline itself.
    int status = 0;
    bool killed = false;
    const bool blocking = deadlineSeconds <= 0.0;
    double pollSeconds = 50e-6;
    for (;;) {
        const pid_t reaped =
            ::waitpid(pid, &status, blocking || killed ? 0 : WNOHANG);
        if (reaped == pid) break;
        if (reaped < 0) {
            if (errno == EINTR) continue;
            panic(strCat("waitpid(", pid, ") failed: errno=", errno));
        }
        const double remaining = deadlineSeconds - timer.seconds();
        if (!killed && remaining <= 0.0) {
            ::kill(pid, SIGKILL);
            killed = true;
            continue; // blocking waitpid reaps the corpse
        }
        sleepForSeconds(std::min(pollSeconds, remaining));
        if (pollSeconds < 500e-6) pollSeconds *= 2;
    }

    ChildOutcome out;
    out.wallSeconds = timer.seconds();
    if (killed) {
        // Even if the child slipped an _exit(0) in before the SIGKILL
        // landed, the deadline had passed: the result is void.
        out.exit = ChildExit::KilledOnDeadline;
        out.detail = SIGKILL;
        return out;
    }
    if (WIFEXITED(status)) {
        const int code = WEXITSTATUS(status);
        out.exit = code == 0 ? ChildExit::Clean : ChildExit::NonZeroExit;
        out.detail = code;
        return out;
    }
    if (WIFSIGNALED(status)) {
        out.exit = ChildExit::Signaled;
        out.detail = WTERMSIG(status);
        return out;
    }
    panic(strCat("unexpected waitpid status ", status));
}

} // namespace hpcmixp::support
