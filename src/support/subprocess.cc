#include "support/subprocess.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <csignal>

#include <poll.h>
#include <sys/syscall.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "support/logging.h"
#include "support/retry.h"
#include "support/timer.h"

namespace hpcmixp::support {

IsolationMode
parseIsolationMode(const std::string& text)
{
    if (text == "none") return IsolationMode::None;
    if (text == "fork") return IsolationMode::Fork;
    if (text == "pool") return IsolationMode::Pool;
    fatal(strCat("unknown isolation mode '", text,
                 "' (expected none, fork or pool)"));
}

const char*
isolationModeName(IsolationMode mode)
{
    switch (mode) {
      case IsolationMode::None: return "none";
      case IsolationMode::Fork: return "fork";
      case IsolationMode::Pool: return "pool";
    }
    panic("unreachable isolation mode");
}

int
pidfdOpen(pid_t pid)
{
#ifdef SYS_pidfd_open
    return static_cast<int>(::syscall(SYS_pidfd_open, pid, 0u));
#else
    (void)pid;
    errno = ENOSYS;
    return -1;
#endif
}

const char*
childExitName(ChildExit exit)
{
    switch (exit) {
      case ChildExit::Clean: return "clean";
      case ChildExit::NonZeroExit: return "nonzero_exit";
      case ChildExit::Signaled: return "signaled";
      case ChildExit::KilledOnDeadline: return "killed_on_deadline";
      case ChildExit::SpawnFailed: return "spawn_failed";
    }
    panic("unreachable child exit class");
}

ChildOutcome
runInFork(const std::function<void()>& body, double deadlineSeconds)
{
    WallTimer timer;
    const pid_t pid = ::fork();
    if (pid < 0) {
        ChildOutcome out;
        out.exit = ChildExit::SpawnFailed;
        out.detail = errno;
        out.wallSeconds = timer.seconds();
        return out;
    }
    if (pid == 0) {
        // _exit (never exit): no atexit handlers, no flushing of stdio
        // buffers copied from the parent.
        try {
            body();
        } catch (...) {
            ::_exit(kChildBodyThrew);
        }
        ::_exit(0);
    }

    // Without a deadline there is nothing to poll for: block in
    // waitpid and pay zero wakeup-lag on top of the child's own wall
    // time. With one, sleep in ppoll() on a pidfd, which becomes
    // readable exactly when the child exits: the parent wakes at most
    // twice (deadline, then death) and burns no CPU while an
    // in-deadline child runs. On a kernel without pidfd_open the old
    // WNOHANG reap loop remains as the fallback, with its backoff
    // floor raised so the near-deadline tail no longer busy-polls.
    int status = 0;
    bool killed = false;
    const bool blocking = deadlineSeconds <= 0.0;
    const int pidfd = blocking ? -1 : pidfdOpen(pid);
    if (pidfd >= 0) {
        for (;;) {
            const double remaining = deadlineSeconds - timer.seconds();
            if (!killed && remaining <= 0.0) {
                ::kill(pid, SIGKILL);
                killed = true;
                continue; // wait (forever) for the corpse to show
            }
            struct pollfd pfd = {pidfd, POLLIN, 0};
            struct timespec ts;
            ts.tv_sec = static_cast<time_t>(remaining);
            ts.tv_nsec = static_cast<long>(
                (remaining - std::floor(remaining)) * 1e9);
            const int rc =
                ::ppoll(&pfd, 1, killed ? nullptr : &ts, nullptr);
            if (rc < 0) {
                if (errno == EINTR) continue;
                panic(strCat("ppoll(pidfd of ", pid,
                             ") failed: errno=", errno));
            }
            if (rc > 0)
                break; // child exited; waitpid below reaps instantly
        }
        ::close(pidfd);
        while (::waitpid(pid, &status, 0) < 0) {
            if (errno != EINTR)
                panic(strCat("waitpid(", pid,
                             ") failed: errno=", errno));
        }
    } else {
        double pollSeconds = 200e-6;
        for (;;) {
            const pid_t reaped =
                ::waitpid(pid, &status, blocking || killed ? 0 : WNOHANG);
            if (reaped == pid) break;
            if (reaped < 0) {
                if (errno == EINTR) continue;
                panic(strCat("waitpid(", pid, ") failed: errno=", errno));
            }
            const double remaining = deadlineSeconds - timer.seconds();
            if (!killed && remaining <= 0.0) {
                ::kill(pid, SIGKILL);
                killed = true;
                continue; // blocking waitpid reaps the corpse
            }
            sleepForSeconds(std::min(pollSeconds, remaining));
            if (pollSeconds < 2e-3) pollSeconds *= 2;
        }
    }

    ChildOutcome out;
    out.wallSeconds = timer.seconds();
    if (killed) {
        // Even if the child slipped an _exit(0) in before the SIGKILL
        // landed, the deadline had passed: the result is void.
        out.exit = ChildExit::KilledOnDeadline;
        out.detail = SIGKILL;
        return out;
    }
    if (WIFEXITED(status)) {
        const int code = WEXITSTATUS(status);
        out.exit = code == 0 ? ChildExit::Clean : ChildExit::NonZeroExit;
        out.detail = code;
        return out;
    }
    if (WIFSIGNALED(status)) {
        out.exit = ChildExit::Signaled;
        out.detail = WTERMSIG(status);
        return out;
    }
    panic(strCat("unexpected waitpid status ", status));
}

} // namespace hpcmixp::support
