#include "support/env.h"

#include <cstdlib>

#include "support/string_util.h"

namespace hpcmixp::support {

std::string
envString(const char* name, const std::string& fallback)
{
    const char* v = std::getenv(name);
    return (v && *v) ? std::string(v) : fallback;
}

long
envLong(const char* name, long fallback)
{
    const char* v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char* end = nullptr;
    long parsed = std::strtol(v, &end, 10);
    return (end && *end == '\0') ? parsed : fallback;
}

bool
quickMode()
{
    std::string v = toLower(envString("HPCMIXP_QUICK", ""));
    return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::size_t
timingReps(std::size_t fallback)
{
    long v = envLong("HPCMIXP_REPS", static_cast<long>(fallback));
    return v < 1 ? 1 : static_cast<std::size_t>(v);
}

} // namespace hpcmixp::support
