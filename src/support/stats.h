#ifndef HPCMIXP_SUPPORT_STATS_H_
#define HPCMIXP_SUPPORT_STATS_H_

/**
 * @file
 * Small descriptive-statistics helpers for reporting measurement
 * distributions (bench summaries, timing spreads).
 */

#include <cstddef>
#include <vector>

namespace hpcmixp::support {

/** Summary of a sample set. */
struct SampleStats {
    std::size_t count = 0;
    double mean = 0.0;
    double median = 0.0;
    double stddev = 0.0; ///< sample standard deviation (n-1)
    double min = 0.0;
    double max = 0.0;
};

/** Arithmetic mean; fatal()s on an empty sample set. */
double mean(const std::vector<double>& samples);

/** Median (midpoint average for even sizes); fatal()s when empty. */
double median(std::vector<double> samples);

/** Sample standard deviation (n-1 denominator, 0 for n < 2). */
double stddev(const std::vector<double>& samples);

/** All of the above in one pass; fatal()s when empty. */
SampleStats summarize(const std::vector<double>& samples);

} // namespace hpcmixp::support

#endif // HPCMIXP_SUPPORT_STATS_H_
